package vapro_test

import (
	"fmt"

	"vapro"
)

// ExampleRun demonstrates the basic detect-and-diagnose loop: run an
// application with Vapro attached, inject noise, read the verdict. The
// output is deterministic because all simulator randomness is seeded.
func ExampleRun() {
	app, _ := vapro.App("CG")
	opt := vapro.DefaultOptions()
	opt.Ranks = 16

	// A stress-like process steals half the CPU of node 0's core 2
	// over one second of the iteration phase.
	sch := vapro.NewNoise()
	sch.Add(vapro.CPUContention(0, 2, vapro.Seconds(0.9), vapro.Seconds(1.9), 0.5))
	opt.Noise = sch

	res := vapro.Run(app, opt)
	var comp int
	for _, reg := range res.Detection.Regions {
		if reg.Class == vapro.Computation {
			comp++
		}
	}
	fmt.Printf("computation regions detected: %d\n", comp)
	if rep := res.DiagnoseTop(vapro.Computation, vapro.DefaultDiagnoseOptions()); rep != nil {
		fmt.Printf("top factor: %v\n", rep.TopFactor())
	}
	// Output:
	// computation regions detected: 1
	// top factor: suspension
}

// ExampleRunPlain shows overhead accounting against an untraced
// baseline.
func ExampleRunPlain() {
	opt := vapro.DefaultOptions()
	opt.Ranks = 8

	base, _ := vapro.App("EP")
	plain := vapro.RunPlain(base, opt)

	traced, _ := vapro.App("EP")
	res := vapro.Run(traced, opt)

	fmt.Printf("overhead below 1%%: %v\n", res.Overhead(plain) < 0.01)
	// Output:
	// overhead below 1%: true
}
