// Package rt defines the runtime interface application skeletons program
// against, plus the plain (untraced) implementation used for baseline
// timing. Vapro's interposition layer (internal/interpose) implements
// the same interface while recording fragments — mirroring how the real
// tool LD_PRELOADs itself between an unmodified binary and its external
// libraries.
package rt

import (
	"errors"

	"vapro/internal/mpi"
	"vapro/internal/sim"
	"vapro/internal/vfs"
)

// Req is an opaque nonblocking-operation handle.
type Req interface{}

// errNoFS is returned by IO operations when the runtime was configured
// without a file system.
var errNoFS = errors.New("rt: no file system configured")

// Runtime is everything an application skeleton may do: compute,
// communicate, do IO, and synchronize. Implementations advance the
// rank's virtual clock as a side effect of every call.
type Runtime interface {
	// Identity and time.
	Rank() int
	Size() int
	Now() sim.Time
	Rand() *sim.RNG

	// Computation.
	Compute(w sim.Workload)

	// Point-to-point communication.
	Send(dst, tag, bytes int)
	Recv(src, tag int) int
	Sendrecv(dst, sendTag, bytes, src, recvTag int) int
	Isend(dst, tag, bytes int) Req
	Irecv(src, tag int) Req
	Wait(q Req)
	Waitall(qs []Req)

	// Collectives.
	Barrier()
	Bcast(root, bytes int)
	Reduce(root, bytes int)
	Allreduce(bytes int)
	Alltoall(bytesPerRank int)
	Allgather(bytesPerRank int)
	Gather(root, bytesPerRank int)

	// File IO. Handles are process-local descriptors.
	Open(path string, mode vfs.OpenMode) (int, error)
	ReadF(fd, n int) int
	WriteF(fd, n int)
	SeekF(fd int, offset int64)
	CloseF(fd int)

	// Probe is a user-defined explicit invocation (the Dyninst-inserted
	// probe of the paper) marking a fragment boundary in long compute
	// regions.
	Probe(name string)
}

// Config carries the pieces shared by every Runtime implementation.
type Config struct {
	FS         *vfs.FS // file system (nil disables IO)
	BufferedIO bool    // route reads through a client-side file buffer (the RAxML fix)
}

// Plain is the untraced runtime: it forwards every call straight to the
// substrates with zero recording overhead. Baseline runs for overhead
// measurement use this.
type Plain struct {
	R   *mpi.Rank
	FS  *vfs.FS
	Buf *vfs.Buffer

	files  map[int]*vfs.File
	nextFD int
}

// NewPlain wraps an mpi.Rank (and optional FS) into a plain runtime.
func NewPlain(r *mpi.Rank, cfg Config) *Plain {
	p := &Plain{R: r, FS: cfg.FS, files: make(map[int]*vfs.File)}
	if cfg.BufferedIO && cfg.FS != nil {
		p.Buf = vfs.NewBuffer(cfg.FS)
	}
	return p
}

// Rank implements Runtime.
func (p *Plain) Rank() int { return p.R.ID() }

// Size implements Runtime.
func (p *Plain) Size() int { return p.R.Size() }

// Now implements Runtime.
func (p *Plain) Now() sim.Time { return p.R.Clock() }

// Rand implements Runtime.
func (p *Plain) Rand() *sim.RNG { return p.R.RNG() }

// Compute implements Runtime.
func (p *Plain) Compute(w sim.Workload) { p.R.Compute(w) }

// Send implements Runtime.
func (p *Plain) Send(dst, tag, bytes int) { p.R.Send(dst, tag, bytes) }

// Recv implements Runtime.
func (p *Plain) Recv(src, tag int) int {
	n, _ := p.R.Recv(src, tag)
	return n
}

// Sendrecv implements Runtime.
func (p *Plain) Sendrecv(dst, sendTag, bytes, src, recvTag int) int {
	n, _ := p.R.Sendrecv(dst, sendTag, bytes, src, recvTag)
	return n
}

// Isend implements Runtime.
func (p *Plain) Isend(dst, tag, bytes int) Req { return p.R.Isend(dst, tag, bytes) }

// Irecv implements Runtime.
func (p *Plain) Irecv(src, tag int) Req { return p.R.Irecv(src, tag) }

// Wait implements Runtime.
func (p *Plain) Wait(q Req) { p.R.Wait(q.(*mpi.Request)) }

// Waitall implements Runtime.
func (p *Plain) Waitall(qs []Req) {
	for _, q := range qs {
		p.R.Wait(q.(*mpi.Request))
	}
}

// Barrier implements Runtime.
func (p *Plain) Barrier() { p.R.Barrier() }

// Bcast implements Runtime.
func (p *Plain) Bcast(root, bytes int) { p.R.Bcast(root, bytes) }

// Reduce implements Runtime.
func (p *Plain) Reduce(root, bytes int) { p.R.Reduce(root, bytes) }

// Allreduce implements Runtime.
func (p *Plain) Allreduce(bytes int) { p.R.Allreduce(bytes) }

// Alltoall implements Runtime.
func (p *Plain) Alltoall(bytesPerRank int) { p.R.Alltoall(bytesPerRank) }

// Allgather implements Runtime.
func (p *Plain) Allgather(bytesPerRank int) { p.R.Allgather(bytesPerRank) }

// Gather implements Runtime.
func (p *Plain) Gather(root, bytesPerRank int) { p.R.Gather(root, bytesPerRank) }

// Open implements Runtime. With the file buffer enabled, reopening an
// already-cached file is a local operation (the paper's fix avoids the
// shared-FS metadata round trips of the small files entirely).
func (p *Plain) Open(path string, mode vfs.OpenMode) (int, error) {
	if p.FS == nil {
		return -1, errNoFS
	}
	if p.Buf != nil && mode == vfs.ReadOnly {
		if d, ok := p.Buf.OpenLocal(path); ok {
			p.R.Advance(d)
			f, _, err := p.FS.Open(path, mode, p.R.Node(), p.R.Clock(), p.R.RNG())
			if err != nil {
				return -1, err
			}
			p.nextFD++
			p.files[p.nextFD] = f
			return p.nextFD, nil
		}
	}
	f, d, err := p.FS.Open(path, mode, p.R.Node(), p.R.Clock(), p.R.RNG())
	p.R.Advance(d)
	if err != nil {
		return -1, err
	}
	p.nextFD++
	p.files[p.nextFD] = f
	return p.nextFD, nil
}

// ReadF implements Runtime.
func (p *Plain) ReadF(fd, n int) int {
	f := p.files[fd]
	if f == nil {
		return 0
	}
	if p.Buf != nil {
		got, d, err := p.Buf.ReadFile(f.Path(), f.Offset(), n, p.R.Node(), p.R.Clock(), p.R.RNG())
		p.R.Advance(d)
		if err != nil {
			return 0
		}
		f.SeekTo(f.Offset() + int64(got))
		return got
	}
	got, d := f.Read(n, p.R.Node(), p.R.Clock(), p.R.RNG())
	p.R.Advance(d)
	return got
}

// WriteF implements Runtime.
func (p *Plain) WriteF(fd, n int) {
	f := p.files[fd]
	if f == nil {
		return
	}
	d := f.Write(n, p.R.Node(), p.R.Clock(), p.R.RNG())
	p.R.Advance(d)
}

// SeekF implements Runtime.
func (p *Plain) SeekF(fd int, offset int64) {
	if f := p.files[fd]; f != nil {
		f.SeekTo(offset)
	}
}

// CloseF implements Runtime. Closing a buffered file is local.
func (p *Plain) CloseF(fd int) {
	f := p.files[fd]
	if f == nil {
		return
	}
	if p.Buf != nil && p.Buf.Cached(f.Path()) {
		p.R.Advance(2 * sim.Microsecond)
	} else {
		d := f.Close(p.R.Node(), p.R.Clock(), p.R.RNG())
		p.R.Advance(d)
	}
	delete(p.files, fd)
}

// Probe implements Runtime: without Vapro attached a probe is free.
func (p *Plain) Probe(name string) {}
