package rt

import (
	"testing"

	"vapro/internal/mpi"
	"vapro/internal/sim"
	"vapro/internal/vfs"
)

func world(size int, fs *vfs.FS) *mpi.World {
	m := sim.NewMachine(sim.Config{Nodes: 1, CoresPerNode: size, FreqGHz: 2, Seed: 1})
	return mpi.NewWorld(size, m, sim.IdealEnv{})
}

func TestPlainForwardsOps(t *testing.T) {
	w := world(2, nil)
	var got int
	w.Run(func(r *mpi.Rank) {
		p := NewPlain(r, Config{})
		if p.Rank() != r.ID() || p.Size() != 2 {
			t.Error("identity")
		}
		if p.Rank() == 0 {
			p.Send(1, 0, 64)
			p.Wait(p.Isend(1, 1, 32))
			p.Barrier()
			p.Allreduce(8)
		} else {
			got = p.Recv(0, 0)
			q := p.Irecv(0, 1)
			p.Waitall([]Req{q})
			p.Barrier()
			p.Allreduce(8)
		}
		p.Compute(sim.Workload{Instructions: 1000, MemRatio: 0.5, WorkingSet: 1024})
		if p.Now() <= 0 {
			t.Error("clock did not advance")
		}
		if p.Rand() == nil {
			t.Error("no rng")
		}
		p.Probe("free") // no-op, must not panic
	})
	if got != 64 {
		t.Fatalf("recv got %d", got)
	}
}

func TestPlainIO(t *testing.T) {
	fs := vfs.New(sim.IdealEnv{}, 1)
	fs.Create("/data", 1000)
	w := world(1, fs)
	w.Run(func(r *mpi.Rank) {
		p := NewPlain(r, Config{FS: fs})
		fd, err := p.Open("/data", vfs.ReadOnly)
		if err != nil {
			t.Error(err)
			return
		}
		if n := p.ReadF(fd, 500); n != 500 {
			t.Errorf("read %d", n)
		}
		p.SeekF(fd, 0)
		if n := p.ReadF(fd, 2000); n != 1000 {
			t.Errorf("read after seek %d", n)
		}
		p.CloseF(fd)
		// Ops on a closed/bogus fd are safe no-ops.
		if n := p.ReadF(fd, 10); n != 0 {
			t.Errorf("read on closed fd: %d", n)
		}
		p.WriteF(999, 10)
		p.SeekF(999, 0)
		p.CloseF(999)

		if _, err := p.Open("/missing", vfs.ReadOnly); err == nil {
			t.Error("open of missing file succeeded")
		}
	})
}

func TestPlainBufferedIO(t *testing.T) {
	fs := vfs.New(sim.IdealEnv{}, 1)
	fs.Create("/small", 100)
	w := world(1, fs)
	w.Run(func(r *mpi.Rank) {
		p := NewPlain(r, Config{FS: fs, BufferedIO: true})
		// First pass populates the buffer.
		fd, _ := p.Open("/small", vfs.ReadOnly)
		p.ReadF(fd, 100)
		p.CloseF(fd)
		t1 := p.Now()
		// Second pass must be much cheaper.
		fd, _ = p.Open("/small", vfs.ReadOnly)
		p.ReadF(fd, 100)
		p.CloseF(fd)
		t2 := p.Now()
		if (t2-t1)*5 > t1 {
			t.Errorf("buffered reopen (%v) not much cheaper than cold (%v)", t2-t1, t1)
		}
	})
}
