package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler serves the registry over HTTP in two formats: Prometheus text
// exposition (the default, scrapable) and JSON (`?format=json` or an
// Accept header preferring application/json) — the surface `vapro
// status` renders.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	if req.URL.Query().Get("format") == "prom" {
		return false
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// WriteJSON writes the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&snap)
}

// WritePrometheus writes the registry snapshot in the Prometheus text
// exposition format. Counters and gauges carry a `layer` label;
// histograms expand into _bucket/_sum/_count series; Func metrics are
// exposed as gauges (their semantics live in the help string).
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		promType := m.Kind
		if promType == "func" {
			promType = "gauge"
		}
		if m.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, promType)
		if m.Hist == nil {
			fmt.Fprintf(w, "%s{layer=%q} %v\n", m.Name, m.Layer, m.Value)
			continue
		}
		var cum uint64
		for bi, c := range m.Hist.Counts {
			cum += c
			if bi < len(m.Hist.Bounds) {
				fmt.Fprintf(w, "%s_bucket{layer=%q,le=\"%d\"} %d\n", m.Name, m.Layer, m.Hist.Bounds[bi], cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{layer=%q,le=\"+Inf\"} %d\n", m.Name, m.Layer, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum{layer=%q} %d\n", m.Name, m.Layer, m.Hist.Sum)
		fmt.Fprintf(w, "%s_count{layer=%q} %d\n", m.Name, m.Layer, m.Hist.Total)
	}
}
