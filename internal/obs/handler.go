package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler serves the registry over HTTP in two formats: Prometheus text
// exposition (the default, scrapable) and JSON (`?format=json` or an
// Accept header preferring application/json) — the surface `vapro
// status` renders.
func (r *Registry) Handler() http.Handler {
	return SnapshotHandler(r.Snapshot)
}

// SnapshotHandler serves an arbitrary snapshot source with the same
// content negotiation as Registry.Handler — the sharded tier and fleet
// scraper plug their merged views in here.
func SnapshotHandler(fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := fn()
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteSnapshotJSON(w, &snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteSnapshotPrometheus(w, &snap)
	})
}

// TraceHandler serves a trace snapshot source as JSON (the `/trace`
// endpoint `vapro status -trace` reads).
func TraceHandler(fn func() TraceSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := fn()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&snap)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	if req.URL.Query().Get("format") == "prom" {
		return false
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}

// WriteJSON writes the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	return WriteSnapshotJSON(w, &snap)
}

// WriteSnapshotJSON writes one snapshot as indented JSON.
func WriteSnapshotJSON(w io.Writer, snap *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WritePrometheus writes the registry snapshot in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	WriteSnapshotPrometheus(w, &snap)
}

// WriteSnapshotPrometheus writes one snapshot in the Prometheus text
// exposition format. Counters and gauges carry a `layer` label;
// histograms expand into _bucket/_sum/_count series; Func metrics are
// exposed as gauges (their semantics live in the help string).
func WriteSnapshotPrometheus(w io.Writer, snap *Snapshot) {
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		promType := m.Kind
		if promType == "func" {
			promType = "gauge"
		}
		if m.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, promType)
		if m.Hist == nil {
			fmt.Fprintf(w, "%s{layer=%q} %v\n", m.Name, m.Layer, m.Value)
			continue
		}
		var cum uint64
		for bi, c := range m.Hist.Counts {
			cum += c
			if bi < len(m.Hist.Bounds) {
				fmt.Fprintf(w, "%s_bucket{layer=%q,le=\"%d\"} %d\n", m.Name, m.Layer, m.Hist.Bounds[bi], cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{layer=%q,le=\"+Inf\"} %d\n", m.Name, m.Layer, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum{layer=%q} %d\n", m.Name, m.Layer, m.Hist.Sum)
		fmt.Fprintf(w, "%s_count{layer=%q} %d\n", m.Name, m.Layer, m.Hist.Total)
	}
}
