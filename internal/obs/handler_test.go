package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("vapro_wire_frames_total", "wire", "frames accepted").Add(3)
	reg.Gauge("vapro_intake_staged", "intake", "batches staged").Set(2)
	h := reg.Histogram("vapro_detect_window_ns", "detect", "window latency", []int64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(999)
	return reg
}

func TestHandlerPrometheus(t *testing.T) {
	rr := httptest.NewRecorder()
	testRegistry().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE vapro_wire_frames_total counter",
		`vapro_wire_frames_total{layer="wire"} 3`,
		`vapro_intake_staged{layer="intake"} 2`,
		"# TYPE vapro_detect_window_ns histogram",
		`vapro_detect_window_ns_bucket{layer="detect",le="10"} 1`,
		`vapro_detect_window_ns_bucket{layer="detect",le="20"} 2`,
		`vapro_detect_window_ns_bucket{layer="detect",le="+Inf"} 3`,
		`vapro_detect_window_ns_sum{layer="detect"} 1019`,
		`vapro_detect_window_ns_count{layer="detect"} 3`,
		"# TYPE vapro_uptime_seconds gauge", // func rendered as gauge
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	reg := testRegistry()
	// Both ?format=json and an Accept header select JSON.
	for _, r := range []string{"/metrics?format=json", "/metrics"} {
		req := httptest.NewRequest("GET", r, nil)
		if !strings.Contains(r, "format=") {
			req.Header.Set("Accept", "application/json")
		}
		rr := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rr, req)
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content type: %q", r, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: bad JSON: %v", r, err)
		}
		if m := snap.Get("vapro_wire_frames_total"); m == nil || m.Value != 3 {
			t.Fatalf("%s: frames metric: %+v", r, m)
		}
		m := snap.Get("vapro_detect_window_ns")
		if m == nil || m.Hist == nil || m.Hist.Total != 3 || m.Hist.Sum != 1019 {
			t.Fatalf("%s: histogram snapshot: %+v", r, m)
		}
	}
	// ?format=prom forces text even with a JSON Accept header.
	req := httptest.NewRequest("GET", "/metrics?format=prom", nil)
	req.Header.Set("Accept", "application/json")
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, req)
	if !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
		t.Fatal("format=prom did not force text output")
	}
}
