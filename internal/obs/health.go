package obs

import (
	"encoding/json"
	"fmt"
)

// Declarative health rules over the metric rings: each rule names a
// metric, how to read it (instant value, ring rate, or current-p99 vs
// the ring's median p99), and the degraded/critical thresholds. The
// fleet scraper evaluates the table per shard and folds shard states
// into one fleet state, so "is the fleet ok" is a table lookup, not a
// human squinting at counters.

// HealthState orders ok < degraded < critical < unreachable.
type HealthState int

const (
	HealthOK HealthState = iota
	HealthDegraded
	HealthCritical
	HealthUnreachable // scrape failed; no data to judge
)

var healthNames = [...]string{"ok", "degraded", "critical", "unreachable"}

func (s HealthState) String() string {
	if s < 0 || int(s) >= len(healthNames) {
		return "unknown"
	}
	return healthNames[s]
}

// MarshalJSON renders the state as its name ("ok"), keeping the JSON
// schema readable without a decoder-side enum table.
func (s HealthState) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON accepts the state name, so FleetStatus round-trips
// through HTTP (unknown names decode as unreachable, the safe worst).
func (s *HealthState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range healthNames {
		if n == name {
			*s = HealthState(i)
			return nil
		}
	}
	*s = HealthUnreachable
	return nil
}

// worse returns the more severe of two states.
func (s HealthState) worse(o HealthState) HealthState {
	if o > s {
		return o
	}
	return s
}

// RuleKind selects how a rule reads its metric.
type RuleKind int

const (
	// RuleValue compares the metric's instant value.
	RuleValue RuleKind = iota
	// RuleRate compares the metric's per-second rate over the series
	// ring (counters: events/s across the scrape window).
	RuleRate
	// RuleP99Ratio compares the metric's current histogram p99 against
	// the median p99 across the ring — "is latency N× its own recent
	// reference window". Needs a few points of history to fire.
	RuleP99Ratio
)

// HealthRule is one row of the rule table. A reading >= Critical is
// critical, >= Degraded is degraded; thresholds <= 0 disable that tier.
type HealthRule struct {
	Name     string // rule name, used in reasons ("intake-stall-rate")
	Metric   string // metric name the rule reads
	Kind     RuleKind
	Degraded float64
	Critical float64
}

// read extracts the rule's reading. ok=false means not enough data
// (metric absent, or too little ring history for a ratio) — the rule
// abstains rather than guessing.
func (r *HealthRule) read(snap *Snapshot, series *SeriesSet) (float64, bool) {
	switch r.Kind {
	case RuleRate:
		s := series.Get(r.Metric)
		if s.Len() < 2 {
			return 0, false
		}
		return s.Rate(), true
	case RuleP99Ratio:
		s := series.Get(r.Metric + histP99Suffix)
		if s.Len() < 3 {
			return 0, false
		}
		ref := s.Median()
		if ref <= 0 {
			return 0, false
		}
		return s.Last() / ref, true
	default: // RuleValue
		if snap == nil {
			return 0, false
		}
		m := snap.Get(r.Metric)
		if m == nil {
			return 0, false
		}
		return m.Value, true
	}
}

// HealthReport is one evaluation of a rule table: the folded state and
// one reason string per rule that fired, worst first.
type HealthReport struct {
	State   HealthState `json:"state"`
	Reasons []string    `json:"reasons,omitempty"`
}

// EvalHealth evaluates the rule table against one snapshot and its
// series history. A nil series set makes rate/ratio rules abstain.
func EvalHealth(rules []HealthRule, snap *Snapshot, series *SeriesSet) HealthReport {
	rep := HealthReport{State: HealthOK}
	for i := range rules {
		r := &rules[i]
		v, ok := r.read(snap, series)
		if !ok {
			continue
		}
		var st HealthState
		switch {
		case r.Critical > 0 && v >= r.Critical:
			st = HealthCritical
		case r.Degraded > 0 && v >= r.Degraded:
			st = HealthDegraded
		default:
			continue
		}
		rep.State = rep.State.worse(st)
		rep.Reasons = append(rep.Reasons, fmt.Sprintf("%s: %s %s=%.3g (degraded>=%.3g critical>=%.3g)",
			st, r.Name, r.Metric, v, r.Degraded, r.Critical))
	}
	// Critical reasons ahead of degraded ones without disturbing rule
	// order within a tier.
	if len(rep.Reasons) > 1 {
		var crit, rest []string
		for _, s := range rep.Reasons {
			if len(s) >= 8 && s[:8] == "critical" {
				crit = append(crit, s)
			} else {
				rest = append(rest, s)
			}
		}
		rep.Reasons = append(crit, rest...)
	}
	return rep
}

// DefaultHealthRules is the shipped rule table: intake stall rate,
// sequence-gap rate, spill depth, and analysis tick latency vs its own
// reference window.
func DefaultHealthRules() []HealthRule {
	return []HealthRule{
		{Name: "intake-stall-rate", Metric: "vapro_intake_stalls_total", Kind: RuleRate, Degraded: 1, Critical: 10},
		{Name: "seq-gap-rate", Metric: "vapro_wire_seq_gaps_total", Kind: RuleRate, Degraded: 0.5, Critical: 5},
		{Name: "spill-depth", Metric: "vapro_net_spill_depth", Kind: RuleValue, Degraded: 64, Critical: 512},
		{Name: "tick-latency-p99", Metric: "vapro_detect_window_ns", Kind: RuleP99Ratio, Degraded: 2, Critical: 4},
	}
}
