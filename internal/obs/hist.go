package obs

import "sync/atomic"

// Histogram is a fixed-bucket histogram with atomic counters. Bucket i
// counts observations v with bounds[i-1] < v <= bounds[i] (bucket 0
// starts at -inf); one extra overflow bucket counts v > bounds[last].
// Observe is allocation-free and safe for concurrent use; quantiles are
// derived at snapshot time by linear interpolation within a bucket.
type Histogram struct {
	bounds []int64 // ascending upper bounds, immutable after creation
	counts []atomic.Uint64
	sum    atomic.Int64
}

// LatencyBounds is the default nanosecond ladder: 1 µs to ~16.8 s in
// powers of two (25 buckets). Wide enough for per-window analysis
// latencies and per-stage spans at any problem size.
func LatencyBounds() []int64 {
	b := make([]int64, 25)
	v := int64(1000)
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// CountBounds is a ladder for small cardinalities (batch sizes, drain
// sweeps): 1 to 65536 in powers of two.
func CountBounds() []int64 {
	b := make([]int64, 17)
	v := int64(1)
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// NewHistogram builds a histogram over the given ascending upper
// bounds; nil or empty means LatencyBounds.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds()
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value. Zero allocations: a hand-rolled binary
// search (no closure) plus one atomic add.
func (h *Histogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// HistSnapshot is a consistent-enough copy of a histogram (buckets are
// read individually; a snapshot taken mid-Observe may be off by the
// in-flight observation, which is fine for telemetry).
type HistSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
	Sum    int64    `json:"sum"`
	Total  uint64   `json:"total"`
	P50    float64  `json:"p50"`
	P90    float64  `json:"p90"`
	P99    float64  `json:"p99"`
	Mean   float64  `json:"mean"`
}

// Snapshot copies the bucket counts and derives the standard quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Total += s.Counts[i]
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	if s.Total > 0 {
		s.Mean = float64(s.Sum) / float64(s.Total)
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding rank q·Total. Bucket i spans
// (Bounds[i-1], Bounds[i]] with bucket 0 starting at 0; the overflow
// bucket has no upper bound, so any rank landing there reports the last
// finite bound (a floor, not an estimate).
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(s.Bounds) { // overflow bucket
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}
