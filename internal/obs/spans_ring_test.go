package obs

import (
	"sync"
	"testing"
)

// TestSpansRecentWraparoundOrder pins the ring arithmetic at the wrap
// boundary: after exactly ring-size + k records, Recent must return the
// newest spans in strict newest-first order with the overwritten ones
// gone — an off-by-one here silently serves stale spans.
func TestSpansRecentWraparoundOrder(t *testing.T) {
	reg := NewRegistry()
	sp := NewSpans(reg, "w", "x", "s")
	// Durations encode record order, so order is checkable after wrap.
	n := spanRingSize + 7
	for i := 0; i < n; i++ {
		sp.RecordNS(0, int64(i))
	}
	rec := sp.Recent(spanRingSize)
	if len(rec) != spanRingSize {
		t.Fatalf("recent after wrap: %d", len(rec))
	}
	for i, r := range rec {
		want := int64(n - 1 - i)
		if r.DurNS != want {
			t.Fatalf("recent[%d] = %d, want %d (stale span after wrap)", i, r.DurNS, want)
		}
	}
	// A partial ask returns exactly the newest slice.
	if rec := sp.Recent(3); len(rec) != 3 || rec[0].DurNS != int64(n-1) || rec[2].DurNS != int64(n-3) {
		t.Fatalf("partial recent: %+v", rec)
	}
	// Recent(0) and negative asks are empty, not panics.
	if len(sp.Recent(0)) != 0 {
		t.Fatal("Recent(0) not empty")
	}
}

// TestSpansConcurrentReadWhileRecord races Recent against RecordNS:
// every returned record must be internally consistent (a valid stage
// resolved from the ring, never a torn half-written slot).
func TestSpansConcurrentReadWhileRecord(t *testing.T) {
	reg := NewRegistry()
	sp := NewSpans(reg, "c", "x", "a", "b", "c")
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				// Duration encodes the stage, so readers can check that a
				// record's fields belong to the same write.
				sp.RecordNS(i%3, int64(i%3))
			}
		}()
	}
	names := sp.Stages()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for reading := true; reading; {
		select {
		case <-done:
			reading = false
		default:
		}
		for _, r := range sp.Recent(spanRingSize) {
			if r.Stage != names[r.DurNS] {
				t.Fatalf("torn span: stage %q dur %d", r.Stage, r.DurNS)
			}
		}
	}
	if total := sp.Hist(0).Count() + sp.Hist(1).Count() + sp.Hist(2).Count(); total == 0 {
		t.Fatal("writers recorded nothing")
	}
}
