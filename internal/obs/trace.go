package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Batch provenance tracing: every wire batch already carries a per-rank
// sequence number; the traced wire variant adds a client id and the
// flush wall time, which together make one batch's journey through the
// pipeline reconstructable — flush, enqueue, spill/redial dwell, wire
// delivery, intake staging, graph drain, first analyzed tick. Tracing
// every batch would cost a ring write per hop per batch, so Trace keeps
// a *sampled exemplar ring*: batches whose sequence number hits the
// sample interval get a Journey slot; everything else pays one atomic
// add and a modulo (Sample, pinned at 0 allocs). The journeys are what
// `vapro status -trace` renders.

// Hop indices of a batch journey, in pipeline order. A hop's value is
// the wall-clock ns when the batch completed that hop (0 = unreached).
const (
	HopFlush   = iota // client flushed the batch (journey origin)
	HopEnqueue        // entered the resilient client's queue
	HopWrite          // written to a live connection (enqueue→write = spill/redial dwell)
	HopDeliver        // decoded by the wire server
	HopStage          // staged into a server's intake stripe
	HopDrain          // merged into the server graph
	HopAnalyze        // first analysis tick that could see the batch
	NumHops
)

// HopNames names the hops in index order (the JSON/render surface).
var HopNames = [NumHops]string{
	"flush", "enqueue", "write", "deliver", "stage", "drain", "analyzed",
}

// TraceKey identifies one batch across processes: the flushing client's
// id plus the batch's per-rank sequence number.
type TraceKey struct {
	ClientID uint64 `json:"client_id"`
	Seq      uint64 `json:"seq"`
}

// Journey is one sampled batch's hop timeline.
type Journey struct {
	Key     TraceKey       `json:"key"`
	Rank    int            `json:"rank"`
	FlushNS int64          `json:"flush_ns"`
	Hops    [NumHops]int64 `json:"hops"` // completion wall ns; 0 = unreached
}

// live reports whether the slot holds a journey.
func (j *Journey) live() bool { return j.Key != (TraceKey{}) || j.FlushNS != 0 || j.Rank != 0 }

// SpanNS returns the journey's total observed latency: last reached hop
// minus the flush time (0 when nothing beyond the origin is known).
func (j *Journey) SpanNS() int64 {
	last := int64(0)
	for _, h := range j.Hops {
		if h > last {
			last = h
		}
	}
	origin := j.FlushNS
	if origin == 0 {
		origin = j.Hops[HopFlush]
	}
	if last == 0 || origin == 0 || last < origin {
		return 0
	}
	return last - origin
}

// defaultTraceInterval samples one batch in 64 per rank.
const defaultTraceInterval = 64

// defaultTraceRing bounds the exemplar journeys kept per process.
const defaultTraceRing = 128

// Trace is the sampled per-process exemplar ring. Sample is the hot
// path (per batch, 0 allocs); Record/MarkDrained/CompleteAnalyze run
// only for sampled batches and take a short mutex.
type Trace struct {
	interval atomic.Uint64
	total    atomic.Uint64 // trace-stamped batches seen
	sampled  atomic.Uint64

	// now is the timestamp source; deterministic tests inject a fake
	// clock before traffic (SetNow is not safe concurrently with hops).
	now func() int64

	mu      sync.Mutex
	ring    []Journey
	slots   map[TraceKey]int
	next    int
	pending []TraceKey // drained journeys awaiting their first analyze tick
}

// NewTrace builds a tracer sampling every interval-th sequence number
// into a ring of ringSize journeys, and registers its counters on reg
// (nil reg skips registration). interval <= 0 and ringSize <= 0 use the
// defaults; SetInterval(0) disables sampling entirely.
func NewTrace(reg *Registry, layer string, interval, ringSize int) *Trace {
	if interval <= 0 {
		interval = defaultTraceInterval
	}
	if ringSize <= 0 {
		ringSize = defaultTraceRing
	}
	t := &Trace{
		now:   func() int64 { return time.Now().UnixNano() },
		ring:  make([]Journey, ringSize),
		slots: make(map[TraceKey]int, ringSize),
	}
	t.interval.Store(uint64(interval))
	if reg != nil {
		reg.Func("vapro_trace_batches_total", layer,
			"trace-stamped batches seen by the sampler", func() float64 {
				return float64(t.total.Load())
			})
		reg.Func("vapro_trace_sampled_total", layer,
			"batches sampled into the exemplar journey ring", func() float64 {
				return float64(t.sampled.Load())
			})
		reg.Func("vapro_trace_journeys", layer,
			"exemplar journeys currently held", func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return float64(len(t.slots))
			})
		reg.Func("vapro_trace_sample_interval", layer,
			"sequence-number sampling interval (0 = tracing off)", func() float64 {
				return float64(t.interval.Load())
			})
	}
	return t
}

// SetNow injects the timestamp source (deterministic tests pass a fake
// clock). Call before any traffic.
func (t *Trace) SetNow(now func() int64) { t.now = now }

// SetInterval replaces the sampling interval; 0 disables sampling.
func (t *Trace) SetInterval(n uint64) { t.interval.Store(n) }

// Interval returns the current sampling interval.
func (t *Trace) Interval() uint64 { return t.interval.Load() }

// Sample reports whether the batch with this sequence number is an
// exemplar. It is the unsampled-path cost of tracing: two atomic ops
// and a modulo, no allocation (pinned by AllocsPerRun), nil-safe.
func (t *Trace) Sample(seq uint64) bool {
	if t == nil {
		return false
	}
	t.total.Add(1)
	iv := t.interval.Load()
	if iv == 0 || seq%iv != 0 {
		return false
	}
	t.sampled.Add(1)
	return true
}

// Record stamps one hop of a sampled batch's journey at the current
// time. The first record for a key claims a ring slot (evicting the
// oldest journey); later hops fill in. A hop already stamped is kept —
// retransmits must not rewrite history.
func (t *Trace) Record(key TraceKey, rank int, flushNS int64, hop int) {
	if t == nil || hop < 0 || hop >= NumHops {
		return
	}
	now := t.now()
	t.mu.Lock()
	j := t.slotLocked(key, rank, flushNS)
	if j.Hops[hop] == 0 {
		j.Hops[hop] = now
	}
	t.mu.Unlock()
}

// slotLocked returns the journey slot for key, claiming one if needed.
// Caller holds t.mu.
func (t *Trace) slotLocked(key TraceKey, rank int, flushNS int64) *Journey {
	idx, ok := t.slots[key]
	if !ok {
		idx = t.next
		t.next = (t.next + 1) % len(t.ring)
		if old := &t.ring[idx]; old.live() {
			delete(t.slots, old.Key)
		}
		t.ring[idx] = Journey{Key: key, Rank: rank, FlushNS: flushNS}
		t.slots[key] = idx
	}
	j := &t.ring[idx]
	if j.FlushNS == 0 && flushNS != 0 {
		j.FlushNS = flushNS
	}
	return j
}

// MarkDrained stamps the drain hop and queues the journey for the next
// analysis tick (CompleteAnalyze stamps HopAnalyze for everything
// drained since the previous tick). The pending list is bounded by the
// ring size — a journey evicted before its tick simply never completes.
func (t *Trace) MarkDrained(key TraceKey, rank int, flushNS int64) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	j := t.slotLocked(key, rank, flushNS)
	if j.Hops[HopDrain] == 0 {
		j.Hops[HopDrain] = now
	}
	if j.Hops[HopAnalyze] == 0 && len(t.pending) < len(t.ring) {
		t.pending = append(t.pending, key)
	}
	t.mu.Unlock()
}

// CompleteAnalyze stamps the first-analyzed-tick hop for every journey
// drained since the last call. The analysis plane calls it after each
// window run.
func (t *Trace) CompleteAnalyze() {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	for _, key := range t.pending {
		if idx, ok := t.slots[key]; ok {
			j := &t.ring[idx]
			if j.Hops[HopAnalyze] == 0 {
				j.Hops[HopAnalyze] = now
			}
		}
	}
	t.pending = t.pending[:0]
	t.mu.Unlock()
}

// TraceSnapshot is the JSON surface of the journey ring.
type TraceSnapshot struct {
	Interval uint64    `json:"interval"`
	Total    uint64    `json:"total"`
	Sampled  uint64    `json:"sampled"`
	HopNames []string  `json:"hop_names"`
	Journeys []Journey `json:"journeys"` // slowest first
}

// Snapshot copies the live journeys, slowest (largest observed span)
// first so the status surface prints the worst recent batch journeys
// without re-sorting.
func (t *Trace) Snapshot() TraceSnapshot {
	s := TraceSnapshot{HopNames: HopNames[:]}
	if t == nil {
		return s
	}
	s.Interval = t.interval.Load()
	s.Total = t.total.Load()
	s.Sampled = t.sampled.Load()
	t.mu.Lock()
	for i := range t.ring {
		if t.ring[i].live() {
			s.Journeys = append(s.Journeys, t.ring[i])
		}
	}
	t.mu.Unlock()
	sort.SliceStable(s.Journeys, func(i, j int) bool {
		return s.Journeys[i].SpanNS() > s.Journeys[j].SpanNS()
	})
	return s
}

// MergeTraceSnapshots combines per-plane snapshots into one (the
// sharded tier's /trace view): journeys concatenate and re-sort
// slowest-first, counters sum, and the interval reports the smallest
// non-zero one (the most aggressive sampler).
func MergeTraceSnapshots(snaps []TraceSnapshot) TraceSnapshot {
	out := TraceSnapshot{HopNames: HopNames[:]}
	for _, s := range snaps {
		out.Total += s.Total
		out.Sampled += s.Sampled
		if s.Interval != 0 && (out.Interval == 0 || s.Interval < out.Interval) {
			out.Interval = s.Interval
		}
		out.Journeys = append(out.Journeys, s.Journeys...)
	}
	sort.SliceStable(out.Journeys, func(i, j int) bool {
		return out.Journeys[i].SpanNS() > out.Journeys[j].SpanNS()
	})
	return out
}
