package obs

import (
	"sync"
	"testing"
)

// fakeNS is an injectable monotonic clock for deterministic hop stamps.
type fakeNS struct{ t int64 }

func (f *fakeNS) now() int64 { f.t += 1000; return f.t }

func TestTraceSampleCadence(t *testing.T) {
	tr := NewTrace(nil, "trace", 4, 8)
	want := map[uint64]bool{0: true, 4: true, 8: true}
	for seq := uint64(0); seq < 10; seq++ {
		if got := tr.Sample(seq); got != want[seq] {
			t.Fatalf("seq %d sampled=%v", seq, got)
		}
	}
	if tr.total.Load() != 10 || tr.sampled.Load() != 3 {
		t.Fatalf("total=%d sampled=%d", tr.total.Load(), tr.sampled.Load())
	}
	// Interval 0 disables sampling but still counts traffic.
	tr.SetInterval(0)
	if tr.Sample(0) {
		t.Fatal("disabled sampler still sampling")
	}
	if tr.total.Load() != 11 {
		t.Fatal("disabled sampler stopped counting")
	}
	// A nil tracer is a no-op on every path.
	var nilTr *Trace
	if nilTr.Sample(0) {
		t.Fatal("nil tracer sampled")
	}
	nilTr.Record(TraceKey{}, 0, 0, HopFlush)
	nilTr.MarkDrained(TraceKey{}, 0, 0)
	nilTr.CompleteAnalyze()
	if s := nilTr.Snapshot(); len(s.Journeys) != 0 {
		t.Fatal("nil tracer produced journeys")
	}
}

func TestTraceJourneyLifecycle(t *testing.T) {
	clk := &fakeNS{}
	reg := NewRegistry()
	tr := NewTrace(reg, "trace", 64, 8)
	tr.SetNow(clk.now)

	key := TraceKey{ClientID: 7, Seq: 128}
	tr.Record(key, 3, 500, HopFlush)   // t=1000
	tr.Record(key, 3, 500, HopEnqueue) // t=2000
	tr.Record(key, 3, 0, HopWrite)     // t=3000
	tr.Record(key, 3, 500, HopDeliver) // t=4000
	tr.Record(key, 3, 500, HopStage)   // t=5000
	tr.MarkDrained(key, 3, 500)        // t=6000
	// Retransmit must not rewrite history.
	tr.Record(key, 3, 500, HopDeliver)
	tr.CompleteAnalyze() // t=8000 (retransmit consumed 7000)

	snap := tr.Snapshot()
	if len(snap.Journeys) != 1 {
		t.Fatalf("journeys: %d", len(snap.Journeys))
	}
	j := snap.Journeys[0]
	if j.Key != key || j.Rank != 3 || j.FlushNS != 500 {
		t.Fatalf("journey identity: %+v", j)
	}
	wantHops := [NumHops]int64{1000, 2000, 3000, 4000, 5000, 6000, 8000}
	if j.Hops != wantHops {
		t.Fatalf("hops %v, want %v", j.Hops, wantHops)
	}
	if j.SpanNS() != 8000-500 {
		t.Fatalf("span %d", j.SpanNS())
	}
	// The pending list is consumed: a second tick must not restamp.
	tr.CompleteAnalyze()
	if got := tr.Snapshot().Journeys[0].Hops[HopAnalyze]; got != 8000 {
		t.Fatalf("analyze hop restamped: %d", got)
	}
	// Registered Funcs reflect the ring.
	rs := reg.Snapshot()
	if m := rs.Get("vapro_trace_journeys"); m == nil || m.Value != 1 {
		t.Fatalf("journeys func: %+v", m)
	}
	if m := rs.Get("vapro_trace_sample_interval"); m == nil || m.Value != 64 {
		t.Fatalf("interval func: %+v", m)
	}
}

func TestTraceRingEviction(t *testing.T) {
	clk := &fakeNS{}
	tr := NewTrace(nil, "trace", 1, 4)
	tr.SetNow(clk.now)
	for seq := uint64(0); seq < 6; seq++ {
		tr.Record(TraceKey{ClientID: 1, Seq: seq}, 0, int64(seq+1), HopFlush)
	}
	snap := tr.Snapshot()
	if len(snap.Journeys) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap.Journeys))
	}
	seen := map[uint64]bool{}
	for _, j := range snap.Journeys {
		seen[j.Key.Seq] = true
	}
	for _, old := range []uint64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted journey %d still present", old)
		}
	}
	for _, cur := range []uint64{2, 3, 4, 5} {
		if !seen[cur] {
			t.Fatalf("journey %d missing", cur)
		}
	}
	// An evicted key re-recorded claims a fresh slot (no stale map entry).
	tr.Record(TraceKey{ClientID: 1, Seq: 0}, 0, 99, HopDeliver)
	snap = tr.Snapshot()
	found := false
	for _, j := range snap.Journeys {
		if j.Key.Seq == 0 {
			found = true
			if j.Hops[HopFlush] != 0 || j.Hops[HopDeliver] == 0 {
				t.Fatalf("re-claimed journey kept stale hops: %+v", j)
			}
		}
	}
	if !found {
		t.Fatal("re-recorded evicted key not re-claimed")
	}
}

func TestTraceSnapshotSlowestFirst(t *testing.T) {
	clk := &fakeNS{}
	tr := NewTrace(nil, "trace", 1, 8)
	tr.SetNow(clk.now)
	// Three journeys flushed at wall 100 with spans 900, 2900, 1900:
	// the drain stamp is pinned at flush+span via the fake clock.
	for i, span := range []int64{900, 2900, 1900} {
		key := TraceKey{ClientID: 9, Seq: uint64(i)}
		clk.t = 0
		tr.Record(key, i, 100, HopFlush)
		clk.t = 100 + span - 1000 // next now() = 100+span
		tr.MarkDrained(key, i, 100)
	}
	snap := tr.Snapshot()
	if len(snap.Journeys) != 3 {
		t.Fatalf("journeys: %d", len(snap.Journeys))
	}
	spans := []int64{snap.Journeys[0].SpanNS(), snap.Journeys[1].SpanNS(), snap.Journeys[2].SpanNS()}
	if !(spans[0] >= spans[1] && spans[1] >= spans[2]) {
		t.Fatalf("not slowest-first: %v", spans)
	}
	if spans[0] != 2900 || spans[2] != 900 {
		t.Fatalf("spans %v", spans)
	}
}

func TestMergeTraceSnapshots(t *testing.T) {
	a := TraceSnapshot{Interval: 64, Total: 100, Sampled: 2,
		Journeys: []Journey{{Key: TraceKey{1, 1}, FlushNS: 10, Hops: [NumHops]int64{10, 0, 0, 0, 0, 50, 0}}}}
	b := TraceSnapshot{Interval: 16, Total: 50, Sampled: 4,
		Journeys: []Journey{{Key: TraceKey{2, 1}, FlushNS: 10, Hops: [NumHops]int64{10, 0, 0, 0, 0, 200, 0}}}}
	c := TraceSnapshot{} // idle plane: no interval, nothing sampled
	m := MergeTraceSnapshots([]TraceSnapshot{a, b, c})
	if m.Total != 150 || m.Sampled != 6 {
		t.Fatalf("counters: %+v", m)
	}
	if m.Interval != 16 {
		t.Fatalf("interval %d, want min non-zero 16", m.Interval)
	}
	if len(m.Journeys) != 2 || m.Journeys[0].Key.ClientID != 2 {
		t.Fatalf("journeys not slowest-first: %+v", m.Journeys)
	}
}

// TestTraceConcurrent hammers the ring from recorders, a drainer, and
// snapshot readers at once — the mutex must keep the slot map and ring
// consistent (run under -race in CI).
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(nil, "trace", 1, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := TraceKey{ClientID: uint64(w), Seq: uint64(i)}
				tr.Record(key, w, int64(i+1), HopFlush)
				tr.MarkDrained(key, w, int64(i+1))
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr.CompleteAnalyze()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := tr.Snapshot()
			if len(s.Journeys) > 16 {
				panic("snapshot larger than ring")
			}
		}
	}()
	wg.Wait()
	if got := len(tr.Snapshot().Journeys); got != 16 {
		t.Fatalf("final ring population: %d", got)
	}
}

// The tracing tax on unsampled batches (every batch but one in 64) is
// two atomics and a modulo — pinned allocation-free, like the other
// hot-path instrumentation.
func TestTraceHotPathZeroAlloc(t *testing.T) {
	tr := NewTrace(nil, "trace", 64, 8)
	seq := uint64(1) // never hits the interval
	if n := testing.AllocsPerRun(1000, func() {
		if tr.Sample(seq) {
			t.Fatal("unsampled path sampled")
		}
		seq += 2
		if seq%64 == 0 {
			seq++
		}
	}); n != 0 {
		t.Fatalf("Trace.Sample allocates: %v", n)
	}
	var nilTr *Trace
	if n := testing.AllocsPerRun(1000, func() { nilTr.Sample(1) }); n != 0 {
		t.Fatalf("nil Trace.Sample allocates: %v", n)
	}
	// Re-stamping an already-claimed journey (the steady state for a
	// sampled batch's later hops) is also allocation-free.
	key := TraceKey{ClientID: 1, Seq: 64}
	tr.Record(key, 0, 1, HopFlush)
	if n := testing.AllocsPerRun(1000, func() { tr.Record(key, 0, 1, HopWrite) }); n != 0 {
		t.Fatalf("Trace.Record re-stamp allocates: %v", n)
	}
}
