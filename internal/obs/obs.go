// Package obs is Vapro's self-observability plane: a zero-allocation
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms) plus lightweight pipeline span tracing, threaded through
// the collector's hot layers (intake, wire transport, window analysis,
// clustering cache, interposition). The paper's own premise (§2, §6.2)
// is that a production monitor must account for its *own* overhead —
// storage rate, analysis latency, interception cost — so the monitor
// itself must be monitorable, continuously and cheaply.
//
// Design rules:
//
//   - Hot-path operations (Counter.Add, Gauge.Set/SetMax,
//     Histogram.Observe, Spans.RecordNS) perform no allocation — pinned
//     by testing.AllocsPerRun — and use only atomic loads/stores plus,
//     for span rings, one short mutex hold on a cold-enough path.
//   - Registration (Registry.Counter, …) allocates and takes locks; it
//     happens once at construction time, never per event.
//   - Reading (Snapshot, the HTTP handler) is a cold path and may
//     allocate freely.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically updated signed value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d and returns the new value.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind classifies a registered metric.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindFunc
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "func"
	}
}

// metric is one registry entry. Exactly one of the value fields is set,
// matching Kind.
type metric struct {
	name, layer, help string
	kind              Kind
	counter           *Counter
	gauge             *Gauge
	hist              *Histogram
	fn                func() float64
}

// Registry holds named metrics for enumeration and serving. Metric
// handles returned by the registration methods are plain atomics: using
// them never touches the registry again.
type Registry struct {
	start time.Time

	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry. Uptime (used by rate
// derivations in `vapro status`) counts from this call.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now()}
	r.Func("vapro_uptime_seconds", "process", "wall seconds since the registry was created",
		func() float64 { return time.Since(r.start).Seconds() })
	return r
}

// Uptime returns the wall time since the registry was created.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// register appends m, replacing any previous metric of the same name
// (re-registration keeps the surface duplicate-free; last writer wins).
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.metrics {
		if r.metrics[i].name == m.name {
			r.metrics[i] = m
			return
		}
	}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, layer, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, layer: layer, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, layer, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, layer: layer, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (ascending; an overflow bucket is implicit). A nil or
// empty bounds slice uses LatencyBounds.
func (r *Registry) Histogram(name, layer, help string, bounds []int64) *Histogram {
	h := NewHistogram(bounds)
	r.register(metric{name: name, layer: layer, help: help, kind: KindHistogram, hist: h})
	return h
}

// Func registers a derived metric computed at snapshot time — how
// already-atomic counters owned by other layers (cluster.Cache hits,
// staged-depth sums) surface without double accounting.
func (r *Registry) Func(name, layer, help string, fn func() float64) {
	r.register(metric{name: name, layer: layer, help: help, kind: KindFunc, fn: fn})
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name  string        `json:"name"`
	Layer string        `json:"layer"`
	Help  string        `json:"help,omitempty"`
	Kind  string        `json:"kind"`
	Value float64       `json:"value"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot is the full registry state, the JSON surface of the handler.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Metrics       []MetricSnapshot `json:"metrics"`
}

// Snapshot captures every registered metric, sorted by (layer, name)
// for a stable rendering order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	snap := Snapshot{UptimeSeconds: time.Since(r.start).Seconds()}
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Layer: m.layer, Help: m.help, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Load())
		case KindGauge:
			s.Value = float64(m.gauge.Load())
		case KindHistogram:
			h := m.hist.Snapshot()
			s.Hist = &h
			s.Value = float64(h.Total)
		case KindFunc:
			s.Value = m.fn()
		}
		snap.Metrics = append(snap.Metrics, s)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		a, b := &snap.Metrics[i], &snap.Metrics[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Name < b.Name
	})
	return snap
}

// Get returns the snapshot of one metric by name (nil if absent) — a
// test and tooling convenience.
func (s *Snapshot) Get(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}
