package obs

import "sort"

// Snapshot merging: the fleet scraper and the sharded tier both need
// one registry-shaped view over many per-process registries. Merging is
// defined per metric kind:
//
//   - counters sum (each process counts disjoint events),
//   - gauges take the max (depth/peak gauges are per-process high-water
//     marks; a sum would invent load no process ever saw),
//   - histograms merge bucket-wise — every registry builds its ladders
//     from the same LatencyBounds/CountBounds constructors, so equal
//     bounds add exactly and the quantiles recomputed over the merged
//     buckets mean precisely what a single process's quantiles mean,
//   - Func metrics sum by default (most are sums of live atomics), with
//     a per-name override table for the few whose semantics are
//     max-like (uptime, provisioned ranks, sampling interval).
//
// Metrics present in only some snapshots merge as if absent meant zero
// (max rules ignore absence).

// mergeMax names the Func/gauge-like metrics that merge by max rather
// than sum: values that describe the same global quantity from every
// process (provisioned ranks, shard count) or a per-process clock.
var mergeMax = map[string]bool{
	"vapro_uptime_seconds":        true,
	"vapro_ranks":                 true,
	"vapro_shards":                true,
	"vapro_trace_sample_interval": true,
}

// MergeSnapshots folds snaps into one snapshot with the merge rules
// above. Metric order is (layer, name) like Registry.Snapshot; uptime
// is the max across the inputs.
func MergeSnapshots(snaps []Snapshot) Snapshot {
	var out Snapshot
	idx := make(map[string]int)
	for _, s := range snaps {
		if s.UptimeSeconds > out.UptimeSeconds {
			out.UptimeSeconds = s.UptimeSeconds
		}
		for i := range s.Metrics {
			m := &s.Metrics[i]
			j, ok := idx[m.Name]
			if !ok {
				idx[m.Name] = len(out.Metrics)
				cp := *m
				if m.Hist != nil {
					h := cloneHist(m.Hist)
					cp.Hist = &h
				}
				out.Metrics = append(out.Metrics, cp)
				continue
			}
			dst := &out.Metrics[j]
			switch {
			case dst.Hist != nil || m.Hist != nil:
				mergeHistInto(dst, m)
			case dst.Kind == "gauge" || mergeMax[m.Name]:
				if m.Value > dst.Value {
					dst.Value = m.Value
				}
			default: // counters and summing funcs
				dst.Value += m.Value
			}
		}
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		a, b := &out.Metrics[i], &out.Metrics[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Name < b.Name
	})
	return out
}

// cloneHist deep-copies a histogram snapshot so merging never mutates
// an input snapshot's buckets.
func cloneHist(h *HistSnapshot) HistSnapshot {
	cp := *h
	cp.Bounds = append([]int64(nil), h.Bounds...)
	cp.Counts = append([]uint64(nil), h.Counts...)
	return cp
}

// mergeHistInto adds src's histogram into dst bucket-wise and rederives
// the quantiles over the merged buckets — exact, not an approximation,
// because both sides bucketed their observations identically. Histogram
// pairs with different bounds (a registry drifted) fall back to keeping
// the larger population rather than fabricating buckets.
func mergeHistInto(dst, src *MetricSnapshot) {
	switch {
	case src.Hist == nil:
		return
	case dst.Hist == nil:
		h := cloneHist(src.Hist)
		dst.Hist = &h
	case boundsEqual(dst.Hist.Bounds, src.Hist.Bounds):
		for i := range dst.Hist.Counts {
			dst.Hist.Counts[i] += src.Hist.Counts[i]
		}
		dst.Hist.Sum += src.Hist.Sum
		dst.Hist.Total += src.Hist.Total
	case src.Hist.Total > dst.Hist.Total:
		h := cloneHist(src.Hist)
		dst.Hist = &h
	}
	h := dst.Hist
	h.P50 = h.Quantile(0.50)
	h.P90 = h.Quantile(0.90)
	h.P99 = h.Quantile(0.99)
	if h.Total > 0 {
		h.Mean = float64(h.Sum) / float64(h.Total)
	}
	dst.Value = float64(h.Total)
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
