package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesRingAndRate(t *testing.T) {
	s := NewSeries(4)
	if s.Rate() != 0 || s.Last() != 0 || s.Median() != 0 {
		t.Fatal("empty series not zero")
	}
	base := int64(0)
	for i, v := range []float64{10, 20, 40, 70, 110} { // 5 points into cap 4
		s.Add(base+int64(i)*int64(time.Second), v)
	}
	if s.Len() != 4 {
		t.Fatalf("len %d", s.Len())
	}
	pts := s.Points()
	if pts[0].Value != 20 || pts[3].Value != 110 {
		t.Fatalf("eviction order wrong: %+v", pts)
	}
	// Rate spans the ring window: (110-20)/3s.
	if got := s.Rate(); got != 30 {
		t.Fatalf("rate %v", got)
	}
	if s.Last() != 110 {
		t.Fatalf("last %v", s.Last())
	}
	// A counter reset (restart) reads as 0, not a negative rate.
	s.Add(base+10*int64(time.Second), 5)
	if got := s.Rate(); got != 0 {
		t.Fatalf("reset rate %v, want 0", got)
	}
	// Degenerate capacity is clamped to 2.
	tiny := NewSeries(0)
	tiny.Add(0, 1)
	tiny.Add(int64(time.Second), 3)
	if tiny.Rate() != 2 {
		t.Fatalf("tiny rate %v", tiny.Rate())
	}
}

func TestSeriesSetObserveHistP99(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "x", "").Add(5)
	h := reg.Histogram("h_ns", "x", "", []int64{10, 100})
	h.Observe(50)
	ss := NewSeriesSet(8)
	ss.Observe(nil, 0) // nil snapshot is a no-op
	snap := reg.Snapshot()
	ss.Observe(&snap, int64(time.Second))
	if ss.Get("c_total").Last() != 5 {
		t.Fatal("counter series missing")
	}
	// Histograms get both a count series and a derived :p99 series.
	if ss.Get("h_ns") == nil || ss.Get("h_ns"+histP99Suffix) == nil {
		t.Fatal("hist series missing")
	}
	if got := ss.Get("h_ns" + histP99Suffix).Last(); got != snap.Get("h_ns").Hist.P99 {
		t.Fatalf("p99 series %v", got)
	}
	var nilSet *SeriesSet
	if nilSet.Get("x") != nil || nilSet.Rate("x") != 0 {
		t.Fatal("nil set not inert")
	}
}

func TestEvalHealthRules(t *testing.T) {
	rules := []HealthRule{
		{Name: "stall-rate", Metric: "stalls_total", Kind: RuleRate, Degraded: 1, Critical: 10},
		{Name: "depth", Metric: "depth", Kind: RuleValue, Degraded: 64, Critical: 512},
		{Name: "lat", Metric: "h_ns", Kind: RuleP99Ratio, Degraded: 2, Critical: 4},
	}
	reg := NewRegistry()
	depth := reg.Gauge("depth", "x", "")
	stalls := reg.Counter("stalls_total", "x", "")
	snap := reg.Snapshot()

	// No series history: rate and ratio abstain; value rule reads ok.
	rep := EvalHealth(rules, &snap, nil)
	if rep.State != HealthOK || len(rep.Reasons) != 0 {
		t.Fatalf("quiet eval: %+v", rep)
	}

	// Degraded value.
	depth.Set(100)
	snap = reg.Snapshot()
	rep = EvalHealth(rules, &snap, nil)
	if rep.State != HealthDegraded || len(rep.Reasons) != 1 {
		t.Fatalf("degraded value: %+v", rep)
	}
	if !strings.Contains(rep.Reasons[0], "depth=100") {
		t.Fatalf("reason: %q", rep.Reasons[0])
	}

	// Rate rule needs two points; 30 stalls over 2s = 15/s → critical,
	// and critical reasons sort ahead of degraded ones.
	ss := NewSeriesSet(8)
	ss.Observe(&snap, 0)
	stalls.Add(30)
	snap = reg.Snapshot()
	ss.Observe(&snap, 2*int64(time.Second))
	rep = EvalHealth(rules, &snap, ss)
	if rep.State != HealthCritical || len(rep.Reasons) != 2 {
		t.Fatalf("critical rate: %+v", rep)
	}
	if !strings.HasPrefix(rep.Reasons[0], "critical: stall-rate") {
		t.Fatalf("critical reason not first: %v", rep.Reasons)
	}

	// Ratio rule: three points of p99 history, last one 5× the median.
	hreg := NewRegistry()
	h := hreg.Histogram("h_ns", "x", "", []int64{100, 1000, 10000})
	hs := NewSeriesSet(8)
	h.Observe(50)
	s1 := hreg.Snapshot()
	hs.Observe(&s1, 0)
	h.Observe(50)
	s2 := hreg.Snapshot()
	hs.Observe(&s2, int64(time.Second))
	for i := 0; i < 500; i++ {
		h.Observe(9000) // drags current p99 far above the reference
	}
	s3 := hreg.Snapshot()
	hs.Observe(&s3, 2*int64(time.Second))
	rep = EvalHealth(rules[2:], &s3, hs)
	if rep.State == HealthOK {
		t.Fatalf("latency blowup not flagged: %+v", rep)
	}
	if !strings.Contains(rep.Reasons[0], "lat h_ns=") {
		t.Fatalf("ratio reason: %v", rep.Reasons)
	}

	// Thresholds <= 0 disable a tier.
	off := []HealthRule{{Name: "d", Metric: "depth", Kind: RuleValue, Degraded: 0, Critical: 0}}
	if rep := EvalHealth(off, &snap, nil); rep.State != HealthOK {
		t.Fatalf("disabled rule fired: %+v", rep)
	}
}

func TestHealthStateJSONRoundTrip(t *testing.T) {
	for _, st := range []HealthState{HealthOK, HealthDegraded, HealthCritical, HealthUnreachable} {
		b, err := st.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back HealthState
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Fatalf("%v round-tripped to %v", st, back)
		}
	}
	var odd HealthState
	if err := odd.UnmarshalJSON([]byte(`"someday-state"`)); err != nil || odd != HealthUnreachable {
		t.Fatalf("unknown name: %v %v", odd, nil)
	}
}

func TestDefaultHealthRulesShape(t *testing.T) {
	rules := DefaultHealthRules()
	if len(rules) != 4 {
		t.Fatalf("rules: %d", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name == "" || r.Metric == "" || r.Degraded <= 0 || r.Critical < r.Degraded {
			t.Fatalf("malformed rule: %+v", r)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"intake-stall-rate", "seq-gap-rate", "spill-depth", "tick-latency-p99"} {
		if !seen[want] {
			t.Fatalf("missing rule %s", want)
		}
	}
}
