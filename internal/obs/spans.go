package obs

import (
	"sync"
	"time"
)

// Spans is lightweight pipeline tracing: a fixed set of named stages,
// each backed by a latency histogram, plus a bounded ring of the most
// recent spans for the live status surface. Recording a span is one
// histogram observation (atomics) and one ring write under a short
// mutex — no allocation. Stages are addressed by index (resolved once
// at construction), never by string on the hot path.
type Spans struct {
	stages []string
	hists  []*Histogram

	mu    sync.Mutex
	ring  []spanRec
	next  int
	total uint64
}

type spanRec struct {
	stage int32
	endNS int64 // wall clock, UnixNano
	durNS int64
}

// spanRingSize bounds the recent-span ring.
const spanRingSize = 256

// NewSpans registers one latency histogram per stage into reg, named
// <prefix>_<stage>_ns, and returns the tracer. Stage order fixes the
// indices used with RecordNS.
func NewSpans(reg *Registry, prefix, layer string, stages ...string) *Spans {
	s := &Spans{
		stages: stages,
		hists:  make([]*Histogram, len(stages)),
		ring:   make([]spanRec, spanRingSize),
	}
	for i, name := range stages {
		s.hists[i] = reg.Histogram(prefix+"_"+name+"_ns", layer,
			"span latency of the "+name+" stage (ns)", LatencyBounds())
	}
	return s
}

// RecordNS records one completed span of the given stage. Allocation-
// free; safe for concurrent use.
func (s *Spans) RecordNS(stage int, durNS int64) {
	if s == nil || stage < 0 || stage >= len(s.hists) {
		return
	}
	s.hists[stage].Observe(durNS)
	end := time.Now().UnixNano()
	s.mu.Lock()
	s.ring[s.next] = spanRec{stage: int32(stage), endNS: end, durNS: durNS}
	s.next = (s.next + 1) % len(s.ring)
	s.total++
	s.mu.Unlock()
}

// Record is RecordNS with a start time: Record(stage, t0) closes a span
// opened at t0.
func (s *Spans) Record(stage int, start time.Time) {
	s.RecordNS(stage, time.Since(start).Nanoseconds())
}

// Hist returns the latency histogram of one stage.
func (s *Spans) Hist(stage int) *Histogram { return s.hists[stage] }

// Stages returns the stage names in index order.
func (s *Spans) Stages() []string { return s.stages }

// SpanRecord is one recent span, newest first in Recent's output.
type SpanRecord struct {
	Stage string    `json:"stage"`
	End   time.Time `json:"end"`
	DurNS int64     `json:"dur_ns"`
}

// Recent returns up to n of the most recent spans, newest first.
func (s *Spans) Recent(n int) []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := int(s.total)
	if uint64(have) > uint64(len(s.ring)) {
		have = len(s.ring)
	}
	if n > have {
		n = have
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (s.next - 1 - i + 2*len(s.ring)) % len(s.ring)
		r := s.ring[idx]
		out = append(out, SpanRecord{
			Stage: s.stages[r.stage],
			End:   time.Unix(0, r.endNS),
			DurNS: r.durNS,
		})
	}
	return out
}
