package obs

import "sort"

// Per-metric time-series rings: a scraper appends one point per metric
// per scrape, and the health rules read rates ("stalls per second over
// the scrape window") and reference quantile histories ("current p99
// vs the window's median p99") off the rings. Deliberately tiny — a
// fixed ring of (ns, value) points per metric, no downsampling — this
// is a live-status surface, not a TSDB.

// SeriesPoint is one observation.
type SeriesPoint struct {
	NS    int64   `json:"ns"`
	Value float64 `json:"value"`
}

// Series is a fixed-capacity ring of points in observation order.
type Series struct {
	pts  []SeriesPoint
	next int
	n    int
}

// NewSeries returns a ring holding up to capacity points (min 2 — a
// rate needs two).
func NewSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{pts: make([]SeriesPoint, capacity)}
}

// Add appends one point, evicting the oldest at capacity.
func (s *Series) Add(ns int64, v float64) {
	s.pts[s.next] = SeriesPoint{NS: ns, Value: v}
	s.next = (s.next + 1) % len(s.pts)
	if s.n < len(s.pts) {
		s.n++
	}
}

// Len returns the number of points held.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Points returns the held points, oldest first.
func (s *Series) Points() []SeriesPoint {
	if s == nil || s.n == 0 {
		return nil
	}
	out := make([]SeriesPoint, 0, s.n)
	start := (s.next - s.n + len(s.pts)) % len(s.pts)
	for i := 0; i < s.n; i++ {
		out = append(out, s.pts[(start+i)%len(s.pts)])
	}
	return out
}

// Last returns the newest value (0 when empty).
func (s *Series) Last() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	return s.pts[(s.next-1+len(s.pts))%len(s.pts)].Value
}

// Rate returns the per-second change between the oldest and newest
// points — the counter rate over the ring's window. 0 with fewer than
// two points or no elapsed time; counter resets (value decreased, e.g.
// a restarted process) report 0 rather than a negative rate.
func (s *Series) Rate() float64 {
	if s == nil || s.n < 2 {
		return 0
	}
	first := s.pts[(s.next-s.n+len(s.pts))%len(s.pts)]
	last := s.pts[(s.next-1+len(s.pts))%len(s.pts)]
	dt := float64(last.NS-first.NS) / 1e9
	if dt <= 0 || last.Value < first.Value {
		return 0
	}
	return (last.Value - first.Value) / dt
}

// Median returns the median of the held values (0 when empty).
func (s *Series) Median() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	vals := make([]float64, 0, s.n)
	for _, p := range s.Points() {
		vals = append(vals, p.Value)
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// histP99Suffix names the derived series a SeriesSet keeps per
// histogram metric alongside the sample-count series.
const histP99Suffix = ":p99"

// SeriesSet maintains one Series per metric name over successive
// snapshots. Histogram metrics get two series: the sample count under
// the metric name, and the snapshot p99 under name+":p99" (what the
// tick-latency health rule compares against its reference window).
type SeriesSet struct {
	capacity int
	m        map[string]*Series
}

// NewSeriesSet builds a set whose rings hold capacity points each.
func NewSeriesSet(capacity int) *SeriesSet {
	return &SeriesSet{capacity: capacity, m: make(map[string]*Series)}
}

// Observe appends one point per metric from the snapshot, stamped ns.
func (ss *SeriesSet) Observe(snap *Snapshot, ns int64) {
	if ss == nil || snap == nil {
		return
	}
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		ss.series(m.Name).Add(ns, m.Value)
		if m.Hist != nil {
			ss.series(m.Name+histP99Suffix).Add(ns, m.Hist.P99)
		}
	}
}

func (ss *SeriesSet) series(name string) *Series {
	s := ss.m[name]
	if s == nil {
		s = NewSeries(ss.capacity)
		ss.m[name] = s
	}
	return s
}

// Get returns the named series (nil when never observed).
func (ss *SeriesSet) Get(name string) *Series {
	if ss == nil {
		return nil
	}
	return ss.m[name]
}

// Rate returns the named series' Rate (0 when absent).
func (ss *SeriesSet) Rate(name string) float64 { return ss.Get(name).Rate() }
