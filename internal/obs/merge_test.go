package obs

import (
	"math"
	"testing"
)

func shardSnap(frames uint64, staged int64, obsNS ...int64) Snapshot {
	reg := NewRegistry()
	reg.Counter("vapro_wire_frames_total", "wire", "frames").Add(frames)
	reg.Gauge("vapro_intake_staged", "intake", "staged").Set(staged)
	reg.Gauge("vapro_ranks", "collect", "ranks").Set(4)
	h := reg.Histogram("vapro_detect_window_ns", "detect", "window", []int64{100, 1000, 10000})
	for _, v := range obsNS {
		h.Observe(v)
	}
	return reg.Snapshot()
}

func TestMergeSnapshotsSemantics(t *testing.T) {
	a := shardSnap(10, 3, 50, 500)
	b := shardSnap(32, 7, 5000, 20000)
	m := MergeSnapshots([]Snapshot{a, b})

	// Counters sum.
	if got := m.Get("vapro_wire_frames_total"); got == nil || got.Value != 42 {
		t.Fatalf("counter merge: %+v", got)
	}
	// Gauges max (a fleet's staged depth is its worst shard, not a sum
	// of unrelated instants).
	if got := m.Get("vapro_intake_staged"); got == nil || got.Value != 7 {
		t.Fatalf("gauge merge: %+v", got)
	}
	// mergeMax overrides: vapro_ranks reports the global rank count each
	// plane already knows, so merging takes max, not sum.
	if got := m.Get("vapro_ranks"); got == nil || got.Value != 4 {
		t.Fatalf("ranks merge: %+v", got)
	}
	// Histograms merge bucket-wise; quantiles are rederived over the
	// merged buckets — identical to one histogram fed all observations.
	var ref Snapshot
	ref = shardSnap(0, 0, 50, 500, 5000, 20000)
	got := m.Get("vapro_detect_window_ns")
	want := ref.Get("vapro_detect_window_ns")
	if got == nil || got.Hist == nil {
		t.Fatal("histogram lost in merge")
	}
	if got.Hist.Total != 4 || got.Hist.Sum != want.Hist.Sum {
		t.Fatalf("hist totals: %+v", got.Hist)
	}
	for _, q := range []struct{ got, want float64 }{
		{got.Hist.P50, want.Hist.P50},
		{got.Hist.P90, want.Hist.P90},
		{got.Hist.P99, want.Hist.P99},
		{got.Hist.Mean, want.Hist.Mean},
	} {
		if math.Abs(q.got-q.want) > 1e-9 {
			t.Fatalf("merged quantiles diverge from single-histogram reference: got %+v want %+v",
				got.Hist, want.Hist)
		}
	}
	// Merging must not mutate its inputs.
	if a.Get("vapro_wire_frames_total").Value != 10 {
		t.Fatal("merge mutated input snapshot")
	}
	// Output is sorted by (layer, name) like a registry snapshot.
	for i := 1; i < len(m.Metrics); i++ {
		p, c := m.Metrics[i-1], m.Metrics[i]
		if p.Layer > c.Layer || (p.Layer == c.Layer && p.Name > c.Name) {
			t.Fatalf("merged snapshot unsorted at %d: %s/%s after %s/%s",
				i, c.Layer, c.Name, p.Layer, p.Name)
		}
	}
}

func TestMergeSnapshotsUptimeAndDisjoint(t *testing.T) {
	a := Snapshot{UptimeSeconds: 10, Metrics: []MetricSnapshot{
		{Name: "only_a_total", Layer: "x", Kind: "counter", Value: 5},
	}}
	b := Snapshot{UptimeSeconds: 99, Metrics: []MetricSnapshot{
		{Name: "only_b", Layer: "x", Kind: "gauge", Value: 2},
	}}
	m := MergeSnapshots([]Snapshot{a, b})
	if m.UptimeSeconds != 99 {
		t.Fatalf("uptime %v, want max", m.UptimeSeconds)
	}
	if m.Get("only_a_total") == nil || m.Get("only_b") == nil {
		t.Fatal("disjoint metrics dropped")
	}
	if len(MergeSnapshots(nil).Metrics) != 0 {
		t.Fatal("empty merge not empty")
	}
}

func TestMergeHistMismatchedBounds(t *testing.T) {
	mk := func(bounds []int64, n int) Snapshot {
		reg := NewRegistry()
		h := reg.Histogram("h_ns", "x", "", bounds)
		for i := 0; i < n; i++ {
			h.Observe(int64(i))
		}
		return reg.Snapshot()
	}
	big := mk([]int64{10, 100}, 50)
	small := mk([]int64{5, 50}, 3)
	m := MergeSnapshots([]Snapshot{small, big})
	got := m.Get("h_ns")
	// Incompatible bounds can't be added bucket-wise: the larger
	// population wins rather than fabricating buckets.
	if got.Hist.Total != 50 {
		t.Fatalf("mismatched-bounds merge kept total %d, want larger population 50", got.Hist.Total)
	}
}

// TestQuantileTopBucketClamp pins the interpolation contract at the
// edges: ranks inside a finite bucket interpolate linearly; ranks in
// the overflow bucket clamp to the last finite bound (a floor, not an
// extrapolation).
func TestQuantileTopBucketClamp(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_ns", "x", "", []int64{100, 200})
	// 9 observations in (100,200], 1 in overflow.
	for i := 0; i < 9; i++ {
		h.Observe(150)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	// p50 lands in bucket (100,200] at rank 5 of its 9: 100 + 100*5/9.
	if want := 100 + 100*5.0/9.0; math.Abs(s.P50-want) > 1e-9 {
		t.Fatalf("p50 %v, want %v", s.P50, want)
	}
	// p99 (rank 9.9) lands in the overflow bucket: clamps to bound 200,
	// never reports the million-ns outlier it can't place.
	if s.P99 != 200 {
		t.Fatalf("p99 %v, want top-bucket clamp 200", s.P99)
	}
	if q := s.Quantile(1.0); q != 200 {
		t.Fatalf("q1.0 %v, want 200", q)
	}
	// All mass in overflow: every quantile clamps.
	reg2 := NewRegistry()
	h2 := reg2.Histogram("h2_ns", "x", "", []int64{100})
	h2.Observe(999)
	if s2 := h2.Snapshot(); s2.P50 != 100 || s2.P99 != 100 {
		t.Fatalf("overflow-only quantiles: %+v", s2)
	}
	// Empty histogram reports 0, not NaN.
	empty := (&HistSnapshot{Bounds: []int64{1}}).Quantile(0.5)
	if empty != 0 {
		t.Fatalf("empty quantile %v", empty)
	}
}
