package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter: %d", c.Load())
	}
	var g Gauge
	g.Set(7)
	if g.Add(-3) != 4 || g.Load() != 4 {
		t.Fatalf("gauge: %d", g.Load())
	}
	g.SetMax(2)
	if g.Load() != 4 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatal("SetMax did not raise the gauge")
	}
}

// Observations landing exactly on a bucket's upper bound must count in
// that bucket (bounds are inclusive upper bounds), and anything past the
// last bound lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{10, 20, 40} { // exact boundaries
		h.Observe(v)
	}
	h.Observe(1)  // below first bound → bucket 0
	h.Observe(11) // (10, 20] → bucket 1
	h.Observe(41) // overflow
	h.Observe(1 << 60)
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Total != 7 {
		t.Fatalf("total: %d", s.Total)
	}
	if s.Sum != 10+20+40+1+11+41+(1<<60) {
		t.Fatalf("sum: %d", s.Sum)
	}
	if h.Count() != 7 {
		t.Fatalf("Count: %d", h.Count())
	}
}

// The quantile interpolation is pinned exactly: bucket i spans
// (bounds[i-1], bounds[i]] (bucket 0 from 0), and the rank q·Total is
// interpolated linearly inside its bucket.
func TestHistogramQuantileExact(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	// 4 observations in (0,10], 4 in (10,20], 2 in (20,30].
	for i := 0; i < 4; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	h.Observe(25)
	h.Observe(25)
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0.0, 0},    // rank 0 → bottom of first bucket
		{0.2, 5},    // rank 2 of 4 in bucket (0,10] → 10·(2/4)
		{0.4, 10},   // rank 4 = full first bucket → exactly its bound
		{0.5, 12.5}, // rank 5 → 1 of 4 into (10,20]
		{0.8, 20},   // rank 8 exhausts second bucket → exactly 20
		{0.9, 25},   // rank 9 → 1 of 2 into (20,30]
		{1.0, 30},   // rank 10 → top bound
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Fatalf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

// Ranks landing in the overflow bucket report the last finite bound (a
// floor, not an invented estimate).
func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	h.Observe(5)
	h.Observe(1000)
	h.Observe(2000)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 20 {
		t.Fatalf("overflow quantile: %v, want 20", got)
	}
	if got := s.Quantile(0.1); got >= 10.0+1e-9 {
		t.Fatalf("low quantile leaked into overflow: %v", got)
	}
	// All-overflow histogram still answers with the last bound.
	h2 := NewHistogram([]int64{10})
	h2.Observe(99)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got != 10 {
		t.Fatalf("all-overflow quantile: %v", got)
	}
	// Empty histogram.
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

// Concurrent Observe must be race-clean (run under -race in CI) and
// lose no observations.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("lost observations: %d, want %d", got, workers*per)
	}
}

// Hot-path instrumentation must not allocate: these pins are what keeps
// the <2% bench budget honest.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "t", "")
	g := reg.Gauge("g", "t", "")
	h := reg.Histogram("h_ns", "t", "", nil)
	sp := NewSpans(reg, "stage", "t", "prep", "merge")
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates: %v", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.SetMax(2) }); n != 0 {
		t.Fatalf("Gauge allocates: %v", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates: %v", n)
	}
	if n := testing.AllocsPerRun(1000, func() { sp.RecordNS(1, 999) }); n != 0 {
		t.Fatalf("Spans.RecordNS allocates: %v", n)
	}
}

func TestSpansRecentAndHists(t *testing.T) {
	reg := NewRegistry()
	sp := NewSpans(reg, "vapro_detect_stage", "detect", "prep", "cluster", "merge")
	sp.RecordNS(0, 100)
	sp.RecordNS(2, 300)
	sp.Record(1, time.Now().Add(-time.Millisecond))
	rec := sp.Recent(10)
	if len(rec) != 3 {
		t.Fatalf("recent: %d", len(rec))
	}
	if rec[0].Stage != "cluster" || rec[1].Stage != "merge" || rec[2].Stage != "prep" {
		t.Fatalf("recent order wrong: %+v", rec)
	}
	if rec[0].DurNS < int64(time.Millisecond) {
		t.Fatalf("Record measured %dns", rec[0].DurNS)
	}
	if sp.Hist(2).Count() != 1 {
		t.Fatal("stage hist not recorded")
	}
	// The per-stage histograms are registered under prefix_stage_ns.
	snap := reg.Snapshot()
	if snap.Get("vapro_detect_stage_cluster_ns") == nil {
		t.Fatal("span histogram not registered")
	}
	// Ring wraps without panicking and caps Recent.
	for i := 0; i < 3*spanRingSize; i++ {
		sp.RecordNS(i%3, int64(i))
	}
	if got := len(sp.Recent(2 * spanRingSize)); got != spanRingSize {
		t.Fatalf("ring cap: %d", got)
	}
}

func TestRegistrySnapshotAndReplace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "layerA", "help")
	c.Add(5)
	reg.Func("f", "layerB", "", func() float64 { return 2.5 })
	snap := reg.Snapshot()
	if m := snap.Get("x_total"); m == nil || m.Value != 5 || m.Kind != "counter" || m.Layer != "layerA" {
		t.Fatalf("counter snapshot: %+v", m)
	}
	if m := snap.Get("f"); m == nil || m.Value != 2.5 {
		t.Fatalf("func snapshot: %+v", m)
	}
	if snap.Get("vapro_uptime_seconds") == nil {
		t.Fatal("builtin uptime metric missing")
	}
	if snap.UptimeSeconds < 0 {
		t.Fatal("uptime negative")
	}
	// Re-registering the same name replaces, not duplicates.
	c2 := reg.Counter("x_total", "layerA", "help")
	c2.Add(1)
	snap = reg.Snapshot()
	seen := 0
	for _, m := range snap.Metrics {
		if m.Name == "x_total" {
			seen++
			if m.Value != 1 {
				t.Fatalf("replacement not in effect: %v", m.Value)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("duplicate registration: %d entries", seen)
	}
}
