package faults

import (
	"net"
	"sync"
)

// Switch is a shared on/off gate for scripted network partitions: a
// chaos harness flips it down to sever every dial path that goes
// through a GatedDialer, and back up to heal the partition. It is safe
// for concurrent use — producers keep dialing while the harness flips.
type Switch struct {
	mu   sync.Mutex
	down bool
}

// NewSwitch returns a Switch in the up (passing) state.
func NewSwitch() *Switch { return &Switch{} }

// SetDown flips the gate: true severs gated dialers, false heals them.
func (s *Switch) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports whether the gate is currently severed.
func (s *Switch) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// GatedDialer wraps a dialer with a Switch: while the switch is down
// every dial fails with ErrInjected (the caller's reconnect loop backs
// off exactly as it would for a dead host); while up, dials delegate
// to next untouched.
func GatedDialer(sw *Switch, next func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		if sw.Down() {
			return nil, ErrInjected
		}
		return next()
	}
}
