package faults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"vapro/internal/trace"
)

func TestFakeClockFiresInOrder(t *testing.T) {
	c := NewFakeClock()
	a := c.After(10 * time.Millisecond)
	b := c.After(5 * time.Millisecond)
	if c.Waiters() != 2 {
		t.Fatalf("waiters = %d, want 2", c.Waiters())
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-b:
	default:
		t.Fatal("5ms waiter did not fire after 5ms advance")
	}
	select {
	case <-a:
		t.Fatal("10ms waiter fired early")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-a:
	default:
		t.Fatal("10ms waiter did not fire after 10ms total")
	}
	got := c.Requested()
	if len(got) != 2 || got[0] != 10*time.Millisecond || got[1] != 5*time.Millisecond {
		t.Fatalf("requested log = %v", got)
	}
}

func TestFakeClockImmediateAndNow(t *testing.T) {
	c := NewFakeClock()
	start := c.Now()
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
}

// pipeEnds returns a connected pipe pair.
func pipeEnds() (net.Conn, net.Conn) { return net.Pipe() }

// readAll drains n bytes from conn into a buffer on a goroutine.
func readAll(t *testing.T, conn net.Conn, out *bytes.Buffer, done chan<- struct{}) {
	t.Helper()
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for {
			n, err := conn.Read(buf)
			out.Write(buf[:n])
			if err != nil {
				return
			}
		}
	}()
}

func TestConnScriptPartialResetCorrupt(t *testing.T) {
	cli, srv := pipeEnds()
	var got bytes.Buffer
	done := make(chan struct{})
	readAll(t, srv, &got, done)

	c := Wrap(cli, nil,
		Reset(),                      // write 1: nothing through, ErrInjected
		Partial(3),                   // write 2: 3 bytes through, then fail
		WriteOp{Pass: -1, XOR: 0xFF}, // write 3: all through, corrupted
	)
	if n, err := c.Write([]byte("hello")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write: n=%d err=%v", n, err)
	}
	if n, err := c.Write([]byte("world")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write: n=%d err=%v", n, err)
	}
	if n, err := c.Write([]byte{0x0F}); n != 1 || err != nil {
		t.Fatalf("corrupt write: n=%d err=%v", n, err)
	}
	// Script exhausted: passes through clean.
	if n, err := c.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("post-script write: n=%d err=%v", n, err)
	}
	c.Close()
	srv.Close()
	<-done
	want := []byte{'w', 'o', 'r', 0xF0, 'o', 'k'}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("server saw %q, want %q", got.Bytes(), want)
	}
	if c.Writes() != 4 {
		t.Fatalf("writes = %d, want 4", c.Writes())
	}
}

func TestConnDelayWaitsOnClock(t *testing.T) {
	clock := NewFakeClock()
	cli, srv := pipeEnds()
	var got bytes.Buffer
	done := make(chan struct{})
	readAll(t, srv, &got, done)

	c := Wrap(cli, clock, WriteOp{Delay: 50 * time.Millisecond, Pass: -1})
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		wrote <- err
	}()
	if !clock.BlockUntilWaiters(1, 2*time.Second) {
		t.Fatal("delayed write never waited on the clock")
	}
	select {
	case err := <-wrote:
		t.Fatalf("write completed before the clock advanced: %v", err)
	default:
	}
	clock.Advance(50 * time.Millisecond)
	if err := <-wrote; err != nil {
		t.Fatalf("delayed write failed: %v", err)
	}
	c.Close()
	srv.Close()
	<-done
}

func TestConnHangUnblocksOnClose(t *testing.T) {
	cli, srv := pipeEnds()
	defer srv.Close()
	c := Wrap(cli, nil, WriteOp{Hang: true})
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("hung write returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	c.Close()
	if err := <-wrote; !errors.Is(err, ErrInjected) {
		t.Fatalf("hung write error = %v", err)
	}
}

func TestHangConnAndListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewListener(ln, Hang)
	defer fl.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := fl.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srvConn := <-accepted
	readDone := make(chan error, 1)
	go func() {
		_, err := srvConn.Read(make([]byte, 1))
		readDone <- err
	}()
	if _, err := cli.Write([]byte("frame")); err != nil {
		t.Fatal(err) // small write lands in kernel buffers even if hung
	}
	select {
	case err := <-readDone:
		t.Fatalf("hung conn read returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	srvConn.Close()
	if err := <-readDone; !errors.Is(err, ErrInjected) {
		t.Fatalf("hung read error = %v", err)
	}
}

func TestFlakyDialer(t *testing.T) {
	wantErr := errors.New("down")
	dials := 0
	d := FlakyDialer(2, wantErr, func() (net.Conn, error) {
		dials++
		c, _ := net.Pipe()
		return c, nil
	})
	for i := 0; i < 2; i++ {
		if _, err := d(); !errors.Is(err, wantErr) {
			t.Fatalf("dial %d: err = %v, want %v", i, err, wantErr)
		}
	}
	conn, err := d()
	if err != nil || conn == nil {
		t.Fatalf("third dial: %v", err)
	}
	conn.Close()
	if dials != 1 {
		t.Fatalf("next dialer called %d times, want 1", dials)
	}
}

type countSink struct{ batches, frags int }

func (s *countSink) Consume(rank int, frags []trace.Fragment) {
	s.batches++
	s.frags += len(frags)
}

func TestFlakySinkAccounting(t *testing.T) {
	var next countSink
	s := NewFlakySink(&next, func(i int) bool { return i%2 == 1 })
	for i := 0; i < 10; i++ {
		s.Consume(0, []trace.Fragment{{Rank: 0, Start: int64(i)}})
	}
	if next.batches != 5 || s.Dropped() != 5 {
		t.Fatalf("delivered %d dropped %d, want 5/5", next.batches, s.Dropped())
	}
}

func TestSwitchGatedDialer(t *testing.T) {
	sw := NewSwitch()
	dials := 0
	d := GatedDialer(sw, func() (net.Conn, error) {
		dials++
		c, _ := net.Pipe()
		return c, nil
	})
	if conn, err := d(); err != nil || conn == nil {
		t.Fatalf("up dial: %v", err)
	} else {
		conn.Close()
	}
	sw.SetDown(true)
	if !sw.Down() {
		t.Fatal("switch did not report down")
	}
	for i := 0; i < 3; i++ {
		if _, err := d(); !errors.Is(err, ErrInjected) {
			t.Fatalf("severed dial %d: err = %v, want ErrInjected", i, err)
		}
	}
	sw.SetDown(false)
	if conn, err := d(); err != nil || conn == nil {
		t.Fatalf("healed dial: %v", err)
	} else {
		conn.Close()
	}
	if dials != 2 {
		t.Fatalf("next dialer called %d times, want 2", dials)
	}
}
