package faults

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the default error returned by scripted failures.
var ErrInjected = errors.New("faults: injected failure")

// WriteOp scripts the behavior of one Write call on a wrapped Conn.
// The zero value passes the write through untouched.
type WriteOp struct {
	// Delay waits on the harness clock before acting (injected latency).
	Delay time.Duration
	// Pass is how many bytes reach the underlying conn before the op
	// takes effect: -1 (or >= len(p)) passes everything, 0 passes
	// nothing, 0 < Pass < len(p) is a partial (torn) write.
	Pass int
	// XOR, when non-zero, corrupts every passed byte (bit flips in
	// transit).
	XOR byte
	// Err is returned after the passed bytes are written. Nil with a
	// partial Pass still fails with ErrInjected — a short write must
	// not look like success.
	Err error
	// Hang blocks the write until the conn is closed (a stalled
	// collector); the write then returns Err or ErrInjected.
	Hang bool
}

// Reset is a WriteOp that drops the write entirely and reports a
// connection reset.
func Reset() WriteOp { return WriteOp{Err: ErrInjected} }

// Partial is a WriteOp that passes n bytes then fails (a torn frame).
func Partial(n int) WriteOp { return WriteOp{Pass: n} }

// PassAll is an explicit no-op step (useful to let k writes through
// before a scripted failure).
func PassAll() WriteOp { return WriteOp{Pass: -1} }

// Conn wraps a net.Conn with a per-write failure script. Writes consume
// script entries in order; once the script is exhausted every write
// passes through. Safe for one writer at a time (like net.Conn itself).
type Conn struct {
	net.Conn
	clock Clock

	mu     sync.Mutex
	script []WriteOp
	writes int
	closed chan struct{}
	once   sync.Once
}

// Wrap wraps conn with the given write script. clock may be nil (wall
// clock); scripted delays wait on it, so a FakeClock makes latency
// injection deterministic.
func Wrap(conn net.Conn, clock Clock, script ...WriteOp) *Conn {
	if clock == nil {
		clock = Real{}
	}
	return &Conn{Conn: conn, clock: clock, script: script, closed: make(chan struct{})}
}

// nextOp pops the script entry for this write (zero op after the
// script runs out; Pass is normalized to -1 so a zero value passes).
func (c *Conn) nextOp() WriteOp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	if len(c.script) == 0 {
		return WriteOp{Pass: -1}
	}
	op := c.script[0]
	c.script = c.script[1:]
	return op
}

// Writes returns how many Write calls were made.
func (c *Conn) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Write implements net.Conn with the scripted behavior.
func (c *Conn) Write(p []byte) (int, error) {
	op := c.nextOp()
	if op.Delay > 0 {
		select {
		case <-c.clock.After(op.Delay):
		case <-c.closed:
			return 0, c.failErr(op)
		}
	}
	if op.Hang {
		<-c.closed
		return 0, c.failErr(op)
	}
	n := len(p)
	if op.Pass >= 0 && op.Pass < n {
		n = op.Pass
	}
	written := 0
	if n > 0 {
		buf := p[:n]
		if op.XOR != 0 {
			cp := make([]byte, n)
			for i, b := range buf {
				cp[i] = b ^ op.XOR
			}
			buf = cp
		}
		var err error
		written, err = c.Conn.Write(buf)
		if err != nil {
			return written, err
		}
	}
	if written < len(p) || op.Err != nil {
		return written, c.failErr(op)
	}
	return written, nil
}

// failErr picks the op's error, defaulting to ErrInjected.
func (c *Conn) failErr(op WriteOp) error {
	if op.Err != nil {
		return op.Err
	}
	return ErrInjected
}

// Close unblocks hung/delayed writes and closes the underlying conn.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Hang wraps conn so every read and write blocks until Close — the
// accept-then-hang collector that never services its socket.
func Hang(conn net.Conn) net.Conn { return &hangConn{Conn: conn, closed: make(chan struct{})} }

type hangConn struct {
	net.Conn
	closed chan struct{}
	once   sync.Once
}

func (c *hangConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, ErrInjected
}

func (c *hangConn) Write(p []byte) (int, error) {
	<-c.closed
	return 0, ErrInjected
}

func (c *hangConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Listener wraps a net.Listener, rewriting each accepted conn through
// OnAccept (e.g. faults.Hang for accept-then-hang, or Wrap with a
// read-side script). A nil OnAccept passes conns through.
type Listener struct {
	net.Listener
	OnAccept func(net.Conn) net.Conn
}

// NewListener wraps ln.
func NewListener(ln net.Listener, onAccept func(net.Conn) net.Conn) *Listener {
	return &Listener{Listener: ln, OnAccept: onAccept}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil || l.OnAccept == nil {
		return conn, err
	}
	return l.OnAccept(conn), nil
}

// FlakyDialer returns a dialer that fails the first `fails` calls with
// err (ErrInjected when nil) and then delegates to next. The attempt
// count is shared across calls, so it models a collector that is down
// for a while and then comes back.
func FlakyDialer(fails int, err error, next func() (net.Conn, error)) func() (net.Conn, error) {
	if err == nil {
		err = ErrInjected
	}
	var mu sync.Mutex
	n := 0
	return func() (net.Conn, error) {
		mu.Lock()
		n++
		failing := n <= fails
		mu.Unlock()
		if failing {
			return nil, err
		}
		return next()
	}
}
