// Package faults is the chaos harness for the collection plane: a
// deterministic fake clock plus programmable failure injectors for the
// wire transport (scripted connection resets, partial writes, injected
// latency, byte corruption, accept-then-hang listeners, flaky dialers
// and batch-dropping sinks). Production code never imports this
// package; the resilient client and the soak tests drive their timing
// and failure schedules through it so every retry/backoff path is
// testable without wall-clock sleeps.
package faults

import (
	"sort"
	"sync"
	"time"
)

// Clock is the injectable time source the resilient transport runs on.
// It is structurally identical to collector.Clock so implementations
// here satisfy it without an import cycle.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// waiter is one pending After call.
type waiter struct {
	at time.Time
	ch chan time.Time
}

// FakeClock is a deterministic, manually advanced clock. After
// registers a waiter that fires when Advance moves the clock past its
// deadline; waiters fire in deadline order, ties in registration order,
// so a schedule replays identically every run.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
	reqs    []time.Duration
}

// NewFakeClock starts at a fixed epoch (2000-01-01 UTC); the absolute
// value is irrelevant, only deltas matter.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. Non-positive durations fire immediately.
// Every requested duration is logged (see Requested) so tests can pin
// an exact backoff schedule without observing real time at all.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqs = append(c.reqs, d)
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, waiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline
// has passed, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []waiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters returns how many After calls are pending.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Requested returns a copy of every duration passed to After, in call
// order — the observable backoff schedule.
func (c *FakeClock) Requested() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.reqs))
	copy(out, c.reqs)
	return out
}

// BlockUntilWaiters polls (with short real sleeps) until at least n
// waiters are pending or the real-time timeout elapses. It is the
// test-side rendezvous with a goroutine that is about to sleep on the
// fake clock.
func (c *FakeClock) BlockUntilWaiters(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.Waiters() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
