package faults

import (
	"sync"

	"vapro/internal/trace"
)

// Sink is the batch consumer shape shared with interpose.Sink, declared
// locally so the harness stays import-light.
type Sink interface {
	Consume(rank int, frags []trace.Fragment)
}

// FlakySink wraps a Sink with a scripted drop pattern: batch i (0-based,
// across all ranks) is dropped when Drop returns true for it. Dropped
// batches are counted — the harness itself obeys the accounting rule it
// exists to test.
type FlakySink struct {
	next Sink
	drop func(i int) bool

	mu      sync.Mutex
	seen    int
	dropped int
}

// NewFlakySink wraps next; drop decides per arrival index. A nil drop
// passes everything.
func NewFlakySink(next Sink, drop func(i int) bool) *FlakySink {
	return &FlakySink{next: next, drop: drop}
}

// Consume implements Sink.
func (s *FlakySink) Consume(rank int, frags []trace.Fragment) {
	s.mu.Lock()
	i := s.seen
	s.seen++
	dropping := s.drop != nil && s.drop(i)
	if dropping {
		s.dropped++
	}
	s.mu.Unlock()
	if !dropping && s.next != nil {
		s.next.Consume(rank, frags)
	}
}

// Dropped returns how many batches the script swallowed.
func (s *FlakySink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
