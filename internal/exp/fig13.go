package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/heatmap"
	"vapro/internal/mpip"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

// Fig13Result is the large-scale CG software-noise detection (Figure
// 13) plus the mpiP comparison (Figure 14).
type Fig13Result struct {
	Ranks int
	// Detected computation performance loss on the noisy nodes
	// (paper: 42.8%).
	CompLossFrac float64
	// Involuntary context switches significant in the regression
	// (paper: p < 0.001).
	InvolCSPValue float64
	// Regions found overlapping the injected windows.
	Detected bool
	HeatMap  string
	Report   *diagnose.Report

	// Figure 14: mpiP's (misleading) view of the same two runs.
	MpiPQuietComm, MpiPNoisyComm float64 // mean comm seconds per rank
	MpiPQuietComp, MpiPNoisyComp float64 // mean comp seconds per rank
}

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "2048-process CG under software noises: Vapro vs mpiP (Figures 13-14)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig13(w, scale), nil
		},
	})
}

// Fig13 injects computing noise on two nodes of a large CG run,
// measures Vapro's detection and diagnosis, and contrasts with the
// mpiP-style profile, which blames communication.
func Fig13(w io.Writer, scale Scale) *Fig13Result {
	ranks, outer := 256, 12
	if scale == Full {
		ranks, outer = 2048, 8
	}
	opt := core.DefaultOptions()
	opt.Ranks = ranks
	opt.Collector.Detect.Window = 100 * sim.Millisecond
	quiet := core.RunPlain(apps.NewCG(outer), opt)
	quietTraced := core.RunTraced(apps.NewCG(outer), opt)

	t0 := sim.Time(float64(quiet.Makespan) * 0.45)
	t1 := sim.Time(float64(quiet.Makespan) * 0.9)
	sch := noise.NewSchedule()
	nodeA, nodeB := 2, 5
	if ranks <= 48 {
		nodeA, nodeB = 0, 1
	}
	sch.Add(noise.NodeCPUContention(nodeA, t0, t1, 0.5))
	sch.Add(noise.NodeCPUContention(nodeB, t0.Add(sim.Duration(t1-t0)/4), t1, 0.55))
	opt.Noise = sch
	res := core.RunTraced(apps.NewCG(outer), opt)

	r := &Fig13Result{Ranks: ranks}

	// Computation performance loss over the noisy ranks during noise.
	cores := 24
	inNoisy := func(rank int) bool {
		n := rank / cores
		return n == nodeA || n == nodeB
	}
	// Time-weighted loss: a one-microsecond glue fragment must not
	// dilute the 50% slowdown of the millisecond kernels around it.
	var lossSum, lossW float64
	for _, s := range res.Detection.Samples[detect.Computation] {
		if !s.Covered || !inNoisy(s.Rank) {
			continue
		}
		mid := sim.Time(s.Start + s.Elapsed/2)
		if mid < t0 || mid > t1 {
			continue
		}
		wgt := float64(s.Elapsed)
		lossSum += (1 - s.Perf) * wgt
		lossW += wgt
	}
	if lossW > 0 {
		r.CompLossFrac = lossSum / lossW
	}
	for _, reg := range res.Detection.Regions {
		if reg.Class != detect.Computation {
			continue
		}
		if reg.RankMin <= nodeB*cores+cores-1 && reg.RankMax >= nodeA*cores {
			r.Detected = true
			break
		}
	}
	if h := res.Detection.Maps[detect.Computation]; h != nil {
		r.HeatMap = heatmap.Render(h, heatmap.Options{MaxRows: 24, MaxCols: 64, ShowLegend: true}) +
			heatmap.RenderRegions(h, res.Detection.Regions)
	}

	// Diagnosis: regression over the breakdown model — involuntary
	// context switches should be significant.
	r.Report = res.DiagnoseAll(detect.Computation, diagnose.DefaultOptions())
	if r.Report.OLS != nil {
		if p, ok := r.Report.OLS.PValue[diagnose.InvoluntaryCS]; ok {
			r.InvolCSPValue = p
		} else if p, ok := r.Report.OLS.PValue[diagnose.ContextSwitch]; ok {
			r.InvolCSPValue = p
		} else {
			r.InvolCSPValue = 1
		}
	}

	// Figure 14: mpiP summaries of the quiet and noisy runs.
	q := mpip.Summarize(mpip.Profile(quietTraced.Graph, ranks))
	n := mpip.Summarize(mpip.Profile(res.Graph, ranks))
	r.MpiPQuietComp, r.MpiPQuietComm = q.MeanCompNS/1e9, q.MeanCommNS/1e9
	r.MpiPNoisyComp, r.MpiPNoisyComm = n.MeanCompNS/1e9, n.MeanCommNS/1e9

	e, _ := Get("fig13")
	header(w, e)
	fmt.Fprintf(w, "computing noises on nodes %d and %d (ranks %d-%d, %d-%d), [%0.2fs, %0.2fs]\n",
		nodeA, nodeB, nodeA*cores, nodeA*cores+cores-1, nodeB*cores, nodeB*cores+cores-1,
		sim.Duration(t0).Seconds(), sim.Duration(t1).Seconds())
	fmt.Fprint(w, r.HeatMap)
	fmt.Fprintf(w, "detected=%v; computation performance loss on noisy ranks: %.1f%% (paper: 42.8%%)\n",
		r.Detected, 100*r.CompLossFrac)
	fmt.Fprintf(w, "regression: involuntary context switches p=%.2g (paper: p<0.001)\n", r.InvolCSPValue)
	fmt.Fprint(w, r.Report.String())
	fmt.Fprintf(w, "\n--- fig14: the same runs through an mpiP-style profiler ---\n")
	fmt.Fprintf(w, "           mean comp(s)  mean comm(s)\n")
	fmt.Fprintf(w, "quiet      %12.3f %12.3f\n", r.MpiPQuietComp, r.MpiPQuietComm)
	fmt.Fprintf(w, "with noise %12.3f %12.3f\n", r.MpiPNoisyComp, r.MpiPNoisyComm)
	fmt.Fprintf(w, "mpiP shows communication up %.1f%% but computation up only %.1f%% — it blames the\n",
		100*(r.MpiPNoisyComm/r.MpiPQuietComm-1), 100*(r.MpiPNoisyComp/r.MpiPQuietComp-1))
	fmt.Fprintln(w, "network, while the real cause is CPU contention on two nodes (paper §6.4).")
	return r
}
