package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/heatmap"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

// Fig09Result is the PageRank-under-memory-noise detection outcome.
type Fig09Result struct {
	Threads int
	// NoiseStartSec/NoiseEndSec is the injected window.
	NoiseStartSec, NoiseEndSec float64
	// Regions found in the computation heat map.
	Regions []detect.Region
	// DetectedInWindow reports whether a region overlapping the noise
	// window was found.
	DetectedInWindow bool
	// MeanPerfInWindow / MeanPerfOutside compare cell values.
	MeanPerfInWindow, MeanPerfOutside float64
	HeatMap                           string
}

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "8-thread PageRank under a memory noise: heat map (Figure 9)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig09(w, scale), nil
		},
	})
}

// Fig09 runs multi-threaded PageRank with a memory-bandwidth noise
// injected over a mid-run window and renders the computation heat map;
// the noise appears as a light-colored vertical band across threads.
func Fig09(w io.Writer, scale Scale) *Fig09Result {
	iters := 42
	if scale == Full {
		iters = 84
	}
	app := apps.NewPageRank(iters)
	// Probe the quiet duration to place the noise mid-run.
	opt := core.DefaultOptions()
	opt.Ranks = 8
	opt.Collector.Detect.Window = 20 * sim.Millisecond
	quiet := core.RunPlain(app, opt)
	// The iteration phase lives behind the one-off graph-loading
	// phase; aim the noise at it.
	t0 := sim.Time(float64(quiet.Makespan) * 0.70)
	t1 := sim.Time(float64(quiet.Makespan) * 0.88)

	sch := noise.NewSchedule()
	sch.Add(noise.MemContention(0, t0, t1, 3.5))
	opt.Noise = sch
	res := core.RunTraced(apps.NewPageRank(iters), opt)

	r := &Fig09Result{
		Threads:       8,
		NoiseStartSec: sim.Duration(t0).Seconds(),
		NoiseEndSec:   sim.Duration(t1).Seconds(),
	}
	h := res.Detection.Maps[detect.Computation]
	for _, reg := range res.Detection.Regions {
		if reg.Class != detect.Computation {
			continue
		}
		r.Regions = append(r.Regions, reg)
		if h != nil {
			rs := reg.StartTime(h).Seconds()
			re := reg.EndTime(h).Seconds()
			if rs < r.NoiseEndSec && re > r.NoiseStartSec {
				r.DetectedInWindow = true
			}
		}
	}
	if h != nil {
		var inSum, outSum float64
		var inN, outN int
		for rank := 0; rank < h.Ranks; rank++ {
			for win := 0; win < h.Windows; win++ {
				v := h.At(rank, win)
				if v != v { // NaN
					continue
				}
				mid := (float64(win) + 0.5) * h.Window.Seconds()
				if mid >= r.NoiseStartSec && mid < r.NoiseEndSec {
					inSum += v
					inN++
				} else {
					outSum += v
					outN++
				}
			}
		}
		if inN > 0 {
			r.MeanPerfInWindow = inSum / float64(inN)
		}
		if outN > 0 {
			r.MeanPerfOutside = outSum / float64(outN)
		}
		r.HeatMap = heatmap.Render(h, heatmap.DefaultOptions()) + heatmap.RenderRegions(h, res.Detection.Regions)
	}

	e, _ := Get("fig9")
	header(w, e)
	fmt.Fprintf(w, "memory noise injected over [%.2fs, %.2fs]\n", r.NoiseStartSec, r.NoiseEndSec)
	fmt.Fprint(w, r.HeatMap)
	fmt.Fprintf(w, "mean computation performance inside noise window %.2f vs outside %.2f; detected=%v\n",
		r.MeanPerfInWindow, r.MeanPerfOutside, r.DetectedInWindow)
	return r
}
