package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

// AblationResult sweeps the method's tunable thresholds around the
// paper's defaults, quantifying the design choices DESIGN.md calls out.
type AblationResult struct {
	// Clustering threshold sweep: coverage and cluster counts.
	ClusterThresholds []float64
	ClusterCoverage   []float64
	ClusterFixed      []int
	// Detection threshold sweep: regions found on a noisy run.
	DetectThresholds []float64
	DetectRegions    []int
	// Abnormal-ratio sweep: abnormal fragment counts on the same run.
	AbnormalRatios []float64
	AbnormalFrags  []int
	// Sampling: overhead and fragment volume with/without short-op
	// sampling.
	OverheadOff, OverheadOn   float64
	FragmentsOff, FragmentsOn int
}

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "threshold sweeps: clustering 5%, detection 0.85, abnormal 1.2, sampling (DESIGN.md §5)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Ablation(w, scale), nil
		},
	})
}

// Ablation runs the sweeps on one noisy CG run (clustering/detection/
// diagnosis thresholds are pure analysis parameters, so one recording
// serves all sweeps) plus a traced/plain LU pair for the sampling knob.
func Ablation(w io.Writer, scale Scale) *AblationResult {
	outer := 20
	if scale == Full {
		outer = 60
	}
	opt := core.DefaultOptions()
	opt.Ranks = 16
	opt.Collector.Detect.Window = 100 * sim.Millisecond
	sch := noise.NewSchedule()
	sch.Add(noise.NodeCPUContention(0, sim.Time(900*sim.Millisecond), sim.Time(1600*sim.Millisecond), 0.5))
	opt.Noise = sch
	res := core.RunTraced(apps.NewCG(outer), opt)

	r := &AblationResult{}

	// Clustering threshold.
	for _, th := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		dopt := opt.Collector.Detect
		dopt.Cluster.Threshold = th
		d := detect.Run(res.Graph, res.Ranks, dopt)
		r.ClusterThresholds = append(r.ClusterThresholds, th)
		r.ClusterCoverage = append(r.ClusterCoverage, d.OverallCoverage)
		r.ClusterFixed = append(r.ClusterFixed, d.FixedClusters)
	}

	// Detection threshold.
	for _, th := range []float64{0.5, 0.7, 0.85, 0.95} {
		dopt := opt.Collector.Detect
		dopt.Threshold = th
		d := detect.Run(res.Graph, res.Ranks, dopt)
		n := 0
		for _, reg := range d.Regions {
			if reg.Class == detect.Computation {
				n++
			}
		}
		r.DetectThresholds = append(r.DetectThresholds, th)
		r.DetectRegions = append(r.DetectRegions, n)
	}

	// Abnormal ratio k_a.
	for _, ka := range []float64{1.05, 1.2, 1.5, 2.0} {
		dg := diagnose.DefaultOptions()
		dg.AbnormalRatio = ka
		rep := res.DiagnoseAll(detect.Computation, dg)
		r.AbnormalRatios = append(r.AbnormalRatios, ka)
		r.AbnormalFrags = append(r.AbnormalFrags, rep.AbnormalFrags)
	}

	// Sampling knob on the interception-heavy LU.
	luIters := 8
	luOpt := core.DefaultOptions()
	luOpt.Ranks = 16
	plain := core.RunPlain(apps.NewLU(luIters), luOpt)
	off := core.RunTraced(apps.NewLU(luIters), luOpt)
	luOpt.Interpose.SampleShortOps = 200 * sim.Microsecond
	on := core.RunTraced(apps.NewLU(luIters), luOpt)
	r.OverheadOff = off.Overhead(plain)
	r.OverheadOn = on.Overhead(plain)
	r.FragmentsOff = off.Graph.NumFragments()
	r.FragmentsOn = on.Graph.NumFragments()

	e, _ := Get("ablation")
	header(w, e)
	fmt.Fprintln(w, "clustering threshold (paper: 5%):")
	fmt.Fprintf(w, "  %-10s %10s %8s\n", "threshold", "coverage%", "clusters")
	for i := range r.ClusterThresholds {
		fmt.Fprintf(w, "  %-10.2f %10.1f %8d\n", r.ClusterThresholds[i], 100*r.ClusterCoverage[i], r.ClusterFixed[i])
	}
	fmt.Fprintln(w, "detection threshold (paper: 0.85):")
	fmt.Fprintf(w, "  %-10s %8s\n", "threshold", "regions")
	for i := range r.DetectThresholds {
		fmt.Fprintf(w, "  %-10.2f %8d\n", r.DetectThresholds[i], r.DetectRegions[i])
	}
	fmt.Fprintln(w, "abnormal ratio k_a (paper: 1.2):")
	fmt.Fprintf(w, "  %-10s %8s\n", "k_a", "abnormal")
	for i := range r.AbnormalRatios {
		fmt.Fprintf(w, "  %-10.2f %8d\n", r.AbnormalRatios[i], r.AbnormalFrags[i])
	}
	fmt.Fprintf(w, "short-op sampling on LU: overhead %.2f%% -> %.2f%%, fragments %d -> %d\n",
		100*r.OverheadOff, 100*r.OverheadOn, r.FragmentsOff, r.FragmentsOn)
	return r
}
