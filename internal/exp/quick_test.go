package exp

import (
	"io"
	"os"
	"testing"
)

// TestQuick exercises every registered experiment at Small scale.
func TestQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var w io.Writer = io.Discard
			if testing.Verbose() {
				w = os.Stdout
			}
			if _, err := e.Run(w, Small); err != nil {
				t.Fatal(err)
			}
		})
	}
}
