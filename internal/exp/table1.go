package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/interpose"
	"vapro/internal/vsensor"
)

// Table1Row is one application's overhead and coverage comparison.
type Table1Row struct {
	App      string
	Threaded bool
	// Overheads are fractions (0.01 = 1%). VSOverhead is NaN-like -1
	// when vSensor cannot run the app.
	VSOverhead float64
	CAOverhead float64
	CFOverhead float64
	// Coverages are fractions; VSCoverage is -1 when unsupported.
	VSCoverage float64
	CACoverage float64
	CFCoverage float64
	// StorageKBps is the fragment stream volume per rank (§6.2 text).
	StorageKBps float64
	Ranks       int
}

// Table1Result aggregates the comparison.
type Table1Result struct {
	Rows []Table1Row
	// Means over multi-process apps where vSensor runs (as the paper
	// averages them).
	MeanVSCoverage float64
	MeanCACoverage float64
	MeanCFCoverage float64
	MeanVSOverhead float64
	MeanCAOverhead float64
	MeanCFOverhead float64
	// Threaded means (CF only).
	MeanThreadedCF       float64
	MeanThreadedOverhead float64
	ServersUsed          int
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "overhead and detection coverage: vSensor vs context-aware vs context-free (Table 1)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Table1(w, scale), nil
		},
	})
}

// table1Apps lists the evaluated applications in the paper's order.
var table1MP = []string{"AMG", "CESM", "BT", "CG", "EP", "FT", "LU", "MG", "SP"}
var table1MT = []string{"BERT", "PageRank", "WordCount", "FFT", "blackscholes", "canneal", "ferret", "swaptions", "vips"}

// Table1 measures, for every application, the runtime overhead and
// detection coverage of Vapro with context-aware and context-free STGs
// and of the vSensor baseline. Rank counts are scaled down from the
// paper's 1024/2048 (Small: 32, Full: 256) so the experiment runs on a
// laptop; the comparison shape is scale-independent because overhead
// and coverage are per-process properties.
func Table1(w io.Writer, scale Scale) *Table1Result {
	mpRanks := 32
	if scale == Full {
		mpRanks = 256
	}
	res := &Table1Result{}

	measure := func(name string, ranks int) Table1Row {
		mk := func() apps.App {
			a, err := apps.New(name)
			if err != nil {
				panic(err)
			}
			return a
		}
		info := mk().Info()
		opt := core.DefaultOptions()
		opt.Ranks = ranks
		if info.Threaded {
			opt.Ranks = 16
		}
		plain := core.RunPlain(mk(), opt)

		cf := core.RunTraced(mk(), opt)

		row := Table1Row{
			App:         name,
			Threaded:    info.Threaded,
			Ranks:       opt.Ranks,
			CFOverhead:  cf.Overhead(plain),
			CFCoverage:  cf.Detection.OverallCoverage,
			StorageKBps: cf.Pool.Stats(cf.Makespan).BytesPerRankSecond / 1024,
		}
		res.ServersUsed = cf.Pool.Servers()

		if !info.Threaded {
			optCA := opt
			optCA.Interpose.Mode = interpose.ContextAware
			ca := core.RunTraced(mk(), optCA)
			row.CAOverhead = ca.Overhead(plain)
			row.CACoverage = ca.Detection.OverallCoverage

			vs := vsensor.Analyze(cf.Graph, cf.Ranks, vsensor.Capability{
				SourceAvailable: info.SourceAvailable,
				Threaded:        info.Threaded,
				HugeCodebase:    info.HugeCodebase,
			}, opt.Collector.Detect)
			if vs.Supported {
				row.VSCoverage = vs.Coverage
				row.VSOverhead = vsensor.Overhead(cf.Events/cf.Ranks, plain.Makespan)
			} else {
				row.VSCoverage = -1
				row.VSOverhead = -1
			}
		}
		return row
	}

	for _, name := range table1MP {
		res.Rows = append(res.Rows, measure(name, mpRanks))
	}
	for _, name := range table1MT {
		res.Rows = append(res.Rows, measure(name, 16))
	}

	var nMP, nVS, nMT float64
	for _, r := range res.Rows {
		if r.Threaded {
			nMT++
			res.MeanThreadedCF += r.CFCoverage
			res.MeanThreadedOverhead += r.CFOverhead
			continue
		}
		nMP++
		res.MeanCACoverage += r.CACoverage
		res.MeanCFCoverage += r.CFCoverage
		res.MeanCAOverhead += r.CAOverhead
		res.MeanCFOverhead += r.CFOverhead
		if r.VSCoverage >= 0 {
			nVS++
			res.MeanVSCoverage += r.VSCoverage
			res.MeanVSOverhead += r.VSOverhead
		}
	}
	if nMP > 0 {
		res.MeanCACoverage /= nMP
		res.MeanCFCoverage /= nMP
		res.MeanCAOverhead /= nMP
		res.MeanCFOverhead /= nMP
	}
	if nVS > 0 {
		res.MeanVSCoverage /= nVS
		res.MeanVSOverhead /= nVS
	}
	if nMT > 0 {
		res.MeanThreadedCF /= nMT
		res.MeanThreadedOverhead /= nMT
	}

	e, _ := Get("table1")
	header(w, e)
	fmt.Fprintf(w, "multi-process apps at %d ranks (paper: 1024/2048); one server per 256 clients\n", mpRanks)
	fmt.Fprintf(w, "%-12s | %8s %8s %8s | %8s %8s %8s | %9s\n",
		"app", "ov vS%", "ov CA%", "ov CF%", "cov vS%", "cov CA%", "cov CF%", "KB/s/rank")
	pct := func(v float64) string {
		if v < 0 {
			return "     N/A"
		}
		return fmt.Sprintf("%8.2f", 100*v)
	}
	for _, r := range res.Rows {
		if r.Threaded {
			continue
		}
		fmt.Fprintf(w, "%-12s | %s %s %s | %s %s %s | %9.1f\n",
			r.App, pct(r.VSOverhead), pct(r.CAOverhead), pct(r.CFOverhead),
			pct(r.VSCoverage), pct(r.CACoverage), pct(r.CFCoverage), r.StorageKBps)
	}
	fmt.Fprintf(w, "%-12s | %s %s %s | %s %s %s |\n", "mean",
		pct(res.MeanVSOverhead), pct(res.MeanCAOverhead), pct(res.MeanCFOverhead),
		pct(res.MeanVSCoverage), pct(res.MeanCACoverage), pct(res.MeanCFCoverage))
	fmt.Fprintf(w, "\nmulti-threaded apps, 16 threads (vSensor unsupported):\n")
	fmt.Fprintf(w, "%-12s | %8s | %8s | %9s\n", "app", "ov CF%", "cov CF%", "KB/s/rank")
	for _, r := range res.Rows {
		if !r.Threaded {
			continue
		}
		fmt.Fprintf(w, "%-12s | %s | %s | %9.1f\n", r.App, pct(r.CFOverhead), pct(r.CFCoverage), r.StorageKBps)
	}
	fmt.Fprintf(w, "%-12s | %s | %s |\n", "mean", pct(res.MeanThreadedOverhead), pct(res.MeanThreadedCF))
	fmt.Fprintln(w, "\nexpected shape (paper): CF coverage > CA coverage > vSensor coverage;")
	fmt.Fprintln(w, "CA overhead > CF overhead; vSensor N/A on CESM; MG collapses under CA.")
	return res
}
