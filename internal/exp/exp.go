// Package exp regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrates. Each experiment prints a
// human-readable report mirroring the paper's artifact and returns a
// structured result for tests and benchmarks to assert the qualitative
// shape on (who wins, by roughly what factor, where the crossovers
// fall). Absolute numbers differ from the paper — the substrate is a
// simulator, not Tianhe-2A — and time axes are compressed (fragments
// are milliseconds, runs are seconds); EXPERIMENTS.md records the
// paper-vs-measured comparison.
package exp

import (
	"fmt"
	"io"
	"sort"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Small runs in seconds on a laptop (CI and benchmarks).
	Small Scale = iota
	// Full approaches the paper's process counts (minutes, gigabytes).
	Full
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // "table1", "fig12", ...
	Title string
	Run   func(w io.Writer, scale Scale) (any, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns the experiments sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
}
