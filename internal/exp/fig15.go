package exp

import (
	"fmt"
	"io"
	"sort"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/heatmap"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/stats"
)

// Fig15Result is the HPL hardware-bug case study (Figures 15-16): the
// Intel L2-cache eviction erratum slows the second socket; huge pages
// mitigate it.
type Fig15Result struct {
	// Detection: mean normalized performance of socket-1 vs socket-2
	// ranks (paper: socket 2, ranks 16-31, visibly slower).
	Socket1Perf, Socket2Perf float64
	// Diagnosis shares (paper: 96.6% backend; L2 48.2% + DRAM 38.0%).
	BackendFrac, L2Frac, DRAMFrac float64
	HeatMap                       string
	Report                        *diagnose.Report

	// Figure 16: run-time distribution with 2MB vs 1GB pages.
	GFLOPS2MB, GFLOPS1GB []float64
	StdevReduction       float64 // paper: 51.3%
	// KSD / KSP: two-sample Kolmogorov–Smirnov attest that the
	// huge-page distribution differs.
	KSD, KSP float64
}

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "HPL under the Intel L2-eviction erratum; huge-page mitigation (Figures 15-16)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig15(w, scale), nil
		},
	})
}

// hplGFLOPS converts a makespan into the GFLOPS-style figure of merit:
// fixed work over time, scaled so the clean run lands at the paper's
// ~940 GFLOPS.
func hplGFLOPS(makespanSec, cleanSec float64) float64 {
	return 940 * cleanSec / makespanSec
}

// Fig15 runs 36-rank HPL on one dual-socket node whose second socket
// suffers the L2-eviction erratum, detects the inter-process variance,
// diagnoses it down to the L2/DRAM-bound factors, and then measures the
// huge-page mitigation across repeated runs (Figure 16).
func Fig15(w io.Writer, scale Scale) *Fig15Result {
	panels := 40
	runs := 12
	if scale == Full {
		panels, runs = 60, 30
	}
	const horizon = 10 * sim.Second
	mkOpt := func(seed uint64, hugePages bool) core.Options {
		opt := core.DefaultOptions()
		opt.Ranks = 36
		opt.CoresPerNode = 36 // one dual-18-core node
		opt.Seed = seed
		opt.Collector.Detect.Window = 100 * sim.Millisecond
		sch := noise.NewSchedule()
		for _, ev := range noise.L2Erratum(0, 18, 35, hugePages, seed, horizon) {
			sch.Add(ev)
		}
		opt.Noise = sch
		return opt
	}

	// The bug is non-deterministic: most executions are clean. Rerun
	// until Vapro captures an abnormal one (the paper "captures an
	// abnormal execution with 22.2% longer execution time").
	baseline := core.RunPlain(apps.NewHPL(panels), func() core.Options {
		o := core.DefaultOptions()
		o.Ranks = 36
		o.CoresPerNode = 36
		return o
	}())
	var res *core.Result
	for seed := uint64(1); ; seed++ {
		cand := core.RunPlain(apps.NewHPL(panels), mkOpt(seed, false))
		if float64(cand.Makespan) > 1.1*float64(baseline.Makespan) {
			res = core.RunTraced(apps.NewHPL(panels), mkOpt(seed, false))
			break
		}
		if seed > 50 {
			res = core.RunTraced(apps.NewHPL(panels), mkOpt(1, false))
			break
		}
	}
	r := &Fig15Result{}

	var s1, s2, n1, n2 float64
	for _, s := range res.Detection.Samples[detect.Computation] {
		wgt := float64(s.Elapsed)
		if s.Rank < 18 {
			s1 += s.Perf * wgt
			n1 += wgt
		} else {
			s2 += s.Perf * wgt
			n2 += wgt
		}
	}
	if n1 > 0 {
		r.Socket1Perf = s1 / n1
	}
	if n2 > 0 {
		r.Socket2Perf = s2 / n2
	}
	if h := res.Detection.Maps[detect.Computation]; h != nil {
		r.HeatMap = heatmap.Render(h, heatmap.Options{MaxRows: 36, MaxCols: 64, ShowLegend: true})
	}

	r.Report = res.DiagnoseAll(detect.Computation, diagnose.DefaultOptions())
	if be := r.Report.Find(diagnose.BackendBound); be != nil {
		r.BackendFrac = be.ImpactFrac
	}
	if l2 := r.Report.Find(diagnose.L2Bound); l2 != nil {
		r.L2Frac = l2.ImpactFrac
	}
	if dr := r.Report.Find(diagnose.DRAMBound); dr != nil {
		r.DRAMFrac = dr.ImpactFrac
	}

	// Figure 16: performance distribution across repeated runs.
	clean := baseline.Makespan.Seconds()
	for i := 0; i < runs; i++ {
		p2 := core.RunPlain(apps.NewHPL(panels), mkOpt(uint64(100+i), false))
		p1 := core.RunPlain(apps.NewHPL(panels), mkOpt(uint64(100+i), true))
		r.GFLOPS2MB = append(r.GFLOPS2MB, hplGFLOPS(p2.Makespan.Seconds(), clean))
		r.GFLOPS1GB = append(r.GFLOPS1GB, hplGFLOPS(p1.Makespan.Seconds(), clean))
	}
	sd2 := stats.Stddev(r.GFLOPS2MB)
	sd1 := stats.Stddev(r.GFLOPS1GB)
	if sd2 > 0 {
		r.StdevReduction = 1 - sd1/sd2
	}
	r.KSD, r.KSP = stats.KolmogorovSmirnov(r.GFLOPS2MB, r.GFLOPS1GB)

	e, _ := Get("fig15")
	header(w, e)
	fmt.Fprint(w, r.HeatMap)
	fmt.Fprintf(w, "mean normalized perf: socket 1 (ranks 0-17) %.3f vs socket 2 (ranks 18-35) %.3f\n",
		r.Socket1Perf, r.Socket2Perf)
	fmt.Fprintf(w, "diagnosis: backend bound %.1f%% of slowdown (paper: 96.6%%); L2 %.1f%% + DRAM %.1f%% (paper: 48.2%% + 38.0%%)\n",
		100*r.BackendFrac, 100*r.L2Frac, 100*r.DRAMFrac)
	fmt.Fprint(w, r.Report.String())

	fmt.Fprintf(w, "\n--- fig16: HPL performance distribution over %d runs ---\n", runs)
	p2 := append([]float64(nil), r.GFLOPS2MB...)
	p1 := append([]float64(nil), r.GFLOPS1GB...)
	sort.Float64s(p2)
	sort.Float64s(p1)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "pages", "p10", "p50", "p90", "stdev")
	fmt.Fprintf(w, "%-10s %8.1f %8.1f %8.1f %8.2f\n", "2MB", stats.Percentile(p2, 10), stats.Percentile(p2, 50), stats.Percentile(p2, 90), sd2)
	fmt.Fprintf(w, "%-10s %8.1f %8.1f %8.1f %8.2f\n", "1GB", stats.Percentile(p1, 10), stats.Percentile(p1, 50), stats.Percentile(p1, 90), sd1)
	fmt.Fprintf(w, "stdev reduction with 1GB pages: %.1f%% (paper: 51.3%%); KS test D=%.2f p=%.3g\n",
		100*r.StdevReduction, r.KSD, r.KSP)
	return r
}
