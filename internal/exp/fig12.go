package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/heatmap"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/vsensor"
)

// Fig12Result compares Vapro and vSensor on SP under a short computing
// noise. The paper's point: Vapro's higher coverage lets it measure the
// ~50% performance loss of OS timeslicing correctly, while vSensor's
// sparse samples report a spurious ~90% loss over a tenth of the time.
type Fig12Result struct {
	Ranks int
	// Injected window.
	NoiseStartSec, NoiseEndSec float64
	// Coverages.
	VaproCoverage, VSensorCoverage float64
	// Top detected region's mean normalized performance per tool
	// (Vapro should see ~0.5 = the CPU share) and its duration.
	VaproPerf, VSensorPerf     float64
	VaproDurSec, VSensorDurSec float64
	// Sample counts inside the noise window on affected ranks.
	VaproSamples, VSensorSamples int
	VaproMap, VSensorMap         string
}

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "SP under a 1-second computing noise: Vapro vs vSensor (Figure 12)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig12(w, scale), nil
		},
	})
}

// Fig12 injects a short CPU contention (share 0.5, like the paper's
// stress process that halves the victim's CPU time) on a few ranks of
// SP and compares what each tool measures.
func Fig12(w io.Writer, scale Scale) *Fig12Result {
	ranks, iters := 128, 50
	if scale == Full {
		ranks, iters = 1024, 50
	}
	opt := core.DefaultOptions()
	opt.Ranks = ranks
	opt.Collector.Detect.Window = 10 * sim.Millisecond
	quiet := core.RunPlain(apps.NewSP(iters), opt)
	// Noise over ~20% of the run, on one node (24 ranks).
	t0 := sim.Time(float64(quiet.Makespan) * 0.45)
	t1 := sim.Time(float64(quiet.Makespan) * 0.70)
	sch := noise.NewSchedule()
	noiseNode := 1
	sch.Add(noise.NodeCPUContention(noiseNode, t0, t1, 0.5))
	opt.Noise = sch
	res := core.RunTraced(apps.NewSP(iters), opt)

	r := &Fig12Result{
		Ranks:         ranks,
		NoiseStartSec: sim.Duration(t0).Seconds(),
		NoiseEndSec:   sim.Duration(t1).Seconds(),
		VaproCoverage: res.Detection.OverallCoverage,
	}

	vs := vsensor.Analyze(res.Graph, ranks, vsensor.Capability{SourceAvailable: true}, opt.Collector.Detect)
	r.VSensorCoverage = vs.Coverage

	// Affected ranks are those on the noisy node.
	cores := 24
	lo, hi := noiseNode*cores, noiseNode*cores+cores-1

	// What a user reads off each tool's report: the top detected
	// region's mean performance. Vapro's dense samples average the
	// quantized scheduler preemption out to the true ~50% share;
	// vSensor's sparse short-snippet samples are dominated by
	// individual preempted fragments (a 0.6 ms snippet that eats a
	// whole 4 ms descheduling pause looks ~85% slow), so it reports a
	// much deeper loss — the paper's spurious "90% loss lasting 1/10
	// second".
	topRegion := func(regions []detect.Region) (perf float64, durSec float64) {
		perf = 1
		for _, reg := range regions {
			if reg.Class != detect.Computation {
				continue
			}
			if reg.RankMax < lo || reg.RankMin > hi {
				continue
			}
			perf = reg.MeanPerf
			durSec = float64(reg.WinMax-reg.WinMin+1) * opt.Collector.Detect.Window.Seconds()
			return perf, durSec
		}
		return perf, 0
	}
	count := func(samples []detect.Sample) int {
		n := 0
		for _, s := range samples {
			if s.Rank < lo || s.Rank > hi {
				continue
			}
			mid := float64(s.Start+s.Elapsed/2) / 1e9
			if mid >= r.NoiseStartSec && mid <= r.NoiseEndSec {
				n++
			}
		}
		return n
	}
	var vaproDur, vsDur float64
	r.VaproPerf, vaproDur = topRegion(res.Detection.Regions)
	r.VSensorPerf, vsDur = topRegion(vs.Regions)
	r.VaproDurSec, r.VSensorDurSec = vaproDur, vsDur
	r.VaproSamples = count(res.Detection.Samples[detect.Computation])
	r.VSensorSamples = count(vs.Samples)

	hOpt := heatmap.Options{MaxRows: 16, MaxCols: 64, ShowLegend: false}
	if h := res.Detection.Maps[detect.Computation]; h != nil {
		r.VaproMap = heatmap.Render(h, hOpt)
	}
	if vs.Map != nil {
		r.VSensorMap = heatmap.Render(vs.Map, hOpt)
	}

	e, _ := Get("fig12")
	header(w, e)
	fmt.Fprintf(w, "computing noise (CPU share 0.5) on node %d ranks %d-%d over [%.2fs, %.2fs]\n",
		noiseNode, lo, hi, r.NoiseStartSec, r.NoiseEndSec)
	fmt.Fprintf(w, "coverage: Vapro %.1f%% vs vSensor %.1f%%\n", 100*r.VaproCoverage, 100*r.VSensorCoverage)
	fmt.Fprintf(w, "top region: Vapro perf %.2f over %.2fs (%d samples; true share 0.5)\n",
		r.VaproPerf, r.VaproDurSec, r.VaproSamples)
	fmt.Fprintf(w, "            vSensor perf %.2f over %.2fs (%d samples)\n",
		r.VSensorPerf, r.VSensorDurSec, r.VSensorSamples)
	loss := func(p float64) float64 {
		if p >= 1 {
			return 0
		}
		return 100 * (1 - p)
	}
	fmt.Fprintf(w, "reported loss: Vapro %.0f%% (paper: ~50%%), vSensor %.0f%% (paper: spurious ~90%%)\n",
		loss(r.VaproPerf), loss(r.VSensorPerf))
	fmt.Fprintln(w, "\nVapro computation heat map:")
	fmt.Fprint(w, r.VaproMap)
	fmt.Fprintln(w, "vSensor (static snippets only):")
	fmt.Fprint(w, r.VSensorMap)
	return r
}
