package exp

import (
	"io"
	"strings"
	"testing"
)

// These tests assert the *qualitative shapes* of the paper's evaluation
// — who wins, by roughly what factor, where the crossovers fall — on
// the Small-scale experiments. Absolute numbers are simulator-specific;
// EXPERIMENTS.md records the paper-vs-measured comparison.

func TestFig01Shape(t *testing.T) {
	r := Fig01(io.Discard, Small)
	if r.Spread < 1.3 {
		t.Fatalf("run-to-run spread %.2fx; the paper's figure shows ~2x", r.Spread)
	}
	if r.StdevSec <= 0 {
		t.Fatal("no variance across submissions")
	}
}

func TestFig05Shape(t *testing.T) {
	r := Fig05(io.Discard, Small)
	// TOT_INS must be at least an order of magnitude more stable than
	// TSC under both noises.
	if r.ComputeNoiseTscCV < 10*r.ComputeNoiseInsCV {
		t.Fatalf("compute noise: TSC CV %.4f vs INS CV %.4f", r.ComputeNoiseTscCV, r.ComputeNoiseInsCV)
	}
	if r.MemNoiseTscCV < 10*r.MemNoiseInsCV {
		t.Fatalf("memory noise: TSC CV %.4f vs INS CV %.4f", r.MemNoiseTscCV, r.MemNoiseInsCV)
	}
	if r.ComputeNoiseInsCV > 0.01 {
		t.Fatalf("TOT_INS CV %.4f too large to be a workload proxy", r.ComputeNoiseInsCV)
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1(io.Discard, Small)

	// Headline: Vapro context-free coverage beats vSensor by a wide
	// margin (paper: +30 points).
	if r.MeanCFCoverage < r.MeanVSCoverage+0.15 {
		t.Fatalf("CF coverage %.2f not well above vSensor %.2f", r.MeanCFCoverage, r.MeanVSCoverage)
	}
	// Context-free beats context-aware on coverage...
	if r.MeanCFCoverage <= r.MeanCACoverage {
		t.Fatalf("CF coverage %.2f not above CA %.2f", r.MeanCFCoverage, r.MeanCACoverage)
	}
	// ...and costs less.
	if r.MeanCAOverhead <= r.MeanCFOverhead {
		t.Fatalf("CA overhead %.4f not above CF %.4f", r.MeanCAOverhead, r.MeanCFOverhead)
	}
	// Overheads are a few percent at most.
	if r.MeanCFOverhead > 0.05 || r.MeanCFOverhead <= 0 {
		t.Fatalf("CF overhead %.4f implausible", r.MeanCFOverhead)
	}

	rows := map[string]Table1Row{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	// Per-app stories from the paper.
	if rows["CESM"].VSCoverage >= 0 {
		t.Fatal("vSensor must be N/A on CESM")
	}
	for _, runtimeFixed := range []string{"AMG", "EP"} {
		if rows[runtimeFixed].VSCoverage > 0.01 {
			t.Fatalf("%s has only runtime-fixed workloads; vSensor coverage %.2f", runtimeFixed, rows[runtimeFixed].VSCoverage)
		}
		if rows[runtimeFixed].CFCoverage < 0.4 {
			t.Fatalf("%s Vapro coverage %.2f too low", runtimeFixed, rows[runtimeFixed].CFCoverage)
		}
	}
	// FT: the one app where static analysis wins (rare-but-verified
	// setup).
	if rows["FT"].VSCoverage <= rows["FT"].CFCoverage {
		t.Fatalf("FT: vSensor %.2f should beat Vapro %.2f", rows["FT"].VSCoverage, rows["FT"].CFCoverage)
	}
	// MG: context-aware coverage collapses.
	if rows["MG"].CACoverage > 0.3 || rows["MG"].CFCoverage < 0.6 {
		t.Fatalf("MG CA %.2f / CF %.2f: CA must collapse", rows["MG"].CACoverage, rows["MG"].CFCoverage)
	}
	// Threaded apps have no vSensor columns but healthy Vapro coverage.
	if r.MeanThreadedCF < 0.5 {
		t.Fatalf("threaded mean coverage %.2f", r.MeanThreadedCF)
	}
	// §6.2 storage: bounded per-rank stream rates. (Our virtual time
	// axis is compressed ~10x against the paper's runs, which inflates
	// per-second rates by the same factor; the paper reports 12.8-47.4
	// KB/s.)
	for _, row := range r.Rows {
		if row.StorageKBps > 1500 {
			t.Fatalf("%s streams %.0f KB/s/rank", row.App, row.StorageKBps)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(io.Discard, Small)
	rows := map[string]Table2Row{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	for _, perfect := range []string{"CG", "FT", "EP"} {
		row := rows[perfect]
		if row.Completeness < 0.99 || row.Homogeneity < 0.99 {
			t.Fatalf("%s C=%.2f H=%.2f, want 1.00/1.00", perfect, row.Completeness, row.Homogeneity)
		}
	}
	pr := rows["PageRank"]
	if pr.Completeness < 0.99 {
		t.Fatalf("PageRank C=%.2f, want 1.00", pr.Completeness)
	}
	if pr.Homogeneity > 0.9 || pr.Homogeneity < 0.5 {
		t.Fatalf("PageRank H=%.2f, paper reports 0.74 (near-equal classes merge)", pr.Homogeneity)
	}
	for _, row := range r.Rows {
		if row.Fragments == 0 {
			t.Fatalf("%s clustered no fragments", row.App)
		}
	}
}

func TestFig09Shape(t *testing.T) {
	r := Fig09(io.Discard, Small)
	if !r.DetectedInWindow {
		t.Fatal("memory noise window not detected")
	}
	if r.MeanPerfInWindow >= r.MeanPerfOutside-0.1 {
		t.Fatalf("noise window perf %.2f not clearly below quiet %.2f", r.MeanPerfInWindow, r.MeanPerfOutside)
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(io.Discard, Small)
	if r.NBE == 0 || r.NSP == 0 {
		t.Fatalf("both factor populations must appear: BE=%d SP=%d", r.NBE, r.NSP)
	}
	// Formula and OLS must agree on the dominant factor and roughly on
	// magnitude (§4.2's consistency check).
	if r.FormulaBackendFrac < r.FormulaSuspensionFrac {
		t.Fatal("backend should dominate under this noise mix")
	}
	if r.OLSBackendFrac < r.OLSSuspensionFrac {
		t.Fatal("OLS disagrees on the dominant factor")
	}
	diff := r.FormulaBackendFrac - r.OLSBackendFrac
	if diff < -0.25 || diff > 0.25 {
		t.Fatalf("formula (%.2f) and OLS (%.2f) backend impacts diverge", r.FormulaBackendFrac, r.OLSBackendFrac)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(io.Discard, Small)
	if r.VaproCoverage < r.VSensorCoverage+0.2 {
		t.Fatalf("coverage gap too small: %.2f vs %.2f", r.VaproCoverage, r.VSensorCoverage)
	}
	// Vapro measures close to the true 50% share; vSensor's sparse
	// samples overestimate badly.
	if r.VaproPerf < 0.35 || r.VaproPerf > 0.65 {
		t.Fatalf("Vapro perf %.2f, want ~0.5", r.VaproPerf)
	}
	if r.VSensorPerf > 0.35 {
		t.Fatalf("vSensor perf %.2f, want a spurious deep loss", r.VSensorPerf)
	}
	if r.VaproSamples < 3*r.VSensorSamples {
		t.Fatalf("sample counts: %d vs %d", r.VaproSamples, r.VSensorSamples)
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(io.Discard, Small)
	if !r.Detected {
		t.Fatal("noisy nodes not detected")
	}
	// Loss close to the CPU share the noise leaves (paper: 42.8%).
	if r.CompLossFrac < 0.3 || r.CompLossFrac > 0.6 {
		t.Fatalf("comp loss %.2f, want ~0.4-0.5", r.CompLossFrac)
	}
	if r.InvolCSPValue > 0.001 {
		t.Fatalf("involuntary CS p=%v, want <0.001", r.InvolCSPValue)
	}
	// mpiP's misleading view: comm up a lot, comp barely.
	commUp := r.MpiPNoisyComm/r.MpiPQuietComm - 1
	compUp := r.MpiPNoisyComp/r.MpiPQuietComp - 1
	if commUp < 0.2 {
		t.Fatalf("mpiP comm increase %.2f too small", commUp)
	}
	if compUp > commUp/3 {
		t.Fatalf("mpiP comp increase %.2f not dwarfed by comm %.2f", compUp, commUp)
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(io.Discard, Small)
	// Socket 2 visibly slower.
	if r.Socket2Perf > r.Socket1Perf-0.1 {
		t.Fatalf("socket perfs %.2f vs %.2f", r.Socket1Perf, r.Socket2Perf)
	}
	// Backend dominates (paper: 96.6%), split between L2 and DRAM
	// (paper: 48.2% / 38.0%).
	if r.BackendFrac < 0.85 {
		t.Fatalf("backend %.2f", r.BackendFrac)
	}
	if r.L2Frac < 0.3 || r.DRAMFrac < 0.2 {
		t.Fatalf("L2 %.2f / DRAM %.2f", r.L2Frac, r.DRAMFrac)
	}
	// Huge pages shrink the spread (paper: 51.3%).
	if r.StdevReduction < 0.3 {
		t.Fatalf("huge-page stdev reduction %.2f", r.StdevReduction)
	}
}

func TestFig17Shape(t *testing.T) {
	r := Fig17(io.Discard, Small)
	if r.BadNodePerf > r.OtherPerf-0.1 {
		t.Fatalf("degraded node %.2f vs others %.2f", r.BadNodePerf, r.OtherPerf)
	}
	if r.BackendFrac < 0.85 || r.MemoryFrac < 0.8 {
		t.Fatalf("diagnosis: backend %.2f memory %.2f (paper: 97.2%% / nearly all)", r.BackendFrac, r.MemoryFrac)
	}
	if r.ReplaceSpeedup < 1.1 {
		t.Fatalf("node replacement speedup %.2f (paper: 1.24x)", r.ReplaceSpeedup)
	}
}

func TestFig18Shape(t *testing.T) {
	r := Fig18(io.Discard, Small)
	if r.Rank0IOPerf > 0.7 {
		t.Fatalf("rank-0 IO perf %.2f, should be far below 1", r.Rank0IOPerf)
	}
	if r.CompPerf < 0.9 {
		t.Fatalf("computation perf %.2f, should be stable", r.CompPerf)
	}
	if len(r.ReadTimes) == 0 || len(r.WriteTimes) == 0 {
		t.Fatal("fig19 series empty")
	}
	if r.Speedup < 0.1 {
		t.Fatalf("buffer speedup %.2f (paper: 17.5%%)", r.Speedup)
	}
	if r.StdevReduction < 0.4 {
		t.Fatalf("buffer stdev reduction %.2f (paper: 73.5%%)", r.StdevReduction)
	}
}

func TestAblationShape(t *testing.T) {
	r := Ablation(io.Discard, Small)
	// Coverage plateau around the 5% default.
	var at5 float64
	for i, th := range r.ClusterThresholds {
		if th == 0.05 {
			at5 = r.ClusterCoverage[i]
		}
	}
	if at5 <= 0.4 {
		t.Fatalf("coverage at the default threshold: %v", at5)
	}
	// Wider tolerance cannot reduce coverage.
	for i := 1; i < len(r.ClusterCoverage); i++ {
		if r.ClusterCoverage[i] < r.ClusterCoverage[i-1]-0.02 {
			t.Fatalf("coverage dropped as the threshold widened: %v", r.ClusterCoverage)
		}
	}
	// Sampling must cut overhead and fragment volume.
	if r.OverheadOn >= r.OverheadOff {
		t.Fatalf("sampling overhead: %v -> %v", r.OverheadOff, r.OverheadOn)
	}
	if r.FragmentsOn >= r.FragmentsOff {
		t.Fatalf("sampling fragments: %d -> %d", r.FragmentsOff, r.FragmentsOn)
	}
	// The default detection threshold finds the injected region.
	for i, th := range r.DetectThresholds {
		if th == 0.85 && r.DetectRegions[i] == 0 {
			t.Fatal("default detection threshold missed the injected noise")
		}
	}
}

func TestFig04Shape(t *testing.T) {
	r := Fig04(io.Discard, Small)
	// CG's loop: Irecv, Send, Wait, Allreduce, plus the entry barrier.
	if r.CFVertices < 4 || r.CFVertices > 8 {
		t.Fatalf("context-free vertices: %d", r.CFVertices)
	}
	if r.CAVertices < r.CFVertices || r.CAEdges < r.CFEdges {
		t.Fatalf("context-aware STG (%d/%d) smaller than context-free (%d/%d)",
			r.CAVertices, r.CAEdges, r.CFVertices, r.CFEdges)
	}
	if !strings.Contains(r.DOT, "digraph stg") {
		t.Fatal("dot rendering missing")
	}
}
