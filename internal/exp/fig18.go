package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/heatmap"
	"vapro/internal/noise"
	"vapro/internal/trace"
	"vapro/internal/sim"
	"vapro/internal/stats"
)

// Fig18Result is the RAxML IO-variance case study (Figures 18-19): the
// first process merges many small files on the shared distributed file
// system; bursts of FS contention make its IO performance collapse; a
// client-side file buffer fixes it.
type Fig18Result struct {
	Ranks int
	// Rank 0 does the IO; its mean normalized IO performance vs 1.0.
	Rank0IOPerf float64
	// Computation and communication remain stable (paper: "Vapro
	// suggests that both computation and communication performance are
	// stable").
	CompPerf, CommPerf float64
	// Per-IO time series of the most varied fixed-workload IO cluster
	// (Figure 19's read/write scatter), in seconds.
	ReadTimes, WriteTimes []float64
	HeatMap               string

	// Figure 19 fix: repeated executions with and without the buffer.
	UnbufferedTimes, BufferedTimes []float64
	Speedup                        float64 // paper: 17.5%
	StdevReduction                 float64 // paper: 73.5%
}

func init() {
	register(Experiment{
		ID:    "fig18",
		Title: "RAxML IO variance on the shared FS; file-buffer fix (Figures 18-19)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig18(w, scale), nil
		},
	})
}

// fig18Noise builds a bursty shared-FS interference schedule: random
// heavy-IO tenants come and go, which is what makes consecutive RAxML
// executions range from 41 to 68 seconds in the paper.
func fig18Noise(seed uint64, horizon sim.Duration) *noise.Schedule {
	rng := sim.NewRNG(seed)
	sch := noise.NewSchedule()
	t := sim.Time(0)
	for t < sim.Time(horizon) {
		gap := sim.Duration((0.1 + 0.5*rng.Float64()) * float64(sim.Second))
		dur := sim.Duration((0.2 + 0.8*rng.Float64()) * float64(sim.Second))
		slow := 2 + 8*rng.Float64()
		sch.Add(noise.IOInterference(t.Add(gap), t.Add(gap+dur), slow))
		t = t.Add(gap + dur)
	}
	return sch
}

// Fig18 runs RAxML under bursty shared-FS noise, shows the IO heat map
// (rank 0 visibly degraded, computation stable), extracts the per-IO
// time series, and then measures the file-buffer fix across repeated
// executions.
func Fig18(w io.Writer, scale Scale) *Fig18Result {
	ranks, iters, runs := 64, 12, 10
	if scale == Full {
		ranks, iters, runs = 512, 12, 10
	}
	opt := core.DefaultOptions()
	opt.Ranks = ranks
	opt.Collector.Detect.Window = 200 * sim.Millisecond
	opt.Noise = fig18Noise(11, 60*sim.Second)
	res := core.RunTraced(apps.NewRAxML(iters), opt)

	r := &Fig18Result{Ranks: ranks}
	mean := func(class detect.Class, rank int) float64 {
		var s, n float64
		for _, sm := range res.Detection.Samples[class] {
			if rank >= 0 && sm.Rank != rank {
				continue
			}
			wgt := float64(sm.Elapsed)
			s += sm.Perf * wgt
			n += wgt
		}
		if n == 0 {
			return 1
		}
		return s / n
	}
	r.Rank0IOPerf = mean(detect.IOClass, 0)
	r.CompPerf = mean(detect.Computation, -1)
	r.CommPerf = mean(detect.Communication, -1)
	if h := res.Detection.Maps[detect.IOClass]; h != nil {
		r.HeatMap = heatmap.Render(h, heatmap.Options{MaxRows: 16, MaxCols: 64, ShowLegend: true}) +
			heatmap.RenderRegions(h, res.Detection.Regions)
	}

	// Figure 19: the per-operation series of the most varied IO
	// clusters (reads of the small partition files, checkpoint writes).
	for _, v := range res.Graph.Vertices() {
		for i := range v.Fragments {
			f := &v.Fragments[i]
			if f.Rank != 0 {
				continue
			}
			switch f.Args.Op {
			case trace.OpRead:
				r.ReadTimes = append(r.ReadTimes, float64(f.Elapsed)/1e9)
			case trace.OpWrite:
				r.WriteTimes = append(r.WriteTimes, float64(f.Elapsed)/1e9)
			}
		}
	}

	// The fix: client-side file buffer absorbs the small-file reads.
	for i := 0; i < runs; i++ {
		mk := func(buffered bool) float64 {
			o := core.DefaultOptions()
			o.Ranks = ranks
			o.Seed = uint64(300 + i)
			o.Noise = fig18Noise(uint64(500+i), 60*sim.Second)
			o.BufferedIO = buffered
			return core.RunPlain(apps.NewRAxML(iters), o).Makespan.Seconds()
		}
		r.UnbufferedTimes = append(r.UnbufferedTimes, mk(false))
		r.BufferedTimes = append(r.BufferedTimes, mk(true))
	}
	mu, mb := stats.Mean(r.UnbufferedTimes), stats.Mean(r.BufferedTimes)
	if mb > 0 {
		r.Speedup = mu/mb - 1
	}
	su, sb := stats.Stddev(r.UnbufferedTimes), stats.Stddev(r.BufferedTimes)
	if su > 0 {
		r.StdevReduction = 1 - sb/su
	}

	e, _ := Get("fig18")
	header(w, e)
	fmt.Fprint(w, r.HeatMap)
	fmt.Fprintf(w, "mean normalized perf — rank 0 IO: %.2f; computation: %.2f; communication: %.2f\n",
		r.Rank0IOPerf, r.CompPerf, r.CommPerf)
	fmt.Fprintln(w, "(paper: computation stable and rank-0 IO far below the rest; low communication")
	fmt.Fprintln(w, " perf here is the waiting that the rank-0 IO propagates through the broadcast,")
	fmt.Fprintln(w, " the same dependence effect Figure 14 shows — the IO map names the root cause)")

	show := func(name string, ts []float64) {
		n := len(ts)
		if n == 0 {
			fmt.Fprintf(w, "%s times: none\n", name)
			return
		}
		stride := n / 16
		if stride < 1 {
			stride = 1
		}
		fmt.Fprintf(w, "%s times (s), every %d-th of %d:", name, stride, n)
		for i := 0; i < n; i += stride {
			fmt.Fprintf(w, " %.4f", ts[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n--- fig19: consecutive fixed-workload IO operations on rank 0 ---")
	show("read", r.ReadTimes)
	show("write", r.WriteTimes)
	fmt.Fprintf(w, "\nfile-buffer fix over %d runs: mean %.2fs -> %.2fs (%.1f%% speedup, paper: 17.5%%); stdev %.3f -> %.3f (%.1f%% reduction, paper: 73.5%%)\n",
		len(r.UnbufferedTimes), stats.Mean(r.UnbufferedTimes), stats.Mean(r.BufferedTimes),
		100*r.Speedup, stats.Stddev(r.UnbufferedTimes), stats.Stddev(r.BufferedTimes), 100*r.StdevReduction)
	return r
}
