package exp

import (
	"fmt"
	"io"
	"strings"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/interpose"
)

// Fig04Result captures the structure of CG's context-free STG (the
// paper's Figure 4: the cgitmax nested loop renders as a small cycle of
// communication call-sites) and its context-aware counterpart.
type Fig04Result struct {
	// Context-free structure.
	CFVertices, CFEdges int
	// Context-aware structure of the same run (>= context-free, since
	// call paths refine call-sites — §3.2's warm-up/timed observation).
	CAVertices, CAEdges int
	DOT                 string
}

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "the context-free STG of CG's nested loop (Figure 4)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig04(w, scale), nil
		},
	})
}

// Fig04 traces a small CG run in both STG modes and renders the
// context-free graph in Graphviz dot syntax.
func Fig04(w io.Writer, scale Scale) *Fig04Result {
	opt := core.DefaultOptions()
	opt.Ranks = 4
	cf := core.RunTraced(apps.NewCG(3), opt)

	optCA := opt
	optCA.Interpose.Mode = interpose.ContextAware
	ca := core.RunTraced(apps.NewCG(3), optCA)

	r := &Fig04Result{
		CFVertices: cf.Graph.NumVertices(),
		CFEdges:    cf.Graph.NumEdges(),
		CAVertices: ca.Graph.NumVertices(),
		CAEdges:    ca.Graph.NumEdges(),
		DOT:        cf.Graph.DOT(),
	}

	e, _ := Get("fig4")
	header(w, e)
	fmt.Fprintf(w, "context-free STG: %d vertices (comm call-sites), %d edges (computation snippets)\n",
		r.CFVertices, r.CFEdges)
	fmt.Fprintf(w, "context-aware STG of the same run: %d vertices, %d edges\n", r.CAVertices, r.CAEdges)
	fmt.Fprintln(w, "(the paper's Figure 4 shows the Irecv/Send/Wait cycle of the cgitmax loop;")
	fmt.Fprintln(w, " render the dot below with graphviz to see it)")
	fmt.Fprintln(w, strings.TrimSpace(r.DOT))
	return r
}
