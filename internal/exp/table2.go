package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/cluster"
	"vapro/internal/core"
	"vapro/internal/stats"
)

// Table2Row is one application's clustering-verification scores.
type Table2Row struct {
	App          string
	Fragments    int
	Completeness float64
	Homogeneity  float64
	VMeasure     float64
}

// Table2Result is the §6.3 verification of fixed-workload
// identification against ground-truth execution paths.
type Table2Result struct {
	Rows []Table2Row
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "verification of fixed-workload identification: C/H/V scores (Table 2)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Table2(w, scale), nil
		},
	})
}

// Table2 clusters the computation fragments of CG, FT, EP and PageRank
// at 16 ranks/threads and scores the clustering against the
// ground-truth workload labels (the §6.3 instrumentation of all loops
// and branches in the hot spots, which the simulator records exactly).
func Table2(w io.Writer, scale Scale) *Table2Result {
	res := &Table2Result{}
	for _, name := range []string{"CG", "FT", "EP", "PageRank"} {
		app, err := apps.New(name)
		if err != nil {
			panic(err)
		}
		opt := core.DefaultOptions()
		opt.Ranks = 16
		run := core.RunTraced(app, opt)

		// Collect (truth, predicted) label pairs over computation
		// fragments. Predicted labels must be globally unique per
		// (edge, cluster); truth labels are the exact workload hashes.
		// The paper instruments the hot spots (>80% of execution
		// time): only repeatedly executed edges participate, and
		// truth labels are per snippet (edge-local), matching the
		// execution-path recording granularity.
		var truth, pred []int
		nFrags := 0
		clusterBase := 0
		truthBase := 0
		for _, e := range run.Graph.Edges() {
			if len(e.Fragments) < 5*run.Ranks {
				continue // cold path, not instrumented
			}
			cl := cluster.Run(e.Fragments, opt.Collector.Detect.Cluster)
			truthID := map[uint64]int{}
			for i := range e.Fragments {
				f := &e.Fragments[i]
				if f.Counters.TotIns == 0 || f.Truth == 0 {
					continue
				}
				id, ok := truthID[f.Truth]
				if !ok {
					id = truthBase + len(truthID)
					truthID[f.Truth] = id
				}
				truth = append(truth, id)
				pred = append(pred, clusterBase+cl.Assign[i])
				nFrags++
			}
			clusterBase += len(cl.Clusters)
			truthBase += len(truthID)
		}
		h, c, v := stats.VMeasure(truth, pred)
		res.Rows = append(res.Rows, Table2Row{
			App:          name,
			Fragments:    nFrags,
			Completeness: c,
			Homogeneity:  h,
			VMeasure:     v,
		})
	}

	e, _ := Get("table2")
	header(w, e)
	fmt.Fprintf(w, "%-10s %10s %6s %6s %6s\n", "app", "#fragments", "C", "H", "V")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %10d %6.2f %6.2f %6.2f\n", r.App, r.Fragments, r.Completeness, r.Homogeneity, r.VMeasure)
	}
	fmt.Fprintln(w, "(paper: C=1.00 everywhere; H=1.00 except PageRank 0.74, whose near-equal")
	fmt.Fprintln(w, " partitions legitimately merge within the 5% tolerance)")
	return res
}
