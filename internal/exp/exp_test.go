package exp

import "testing"

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 11 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	want := []string{"ablation", "fig1", "fig11", "fig12", "fig13", "fig15", "fig17", "fig18", "fig5", "fig9", "table1", "table2"}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	if len(All()) != len(ids) {
		t.Fatal("All/IDs disagree")
	}
}
