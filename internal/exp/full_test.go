package exp

import (
	"io"
	"os"
	"testing"
)

// TestFullScale runs the headline detection case at the paper's process
// count (2048 ranks). It takes minutes and gigabytes, so it is opt-in:
//
//	VAPRO_FULL=1 go test ./internal/exp -run TestFullScale -timeout 30m
func TestFullScale(t *testing.T) {
	if os.Getenv("VAPRO_FULL") == "" {
		t.Skip("set VAPRO_FULL=1 to run the 2048-rank experiment (~4 min)")
	}
	r := Fig13(io.Discard, Full)
	t.Logf("2048-rank CG: loss %.3f detected=%v p=%v", r.CompLossFrac, r.Detected, r.InvolCSPValue)
	if !r.Detected {
		t.Fatal("full-scale detection failed")
	}
	if r.CompLossFrac < 0.3 || r.CompLossFrac > 0.6 {
		t.Fatalf("full-scale loss %.2f", r.CompLossFrac)
	}
}
