package exp

import (
	"fmt"
	"io"
	"sort"

	"vapro/internal/apps"
	"vapro/internal/cluster"
	"vapro/internal/core"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/stats"
	"vapro/internal/trace"
)

// Fig05Result verifies the proxy-metric observation of Figure 5:
// TOT_INS of fixed-workload fragments stays stable under noise while
// TSC (elapsed time) is perturbed.
type Fig05Result struct {
	// Relative coefficient of variation of TOT_INS and TSC over the
	// fragments of one fixed-workload cluster, per noise kind.
	ComputeNoiseInsCV float64
	ComputeNoiseTscCV float64
	MemNoiseInsCV     float64
	MemNoiseTscCV     float64
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "TOT_INS is stable under noise, TSC is not (Figure 5)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig05(w, scale), nil
		},
	})
}

// fig05series extracts the TOT_INS and TSC sequences of the largest
// fixed-workload computation cluster of rank 0 (one workload class on
// one STG edge, exactly what Figure 5 plots).
func fig05series(res *core.Result) (ins, tsc []float64) {
	var best []trace.Fragment
	for _, e := range res.Graph.Edges() {
		var r0 []trace.Fragment
		for _, f := range e.Fragments {
			if f.Rank == 0 && f.Counters.TotIns > 0 {
				r0 = append(r0, f)
			}
		}
		if len(r0) < 2 {
			continue
		}
		cl := cluster.Run(r0, cluster.DefaultOptions())
		for _, c := range cl.Clusters {
			if len(c.Members) > len(best) {
				sub := make([]trace.Fragment, 0, len(c.Members))
				for _, m := range c.Members {
					sub = append(sub, r0[m])
				}
				best = sub
			}
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].Start < best[j].Start })
	for _, f := range best {
		ins = append(ins, float64(f.Counters.TotIns))
		tsc = append(tsc, float64(f.Elapsed))
	}
	return ins, tsc
}

func cv(xs []float64) float64 {
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.Stddev(xs) / m
}

// Fig05 runs 16-rank CG twice — once under CPU contention, once under
// memory contention — and compares the stability of TOT_INS vs TSC for
// one fixed-workload fragment cluster.
func Fig05(w io.Writer, scale Scale) *Fig05Result {
	outer := 8
	if scale == Full {
		outer = 20
	}
	run := func(ev noise.Event) (ins, tsc []float64) {
		sch := noise.NewSchedule()
		sch.Add(ev)
		opt := core.DefaultOptions()
		opt.Ranks = 16
		opt.Noise = sch
		res := core.RunTraced(apps.NewCG(outer), opt)
		return fig05series(res)
	}

	// Noise active over part of the iteration phase only, so the
	// series shows both quiet and perturbed executions like the
	// figure. The iteration phase sits in the back half of the run
	// (after the rank-dependent initialization).
	probe := core.RunPlain(apps.NewCG(outer), func() core.Options {
		o := core.DefaultOptions()
		o.Ranks = 16
		return o
	}())
	start := sim.Time(float64(probe.Makespan) * 0.70)
	end := sim.Time(float64(probe.Makespan) * 0.92)
	insC, tscC := run(noise.CPUContention(0, 0, start, end, 0.55))
	insM, tscM := run(noise.MemContention(0, start, end, 3.0))

	r := &Fig05Result{
		ComputeNoiseInsCV: cv(insC),
		ComputeNoiseTscCV: cv(tscC),
		MemNoiseInsCV:     cv(insM),
		MemNoiseTscCV:     cv(tscM),
	}

	e, _ := Get("fig5")
	header(w, e)
	show := func(name string, ins, tsc []float64) {
		n := len(ins)
		if n > 20 {
			n = 20
		}
		fmt.Fprintf(w, "%s noise — first %d executions of a fixed-workload fragment (rank 0):\n", name, n)
		fmt.Fprint(w, "  TOT_INS:")
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, " %8.0f", ins[i])
		}
		fmt.Fprint(w, "\n  TSC(ns):")
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, " %8.0f", tsc[i])
		}
		fmt.Fprintln(w)
	}
	show("computation", insC, tscC)
	show("memory", insM, tscM)
	fmt.Fprintf(w, "coefficient of variation — compute noise: TOT_INS %.4f vs TSC %.4f; memory noise: TOT_INS %.4f vs TSC %.4f\n",
		r.ComputeNoiseInsCV, r.ComputeNoiseTscCV, r.MemNoiseInsCV, r.MemNoiseTscCV)
	fmt.Fprintln(w, "(paper: TOT_INS flat, TSC visibly perturbed — TOT_INS is the workload proxy)")
	return r
}
