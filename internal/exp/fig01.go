package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/stats"
)

// Fig01Result is the outcome of the Figure 1 experiment: repeated
// executions of CG on the same nodes with run-to-run environment
// variance.
type Fig01Result struct {
	Runs     int
	TimesSec []float64
	MinSec   float64
	MaxSec   float64
	MeanSec  float64
	StdevSec float64
	// Spread is Max/Min; the paper's figure shows roughly 2x.
	Spread float64
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "100 repeated CG executions on the same nodes vary ~2x (Figure 1)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			r := Fig01(w, scale)
			return r, nil
		},
	})
}

// Fig01 reruns CG many times under randomly drawn background noise —
// the shared-cluster environment of the Tianhe-2A figure — and reports
// the execution-time distribution.
func Fig01(w io.Writer, scale Scale) *Fig01Result {
	runs, ranks, outer := 40, 64, 6
	if scale == Full {
		runs, ranks, outer = 100, 256, 10
	}
	res := &Fig01Result{Runs: runs}
	master := sim.NewRNG(42)
	for i := 0; i < runs; i++ {
		rng := master.Split(uint64(i))
		sch := noise.NewSchedule()
		// Each submission shares the machine with a random amount of
		// other tenants' work: some runs are clean, some hit heavy
		// CPU or memory interference on a few nodes.
		nodes := ranks / 24
		if nodes < 1 {
			nodes = 1
		}
		nNoise := rng.Intn(5) // 0..4 interfering tenants
		for k := 0; k < nNoise; k++ {
			node := rng.Intn(nodes)
			start := sim.Time(rng.Float64() * 1.5 * float64(sim.Second))
			dur := sim.Duration((1 + 4*rng.Float64()) * float64(sim.Second))
			if rng.Float64() < 0.5 {
				sch.Add(noise.NodeCPUContention(node, start, start.Add(dur), 0.5+0.3*rng.Float64()))
			} else {
				sch.Add(noise.MemContention(node, start, start.Add(dur), 1.8+2.2*rng.Float64()))
			}
		}
		opt := core.DefaultOptions()
		opt.Ranks = ranks
		opt.Seed = uint64(1000 + i)
		opt.Noise = sch
		plain := core.RunPlain(apps.NewCG(outer), opt)
		res.TimesSec = append(res.TimesSec, plain.Makespan.Seconds())
	}
	res.MinSec, res.MaxSec = res.TimesSec[0], res.TimesSec[0]
	for _, t := range res.TimesSec {
		if t < res.MinSec {
			res.MinSec = t
		}
		if t > res.MaxSec {
			res.MaxSec = t
		}
	}
	res.MeanSec = stats.Mean(res.TimesSec)
	res.StdevSec = stats.Stddev(res.TimesSec)
	if res.MinSec > 0 {
		res.Spread = res.MaxSec / res.MinSec
	}

	e, _ := Get("fig1")
	header(w, e)
	fmt.Fprintf(w, "%d submissions of %d-rank CG on the same node group:\n", runs, ranks)
	for i, t := range res.TimesSec {
		fmt.Fprintf(w, "%6.3f", t)
		if (i+1)%10 == 0 {
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nmin %.3fs  max %.3fs  mean %.3fs  stdev %.3fs  spread %.2fx (paper: ~2x)\n",
		res.MinSec, res.MaxSec, res.MeanSec, res.StdevSec, res.Spread)
	return res
}
