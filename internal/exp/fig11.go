package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

// Fig11Point is one abnormal fragment in the breakdown scatter: its
// excess backend-bound and suspension contributions and the classified
// major factor.
type Fig11Point struct {
	BackendExcessNS    float64
	SuspensionExcessNS float64
	Major              string // "BE", "SP", "BE+SP", "normal"
}

// Fig11Result is the variance-breakdown experiment of Figure 11 plus
// the §4.2 OLS-vs-formula consistency check.
type Fig11Result struct {
	Points []Fig11Point
	// Counts per class.
	NBE, NSP, NBoth, NNormal int
	// Formula-based impact fractions of backend bound and suspension
	// (paper: 89.4% and 4.9%).
	FormulaBackendFrac, FormulaSuspensionFrac float64
	// OLS-based estimates of the same two (paper: 86.6% and 3.1%).
	OLSBackendFrac, OLSSuspensionFrac float64
	Report                            *diagnose.Report
}

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "variance breakdown of CG under concurrent CPU + memory noise (Figure 11, §4.2)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig11(w, scale), nil
		},
	})
}

// Fig11 injects concurrent computing noise and memory contention into
// 16-rank CG (the Figure 5 method), diagnoses the resulting variance,
// and classifies each abnormal fragment by its major factor; it also
// cross-validates the formula-based and OLS-based quantifications.
func Fig11(w io.Writer, scale Scale) *Fig11Result {
	outer := 16
	if scale == Full {
		outer = 40
	}
	sch := noise.NewSchedule()
	// CPU contention on a few cores, memory contention on the node —
	// both concurrently, over a mid-run window.
	t0, t1 := sim.Time(800*sim.Millisecond), sim.Time(1600*sim.Millisecond)
	sch.Add(noise.CPUContention(0, 1, t0, t1, 0.82))
	sch.Add(noise.MemContention(0, t0, t1, 3.2))
	opt := core.DefaultOptions()
	opt.Ranks = 16
	opt.Noise = sch
	res := core.RunTraced(apps.NewCG(outer), opt)

	rep := res.DiagnoseAll(detect.Computation, diagnose.DefaultOptions())
	r := &Fig11Result{Report: rep}

	// Scatter: per abnormal fragment, backend & suspension excess.
	// Rebuild the same split the diagnoser used.
	clusters := res.FixedClusters(detect.Computation)
	for _, frags := range clusters {
		if len(frags) < 5 {
			continue
		}
		fastest := frags[0].Elapsed
		for i := range frags {
			if frags[i].Elapsed < fastest {
				fastest = frags[i].Elapsed
			}
		}
		cut := float64(fastest) * 1.2
		// Reference = mean over normal fragments.
		var refBE, refSP, n float64
		for i := range frags {
			if float64(frags[i].Elapsed) < cut {
				be, _ := diagnose.TimeNS(diagnose.BackendBound, &frags[i])
				sp, _ := diagnose.TimeNS(diagnose.Suspension, &frags[i])
				refBE += be
				refSP += sp
				n++
			}
		}
		if n == 0 {
			continue
		}
		refBE /= n
		refSP /= n
		for i := range frags {
			be, _ := diagnose.TimeNS(diagnose.BackendBound, &frags[i])
			sp, _ := diagnose.TimeNS(diagnose.Suspension, &frags[i])
			p := Fig11Point{BackendExcessNS: be - refBE, SuspensionExcessNS: sp - refSP}
			abnormal := float64(frags[i].Elapsed) >= cut
			slow := float64(frags[i].Elapsed) - (refBE + refSP)
			switch {
			case !abnormal:
				p.Major = "normal"
				r.NNormal++
			case p.BackendExcessNS > 0.25*slow && p.SuspensionExcessNS > 0.25*slow:
				p.Major = "BE+SP"
				r.NBoth++
			case p.SuspensionExcessNS > p.BackendExcessNS:
				p.Major = "SP"
				r.NSP++
			default:
				p.Major = "BE"
				r.NBE++
			}
			r.Points = append(r.Points, p)
		}
	}

	// Formula vs OLS impact fractions of the two S1 factors.
	if be := rep.Find(diagnose.BackendBound); be != nil {
		r.FormulaBackendFrac = be.ImpactFrac
	}
	if sp := rep.Find(diagnose.Suspension); sp != nil {
		r.FormulaSuspensionFrac = sp.ImpactFrac
	}
	// OLS re-quantification of the same two factors: the statistical
	// method regresses elapsed time on the factor metrics over the
	// pooled clusters and rescales coefficients to time (§4.2); the
	// resulting impacts should agree with the formula-based ones.
	olsFactors := []diagnose.Factor{diagnose.BackendBound, diagnose.Suspension}
	q := diagnose.QuantifyOLS(clusters, olsFactors)
	var olsBE, olsSP, slow float64
	for _, frags := range clusters {
		if len(frags) < 5 {
			continue
		}
		fastest := frags[0].Elapsed
		for i := range frags {
			if frags[i].Elapsed < fastest {
				fastest = frags[i].Elapsed
			}
		}
		cut := float64(fastest) * 1.2
		var refBE, refSP, refE, n float64
		for i := range frags {
			if float64(frags[i].Elapsed) < cut {
				if est, ok := q.EstimatedTimeNS(diagnose.BackendBound, &frags[i]); ok {
					refBE += est
				}
				if est, ok := q.EstimatedTimeNS(diagnose.Suspension, &frags[i]); ok {
					refSP += est
				}
				refE += float64(frags[i].Elapsed)
				n++
			}
		}
		if n == 0 {
			continue
		}
		refBE /= n
		refSP /= n
		refE /= n
		for i := range frags {
			if float64(frags[i].Elapsed) < cut {
				continue
			}
			slow += float64(frags[i].Elapsed) - refE
			if est, ok := q.EstimatedTimeNS(diagnose.BackendBound, &frags[i]); ok {
				if ex := est - refBE; ex > 0 {
					olsBE += ex
				}
			}
			if est, ok := q.EstimatedTimeNS(diagnose.Suspension, &frags[i]); ok {
				if ex := est - refSP; ex > 0 {
					olsSP += ex
				}
			}
		}
	}
	if slow > 0 {
		r.OLSBackendFrac = olsBE / slow
		r.OLSSuspensionFrac = olsSP / slow
	}

	e, _ := Get("fig11")
	header(w, e)
	fmt.Fprintf(w, "abnormal fragments: %d backend-bound-major, %d suspension-major, %d both, %d normal\n",
		r.NBE, r.NSP, r.NBoth, r.NNormal)
	fmt.Fprintf(w, "formula-based impact: backend %.1f%%, suspension %.1f%% (paper: 89.4%% / 4.9%%)\n",
		100*r.FormulaBackendFrac, 100*r.FormulaSuspensionFrac)
	fmt.Fprintf(w, "OLS-based impact:     backend %.1f%%, suspension %.1f%% (paper: 86.6%% / 3.1%%)\n",
		100*r.OLSBackendFrac, 100*r.OLSSuspensionFrac)
	fmt.Fprint(w, rep.String())
	return r
}
