package exp

import (
	"fmt"
	"io"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/heatmap"
	"vapro/internal/noise"
)

// Fig17Result is the Nekbone degraded-memory-node case study.
type Fig17Result struct {
	Ranks   int
	BadNode int
	// Mean normalized performance of the degraded node's ranks vs the
	// rest.
	BadNodePerf, OtherPerf float64
	// Diagnosis shares (paper: 97.2% backend, nearly all memory bound).
	BackendFrac, MemoryFrac float64
	// Speedup from replacing the node (paper: 1.24x).
	ReplaceSpeedup float64
	HeatMap        string
	Report         *diagnose.Report
}

func init() {
	register(Experiment{
		ID:    "fig17",
		Title: "Nekbone on a node with degraded memory bandwidth (Figure 17)",
		Run: func(w io.Writer, scale Scale) (any, error) {
			return Fig17(w, scale), nil
		},
	})
}

// Fig17 runs Nekbone with one node whose memory bandwidth is 15.5%
// lower (the paper's measured deficit), detects the slow node,
// diagnoses memory-bound backend stalls, and measures the speedup from
// replacing the node.
func Fig17(w io.Writer, scale Scale) *Fig17Result {
	ranks, iters := 96, 80
	if scale == Full {
		ranks, iters = 128, 120
	}
	badNode := 2
	opt := core.DefaultOptions()
	opt.Ranks = ranks
	sch := noise.NewSchedule()
	sch.Add(noise.DegradedMemoryNode(badNode, 0.845))
	opt.Noise = sch
	res := core.RunTraced(apps.NewNekbone(iters), opt)

	r := &Fig17Result{Ranks: ranks, BadNode: badNode}
	cores := 24
	var sBad, nBad, sOK, nOK float64
	for _, s := range res.Detection.Samples[detect.Computation] {
		wgt := float64(s.Elapsed)
		if s.Rank/cores == badNode {
			sBad += s.Perf * wgt
			nBad += wgt
		} else {
			sOK += s.Perf * wgt
			nOK += wgt
		}
	}
	if nBad > 0 {
		r.BadNodePerf = sBad / nBad
	}
	if nOK > 0 {
		r.OtherPerf = sOK / nOK
	}
	if h := res.Detection.Maps[detect.Computation]; h != nil {
		r.HeatMap = heatmap.Render(h, heatmap.Options{MaxRows: 24, MaxCols: 64, ShowLegend: true}) +
			heatmap.RenderRegions(h, res.Detection.Regions)
	}
	r.Report = res.DiagnoseAll(detect.Computation, diagnose.DefaultOptions())
	if be := r.Report.Find(diagnose.BackendBound); be != nil {
		r.BackendFrac = be.ImpactFrac
	}
	if mb := r.Report.Find(diagnose.MemoryBound); mb != nil {
		r.MemoryFrac = mb.ImpactFrac
	}

	// Replace the problematic node: rerun on a healthy machine.
	optOK := opt
	optOK.Noise = nil
	bad := core.RunPlain(apps.NewNekbone(iters), opt)
	good := core.RunPlain(apps.NewNekbone(iters), optOK)
	if good.Makespan > 0 {
		r.ReplaceSpeedup = float64(bad.Makespan) / float64(good.Makespan)
	}

	e, _ := Get("fig17")
	header(w, e)
	fmt.Fprintf(w, "node %d memory bandwidth degraded to 84.5%% (ranks %d-%d)\n",
		badNode, badNode*cores, badNode*cores+cores-1)
	fmt.Fprint(w, r.HeatMap)
	fmt.Fprintf(w, "mean normalized perf: degraded node %.3f vs others %.3f\n", r.BadNodePerf, r.OtherPerf)
	fmt.Fprintf(w, "diagnosis: backend %.1f%% of slowdown (paper: 97.2%%), memory bound %.1f%% (paper: nearly all of it)\n",
		100*r.BackendFrac, 100*r.MemoryFrac)
	fmt.Fprint(w, r.Report.String())
	fmt.Fprintf(w, "replacing the node: %.2fx speedup (paper: 1.24x)\n", r.ReplaceSpeedup)
	return r
}
