package vsensor

import (
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

func TestCapabilityGates(t *testing.T) {
	cases := []struct {
		cap  Capability
		want bool
	}{
		{Capability{SourceAvailable: true}, true},
		{Capability{SourceAvailable: false}, false},                    // HPL
		{Capability{SourceAvailable: true, Threaded: true}, false},     // PageRank
		{Capability{SourceAvailable: true, HugeCodebase: true}, false}, // CESM
	}
	for _, c := range cases {
		if c.cap.Supported() != c.want {
			t.Fatalf("%+v supported=%v", c.cap, c.cap.Supported())
		}
	}
	res := Analyze(stg.New(), 4, Capability{}, detect.Options{})
	if res.Supported || res.Coverage != 0 {
		t.Fatal("unsupported analysis must be empty")
	}
}

func buildGraph(static bool) *stg.Graph {
	g := stg.New()
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 10; i++ {
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: int64(i) * 1000, Elapsed: 800,
				Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
				Static:   static, Truth: 42,
			})
		}
	}
	return g
}

func TestCoverageStaticOnly(t *testing.T) {
	opt := detect.Options{Window: sim.Millisecond, Threshold: 0.85}
	res := Analyze(buildGraph(true), 4, Capability{SourceAvailable: true}, opt)
	if res.Coverage < 0.999 {
		t.Fatalf("all-static coverage %v", res.Coverage)
	}
	res = Analyze(buildGraph(false), 4, Capability{SourceAvailable: true}, opt)
	if res.Coverage != 0 {
		t.Fatalf("dynamic fragments covered by static analysis: %v", res.Coverage)
	}
	if len(res.Samples) != 0 {
		t.Fatal("samples from dynamic fragments")
	}
}

func TestSingleExecutionStillVerified(t *testing.T) {
	// A statically-verified snippet executed once counts for vSensor —
	// that is the FT-setup distinction against clustering.
	g := stg.New()
	g.Add(trace.Fragment{
		Rank: 0, Kind: trace.Comp, From: 1, State: 2, Elapsed: 500,
		Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
		Static:   true, Truth: 7,
	})
	res := Analyze(g, 1, Capability{SourceAvailable: true}, detect.Options{Window: sim.Millisecond})
	if res.Coverage < 0.999 {
		t.Fatalf("single static execution coverage %v", res.Coverage)
	}
}

func TestTruthSeparatesWorkloads(t *testing.T) {
	// Two static workloads on one edge: each normalizes against its
	// own fastest.
	g := stg.New()
	for i := 0; i < 6; i++ {
		g.Add(trace.Fragment{
			Rank: 0, Kind: trace.Comp, From: 1, State: 2,
			Start: int64(i) * 10_000, Elapsed: 1000,
			Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
			Static:   true, Truth: 1,
		})
		g.Add(trace.Fragment{
			Rank: 0, Kind: trace.Comp, From: 1, State: 2,
			Start: int64(i)*10_000 + 5000, Elapsed: 4000,
			Counters: trace.CountersView{TotIns: 4000, Cycles: 2000},
			Static:   true, Truth: 2,
		})
	}
	res := Analyze(g, 1, Capability{SourceAvailable: true}, detect.Options{Window: sim.Millisecond})
	for _, s := range res.Samples {
		if s.Perf < 0.99 {
			t.Fatalf("uniform per-truth groups must all normalize to ~1, got %v", s.Perf)
		}
	}
}

func TestOverheadModel(t *testing.T) {
	if Overhead(0, sim.Second) != 0 {
		t.Fatal("zero events")
	}
	if Overhead(1000, 0) != 0 {
		t.Fatal("zero makespan")
	}
	// 5000 interceptions over one second at ~2µs each ≈ 1%.
	ov := Overhead(5000, sim.Second)
	if ov <= 0 || ov > 0.05 {
		t.Fatalf("overhead %v", ov)
	}
}
