// Package vsensor is a faithful model of the state-of-the-art baseline
// the paper compares against: vSensor (PPoPP'18), which identifies
// fixed-workload snippets by *static source analysis* at compile time.
// Its limits, which Vapro's evaluation exercises, are:
//
//   - it only sees snippets whose workload is provably fixed at
//     compilation (constant loop bounds that survive alias analysis) —
//     modeled by the Static flag app skeletons set on such computes;
//   - a snippet with several runtime workload classes is invisible to
//     it, even if each class is perfectly repeatable (AMG, EP, CG);
//   - it needs source: closed-source programs (HPL) and very large
//     codebases (CESM) are out of reach;
//   - it does not support multi-threaded applications.
//
// Detection-wise it normalizes each verified snippet against its own
// fastest execution, like Vapro but without clustering.
package vsensor

import (
	"math"
	"sort"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Capability describes whether vSensor can process an application at
// all (source availability, threading model, codebase size).
type Capability struct {
	SourceAvailable bool
	Threaded        bool
	HugeCodebase    bool
}

// Supported reports whether vSensor can run on the application.
func (c Capability) Supported() bool {
	return c.SourceAvailable && !c.Threaded && !c.HugeCodebase
}

// Result is a vSensor analysis outcome.
type Result struct {
	// Supported is false when the tool cannot process the app; all
	// other fields are then zero.
	Supported bool
	// Coverage is time on statically verified fixed-workload snippets
	// over total time.
	Coverage float64
	// Samples are the normalized performance observations from the
	// verified snippets.
	Samples []detect.Sample
	// Map is the heat map over verified snippets only.
	Map *detect.HeatMap
	// Regions are the detected variance regions.
	Regions []detect.Region
}

// groupKey identifies one statically-verified snippet instance set: the
// STG edge plus the exact compile-time workload identity. vSensor
// instruments the snippet in source, so every execution with the same
// compile-time bounds is one comparable population — no minimum
// repetition is needed (one execution is still "verified"), which is
// exactly why FT's rarely-executed setup counts for vSensor but not for
// clustering-based Vapro.
type groupKey struct {
	edge  trace.EdgeKey
	truth uint64
}

// Analyze runs the vSensor model over an STG for ranks [0, ranks).
func Analyze(g *stg.Graph, ranks int, cap Capability, opt detect.Options) *Result {
	res := &Result{Supported: cap.Supported()}
	if !res.Supported {
		return res
	}
	if opt.Window <= 0 {
		opt.Window = 500 * sim.Millisecond
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}

	var usableTime, totalTime int64
	groups := make(map[groupKey][]*trace.Fragment)
	for _, e := range g.Edges() {
		for i := range e.Fragments {
			f := &e.Fragments[i]
			totalTime += f.Elapsed
			if !f.Static {
				continue
			}
			k := groupKey{edge: e.Key, truth: f.Truth}
			groups[k] = append(groups[k], f)
		}
	}
	for _, frags := range groups {
		best := int64(math.MaxInt64)
		for _, f := range frags {
			if f.Elapsed > 0 && f.Elapsed < best {
				best = f.Elapsed
			}
		}
		if best == math.MaxInt64 {
			continue
		}
		for _, f := range frags {
			usableTime += f.Elapsed
			perf := 1.0
			if f.Elapsed > 0 {
				perf = float64(best) / float64(f.Elapsed)
			}
			res.Samples = append(res.Samples, detect.Sample{
				Rank:    f.Rank,
				Start:   f.Start,
				Elapsed: f.Elapsed,
				Perf:    perf,
			})
		}
	}
	// Vertices (communication) also count toward vSensor's denominator;
	// vSensor v2 tracks communication too but we compare computation
	// coverage as Table 1 does: total time includes everything.
	for _, v := range g.Vertices() {
		for i := range v.Fragments {
			totalTime += v.Fragments[i].Elapsed
		}
	}
	if totalTime > 0 {
		res.Coverage = float64(usableTime) / float64(totalTime)
	}
	sort.Slice(res.Samples, func(i, j int) bool { return res.Samples[i].Start < res.Samples[j].Start })
	res.Map, res.Regions = detect.MapAndRegions(detect.Computation, res.Samples, ranks, opt)
	return res
}

// Overhead returns vSensor's modeled runtime overhead fraction given
// one rank's interception count: a fixed per-snippet timer cost, lower
// than Vapro's per-event cost because no counters are read and no STG
// is maintained.
func Overhead(eventsPerRank int, makespan sim.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	const perEvent = 2 * sim.Microsecond
	return float64(sim.Duration(eventsPerRank)*perEvent) / float64(makespan)
}
