package detect

import (
	"sync/atomic"
	"time"

	"vapro/internal/obs"
)

// Pipeline stages traced per analysis window. StagePrep is the whole
// per-element fan-out wall time; StageCluster and StageNormalize are the
// CPU time summed across workers inside it (cache-miss clustering and
// prep rebuilds — near zero on warm windows); StageMerge is the
// deterministic sample merge; StageMap is the heat-map + region-growing
// pass.
const (
	StagePrep = iota
	StageCluster
	StageNormalize
	StageMerge
	StageMap
)

// Metrics is the detection layer's observability surface.
type Metrics struct {
	// Windows counts completed analysis passes (whole-run or windowed).
	Windows *obs.Counter
	// WindowNS is the end-to-end latency distribution of one pass.
	WindowNS *obs.Histogram
	// Spans traces the per-stage latencies (see the Stage constants).
	Spans *obs.Spans
	// PrepIncremental counts element preps advanced by the delta path
	// (append-only generation steps patched in place).
	PrepIncremental *obs.Counter
	// PrepRebuilds counts element preps rebuilt from scratch (cold
	// elements, epoch bumps, option changes, fallback re-clusters).
	PrepRebuilds *obs.Counter
	// DirtySpanPct is the distribution of the dirty-span ratio (percent
	// of the sorted order each incremental advance recomputed).
	DirtySpanPct *obs.Histogram
	// StoreAppends counts samples appended to chunked sample stores
	// (both initial builds and incremental advances).
	StoreAppends *obs.Counter
	// StoreCompactions counts store rebuilds forced by the dead-sample
	// threshold (an advance retired too much; the element re-emitted
	// into a fresh store).
	StoreCompactions *obs.Counter
	// RegionCellsCarried counts heat-map cells whose region membership
	// was carried over from the previous window unchanged.
	RegionCellsCarried *obs.Counter
	// RegionCellsRegrown counts heat-map cells the region-growing pass
	// actually revisited (changed, shifted out of overlap, or batch).
	RegionCellsRegrown *obs.Counter
}

// NewMetrics registers the detection metrics into reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Windows: reg.Counter("vapro_detect_windows_total", "detect",
			"completed detection passes (whole-run and per-window)"),
		WindowNS: reg.Histogram("vapro_detect_window_ns", "detect",
			"end-to-end latency of one detection pass (ns)", obs.LatencyBounds()),
		Spans: obs.NewSpans(reg, "vapro_detect_stage", "detect",
			"prep", "cluster", "normalize", "merge", "map"),
		PrepIncremental: reg.Counter("vapro_detect_prep_incremental_total", "detect",
			"element preps advanced incrementally (append-only delta applied in place)"),
		PrepRebuilds: reg.Counter("vapro_detect_prep_rebuilds_total", "detect",
			"element preps rebuilt from scratch"),
		DirtySpanPct: reg.Histogram("vapro_detect_dirty_span_pct", "detect",
			"dirty-span ratio of incremental advances (percent of sorted order recomputed)",
			[]int64{1, 2, 5, 10, 25, 50, 100}),
		StoreAppends: reg.Counter("vapro_detect_store_appends_total", "detect",
			"samples appended to chunked sample stores"),
		StoreCompactions: reg.Counter("vapro_detect_store_compactions_total", "detect",
			"sample-store rebuilds forced by the dead-sample threshold"),
		RegionCellsCarried: reg.Counter("vapro_detect_region_cells_carried_total", "detect",
			"heat-map cells carried over from the previous window's regions"),
		RegionCellsRegrown: reg.Counter("vapro_detect_region_cells_regrown_total", "detect",
			"heat-map cells revisited by region growing"),
	}
}

// SetMetrics attaches m to the analyzer; nil detaches. Instrumentation
// is observational only — results are bit-identical with or without it.
func (a *Analyzer) SetMetrics(m *Metrics) { a.met = m }

// stageClock accumulates worker CPU time for the sub-stages that run
// inside the stage-1 fan-out. Workers add concurrently; run() drains the
// totals into span records once per pass. Passes themselves are
// serialized by the callers (the pool's analysis mutex, the monitor's
// lock, the sequential core paths), so drain-and-reset is safe.
type stageClock struct {
	clusterNS atomic.Int64
	normNS    atomic.Int64
}

func (sc *stageClock) reset() {
	sc.clusterNS.Store(0)
	sc.normNS.Store(0)
}

// since is a tiny helper for the instrumentation sites.
func since(t0 time.Time) int64 { return time.Since(t0).Nanoseconds() }
