package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"vapro/internal/obs"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// TestSampleStoreHatchEquivalenceFuzz pins the chunked-store
// representation bit-identical to the flat incremental one: the same
// computation-heavy schedule runs through a store-backed analyzer, a
// flat incremental analyzer (DisableSampleStore — the escape hatch),
// and a cold batch analyzer, and all three must agree exactly on every
// burst. The schedules skew toward Comp-only edges so the store path
// carries most elements, which the StoreAppends tally asserts.
func TestSampleStoreHatchEquivalenceFuzz(t *testing.T) {
	schedules := 60
	if testing.Short() {
		schedules = 15
	}
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			runStoreHatchSchedule(t, int64(9300+sched))
		})
	}
}

func runStoreHatchSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ranks := 2 + rng.Intn(3)

	opt := DefaultOptions()
	opt.Window = sim.Duration(1+rng.Intn(15)) * sim.Millisecond
	opt.Threshold = []float64{0.7, 0.85, 0.95}[rng.Intn(3)]
	opt.Parallelism = rng.Intn(3)
	if rng.Intn(4) == 0 {
		opt.Cluster.MinFragments = 2
	}

	g := stg.New()
	store := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	store.SetMetrics(met)
	flat := NewAnalyzer()
	defer func() {
		if met.StoreAppends.Load() == 0 {
			t.Errorf("store path never appended a sample (seed %d)", seed)
		}
	}()

	clock := make([]int64, ranks)
	edges := []trace.EdgeKey{{From: 1, To: 2}, {From: 2, To: 3}}

	bursts := 4 + rng.Intn(4)
	for b := 0; b < bursts; b++ {
		n := 5 + rng.Intn(60)
		batch := make([]trace.Fragment, 0, n)
		for i := 0; i < n; i++ {
			rank := rng.Intn(ranks)
			if rng.Intn(12) == 0 {
				clock[rank] += int64(rng.Intn(30)) * 1_000_000
			}
			el := int64(200_000 + rng.Intn(2_000_000))
			ek := edges[rng.Intn(len(edges))]
			f := trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: ek.From, State: ek.To,
				Start: clock[rank], Elapsed: el,
			}
			switch rng.Intn(4) {
			case 0: // zero-workload snippets
			case 1: // dense ties straddling the cut threshold
				f.Counters.TotIns = uint64(1 + rng.Intn(4))
			default:
				class := uint64(1 + rng.Intn(3))
				f.Counters.TotIns = class*100_000 + uint64(rng.Intn(7000))
			}
			clock[rank] += el
			batch = append(batch, f)
		}
		g.AddBatch(batch)

		fopt := opt
		fopt.DisableSampleStore = true
		bopt := opt
		bopt.DisableIncremental = true

		var got, hatch, want *Result
		if rng.Intn(2) == 0 {
			ws := int64(rng.Intn(30)) * 1_000_000
			we := ws + int64(5+rng.Intn(50))*1_000_000
			got = store.RunWindow(g, ranks, opt, ws, we)
			hatch = flat.RunWindow(g, ranks, fopt, ws, we)
			want = NewAnalyzer().RunWindow(g, ranks, bopt, ws, we)
		} else {
			got = store.Run(g, ranks, opt)
			hatch = flat.Run(g, ranks, fopt)
			want = NewAnalyzer().Run(g, ranks, bopt)
		}
		if !equalResults(got, want) {
			t.Fatalf("burst %d: store-backed result diverged from batch", b)
		}
		if !equalResults(hatch, want) {
			t.Fatalf("burst %d: DisableSampleStore result diverged from batch", b)
		}
	}
}

// TestSampleStoreHatchMidRun flips DisableSampleStore on an analyzer
// that already holds store-backed preps: the hatch must not serve the
// store representation (it forces a flat rebuild), and flipping back
// must re-enable the store. Results stay identical throughout.
func TestSampleStoreHatchMidRun(t *testing.T) {
	g := stg.New()
	a := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	a.SetMetrics(met)
	opt := DefaultOptions()
	opt.Window = 5 * sim.Millisecond

	rng := rand.New(rand.NewSource(7))
	clock := make([]int64, 3)
	feed := func() {
		var batch []trace.Fragment
		for i := 0; i < 40; i++ {
			rank := rng.Intn(3)
			el := int64(500_000 + rng.Intn(700_000))
			batch = append(batch, trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: clock[rank], Elapsed: el,
				Counters: trace.CountersView{TotIns: 300_000 + uint64(rng.Intn(4000))},
			})
			clock[rank] += el
		}
		g.AddBatch(batch)
	}
	check := func(o Options, stage string) {
		got := a.Run(g, 3, o)
		bopt := o
		bopt.DisableIncremental = true
		want := NewAnalyzer().Run(g, 3, bopt)
		if !equalResults(got, want) {
			t.Fatalf("%s: result diverged from batch", stage)
		}
	}

	feed()
	check(opt, "store warmup")
	if met.StoreAppends.Load() == 0 {
		t.Fatal("store path did not engage")
	}

	hatch := opt
	hatch.DisableSampleStore = true
	feed()
	check(hatch, "hatch flip")

	feed()
	check(opt, "store re-enable")
	// The flat prep stays warm across the re-enable (no forced rebuild
	// in that direction); one more growth step keeps everything exact.
	feed()
	check(opt, "post re-enable growth")
}

// TestSampleStoreCompaction drives an edge whose head clusters keep
// re-forming (each burst's smaller norms move the greedy cut) while a
// large stable cluster keeps the per-burst dirty ratio low, so dead
// samples accumulate until the store refuses to advance and compacts.
// The analyzer must stay exact throughout and must actually compact.
func TestSampleStoreCompaction(t *testing.T) {
	g := stg.New()
	a := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	a.SetMetrics(met)
	opt := DefaultOptions()
	opt.Window = 5 * sim.Millisecond
	opt.Cluster.MinFragments = 2

	var clock int64
	emitBatch := func(norms []uint64) {
		batch := make([]trace.Fragment, 0, len(norms))
		for _, nv := range norms {
			el := int64(1_000_000)
			batch = append(batch, trace.Fragment{
				Rank: 0, Kind: trace.Comp, From: 1, State: 2,
				Start: clock, Elapsed: el,
				Counters: trace.CountersView{TotIns: nv},
			})
			clock += el
		}
		g.AddBatch(batch)
	}

	// Stable ballast far above the churning head region.
	ballast := make([]uint64, 400)
	for i := range ballast {
		ballast[i] = 50_000_000
	}
	head := make([]uint64, 0, 24)
	for i := 0; i < 12; i++ {
		head = append(head, 2_000_000)
	}
	for i := 0; i < 12; i++ {
		head = append(head, 2_090_000)
	}
	emitBatch(append(append([]uint64{}, ballast...), head...))

	check := func(b int) {
		got := a.Run(g, 1, opt)
		bopt := opt
		bopt.DisableIncremental = true
		want := NewAnalyzer().Run(g, 1, bopt)
		if !equalResults(got, want) {
			t.Fatalf("burst %d: result diverged from batch", b)
		}
	}
	check(-1)

	// Each burst shifts the head's cluster boundary downward: the head
	// clusters re-form (retiring their stored samples) while the
	// ballast cluster is untouched prefix/tail.
	norm := uint64(1_950_000)
	for b := 0; b < 40 && met.StoreCompactions.Load() == 0; b++ {
		emitBatch([]uint64{norm, norm, norm, norm})
		norm -= 45_000
		check(b)
	}
	if met.StoreCompactions.Load() == 0 {
		t.Fatalf("store never compacted (appends=%d, rebuilds=%d, advances=%d)",
			met.StoreAppends.Load(), met.PrepRebuilds.Load(), met.PrepIncremental.Load())
	}
}

// TestSampleStoreAppendAllocs pins the store append hot path: chunk
// growth costs three allocations per 1024 samples, so a 4096-sample
// append run must stay within a small constant (no per-sample allocs).
func TestSampleStoreAppendAllocs(t *testing.T) {
	const n = 4096
	avg := testing.AllocsPerRun(10, func() {
		st := &sampleStore{}
		for i := 0; i < n; i++ {
			st.append(Sample{Rank: i & 3, Start: int64(i), Elapsed: 10}, float64(i), int32(i&7))
		}
	})
	// 4 chunks × 3 slices + the chunk-pointer slice growth ≈ 16; leave
	// headroom for allocator noise but forbid anything per-sample.
	if avg > 32 {
		t.Fatalf("sampleStore append allocated %.1f times per %d samples; want <= 32", avg, n)
	}
}
