package detect

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"vapro/internal/obs"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// equalResults is reflect.DeepEqual with one carve-out: heat-map cells
// are compared bitwise, because empty cells hold NaN and NaN != NaN
// would fail DeepEqual on otherwise identical results.
func equalResults(a, b *Result) bool {
	if len(a.Maps) != len(b.Maps) {
		return false
	}
	for c, ha := range a.Maps {
		hb, ok := b.Maps[c]
		if !ok || !equalHeatMaps(ha, hb) {
			return false
		}
	}
	ac, bc := *a, *b
	ac.Maps, bc.Maps = nil, nil
	return reflect.DeepEqual(&ac, &bc)
}

func equalHeatMaps(a, b *HeatMap) bool {
	if a.Class != b.Class || a.Ranks != b.Ranks || a.Windows != b.Windows ||
		a.Window != b.Window || a.Origin != b.Origin ||
		len(a.Cells) != len(b.Cells) || !reflect.DeepEqual(a.Stale, b.Stale) {
		return false
	}
	for i := range a.Cells {
		if math.Float64bits(a.Cells[i]) != math.Float64bits(b.Cells[i]) {
			return false
		}
	}
	return true
}

// TestAnalyzerIncrementalEquivalenceFuzz pins the whole incremental
// analysis plane — delta clustering plus the monotone normalization and
// span-index advances in prep_inc.go — against the batch path at the
// analyzer level: a persistent Analyzer re-run after every appended
// burst must return results bit-identical (reflect.DeepEqual, floats
// included) to a cold Analyzer forced onto the batch path over the same
// graph. Schedules mix out-of-order arrivals, rank gaps, dense ties,
// outage jumps (with matching Outages passed to both sides), window
// slicing, and occasional wholesale element rebases that bump the
// generation epoch and must force a prep rebuild.
func TestAnalyzerIncrementalEquivalenceFuzz(t *testing.T) {
	schedules := 160
	if testing.Short() {
		schedules = 30
	}
	// The fuzz is only meaningful if the delta path actually runs:
	// tally prep advances across every schedule and fail if the guard
	// conditions silently routed everything through rebuilds.
	var advances, rebuilds atomic.Uint64
	t.Cleanup(func() {
		if advances.Load() == 0 {
			t.Errorf("no prep advanced incrementally across %d schedules (rebuilds=%d): delta path never ran",
				schedules, rebuilds.Load())
		}
	})
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			runEquivSchedule(t, int64(7100+sched), &advances, &rebuilds)
		})
	}
}

func runEquivSchedule(t *testing.T, seed int64, advances, rebuilds *atomic.Uint64) {
	rng := rand.New(rand.NewSource(seed))
	ranks := 2 + rng.Intn(4)

	opt := DefaultOptions()
	opt.Window = sim.Duration(1+rng.Intn(20)) * sim.Millisecond
	opt.Threshold = []float64{0.7, 0.85, 0.95}[rng.Intn(3)]
	opt.MinRegionCells = 1 + rng.Intn(2)
	opt.Parallelism = rng.Intn(3) // 0 = GOMAXPROCS, 1 = sequential, 2
	if rng.Intn(4) == 0 {
		opt.Cluster.Threshold = 0.2
	}
	if rng.Intn(5) == 0 {
		opt.Cluster.MinFragments = 2
	}

	g := stg.New()
	inc := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	inc.SetMetrics(met)
	defer func() {
		advances.Add(met.PrepIncremental.Load())
		rebuilds.Add(met.PrepRebuilds.Load())
	}()

	// Per-rank virtual clocks; edges/vertices the schedule draws from.
	clock := make([]int64, ranks)
	edges := []trace.EdgeKey{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1}}
	vstates := []uint64{10, 11}

	bursts := 3 + rng.Intn(4)
	for b := 0; b < bursts; b++ {
		n := 1 + rng.Intn(50)
		batch := make([]trace.Fragment, 0, n)
		for i := 0; i < n; i++ {
			rank := rng.Intn(ranks)
			// Outage-style jumps and out-of-order starts.
			switch rng.Intn(10) {
			case 0:
				clock[rank] += int64(rng.Intn(40)) * 1_000_000 // gap
			case 1:
				clock[rank] -= int64(rng.Intn(3)) * 500_000 // out of order
				if clock[rank] < 0 {
					clock[rank] = 0
				}
			}
			el := int64(200_000 + rng.Intn(2_000_000))
			f := trace.Fragment{Rank: rank, Start: clock[rank], Elapsed: el}
			if rng.Intn(4) == 0 {
				// Vertex fragment (communication or IO).
				f.State = vstates[rng.Intn(len(vstates))]
				if rng.Intn(2) == 0 {
					f.Kind = trace.Comm
					f.Args = trace.Args{Op: trace.Op("Allreduce"), Bytes: 1 << uint(rng.Intn(4))}
				} else {
					f.Kind = trace.IO
					f.Args = trace.Args{Op: trace.Op("write"), Bytes: 4096}
				}
			} else {
				f.Kind = trace.Comp
				ek := edges[rng.Intn(len(edges))]
				f.From, f.State = ek.From, ek.To
				switch rng.Intn(3) {
				case 0: // zero-workload snippets
				case 1: // dense ties straddling the 5% threshold
					f.Counters.TotIns = uint64(1 + rng.Intn(4))
				default:
					class := uint64(1 + rng.Intn(3))
					f.Counters.TotIns = class*100_000 + uint64(rng.Intn(7000))
				}
			}
			clock[rank] += el
			batch = append(batch, f)
		}
		g.AddBatch(batch)

		// Occasionally rebase one edge wholesale (fresh backing array):
		// the epoch bumps and the incremental analyzer must fall back to
		// a full prep rebuild, not reuse positions from the old log.
		if rng.Intn(5) == 0 {
			if e := g.Edge(edges[rng.Intn(len(edges))]); e != nil && len(e.Fragments) > 0 {
				rebased := make([]trace.Fragment, len(e.Fragments))
				copy(rebased, e.Fragments)
				g.PutEdge(e.Key, rebased)
			}
		}

		// Some windows carry known outages; both sides see the same set.
		ropt := opt
		if rng.Intn(4) == 0 {
			ropt.Outages = []Outage{{
				Rank:  rng.Intn(ranks),
				Start: int64(rng.Intn(20)) * 1_000_000,
				End:   int64(30+rng.Intn(40)) * 1_000_000,
			}}
		}
		bopt := ropt
		bopt.DisableIncremental = true

		var got, want *Result
		if rng.Intn(2) == 0 {
			ws := int64(rng.Intn(30)) * 1_000_000
			we := ws + int64(10+rng.Intn(60))*1_000_000
			got = inc.RunWindow(g, ranks, ropt, ws, we)
			want = NewAnalyzer().RunWindow(g, ranks, bopt, ws, we)
		} else {
			got = inc.Run(g, ranks, ropt)
			want = NewAnalyzer().Run(g, ranks, bopt)
		}
		if !equalResults(got, want) {
			t.Fatalf("burst %d: incremental result diverged from batch path\nincremental: %+v\nbatch:       %+v",
				b, got, want)
		}
	}
}

// TestAnalyzerMixedMultiDEquivalenceFuzz mixes 1-D computation edges
// and multi-D single-class vertices (all-comm, all-IO) in the same
// windows and pins the persistent incremental analyzer bit-identical to
// a cold batch analyzer after every appended burst. Appends draw from a
// fixed per-element workload palette — the monitor's steady state — so
// the multi-D cluster advances must stay on the delta path: the test
// fails if any advance fell back for a structural multi-D reason, or if
// vertex preps never advanced incrementally at all.
func TestAnalyzerMixedMultiDEquivalenceFuzz(t *testing.T) {
	schedules := 60
	if testing.Short() {
		schedules = 12
	}
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			runMixedMultiDSchedule(t, int64(9400+sched))
		})
	}
}

func runMixedMultiDSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ranks := 2 + rng.Intn(4)

	opt := DefaultOptions()
	opt.Window = sim.Duration(2+rng.Intn(10)) * sim.Millisecond
	opt.Parallelism = rng.Intn(3)
	if rng.Intn(3) == 0 {
		opt.Cluster.UseExtraMetrics = true // 2-D computation vectors
	}

	// Fixed workload palettes: comp edges vary TotIns inside the 5%
	// band; vertices repeat exact (op, bytes, peer) argument vectors so
	// steady-state appends are pure absorptions on the multi-D path.
	edges := []trace.EdgeKey{{From: 1, To: 2}, {From: 2, To: 3}}
	type vclass struct {
		kind trace.Kind
		args trace.Args
	}
	vpal := map[uint64][]vclass{
		20: {
			{trace.Comm, trace.Args{Op: trace.Op("Allreduce"), Bytes: 1 << 12, Peer: -1}},
			{trace.Comm, trace.Args{Op: trace.Op("Send"), Bytes: 1 << 16, Peer: 1, Tag: 7}},
			{trace.Comm, trace.Args{Op: trace.Op("Recv"), Bytes: 256, Peer: 0, Tag: 7}},
		},
		21: {
			{trace.IO, trace.Args{Op: trace.Op("write"), Bytes: 1 << 20, FD: 3}},
			{trace.IO, trace.Args{Op: trace.Op("read"), Bytes: 4096, FD: 4}},
		},
	}

	g := stg.New()
	inc := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	inc.SetMetrics(met)

	clock := make([]int64, ranks)
	bursts := 4 + rng.Intn(4)
	for b := 0; b < bursts; b++ {
		n := 8 + rng.Intn(40)
		batch := make([]trace.Fragment, 0, n)
		for i := 0; i < n; i++ {
			rank := rng.Intn(ranks)
			el := int64(200_000 + rng.Intn(1_500_000))
			f := trace.Fragment{Rank: rank, Start: clock[rank], Elapsed: el}
			if rng.Intn(3) == 0 {
				state := []uint64{20, 21}[rng.Intn(2)]
				c := vpal[state][rng.Intn(len(vpal[state]))]
				f.State, f.Kind, f.Args = state, c.kind, c.args
			} else {
				ek := edges[rng.Intn(len(edges))]
				f.Kind, f.From, f.State = trace.Comp, ek.From, ek.To
				// Exact repeats: a steady state's fixed workloads re-emit
				// identical counter vectors, so no append can undercut a
				// resident seed (an in-band new minimum would legitimately
				// restructure the partition and force a fallback).
				f.Counters.TotIns = uint64(1+rng.Intn(3)) * 400_000
				f.Counters.LoadStores = f.Counters.TotIns / 3
			}
			clock[rank] += el
			batch = append(batch, f)
		}
		g.AddBatch(batch)

		bopt := opt
		bopt.DisableIncremental = true
		var got, want *Result
		if rng.Intn(2) == 0 {
			ws := int64(rng.Intn(20)) * 1_000_000
			we := ws + int64(5+rng.Intn(40))*1_000_000
			got = inc.RunWindow(g, ranks, opt, ws, we)
			want = NewAnalyzer().RunWindow(g, ranks, bopt, ws, we)
		} else {
			got = inc.Run(g, ranks, opt)
			want = NewAnalyzer().Run(g, ranks, bopt)
		}
		if !equalResults(got, want) {
			t.Fatalf("burst %d: mixed-element incremental result diverged from batch", b)
		}
	}
	if met.PrepIncremental.Load() == 0 {
		t.Fatalf("no prep advanced incrementally across %d bursts", bursts)
	}
	multiD, _, _ := inc.Cache().IncFallbackReasons()
	if multiD != 0 {
		t.Fatalf("steady-state palette appends hit %d structural multi-D fallbacks", multiD)
	}
	if hits, _ := inc.Cache().IncStats(); hits == 0 {
		t.Fatalf("cluster cache never advanced incrementally")
	}
}

// TestMonitorIncrementalIdentity drives the same fragment stream
// through two monitors — one on the incremental plane, one forced onto
// the batch path — and requires the emitted event streams to match
// exactly. This is the end-to-end form of the equivalence guarantee:
// online alerting behavior may not depend on which analysis path ran.
func TestMonitorIncrementalIdentity(t *testing.T) {
	run := func(disable bool) []Event {
		a := NewAnalyzer()
		opt := DefaultOptions()
		opt.Window = 5 * sim.Millisecond
		opt.DisableIncremental = disable
		g := stg.New()
		rng := rand.New(rand.NewSource(42))
		var events []Event
		clock := make([]int64, 4)
		for b := 0; b < 12; b++ {
			var batch []trace.Fragment
			for i := 0; i < 40; i++ {
				rank := rng.Intn(4)
				el := int64(900_000 + rng.Intn(200_000))
				if rank == 2 && b >= 6 {
					el *= 2 // rank 2 degrades mid-run
				}
				batch = append(batch, trace.Fragment{
					Rank: rank, Kind: trace.Comp, From: 1, State: 2,
					Start: clock[rank], Elapsed: el,
					Counters: trace.CountersView{TotIns: 500_000 + uint64(rng.Intn(5000))},
				})
				clock[rank] += el
			}
			g.AddBatch(batch)
			res := a.RunWindow(g, 4, opt, int64(b)*10_000_000, int64(b+1)*10_000_000)
			for _, reg := range res.Regions {
				events = append(events, Event{Regions: []Region{reg}})
			}
		}
		return events
	}
	if inc, batch := run(false), run(true); !reflect.DeepEqual(inc, batch) {
		t.Fatalf("event streams diverge: incremental %d events, batch %d events", len(inc), len(batch))
	}
}

// Event is a minimal event record for the identity test above (the
// collector's Monitor has its own richer Event type; this test stays
// inside the detect package to keep the dependency direction clean).
type Event struct{ Regions []Region }
