package detect

import (
	"math"
	"sort"

	"vapro/internal/cluster"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Chunked append-only sample storage: the O(new-data) replacement for
// the flat per-class samples arrays.
//
// The flat representation pays O(resident) per advance twice over: the
// canonical samples slice is memcpy-rebuilt (emission is cluster-major,
// so new members of a grown cluster land in the MIDDLE of the array),
// and both span indexes are extended by full sorted merges. The store
// removes both costs with one structural observation about the 1-D
// fast path (all-Comp fragments, no extra metrics): clusters are
// contiguous runs of the stable (norm, fragment-index) sorted order,
// and equal norms never split across clusters, so the canonical
// cluster-major emission order IS the global (norm, fragment-index)
// lexicographic order restricted to emitted clusters. Storage can
// therefore be append-ordered — O(batch) per advance — and the
// canonical order recovered at materialization time by sorting the
// (usually window-sized) selection by that key.
//
// Mutable per-sample fields never block appending because they are
// derived lazily at materialization from the owning cluster's current
// state: Perf from the monotone best, Covered from the monotone
// per-rank counts, and the cluster index through a stable cluster id
// recorded at append time. A rebuilt cluster retires its id, which
// makes its old samples dead; dead positions are skipped at selection
// time and reclaimed by a full compaction rebuild once they exceed a
// quarter of the store.
//
// The span indexes become segmented (one sorted segment appended per
// advance, geometrically merged so lookups stay O(log² n) and appends
// amortize to O(log n) — the classic logarithmic method), because a
// flat sorted array can't absorb O(batch) inserts in place.

const (
	storeChunkShift = 10
	storeChunkSize  = 1 << storeChunkShift
	storeChunkMask  = storeChunkSize - 1
)

// storeChunk holds up to storeChunkSize samples plus the per-sample
// clustering key material (norm for canonical ordering, stable cluster
// id for lazy derivation and liveness).
type storeChunk struct {
	samples []Sample
	norm    []float64
	cid     []int32
}

// sampleStore is the chunked append log. Positions are dense int32s:
// chunk = pos>>storeChunkShift, offset = pos&storeChunkMask. Positions
// are never reused; samples die when their cluster id is retired.
type sampleStore struct {
	chunks []*storeChunk
	n      int32 // appended, including dead
	dead   int32 // retired by cluster rebuilds
}

// append stores one sample and returns its position. Amortized
// allocation-free: three slice allocations per 1024 appends.
func (st *sampleStore) append(s Sample, norm float64, cid int32) int32 {
	pos := st.n
	ci := int(pos >> storeChunkShift)
	if ci == len(st.chunks) {
		st.chunks = append(st.chunks, &storeChunk{
			samples: make([]Sample, 0, storeChunkSize),
			norm:    make([]float64, 0, storeChunkSize),
			cid:     make([]int32, 0, storeChunkSize),
		})
	}
	ch := st.chunks[ci]
	ch.samples = append(ch.samples, s)
	ch.norm = append(ch.norm, norm)
	ch.cid = append(ch.cid, cid)
	st.n++
	return pos
}

func (st *sampleStore) chunkOf(pos int32) (*storeChunk, int32) {
	return st.chunks[pos>>storeChunkShift], pos & storeChunkMask
}

// segSpans is one sorted segment of a segmented span index: entries
// ordered by (start, position), positions ascending within equal
// starts because appends always carry larger positions than everything
// already indexed.
type segSpans struct {
	pos        []int32
	starts     []int64
	elapsed    []int64
	maxElapsed int64
}

// segIndex is the segmented span index: one segment appended per
// advance, geometrically merged so the segment count stays O(log n).
type segIndex struct {
	segs []segSpans
}

// add appends one pre-sorted segment and re-establishes the geometric
// invariant: a segment at least half the size of its predecessor is
// merged into it (repeatedly), which amortizes total merge work to
// O(n log n) over the store's lifetime.
func (ix *segIndex) add(seg segSpans) {
	if len(seg.pos) == 0 {
		return
	}
	ix.segs = append(ix.segs, seg)
	for len(ix.segs) >= 2 {
		a := &ix.segs[len(ix.segs)-2]
		b := &ix.segs[len(ix.segs)-1]
		if len(b.pos)*2 < len(a.pos) {
			break
		}
		ix.segs[len(ix.segs)-2] = mergeSegs(*a, *b)
		ix.segs = ix.segs[:len(ix.segs)-1]
	}
}

// mergeSegs merges two sorted segments. a predates b, so on equal
// starts a's entries keep the earlier slots (their positions are
// smaller), preserving the (start, position) order.
func mergeSegs(a, b segSpans) segSpans {
	n := len(a.pos) + len(b.pos)
	out := segSpans{
		pos:        make([]int32, 0, n),
		starts:     make([]int64, 0, n),
		elapsed:    make([]int64, 0, n),
		maxElapsed: a.maxElapsed,
	}
	if b.maxElapsed > out.maxElapsed {
		out.maxElapsed = b.maxElapsed
	}
	i, j := 0, 0
	for i < len(a.pos) || j < len(b.pos) {
		if j >= len(b.pos) || (i < len(a.pos) && a.starts[i] <= b.starts[j]) {
			out.pos = append(out.pos, a.pos[i])
			out.starts = append(out.starts, a.starts[i])
			out.elapsed = append(out.elapsed, a.elapsed[i])
			i++
		} else {
			out.pos = append(out.pos, b.pos[j])
			out.starts = append(out.starts, b.starts[j])
			out.elapsed = append(out.elapsed, b.elapsed[j])
			j++
		}
	}
	return out
}

// candidates returns the [lo, hi) band of one segment that can overlap
// [start, end) — same saturating threshold as spanIndex.candidates.
func (s *segSpans) candidates(start, end int64) (lo, hi int) {
	thresh := start - s.maxElapsed
	if s.maxElapsed > 0 && thresh > start {
		thresh = math.MinInt64
	}
	lo = sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > thresh })
	hi = sort.Search(len(s.starts), func(i int) bool { return s.starts[i] >= end })
	return lo, hi
}

// sumOverlapping totals elapsed over spans overlapping [start, end)
// across every segment (int64 sums are order-free, so the segment
// partition is invisible).
func (ix *segIndex) sumOverlapping(start, end int64) int64 {
	var sum int64
	for si := range ix.segs {
		s := &ix.segs[si]
		lo, hi := s.candidates(start, end)
		for i := lo; i < hi; i++ {
			if s.starts[i]+s.elapsed[i] > start {
				sum += s.elapsed[i]
			}
		}
	}
	return sum
}

// sortSeg sorts one segment by (start, position) and fills maxElapsed.
func sortSeg(s *segSpans) {
	n := len(s.pos)
	if n == 0 {
		return
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if s.starts[ia] != s.starts[ib] {
			return s.starts[ia] < s.starts[ib]
		}
		return s.pos[ia] < s.pos[ib]
	})
	pos := make([]int32, n)
	starts := make([]int64, n)
	elapsed := make([]int64, n)
	for i, o := range idx {
		pos[i] = s.pos[o]
		starts[i] = s.starts[o]
		elapsed[i] = s.elapsed[o]
		if s.elapsed[o] > s.maxElapsed {
			s.maxElapsed = s.elapsed[o]
		}
	}
	s.pos, s.starts, s.elapsed = pos, starts, elapsed
}

// storeMode reports whether the prep is backed by the chunked store.
func (p *prepElem) storeMode() bool { return p.store != nil }

// storeEligible reports whether an element can take the store path:
// the 1-D clustering fast path (all computation fragments, no extra
// metrics), which is what guarantees the canonical-order-by-(norm,
// index) property the store relies on.
func storeEligible(frags []trace.Fragment, opt Options) bool {
	if opt.DisableIncremental || opt.DisableSampleStore || opt.Cluster.UseExtraMetrics || len(frags) == 0 {
		return false
	}
	for i := range frags {
		if frags[i].Kind != trace.Comp {
			return false
		}
	}
	return true
}

// buildPrepStore is buildPrep for the store representation: the same
// per-cluster normalization walk, but emitting into the chunked store
// with per-cluster append state (per-rank elapsed sums for coverage
// crossings, stored-sample counts for validation) and segmented span
// indexes.
func buildPrepStore(frags []trace.Fragment, cl cluster.Result, ref ClusterRef, opt Options, gen stg.Gen) *prepElem {
	p := &prepElem{gen: gen, nfrags: len(frags), copt: opt.Cluster, ref: ref,
		singleClass: true, class: Computation, store: &sampleStore{}}
	minFrag := opt.Cluster.MinFragments
	if minFrag <= 0 {
		minFrag = 5
	}
	p.minFrag = minFrag
	nc := len(cl.Clusters)
	p.cstate = make([]clustState, 0, nc)
	p.ids = make([]int32, nc)
	p.slotOf = make([]int32, nc)
	for ci := range p.ids {
		p.ids[ci] = int32(ci)
		p.slotOf[ci] = int32(ci)
	}
	p.nextID = int32(nc)
	class := p.class

	seg := segSpans{}
	for ci := range cl.Clusters {
		c := &cl.Clusters[ci]
		if c.Fixed {
			p.fixedClusters++
		} else {
			p.smallClusters++
			p.cstate = append(p.cstate, clustState{})
			continue
		}
		st := clustState{perRank: make(map[int]int), perRankNS: make(map[int]int64)}
		best := int64(math.MaxInt64)
		for _, m := range c.Members {
			f := &frags[m]
			st.perRank[f.Rank]++
			st.perRankNS[f.Rank] += f.Elapsed
			if e := f.Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if best == math.MaxInt64 {
			p.cstate = append(p.cstate, st)
			continue
		}
		st.emitted, st.best = true, best
		id := p.ids[ci]
		for _, m := range c.Members {
			f := &frags[m]
			if st.perRank[f.Rank] >= minFrag {
				st.fixedNS += f.Elapsed
			}
			// Perf/Covered/ClusterRef.Cluster are derived lazily at
			// materialization; store the invariant fields only.
			pos := p.store.append(Sample{
				Rank:      f.Rank,
				Start:     f.Start,
				Elapsed:   f.Elapsed,
				FragIndex: m,
			}, float64(f.Counters.TotIns), id)
			seg.pos = append(seg.pos, pos)
			seg.starts = append(seg.starts, f.Start)
			seg.elapsed = append(seg.elapsed, f.Elapsed)
		}
		st.nStored = int32(len(c.Members))
		p.fixedAll[class] += st.fixedNS
		p.cstate = append(p.cstate, st)
	}
	p.liveCount = int(p.store.n)

	// The emission walk is cluster-major, not time-sorted: sort the
	// first segment by (start, position).
	sortSeg(&seg)
	p.sampleSeg.add(seg)

	fseg := segSpans{pos: make([]int32, 0, len(frags)), starts: make([]int64, 0, len(frags)), elapsed: make([]int64, 0, len(frags))}
	for i := range frags {
		f := &frags[i]
		fseg.pos = append(fseg.pos, int32(i))
		fseg.starts = append(fseg.starts, f.Start)
		fseg.elapsed = append(fseg.elapsed, f.Elapsed)
		p.totalAll[class] += f.Elapsed
	}
	sortSeg(&fseg)
	p.fragSeg.add(fseg)
	return p
}

// advanceStore is advance() for the store representation: O(batch).
// Prefix and tail clusters keep their state (only the tail's slot
// mapping shifts), grown emitted clusters append just their added
// members, rebuilt clusters retire their old id (their old samples
// die in place) and re-emit under a fresh one. Nothing already stored
// is touched; the lazily-derived fields absorb best and coverage
// movement. When retiring would push dead samples past a quarter of
// the store it refuses and flags a compaction instead, leaving the
// prep untouched for the rebuild.
func (p *prepElem) advanceStore(frags []trace.Fragment, cl cluster.Result, d cluster.Delta, opt Options, gen stg.Gen) bool {
	if d.Full || p.copt != opt.Cluster || d.From != p.gen {
		return false
	}
	oldN := p.nfrags
	nn := len(frags)
	if nn <= oldN || len(cl.Assign) != nn {
		return false
	}
	for i := oldN; i < nn; i++ {
		if frags[i].Kind != trace.Comp {
			return false
		}
	}
	minFrag := p.minFrag
	oldNC := len(p.cstate)
	newNC := len(cl.Clusters)
	if len(p.ids) != oldNC ||
		d.Prefix < 0 || d.Prefix > d.TailNew || d.TailNew > newNC ||
		d.Prefix > d.TailOld || d.TailOld > oldNC ||
		d.TailNew-d.Prefix != len(d.Dirty) ||
		newNC-d.TailNew != oldNC-d.TailOld {
		return false
	}
	// Validate the whole delta and count retirements before mutating any
	// shared state (the per-rank maps are updated in place below, and a
	// compaction-triggering advance must leave the prep untouched).
	var deaths int32
	claimed := make(map[int]bool, len(d.Dirty))
	for di, dr := range d.Dirty {
		if dr.OldIndex < 0 {
			continue
		}
		if dr.OldIndex < d.Prefix || dr.OldIndex >= d.TailOld || claimed[dr.OldIndex] {
			return false
		}
		claimed[dr.OldIndex] = true
		cc := &cl.Clusters[d.Prefix+di]
		os := &p.cstate[dr.OldIndex]
		if os.emitted {
			if int(os.nStored) != len(cc.Members)-len(dr.AddedPos) {
				return false
			}
			if !cc.Fixed {
				// Defensive: growth can't un-fix a cluster, but if it
				// ever did the fresh walk below retires the emission.
				deaths += os.nStored
			}
		} else if os.nStored != 0 {
			return false
		}
	}
	// Unclaimed clusters in the dirty region were rebuilt wholesale:
	// everything they stored dies.
	for oi := d.Prefix; oi < d.TailOld; oi++ {
		if !claimed[oi] {
			deaths += p.cstate[oi].nStored
		}
	}
	st := p.store
	if 4*(st.dead+deaths) > st.n {
		p.storeCompactPending = true
		return false
	}

	newIDs := make([]int32, newNC)
	newState := make([]clustState, newNC)
	copy(newIDs, p.ids[:d.Prefix])
	copy(newState, p.cstate[:d.Prefix])
	shiftOld := d.TailOld - d.TailNew
	for ci := d.TailNew; ci < newNC; ci++ {
		newIDs[ci] = p.ids[ci+shiftOld]
		newState[ci] = p.cstate[ci+shiftOld]
	}

	class := p.class
	seg := segSpans{}
	emit := func(f *trace.Fragment, m int, id int32) {
		pos := st.append(Sample{
			Rank:      f.Rank,
			Start:     f.Start,
			Elapsed:   f.Elapsed,
			FragIndex: m,
		}, float64(f.Counters.TotIns), id)
		seg.pos = append(seg.pos, pos)
		seg.starts = append(seg.starts, f.Start)
		seg.elapsed = append(seg.elapsed, f.Elapsed)
	}

	for di, dr := range d.Dirty {
		ci := d.Prefix + di
		cc := &cl.Clusters[ci]
		if dr.OldIndex >= 0 && p.cstate[dr.OldIndex].emitted && cc.Fixed {
			// Grown emitted cluster: append only the added members.
			cst := p.cstate[dr.OldIndex] // shares (and intentionally updates) the maps
			id := p.ids[dr.OldIndex]
			for _, ap := range dr.AddedPos {
				m := cc.Members[ap]
				f := &frags[m]
				n := cst.perRank[f.Rank] + 1
				cst.perRank[f.Rank] = n
				if n == minFrag {
					// This rank just crossed coverage: everything it
					// already contributed flips covered at once.
					cst.fixedNS += cst.perRankNS[f.Rank]
				}
				if n >= minFrag {
					cst.fixedNS += f.Elapsed
				}
				cst.perRankNS[f.Rank] += f.Elapsed
				if e := f.Elapsed; e > 0 && e < cst.best {
					cst.best = e
				}
				emit(f, m, id)
				cst.nStored++
			}
			newIDs[ci] = id
			newState[ci] = cst
			continue
		}
		// Rebuilt composition, a cluster newly grown into emission, or a
		// still-small cluster: fresh walk under a fresh id (the old id —
		// if any — is simply not carried forward, which retires its
		// stored samples).
		id := p.nextID
		p.nextID++
		newIDs[ci] = id
		if !cc.Fixed {
			newState[ci] = clustState{}
			continue
		}
		cst := clustState{perRank: make(map[int]int, 8), perRankNS: make(map[int]int64, 8)}
		best := int64(math.MaxInt64)
		for _, m := range cc.Members {
			f := &frags[m]
			cst.perRank[f.Rank]++
			cst.perRankNS[f.Rank] += f.Elapsed
			if e := f.Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if best == math.MaxInt64 {
			newState[ci] = cst
			continue
		}
		cst.emitted, cst.best = true, best
		for _, m := range cc.Members {
			f := &frags[m]
			if cst.perRank[f.Rank] >= minFrag {
				cst.fixedNS += f.Elapsed
			}
			emit(f, m, id)
		}
		cst.nStored = int32(len(cc.Members))
		newState[ci] = cst
	}

	// Commit: retire dead ids in the slot map, install the new ones.
	for _, id := range p.ids {
		p.slotOf[id] = -1
	}
	for int(p.nextID) > len(p.slotOf) {
		p.slotOf = append(p.slotOf, -1)
	}
	for ci, id := range newIDs {
		p.slotOf[id] = int32(ci)
	}
	p.ids = newIDs
	p.cstate = newState
	st.dead += deaths

	// Scalar aggregates from the committed state.
	p.fixedAll[class] = 0
	p.fixedClusters, p.smallClusters = 0, 0
	for ci := range cl.Clusters {
		p.fixedAll[class] += newState[ci].fixedNS
		if cl.Clusters[ci].Fixed {
			p.fixedClusters++
		} else {
			p.smallClusters++
		}
	}
	for i := oldN; i < nn; i++ {
		p.totalAll[class] += frags[i].Elapsed
	}

	// Whole-order cache: an append-only advance (no retirements) just
	// splices the new positions into the cached canonical order; any
	// deaths invalidate it for a lazy rebuild.
	if deaths != 0 {
		p.wholeOrder = nil
	} else if p.wholeOrder != nil && len(seg.pos) > 0 {
		p.mergeWholeOrder(seg.pos)
	}

	sortSeg(&seg)
	p.sampleSeg.add(seg)
	fseg := segSpans{pos: make([]int32, 0, nn-oldN), starts: make([]int64, 0, nn-oldN), elapsed: make([]int64, 0, nn-oldN)}
	for i := oldN; i < nn; i++ {
		f := &frags[i]
		fseg.pos = append(fseg.pos, int32(i))
		fseg.starts = append(fseg.starts, f.Start)
		fseg.elapsed = append(fseg.elapsed, f.Elapsed)
	}
	sortSeg(&fseg)
	p.fragSeg.add(fseg)

	p.liveCount = int(st.n - st.dead)
	p.gen = gen
	p.nfrags = nn
	return true
}

// windowStore fills the element's window contribution from the store:
// segment-banded candidate scan, liveness through the slot map, lazy
// covered lookups for the fixed sum, canonical (norm, index) ordering
// of the selection.
func (p *prepElem) windowStore(start, end int64, out *elemOut) {
	out.prep = p
	out.fixedClusters = p.fixedClusters
	out.smallClusters = p.smallClusters
	c := p.class
	if start == math.MinInt64 && end == math.MaxInt64 {
		for cc := 0; cc < numClasses; cc++ {
			out.whole[cc] = true
		}
		out.fixed = p.fixedAll
		out.total = p.totalAll
		return
	}
	sel, fixed := p.selectStore(start, end)
	if len(sel) == p.liveCount {
		out.whole[c] = true
		out.fixed[c] = p.fixedAll[c]
	} else {
		out.sel[c] = sel
		out.fixed[c] = fixed
	}
	out.total[c] = p.fragSeg.sumOverlapping(start, end)
}

// selectStore returns the live store positions overlapping [start,
// end) in canonical (norm, fragment-index) order, plus the covered
// elapsed sum over the selection.
func (p *prepElem) selectStore(start, end int64) (sel []int32, fixed int64) {
	st := p.store
	for si := range p.sampleSeg.segs {
		s := &p.sampleSeg.segs[si]
		lo, hi := s.candidates(start, end)
		for i := lo; i < hi; i++ {
			if s.starts[i]+s.elapsed[i] <= start {
				continue
			}
			pos := s.pos[i]
			ch, off := st.chunkOf(pos)
			slot := p.slotOf[ch.cid[off]]
			if slot < 0 {
				continue // cluster rebuilt; sample retired
			}
			sel = append(sel, pos)
			cst := &p.cstate[slot]
			if cst.perRank[ch.samples[off].Rank] >= p.minFrag {
				fixed += s.elapsed[i]
			}
		}
	}
	p.sortCanonical(sel)
	return sel, fixed
}

// sortCanonical orders store positions by (norm, fragment index) — the
// canonical emission order (see the file comment for why those
// coincide on the 1-D path).
func (p *prepElem) sortCanonical(sel []int32) {
	st := p.store
	sort.Slice(sel, func(a, b int) bool {
		ca, oa := st.chunkOf(sel[a])
		cb, ob := st.chunkOf(sel[b])
		if ca.norm[oa] != cb.norm[ob] {
			return ca.norm[oa] < cb.norm[ob]
		}
		return ca.samples[oa].FragIndex < cb.samples[ob].FragIndex
	})
}

// mergeWholeOrder splices freshly appended store positions into the
// cached canonical whole-population order without re-sorting it: the
// batch is cloned and sorted canonically (O(k log k)), each insertion
// point among the existing order is binary-searched (O(k log n)), and
// the shifted suffixes move once each in a single backward pass of
// chunked copies. Keys are unique — fragment indexes never repeat
// among live samples — so the insertion points are unambiguous.
func (p *prepElem) mergeWholeOrder(added []int32) {
	n := len(p.wholeOrder)
	batch := append([]int32(nil), added...)
	p.sortCanonical(batch)
	k := len(batch)
	st := p.store
	key := func(pos int32) (float64, int) {
		ch, off := st.chunkOf(pos)
		return ch.norm[off], ch.samples[off].FragIndex
	}
	ipos := make([]int, k)
	order := p.wholeOrder
	for j, np := range batch {
		bn, bf := key(np)
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			en, ef := key(order[mid])
			if en < bn || (en == bn && ef < bf) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ipos[j] = lo
	}
	order = append(order, batch...)
	moveHi := n
	for j := k - 1; j >= 0; j-- {
		copy(order[ipos[j]+j+1:moveHi+j+1], order[ipos[j]:moveHi])
		order[ipos[j]+j] = batch[j]
		moveHi = ipos[j]
	}
	p.wholeOrder = order
}

// appendStore materializes the given positions (already canonical)
// into buf, deriving the mutable fields from current cluster state:
// Perf against the cluster's current fastest member, Covered from the
// current per-rank counts, ClusterRef through the slot map.
func (p *prepElem) appendStore(buf []Sample, positions []int32) []Sample {
	st := p.store
	for _, pos := range positions {
		ch, off := st.chunkOf(pos)
		s := ch.samples[off]
		slot := p.slotOf[ch.cid[off]]
		cst := &p.cstate[slot]
		s.Perf = 1.0
		if s.Elapsed > 0 {
			s.Perf = float64(cst.best) / float64(s.Elapsed)
		}
		s.Covered = cst.perRank[s.Rank] >= p.minFrag
		ref := p.ref
		ref.Cluster = int(slot)
		s.ClusterRef = ref
		buf = append(buf, s)
	}
	return buf
}

// appendAllStore materializes every live sample in canonical order,
// through a lazily rebuilt whole-order cache (invalidated per advance,
// rebuilt on demand from the single-threaded merge stage).
func (p *prepElem) appendAllStore(buf []Sample) []Sample {
	if p.wholeOrder == nil {
		order := make([]int32, 0, p.liveCount)
		st := p.store
		for pos := int32(0); pos < st.n; pos++ {
			ch, off := st.chunkOf(pos)
			if p.slotOf[ch.cid[off]] >= 0 {
				order = append(order, pos)
			}
		}
		p.sortCanonical(order)
		p.wholeOrder = order
	}
	return p.appendStore(buf, p.wholeOrder)
}
