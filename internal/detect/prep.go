package detect

import (
	"math"
	"slices"
	"sort"
	"time"

	"vapro/internal/cluster"
	"vapro/internal/trace"
)

// prepElem is the window-independent part of one STG element's analysis,
// memoized per element version alongside the clustering cache. The
// normalized samples of an element depend only on its full fragment
// population (clustering and the per-cluster fastest member never look
// at the analysis window — the window just filters which samples feed
// the heat map), so they are computed once per element version and every
// overlapped window slices them by binary search instead of re-walking
// every cluster member. Sample emission order is preserved exactly
// (cluster-major, member-index order), which keeps windowed results
// bit-identical to the direct computation.
type prepElem struct {
	version uint64
	nfrags  int
	copt    cluster.Options

	fixedClusters int
	smallClusters int

	// samples holds the full-population sample lists per class, in
	// canonical emission order. Shared read-only with full-range runs.
	samples [numClasses][]Sample
	// sampleIdx slices samples by time window.
	sampleIdx [numClasses]spanIndex
	// fixedAll is the covered (fixed-workload) time per class over the
	// whole population — the full-range fast path for elemOut.fixed.
	fixedAll [numClasses]int64
	// fragIdx indexes every fragment's span per class for the coverage
	// denominator (elemOut.total sums all fragments, not just cluster
	// members).
	fragIdx  [numClasses]spanIndex
	totalAll [numClasses]int64
}

// spanIndex answers "which spans overlap [start, end)" over a fixed set
// of (start, elapsed) spans in O(log n + candidates): starts are sorted,
// and a span overlaps only if its start lies in (start-maxElapsed, end).
type spanIndex struct {
	order      []int32 // original positions, sorted by start
	starts     []int64 // starts[i] = start of span order[i] (sorted)
	elapsed    []int64 // elapsed[i] = elapsed of span order[i]
	covered    []bool  // optional: covered flag of span order[i]
	maxElapsed int64
}

func buildSpanIndex(starts, elapsed []int64, covered []bool) spanIndex {
	n := len(starts)
	ix := spanIndex{
		order:   make([]int32, n),
		starts:  make([]int64, n),
		elapsed: make([]int64, n),
	}
	for i := range ix.order {
		ix.order[i] = int32(i)
	}
	sort.Slice(ix.order, func(a, b int) bool {
		sa, sb := starts[ix.order[a]], starts[ix.order[b]]
		if sa != sb {
			return sa < sb
		}
		return ix.order[a] < ix.order[b]
	})
	for i, o := range ix.order {
		ix.starts[i] = starts[o]
		ix.elapsed[i] = elapsed[o]
		if e := elapsed[o]; e > ix.maxElapsed {
			ix.maxElapsed = e
		}
	}
	if covered != nil {
		ix.covered = make([]bool, n)
		for i, o := range ix.order {
			ix.covered[i] = covered[o]
		}
	}
	return ix
}

// candidates returns the [lo, hi) range of sorted positions whose spans
// can overlap [start, end); each candidate still needs the exact
// start+elapsed > start check.
func (ix *spanIndex) candidates(start, end int64) (lo, hi int) {
	// A span [s, s+e) overlaps iff s < end && s+e > start, which needs
	// s > start-maxElapsed (saturating: start near MinInt64 would wrap).
	thresh := start - ix.maxElapsed
	if ix.maxElapsed > 0 && thresh > start {
		thresh = math.MinInt64
	}
	lo = sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > thresh })
	hi = sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= end })
	return lo, hi
}

// sumOverlapping totals elapsed over spans overlapping [start, end).
func (ix *spanIndex) sumOverlapping(start, end int64) int64 {
	lo, hi := ix.candidates(start, end)
	var sum int64
	for i := lo; i < hi; i++ {
		if ix.starts[i]+ix.elapsed[i] > start {
			sum += ix.elapsed[i]
		}
	}
	return sum
}

// selectOverlapping returns the original positions of spans overlapping
// [start, end) in original (canonical) order, plus the covered elapsed
// sum over the selection. The positions are distinct, so sorting them
// ascending reproduces the canonical emission order exactly regardless
// of sort algorithm.
func (ix *spanIndex) selectOverlapping(start, end int64) (sel []int32, fixed int64) {
	lo, hi := ix.candidates(start, end)
	if lo >= hi {
		return nil, 0
	}
	sel = make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if ix.starts[i]+ix.elapsed[i] > start {
			sel = append(sel, ix.order[i])
			if ix.covered != nil && ix.covered[i] {
				fixed += ix.elapsed[i]
			}
		}
	}
	slices.Sort(sel)
	return sel, fixed
}

// prepFor returns the memoized window-independent analysis of one
// element, rebuilding it when the element's version moved. The
// clustering cache is consulted unconditionally so its hit/miss
// accounting keeps meaning "analysis passes that reused a clustering",
// warm prep or not.
func (a *Analyzer) prepFor(key cluster.Key, version uint64, frags []trace.Fragment, opt Options, ref ClusterRef) *prepElem {
	met := a.met
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	cl := a.cache.Run(key, version, frags, opt.Cluster)
	if met != nil {
		a.clock.clusterNS.Add(since(t0))
	}
	a.mu.Lock()
	p := a.preps[key]
	a.mu.Unlock()
	if p != nil && p.version == version && p.nfrags == len(frags) && p.copt == opt.Cluster {
		return p
	}
	if met != nil {
		t0 = time.Now()
	}
	p = buildPrep(frags, cl, ref, opt, version)
	if met != nil {
		a.clock.normNS.Add(since(t0))
	}
	a.mu.Lock()
	a.preps[key] = p
	a.mu.Unlock()
	return p
}

// buildPrep runs the full-population normalization once (the same walk
// normalizeElement does with an unbounded window) and indexes the
// outputs for window slicing.
func buildPrep(frags []trace.Fragment, cl cluster.Result, ref ClusterRef, opt Options, version uint64) *prepElem {
	p := &prepElem{version: version, nfrags: len(frags), copt: opt.Cluster}
	minFrag := opt.Cluster.MinFragments
	if minFrag <= 0 {
		minFrag = 5
	}
	for ci := range cl.Clusters {
		c := &cl.Clusters[ci]
		if c.Fixed {
			p.fixedClusters++
		} else {
			p.smallClusters++
			continue
		}
		best := int64(math.MaxInt64)
		perRank := make(map[int]int)
		for _, m := range c.Members {
			perRank[frags[m].Rank]++
			if e := frags[m].Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if best == math.MaxInt64 {
			continue
		}
		for _, m := range c.Members {
			f := &frags[m]
			class := ClassOf(f.Kind)
			covered := perRank[f.Rank] >= minFrag
			if covered {
				p.fixedAll[class] += f.Elapsed
			}
			perf := 1.0
			if f.Elapsed > 0 {
				perf = float64(best) / float64(f.Elapsed)
			}
			ref := ref
			ref.Cluster = ci
			p.samples[class] = append(p.samples[class], Sample{
				Rank:       f.Rank,
				Start:      f.Start,
				Elapsed:    f.Elapsed,
				Perf:       perf,
				Covered:    covered,
				ClusterRef: ref,
				FragIndex:  m,
			})
		}
	}
	for c := 0; c < numClasses; c++ {
		n := len(p.samples[c])
		starts := make([]int64, n)
		elapsed := make([]int64, n)
		covered := make([]bool, n)
		for i := range p.samples[c] {
			s := &p.samples[c][i]
			starts[i], elapsed[i], covered[i] = s.Start, s.Elapsed, s.Covered
		}
		p.sampleIdx[c] = buildSpanIndex(starts, elapsed, covered)
	}
	var fragStarts, fragElapsed [numClasses][]int64
	for i := range frags {
		f := &frags[i]
		class := ClassOf(f.Kind)
		fragStarts[class] = append(fragStarts[class], f.Start)
		fragElapsed[class] = append(fragElapsed[class], f.Elapsed)
		p.totalAll[class] += f.Elapsed
	}
	for c := 0; c < numClasses; c++ {
		p.fragIdx[c] = buildSpanIndex(fragStarts[c], fragElapsed[c], nil)
	}
	return p
}

// window fills out with the element's contribution to one analysis
// window — exactly what normalizeElement(frags, cl, ref, opt, start,
// end) computes, but as references into the memoized full-population
// prep: whole[c] shares the canonical slice, sel[c] names the selected
// positions. The merge step copies each selected sample exactly once
// into the final right-sized result slice.
func (p *prepElem) window(start, end int64, out *elemOut) {
	out.prep = p
	out.fixedClusters = p.fixedClusters
	out.smallClusters = p.smallClusters
	if start == math.MinInt64 && end == math.MaxInt64 {
		// Whole-run pass: everything is in range.
		for c := 0; c < numClasses; c++ {
			out.whole[c] = true
		}
		out.fixed = p.fixedAll
		out.total = p.totalAll
		return
	}
	for c := 0; c < numClasses; c++ {
		sel, fixed := p.sampleIdx[c].selectOverlapping(start, end)
		if len(sel) == len(p.samples[c]) {
			out.whole[c] = true
			out.fixed[c] = p.fixedAll[c]
		} else {
			out.sel[c] = sel
			out.fixed[c] = fixed
		}
		if len(p.fragIdx[c].starts) > 0 {
			out.total[c] = p.fragIdx[c].sumOverlapping(start, end)
		}
	}
}
