package detect

import (
	"math"
	"slices"
	"sort"
	"time"

	"vapro/internal/cluster"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// prepElem is the window-independent part of one STG element's analysis,
// memoized per element generation alongside the clustering cache. The
// normalized samples of an element depend only on its full fragment
// population (clustering and the per-cluster fastest member never look
// at the analysis window — the window just filters which samples feed
// the heat map), so they are computed once per element generation and
// every overlapped window slices them by binary search instead of
// re-walking every cluster member. Sample emission order is preserved
// exactly (cluster-major, member-index order), which keeps windowed
// results bit-identical to the direct computation.
//
// When the element advances by an append-only generation step (the
// clustering cache hands back a structured Delta instead of Full),
// advance() patches this state instead of rebuilding it: untouched
// cluster spans are block-copied, grown clusters are merge-copied with
// each cluster's fastest member tracked monotonically (the min can only
// improve, so kept samples renormalize only when it actually does), and
// the span indexes are extended by a remap+merge instead of a re-sort.
type prepElem struct {
	gen    stg.Gen
	nfrags int
	copt   cluster.Options
	ref    ClusterRef

	fixedClusters int
	smallClusters int

	// samples holds the full-population sample lists per class, in
	// canonical emission order. Shared read-only with full-range runs.
	samples [numClasses][]Sample
	// sampleIdx slices samples by time window.
	sampleIdx [numClasses]spanIndex
	// fixedAll is the covered (fixed-workload) time per class over the
	// whole population — the full-range fast path for elemOut.fixed.
	fixedAll [numClasses]int64
	// fragIdx indexes every fragment's span per class for the coverage
	// denominator (elemOut.total sums all fragments, not just cluster
	// members).
	fragIdx  [numClasses]spanIndex
	totalAll [numClasses]int64

	// Incremental-advance state, maintained only for single-class
	// elements: computation edges (1-D norms) and all-comm / all-IO
	// vertices (multi-D vectors) alike — both cluster planes produce
	// structured deltas now. Mixed-class vertices still rebuild: their
	// samples interleave several classes, so a cluster delta does not
	// translate into per-class span patches.
	singleClass bool
	class       Class
	// spanOff[ci] is the offset in samples[class] where cluster ci's
	// emission begins; spanOff[len(clusters)] closes the last span.
	// Small and skipped clusters own empty spans.
	spanOff []int32
	// cstate[ci] is cluster ci's normalization state.
	cstate []clustState

	// Chunked-store representation (see store.go), used instead of
	// samples/sampleIdx/fragIdx/spanOff for 1-D computation elements
	// when the store path is enabled. store == nil means flat.
	store *sampleStore
	// ids[ci] is cluster ci's stable id; slotOf[id] maps an id back to
	// its current cluster index (-1 once retired). minFrag caches the
	// normalized coverage threshold.
	ids     []int32
	slotOf  []int32
	nextID  int32
	minFrag int
	// liveCount is store.n minus retired samples — the store-mode
	// whole-population sample count.
	liveCount int
	// sampleSeg/fragSeg are the segmented span indexes over store
	// positions / fragment indexes.
	sampleSeg segIndex
	fragSeg   segIndex
	// wholeOrder caches the canonical order of all live positions,
	// invalidated per advance, rebuilt lazily on the merge stage.
	wholeOrder []int32
	// storeCompactPending is set when an advance refused because dead
	// samples would exceed the compaction threshold; prepFor rebuilds.
	storeCompactPending bool
}

// clustState tracks what one cluster's emission depends on, so an
// append touching the cluster can be applied as a delta: the fastest
// member (monotone — it only improves), the per-rank population counts
// (monotone — they only grow, so a rank crosses the coverage threshold
// at most once), and the covered time contributed to fixedAll.
type clustState struct {
	// emitted: the cluster is Fixed with a valid best and its members
	// are present in samples. perRank may be non-nil while emitted is
	// false (a fixed cluster whose members all have Elapsed<=0).
	emitted bool
	best    int64
	fixedNS int64
	perRank map[int]int

	// Store-mode extras (zero/nil on the flat path): perRankNS sums
	// elapsed per rank so a coverage crossing can flip a rank's whole
	// prior contribution without revisiting stored samples; nStored
	// counts the cluster's samples living in the store (for delta
	// validation and retirement accounting).
	perRankNS map[int]int64
	nStored   int32
}

// spanIndex answers "which spans overlap [start, end)" over a fixed set
// of (start, elapsed) spans in O(log n + candidates): starts are sorted,
// and a span overlaps only if its start lies in (start-maxElapsed, end).
type spanIndex struct {
	order      []int32 // original positions, sorted by start
	starts     []int64 // starts[i] = start of span order[i] (sorted)
	elapsed    []int64 // elapsed[i] = elapsed of span order[i]
	covered    []bool  // optional: covered flag of span order[i]
	maxElapsed int64
}

func buildSpanIndex(starts, elapsed []int64, covered []bool) spanIndex {
	n := len(starts)
	ix := spanIndex{
		order:   make([]int32, n),
		starts:  make([]int64, n),
		elapsed: make([]int64, n),
	}
	for i := range ix.order {
		ix.order[i] = int32(i)
	}
	sort.Slice(ix.order, func(a, b int) bool {
		sa, sb := starts[ix.order[a]], starts[ix.order[b]]
		if sa != sb {
			return sa < sb
		}
		return ix.order[a] < ix.order[b]
	})
	for i, o := range ix.order {
		ix.starts[i] = starts[o]
		ix.elapsed[i] = elapsed[o]
		if e := elapsed[o]; e > ix.maxElapsed {
			ix.maxElapsed = e
		}
	}
	if covered != nil {
		ix.covered = make([]bool, n)
		for i, o := range ix.order {
			ix.covered[i] = covered[o]
		}
	}
	return ix
}

// candidates returns the [lo, hi) range of sorted positions whose spans
// can overlap [start, end); each candidate still needs the exact
// start+elapsed > start check.
func (ix *spanIndex) candidates(start, end int64) (lo, hi int) {
	// A span [s, s+e) overlaps iff s < end && s+e > start, which needs
	// s > start-maxElapsed (saturating: start near MinInt64 would wrap).
	thresh := start - ix.maxElapsed
	if ix.maxElapsed > 0 && thresh > start {
		thresh = math.MinInt64
	}
	lo = sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > thresh })
	hi = sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] >= end })
	return lo, hi
}

// sumOverlapping totals elapsed over spans overlapping [start, end).
func (ix *spanIndex) sumOverlapping(start, end int64) int64 {
	lo, hi := ix.candidates(start, end)
	var sum int64
	for i := lo; i < hi; i++ {
		if ix.starts[i]+ix.elapsed[i] > start {
			sum += ix.elapsed[i]
		}
	}
	return sum
}

// selectOverlapping returns the original positions of spans overlapping
// [start, end) in original (canonical) order, plus the covered elapsed
// sum over the selection. The positions are distinct, so sorting them
// ascending reproduces the canonical emission order exactly regardless
// of sort algorithm.
func (ix *spanIndex) selectOverlapping(start, end int64) (sel []int32, fixed int64) {
	lo, hi := ix.candidates(start, end)
	if lo >= hi {
		return nil, 0
	}
	sel = make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if ix.starts[i]+ix.elapsed[i] > start {
			sel = append(sel, ix.order[i])
			if ix.covered != nil && ix.covered[i] {
				fixed += ix.elapsed[i]
			}
		}
	}
	slices.Sort(sel)
	return sel, fixed
}

// prepFor returns the memoized window-independent analysis of one
// element: unchanged generations reuse it as-is, append-only advances
// patch it through advance(), and everything else rebuilds. The
// clustering cache is consulted unconditionally so its hit/miss
// accounting keeps meaning "analysis passes that reused a clustering",
// warm prep or not.
func (a *Analyzer) prepFor(key cluster.Key, gen stg.Gen, frags []trace.Fragment, opt Options, ref ClusterRef) *prepElem {
	met := a.met
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	var cl cluster.Result
	var d cluster.Delta
	if opt.DisableIncremental {
		cl = a.cache.RunBatch(key, gen, frags, opt.Cluster)
		d = cluster.Delta{Full: true}
	} else {
		cl, d = a.cache.RunInc(key, gen, frags, opt.Cluster)
	}
	if met != nil {
		a.clock.clusterNS.Add(since(t0))
	}
	if h := a.clusterHook; h != nil {
		h(key, gen, frags, cl, d)
	}
	a.mu.Lock()
	p := a.preps[key]
	a.mu.Unlock()
	// A store-backed prep is never served or advanced once the store
	// path is disabled (the escape hatches must produce flat-path
	// behavior); the reverse direction keeps a warm flat prep — it is
	// equally correct and re-enables the store on the next rebuild.
	storeOff := opt.DisableIncremental || opt.DisableSampleStore
	if p != nil && p.gen == gen && p.nfrags == len(frags) && p.copt == opt.Cluster &&
		!(storeOff && p.storeMode()) {
		return p
	}
	if met != nil {
		t0 = time.Now()
	}
	var storeN0 int32
	if p != nil && p.storeMode() {
		storeN0 = p.store.n
	}
	if p != nil && !opt.DisableIncremental && p.advance(frags, cl, d, opt, gen) {
		if met != nil {
			a.clock.normNS.Add(since(t0))
			met.PrepIncremental.Inc()
			met.DirtySpanPct.Observe(int64(d.Ratio*100 + 0.5))
			if p.storeMode() {
				met.StoreAppends.Add(uint64(p.store.n - storeN0))
			}
		}
		return p
	}
	if met != nil && p != nil && p.storeCompactPending {
		met.StoreCompactions.Inc()
	}
	p = buildPrep(frags, cl, ref, opt, gen)
	if met != nil {
		a.clock.normNS.Add(since(t0))
		met.PrepRebuilds.Inc()
		if p.storeMode() {
			met.StoreAppends.Add(uint64(p.store.n))
		}
	}
	a.mu.Lock()
	a.preps[key] = p
	a.mu.Unlock()
	return p
}

// buildPrep runs the full-population normalization once (the same walk
// normalizeElement does with an unbounded window) and indexes the
// outputs for window slicing.
func buildPrep(frags []trace.Fragment, cl cluster.Result, ref ClusterRef, opt Options, gen stg.Gen) *prepElem {
	if storeEligible(frags, opt) {
		return buildPrepStore(frags, cl, ref, opt, gen)
	}
	p := &prepElem{gen: gen, nfrags: len(frags), copt: opt.Cluster, ref: ref}
	minFrag := opt.Cluster.MinFragments
	if minFrag <= 0 {
		minFrag = 5
	}
	p.singleClass = len(frags) > 0
	if p.singleClass {
		p.class = ClassOf(frags[0].Kind)
		for i := range frags {
			if ClassOf(frags[i].Kind) != p.class {
				p.singleClass = false
				break
			}
		}
	}
	if p.singleClass {
		p.spanOff = make([]int32, 0, len(cl.Clusters)+1)
		p.cstate = make([]clustState, 0, len(cl.Clusters))
	}
	for ci := range cl.Clusters {
		c := &cl.Clusters[ci]
		if p.singleClass {
			p.spanOff = append(p.spanOff, int32(len(p.samples[p.class])))
		}
		if c.Fixed {
			p.fixedClusters++
		} else {
			p.smallClusters++
			if p.singleClass {
				p.cstate = append(p.cstate, clustState{})
			}
			continue
		}
		best := int64(math.MaxInt64)
		perRank := make(map[int]int)
		for _, m := range c.Members {
			perRank[frags[m].Rank]++
			if e := frags[m].Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if best == math.MaxInt64 {
			if p.singleClass {
				p.cstate = append(p.cstate, clustState{perRank: perRank})
			}
			continue
		}
		st := clustState{emitted: true, best: best, perRank: perRank}
		for _, m := range c.Members {
			f := &frags[m]
			class := ClassOf(f.Kind)
			covered := perRank[f.Rank] >= minFrag
			if covered {
				p.fixedAll[class] += f.Elapsed
				st.fixedNS += f.Elapsed
			}
			perf := 1.0
			if f.Elapsed > 0 {
				perf = float64(best) / float64(f.Elapsed)
			}
			ref := ref
			ref.Cluster = ci
			p.samples[class] = append(p.samples[class], Sample{
				Rank:       f.Rank,
				Start:      f.Start,
				Elapsed:    f.Elapsed,
				Perf:       perf,
				Covered:    covered,
				ClusterRef: ref,
				FragIndex:  m,
			})
		}
		if p.singleClass {
			p.cstate = append(p.cstate, st)
		}
	}
	if p.singleClass {
		p.spanOff = append(p.spanOff, int32(len(p.samples[p.class])))
	}
	for c := 0; c < numClasses; c++ {
		n := len(p.samples[c])
		starts := make([]int64, n)
		elapsed := make([]int64, n)
		covered := make([]bool, n)
		for i := range p.samples[c] {
			s := &p.samples[c][i]
			starts[i], elapsed[i], covered[i] = s.Start, s.Elapsed, s.Covered
		}
		p.sampleIdx[c] = buildSpanIndex(starts, elapsed, covered)
	}
	var fragStarts, fragElapsed [numClasses][]int64
	for i := range frags {
		f := &frags[i]
		class := ClassOf(f.Kind)
		fragStarts[class] = append(fragStarts[class], f.Start)
		fragElapsed[class] = append(fragElapsed[class], f.Elapsed)
		p.totalAll[class] += f.Elapsed
	}
	for c := 0; c < numClasses; c++ {
		p.fragIdx[c] = buildSpanIndex(fragStarts[c], fragElapsed[c], nil)
	}
	return p
}

// window fills out with the element's contribution to one analysis
// window — exactly what normalizeElement(frags, cl, ref, opt, start,
// end) computes, but as references into the memoized full-population
// prep: whole[c] shares the canonical slice, sel[c] names the selected
// positions. The merge step copies each selected sample exactly once
// into the final right-sized result slice.
func (p *prepElem) window(start, end int64, out *elemOut) {
	if p.storeMode() {
		p.windowStore(start, end, out)
		return
	}
	out.prep = p
	out.fixedClusters = p.fixedClusters
	out.smallClusters = p.smallClusters
	if start == math.MinInt64 && end == math.MaxInt64 {
		// Whole-run pass: everything is in range.
		for c := 0; c < numClasses; c++ {
			out.whole[c] = true
		}
		out.fixed = p.fixedAll
		out.total = p.totalAll
		return
	}
	for c := 0; c < numClasses; c++ {
		sel, fixed := p.sampleIdx[c].selectOverlapping(start, end)
		if len(sel) == len(p.samples[c]) {
			out.whole[c] = true
			out.fixed[c] = p.fixedAll[c]
		} else {
			out.sel[c] = sel
			out.fixed[c] = fixed
		}
		if len(p.fragIdx[c].starts) > 0 {
			out.total[c] = p.fragIdx[c].sumOverlapping(start, end)
		}
	}
}
