package detect_test

import (
	"math"
	"reflect"
	"testing"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// tracedGraph records one noisy CG run and returns its STG — a
// realistic fragment population (multiple edges, vertices, workload
// classes, injected variance) for the parallel/sequential comparison.
func tracedGraph(t *testing.T) (*stg.Graph, int) {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Ranks = 8
	sch := noise.NewSchedule()
	sch.Add(noise.NodeCPUContention(0, sim.Time(20*sim.Millisecond), sim.Time(60*sim.Millisecond), 0.5))
	opt.Noise = sch
	res := core.RunTraced(apps.NewCG(10), opt)
	return res.Graph, res.Ranks
}

func sameHeatMap(t *testing.T, class detect.Class, a, b *detect.HeatMap) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("class %v: one map nil", class)
	}
	if a == nil {
		return
	}
	if a.Ranks != b.Ranks || a.Windows != b.Windows || a.Window != b.Window || a.Origin != b.Origin {
		t.Fatalf("class %v: map shapes differ: %+v vs %+v", class, a, b)
	}
	for i := range a.Cells {
		// Bitwise comparison: NaN (empty cell) must match NaN.
		if math.Float64bits(a.Cells[i]) != math.Float64bits(b.Cells[i]) {
			t.Fatalf("class %v cell %d: %v vs %v", class, i, a.Cells[i], b.Cells[i])
		}
	}
}

// sameResult asserts two detection results are identical in every
// observable: samples (values and order), coverage, cluster counts,
// heat maps (bitwise), and regions (bounds, loss, member samples,
// order).
func sameResult(t *testing.T, a, b *detect.Result) {
	t.Helper()
	for _, class := range []detect.Class{detect.Computation, detect.Communication, detect.IOClass} {
		if len(a.Samples[class]) != len(b.Samples[class]) {
			t.Fatalf("class %v: %d vs %d samples", class, len(a.Samples[class]), len(b.Samples[class]))
		}
		if !reflect.DeepEqual(a.Samples[class], b.Samples[class]) {
			t.Fatalf("class %v: samples differ", class)
		}
		sameHeatMap(t, class, a.Maps[class], b.Maps[class])
	}
	if !reflect.DeepEqual(a.Coverage, b.Coverage) {
		t.Fatalf("coverage differs: %v vs %v", a.Coverage, b.Coverage)
	}
	if a.OverallCoverage != b.OverallCoverage {
		t.Fatalf("overall coverage %v vs %v", a.OverallCoverage, b.OverallCoverage)
	}
	if a.FixedClusters != b.FixedClusters || a.SmallClusters != b.SmallClusters {
		t.Fatalf("cluster counts differ: %d/%d vs %d/%d",
			a.FixedClusters, a.SmallClusters, b.FixedClusters, b.SmallClusters)
	}
	if !reflect.DeepEqual(a.Regions, b.Regions) {
		t.Fatalf("regions differ: %d vs %d", len(a.Regions), len(b.Regions))
	}
}

// The parallel pipeline must be indistinguishable from the sequential
// reference: same samples in the same order, same coverage, bitwise-
// identical heat maps, same regions.
func TestParallelRunMatchesSequential(t *testing.T) {
	g, ranks := tracedGraph(t)
	seqOpt := detect.DefaultOptions()
	seqOpt.Parallelism = 1
	seq := detect.Run(g, ranks, seqOpt)
	if len(seq.Samples[detect.Computation]) == 0 {
		t.Fatal("reference run produced no samples")
	}
	for _, workers := range []int{2, 4, 8} {
		parOpt := detect.DefaultOptions()
		parOpt.Parallelism = workers
		sameResult(t, seq, detect.Run(g, ranks, parOpt))
	}
}

func TestParallelRunWindowMatchesSequential(t *testing.T) {
	g, ranks := tracedGraph(t)
	start, end := int64(20*sim.Millisecond), int64(60*sim.Millisecond)
	seqOpt := detect.DefaultOptions()
	seqOpt.Parallelism = 1
	parOpt := detect.DefaultOptions()
	parOpt.Parallelism = 8
	seq := detect.NewAnalyzer().RunWindow(g, ranks, seqOpt, start, end)
	par := detect.NewAnalyzer().RunWindow(g, ranks, parOpt, start, end)
	sameResult(t, seq, par)
	// The window view must carry fewer samples than the whole run and
	// only samples overlapping the window.
	full := detect.Run(g, ranks, seqOpt)
	if len(seq.Samples[detect.Computation]) >= len(full.Samples[detect.Computation]) {
		t.Fatal("window did not filter samples")
	}
	for _, s := range seq.Samples[detect.Computation] {
		if s.Start >= end || s.Start+s.Elapsed <= start {
			t.Fatalf("sample [%d, %d) outside window [%d, %d)", s.Start, s.Start+s.Elapsed, start, end)
		}
	}
}

// Repeated analyses through one Analyzer must cluster each element
// once; appending fragments re-clusters only the grown element.
func TestAnalyzerMemoizesAcrossRuns(t *testing.T) {
	g, ranks := tracedGraph(t)
	elements := uint64(g.NumEdges() + g.NumVertices())
	a := detect.NewAnalyzer()
	opt := detect.DefaultOptions()

	first := a.Run(g, ranks, opt)
	if hits, misses := a.Cache().Stats(); hits != 0 || misses != elements {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", hits, misses, elements)
	}
	second := a.Run(g, ranks, opt)
	if hits, misses := a.Cache().Stats(); hits != elements || misses != elements {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/%d", hits, misses, elements, elements)
	}
	sameResult(t, first, second)

	// Grow one edge: exactly one element re-clusters on the next run.
	e := g.Edges()[0]
	f := e.Fragments[0]
	f.Start = f.Start + 1
	g.Add(f)
	a.Run(g, ranks, opt)
	hits, misses := a.Cache().Stats()
	incHits, incFallbacks := a.Cache().IncStats()
	if hits != 2*elements-1 || misses != elements || incHits+incFallbacks != 1 {
		t.Fatalf("after growth: hits=%d misses=%d inc=%d/%d, want %d/%d and exactly one incremental advance",
			hits, misses, incHits, incFallbacks, 2*elements-1, elements)
	}
}

// A vertex carrying mixed fragment kinds must contribute each fragment
// to its own class, not class the whole vertex by Fragments[0].Kind.
func TestMixedKindVertexClassedPerFragment(t *testing.T) {
	g := stg.New()
	for i := 0; i < 10; i++ {
		// Comm first: the old wholesale rule would have classed the IO
		// fragments as Communication too.
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comm, State: 9,
			Start: int64(i) * 2_000_000, Elapsed: 500_000,
			Args: trace.Args{Op: trace.Op("Send"), Bytes: 1024}})
		g.Add(trace.Fragment{Rank: 0, Kind: trace.IO, State: 9,
			Start: int64(i)*2_000_000 + 1_000_000, Elapsed: 250_000,
			Args: trace.Args{Op: trace.Op("read"), Bytes: 65536}})
	}
	res := detect.Run(g, 1, detect.DefaultOptions())
	if n := len(res.Samples[detect.Communication]); n != 10 {
		t.Fatalf("communication samples: %d, want 10", n)
	}
	if n := len(res.Samples[detect.IOClass]); n != 10 {
		t.Fatalf("io samples: %d, want 10 (misclassified by first fragment kind?)", n)
	}
	// Coverage totals must split by fragment kind as well: comm carries
	// 2/3 of the vertex time, io 1/3, and both are fully repeated.
	if c := res.Coverage[detect.Communication]; c < 0.999 {
		t.Fatalf("comm coverage %v, want 1", c)
	}
	if c := res.Coverage[detect.IOClass]; c < 0.999 {
		t.Fatalf("io coverage %v, want 1", c)
	}
}
