package detect

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"vapro/internal/sim"
)

// spatialSample builds one cell-filling observation. Starts are made
// unique per (rank, win) so sample order is fully determined and the
// merged k-way order matches a global sort exactly.
func spatialSample(rank, win int, window int64, perf float64) Sample {
	return Sample{
		Rank:    rank,
		Start:   int64(win)*window + int64(rank),
		Elapsed: window / 2,
		Perf:    perf,
		Covered: true,
	}
}

// spatialPart assembles one shard's Result from its samples, the way a
// plane's detection pass would: start-sorted samples, a heat map over
// the global rank axis (unowned rows stay NaN), outage staleness.
func spatialPart(t *testing.T, ranks int, samples []Sample, window int64, outages []Outage) *Result {
	t.Helper()
	for i := 1; i < len(samples); i++ {
		if samples[i].Start < samples[i-1].Start {
			t.Fatalf("test samples not start-sorted at %d", i)
		}
	}
	h := buildHeatMap(Computation, samples, ranks, sim.Duration(window), 0)
	if h == nil {
		t.Fatal("buildHeatMap returned nil")
	}
	h.markStale(outages)
	res := &Result{
		Maps:        map[Class]*HeatMap{Computation: h},
		Samples:     map[Class][]Sample{Computation: samples},
		Coverage:    make(map[Class]float64),
		TotalTimeNS: make(map[Class]int64),
		FixedTimeNS: make(map[Class]int64),
	}
	for i := range samples {
		res.TotalTimeNS[Computation] += samples[i].Elapsed
		res.FixedTimeNS[Computation] += samples[i].Elapsed
	}
	return res
}

// TestSpatialMergeBoundaryStitch pins the tentpole equivalence: a
// variance region straddling a shard boundary (ranks 3 and 4 owned by
// different shards) comes out of the merged grid bit-identical to the
// unsharded batch grower over the same cells and samples, and a stale
// cell inside the blob (lost data on the rank 4 side) stays excluded.
func TestSpatialMergeBoundaryStitch(t *testing.T) {
	const ranks, wins = 8, 4
	const window = int64(100)
	owner := func(r int) int {
		if r < 4 {
			return 0
		}
		return 1
	}
	low := map[[2]int]bool{{3, 1}: true, {3, 2}: true, {4, 1}: true, {4, 2}: true}
	var perShard [2][]Sample
	var global []Sample
	for w := 0; w < wins; w++ {
		for r := 0; r < ranks; r++ {
			perf := 1.0
			if low[[2]int{r, w}] {
				perf = 0.5
			}
			s := spatialSample(r, w, window, perf)
			perShard[owner(r)] = append(perShard[owner(r)], s)
			global = append(global, s)
		}
	}
	// Rank 4's data for window 2 was lost in transit: the owning shard
	// reports the outage, and the merged grid must exclude that cell.
	outages := []Outage{{Rank: 4, Start: 2 * window, End: 3 * window}}
	parts := []*Result{
		spatialPart(t, ranks, perShard[0], window, nil),
		spatialPart(t, ranks, perShard[1], window, outages),
	}
	opt := Options{Window: sim.Duration(window), Threshold: 0.85, MinRegionCells: 1}

	m := NewMerger()
	merged, stats := m.Merge(parts, ranks, owner, opt)

	h := merged.Maps[Computation]
	if h == nil || h.Ranks != ranks || h.Windows != wins {
		t.Fatalf("merged map geometry: %+v", h)
	}
	if !h.StaleAt(4, 2) {
		t.Fatal("stale cell not carried through merge")
	}
	if stats.Strips != 2 {
		t.Fatalf("Strips = %d, want 2", stats.Strips)
	}
	if stats.Stitched != 1 {
		t.Fatalf("Stitched = %d, want 1", stats.Stitched)
	}

	// Unsharded reference: the exported batch grower over the same
	// merged inputs.
	want := GrowRegions(h, merged.Samples[Computation], opt)
	if !reflect.DeepEqual(merged.Regions, want) {
		t.Fatalf("stitched regions differ from batch grower:\n got %+v\nwant %+v", merged.Regions, want)
	}
	if len(merged.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(merged.Regions))
	}
	reg := merged.Regions[0]
	if reg.RankMin != 3 || reg.RankMax != 4 {
		t.Fatalf("region does not straddle the boundary: %+v", reg)
	}
	if reg.Cells != 3 {
		t.Fatalf("region cells = %d, want 3 (stale cell excluded)", reg.Cells)
	}

	// Unsharded reference the long way: one global pass over all
	// samples must build the identical grid.
	sortSamplesByStart(global)
	ref := buildHeatMap(Computation, global, ranks, sim.Duration(window), 0)
	ref.markStale(outages)
	for i := range ref.Cells {
		if math.Float64bits(ref.Cells[i]) != math.Float64bits(h.Cells[i]) {
			t.Fatalf("merged cell %d differs from global pass: %v vs %v", i, h.Cells[i], ref.Cells[i])
		}
	}

	// Warm re-merge over identical parts: the carried regions must stay
	// bit-identical to the batch reference.
	merged2, _ := m.Merge(parts, ranks, owner, opt)
	if !reflect.DeepEqual(merged2.Regions, want) {
		t.Fatalf("warm re-merge regions differ:\n got %+v\nwant %+v", merged2.Regions, want)
	}

	// Coverage merges from the raw int64 sums.
	if merged.Coverage[Computation] != 1.0 || merged.OverallCoverage != 1.0 {
		t.Fatalf("coverage: %v overall %v", merged.Coverage[Computation], merged.OverallCoverage)
	}
}

func sortSamplesByStart(s []Sample) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Start < s[j-1].Start; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestSpatialMergeDownShard: a nil part (shard down, nothing delivered
// this window) leaves its ranks' rows NaN — they neither seed nor join
// regions, matching an unsharded run that received none of those
// fragments.
func TestSpatialMergeDownShard(t *testing.T) {
	const ranks = 4
	const window = int64(100)
	owner := func(r int) int { return r % 2 }
	var s0 []Sample
	for w := 0; w < 3; w++ {
		s0 = append(s0, spatialSample(0, w, window, 0.5), spatialSample(2, w, window, 0.5))
	}
	sortSamplesByStart(s0)
	parts := []*Result{spatialPart(t, ranks, s0, window, nil), nil}
	opt := Options{Window: sim.Duration(window), Threshold: 0.85, MinRegionCells: 1}
	merged, stats := NewMerger().Merge(parts, ranks, owner, opt)
	h := merged.Maps[Computation]
	for w := 0; w < h.Windows; w++ {
		if !math.IsNaN(h.At(1, w)) || !math.IsNaN(h.At(3, w)) {
			t.Fatalf("down shard's rows not NaN at win %d", w)
		}
	}
	// Ranks 0 and 2 are low but separated by the NaN rank-1 row: two
	// regions, neither stitched.
	if len(merged.Regions) != 2 || stats.Stitched != 0 {
		t.Fatalf("regions %d stitched %d, want 2/0", len(merged.Regions), stats.Stitched)
	}
	want := GrowRegions(h, merged.Samples[Computation], opt)
	if !reflect.DeepEqual(merged.Regions, want) {
		t.Fatal("down-shard regions differ from batch grower")
	}
}

// TestSpatialMergeConcurrent drives independent Mergers from many
// goroutines over shared (read-only) part Results — the tier fans
// window merges out this way, so the shared inputs must be data-race
// free under the detector.
func TestSpatialMergeConcurrent(t *testing.T) {
	const ranks = 6
	const window = int64(100)
	owner := func(r int) int { return r / 3 }
	var perShard [2][]Sample
	for w := 0; w < 4; w++ {
		for r := 0; r < ranks; r++ {
			perf := 1.0
			if r == 2 || r == 3 {
				perf = 0.4
			}
			perShard[owner(r)] = append(perShard[owner(r)], spatialSample(r, w, window, perf))
		}
	}
	for i := range perShard {
		sortSamplesByStart(perShard[i])
	}
	parts := []*Result{
		spatialPart(t, ranks, perShard[0], window, nil),
		spatialPart(t, ranks, perShard[1], window, nil),
	}
	opt := Options{Window: sim.Duration(window), Threshold: 0.85, MinRegionCells: 1}
	ref, _ := NewMerger().Merge(parts, ranks, owner, opt)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewMerger()
			for pass := 0; pass < 3; pass++ {
				got, _ := m.Merge(parts, ranks, owner, opt)
				if !reflect.DeepEqual(got.Regions, ref.Regions) {
					t.Error("concurrent merge diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
