package detect

import (
	"math"
	"testing"

	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// staleFrag builds a computation fragment for the stale-map tests.
func staleFrag(rank int, start, elapsed int64) trace.Fragment {
	return trace.Fragment{
		Rank: rank, Kind: trace.Comp, From: 1, State: 2,
		Start: start, Elapsed: elapsed,
		Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
	}
}

// TestStaleCellsExcludedFromRegions pins the gap-aware analysis: a rank
// whose data was lost over an interval is marked stale there, stale
// cells never join variance regions, and the marking is purely additive
// — the same input without outages reports the region as before.
func TestStaleCellsExcludedFromRegions(t *testing.T) {
	// Two ranks, ten repetitions each. Rank 1 runs 4x slower in the
	// second half — a clear variance region — but its data for that
	// span is also marked lost in transit.
	g := stg.New()
	var frags []trace.Fragment
	for i := 0; i < 10; i++ {
		frags = append(frags, staleFrag(0, int64(i)*1_000_000_000, 100_000_000))
		el := int64(100_000_000)
		if i >= 5 {
			el = 400_000_000
		}
		frags = append(frags, staleFrag(1, int64(i)*1_000_000_000, el))
	}
	g.AddBatch(frags)

	opt := DefaultOptions()
	opt.Window = 1000 * sim.Millisecond

	// Without outage knowledge the slowdown is a region on rank 1.
	base := Run(g, 2, opt)
	h := base.Maps[Computation]
	if h == nil {
		t.Fatal("no computation map")
	}
	if h.Stale != nil || h.StaleAt(1, 6) {
		t.Fatal("stale marks invented without outages")
	}
	foundRank1 := false
	for _, r := range base.Regions {
		if r.RankMin <= 1 && r.RankMax >= 1 {
			foundRank1 = true
		}
	}
	if !foundRank1 {
		t.Fatal("baseline run did not flag the rank-1 slowdown; test premise broken")
	}

	// With the interval declared lost, those cells go stale and stop
	// seeding regions.
	opt.Outages = []Outage{{Rank: 1, Start: 5_000_000_000, End: 10_000_000_000}}
	res := Run(g, 2, opt)
	h = res.Maps[Computation]
	for w := 5; w <= 9; w++ {
		if !h.StaleAt(1, w) {
			t.Fatalf("cell (1,%d) not stale", w)
		}
	}
	if h.StaleAt(0, 5) || h.StaleAt(1, 0) {
		t.Fatal("stale marks leaked outside the outage interval")
	}
	for _, r := range res.Regions {
		for w := r.WinMin; w <= r.WinMax; w++ {
			for rank := r.RankMin; rank <= r.RankMax; rank++ {
				if h.StaleAt(rank, w) && !math.IsNaN(h.At(rank, w)) {
					t.Fatalf("region %+v includes stale cell (%d,%d)", r, rank, w)
				}
			}
		}
	}
	// The region seeded by the stale cells must be gone entirely.
	for _, r := range res.Regions {
		if r.RankMin == 1 && r.WinMin >= 5 {
			t.Fatalf("stale-only region still reported: %+v", r)
		}
	}

	// An out-of-range rank and a zero-length outage must not panic and
	// the latter marks exactly its single containing cell.
	opt.Outages = []Outage{{Rank: 99, Start: 0, End: 1}, {Rank: 0, Start: 2_500_000_000, End: 2_500_000_000}}
	res = Run(g, 2, opt)
	h = res.Maps[Computation]
	if !h.StaleAt(0, 2) || h.StaleAt(0, 3) {
		t.Fatal("zero-length outage mis-marked")
	}
}

// TestStaleMapAndRegionsParity: the MapAndRegions entry point (vSensor
// baseline path) honors Outages identically.
func TestStaleMapAndRegionsParity(t *testing.T) {
	var samples []Sample
	for i := 0; i < 4; i++ {
		samples = append(samples, Sample{Rank: 0, Start: int64(i) * 1_000_000_000,
			Elapsed: 100_000_000, Perf: 0.2, Covered: true})
	}
	opt := DefaultOptions()
	opt.Window = 1000 * sim.Millisecond
	opt.Outages = []Outage{{Rank: 0, Start: 0, End: 4_000_000_000}}
	h, regions := MapAndRegions(Computation, samples, 1, opt)
	if h == nil {
		t.Fatal("no map")
	}
	for w := 0; w < 4; w++ {
		if !h.StaleAt(0, w) {
			t.Fatalf("cell (0,%d) not stale", w)
		}
	}
	if len(regions) != 0 {
		t.Fatalf("stale cells formed regions: %+v", regions)
	}
}
