package detect

import (
	"math"
	"testing"

	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// buildGraph makes an STG with one edge carrying `perRank` fragments of
// a fixed workload per rank, with rank `slowRank` running `slowFactor`
// slower during [slowStart, slowEnd).
func buildGraph(ranks, perRank int, slowRank int, slowFactor float64, slowStart, slowEnd int64) *stg.Graph {
	g := stg.New()
	const base = int64(1_000_000) // 1ms fragments
	for rank := 0; rank < ranks; rank++ {
		t := int64(0)
		for i := 0; i < perRank; i++ {
			el := base
			if rank == slowRank && t >= slowStart && t < slowEnd {
				el = int64(float64(base) * slowFactor)
			}
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: t, Elapsed: el,
				Counters: trace.CountersView{TotIns: 500000, Cycles: 250000},
			})
			t += el
		}
	}
	return g
}

func opts() Options {
	o := DefaultOptions()
	o.Window = 5 * sim.Millisecond
	return o
}

func TestNormalizationFastestIsOne(t *testing.T) {
	g := buildGraph(4, 50, 2, 2.0, 0, 1e9)
	res := Run(g, 4, opts())
	samples := res.Samples[Computation]
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var best float64
	for _, s := range samples {
		if s.Perf > best {
			best = s.Perf
		}
		if s.Perf <= 0 || s.Perf > 1 {
			t.Fatalf("perf out of (0,1]: %v", s.Perf)
		}
	}
	if best < 0.999 {
		t.Fatalf("fastest fragment perf %v, want ~1", best)
	}
}

func TestSlowRankDetected(t *testing.T) {
	g := buildGraph(8, 60, 3, 2.0, 0, 1e9)
	res := Run(g, 8, opts())
	if len(res.Regions) == 0 {
		t.Fatal("2x-slow rank not detected")
	}
	reg := res.Regions[0]
	if reg.RankMin > 3 || reg.RankMax < 3 {
		t.Fatalf("region misses the slow rank: %+v", reg)
	}
	if reg.MeanPerf > 0.65 {
		t.Fatalf("region perf %v, want ~0.5", reg.MeanPerf)
	}
	if reg.LossNS <= 0 {
		t.Fatal("region has no quantified loss")
	}
}

func TestQuietRunNoRegions(t *testing.T) {
	g := buildGraph(8, 60, -1, 1, 0, 0)
	res := Run(g, 8, opts())
	if len(res.Regions) != 0 {
		t.Fatalf("quiet run produced %d regions", len(res.Regions))
	}
}

func TestTemporalLocalization(t *testing.T) {
	// Slow window in the middle third only.
	g := buildGraph(4, 90, 1, 2.0, 30_000_000, 60_000_000)
	res := Run(g, 4, opts())
	if len(res.Regions) == 0 {
		t.Fatal("temporal variance not detected")
	}
	h := res.Maps[Computation]
	reg := res.Regions[0]
	if reg.StartTime(h).Seconds() > 0.035 || reg.EndTime(h).Seconds() < 0.05 {
		t.Fatalf("region window wrong: %v-%v", reg.StartTime(h), reg.EndTime(h))
	}
	if reg.RankMin != 1 || reg.RankMax != 1 {
		t.Fatalf("region ranks wrong: %d-%d", reg.RankMin, reg.RankMax)
	}
}

func TestCoveragePerProcessRule(t *testing.T) {
	// Each rank executes the workload once: pooled cluster is big, but
	// per-rank repetition is 1 < 5, so coverage must be 0 while samples
	// still exist (inter-process detection keeps working).
	g := stg.New()
	for rank := 0; rank < 16; rank++ {
		g.Add(trace.Fragment{
			Rank: rank, Kind: trace.Comp, From: 1, State: 2,
			Start: 0, Elapsed: 1_000_000,
			Counters: trace.CountersView{TotIns: 500000, Cycles: 250000},
		})
	}
	res := Run(g, 16, opts())
	if res.Coverage[Computation] != 0 {
		t.Fatalf("coverage %v, want 0 under per-process rule", res.Coverage[Computation])
	}
	if len(res.Samples[Computation]) != 16 {
		t.Fatalf("pooled samples missing: %d", len(res.Samples[Computation]))
	}
}

func TestCoverageFullWhenRepeated(t *testing.T) {
	g := buildGraph(4, 50, -1, 1, 0, 0)
	res := Run(g, 4, opts())
	if res.Coverage[Computation] < 0.999 {
		t.Fatalf("repeated fixed workload coverage %v", res.Coverage[Computation])
	}
	if res.OverallCoverage < 0.999 {
		t.Fatalf("overall coverage %v", res.OverallCoverage)
	}
}

func TestClassSeparation(t *testing.T) {
	g := stg.New()
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 10; i++ {
			g.Add(trace.Fragment{Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: int64(i) * 2_000_000, Elapsed: 1_000_000,
				Counters: trace.CountersView{TotIns: 1000, Cycles: 500}})
			g.Add(trace.Fragment{Rank: rank, Kind: trace.Comm, State: 2,
				Start: int64(i)*2_000_000 + 1_000_000, Elapsed: 500_000,
				Args: trace.Args{Op: trace.Op("Send"), Bytes: 1024}})
			g.Add(trace.Fragment{Rank: rank, Kind: trace.IO, State: 3,
				Start: int64(i)*2_000_000 + 1_500_000, Elapsed: 250_000,
				Args: trace.Args{Op: trace.Op("read"), Bytes: 4096}})
		}
	}
	res := Run(g, 2, opts())
	for _, class := range []Class{Computation, Communication, IOClass} {
		if len(res.Samples[class]) == 0 {
			t.Fatalf("class %v has no samples", class)
		}
		if res.Maps[class] == nil {
			t.Fatalf("class %v has no heat map", class)
		}
	}
}

func TestHeatMapWeighting(t *testing.T) {
	// One long slow fragment and many short fast ones in one window:
	// the weighted cell must be dominated by the long fragment.
	g := stg.New()
	for i := 0; i < 10; i++ {
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 1, State: 2,
			Start: int64(i) * 10_000, Elapsed: 10_000,
			Counters: trace.CountersView{TotIns: 1000, Cycles: 100}})
	}
	// Slow duplicates of a much bigger workload class.
	for i := 0; i < 10; i++ {
		el := int64(400_000)
		if i > 0 {
			el = 800_000 // half performance
		}
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 2, State: 3,
			Start: 100_000 + int64(i)*800_000, Elapsed: el,
			Counters: trace.CountersView{TotIns: 100000, Cycles: 10000}})
	}
	o := opts()
	o.Window = 10 * sim.Millisecond
	res := Run(g, 1, o)
	h := res.Maps[Computation]
	if h == nil {
		t.Fatal("no map")
	}
	cell := h.At(0, 0)
	if math.IsNaN(cell) || cell > 0.7 {
		t.Fatalf("weighted cell %v should be pulled down by the slow long fragments", cell)
	}
}

func TestRegionGrowingMergesNeighbors(t *testing.T) {
	// Two adjacent slow ranks must form one region.
	g := stg.New()
	for rank := 0; rank < 6; rank++ {
		for i := 0; i < 30; i++ {
			el := int64(1_000_000)
			if rank == 2 || rank == 3 {
				el = 2_000_000
			}
			g.Add(trace.Fragment{Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: int64(i) * 2_000_000, Elapsed: el,
				Counters: trace.CountersView{TotIns: 500000, Cycles: 250000}})
		}
	}
	res := Run(g, 6, opts())
	if len(res.Regions) != 1 {
		t.Fatalf("adjacent slow ranks formed %d regions, want 1", len(res.Regions))
	}
	if res.Regions[0].RankMin != 2 || res.Regions[0].RankMax != 3 {
		t.Fatalf("region bounds: %+v", res.Regions[0])
	}
}

func TestMapAndRegions(t *testing.T) {
	samples := []Sample{
		{Rank: 0, Start: 0, Elapsed: 1_000_000, Perf: 1},
		{Rank: 0, Start: 1_000_000, Elapsed: 2_000_000, Perf: 0.5},
		{Rank: 1, Start: 0, Elapsed: 1_000_000, Perf: 1},
	}
	h, regions := MapAndRegions(Computation, samples, 2, Options{Window: sim.Millisecond, Threshold: 0.85})
	if h == nil {
		t.Fatal("no map")
	}
	if len(regions) == 0 {
		t.Fatal("slow sample not flagged")
	}
}

func TestClassOfAndStrings(t *testing.T) {
	if ClassOf(trace.Comp) != Computation || ClassOf(trace.Probe) != Computation {
		t.Fatal("comp class")
	}
	if ClassOf(trace.IO) != IOClass || ClassOf(trace.Comm) != Communication || ClassOf(trace.Sync) != Communication {
		t.Fatal("vertex classes")
	}
	if Computation.String() != "computation" || IOClass.String() != "io" {
		t.Fatal("strings")
	}
}
