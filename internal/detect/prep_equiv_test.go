package detect

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"vapro/internal/cluster"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// referenceRun is the pre-prep detection pass: per window, every
// element is re-normalized from scratch through normalizeElement. The
// prep-sliced run() must reproduce its output bit for bit.
func referenceRun(cache *cluster.Cache, g *stg.Graph, ranks int, opt Options, start, end, origin int64) *Result {
	if opt.Window <= 0 {
		opt.Window = 500 * sim.Millisecond
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}
	res := &Result{
		Maps:     make(map[Class]*HeatMap),
		Samples:  make(map[Class][]Sample),
		Coverage: make(map[Class]float64),
	}
	edges := g.Edges()
	verts := g.Vertices()
	outs := make([]elemDirect, len(edges)+len(verts))
	forEach(len(outs), opt.Parallelism, func(i int) {
		if i < len(edges) {
			e := edges[i]
			cl := cache.Run(cluster.EdgeKey(e.Key), e.Gen, e.Fragments, opt.Cluster)
			outs[i] = normalizeElement(e.Fragments, cl, ClusterRef{IsEdge: true, Edge: e.Key}, opt, start, end)
		} else {
			v := verts[i-len(edges)]
			cl := cache.Run(cluster.VertexKey(v.Key), v.Gen, v.Fragments, opt.Cluster)
			outs[i] = normalizeElement(v.Fragments, cl, ClusterRef{Vertex: v.Key}, opt, start, end)
		}
	})
	var total, fixed [numClasses]int64
	for i := range outs {
		o := &outs[i]
		res.FixedClusters += o.fixedClusters
		res.SmallClusters += o.smallClusters
		for c := 0; c < numClasses; c++ {
			if len(o.samples[c]) > 0 {
				res.Samples[Class(c)] = append(res.Samples[Class(c)], o.samples[c]...)
			}
			total[c] += o.total[c]
			fixed[c] += o.fixed[c]
		}
	}
	var allTotal, allFixed int64
	for c := 0; c < numClasses; c++ {
		allTotal += total[c]
		allFixed += fixed[c]
		if total[c] > 0 {
			res.Coverage[Class(c)] = float64(fixed[c]) / float64(total[c])
		}
	}
	if allTotal > 0 {
		res.OverallCoverage = float64(allFixed) / float64(allTotal)
	}
	var maps [numClasses]*HeatMap
	var regions [numClasses][]Region
	forEach(numClasses, opt.Parallelism, func(c int) {
		samples := res.Samples[Class(c)]
		if len(samples) == 0 {
			return
		}
		sortSamples(samples)
		h := buildHeatMap(Class(c), samples, ranks, opt.Window, origin)
		if h == nil {
			return
		}
		maps[c] = h
		regions[c] = growRegions(h, samples, opt)
	})
	for c := 0; c < numClasses; c++ {
		if maps[c] != nil {
			res.Maps[Class(c)] = maps[c]
			res.Regions = append(res.Regions, regions[c]...)
		}
	}
	sort.Slice(res.Regions, func(i, j int) bool { return res.Regions[i].LossNS > res.Regions[j].LossNS })
	return res
}

func identicalHeatMap(t *testing.T, class Class, a, b *HeatMap) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("class %v: one heat map nil", class)
	}
	if a == nil {
		return
	}
	if a.Ranks != b.Ranks || a.Windows != b.Windows || a.Window != b.Window || a.Origin != b.Origin {
		t.Fatalf("class %v: heat map shape %+v vs %+v", class, a, b)
	}
	for i := range a.Cells {
		if math.Float64bits(a.Cells[i]) != math.Float64bits(b.Cells[i]) {
			t.Fatalf("class %v cell %d: %v vs %v", class, i, a.Cells[i], b.Cells[i])
		}
	}
}

func identicalResult(t *testing.T, a, b *Result) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatal("one result nil")
	}
	if a == nil {
		return
	}
	if a.FixedClusters != b.FixedClusters || a.SmallClusters != b.SmallClusters {
		t.Fatalf("cluster counts (%d,%d) vs (%d,%d)", a.FixedClusters, a.SmallClusters, b.FixedClusters, b.SmallClusters)
	}
	if math.Float64bits(a.OverallCoverage) != math.Float64bits(b.OverallCoverage) {
		t.Fatalf("overall coverage %v vs %v", a.OverallCoverage, b.OverallCoverage)
	}
	if !reflect.DeepEqual(a.Coverage, b.Coverage) {
		t.Fatalf("coverage %v vs %v", a.Coverage, b.Coverage)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatalf("samples differ: %d/%d/%d vs %d/%d/%d",
			len(a.Samples[Computation]), len(a.Samples[Communication]), len(a.Samples[IOClass]),
			len(b.Samples[Computation]), len(b.Samples[Communication]), len(b.Samples[IOClass]))
	}
	if !reflect.DeepEqual(a.Regions, b.Regions) {
		t.Fatalf("regions differ: %d vs %d", len(a.Regions), len(b.Regions))
	}
	if len(a.Maps) != len(b.Maps) {
		t.Fatalf("map count %d vs %d", len(a.Maps), len(b.Maps))
	}
	for c := 0; c < numClasses; c++ {
		identicalHeatMap(t, Class(c), a.Maps[Class(c)], b.Maps[Class(c)])
	}
}

// equivGraph exercises the slicer's corner cases: Start ties across
// ranks, zero-elapsed fragments, fragments straddling window edges,
// vertices carrying mixed classes, an element whose span envelope has a
// gap, and an element entirely outside most windows.
func equivGraph() *stg.Graph {
	g := stg.New()
	// Dense comp edge: ties and near-identical workloads.
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 40; i++ {
			el := int64(1_000_000 + (i%3)*1000)
			if rank == 2 && i >= 20 && i < 30 {
				el *= 3 // variance region
			}
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start:   int64(i) * 2_000_000, // exact ties across ranks
				Elapsed: el,
				Counters: trace.CountersView{
					TotIns: uint64(5_000_000 + i%7),
				},
			})
		}
	}
	// Zero-elapsed and straddling fragments on a second edge.
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 12; i++ {
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 2, State: 3,
				Start:   int64(i)*7_000_000 + 3_500_000, // straddles 10ms window edges
				Elapsed: int64(i%2) * 9_000_000,         // half are zero-elapsed
				Counters: trace.CountersView{
					TotIns: uint64(3_000_000 + i%5),
				},
			})
		}
	}
	// Mixed-class vertex: comm and IO fragments on one state.
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 10; i++ {
			k := trace.Comm
			if i%2 == 0 {
				k = trace.IO
			}
			g.Add(trace.Fragment{
				Rank: rank, Kind: k, State: 3,
				Start:   int64(i)*8_000_000 + int64(rank),
				Elapsed: 400_000 + int64(i%4)*1000,
				Args:    trace.Args{Op: trace.Op("Allreduce"), Bytes: 1 << 14},
			})
		}
	}
	// Bounds-gap element: activity only at the run's two ends.
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 6; i++ {
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Sync, State: 9,
				Start:   int64(i%2) * 76_000_000, // 0 or 76ms, nothing between
				Elapsed: 300_000,
			})
		}
	}
	// Element outside most windows.
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 8; i++ {
			g.Add(trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 9, State: 10,
				Start:   74_000_000 + int64(i)*200_000,
				Elapsed: 150_000,
			})
		}
	}
	return g
}

// TestPrepWindowEquivalence: the prep-sliced pass must be bit-identical
// to the direct per-window normalization, for the whole run and for
// sliding windows (including empty and partially covered ones), at
// sequential and parallel settings.
func TestPrepWindowEquivalence(t *testing.T) {
	g := equivGraph()
	opt := DefaultOptions()
	opt.Window = 10 * sim.Millisecond
	opt.Cluster.MinFragments = 4

	for _, par := range []int{1, 4} {
		opt.Parallelism = par
		an := NewAnalyzer()
		refCache := cluster.NewCache()

		got := an.Run(g, 4, opt)
		want := referenceRun(refCache, g, 4, opt, math.MinInt64, math.MaxInt64, 0)
		identicalResult(t, got, want)

		// Sliding windows, 10ms stride over a 90ms span plus windows
		// fully before/after the data.
		for start := int64(-20_000_000); start < 100_000_000; start += 10_000_000 {
			end := start + 20_000_000
			got := an.RunWindow(g, 4, opt, start, end)
			want := referenceRun(refCache, g, 4, opt, start, end, start)
			identicalResult(t, got, want)
		}
	}
}

// TestPrepEquivalenceAfterGrowth re-checks equivalence after elements
// grow (the online monitor's situation: preps must invalidate on
// version bumps, not serve stale samples).
func TestPrepEquivalenceAfterGrowth(t *testing.T) {
	g := equivGraph()
	opt := DefaultOptions()
	opt.Window = 10 * sim.Millisecond
	opt.Cluster.MinFragments = 4
	an := NewAnalyzer()

	check := func() {
		t.Helper()
		refCache := cluster.NewCache()
		for start := int64(0); start < 90_000_000; start += 10_000_000 {
			got := an.RunWindow(g, 4, opt, start, start+20_000_000)
			want := referenceRun(refCache, g, 4, opt, start, start+20_000_000, start)
			identicalResult(t, got, want)
		}
	}
	check()
	// Grow one edge and one vertex, then re-check against a fresh
	// reference.
	for rank := 0; rank < 4; rank++ {
		g.Add(trace.Fragment{
			Rank: rank, Kind: trace.Comp, From: 1, State: 2,
			Start: 80_000_000 + int64(rank), Elapsed: 1_000_000,
			Counters: trace.CountersView{TotIns: 5_000_001},
		})
		g.Add(trace.Fragment{
			Rank: rank, Kind: trace.Comm, State: 3,
			Start: 82_000_000 + int64(rank), Elapsed: 500_000,
			Args: trace.Args{Op: trace.Op("Allreduce"), Bytes: 1 << 14},
		})
	}
	check()
}
