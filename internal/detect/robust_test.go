package detect

import (
	"math"
	"testing"
	"testing/quick"

	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Robustness: detection must survive arbitrary fragment streams without
// panicking and with its invariants intact. This is the
// failure-injection net for the analysis plane: whatever a buggy or
// malicious client ships, the server must not fall over.
func TestDetectRobustAgainstRandomStreams(t *testing.T) {
	f := func(seed uint64, ranks8 uint8) bool {
		rng := sim.NewRNG(seed)
		ranks := int(ranks8%16) + 1
		g := stg.New()
		n := rng.Intn(400)
		for i := 0; i < n; i++ {
			fr := trace.Fragment{
				Rank:    rng.Intn(ranks*2) - ranks/2, // includes out-of-range ranks
				Kind:    trace.Kind(rng.Intn(6)),     // includes invalid kinds
				From:    rng.Uint64() % 5,
				State:   rng.Uint64() % 5,
				Start:   int64(rng.Intn(1_000_000_000)) - 1000, // includes negatives
				Elapsed: int64(rng.Intn(10_000_000)) - 100,     // includes negatives
				Counters: trace.CountersView{
					TotIns: rng.Uint64() % 1_000_000,
					Cycles: rng.Uint64() % 500_000,
				},
				Args: trace.Args{Bytes: rng.Intn(1 << 20), Peer: rng.Intn(8) - 2, Tag: rng.Intn(4)},
			}
			g.Add(fr)
		}
		res := Run(g, ranks, Options{Window: sim.Millisecond, Threshold: 0.85})
		// Invariants: perf in (0,1] or exactly 1 for degenerate input;
		// coverage in [0,1]; regions within grid bounds.
		for _, samples := range res.Samples {
			for _, s := range samples {
				if s.Perf <= 0 || s.Perf > 1 || math.IsNaN(s.Perf) {
					return false
				}
			}
		}
		if res.OverallCoverage < 0 || res.OverallCoverage > 1 {
			return false
		}
		for _, reg := range res.Regions {
			if reg.RankMin < 0 || reg.RankMax >= ranks || reg.WinMin < 0 || reg.WinMax < reg.WinMin {
				return false
			}
			if reg.MeanPerf < 0 || reg.MeanPerf > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
