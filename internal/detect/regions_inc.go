package detect

import (
	"math"
	"slices"
	"sort"
)

// Incremental region growing: the monitor's overlapped windows re-run
// region growing over heat maps that mostly repeat the previous
// window's cells (shifted by the window advance). Carrying a region
// forward is sound on pure grid evidence: a 4-connected component of
// sub-threshold cells is a function of the low() grid alone, so if all
// of a previous region's cells map into the new grid bit-unchanged
// (value and staleness — `!`-stale flips from outage accounting count
// as changes) and none of their 4-neighbors changed, the new grid
// contains exactly the same component. Its BFS visit order is
// shift-invariant (row-major seed, FIFO queue, fixed neighbor order),
// so the carried MeanPerf is bit-identical too. Everything else — new
// columns, changed cells, components that touched them, and components
// too small to have been recorded — re-grows through the normal
// row-major scan over the not-yet-seen cells, and the two lists merge
// by seed index, which reproduces the batch discovery order exactly.
// Region samples and LossNS are always re-attached from the current
// window's sample set (they are window-dependent and cheap relative to
// resident data).

// regionCarryState is one class's carry-over from the previous pass.
type regionCarryState struct {
	origin    int64
	window    int64
	ranks     int
	windows   int
	threshold float64
	minCells  int
	cells     []float64
	stale     []bool
	regions   []carriedRegion
}

// carriedRegion is a recorded region in its grid's coordinates. cells
// is the BFS visit order, so cells[0] is the region's seed (the
// smallest row-major member, which fixes discovery order).
type carriedRegion struct {
	rankMin, rankMax int
	winMin, winMax   int
	meanPerf         float64
	cells            []int32
}

func (s *regionCarryState) staleAt(idx int32) bool {
	return s.stale != nil && s.stale[idx]
}

// growRegionsFor dispatches between the carrying pass and the batch
// reference, keeping the per-class carry state coherent with the
// escape hatches (a disabled pass clears it so nothing stale is ever
// consulted after re-enabling).
func (a *Analyzer) growRegionsFor(class Class, h *HeatMap, samples []Sample, opt Options) []Region {
	c := int(class)
	if opt.DisableIncremental || opt.DisableIncrementalRegions {
		a.regionCarry[c] = nil
		return growRegions(h, samples, opt)
	}
	return a.growRegionsInc(c, h, samples, opt)
}

// growRegionsInc is growRegions with carry-over. It runs inside the
// stage-2 per-class fan-out; each class owns its regionCarry slot, so
// the workers never share state.
func (a *Analyzer) growRegionsInc(c int, h *HeatMap, samples []Sample, opt Options) []Region {
	regions, next, carried, regrown := growRegionsCarry(a.regionCarry[c], h, samples, opt)
	if met := a.met; met != nil {
		met.RegionCellsCarried.Add(carried)
		met.RegionCellsRegrown.Add(regrown)
	}
	a.regionCarry[c] = next
	return regions
}

// growRegionsCarry is the carry-over core shared by the per-class
// analyzer slots and the spatial merger's per-class merge state: grow
// regions over h, carrying forward every previous region whose cells
// (and 4-neighborhood) are bit-unchanged after the origin shift, and
// return the next carry basis plus the carried/regrown cell counts for
// the instrumentation.
func growRegionsCarry(prev *regionCarryState, h *HeatMap, samples []Sample, opt Options) (regions []Region, next *regionCarryState, carried, regrown uint64) {
	seen := make([]bool, len(h.Cells))

	// The carry is usable only when the grids are commensurable: same
	// rank axis, same bucket width, same thresholds, and an origin
	// advance that is a whole number of buckets (otherwise old cells
	// straddle new ones and nothing can be compared).
	var shift int
	usable := prev != nil && prev.ranks == h.Ranks && prev.window == int64(h.Window) &&
		prev.threshold == opt.Threshold && prev.minCells == opt.MinRegionCells
	if usable {
		d := int64(h.Origin) - prev.origin
		if d%int64(h.Window) != 0 {
			usable = false
		} else {
			shift = int(d / int64(h.Window))
		}
	}

	type placed struct {
		reg   Region
		cells []int32 // new-grid coordinates, BFS order
	}
	var kept []placed

	if usable {
		// changed[ni]: the new cell has no bit-identical counterpart in
		// the previous grid (value or staleness moved, or the column is
		// new). Regions touching any changed cell re-grow.
		changed := make([]bool, len(h.Cells))
		for r := 0; r < h.Ranks; r++ {
			for w := 0; w < h.Windows; w++ {
				ni := int32(r*h.Windows + w)
				ow := w + shift
				if ow < 0 || ow >= prev.windows {
					changed[ni] = true
					continue
				}
				oi := int32(r*prev.windows + ow)
				if math.Float64bits(prev.cells[oi]) != math.Float64bits(h.Cells[ni]) ||
					prev.staleAt(oi) != h.StaleAt(r, w) {
					changed[ni] = true
				}
			}
		}
	carry:
		for _, pr := range prev.regions {
			newCells := make([]int32, len(pr.cells))
			for i, oc := range pr.cells {
				or, ow := int(oc)/prev.windows, int(oc)%prev.windows
				nw := ow - shift
				if nw < 0 || nw >= h.Windows {
					continue carry
				}
				ni := int32(or*h.Windows + nw)
				if changed[ni] {
					continue carry
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nr2, nw2 := or+d[0], nw+d[1]
					if nr2 < 0 || nr2 >= h.Ranks || nw2 < 0 || nw2 >= h.Windows {
						continue
					}
					if changed[nr2*h.Windows+nw2] {
						continue carry
					}
				}
				newCells[i] = ni
			}
			for _, ni := range newCells {
				seen[ni] = true
			}
			kept = append(kept, placed{
				reg: Region{
					Class:    h.Class,
					RankMin:  pr.rankMin,
					RankMax:  pr.rankMax,
					WinMin:   pr.winMin - shift,
					WinMax:   pr.winMax - shift,
					Cells:    len(pr.cells),
					MeanPerf: pr.meanPerf,
				},
				cells: newCells,
			})
			carried += uint64(len(pr.cells))
		}
	}

	// Re-grow everything not claimed by a carried region: the batch
	// row-major scan and BFS, skipping seen cells. Components too small
	// for MinRegionCells are visited and discarded exactly as in batch.
	low := func(r, w int) bool {
		if h.StaleAt(r, w) {
			return false
		}
		v := h.At(r, w)
		return !math.IsNaN(v) && v < opt.Threshold
	}
	for r := 0; r < h.Ranks; r++ {
		for w := 0; w < h.Windows; w++ {
			idx := r*h.Windows + w
			if seen[idx] || !low(r, w) {
				continue
			}
			reg := Region{Class: h.Class, RankMin: r, RankMax: r, WinMin: w, WinMax: w}
			queue := []int{idx}
			seen[idx] = true
			var perfSum float64
			var cells []int32
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				cr, cw := cur/h.Windows, cur%h.Windows
				reg.Cells++
				perfSum += h.At(cr, cw)
				cells = append(cells, int32(cur))
				if cr < reg.RankMin {
					reg.RankMin = cr
				}
				if cr > reg.RankMax {
					reg.RankMax = cr
				}
				if cw < reg.WinMin {
					reg.WinMin = cw
				}
				if cw > reg.WinMax {
					reg.WinMax = cw
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nr, nw := cr+d[0], cw+d[1]
					if nr < 0 || nr >= h.Ranks || nw < 0 || nw >= h.Windows {
						continue
					}
					ni := nr*h.Windows + nw
					if !seen[ni] && low(nr, nw) {
						seen[ni] = true
						queue = append(queue, ni)
					}
				}
			}
			regrown += uint64(reg.Cells)
			if reg.Cells < opt.MinRegionCells {
				continue
			}
			reg.MeanPerf = perfSum / float64(reg.Cells)
			kept = append(kept, placed{reg: reg, cells: cells})
		}
	}

	// Discovery order: the batch scan finds each component at its
	// smallest row-major cell, which is cells[0] for both carried and
	// re-grown regions.
	sort.Slice(kept, func(i, j int) bool { return kept[i].cells[0] < kept[j].cells[0] })

	regions = make([]Region, len(kept))
	for i := range kept {
		regions[i] = kept[i].reg
	}
	// Attach member samples and quantify loss — always from the current
	// window's samples (identical to the batch attach loop).
	attachSamples(regions, h, samples)

	// Record this pass as the next window's carry basis.
	ns := &regionCarryState{
		origin:    int64(h.Origin),
		window:    int64(h.Window),
		ranks:     h.Ranks,
		windows:   h.Windows,
		threshold: opt.Threshold,
		minCells:  opt.MinRegionCells,
		cells:     slices.Clone(h.Cells),
		regions:   make([]carriedRegion, len(kept)),
	}
	if h.Stale != nil {
		ns.stale = slices.Clone(h.Stale)
	}
	for i, k := range kept {
		ns.regions[i] = carriedRegion{
			rankMin:  k.reg.RankMin,
			rankMax:  k.reg.RankMax,
			winMin:   k.reg.WinMin,
			winMax:   k.reg.WinMax,
			meanPerf: k.reg.MeanPerf,
			cells:    k.cells,
		}
	}
	return regions, ns, carried, regrown
}
