package detect

import (
	"cmp"
	"math"
	"slices"

	"vapro/internal/cluster"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// advance patches the memoized prep with an append-only clustering
// delta, in place, and reports whether it could. False means the caller
// must rebuild: the delta is unstructured (Full), it advances from a
// different generation than the prep holds, the element is multi-class,
// the options moved, or a consistency check failed.
//
// The patch mirrors what buildPrep would compute, piece by piece:
//
//   - clusters before Delta.Prefix: their sample spans are block-copied
//     (nothing about them changed — membership, best, coverage, index);
//   - clusters after the re-aligned cut: block-copied too, with only
//     the cluster index in each sample adjusted when the cluster count
//     shifted;
//   - grown clusters (DirtyRun.OldIndex >= 0): merge-copied. The
//     fastest member is monotone — it can only improve — so kept
//     samples are renormalized only when a new member actually beat
//     it. Per-rank counts are monotone too, so a rank crosses the
//     coverage threshold at most once; kept samples of crossing ranks
//     flip Covered, everything else keeps its bits;
//   - rebuilt clusters (OldIndex < 0) and clusters newly grown into
//     emission run the fresh per-member walk, but only over their own
//     members.
//
// The span indexes are then extended by a position remap + sorted merge
// (old entries keep their (start, position-ascending) order under the
// remap because surviving samples never reorder) instead of re-sorting
// the whole population. Every piece lands bit-identical to a rebuild —
// pinned by the analyzer equivalence fuzz.
func (p *prepElem) advance(frags []trace.Fragment, cl cluster.Result, d cluster.Delta, opt Options, gen stg.Gen) bool {
	if p.storeMode() {
		if opt.DisableSampleStore {
			return false // representation mismatch: rebuild flat
		}
		return p.advanceStore(frags, cl, d, opt, gen)
	}
	if d.Full || !p.singleClass || p.cstate == nil || p.copt != opt.Cluster || d.From != p.gen {
		return false
	}
	oldN := p.nfrags
	nn := len(frags)
	if nn <= oldN || len(cl.Assign) != nn {
		return false
	}
	class := p.class
	for i := oldN; i < nn; i++ {
		if ClassOf(frags[i].Kind) != class {
			return false
		}
	}
	minFrag := opt.Cluster.MinFragments
	if minFrag <= 0 {
		minFrag = 5
	}
	oldNC := len(p.cstate)
	newNC := len(cl.Clusters)
	if len(p.spanOff) != oldNC+1 ||
		d.Prefix < 0 || d.Prefix > d.TailNew || d.TailNew > newNC ||
		d.Prefix > d.TailOld || d.TailOld > oldNC ||
		d.TailNew-d.Prefix != len(d.Dirty) ||
		newNC-d.TailNew != oldNC-d.TailOld {
		return false
	}
	old := p.samples[class]
	// Validate every grown run against the old spans before touching
	// any shared state (the per-rank maps are mutated in place below).
	for di, dr := range d.Dirty {
		if dr.OldIndex < 0 {
			continue
		}
		if dr.OldIndex < d.Prefix || dr.OldIndex >= d.TailOld {
			return false
		}
		cc := &cl.Clusters[d.Prefix+di]
		spanLen := int(p.spanOff[dr.OldIndex+1] - p.spanOff[dr.OldIndex])
		os := &p.cstate[dr.OldIndex]
		if os.emitted {
			if spanLen != len(cc.Members)-len(dr.AddedPos) {
				return false
			}
		} else if spanLen != 0 {
			return false
		}
	}

	prefixEnd := int(p.spanOff[d.Prefix])
	tailOldPos := int(p.spanOff[d.TailOld])
	newSamples := make([]Sample, 0, len(old)+(nn-oldN))
	newSpan := make([]int32, newNC+1)
	newState := make([]clustState, newNC)
	// dirtyRemap maps an old sample position in the dirty region to its
	// new position, -1 when the sample's cluster was rebuilt (its new
	// emission is recorded in fresh instead).
	dirtyRemap := make([]int32, tailOldPos-prefixEnd)
	for i := range dirtyRemap {
		dirtyRemap[i] = -1
	}
	// fresh collects index entries for samples that are new or were
	// re-emitted (anything not reachable through the remap).
	type freshEnt struct {
		pos            int32
		start, elapsed int64
		covered        bool
	}
	var fresh []freshEnt

	newSamples = append(newSamples, old[:prefixEnd]...)
	copy(newSpan, p.spanOff[:d.Prefix+1])
	copy(newState, p.cstate[:d.Prefix])

	// emitCluster is buildPrep's per-cluster walk, scoped to one
	// cluster: recompute state and (when fixed with a valid best) emit
	// all members.
	emitCluster := func(ci int, cc *cluster.Cluster) {
		st := clustState{perRank: make(map[int]int, 8)}
		best := int64(math.MaxInt64)
		for _, m := range cc.Members {
			st.perRank[frags[m].Rank]++
			if e := frags[m].Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if !cc.Fixed {
			st.perRank = nil // buildPrep doesn't track small clusters
			newState[ci] = st
			return
		}
		if best == math.MaxInt64 {
			newState[ci] = st
			return
		}
		st.emitted, st.best = true, best
		for _, m := range cc.Members {
			f := &frags[m]
			covered := st.perRank[f.Rank] >= minFrag
			if covered {
				st.fixedNS += f.Elapsed
			}
			perf := 1.0
			if f.Elapsed > 0 {
				perf = float64(best) / float64(f.Elapsed)
			}
			ref := p.ref
			ref.Cluster = ci
			fresh = append(fresh, freshEnt{int32(len(newSamples)), f.Start, f.Elapsed, covered})
			newSamples = append(newSamples, Sample{
				Rank:       f.Rank,
				Start:      f.Start,
				Elapsed:    f.Elapsed,
				Perf:       perf,
				Covered:    covered,
				ClusterRef: ref,
				FragIndex:  m,
			})
		}
		newState[ci] = st
	}

	for di, dr := range d.Dirty {
		ci := d.Prefix + di
		cc := &cl.Clusters[ci]
		newSpan[ci] = int32(len(newSamples))
		if dr.OldIndex < 0 || !p.cstate[dr.OldIndex].emitted || !cc.Fixed {
			// Rebuilt composition, or a cluster whose old emission
			// state can't be extended (was small or had no valid best):
			// walk its members afresh.
			emitCluster(ci, cc)
			continue
		}
		// Grown emitted cluster: merge-copy.
		os := p.cstate[dr.OldIndex]
		st := os // shares (and intentionally updates) the perRank map
		var crossed map[int]bool
		for _, ap := range dr.AddedPos {
			f := &frags[cc.Members[ap]]
			n := st.perRank[f.Rank] + 1
			st.perRank[f.Rank] = n
			if n == minFrag {
				if crossed == nil {
					crossed = make(map[int]bool, 2)
				}
				crossed[f.Rank] = true
			}
			if e := f.Elapsed; e > 0 && e < st.best {
				st.best = e
			}
		}
		bestChanged := st.best != os.best
		oldSpan := old[p.spanOff[dr.OldIndex]:p.spanOff[dr.OldIndex+1]]
		base := int(p.spanOff[dr.OldIndex]) - prefixEnd
		st.fixedNS = 0
		oi, ai := 0, 0
		for mp := range cc.Members {
			if ai < len(dr.AddedPos) && int(dr.AddedPos[ai]) == mp {
				m := cc.Members[mp]
				f := &frags[m]
				covered := st.perRank[f.Rank] >= minFrag
				if covered {
					st.fixedNS += f.Elapsed
				}
				perf := 1.0
				if f.Elapsed > 0 {
					perf = float64(st.best) / float64(f.Elapsed)
				}
				ref := p.ref
				ref.Cluster = ci
				fresh = append(fresh, freshEnt{int32(len(newSamples)), f.Start, f.Elapsed, covered})
				newSamples = append(newSamples, Sample{
					Rank:       f.Rank,
					Start:      f.Start,
					Elapsed:    f.Elapsed,
					Perf:       perf,
					Covered:    covered,
					ClusterRef: ref,
					FragIndex:  m,
				})
				ai++
				continue
			}
			s := oldSpan[oi]
			if bestChanged {
				s.Perf = 1.0
				if s.Elapsed > 0 {
					s.Perf = float64(st.best) / float64(s.Elapsed)
				}
			}
			if crossed != nil && !s.Covered && crossed[s.Rank] {
				s.Covered = true
			}
			if s.Covered {
				st.fixedNS += s.Elapsed
			}
			s.ClusterRef.Cluster = ci
			dirtyRemap[base+oi] = int32(len(newSamples))
			newSamples = append(newSamples, s)
			oi++
		}
		newState[ci] = st
	}

	// Preserved tail: block copy, adjusting only the cluster index.
	tailNewPos := len(newSamples)
	posDelta := tailNewPos - tailOldPos
	shift := d.TailNew - d.TailOld
	if shift == 0 {
		newSamples = append(newSamples, old[tailOldPos:]...)
	} else {
		for _, s := range old[tailOldPos:] {
			s.ClusterRef.Cluster += shift
			newSamples = append(newSamples, s)
		}
	}
	copy(newState[d.TailNew:], p.cstate[d.TailOld:])
	for j := d.TailOld; j <= oldNC; j++ {
		newSpan[d.TailNew+j-d.TailOld] = p.spanOff[j] + int32(posDelta)
	}

	// Scalar aggregates. Covered time is the sum of per-cluster state;
	// the class totals just extend.
	p.fixedAll[class] = 0
	p.fixedClusters, p.smallClusters = 0, 0
	for ci := range cl.Clusters {
		p.fixedAll[class] += newState[ci].fixedNS
		if cl.Clusters[ci].Fixed {
			p.fixedClusters++
		} else {
			p.smallClusters++
		}
	}
	for i := oldN; i < nn; i++ {
		p.totalAll[class] += frags[i].Elapsed
	}

	// Fragment index: positions are fragment indexes (single class), so
	// old entries are untouched — merge in the new tail, sorted.
	{
		add := make([]freshEnt, 0, nn-oldN)
		for i := oldN; i < nn; i++ {
			add = append(add, freshEnt{pos: int32(i), start: frags[i].Start, elapsed: frags[i].Elapsed})
		}
		slices.SortStableFunc(add, func(a, b freshEnt) int { return cmp.Compare(a.start, b.start) })
		fi := &p.fragIdx[class]
		mergedOrder := make([]int32, 0, nn)
		mergedStarts := make([]int64, 0, nn)
		mergedElapsed := make([]int64, 0, nn)
		maxEl := fi.maxElapsed
		i, j := 0, 0
		for i < len(fi.starts) || j < len(add) {
			// Old positions are always smaller than appended ones, so
			// on equal starts the old entry keeps the earlier slot.
			if j >= len(add) || (i < len(fi.starts) && fi.starts[i] <= add[j].start) {
				mergedOrder = append(mergedOrder, fi.order[i])
				mergedStarts = append(mergedStarts, fi.starts[i])
				mergedElapsed = append(mergedElapsed, fi.elapsed[i])
				i++
			} else {
				mergedOrder = append(mergedOrder, add[j].pos)
				mergedStarts = append(mergedStarts, add[j].start)
				mergedElapsed = append(mergedElapsed, add[j].elapsed)
				if add[j].elapsed > maxEl {
					maxEl = add[j].elapsed
				}
				j++
			}
		}
		p.fragIdx[class] = spanIndex{order: mergedOrder, starts: mergedStarts, elapsed: mergedElapsed, maxElapsed: maxEl}
	}

	// Sample index: remap surviving old entries (the remap is monotone,
	// so their (start, position) order is preserved), drop entries of
	// re-emitted samples, and merge with the fresh entries. maxElapsed
	// may overstate after drops — harmless, candidates() only uses it
	// as a lower bound and every candidate is re-checked exactly.
	{
		slices.SortStableFunc(fresh, func(a, b freshEnt) int { return cmp.Compare(a.start, b.start) })
		si := &p.sampleIdx[class]
		n2 := len(newSamples)
		mergedOrder := make([]int32, 0, n2)
		mergedStarts := make([]int64, 0, n2)
		mergedElapsed := make([]int64, 0, n2)
		mergedCovered := make([]bool, 0, n2)
		maxEl := si.maxElapsed
		for _, f := range fresh {
			if f.elapsed > maxEl {
				maxEl = f.elapsed
			}
		}
		remap := func(op int32) int32 {
			switch {
			case int(op) < prefixEnd:
				return op
			case int(op) >= tailOldPos:
				return op + int32(posDelta)
			default:
				return dirtyRemap[int(op)-prefixEnd]
			}
		}
		i, j := 0, 0
		for i < len(si.starts) || j < len(fresh) {
			var np int32 = -1
			if i < len(si.starts) {
				np = remap(si.order[i])
				if np < 0 {
					i++ // sample was re-emitted; its fresh entry covers it
					continue
				}
			}
			takeOld := j >= len(fresh)
			if !takeOld && i < len(si.starts) {
				if si.starts[i] != fresh[j].start {
					takeOld = si.starts[i] < fresh[j].start
				} else {
					takeOld = np < fresh[j].pos
				}
			}
			if takeOld {
				mergedOrder = append(mergedOrder, np)
				mergedStarts = append(mergedStarts, si.starts[i])
				mergedElapsed = append(mergedElapsed, si.elapsed[i])
				mergedCovered = append(mergedCovered, newSamples[np].Covered)
				i++
			} else {
				f := fresh[j]
				mergedOrder = append(mergedOrder, f.pos)
				mergedStarts = append(mergedStarts, f.start)
				mergedElapsed = append(mergedElapsed, f.elapsed)
				mergedCovered = append(mergedCovered, f.covered)
				j++
			}
		}
		p.sampleIdx[class] = spanIndex{
			order: mergedOrder, starts: mergedStarts, elapsed: mergedElapsed,
			covered: mergedCovered, maxElapsed: maxEl,
		}
	}

	p.samples[class] = newSamples
	p.spanOff = newSpan
	p.cstate = newState
	p.gen = gen
	p.nfrags = nn
	return true
}
