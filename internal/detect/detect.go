// Package detect implements §3.5: performance variance detection over
// fixed-workload fragments. Per cluster, every fragment's performance
// is normalized against the fastest member (1.0 = best); normalized
// values from all clusters are merged — weighted by elapsed time — into
// per-rank, per-window series separately for computation, communication
// and IO; a region-growing pass over the resulting heat map locates
// contiguous low-performance regions and quantifies their impact.
package detect

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vapro/internal/cluster"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Options configures detection.
type Options struct {
	// Cluster configures the fixed-workload identification.
	Cluster cluster.Options
	// Window is the heat-map time bucket width.
	Window sim.Duration
	// Threshold is the normalized performance below which a cell is a
	// variance candidate (paper: 0.85).
	Threshold float64
	// MinRegionCells discards regions smaller than this many heat-map
	// cells (single-cell blips are usually PMU noise).
	MinRegionCells int
	// Parallelism caps the analysis worker pool: the per-element
	// cluster+normalize stage and the per-class heat-map/region passes
	// fan out across this many goroutines. 0 means GOMAXPROCS, 1 forces
	// the sequential reference path. The result is identical at any
	// setting (elements are sharded and merged in deterministic order).
	Parallelism int
	// Outages are known per-rank data-loss intervals (from the wire
	// transport's sequence-gap accounting). Heat-map cells they cover
	// are marked stale: a rank that went silent because its batches were
	// lost must not be read as fast or slow there, and stale cells never
	// seed or join variance regions.
	Outages []Outage
	// DisableIncremental forces the batch analysis path: every element
	// generation change re-clusters and re-normalizes from scratch.
	// Results are bit-identical either way; this exists to benchmark
	// the incremental plane against its baseline and as an escape
	// hatch. It is the master switch — it also disables the chunked
	// sample store and incremental region growing below.
	DisableIncremental bool
	// DisableSampleStore forces the flat prep representation: sample
	// populations are kept as contiguous per-class arrays rebuilt (or
	// merge-patched) per advance instead of the chunked append-only
	// store. Results are bit-identical either way.
	DisableSampleStore bool
	// DisableIncrementalRegions forces region growing to run from
	// scratch every window instead of carrying unchanged regions over
	// from the previous window's overlap. Results are bit-identical
	// either way.
	DisableIncrementalRegions bool
}

// Outage is one rank's data-loss interval in virtual time: batches
// covering [Start, End) ns were sent but never delivered.
type Outage struct {
	Rank       int
	Start, End int64
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Cluster:        cluster.DefaultOptions(),
		Window:         500 * sim.Millisecond,
		Threshold:      0.85,
		MinRegionCells: 1,
	}
}

// Class selects which fragment population a heat map describes.
type Class int

// Heat-map classes, reported separately as the paper does.
const (
	Computation Class = iota
	Communication
	IOClass
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Computation:
		return "computation"
	case Communication:
		return "communication"
	default:
		return "io"
	}
}

// ClassOf maps a fragment kind to its heat-map class.
func ClassOf(k trace.Kind) Class {
	switch k {
	case trace.Comp, trace.Probe:
		return Computation
	case trace.IO:
		return IOClass
	default:
		return Communication
	}
}

// Sample is one normalized-performance observation.
type Sample struct {
	Rank    int
	Start   int64 // ns
	Elapsed int64 // ns
	Perf    float64
	// Covered marks samples whose snippet repeats within their own
	// rank (the coverage rule); samples that exist only through
	// cross-rank pooling (an init phase, HPL's once-per-rank panels)
	// still support inter-process detection but should be excluded
	// from temporal loss metrics.
	Covered bool
	// ClusterRef identifies the owning cluster for diagnosis drill-down.
	ClusterRef ClusterRef
	// FragIndex indexes the fragment inside its edge/vertex fragment
	// slice.
	FragIndex int
}

// ClusterRef names a cluster: the STG element plus the cluster index.
type ClusterRef struct {
	IsEdge  bool
	Edge    trace.EdgeKey
	Vertex  uint64
	Cluster int
}

// sampleLess is the total order the per-class sample streams are
// sorted by before the heat-map and region passes: Start first, ties
// broken by owning element (edges before vertices, then key) and
// fragment index. Start alone is not a total order — exact ties across
// ranks are routine in lockstep SPMD phases — and under a partial key
// the tie order would depend on the pre-sort emission order, which the
// grow-only trailing-append Members representation no longer pins to
// the batch plane's canonical order. The total key makes the sorted
// stream — and everything folded over it: heat-map cells, region
// growing, carried-region equality — a pure function of the sample
// multiset, which is exactly the order-insensitivity the cluster
// layer's lazy members contract provides.
func sampleLess(a, b *Sample) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	ra, rb := &a.ClusterRef, &b.ClusterRef
	if ra.IsEdge != rb.IsEdge {
		return ra.IsEdge
	}
	if ra.Edge != rb.Edge {
		if ra.Edge.From != rb.Edge.From {
			return ra.Edge.From < rb.Edge.From
		}
		return ra.Edge.To < rb.Edge.To
	}
	if ra.Vertex != rb.Vertex {
		return ra.Vertex < rb.Vertex
	}
	return a.FragIndex < b.FragIndex
}

// sortSamples sorts one class's merged samples by sampleLess.
func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool { return sampleLess(&samples[i], &samples[j]) })
}

// HeatMap is a rank × window grid of weighted-average normalized
// performance. Cells with no observations hold NaN.
type HeatMap struct {
	Class   Class
	Ranks   int
	Windows int
	Window  sim.Duration
	Origin  sim.Time
	// Cells is row-major: Cells[rank*Windows + win].
	Cells []float64
	// Stale marks cells covered by a known data-loss interval (nil when
	// no outages were reported). Same row-major layout as Cells. A stale
	// cell is neither fast nor slow — the rank's data for that span was
	// lost in transit — so it is excluded from region growing and
	// rendered distinctly.
	Stale []bool
}

// At returns the cell value (NaN if empty).
func (h *HeatMap) At(rank, win int) float64 { return h.Cells[rank*h.Windows+win] }

// StaleAt reports whether the cell lies in a known data-loss interval.
func (h *HeatMap) StaleAt(rank, win int) bool {
	return h.Stale != nil && h.Stale[rank*h.Windows+win]
}

// markStale flags every cell an outage interval touches. Zero-length
// outages (loss at a rank's high-water mark with no later data yet)
// mark the single cell containing their start.
func (h *HeatMap) markStale(outages []Outage) {
	for _, o := range outages {
		if o.Rank < 0 || o.Rank >= h.Ranks {
			continue
		}
		end := o.End
		if end <= o.Start {
			end = o.Start + 1
		}
		w0 := int((o.Start - int64(h.Origin)) / int64(h.Window))
		w1 := int((end - 1 - int64(h.Origin)) / int64(h.Window))
		if w1 < 0 || w0 >= h.Windows {
			continue
		}
		if w0 < 0 {
			w0 = 0
		}
		if w1 >= h.Windows {
			w1 = h.Windows - 1
		}
		if h.Stale == nil {
			h.Stale = make([]bool, len(h.Cells))
		}
		for w := w0; w <= w1; w++ {
			h.Stale[o.Rank*h.Windows+w] = true
		}
	}
}

// Region is a contiguous low-performance area found by region growing.
type Region struct {
	Class    Class
	RankMin  int
	RankMax  int
	WinMin   int
	WinMax   int
	Cells    int
	MeanPerf float64
	// LossNS is the quantified performance loss: Σ (1-perf)·elapsed
	// over the member samples, in ns of lost time.
	LossNS int64
	// Samples are the member observations (for diagnosis).
	Samples []Sample
}

// StartTime returns the virtual start of the region.
func (r *Region) StartTime(h *HeatMap) sim.Time {
	return h.Origin.Add(sim.Duration(r.WinMin) * h.Window)
}

// EndTime returns the virtual end of the region.
func (r *Region) EndTime(h *HeatMap) sim.Time {
	return h.Origin.Add(sim.Duration(r.WinMax+1) * h.Window)
}

// Result is the outcome of a detection pass.
type Result struct {
	Maps    map[Class]*HeatMap
	Regions []Region
	// Samples per class (time-ordered), the raw normalized series.
	Samples map[Class][]Sample
	// Coverage is the fraction of total observed time attributable to
	// repeated fixed-workload fragments, per class and overall (§6.2).
	Coverage map[Class]float64
	// TotalTimeNS / FixedTimeNS are the raw per-class elapsed-time sums
	// behind Coverage. Exposed so the spatial merger can combine
	// per-shard results into coverage figures identical to one global
	// pass (summing exact int64 partials instead of averaging floats).
	TotalTimeNS map[Class]int64
	FixedTimeNS map[Class]int64
	// OverallCoverage weights classes by their total time.
	OverallCoverage float64
	// FixedClusters / SmallClusters count cluster populations.
	FixedClusters, SmallClusters int
}

// Analyzer runs detection passes that share one memoized clustering
// layer: repeated analyses over the same (or a growing) graph — the
// online monitor's overlapped windows, the whole-run pass, diagnosis
// drill-down — re-cluster only the STG elements whose fragment slices
// actually changed (tracked by the elements' version stamps).
type Analyzer struct {
	cache *cluster.Cache

	// preps memoizes each element's window-independent analysis (its
	// normalized samples and time indexes) keyed like the clustering
	// cache, so overlapped windows slice precomputed samples instead of
	// re-walking every cluster member per window.
	mu    sync.Mutex
	preps map[cluster.Key]*prepElem

	// regionCarry holds each class's region-growing carry-over (see
	// regions_inc.go). Stage-2 workers each own exactly one class slot,
	// so the fixed array needs no locking.
	regionCarry [numClasses]*regionCarryState

	// met, when set via SetMetrics, receives per-pass latency and
	// per-stage span observations; clock is its worker-side scratch.
	met   *Metrics
	clock stageClock

	// clusterHook, when set, observes every clustering a detection pass
	// consulted, together with the Delta relating it to the previous
	// generation. The monitor's streaming-OLS plane hangs off this to
	// keep per-cluster regression moments warm without a second
	// clustering pass. Called from stage-1 workers CONCURRENTLY — the
	// handler must do its own locking (and must not call back into the
	// Analyzer, which would deadlock on the pass's internal locks).
	clusterHook func(key cluster.Key, gen stg.Gen, frags []trace.Fragment, res cluster.Result, d cluster.Delta)
}

// NewAnalyzer returns an Analyzer with an empty clustering cache.
func NewAnalyzer() *Analyzer {
	return &Analyzer{cache: cluster.NewCache(), preps: make(map[cluster.Key]*prepElem)}
}

// Cache exposes the memoized clustering layer so sibling passes (the
// diagnosis drill-down in core, the monitor's event diagnosis) reuse
// the same per-element clusterings detection computed.
func (a *Analyzer) Cache() *cluster.Cache { return a.cache }

// SetClusterDeltaHook registers fn to observe each element clustering a
// pass consults: the element key, the generation analyzed, the fragment
// population, the (shared, read-only) clustering and the Delta from the
// previous generation. An unchanged element reports its own generation
// as Delta.From with nothing dirty; an incremental advance reports the
// previous generation, so a consumer pinned to it can patch derived
// state by the delta and rebuild otherwise. fn is called concurrently
// from the pass's worker pool.
func (a *Analyzer) SetClusterDeltaHook(fn func(key cluster.Key, gen stg.Gen, frags []trace.Fragment, res cluster.Result, d cluster.Delta)) {
	a.clusterHook = fn
}

// Run clusters every STG edge and vertex of g, normalizes performance
// within each fixed cluster, and builds heat maps and variance regions
// for ranks [0, ranks). It is a convenience wrapper constructing a
// one-shot Analyzer; callers analyzing the same graph repeatedly should
// hold an Analyzer and call its Run method instead.
func Run(g *stg.Graph, ranks int, opt Options) *Result {
	return NewAnalyzer().Run(g, ranks, opt)
}

// Run is the whole-graph detection pass (see the package-level Run).
func (a *Analyzer) Run(g *stg.Graph, ranks int, opt Options) *Result {
	return a.run(g, ranks, opt, math.MinInt64, math.MaxInt64, 0)
}

// RunWindow analyzes only the fragments overlapping [start, end) ns —
// the online monitor's per-window view. Clustering and normalization
// still use each element's full fragment population (memoized across
// windows), so overlapped windows share one clustering per element and
// only elements that grew since the previous window are re-clustered;
// the window merely filters which samples feed the heat map. The heat
// map's Origin is set to start so cells cover the window, not the whole
// run.
func (a *Analyzer) RunWindow(g *stg.Graph, ranks int, opt Options, start, end int64) *Result {
	return a.run(g, ranks, opt, start, end, start)
}

// elemOut is the per-element partial result of the cluster+normalize
// stage; partials merge deterministically in element order, which makes
// the parallel pass bit-identical to the sequential one. Samples are
// referenced, not materialized: either the element's whole canonical
// list (all=true) or a selection of indices into it, copied exactly
// once into the right-sized merged slice.
type elemOut struct {
	prep          *prepElem
	whole         [numClasses]bool
	sel           [numClasses][]int32
	total, fixed  [numClasses]int64
	fixedClusters int
	smallClusters int
}

// sampleCount returns how many samples the element contributes to class
// c under its selection.
func (o *elemOut) sampleCount(c int) int {
	if o.prep == nil {
		return 0
	}
	if o.whole[c] {
		if o.prep.storeMode() {
			if Class(c) == o.prep.class {
				return o.prep.liveCount
			}
			return 0
		}
		return len(o.prep.samples[c])
	}
	return len(o.sel[c])
}

// elemDirect is the materialized form of an element's window
// contribution, produced by normalizeElement. The production path uses
// elemOut's referenced samples instead; this form exists for the
// equivalence tests that pin the two paths bit-identical.
type elemDirect struct {
	samples       [numClasses][]Sample
	total, fixed  [numClasses]int64
	fixedClusters int
	smallClusters int
}

const numClasses = 3

func (a *Analyzer) run(g *stg.Graph, ranks int, opt Options, start, end, origin int64) *Result {
	if opt.Window <= 0 {
		opt.Window = 500 * sim.Millisecond
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}
	res := &Result{
		Maps:        make(map[Class]*HeatMap),
		Samples:     make(map[Class][]Sample),
		Coverage:    make(map[Class]float64),
		TotalTimeNS: make(map[Class]int64),
		FixedTimeNS: make(map[Class]int64),
	}
	met := a.met
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
		a.clock.reset()
	}

	// Stage 1: per-element cluster+normalize, sharded across workers.
	// Elements are independent; outputs land in a slot per element.
	edges := g.Edges()
	verts := g.Vertices()
	outs := make([]elemOut, len(edges)+len(verts))
	forEach(len(outs), opt.Parallelism, func(i int) {
		if i < len(edges) {
			e := edges[i]
			p := a.prepFor(cluster.EdgeKey(e.Key), e.Gen, e.Fragments, opt, ClusterRef{IsEdge: true, Edge: e.Key})
			p.window(start, end, &outs[i])
		} else {
			v := verts[i-len(edges)]
			p := a.prepFor(cluster.VertexKey(v.Key), v.Gen, v.Fragments, opt, ClusterRef{Vertex: v.Key})
			p.window(start, end, &outs[i])
		}
	})

	var tMerge time.Time
	if met != nil {
		met.Spans.RecordNS(StagePrep, since(t0))
		met.Spans.RecordNS(StageCluster, a.clock.clusterNS.Load())
		met.Spans.RecordNS(StageNormalize, a.clock.normNS.Load())
		tMerge = time.Now()
	}

	// Deterministic merge: element order (edges then vertices, both
	// key-sorted) fixes the sample concatenation order regardless of
	// which worker finished first. Counts are summed first so each
	// class's merged slice is allocated once at its exact size — the
	// per-window copy cost is one pass over the selected samples, with
	// no append regrowth.
	var total, fixed [numClasses]int64
	var counts [numClasses]int
	for i := range outs {
		o := &outs[i]
		res.FixedClusters += o.fixedClusters
		res.SmallClusters += o.smallClusters
		for c := 0; c < numClasses; c++ {
			counts[c] += o.sampleCount(c)
			total[c] += o.total[c]
			fixed[c] += o.fixed[c]
		}
	}
	for c := 0; c < numClasses; c++ {
		if counts[c] > 0 {
			res.Samples[Class(c)] = make([]Sample, 0, counts[c])
		}
	}
	for i := range outs {
		o := &outs[i]
		if o.prep == nil {
			continue
		}
		for c := 0; c < numClasses; c++ {
			if o.prep.storeMode() {
				// Store-backed elements materialize lazily: Perf,
				// Covered and the cluster index are derived from
				// current cluster state as samples are copied out.
				if Class(c) != o.prep.class {
					continue
				}
				if o.whole[c] {
					if o.prep.liveCount > 0 {
						res.Samples[Class(c)] = o.prep.appendAllStore(res.Samples[Class(c)])
					}
				} else if len(o.sel[c]) > 0 {
					res.Samples[Class(c)] = o.prep.appendStore(res.Samples[Class(c)], o.sel[c])
				}
				continue
			}
			if o.whole[c] {
				if len(o.prep.samples[c]) > 0 {
					res.Samples[Class(c)] = append(res.Samples[Class(c)], o.prep.samples[c]...)
				}
			} else if len(o.sel[c]) > 0 {
				buf := res.Samples[Class(c)]
				src := o.prep.samples[c]
				for _, idx := range o.sel[c] {
					buf = append(buf, src[idx])
				}
				res.Samples[Class(c)] = buf
			}
		}
	}

	var allTotal, allFixed int64
	for c := 0; c < numClasses; c++ {
		allTotal += total[c]
		allFixed += fixed[c]
		if total[c] > 0 {
			res.Coverage[Class(c)] = float64(fixed[c]) / float64(total[c])
		}
		if total[c] != 0 || fixed[c] != 0 {
			res.TotalTimeNS[Class(c)] = total[c]
			res.FixedTimeNS[Class(c)] = fixed[c]
		}
	}
	if allTotal > 0 {
		res.OverallCoverage = float64(allFixed) / float64(allTotal)
	}

	var tMap time.Time
	if met != nil {
		met.Spans.RecordNS(StageMerge, since(tMerge))
		tMap = time.Now()
	}

	// Stage 2: the per-class heat-map and region-growing passes are
	// fully independent — run them concurrently, then concatenate the
	// regions in fixed class order.
	var maps [numClasses]*HeatMap
	var regions [numClasses][]Region
	forEach(numClasses, opt.Parallelism, func(c int) {
		samples := res.Samples[Class(c)]
		if len(samples) == 0 {
			return
		}
		sortSamples(samples)
		h := buildHeatMap(Class(c), samples, ranks, opt.Window, origin)
		if h == nil {
			return
		}
		h.markStale(opt.Outages)
		maps[c] = h
		regions[c] = a.growRegionsFor(Class(c), h, samples, opt)
	})
	for c := 0; c < numClasses; c++ {
		if maps[c] != nil {
			res.Maps[Class(c)] = maps[c]
			res.Regions = append(res.Regions, regions[c]...)
		}
	}
	// Most impactful regions first (§3.5: reported by performance
	// impact).
	sort.Slice(res.Regions, func(i, j int) bool { return res.Regions[i].LossNS > res.Regions[j].LossNS })
	if met != nil {
		met.Spans.RecordNS(StageMap, since(tMap))
		met.WindowNS.Observe(since(t0))
		met.Windows.Inc()
	}
	return res
}

// normalizeElement turns one element's clustering into normalized
// samples and coverage partials, keeping only fragments overlapping
// [start, end). Each fragment is classed by its own kind — a vertex
// carrying mixed fragment kinds contributes to several classes rather
// than being classed wholesale by its first fragment.
//
// The hot path no longer calls this per window — prepElem.window slices
// the same outputs from a memoized full-population pass — but this
// direct form remains the semantic reference: the equivalence tests pin
// the sliced path bit-identical to it.
func normalizeElement(frags []trace.Fragment, cl cluster.Result, ref ClusterRef, opt Options, start, end int64) (out elemDirect) {
	minFrag := opt.Cluster.MinFragments
	if minFrag <= 0 {
		minFrag = 5
	}
	for ci := range cl.Clusters {
		c := &cl.Clusters[ci]
		if c.Fixed {
			out.fixedClusters++
		} else {
			out.smallClusters++
			continue
		}
		// Fastest member defines performance 1.0.
		best := int64(math.MaxInt64)
		perRank := make(map[int]int)
		for _, m := range c.Members {
			perRank[frags[m].Rank]++
			if e := frags[m].Elapsed; e > 0 && e < best {
				best = e
			}
		}
		if best == math.MaxInt64 {
			continue
		}
		for _, m := range c.Members {
			f := &frags[m]
			if f.Start >= end || f.Start+f.Elapsed <= start {
				continue
			}
			class := ClassOf(f.Kind)
			// Detection pools fragments across processes (the
			// inter-process comparison needs that), but coverage
			// follows the paper's repetition notion: the snippet
			// must recur within a process to count as repeated
			// fixed workload there.
			covered := perRank[f.Rank] >= minFrag
			if covered {
				out.fixed[class] += f.Elapsed
			}
			perf := 1.0
			if f.Elapsed > 0 {
				perf = float64(best) / float64(f.Elapsed)
			}
			ref := ref
			ref.Cluster = ci
			out.samples[class] = append(out.samples[class], Sample{
				Rank:       f.Rank,
				Start:      f.Start,
				Elapsed:    f.Elapsed,
				Perf:       perf,
				Covered:    covered,
				ClusterRef: ref,
				FragIndex:  m,
			})
		}
	}
	for i := range frags {
		f := &frags[i]
		if f.Start >= end || f.Start+f.Elapsed <= start {
			continue
		}
		out.total[ClassOf(f.Kind)] += f.Elapsed
	}
	return out
}

// forEach runs fn(0..n-1) across a bounded worker pool. parallelism 0
// means GOMAXPROCS; 1 (or n==1) degenerates to a plain sequential loop.
// Iterations are claimed from an atomic counter, so callers writing to
// disjoint slots see a deterministic overall result.
func forEach(n, parallelism int, fn func(int)) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapAndRegions builds a heat map from pre-normalized samples and runs
// region growing over it. It is the shared back half of detection, also
// used by the vSensor baseline (which produces its samples differently).
func MapAndRegions(class Class, samples []Sample, ranks int, opt Options) (*HeatMap, []Region) {
	if opt.Window <= 0 {
		opt.Window = 500 * sim.Millisecond
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}
	h := buildHeatMap(class, samples, ranks, opt.Window, 0)
	if h == nil {
		return nil, nil
	}
	h.markStale(opt.Outages)
	return h, growRegions(h, samples, opt)
}

// buildHeatMap bins the samples into the rank × window grid using
// elapsed-time-weighted averaging ("weighted equalization" in Fig. 2).
// origin is the virtual time of the first cell column (0 for whole-run
// maps; the window start for the monitor's per-window maps, so the grid
// covers only the window instead of growing with absolute time).
func buildHeatMap(class Class, samples []Sample, ranks int, window sim.Duration, origin int64) *HeatMap {
	if len(samples) == 0 || ranks <= 0 {
		return nil
	}
	maxEnd := origin
	for i := range samples {
		if e := samples[i].Start + samples[i].Elapsed; e > maxEnd {
			maxEnd = e
		}
	}
	wins := int((maxEnd-origin)/int64(window)) + 1
	if wins < 1 {
		wins = 1
	}
	h := &HeatMap{Class: class, Ranks: ranks, Windows: wins, Window: window, Origin: sim.Time(origin)}
	h.Cells = make([]float64, ranks*wins)
	weight := make([]float64, ranks*wins)
	for i := range h.Cells {
		h.Cells[i] = math.NaN()
	}
	for i := range samples {
		s := &samples[i]
		if s.Rank < 0 || s.Rank >= ranks {
			continue
		}
		// Spread the sample over every window it overlaps, weighting
		// by the overlap length. Samples may start before origin (a
		// fragment straddling the window boundary); only the part from
		// origin on is binned.
		start, end := s.Start, s.Start+s.Elapsed
		if end <= start {
			end = start + 1
		}
		w0 := int((start - origin) / int64(window))
		if w0 < 0 {
			w0 = 0
		}
		w1 := int((end - 1 - origin) / int64(window))
		if w1 < 0 {
			continue
		}
		if w1 >= wins {
			w1 = wins - 1
		}
		for w := w0; w <= w1; w++ {
			bs := origin + int64(w)*int64(window)
			be := bs + int64(window)
			ov := min64(end, be) - max64(start, bs)
			if ov <= 0 {
				continue
			}
			idx := s.Rank*wins + w
			wt := float64(ov)
			if math.IsNaN(h.Cells[idx]) {
				h.Cells[idx] = 0
			}
			h.Cells[idx] += s.Perf * wt
			weight[idx] += wt
		}
	}
	for i := range h.Cells {
		if weight[i] > 0 {
			h.Cells[i] /= weight[i]
		}
	}
	return h
}

// GrowRegions is the exported batch region grower: 4-connected
// components of sub-threshold cells over an arbitrary heat map, with
// samples re-attached and loss quantified. The spatial merger's
// equivalence tests pin the stitched cross-shard regions bit-identical
// to this reference run over the merged grid.
func GrowRegions(h *HeatMap, samples []Sample, opt Options) []Region {
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}
	return growRegions(h, samples, opt)
}

// growRegions finds 4-connected components of sub-threshold cells and
// aggregates their bounding boxes and losses.
func growRegions(h *HeatMap, samples []Sample, opt Options) []Region {
	low := func(r, w int) bool {
		if h.StaleAt(r, w) {
			return false // lost data is neither fast nor slow
		}
		v := h.At(r, w)
		return !math.IsNaN(v) && v < opt.Threshold
	}
	seen := make([]bool, len(h.Cells))
	var regions []Region
	for r := 0; r < h.Ranks; r++ {
		for w := 0; w < h.Windows; w++ {
			idx := r*h.Windows + w
			if seen[idx] || !low(r, w) {
				continue
			}
			// BFS flood fill.
			reg := Region{Class: h.Class, RankMin: r, RankMax: r, WinMin: w, WinMax: w}
			queue := []int{idx}
			seen[idx] = true
			var perfSum float64
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				cr, cw := cur/h.Windows, cur%h.Windows
				reg.Cells++
				perfSum += h.At(cr, cw)
				if cr < reg.RankMin {
					reg.RankMin = cr
				}
				if cr > reg.RankMax {
					reg.RankMax = cr
				}
				if cw < reg.WinMin {
					reg.WinMin = cw
				}
				if cw > reg.WinMax {
					reg.WinMax = cw
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nr, nw := cr+d[0], cw+d[1]
					if nr < 0 || nr >= h.Ranks || nw < 0 || nw >= h.Windows {
						continue
					}
					ni := nr*h.Windows + nw
					if !seen[ni] && low(nr, nw) {
						seen[ni] = true
						queue = append(queue, ni)
					}
				}
			}
			if reg.Cells < opt.MinRegionCells {
				continue
			}
			reg.MeanPerf = perfSum / float64(reg.Cells)
			regions = append(regions, reg)
		}
	}
	// Attach member samples and quantify loss.
	attachSamples(regions, h, samples)
	return regions
}

// attachSamples appends each region's member samples (rank within the
// region's span, time overlapping its window range) and accumulates the
// quantified loss. It produces exactly what a full scan of the sample
// slice per region would — same members, same ascending-index order —
// but via a per-rank bucket index, so the cost is O(samples) plus the
// regions' actual membership instead of O(regions × samples). The
// distinction is what keeps a spatially merged grid (thousands of
// ranks, one region per slow rank) on the linear cost curve.
func attachSamples(regions []Region, h *HeatMap, samples []Sample) {
	if len(regions) == 0 || len(samples) == 0 {
		return
	}
	byRank := make([][]int32, h.Ranks)
	for i := range samples {
		if r := samples[i].Rank; r >= 0 && r < h.Ranks {
			byRank[r] = append(byRank[r], int32(i))
		}
	}
	var idxs []int32
	for ri := range regions {
		reg := &regions[ri]
		t0 := int64(h.Origin) + int64(reg.WinMin)*int64(h.Window)
		t1 := int64(h.Origin) + int64(reg.WinMax+1)*int64(h.Window)
		idxs = idxs[:0]
		for r := reg.RankMin; r <= reg.RankMax && r < h.Ranks; r++ {
			if r < 0 {
				continue
			}
			for _, i := range byRank[r] {
				s := &samples[i]
				if s.Start+s.Elapsed <= t0 || s.Start >= t1 {
					continue
				}
				idxs = append(idxs, i)
			}
		}
		// Multi-rank spans interleave buckets; restore the global scan
		// order (ascending sample index) before appending.
		if reg.RankMax > reg.RankMin {
			sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
		}
		for _, i := range idxs {
			s := &samples[i]
			reg.Samples = append(reg.Samples, *s)
			reg.LossNS += int64((1 - s.Perf) * float64(s.Elapsed))
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
