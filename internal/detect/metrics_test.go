package detect

import (
	"testing"

	"vapro/internal/obs"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

func metricsFrag(rank int, start, elapsed int64) trace.Fragment {
	return trace.Fragment{
		Rank: rank, Kind: trace.Comp, From: 1, State: 2,
		Start: start, Elapsed: elapsed,
		Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
	}
}

// An instrumented analyzer records one pass per Run/RunWindow and times
// every stage; an uninstrumented one produces the identical result.
func TestAnalyzerMetrics(t *testing.T) {
	g := stg.New()
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 10; i++ {
			g.Add(metricsFrag(rank, int64(i)*1000, 500))
		}
	}
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	a := NewAnalyzer()
	a.SetMetrics(met)

	res := a.Run(g, 2, DefaultOptions())
	if met.Windows.Load() != 1 {
		t.Fatalf("windows: %d, want 1", met.Windows.Load())
	}
	a.RunWindow(g, 2, DefaultOptions(), 0, 5000)
	if met.Windows.Load() != 2 {
		t.Fatalf("windows: %d, want 2", met.Windows.Load())
	}
	if met.WindowNS.Count() != 2 {
		t.Fatalf("window latency observations: %d, want 2", met.WindowNS.Count())
	}
	for _, st := range []int{StagePrep, StageCluster, StageNormalize, StageMerge, StageMap} {
		if got := met.Spans.Hist(st).Count(); got != 2 {
			t.Fatalf("stage %s recorded %d spans, want 2", met.Spans.Stages()[st], got)
		}
	}

	// Instrumentation is observational: the plain analyzer computes the
	// same detection bit for bit.
	plain := NewAnalyzer().Run(g, 2, DefaultOptions())
	if len(plain.Regions) != len(res.Regions) || plain.OverallCoverage != res.OverallCoverage {
		t.Fatal("metrics changed the analysis result")
	}
	if plain.FixedClusters != res.FixedClusters {
		t.Fatal("metrics changed cluster accounting")
	}
}
