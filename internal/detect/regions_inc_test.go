package detect

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"vapro/internal/obs"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// TestRegionCarryEquivalenceFuzz pins incremental region growing
// bit-identical to the batch pass under its intended workload: windows
// sliding by whole bucket multiples over a growing graph, with outage
// sets that appear and disappear between windows (flipping `!`-stale
// bits under carried regions, which must force those cells to re-grow)
// and localized slow episodes that produce interior regions — the kind
// that survive the shift. The carried-cell tally asserts the carry
// actually engages — a fuzz that silently re-grows everything proves
// nothing.
func TestRegionCarryEquivalenceFuzz(t *testing.T) {
	schedules := 80
	if testing.Short() {
		schedules = 20
	}
	var carried atomic.Uint64
	t.Cleanup(func() {
		if carried.Load() == 0 {
			t.Errorf("no region cells carried across %d schedules: carry path never ran", schedules)
		}
	})
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			runRegionCarrySchedule(t, int64(11200+sched), &carried)
		})
	}
}

func runRegionCarrySchedule(t *testing.T, seed int64, carried *atomic.Uint64) {
	rng := rand.New(rand.NewSource(seed))
	ranks := 3 + rng.Intn(3)

	opt := DefaultOptions()
	winNS := int64(2+rng.Intn(4)) * 1_000_000
	opt.Window = sim.Duration(winNS)
	opt.Threshold = 0.85
	opt.MinRegionCells = 1 + rng.Intn(2)
	opt.Parallelism = rng.Intn(3)

	g := stg.New()
	inc := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	inc.SetMetrics(met)
	defer func() { carried.Add(met.RegionCellsCarried.Load()) }()

	// Tight baseline with the fastest member pinned up front (best never
	// improves later, so settled cells never renormalize), plus short
	// slow episodes per rank in early absolute time — interior islands
	// the sliding window can carry.
	clock := make([]int64, ranks)
	slowRank := rng.Intn(ranks)
	epStart := winNS * int64(2+rng.Intn(3))
	epEnd := epStart + winNS*int64(1+rng.Intn(3))

	span := winNS * int64(8+rng.Intn(8))
	var ws int64
	for b := 0; b < 8; b++ {
		var batch []trace.Fragment
		for i := 0; i < 40+rng.Intn(40); i++ {
			rank := rng.Intn(ranks)
			el := int64(1_000_000 + rng.Intn(40_000))
			if b == 0 && i == 0 {
				el = 1_000_000 // pin the cluster's fastest member
			}
			if rank == slowRank && clock[rank] >= epStart && clock[rank] < epEnd {
				el *= int64(2 + rng.Intn(2))
			}
			batch = append(batch, trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: clock[rank], Elapsed: el,
				Counters: trace.CountersView{TotIns: 800_000 + uint64(rng.Intn(3000))},
			})
			clock[rank] += el
		}
		g.AddBatch(batch)

		ropt := opt
		// Outages come and go across windows: a stale flip under a
		// previously carried region must be detected as a change.
		if rng.Intn(3) == 0 {
			ropt.Outages = []Outage{{
				Rank:  rng.Intn(ranks),
				Start: ws + int64(rng.Intn(6))*winNS,
				End:   ws + int64(2+rng.Intn(8))*winNS,
			}}
		}
		bopt := ropt
		bopt.DisableIncremental = true

		got := inc.RunWindow(g, ranks, ropt, ws, ws+span)
		want := NewAnalyzer().RunWindow(g, ranks, bopt, ws, ws+span)
		if !equalResults(got, want) {
			t.Fatalf("burst %d (ws=%d): carried result diverged from batch", b, ws)
		}
		ws += winNS * int64(rng.Intn(2)) // hold or advance one bucket
	}
}

// TestRegionCarryHatch pins the DisableIncrementalRegions escape hatch:
// a persistent analyzer flipped onto the hatch mid-run must produce
// batch-identical results, and flipping back must also stay exact (the
// hatch clears carry state, so nothing stale survives the round trip).
func TestRegionCarryHatch(t *testing.T) {
	g := stg.New()
	a := NewAnalyzer()
	met := NewMetrics(obs.NewRegistry())
	a.SetMetrics(met)
	opt := DefaultOptions()
	winNS := int64(2_000_000)
	opt.Window = sim.Duration(winNS)

	// All data lands up front; the windows then slide over a settled
	// graph (the monitor's steady state once ingest catches up). Rank 1
	// is slow only during buckets [5, 7) of absolute time, producing an
	// interior region that survives whole-bucket shifts.
	rng := rand.New(rand.NewSource(99))
	clock := make([]int64, 4)
	var batch []trace.Fragment
	for i := 0; i < 400; i++ {
		rank := rng.Intn(4)
		el := int64(1_000_000 + rng.Intn(40_000))
		if i == 0 {
			el = 1_000_000
		}
		if rank == 1 && clock[rank] >= 5*winNS && clock[rank] < 7*winNS {
			el *= 3
		}
		batch = append(batch, trace.Fragment{
			Rank: rank, Kind: trace.Comp, From: 1, State: 2,
			Start: clock[rank], Elapsed: el,
			Counters: trace.CountersView{TotIns: 600_000 + uint64(rng.Intn(2000))},
		})
		clock[rank] += el
	}
	g.AddBatch(batch)

	check := func(o Options, ws int64, stage string) {
		got := a.RunWindow(g, 4, o, ws, ws+12*winNS)
		bopt := o
		bopt.DisableIncremental = true
		want := NewAnalyzer().RunWindow(g, 4, bopt, ws, ws+12*winNS)
		if !equalResults(got, want) {
			t.Fatalf("%s: result diverged from batch", stage)
		}
	}

	check(opt, 0, "warmup")
	check(opt, winNS, "carry")
	if met.RegionCellsCarried.Load() == 0 {
		t.Fatal("carry path did not engage before the hatch flip")
	}

	hatch := opt
	hatch.DisableIncrementalRegions = true
	check(hatch, 2*winNS, "hatch")
	for c := 0; c < numClasses; c++ {
		if a.regionCarry[c] != nil {
			t.Fatalf("class %d carry state survived the hatch", c)
		}
	}

	check(opt, 3*winNS, "re-enable")
	check(opt, 4*winNS, "post re-enable carry")
}
