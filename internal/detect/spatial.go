package detect

import (
	"math"
	"sort"

	"vapro/internal/sim"
)

// Spatial merge: the rank-sharded collector tier runs one analysis
// plane per shard, each over only its resident ranks, and combines the
// per-shard window results here into one global view. The merge is a
// strip concatenation — every rank row of the merged heat map is copied
// verbatim from the rank's owning shard — so its cost is O(ranks ×
// windows) regardless of how many fragments the shards ingested.
// Region growing then runs over the merged grid, which is what lets a
// variance region span a shard boundary: two adjacent rank rows owned
// by different shards stitch into one 4-connected component exactly as
// they would in an unsharded pass. Stale cells copied from any shard's
// outage accounting keep their exclusion.

// MergeStats reports what one merge pass combined.
type MergeStats struct {
	// Strips counts per-class heat-map strips copied out of per-shard
	// results (one per (class, shard) pair that contributed rows).
	Strips int
	// Stitched counts merged regions whose rank rows span more than one
	// owning shard — regions that exist only because of the merge.
	Stitched int
}

// Merger combines per-shard detection results into one global Result.
// Like the Analyzer it is warm: region growing over the merged grid
// carries unchanged regions across overlapped windows, so the steady
// merge cost is the strip copy plus regrowth of changed cells only.
// A Merger is not safe for concurrent Merge calls.
type Merger struct {
	carry [numClasses]*regionCarryState
}

// NewMerger returns a Merger with cold region-carry state.
func NewMerger() *Merger { return &Merger{} }

// Merge combines per-shard results over a global rank space of size
// ranks. owner maps each rank to the index in parts that owns it; a
// rank whose owner slot is nil (shard down, nothing delivered) keeps
// NaN cells, exactly as an unsharded run that received none of its
// fragments would. Per-shard maps must share window geometry (bucket
// width and origin — the tier analyzes one global window, so they do);
// a part whose geometry disagrees is treated as absent for that class.
// Samples are owner-filtered (a misrouted fragment analyzed by a
// non-owning shard must not double-attach) and k-way merged in start
// order, ties resolved by part order.
func (m *Merger) Merge(parts []*Result, ranks int, owner func(rank int) int, opt Options) (*Result, MergeStats) {
	if opt.Window <= 0 {
		opt.Window = 500 * sim.Millisecond
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 0.85
	}
	res := &Result{
		Maps:        make(map[Class]*HeatMap),
		Samples:     make(map[Class][]Sample),
		Coverage:    make(map[Class]float64),
		TotalTimeNS: make(map[Class]int64),
		FixedTimeNS: make(map[Class]int64),
	}
	var stats MergeStats

	// Coverage merges exactly: the per-shard results expose their raw
	// int64 time sums, so the merged fractions equal a single global
	// pass over the union of the shards' fragments.
	var total, fixed [numClasses]int64
	for _, p := range parts {
		if p == nil {
			continue
		}
		res.FixedClusters += p.FixedClusters
		res.SmallClusters += p.SmallClusters
		for c := 0; c < numClasses; c++ {
			total[c] += p.TotalTimeNS[Class(c)]
			fixed[c] += p.FixedTimeNS[Class(c)]
		}
	}
	var allTotal, allFixed int64
	for c := 0; c < numClasses; c++ {
		allTotal += total[c]
		allFixed += fixed[c]
		if total[c] > 0 {
			res.Coverage[Class(c)] = float64(fixed[c]) / float64(total[c])
		}
		if total[c] != 0 || fixed[c] != 0 {
			res.TotalTimeNS[Class(c)] = total[c]
			res.FixedTimeNS[Class(c)] = fixed[c]
		}
	}
	if allTotal > 0 {
		res.OverallCoverage = float64(allFixed) / float64(allTotal)
	}

	for c := 0; c < numClasses; c++ {
		class := Class(c)

		// Geometry comes from the first shard that built a map for this
		// class; the merged width is the max over agreeing shards (a
		// shard whose resident ranks went quiet early just has a
		// narrower strip — its missing columns stay NaN).
		var window sim.Duration
		var origin sim.Time
		windows := 0
		found := false
		for _, p := range parts {
			if p == nil {
				continue
			}
			h := p.Maps[class]
			if h == nil {
				continue
			}
			if !found {
				window, origin, found = h.Window, h.Origin, true
			}
			if h.Window != window || h.Origin != origin {
				continue
			}
			if h.Windows > windows {
				windows = h.Windows
			}
		}
		if !found || windows == 0 || ranks <= 0 {
			m.carry[c] = nil
			continue
		}

		merged := &HeatMap{Class: class, Ranks: ranks, Windows: windows, Window: window, Origin: origin}
		merged.Cells = make([]float64, ranks*windows)
		for i := range merged.Cells {
			merged.Cells[i] = math.NaN()
		}
		contributed := make([]bool, len(parts))
		for r := 0; r < ranks; r++ {
			o := owner(r)
			if o < 0 || o >= len(parts) || parts[o] == nil {
				continue
			}
			h := parts[o].Maps[class]
			if h == nil || h.Window != window || h.Origin != origin || r >= h.Ranks {
				continue
			}
			copy(merged.Cells[r*windows:r*windows+h.Windows], h.Cells[r*h.Windows:(r+1)*h.Windows])
			if h.Stale != nil {
				for w := 0; w < h.Windows; w++ {
					if h.Stale[r*h.Windows+w] {
						if merged.Stale == nil {
							merged.Stale = make([]bool, len(merged.Cells))
						}
						merged.Stale[r*windows+w] = true
					}
				}
			}
			contributed[o] = true
		}
		for _, u := range contributed {
			if u {
				stats.Strips++
			}
		}

		// Owner-filtered k-way merge of the per-shard sample streams
		// (each already start-sorted by the shard's own pass). The merge
		// walks the source slices in place — each head skips samples its
		// part does not own — so the only per-tick allocation is the
		// merged output itself; materializing filtered copies first used
		// to dominate the merge's allocation profile.
		owned := func(i int, s *Sample) bool {
			return s.Rank >= 0 && s.Rank < ranks && owner(s.Rank) == i
		}
		srcs := make([][]Sample, len(parts))
		heads := make([]int, len(parts))
		want := 0
		for i, p := range parts {
			if p == nil {
				continue
			}
			src := p.Samples[class]
			srcs[i] = src
			for j := range src {
				if owned(i, &src[j]) {
					want++
				}
			}
			for heads[i] < len(src) && !owned(i, &src[heads[i]]) {
				heads[i]++
			}
		}
		samples := make([]Sample, 0, want)
		for len(samples) < want {
			best := -1
			for i := range srcs {
				if heads[i] >= len(srcs[i]) {
					continue
				}
				if best == -1 || srcs[i][heads[i]].Start < srcs[best][heads[best]].Start {
					best = i
				}
			}
			samples = append(samples, srcs[best][heads[best]])
			heads[best]++
			for heads[best] < len(srcs[best]) && !owned(best, &srcs[best][heads[best]]) {
				heads[best]++
			}
		}

		res.Maps[class] = merged
		res.Samples[class] = samples

		var regs []Region
		if opt.DisableIncremental || opt.DisableIncrementalRegions {
			m.carry[c] = nil
			regs = growRegions(merged, samples, opt)
		} else {
			var next *regionCarryState
			regs, next, _, _ = growRegionsCarry(m.carry[c], merged, samples, opt)
			m.carry[c] = next
		}
		for i := range regs {
			first := owner(regs[i].RankMin)
			for r := regs[i].RankMin + 1; r <= regs[i].RankMax; r++ {
				if owner(r) != first {
					stats.Stitched++
					break
				}
			}
		}
		res.Regions = append(res.Regions, regs...)
	}

	sort.Slice(res.Regions, func(i, j int) bool { return res.Regions[i].LossNS > res.Regions[j].LossNS })
	return res, stats
}
