package report

import (
	"encoding/json"
	"strings"
	"testing"

	"vapro/internal/apps"
	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/noise"
	"vapro/internal/sim"
	"vapro/internal/stg"
)

func noisyRun(t *testing.T) *core.Result {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Ranks = 16
	opt.Collector.Detect.Window = 100 * sim.Millisecond
	sch := noise.NewSchedule()
	sch.Add(noise.CPUContention(0, 1, sim.Time(900*sim.Millisecond), sim.Time(1500*sim.Millisecond), 0.5))
	opt.Noise = sch
	return core.RunTraced(apps.NewCG(15), opt)
}

func TestHTMLReport(t *testing.T) {
	res := noisyRun(t)
	doc := HTML(res, DefaultOptions())
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Detection coverage",
		"Variance regions",
		"computation heat map",
		"<svg",
		"Progressive diagnosis",
		"suspension",
		"</html>",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if !strings.Contains(doc, "variance region(s) detected") {
		t.Fatal("verdict line missing")
	}
}

func TestHTMLReportQuiet(t *testing.T) {
	// A hand-built result with no regions exercises the quiet verdict
	// branch (real runs almost always flag some small wait region).
	res := &core.Result{
		Ranks:    4,
		Makespan: sim.Duration(sim.Second),
		Graph:    stg.New(),
		Detection: &detect.Result{
			Coverage: map[detect.Class]float64{detect.Computation: 0.9},
			Maps:     map[detect.Class]*detect.HeatMap{},
			Samples:  map[detect.Class][]detect.Sample{},
		},
	}
	opt := DefaultOptions()
	opt.Diagnose = false
	doc := HTML(res, opt)
	if !strings.Contains(doc, "No performance variance detected") {
		t.Fatal("quiet verdict missing")
	}
}

func TestHTMLTitleEscaping(t *testing.T) {
	res := noisyRun(t)
	opt := DefaultOptions()
	opt.Title = `<script>alert("x")</script>`
	doc := HTML(res, opt)
	if strings.Contains(doc, "<script>") {
		t.Fatal("title not escaped")
	}
}

func TestMaxRegionsCap(t *testing.T) {
	res := noisyRun(t)
	opt := DefaultOptions()
	opt.MaxRegions = 1
	doc := HTML(res, opt)
	if len(res.Detection.Regions) > 1 && !strings.Contains(doc, "more") {
		t.Fatal("region cap not applied")
	}
}

func TestJSONSummary(t *testing.T) {
	res := noisyRun(t)
	data, err := JSON(res, true)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.App != "CG" || s.Ranks != 16 || s.Fragments == 0 {
		t.Fatalf("summary identity: %+v", s)
	}
	if s.Overall <= 0 || len(s.Coverage) == 0 {
		t.Fatal("coverage missing")
	}
	if len(s.Regions) == 0 {
		t.Fatal("regions missing")
	}
	foundSusp := false
	for _, f := range s.Diagnosis {
		if f.Factor == "suspension" && f.Impact > 0.5 {
			foundSusp = true
		}
	}
	if !foundSusp {
		t.Fatalf("diagnosis missing suspension: %+v", s.Diagnosis)
	}
}
