// Package report renders a complete, self-contained HTML report for one
// analyzed run: the three per-class heat maps (as inline SVG) with
// detected regions outlined, the variance-region table ranked by
// quantified loss, the progressive diagnosis factor tree, coverage
// numbers, and an STG summary. It is the shareable form of the paper's
// step 7 (Visualization): the artifact a user mails to the system
// administrator along with "node 23 has a memory problem".
package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/heatmap"
)

// Options configures the report.
type Options struct {
	// Title heads the document (defaults to the app name).
	Title string
	// Diagnose runs the progressive diagnosis for the top region of
	// every class that has one.
	Diagnose bool
	// DiagnoseOptions tunes it.
	DiagnoseOptions diagnose.Options
	// MaxRegions caps the region table.
	MaxRegions int
}

// DefaultOptions enables diagnosis with the paper's thresholds.
func DefaultOptions() Options {
	return Options{
		Diagnose:        true,
		DiagnoseOptions: diagnose.DefaultOptions(),
		MaxRegions:      20,
	}
}

// HTML renders the report document.
func HTML(res *core.Result, opt Options) string {
	if opt.MaxRegions <= 0 {
		opt.MaxRegions = 20
	}
	title := opt.Title
	if title == "" {
		title = res.App.Name + " — Vapro report"
	}

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2em; max-width: 72em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }
th { background: #f0f0f0; }
td.l, th.l { text-align: left; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
.warn { color: #b00; font-weight: bold; }
.ok { color: #070; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	// Summary.
	st := res.Graph.Stats()
	fmt.Fprintf(&b, "<p>%d ranks, makespan %s; STG: %d vertices, %d edges, %d fragments "+
		"(%d computation, %d communication, %d IO).</p>\n",
		res.Ranks, res.Makespan, st.Vertices, st.Edges, res.Graph.NumFragments(),
		st.CompFragments, st.CommFragments, st.IOFragments)

	// Coverage.
	b.WriteString("<h2>Detection coverage</h2>\n<table><tr><th class=l>class</th><th>coverage</th></tr>\n")
	for _, class := range []detect.Class{detect.Computation, detect.Communication, detect.IOClass} {
		if cov, ok := res.Detection.Coverage[class]; ok {
			fmt.Fprintf(&b, "<tr><td class=l>%s</td><td>%.1f%%</td></tr>\n", class, 100*cov)
		}
	}
	fmt.Fprintf(&b, "<tr><td class=l>overall</td><td>%.1f%%</td></tr>\n</table>\n",
		100*res.Detection.OverallCoverage)

	// Verdict line.
	if len(res.Detection.Regions) == 0 {
		b.WriteString("<p class=ok>No performance variance detected.</p>\n")
	} else {
		fmt.Fprintf(&b, "<p class=warn>%d variance region(s) detected.</p>\n", len(res.Detection.Regions))
	}

	// Region table, ranked by loss.
	if len(res.Detection.Regions) > 0 {
		b.WriteString("<h2>Variance regions</h2>\n")
		b.WriteString("<table><tr><th>#</th><th class=l>class</th><th>ranks</th><th>window</th><th>mean perf</th><th>loss</th></tr>\n")
		regions := append([]detect.Region(nil), res.Detection.Regions...)
		sort.SliceStable(regions, func(i, j int) bool { return regions[i].LossNS > regions[j].LossNS })
		for i, reg := range regions {
			if i >= opt.MaxRegions {
				fmt.Fprintf(&b, "<tr><td colspan=6 class=l>… %d more</td></tr>\n", len(regions)-i)
				break
			}
			h := res.Detection.Maps[reg.Class]
			window := "?"
			if h != nil {
				window = fmt.Sprintf("%.2fs – %.2fs", reg.StartTime(h).Seconds(), reg.EndTime(h).Seconds())
			}
			fmt.Fprintf(&b, "<tr><td>%d</td><td class=l>%s</td><td>%d–%d</td><td>%s</td><td>%.2f</td><td>%.3fs</td></tr>\n",
				i+1, reg.Class, reg.RankMin, reg.RankMax, window, reg.MeanPerf, float64(reg.LossNS)/1e9)
		}
		b.WriteString("</table>\n")
	}

	// Heat maps.
	for _, class := range []detect.Class{detect.Computation, detect.Communication, detect.IOClass} {
		h := res.Detection.Maps[class]
		if h == nil {
			continue
		}
		fmt.Fprintf(&b, "<h2>%s heat map</h2>\n", class)
		b.WriteString(heatmap.RenderSVG(h, res.Detection.Regions))
	}

	// Diagnosis.
	if opt.Diagnose {
		for _, class := range []detect.Class{detect.Computation, detect.IOClass, detect.Communication} {
			rep := res.DiagnoseTop(class, opt.DiagnoseOptions)
			if rep == nil || rep.AbnormalFrags == 0 {
				continue
			}
			fmt.Fprintf(&b, "<h2>Progressive diagnosis (%s)</h2>\n", class)
			fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(rep.String()))
			writeFactorTable(&b, rep)
		}
	}

	b.WriteString("</body></html>\n")
	return b.String()
}

// writeFactorTable renders the factor tree as a table with impact and
// duration columns (the paper's "impact and time duration for each
// factor").
func writeFactorTable(b *strings.Builder, rep *diagnose.Report) {
	b.WriteString("<table><tr><th class=l>factor</th><th>stage</th><th>impact</th><th>duration</th><th>p-value</th></tr>\n")
	var walk func(frs []diagnose.FactorReport, depth int)
	walk = func(frs []diagnose.FactorReport, depth int) {
		for i := range frs {
			f := &frs[i]
			p := ""
			if f.PValue >= 0 {
				p = fmt.Sprintf("%.3g", f.PValue)
			}
			fmt.Fprintf(b, "<tr><td class=l>%s%s</td><td>%d</td><td>%.1f%%</td><td>%.1f%%</td><td>%s</td></tr>\n",
				strings.Repeat("&nbsp;&nbsp;", depth), html.EscapeString(f.Factor.String()),
				f.Factor.Stage(), 100*f.ImpactFrac, 100*f.DurationFrac, p)
			walk(f.Children, depth+1)
		}
	}
	walk(rep.Factors, 0)
	b.WriteString("</table>\n")
}
