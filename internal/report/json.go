package report

import (
	"encoding/json"

	"vapro/internal/core"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
)

// Summary is the machine-readable form of a run's analysis — what a
// monitoring pipeline ingests instead of the HTML report.
type Summary struct {
	App       string  `json:"app"`
	Ranks     int     `json:"ranks"`
	MakespanS float64 `json:"makespan_s"`
	Fragments int     `json:"fragments"`

	Coverage map[string]float64 `json:"coverage"`
	Overall  float64            `json:"overall_coverage"`

	Regions []RegionSummary `json:"regions"`

	Diagnosis []FactorSummary `json:"diagnosis,omitempty"`
}

// RegionSummary is one detected variance region.
type RegionSummary struct {
	Class    string  `json:"class"`
	RankMin  int     `json:"rank_min"`
	RankMax  int     `json:"rank_max"`
	StartS   float64 `json:"start_s"`
	EndS     float64 `json:"end_s"`
	MeanPerf float64 `json:"mean_perf"`
	LossS    float64 `json:"loss_s"`
}

// FactorSummary is one node of the diagnosis factor tree, flattened
// with its depth.
type FactorSummary struct {
	Factor   string  `json:"factor"`
	Stage    int     `json:"stage"`
	Impact   float64 `json:"impact"`
	Duration float64 `json:"duration"`
	PValue   float64 `json:"p_value,omitempty"`
	Major    bool    `json:"major,omitempty"`
}

// JSON serializes the run's analysis. When diagnose is true the top
// computation region (falling back to IO) is diagnosed and included.
func JSON(res *core.Result, diagnoseTop bool) ([]byte, error) {
	s := Summary{
		App:       res.App.Name,
		Ranks:     res.Ranks,
		MakespanS: res.Makespan.Seconds(),
		Fragments: res.Graph.NumFragments(),
		Coverage:  map[string]float64{},
		Overall:   res.Detection.OverallCoverage,
	}
	for class, cov := range res.Detection.Coverage {
		s.Coverage[class.String()] = cov
	}
	for _, reg := range res.Detection.Regions {
		rs := RegionSummary{
			Class:    reg.Class.String(),
			RankMin:  reg.RankMin,
			RankMax:  reg.RankMax,
			MeanPerf: reg.MeanPerf,
			LossS:    float64(reg.LossNS) / 1e9,
		}
		if h := res.Detection.Maps[reg.Class]; h != nil {
			rs.StartS = reg.StartTime(h).Seconds()
			rs.EndS = reg.EndTime(h).Seconds()
		}
		s.Regions = append(s.Regions, rs)
	}
	if diagnoseTop {
		for _, class := range []detect.Class{detect.Computation, detect.IOClass} {
			rep := res.DiagnoseTop(class, diagnose.DefaultOptions())
			if rep == nil || rep.AbnormalFrags == 0 {
				continue
			}
			var walk func(frs []diagnose.FactorReport)
			walk = func(frs []diagnose.FactorReport) {
				for i := range frs {
					f := &frs[i]
					fs := FactorSummary{
						Factor:   f.Factor.String(),
						Stage:    f.Factor.Stage(),
						Impact:   f.ImpactFrac,
						Duration: f.DurationFrac,
						Major:    f.Major,
					}
					if f.PValue >= 0 {
						fs.PValue = f.PValue
					}
					s.Diagnosis = append(s.Diagnosis, fs)
					walk(f.Children)
				}
			}
			walk(rep.Factors)
			break
		}
	}
	return json.MarshalIndent(&s, "", "  ")
}
