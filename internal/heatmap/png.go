package heatmap

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strconv"

	"vapro/internal/detect"
)

// WritePNG renders the heat map as a PNG image (pixels per cell chosen
// so small grids stay legible), with detected regions outlined in
// white. The color ramp matches RenderSVG.
func WritePNG(w io.Writer, h *detect.HeatMap, regions []detect.Region) error {
	if h == nil {
		return png.Encode(w, image.NewRGBA(image.Rect(0, 0, 1, 1)))
	}
	cellW, cellH := 8, 6
	if h.Windows > 400 {
		cellW = 2
	}
	if h.Ranks > 400 {
		cellH = 2
	}
	img := image.NewRGBA(image.Rect(0, 0, h.Windows*cellW, h.Ranks*cellH))

	noData := color.RGBA{0xd8, 0xd8, 0xd8, 0xff}
	for rank := 0; rank < h.Ranks; rank++ {
		for win := 0; win < h.Windows; win++ {
			c := noData
			if v := h.At(rank, win); !math.IsNaN(v) {
				c = perfRGBA(v)
			}
			for y := rank * cellH; y < (rank+1)*cellH; y++ {
				for x := win * cellW; x < (win+1)*cellW; x++ {
					img.SetRGBA(x, y, c)
				}
			}
		}
	}

	white := color.RGBA{0xff, 0xff, 0xff, 0xff}
	for _, reg := range regions {
		if reg.Class != h.Class {
			continue
		}
		x0, y0 := reg.WinMin*cellW, reg.RankMin*cellH
		x1, y1 := (reg.WinMax+1)*cellW-1, (reg.RankMax+1)*cellH-1
		for x := x0; x <= x1; x++ {
			img.SetRGBA(x, y0, white)
			img.SetRGBA(x, y1, white)
		}
		for y := y0; y <= y1; y++ {
			img.SetRGBA(x0, y, white)
			img.SetRGBA(x1, y, white)
		}
	}
	return png.Encode(w, img)
}

// perfRGBA converts the SVG ramp's hex color into an RGBA pixel.
func perfRGBA(v float64) color.RGBA {
	hex := perfColor(v) // "#rrggbb"
	r, _ := strconv.ParseUint(hex[1:3], 16, 8)
	g, _ := strconv.ParseUint(hex[3:5], 16, 8)
	b, _ := strconv.ParseUint(hex[5:7], 16, 8)
	return color.RGBA{uint8(r), uint8(g), uint8(b), 0xff}
}
