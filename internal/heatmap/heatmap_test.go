package heatmap

import (
	"math"
	"strings"
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
)

func grid(ranks, wins int, fill float64) *detect.HeatMap {
	h := &detect.HeatMap{
		Class: detect.Computation, Ranks: ranks, Windows: wins,
		Window: 100 * sim.Millisecond,
		Cells:  make([]float64, ranks*wins),
	}
	for i := range h.Cells {
		h.Cells[i] = fill
	}
	return h
}

func TestRenderNil(t *testing.T) {
	if out := Render(nil, DefaultOptions()); !strings.Contains(out, "no data") {
		t.Fatalf("nil map: %q", out)
	}
}

func TestRenderShape(t *testing.T) {
	h := grid(4, 8, 1.0)
	out := Render(h, DefaultOptions())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 rows + legend.
	if len(lines) != 6 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	for _, l := range lines[1:5] {
		if !strings.Contains(l, "|") {
			t.Fatalf("row without borders: %q", l)
		}
	}
}

func TestGlyphMapping(t *testing.T) {
	h := grid(1, 3, 0)
	h.Cells[0] = 1.0 // best → space
	h.Cells[1] = 0.0 // worst → '#'
	h.Cells[2] = math.NaN()
	out := Render(h, Options{MaxRows: 4, MaxCols: 8})
	row := strings.Split(out, "\n")[1]
	body := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if body != " #?" {
		t.Fatalf("glyphs: %q", body)
	}
}

func TestDownsamplingKeepsWorst(t *testing.T) {
	// 64 ranks downsampled to ≤8 rows: the one bad rank must survive.
	h := grid(64, 4, 1.0)
	for w := 0; w < 4; w++ {
		h.Cells[37*4+w] = 0.1
	}
	out := Render(h, Options{MaxRows: 8, MaxCols: 8})
	if !strings.Contains(out, "X") && !strings.Contains(out, "#") {
		t.Fatalf("bad rank averaged away:\n%s", out)
	}
}

func TestRenderRegions(t *testing.T) {
	h := grid(4, 8, 1.0)
	regs := []detect.Region{
		{Class: detect.Computation, RankMin: 1, RankMax: 2, WinMin: 3, WinMax: 5, MeanPerf: 0.4, LossNS: 5e8},
		{Class: detect.IOClass, RankMin: 0, RankMax: 0, WinMin: 0, WinMax: 0},
	}
	out := RenderRegions(h, regs)
	if !strings.Contains(out, "ranks 1-2") {
		t.Fatalf("region line missing: %q", out)
	}
	// The IO region belongs to another map and must not appear.
	if strings.Count(out, "region") != 1 {
		t.Fatalf("foreign class region leaked: %q", out)
	}
	if empty := RenderRegions(h, nil); !strings.Contains(empty, "no variance") {
		t.Fatalf("empty regions: %q", empty)
	}
}

func TestRenderStaleCells(t *testing.T) {
	// A stale cell renders '!' even when it carries a (untrustworthy)
	// value, and staleness dominates a downsampled block.
	h := grid(2, 4, 1.0)
	h.Cells[1*4+2] = 0.3 // rank 1, window 2: slow-looking...
	h.Stale = make([]bool, len(h.Cells))
	h.Stale[1*4+2] = true // ...but the data there was lost in transit
	out := Render(h, Options{MaxRows: 4, MaxCols: 8, ShowLegend: true})
	rows := strings.Split(out, "\n")
	body := rows[2]
	body = body[strings.Index(body, "|")+1 : strings.LastIndex(body, "|")]
	if body != "  ! " {
		t.Fatalf("stale row rendered %q, want \"  ! \"", body)
	}
	if !strings.Contains(out, "'!'=stale") {
		t.Fatalf("legend missing stale entry:\n%s", out)
	}
	// Rank 0 untouched.
	top := rows[1]
	top = top[strings.Index(top, "|")+1 : strings.LastIndex(top, "|")]
	if strings.ContainsRune(top, '!') {
		t.Fatalf("stale leaked to rank 0: %q", top)
	}
}

func TestRenderRowOwner(t *testing.T) {
	h := grid(4, 8, 1.0)
	opt := DefaultOptions()
	opt.RowOwner = func(rank int) int { return rank % 2 }
	out := Render(h, opt)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	for r, l := range lines[1:5] {
		want := "s" + string(rune('0'+r%2))
		if !strings.HasPrefix(l, want) {
			t.Fatalf("row %d = %q, want owner prefix %q", r, l, want)
		}
	}
	// Without RowOwner the rows stay unprefixed — legacy output intact.
	plain := Render(h, DefaultOptions())
	for _, l := range strings.Split(plain, "\n")[1:5] {
		if strings.HasPrefix(l, "s") {
			t.Fatalf("unsharded row carries an owner prefix: %q", l)
		}
	}
}
