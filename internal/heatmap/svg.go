package heatmap

import (
	"fmt"
	"math"
	"strings"

	"vapro/internal/detect"
)

// RenderSVG draws the heat map as a standalone SVG document, matching
// the paper's figures: rows are ranks (top to bottom), columns are time,
// color runs from dark (performance 0) to light (performance 1), and
// detected variance regions are outlined in white boxes (as in Figure
// 13). Empty cells render gray.
func RenderSVG(h *detect.HeatMap, regions []detect.Region) string {
	if h == nil {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`
	}
	const (
		cellW, cellH     = 8, 6
		marginL, marginT = 46, 24
		marginR, marginB = 10, 28
	)
	width := marginL + h.Windows*cellW + marginR
	height := marginT + h.Ranks*cellH + marginB

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="9">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="14">%s performance (ranks x time)</text>`+"\n", marginL, h.Class)

	for rank := 0; rank < h.Ranks; rank++ {
		for win := 0; win < h.Windows; win++ {
			v := h.At(rank, win)
			fill := "#d8d8d8" // no data
			if !math.IsNaN(v) {
				fill = perfColor(v)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				marginL+win*cellW, marginT+rank*cellH, cellW, cellH, fill)
		}
	}

	// Axis ticks: rank labels every ~8 rows, time labels every ~10 cols.
	rStep := (h.Ranks + 7) / 8
	if rStep < 1 {
		rStep = 1
	}
	for rank := 0; rank < h.Ranks; rank += rStep {
		fmt.Fprintf(&b, `<text x="2" y="%d">%d</text>`+"\n", marginT+rank*cellH+cellH, rank)
	}
	cStep := (h.Windows + 9) / 10
	if cStep < 1 {
		cStep = 1
	}
	for win := 0; win < h.Windows; win += cStep {
		sec := float64(win) * h.Window.Seconds()
		fmt.Fprintf(&b, `<text x="%d" y="%d">%.1fs</text>`+"\n",
			marginL+win*cellW, marginT+h.Ranks*cellH+12, sec)
	}

	// Region outlines (the paper's white boxes).
	for _, reg := range regions {
		if reg.Class != h.Class {
			continue
		}
		x := marginL + reg.WinMin*cellW
		y := marginT + reg.RankMin*cellH
		w := (reg.WinMax - reg.WinMin + 1) * cellW
		ht := (reg.RankMax - reg.RankMin + 1) * cellH
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="white" stroke-width="2"/>`+"\n",
			x, y, w, ht)
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// perfColor maps performance in [0,1] to a viridis-like ramp (dark
// violet = bad, yellow = good) so slow regions pop like the paper's
// light-on-dark maps.
func perfColor(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Three-stop gradient: #440154 -> #21918c -> #fde725.
	var r0, g0, b0, r1, g1, b1 float64
	var f float64
	if v < 0.5 {
		r0, g0, b0 = 0x44, 0x01, 0x54
		r1, g1, b1 = 0x21, 0x91, 0x8c
		f = v * 2
	} else {
		r0, g0, b0 = 0x21, 0x91, 0x8c
		r1, g1, b1 = 0xfd, 0xe7, 0x25
		f = (v - 0.5) * 2
	}
	lerp := func(a, b float64) int { return int(a + (b-a)*f) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(r0, r1), lerp(g0, g1), lerp(b0, b1))
}
