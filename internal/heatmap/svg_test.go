package heatmap

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"

	"vapro/internal/detect"
)

func TestRenderSVG(t *testing.T) {
	h := grid(4, 8, 0.9)
	h.Cells[2*8+3] = 0.2
	h.Cells[0] = math.NaN()
	regs := []detect.Region{{Class: detect.Computation, RankMin: 2, RankMax: 2, WinMin: 3, WinMax: 3, MeanPerf: 0.2}}
	svg := RenderSVG(h, regs)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("svg framing")
	}
	if !strings.Contains(svg, `stroke="white"`) {
		t.Fatal("region outline missing")
	}
	if !strings.Contains(svg, "#d8d8d8") {
		t.Fatal("no-data cell missing")
	}
	// 4x8 cells plus background.
	if n := strings.Count(svg, "<rect"); n < 33 {
		t.Fatalf("only %d rects", n)
	}
	if RenderSVG(nil, nil) == "" {
		t.Fatal("nil map")
	}
}

func TestPerfColorRamp(t *testing.T) {
	if perfColor(0) != "#440154" {
		t.Fatalf("low end: %s", perfColor(0))
	}
	if perfColor(1) != "#fde725" {
		t.Fatalf("high end: %s", perfColor(1))
	}
	if perfColor(0.5) != "#21918c" {
		t.Fatalf("midpoint: %s", perfColor(0.5))
	}
	if perfColor(-1) != perfColor(0) || perfColor(2) != perfColor(1) {
		t.Fatal("clamping")
	}
}

func TestWritePNG(t *testing.T) {
	h := grid(4, 8, 0.9)
	h.Cells[2*8+3] = 0.2
	h.Cells[0] = math.NaN()
	regs := []detect.Region{{Class: detect.Computation, RankMin: 2, RankMax: 2, WinMin: 3, WinMax: 3}}
	var buf bytes.Buffer
	if err := WritePNG(&buf, h, regs); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 8*8 || b.Dy() != 4*6 {
		t.Fatalf("image size %v", b)
	}
	// The bad cell renders dark (violet-ish, low green channel).
	_, g, _, _ := img.At(3*8+4, 2*6+3).RGBA()
	_, gGood, _, _ := img.At(6*8+4, 0*6+3).RGBA()
	if g >= gGood {
		t.Fatalf("bad cell not darker: g=%d vs %d", g, gGood)
	}
	// Nil map still yields a decodable PNG.
	buf.Reset()
	if err := WritePNG(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}
