// Package heatmap renders detect.HeatMap grids as ASCII/ANSI art for
// terminal reports — the textual counterpart of the paper's color heat
// maps (Figures 9, 12, 13, 15, 17, 18), with variance regions outlined.
package heatmap

import (
	"fmt"
	"math"
	"strings"

	"vapro/internal/detect"
)

// shades orders glyphs from worst performance to best.
var shades = []rune{'#', 'X', 'x', '+', '-', '.', ' '}

// glyph maps a normalized performance value in [0,1] to a shade.
func glyph(v float64) rune {
	if math.IsNaN(v) {
		return '?'
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(shades)-1))
	return shades[idx]
}

// Options configures rendering.
type Options struct {
	// MaxRows/MaxCols downsample large grids to fit a terminal.
	MaxRows, MaxCols int
	// ShowLegend appends a shade legend.
	ShowLegend bool
	// RowOwner, when set, maps a rank to the shard that owns it; each
	// row label then carries the owning shard (`s3|  128 |…`) so a
	// sharded tier's merged map shows where every strip came from.
	RowOwner func(rank int) int
}

// DefaultOptions fits an 80-column terminal.
func DefaultOptions() Options { return Options{MaxRows: 32, MaxCols: 72, ShowLegend: true} }

// Render draws the heat map. Rows are ranks (downsampled by min,
// so a single slow rank stays visible), columns are time windows.
func Render(h *detect.HeatMap, opt Options) string {
	if h == nil {
		return "(no data)\n"
	}
	if opt.MaxRows <= 0 {
		opt.MaxRows = 32
	}
	if opt.MaxCols <= 0 {
		opt.MaxCols = 72
	}
	rows := h.Ranks
	cols := h.Windows
	rStep := (rows + opt.MaxRows - 1) / opt.MaxRows
	cStep := (cols + opt.MaxCols - 1) / opt.MaxCols
	if rStep < 1 {
		rStep = 1
	}
	if cStep < 1 {
		cStep = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s performance heat map (%d ranks × %d windows of %s; worst cell per %dx%d block)\n",
		h.Class, h.Ranks, h.Windows, h.Window, rStep, cStep)
	for r0 := 0; r0 < rows; r0 += rStep {
		if opt.RowOwner != nil {
			fmt.Fprintf(&b, "s%-3d|", opt.RowOwner(r0))
		}
		fmt.Fprintf(&b, "%5d |", r0)
		for c0 := 0; c0 < cols; c0 += cStep {
			worst := math.NaN()
			stale := false
			for r := r0; r < r0+rStep && r < rows; r++ {
				for c := c0; c < c0+cStep && c < cols; c++ {
					if h.StaleAt(r, c) {
						stale = true
						continue
					}
					v := h.At(r, c)
					if math.IsNaN(v) {
						continue
					}
					if math.IsNaN(worst) || v < worst {
						worst = v
					}
				}
			}
			// Stale dominates: a block covering lost data is flagged even
			// if neighboring cells in the block carried samples — the
			// reader must know this area cannot be trusted either way.
			if stale {
				b.WriteRune('!')
			} else {
				b.WriteRune(glyph(worst))
			}
		}
		b.WriteString("|\n")
	}
	if opt.ShowLegend {
		b.WriteString("legend: ")
		for i, g := range shades {
			fmt.Fprintf(&b, "'%c'≈%.2f ", g, float64(i)/float64(len(shades)-1))
		}
		b.WriteString("'?'=no data '!'=stale (data lost in transit)\n")
	}
	return b.String()
}

// RenderRegions summarizes variance regions under a heat map.
func RenderRegions(h *detect.HeatMap, regions []detect.Region) string {
	var b strings.Builder
	n := 0
	for i := range regions {
		r := &regions[i]
		if r.Class != h.Class {
			continue
		}
		n++
		fmt.Fprintf(&b, "  region %d: ranks %d-%d, %.2fs-%.2fs, mean perf %.2f, loss %.3fs\n",
			n, r.RankMin, r.RankMax,
			r.StartTime(h).Seconds(), r.EndTime(h).Seconds(),
			r.MeanPerf, float64(r.LossNS)/1e9)
	}
	if n == 0 {
		b.WriteString("  no variance regions detected\n")
	}
	return b.String()
}
