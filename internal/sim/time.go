// Package sim provides the simulated hardware substrate Vapro runs on:
// a virtual clock, a deterministic random number generator, a machine
// model (nodes, cores, memory hierarchy), and an execution engine that
// turns abstract workloads into elapsed virtual time and performance
// counters obeying the top-down pipeline-slot accounting identities.
//
// The paper evaluates Vapro on real CPUs with hardware PMUs; this package
// is the substitution documented in DESIGN.md: it produces counter values
// with the same structure (and the same accounting identities) the real
// PMU produces, so the detection and diagnosis algorithms exercise the
// same code paths they would on hardware.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulated run. Virtual time is completely decoupled from wall-clock
// time: a 60-second simulated execution of 2048 ranks completes in well
// under a second of wall time.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts a virtual duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration like time.Duration does.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds reports the time as floating-point seconds since run start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }
