package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(6)
	const scale = 0.01
	for i := 0; i < 10000; i++ {
		f := r.Jitter(scale)
		if f < 1-3*scale-1e-12 || f > 1+3*scale+1e-12 {
			t.Fatalf("jitter %v outside clamp", f)
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := NewRNG(8)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

// Property: Split is deterministic in (parent state, id).
func TestSplitDeterministicProperty(t *testing.T) {
	f := func(seed, id uint64) bool {
		a := NewRNG(seed).Split(id)
		b := NewRNG(seed).Split(id)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
