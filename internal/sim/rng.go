package sim

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
//
// All randomness in the simulator (PMU jitter, noise event timing,
// workload perturbation) flows from seeded RNG instances so that every
// experiment is reproducible bit-for-bit. SplitMix64 is used because it
// is tiny, fast, has no shared state, and splits cleanly into independent
// streams (one per core, per rank, per noise source).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r, keyed by id. Streams
// derived with distinct ids are statistically independent of each other
// and of the parent.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id+1)*0x9E3779B97F4A7C15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform. Two uniforms are consumed per call; no state is cached so
// the stream stays splittable.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns a multiplicative factor 1 ± scale drawn from a clamped
// normal distribution, used to model PMU measurement non-determinism.
func (r *RNG) Jitter(scale float64) float64 {
	f := 1 + scale*r.NormFloat64()
	if f < 1-3*scale {
		f = 1 - 3*scale
	}
	if f > 1+3*scale {
		f = 1 + 3*scale
	}
	return f
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}
