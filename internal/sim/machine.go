package sim

import "math"

// Conditions describes the external environment a core observes at one
// instant of virtual time: how much CPU it actually gets, how contended
// the memory system is, whether the L2-eviction hardware bug is active,
// and how slow IO and network are. The noise package composes schedules
// of injected noise into an Environment that answers these queries.
type Conditions struct {
	// CPUShare is the fraction of CPU time the application receives on
	// this core (1 = dedicated core; 0.5 = an OS-scheduled competitor,
	// like the paper's `stress` noise, steals half the timeslices).
	CPUShare float64
	// MemSlowdown multiplies memory-bound stall slots (1 = uncontended;
	// the paper's `stream` noise and the Nekbone degraded-DIMM node
	// both act through this knob).
	MemSlowdown float64
	// L2BugProb is the per-fragment probability that the Intel
	// L2-eviction erratum fires during the fragment (HPL case study).
	L2BugProb float64
	// L2BugSeverity is the extra stall-slot load per retiring slot
	// while an erratum episode is active.
	L2BugSeverity float64
	// IOSlowdown multiplies the service time of file-system operations.
	IOSlowdown float64
	// NetSlowdown multiplies network latency and inverse bandwidth.
	NetSlowdown float64
	// PageFaultRate is the rate of extra soft page faults per second of
	// CPU time (memory-pressure noise).
	PageFaultRate float64
}

// Ideal returns the conditions of a quiet, healthy machine.
func Ideal() Conditions {
	return Conditions{CPUShare: 1, MemSlowdown: 1, IOSlowdown: 1, NetSlowdown: 1}
}

// Environment answers what the external conditions are for a given core
// at a given virtual time. Implementations must be safe for concurrent
// use by multiple rank goroutines.
type Environment interface {
	At(node, core int, t Time) Conditions
}

// IdealEnv is the Environment of a perfectly quiet machine.
type IdealEnv struct{}

// At implements Environment.
func (IdealEnv) At(node, core int, t Time) Conditions { return Ideal() }

// Workload describes the intrinsic work of one computation fragment,
// independent of the machine state: how many instructions retire, how
// memory-heavy the instruction mix is, and how large the touched data
// set is. Two fragments with the same Workload are "fixed workload" in
// the paper's sense — absent variance they take the same time.
type Workload struct {
	// Instructions is the number of retired instructions.
	Instructions uint64
	// MemRatio in [0,1] is the memory intensity of the instruction mix
	// (0 = pure compute like EP, 1 = streaming like STREAM triad).
	MemRatio float64
	// WorkingSet is the touched data size in bytes; it determines which
	// cache level bounds the baseline memory stalls.
	WorkingSet uint64
	// BadSpec in [0,1] scales branch-misprediction pressure.
	BadSpec float64
	// StaticFixed marks the snippet's workload as provably fixed at
	// compile time (constant loop bounds). Execution ignores it; the
	// vSensor baseline uses it to model what static analysis can see.
	StaticFixed bool
}

// Scale returns a copy of w with the instruction count (and working set)
// multiplied by f. Useful for building workload classes in app skeletons.
func (w Workload) Scale(f float64) Workload {
	w.Instructions = uint64(float64(w.Instructions) * f)
	w.WorkingSet = uint64(float64(w.WorkingSet) * f)
	return w
}

// Config parameterizes a simulated machine.
type Config struct {
	Nodes        int     // number of nodes
	CoresPerNode int     // cores per node
	FreqGHz      float64 // core clock, cycles per nanosecond
	PMUJitter    float64 // relative stddev of counter reads (PMU error)
	Seed         uint64  // root of all randomness
}

// DefaultConfig returns a machine resembling one rack of the paper's
// testbed: dual 12-core Xeon nodes at 2.2 GHz.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:        nodes,
		CoresPerNode: 24,
		FreqGHz:      2.2,
		PMUJitter:    0.002,
		Seed:         1,
	}
}

// Machine executes workloads on simulated cores, producing elapsed
// virtual time and performance counters. The zero value is unusable;
// construct with NewMachine.
type Machine struct {
	cfg Config
}

// NewMachine validates cfg (filling zero fields with defaults) and
// returns a machine.
func NewMachine(cfg Config) *Machine {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 24
	}
	if cfg.FreqGHz <= 0 {
		cfg.FreqGHz = 2.2
	}
	if cfg.PMUJitter < 0 {
		cfg.PMUJitter = 0
	}
	return &Machine{cfg: cfg}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Nodes returns the node count.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// CoresPerNode returns the per-node core count.
func (m *Machine) CoresPerNode() int { return m.cfg.CoresPerNode }

// TotalCores returns Nodes*CoresPerNode.
func (m *Machine) TotalCores() int { return m.cfg.Nodes * m.cfg.CoresPerNode }

// Place maps a rank (or thread) index to a (node, core) pair, filling
// nodes densely in rank order like an MPI block distribution.
func (m *Machine) Place(rank int) (node, core int) {
	if rank < 0 {
		rank = 0
	}
	return (rank / m.cfg.CoresPerNode) % m.cfg.Nodes, rank % m.cfg.CoresPerNode
}

// CoreRNG derives the deterministic random stream for a (node, core)
// pair. The caller owns the returned RNG; Execute never stores it, so
// one goroutine per core needs no locking.
func (m *Machine) CoreRNG(node, core int) *RNG {
	return NewRNG(m.cfg.Seed).Split(uint64(node)<<20 | uint64(core))
}

// Baseline stall structure, in stall slots per retiring slot. The exact
// values are calibration constants; what matters for the reproduction is
// the accounting structure, not the absolute magnitudes.
const (
	frontendFrac  = 0.08 // frontend-bound slots per retiring slot
	badSpecBase   = 0.02 // bad-speculation slots per retiring slot at BadSpec=0
	badSpecScale  = 0.20 // additional at BadSpec=1
	coreBoundFrac = 0.22 // core-bound slots per compute-heavy retiring slot

	osTimeslice = 4 * Millisecond // preemption granularity under contention
	softPFCost  = 2 * Microsecond
	hardPFCost  = 150 * Microsecond
)

// memStallPerRetiring returns the baseline memory stall slots per
// retiring slot and its distribution over cache levels, as a function of
// the working set. Larger working sets spill to deeper, slower levels.
func memStallPerRetiring(workingSet uint64) (total float64, l1, l2, l3, dram float64) {
	const (
		l1Size = 32 << 10
		l2Size = 1 << 20
		l3Size = 30 << 20
	)
	switch {
	case workingSet <= l1Size:
		return 0.06, 1, 0, 0, 0
	case workingSet <= l2Size:
		return 0.18, 0.35, 0.65, 0, 0
	case workingSet <= l3Size:
		return 0.60, 0.15, 0.20, 0.65, 0
	default:
		// DRAM-resident streaming: the pipeline is mostly waiting on
		// memory, which is what lets a bandwidth deficit translate
		// into a nearly proportional slowdown (Nekbone case study).
		return 2.50, 0.04, 0.05, 0.08, 0.83
	}
}

// Execute runs workload w on (node, core) starting at virtual time `at`
// under environment env, consuming randomness from rng (owned by the
// caller). It returns the elapsed virtual time and the full counter
// snapshot; masking to the armed counter groups is the caller's job.
func (m *Machine) Execute(node, core int, w Workload, at Time, env Environment, rng *RNG) (Duration, Counters) {
	if w.Instructions == 0 {
		return 0, Counters{}
	}
	cond := env.At(node, core, at)
	if cond.CPUShare <= 0 || cond.CPUShare > 1 {
		cond.CPUShare = 1
	}
	if cond.MemSlowdown < 1 {
		cond.MemSlowdown = 1
	}

	retiring := float64(w.Instructions)

	// Baseline slot structure.
	frontend := frontendFrac * retiring
	badspec := (badSpecBase + badSpecScale*clamp01(w.BadSpec)) * retiring
	coreBound := coreBoundFrac * retiring * (1 - clamp01(w.MemRatio))
	memPer, fL1, fL2, fL3, fDRAM := memStallPerRetiring(w.WorkingSet)
	memBase := memPer * retiring * clamp01(w.MemRatio)
	l1 := memBase * fL1
	l2 := memBase * fL2
	l3 := memBase * fL3
	dram := memBase * fDRAM

	// Memory contention stretches memory stalls; the marginal stalls
	// are DRAM-bound (bandwidth saturation), matching what `stream`
	// noise does to a victim on hardware.
	if cond.MemSlowdown > 1 {
		dram += memBase * (cond.MemSlowdown - 1)
	}

	// Intel L2-eviction erratum: with probability L2BugProb the
	// fragment suffers an episode of forced L2 evictions, adding
	// stalls split between L2-bound (re-fetches that hit L3) and
	// DRAM-bound (lines evicted all the way out).
	l2MissStallCycles := 0.0
	if cond.L2BugProb > 0 && rng.Float64() < cond.L2BugProb {
		extra := cond.L2BugSeverity * retiring
		l2 += extra * 0.55
		dram += extra * 0.45
		l2MissStallCycles = extra / 4
	}

	// PMU measurement jitter, applied per component; cycles are then
	// recomputed from the jittered sum so the top-down slot identity
	// holds exactly on the measured values.
	j := func(v float64) float64 {
		if v <= 0 || m.cfg.PMUJitter == 0 {
			return v
		}
		return v * rng.Jitter(m.cfg.PMUJitter)
	}
	frontend, badspec, coreBound = j(frontend), j(badspec), j(coreBound)
	l1, l2, l3, dram = j(l1), j(l2), j(l3), j(dram)

	mem := l1 + l2 + l3 + dram
	backend := coreBound + mem
	totalSlots := frontend + badspec + retiring + backend
	cycles := totalSlots / 4
	runNS := cycles / m.cfg.FreqGHz
	runTime := Duration(runNS)
	if runTime < 1 {
		runTime = 1
	}

	// OS suspension: CPU contention steals (1-share)/share of the run
	// time via involuntary preemption; page faults suspend too.
	// Preemption is quantized at the scheduler timeslice: a fragment
	// shorter than one timeslice either runs through untouched or
	// loses a whole descheduling pause — which is why sparse samplers
	// (vSensor in Figure 12) see wildly wrong loss magnitudes while a
	// dense weighted average converges to the true share.
	var susp Duration
	var involCS, softPF, hardPF uint64
	if cond.CPUShare < 1 {
		pause := Duration(float64(osTimeslice) * (1 - cond.CPUShare) / cond.CPUShare)
		if runTime >= osTimeslice {
			stolen := Duration(float64(runTime) * (1 - cond.CPUShare) / cond.CPUShare)
			susp += stolen
			involCS = uint64(stolen/pause) + 1
		} else if rng.Float64() < float64(runTime)/float64(osTimeslice) {
			susp += pause
			involCS = 1
		}
	}
	basePF := float64(w.Instructions) / 2e8 // rare background faults
	extraPF := cond.PageFaultRate * runTime.Seconds()
	softPF += poissonish(rng, basePF+extraPF)
	susp += Duration(softPF) * softPFCost
	susp += Duration(hardPF) * hardPFCost

	elapsed := runTime + susp

	c := Counters{
		TotIns:        uint64(j(retiring)),
		Cycles:        uint64(cycles),
		TSC:           elapsed,
		SlotsFrontend: uint64(frontend),
		SlotsBadSpec:  uint64(badspec),
		SlotsRetiring: uint64(retiring),
		SlotsBackend:  uint64(backend),
		SlotsCore:     uint64(coreBound),
		SlotsMemory:   uint64(mem),
		SlotsL1:       uint64(l1),
		SlotsL2:       uint64(l2),
		SlotsL3:       uint64(l3),
		SlotsDRAM:     uint64(dram),
		Suspension:    susp,
		SoftPF:        softPF,
		HardPF:        hardPF,
		InvolCS:       involCS,
		LoadStores:    uint64(j(retiring * (0.20 + 0.40*clamp01(w.MemRatio)))),
		CacheMisses:   uint64(dram / 100),
		L2MissStall:   uint64(l2MissStallCycles),
	}
	return elapsed, c
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// poissonish draws an integer with mean lambda: a proper Poisson for
// small lambda, a rounded normal approximation for large ones.
func poissonish(rng *RNG, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	// Knuth's algorithm.
	l := math.Exp(-lambda)
	var k uint64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
