package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func testMachine() *Machine {
	return NewMachine(Config{Nodes: 2, CoresPerNode: 4, FreqGHz: 2.0, PMUJitter: 0.002, Seed: 1})
}

func exec(m *Machine, w Workload, env Environment) (Duration, Counters) {
	return m.Execute(0, 0, w, 0, env, m.CoreRNG(0, 0))
}

func TestExecuteZeroWork(t *testing.T) {
	d, c := exec(testMachine(), Workload{}, IdealEnv{})
	if d != 0 || c.TotIns != 0 {
		t.Fatalf("zero workload produced d=%v c=%+v", d, c)
	}
}

// The top-down identity must hold on measured values: the formula-based
// quantification depends on it.
func TestSlotIdentity(t *testing.T) {
	m := testMachine()
	for _, w := range []Workload{
		{Instructions: 1e6, MemRatio: 0.5, WorkingSet: 8 << 20},
		{Instructions: 5e5, MemRatio: 0.9, WorkingSet: 64 << 20},
		{Instructions: 2e6, MemRatio: 0.1, WorkingSet: 16 << 10, BadSpec: 0.5},
	} {
		_, c := exec(m, w, IdealEnv{})
		sum := c.SlotsFrontend + c.SlotsBadSpec + c.SlotsRetiring + c.SlotsBackend
		total := c.TotalSlots()
		if diff := math.Abs(float64(sum) - float64(total)); diff > 8 {
			t.Fatalf("S1 slot identity broken: sum=%d total=%d", sum, total)
		}
		if diff := math.Abs(float64(c.SlotsCore+c.SlotsMemory) - float64(c.SlotsBackend)); diff > 8 {
			t.Fatalf("S2 identity broken: core+mem=%d backend=%d", c.SlotsCore+c.SlotsMemory, c.SlotsBackend)
		}
		memSum := c.SlotsL1 + c.SlotsL2 + c.SlotsL3 + c.SlotsDRAM
		if diff := math.Abs(float64(memSum) - float64(c.SlotsMemory)); diff > 8 {
			t.Fatalf("S3 identity broken: L*=%d memory=%d", memSum, c.SlotsMemory)
		}
	}
}

func TestExecuteDeterminism(t *testing.T) {
	m1, m2 := testMachine(), testMachine()
	w := Workload{Instructions: 1e6, MemRatio: 0.6, WorkingSet: 8 << 20}
	d1, c1 := exec(m1, w, IdealEnv{})
	d2, c2 := exec(m2, w, IdealEnv{})
	if d1 != d2 || c1 != c2 {
		t.Fatal("same seed, same workload must give identical results")
	}
}

func TestTotInsStableUnderNoise(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 1e6, MemRatio: 0.6, WorkingSet: 8 << 20}
	noisy := constEnv{Conditions{CPUShare: 0.5, MemSlowdown: 3, IOSlowdown: 1, NetSlowdown: 1}}
	_, quiet := exec(m, w, IdealEnv{})
	_, loud := exec(m, w, noisy)
	rel := math.Abs(float64(quiet.TotIns)-float64(loud.TotIns)) / float64(quiet.TotIns)
	if rel > 0.02 {
		t.Fatalf("TOT_INS moved %.3f under noise; it is the workload proxy and must stay stable", rel)
	}
	if loud.TSC <= quiet.TSC {
		t.Fatalf("TSC did not grow under noise: %v <= %v", loud.TSC, quiet.TSC)
	}
}

type constEnv struct{ c Conditions }

func (e constEnv) At(node, core int, t Time) Conditions { return e.c }

func TestMemContentionHitsDRAM(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 1e6, MemRatio: 0.9, WorkingSet: 64 << 20}
	_, quiet := exec(m, w, IdealEnv{})
	_, loud := exec(m, w, constEnv{Conditions{CPUShare: 1, MemSlowdown: 3, IOSlowdown: 1, NetSlowdown: 1}})
	if loud.SlotsDRAM <= quiet.SlotsDRAM {
		t.Fatal("memory contention must add DRAM-bound stalls")
	}
	if relDiff(loud.SlotsRetiring, quiet.SlotsRetiring) > 0.02 {
		t.Fatal("memory contention must not change retiring slots")
	}
}

func relDiff(a, b uint64) float64 {
	return math.Abs(float64(a)-float64(b)) / math.Max(float64(b), 1)
}

func TestCPUContentionSuspends(t *testing.T) {
	m := testMachine()
	// Long workload (≫ timeslice) so the steady-state share applies.
	w := Workload{Instructions: 5e7, MemRatio: 0.3, WorkingSet: 1 << 20}
	_, quiet := exec(m, w, IdealEnv{})
	_, loud := exec(m, w, constEnv{Conditions{CPUShare: 0.5, MemSlowdown: 1, IOSlowdown: 1, NetSlowdown: 1}})
	if loud.Suspension == 0 || loud.InvolCS == 0 {
		t.Fatal("CPU contention must suspend and context-switch")
	}
	run := loud.TSC - loud.Suspension
	stealRatio := float64(loud.Suspension) / float64(run)
	if math.Abs(stealRatio-1.0) > 0.15 { // share 0.5 → stolen ≈ run
		t.Fatalf("share-0.5 contention stole %.2fx of runtime, want ~1x", stealRatio)
	}
	if quiet.Suspension > loud.Suspension {
		t.Fatal("quiet run suspended more than loud run")
	}
}

// Quantized preemption: fragments shorter than a timeslice either pass
// untouched or lose a whole pause, and the time-average converges to
// the configured share.
func TestQuantizedPreemption(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 2e6, MemRatio: 0.2, WorkingSet: 1 << 20} // ~ms scale
	env := constEnv{Conditions{CPUShare: 0.5, MemSlowdown: 1, IOSlowdown: 1, NetSlowdown: 1}}
	rng := m.CoreRNG(0, 0)
	var clean, hit int
	var totalRun, totalSusp float64
	for i := 0; i < 3000; i++ {
		d, c := m.Execute(0, 0, w, 0, env, rng)
		if c.Suspension == 0 {
			clean++
		} else {
			hit++
		}
		totalRun += float64(d - Duration(c.Suspension))
		totalSusp += float64(c.Suspension)
	}
	if clean == 0 || hit == 0 {
		t.Fatalf("quantized preemption must be all-or-nothing per fragment: clean=%d hit=%d", clean, hit)
	}
	// Expected: suspension ≈ runtime for share 0.5.
	if ratio := totalSusp / totalRun; math.Abs(ratio-1) > 0.1 {
		t.Fatalf("aggregate steal ratio %.2f, want ~1 for share 0.5", ratio)
	}
}

func TestL2BugEpisode(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 1e6, MemRatio: 0.35, WorkingSet: 768 << 10}
	env := constEnv{Conditions{CPUShare: 1, MemSlowdown: 1, IOSlowdown: 1, NetSlowdown: 1, L2BugProb: 1, L2BugSeverity: 1.6}}
	_, quiet := exec(m, w, IdealEnv{})
	_, buggy := exec(m, w, env)
	if buggy.SlotsL2 <= quiet.SlotsL2 || buggy.SlotsDRAM <= quiet.SlotsDRAM {
		t.Fatal("erratum must add L2 and DRAM stalls")
	}
	if buggy.L2MissStall == 0 {
		t.Fatal("erratum must show up in the L2-miss stall counter")
	}
	if buggy.TSC <= quiet.TSC {
		t.Fatal("erratum must slow the fragment")
	}
}

func TestPageFaultNoise(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 5e7, MemRatio: 0.3, WorkingSet: 1 << 20}
	env := constEnv{Conditions{CPUShare: 1, MemSlowdown: 1, IOSlowdown: 1, NetSlowdown: 1, PageFaultRate: 1e5}}
	_, c := exec(m, w, env)
	if c.SoftPF == 0 {
		t.Fatal("page-fault noise produced no faults")
	}
	if c.Suspension == 0 {
		t.Fatal("page faults must suspend")
	}
}

func TestPlacement(t *testing.T) {
	m := testMachine() // 2 nodes × 4 cores
	cases := []struct{ rank, node, core int }{
		{0, 0, 0}, {3, 0, 3}, {4, 1, 0}, {7, 1, 3}, {8, 0, 0},
	}
	for _, c := range cases {
		n, co := m.Place(c.rank)
		if n != c.node || co != c.core {
			t.Fatalf("Place(%d) = (%d,%d), want (%d,%d)", c.rank, n, co, c.node, c.core)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	m := NewMachine(Config{})
	if m.Nodes() != 1 || m.CoresPerNode() != 24 || m.Config().FreqGHz != 2.2 {
		t.Fatalf("defaults not filled: %+v", m.Config())
	}
	if m.TotalCores() != 24 {
		t.Fatalf("TotalCores = %d", m.TotalCores())
	}
}

func TestWorkloadScale(t *testing.T) {
	w := Workload{Instructions: 1000, WorkingSet: 2000, MemRatio: 0.5}
	s := w.Scale(0.5)
	if s.Instructions != 500 || s.WorkingSet != 1000 || s.MemRatio != 0.5 {
		t.Fatalf("Scale: %+v", s)
	}
}

// Property: elapsed time grows monotonically with instruction count.
func TestElapsedMonotoneInInstructions(t *testing.T) {
	m := NewMachine(Config{Nodes: 1, CoresPerNode: 1, FreqGHz: 2, PMUJitter: 0, Seed: 1})
	f := func(a, b uint32) bool {
		ia, ib := uint64(a%1e6)+1, uint64(b%1e6)+1
		if ia > ib {
			ia, ib = ib, ia
		}
		da, _ := exec(m, Workload{Instructions: ia, MemRatio: 0.5, WorkingSet: 1 << 20}, IdealEnv{})
		db, _ := exec(m, Workload{Instructions: ib, MemRatio: 0.5, WorkingSet: 1 << 20}, IdealEnv{})
		return da <= db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed workloads take fixed time (within PMU jitter) absent
// variance — the paper's core premise.
func TestFixedWorkloadFixedTime(t *testing.T) {
	m := testMachine()
	w := Workload{Instructions: 1e6, MemRatio: 0.7, WorkingSet: 8 << 20}
	rng := m.CoreRNG(1, 2)
	var min, max Duration = math.MaxInt64, 0
	for i := 0; i < 200; i++ {
		d, _ := m.Execute(1, 2, w, 0, IdealEnv{}, rng)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if spread := float64(max-min) / float64(min); spread > 0.05 {
		t.Fatalf("fixed workload spread %.3f exceeds tolerance", spread)
	}
}

func TestPoissonish(t *testing.T) {
	rng := NewRNG(11)
	if poissonish(rng, 0) != 0 {
		t.Fatal("lambda 0")
	}
	// Small lambda: Knuth branch; mean ~ lambda.
	var sum float64
	for i := 0; i < 20000; i++ {
		sum += float64(poissonish(rng, 2.5))
	}
	if m := sum / 20000; math.Abs(m-2.5) > 0.1 {
		t.Fatalf("small-lambda mean %v", m)
	}
	// Large lambda: normal approximation branch.
	sum = 0
	for i := 0; i < 5000; i++ {
		sum += float64(poissonish(rng, 100))
	}
	if m := sum / 5000; math.Abs(m-100) > 2 {
		t.Fatalf("large-lambda mean %v", m)
	}
}

func TestMemStallTiers(t *testing.T) {
	m := NewMachine(Config{Nodes: 1, CoresPerNode: 1, FreqGHz: 2, PMUJitter: 0, Seed: 1})
	mk := func(ws uint64) Counters {
		_, c := exec(m, Workload{Instructions: 1e6, MemRatio: 0.9, WorkingSet: ws}, IdealEnv{})
		return c
	}
	l1 := mk(16 << 10)
	l2 := mk(512 << 10)
	l3 := mk(8 << 20)
	dram := mk(256 << 20)
	if !(l1.SlotsMemory < l2.SlotsMemory && l2.SlotsMemory < l3.SlotsMemory && l3.SlotsMemory < dram.SlotsMemory) {
		t.Fatalf("memory stalls not monotone in working set: %d %d %d %d",
			l1.SlotsMemory, l2.SlotsMemory, l3.SlotsMemory, dram.SlotsMemory)
	}
	if dram.SlotsDRAM <= l3.SlotsDRAM {
		t.Fatal("DRAM-resident workload must be DRAM-bound")
	}
	if l1.SlotsL1 == 0 || l1.SlotsDRAM != 0 {
		t.Fatalf("L1-resident workload: %+v", l1)
	}
}
