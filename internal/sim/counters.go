package sim

// Counters is a snapshot of the performance counters the simulated PMU
// and OS expose for one fragment of execution. The layout mirrors the
// variance breakdown model of the paper (Figure 10):
//
//	computation time
//	├── frontend bound        (S1, pipeline slots)
//	├── bad speculation       (S1, pipeline slots)
//	├── retiring              (S1, pipeline slots)
//	├── backend bound         (S1, pipeline slots)
//	│   ├── core bound        (S2)
//	│   └── memory bound      (S2)
//	│       ├── L1 bound      (S3)
//	│       ├── L2 bound      (S3)
//	│       ├── L3 bound      (S3)
//	│       └── DRAM bound    (S3)
//	└── suspension            (S1, nanoseconds of virtual time)
//	    ├── page faults       (S2, counts)
//	    │   ├── soft PF       (S3)
//	    │   └── hard PF       (S3)
//	    ├── context switches  (S2, counts)
//	    │   ├── voluntary     (S3)
//	    │   └── involuntary   (S3)
//	    └── signals           (S2, counts)
//
// Slot counters satisfy the top-down identity
//
//	SlotsFrontend + SlotsBadSpec + SlotsRetiring + SlotsBackend = 4*Cycles
//	SlotsCore + SlotsMemory = SlotsBackend
//	SlotsL1 + SlotsL2 + SlotsL3 + SlotsDRAM = SlotsMemory
//
// which the formula-based quantification in internal/diagnose relies on,
// exactly as the real top-down method [Yasin'14] does on hardware.
type Counters struct {
	// Always-available base group.
	TotIns uint64   // TOT_INS: retired instructions (the workload proxy)
	Cycles uint64   // unhalted core cycles
	TSC    Duration // elapsed virtual time including suspension

	// Top-down level 1 (pipeline slots).
	SlotsFrontend uint64
	SlotsBadSpec  uint64
	SlotsRetiring uint64
	SlotsBackend  uint64

	// Backend split (level 2).
	SlotsCore   uint64
	SlotsMemory uint64

	// Memory-bound split (level 3).
	SlotsL1   uint64
	SlotsL2   uint64
	SlotsL3   uint64
	SlotsDRAM uint64

	// OS software counters.
	Suspension Duration // time the process was not running on a CPU
	SoftPF     uint64   // minor page faults
	HardPF     uint64   // major page faults
	VolCS      uint64   // voluntary context switches
	InvolCS    uint64   // involuntary context switches
	Signals    uint64   // signals delivered

	// Optional extra PMU metrics users may select for clustering.
	LoadStores  uint64 // retired load+store instructions
	CacheMisses uint64 // last-level cache misses
	L2MissStall uint64 // CYCLE_ACTIVITY.STALLS_L2_MISS analogue (cycles)
}

// Add accumulates o into c. Used to merge the counters of consecutive
// Compute calls into a single computation fragment.
func (c *Counters) Add(o Counters) {
	c.TotIns += o.TotIns
	c.Cycles += o.Cycles
	c.TSC += o.TSC
	c.SlotsFrontend += o.SlotsFrontend
	c.SlotsBadSpec += o.SlotsBadSpec
	c.SlotsRetiring += o.SlotsRetiring
	c.SlotsBackend += o.SlotsBackend
	c.SlotsCore += o.SlotsCore
	c.SlotsMemory += o.SlotsMemory
	c.SlotsL1 += o.SlotsL1
	c.SlotsL2 += o.SlotsL2
	c.SlotsL3 += o.SlotsL3
	c.SlotsDRAM += o.SlotsDRAM
	c.Suspension += o.Suspension
	c.SoftPF += o.SoftPF
	c.HardPF += o.HardPF
	c.VolCS += o.VolCS
	c.InvolCS += o.InvolCS
	c.Signals += o.Signals
	c.LoadStores += o.LoadStores
	c.CacheMisses += o.CacheMisses
	c.L2MissStall += o.L2MissStall
}

// TotalSlots returns 4*Cycles, the top-down pipeline slot budget.
func (c *Counters) TotalSlots() uint64 { return 4 * c.Cycles }

// Group identifies a set of counters that can be armed simultaneously.
// Real PMUs expose only a few programmable counters at a time; the
// progressive diagnosis asks clients to switch groups stage by stage so
// that the concurrently active set stays small. The simulator always
// computes every counter; Mask zeroes the ones outside the armed groups
// so the analysis layers only ever see what a real client would deliver.
type Group uint8

const (
	// GroupBase is always armed: TOT_INS, cycles, TSC.
	GroupBase Group = 1 << iota
	// GroupTopdownL1 arms the four S1 slot counters plus suspension time.
	GroupTopdownL1
	// GroupBackend arms the S2 backend split (core vs memory bound).
	GroupBackend
	// GroupMemory arms the S3 memory-level split (L1/L2/L3/DRAM bound).
	GroupMemory
	// GroupOS arms the S2/S3 OS counters (page faults, context
	// switches, signals).
	GroupOS
	// GroupExtra arms the optional clustering metrics (loads/stores,
	// cache misses, L2-miss stall cycles).
	GroupExtra
)

// GroupAll arms every counter group.
const GroupAll = GroupBase | GroupTopdownL1 | GroupBackend | GroupMemory | GroupOS | GroupExtra

// Has reports whether g includes all groups in q.
func (g Group) Has(q Group) bool { return g&q == q }

// Count reports how many distinct groups are armed in g; the paper's
// overhead argument is that this number stays small at every stage.
func (g Group) Count() int {
	n := 0
	for b := Group(1); b != 0 && b <= g; b <<= 1 {
		if g&b != 0 {
			n++
		}
	}
	return n
}

// Mask returns a copy of c with every counter outside the armed groups
// zeroed. GroupBase fields are always retained because TSC and TOT_INS
// drive clustering and detection at every stage.
func (c Counters) Mask(armed Group) Counters {
	out := Counters{TotIns: c.TotIns, Cycles: c.Cycles, TSC: c.TSC}
	if armed.Has(GroupTopdownL1) {
		out.SlotsFrontend = c.SlotsFrontend
		out.SlotsBadSpec = c.SlotsBadSpec
		out.SlotsRetiring = c.SlotsRetiring
		out.SlotsBackend = c.SlotsBackend
		out.Suspension = c.Suspension
	}
	if armed.Has(GroupBackend) {
		out.SlotsCore = c.SlotsCore
		out.SlotsMemory = c.SlotsMemory
	}
	if armed.Has(GroupMemory) {
		out.SlotsL1 = c.SlotsL1
		out.SlotsL2 = c.SlotsL2
		out.SlotsL3 = c.SlotsL3
		out.SlotsDRAM = c.SlotsDRAM
	}
	if armed.Has(GroupOS) {
		out.Suspension = c.Suspension
		out.SoftPF = c.SoftPF
		out.HardPF = c.HardPF
		out.VolCS = c.VolCS
		out.InvolCS = c.InvolCS
		out.Signals = c.Signals
	}
	if armed.Has(GroupExtra) {
		out.LoadStores = c.LoadStores
		out.CacheMisses = c.CacheMisses
		out.L2MissStall = c.L2MissStall
	}
	return out
}
