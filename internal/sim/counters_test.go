package sim

import (
	"testing"
	"testing/quick"
)

func sampleCounters() Counters {
	return Counters{
		TotIns: 1000, Cycles: 500, TSC: 700,
		SlotsFrontend: 100, SlotsBadSpec: 50, SlotsRetiring: 1000, SlotsBackend: 850,
		SlotsCore: 200, SlotsMemory: 650,
		SlotsL1: 100, SlotsL2: 150, SlotsL3: 200, SlotsDRAM: 200,
		Suspension: 42, SoftPF: 3, HardPF: 1, VolCS: 2, InvolCS: 5, Signals: 1,
		LoadStores: 400, CacheMisses: 7, L2MissStall: 9,
	}
}

func TestCountersAdd(t *testing.T) {
	a := sampleCounters()
	b := sampleCounters()
	a.Add(b)
	if a.TotIns != 2000 || a.Cycles != 1000 || a.TSC != 1400 {
		t.Fatalf("Add base fields: %+v", a)
	}
	if a.SlotsDRAM != 400 || a.InvolCS != 10 || a.Suspension != 84 {
		t.Fatalf("Add detail fields: %+v", a)
	}
}

func TestTotalSlots(t *testing.T) {
	c := Counters{Cycles: 25}
	if c.TotalSlots() != 100 {
		t.Fatalf("TotalSlots = %d", c.TotalSlots())
	}
}

func TestGroupHasAndCount(t *testing.T) {
	g := GroupBase | GroupOS
	if !g.Has(GroupBase) || !g.Has(GroupOS) || g.Has(GroupMemory) {
		t.Fatal("Has misbehaves")
	}
	if g.Count() != 2 {
		t.Fatalf("Count = %d", g.Count())
	}
	if GroupAll.Count() != 6 {
		t.Fatalf("GroupAll.Count = %d", GroupAll.Count())
	}
}

func TestMaskBaseAlwaysKept(t *testing.T) {
	c := sampleCounters()
	m := c.Mask(GroupBase)
	if m.TotIns != c.TotIns || m.Cycles != c.Cycles || m.TSC != c.TSC {
		t.Fatal("base fields must survive any mask")
	}
	if m.SlotsBackend != 0 || m.SoftPF != 0 || m.LoadStores != 0 {
		t.Fatalf("non-armed fields leaked: %+v", m)
	}
}

func TestMaskGroupSelectivity(t *testing.T) {
	c := sampleCounters()

	m := c.Mask(GroupBase | GroupTopdownL1)
	if m.SlotsFrontend != c.SlotsFrontend || m.Suspension != c.Suspension {
		t.Fatal("topdown L1 group not delivered")
	}
	if m.SlotsMemory != 0 || m.SlotsL2 != 0 || m.SoftPF != 0 {
		t.Fatal("other groups leaked through topdown mask")
	}

	m = c.Mask(GroupBase | GroupBackend)
	if m.SlotsCore != c.SlotsCore || m.SlotsMemory != c.SlotsMemory {
		t.Fatal("backend group not delivered")
	}
	if m.SlotsL1 != 0 {
		t.Fatal("memory group leaked through backend mask")
	}

	m = c.Mask(GroupBase | GroupMemory)
	if m.SlotsL3 != c.SlotsL3 || m.SlotsDRAM != c.SlotsDRAM {
		t.Fatal("memory group not delivered")
	}

	m = c.Mask(GroupBase | GroupOS)
	if m.SoftPF != c.SoftPF || m.InvolCS != c.InvolCS || m.Suspension != c.Suspension {
		t.Fatal("OS group not delivered")
	}

	m = c.Mask(GroupBase | GroupExtra)
	if m.LoadStores != c.LoadStores || m.L2MissStall != c.L2MissStall {
		t.Fatal("extra group not delivered")
	}
}

func TestMaskAllIsIdentity(t *testing.T) {
	c := sampleCounters()
	if c.Mask(GroupAll) != c {
		t.Fatal("GroupAll mask must be identity")
	}
}

// Property: masking is idempotent.
func TestMaskIdempotent(t *testing.T) {
	f := func(armedBits uint8) bool {
		armed := Group(armedBits) & GroupAll
		c := sampleCounters()
		once := c.Mask(armed)
		twice := once.Mask(armed)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
