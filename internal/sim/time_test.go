package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Fatalf("2s = %v seconds", s)
	}
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("1500ms = %v seconds", s)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(3 * Second)
	if t0.Seconds() != 3 {
		t.Fatalf("Add: %v", t0)
	}
	if d := t0.Sub(Time(Second)); d != 2*Second {
		t.Fatalf("Sub: %v", d)
	}
}

func TestFromSeconds(t *testing.T) {
	if d := FromSeconds(0.25); d != 250*Millisecond {
		t.Fatalf("FromSeconds(0.25) = %v", d)
	}
}

func TestDurationString(t *testing.T) {
	if s := (1500 * Millisecond).String(); s != "1.5s" {
		t.Fatalf("String: %q", s)
	}
}

// Property: Add/Sub round-trip.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 50))
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
