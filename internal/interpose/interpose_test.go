package interpose

import (
	"sync"
	"testing"

	"vapro/internal/mpi"
	"vapro/internal/rt"
	"vapro/internal/sim"
	"vapro/internal/trace"
	"vapro/internal/vfs"
)

// memSink accumulates fragments in memory.
type memSink struct {
	mu    sync.Mutex
	frags []trace.Fragment
}

func (s *memSink) Consume(rank int, frags []trace.Fragment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frags = append(s.frags, frags...)
}

func (s *memSink) byKind(k trace.Kind) []trace.Fragment {
	var out []trace.Fragment
	for _, f := range s.frags {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

func runTraced(t *testing.T, size int, opt Options, body func(r rt.Runtime)) (*memSink, []sim.Time) {
	t.Helper()
	m := sim.NewMachine(sim.Config{Nodes: 1, CoresPerNode: size, FreqGHz: 2, Seed: 1})
	w := mpi.NewWorld(size, m, sim.IdealEnv{})
	sink := &memSink{}
	clocks := w.Run(func(r *mpi.Rank) {
		tr := NewTraced(r, rt.Config{}, opt, sink, nil)
		body(tr)
		tr.Flush()
	})
	return sink, clocks
}

var wl = sim.Workload{Instructions: 1e6, MemRatio: 0.5, WorkingSet: 1 << 20}

func TestFragmentSplitting(t *testing.T) {
	sink, _ := runTraced(t, 2, DefaultOptions(), func(r rt.Runtime) {
		for i := 0; i < 5; i++ {
			r.Compute(wl)
			r.Barrier()
		}
	})
	comp := sink.byKind(trace.Comp)
	syncs := sink.byKind(trace.Sync)
	if len(comp) != 10 { // 5 per rank
		t.Fatalf("comp fragments: %d, want 10", len(comp))
	}
	if len(syncs) != 10 {
		t.Fatalf("sync fragments: %d", len(syncs))
	}
	for _, f := range comp {
		if f.Counters.TotIns == 0 {
			t.Fatal("compute counters not accumulated")
		}
		if f.Elapsed <= 0 {
			t.Fatal("fragment without elapsed time")
		}
	}
}

// Time conservation: fragments partition the rank's execution.
func TestTimeConservation(t *testing.T) {
	sink, clocks := runTraced(t, 1, DefaultOptions(), func(r rt.Runtime) {
		for i := 0; i < 10; i++ {
			r.Compute(wl)
			r.Barrier()
		}
	})
	var covered int64
	var lastEnd int64
	for _, f := range sink.frags {
		covered += f.Elapsed
		if e := f.Start + f.Elapsed; e > lastEnd {
			lastEnd = e
		}
	}
	total := int64(clocks[0])
	// Fragments cover everything except per-event interception cost.
	if float64(covered) < 0.95*float64(total) {
		t.Fatalf("fragments cover %d of %d ns", covered, total)
	}
	if lastEnd > total {
		t.Fatalf("fragment ends (%d) after the clock (%d)", lastEnd, total)
	}
}

func TestCallSitesDistinguished(t *testing.T) {
	sink, _ := runTraced(t, 2, DefaultOptions(), func(r rt.Runtime) {
		other := (r.Rank() + 1) % 2
		for i := 0; i < 3; i++ {
			q := r.Irecv(other, 1)
			r.Send(other, 1, 100) // site A
			r.Wait(q)
			q = r.Irecv(other, 2)
			r.Send(other, 2, 100) // site B
			r.Wait(q)
		}
	})
	states := map[uint64]bool{}
	for _, f := range sink.byKind(trace.Comm) {
		if f.Args.Op == trace.OpSend {
			states[f.State] = true
		}
	}
	if len(states) != 2 {
		t.Fatalf("two Send call-sites produced %d states", len(states))
	}
}

func TestContextAwareSplitsPaths(t *testing.T) {
	body := func(r rt.Runtime) {
		viaA := func() { r.Barrier() }
		viaB := func() { r.Barrier() }
		for i := 0; i < 3; i++ {
			viaA()
			viaB()
		}
	}
	cf, _ := runTraced(t, 2, DefaultOptions(), body)
	opt := DefaultOptions()
	opt.Mode = ContextAware
	ca, _ := runTraced(t, 2, opt, body)

	countStates := func(s *memSink) int {
		m := map[uint64]bool{}
		for _, f := range s.byKind(trace.Sync) {
			m[f.State] = true
		}
		return len(m)
	}
	// Context-free: one Barrier call-site (inside the closures the
	// call-sites differ — two sites). Context-aware sees at least as
	// many states as context-free.
	if countStates(ca) < countStates(cf) {
		t.Fatalf("context-aware states (%d) fewer than context-free (%d)", countStates(ca), countStates(cf))
	}
}

func TestContextAwareCostsMore(t *testing.T) {
	body := func(r rt.Runtime) {
		for i := 0; i < 50; i++ {
			r.Compute(wl)
			r.Barrier()
		}
	}
	_, cf := runTraced(t, 2, DefaultOptions(), body)
	opt := DefaultOptions()
	opt.Mode = ContextAware
	_, ca := runTraced(t, 2, opt, body)
	if ca[0] <= cf[0] {
		t.Fatalf("context-aware (%v) not slower than context-free (%v)", ca[0], cf[0])
	}
}

func TestStaticFlagPropagation(t *testing.T) {
	sink, _ := runTraced(t, 1, DefaultOptions(), func(r rt.Runtime) {
		st := wl
		st.StaticFixed = true
		r.Compute(st) // all-static segment
		r.Barrier()
		r.Compute(st)
		r.Compute(wl) // mixed segment
		r.Barrier()
		r.Compute(wl) // dynamic segment
		r.Barrier()
	})
	comp := sink.byKind(trace.Comp)
	if len(comp) != 3 {
		t.Fatalf("comp fragments: %d", len(comp))
	}
	if !comp[0].Static || comp[1].Static || comp[2].Static {
		t.Fatalf("static flags: %v %v %v", comp[0].Static, comp[1].Static, comp[2].Static)
	}
}

func TestTruthLabels(t *testing.T) {
	sink, _ := runTraced(t, 1, DefaultOptions(), func(r rt.Runtime) {
		r.Compute(wl)
		r.Barrier()
		r.Compute(wl)
		r.Barrier()
		r.Compute(wl.Scale(2))
		r.Barrier()
	})
	comp := sink.byKind(trace.Comp)
	if comp[0].Truth == 0 {
		t.Fatal("missing truth label")
	}
	if comp[0].Truth != comp[1].Truth {
		t.Fatal("same workload, different truth")
	}
	if comp[0].Truth == comp[2].Truth {
		t.Fatal("different workloads, same truth")
	}
}

func TestProbeBackoff(t *testing.T) {
	opt := DefaultOptions()
	opt.BackoffThreshold = 10 * sim.Millisecond // everything is "too short"
	sink, _ := runTraced(t, 1, opt, func(r rt.Runtime) {
		for i := 0; i < 1000; i++ {
			r.Compute(sim.Workload{Instructions: 1000, MemRatio: 0.1, WorkingSet: 1 << 10})
			r.Probe("hot")
		}
	})
	probes := len(sink.byKind(trace.Probe))
	if probes == 0 {
		t.Fatal("backoff dropped every probe")
	}
	if probes > 200 {
		t.Fatalf("backoff ineffective: %d of 1000 probes recorded", probes)
	}
}

func TestProbeNoBackoffWhenLong(t *testing.T) {
	long := sim.Workload{Instructions: 5e6, MemRatio: 0.5, WorkingSet: 1 << 20}
	sink, _ := runTraced(t, 1, DefaultOptions(), func(r rt.Runtime) {
		for i := 0; i < 20; i++ {
			r.Compute(long) // ~ms, above the 200µs threshold
			r.Probe("cool")
		}
	})
	if probes := len(sink.byKind(trace.Probe)); probes < 18 {
		t.Fatalf("long fragments should keep all probes: %d of 20", probes)
	}
}

func TestSampleShortOps(t *testing.T) {
	opt := DefaultOptions()
	opt.SampleShortOps = sim.Second // everything is short → sampled
	sink, _ := runTraced(t, 2, opt, func(r rt.Runtime) {
		other := (r.Rank() + 1) % 2
		for i := 0; i < 200; i++ {
			q := r.Irecv(other, 0)
			r.Send(other, 0, 10)
			r.Wait(q)
		}
	})
	comm := len(sink.byKind(trace.Comm))
	if comm == 0 {
		t.Fatal("sampling dropped everything")
	}
	if comm >= 1200 { // 3 ops × 200 iters × 2 ranks unsampled
		t.Fatalf("sampling ineffective: %d comm fragments", comm)
	}
}

func TestIOInterception(t *testing.T) {
	fs := vfs.New(sim.IdealEnv{}, 1)
	fs.Create("/in", 4096)
	m := sim.NewMachine(sim.Config{Nodes: 1, CoresPerNode: 1, FreqGHz: 2, Seed: 1})
	w := mpi.NewWorld(1, m, sim.IdealEnv{})
	sink := &memSink{}
	w.Run(func(r *mpi.Rank) {
		tr := NewTraced(r, rt.Config{FS: fs}, DefaultOptions(), sink, nil)
		fd, err := tr.Open("/in", vfs.ReadOnly)
		if err != nil {
			t.Error(err)
			return
		}
		tr.ReadF(fd, 4096)
		tr.WriteF(fd, 0) // nil-safe path
		tr.CloseF(fd)
		tr.Flush()
	})
	io := sink.byKind(trace.IO)
	ops := map[string]int{}
	for _, f := range io {
		ops[f.Args.Op.String()]++
	}
	if ops["open"] != 1 || ops["read"] != 1 || ops["close"] != 1 {
		t.Fatalf("IO ops: %v", ops)
	}
}

func TestArmedSharedHandle(t *testing.T) {
	a := NewArmed(sim.GroupBase)
	if a.Get() != sim.GroupBase {
		t.Fatal("initial groups")
	}
	a.Set(sim.GroupAll)
	if a.Get() != sim.GroupAll {
		t.Fatal("update lost")
	}
	var zero Armed
	if zero.Get() == 0 {
		t.Fatal("zero Armed must fall back to a sane default")
	}
}

func TestNilSinkRecordsNothing(t *testing.T) {
	m := sim.NewMachine(sim.Config{Nodes: 1, CoresPerNode: 1, FreqGHz: 2, Seed: 1})
	w := mpi.NewWorld(1, m, sim.IdealEnv{})
	w.Run(func(r *mpi.Rank) {
		tr := NewTraced(r, rt.Config{}, DefaultOptions(), nil, nil)
		tr.Compute(wl)
		tr.Barrier()
		tr.Flush() // must not panic
		if tr.Events != 1 {
			t.Errorf("events: %d", tr.Events)
		}
	})
}

func TestModeString(t *testing.T) {
	if ContextFree.String() != "context-free" || ContextAware.String() != "context-aware" {
		t.Fatal("mode strings")
	}
}

func TestOpenWithoutFS(t *testing.T) {
	m := sim.NewMachine(sim.Config{Nodes: 1, CoresPerNode: 1, FreqGHz: 2, Seed: 1})
	w := mpi.NewWorld(1, m, sim.IdealEnv{})
	w.Run(func(r *mpi.Rank) {
		tr := NewTraced(r, rt.Config{}, DefaultOptions(), nil, nil)
		if _, err := tr.Open("/x", vfs.ReadOnly); err == nil {
			t.Error("open without FS succeeded")
		}
	})
}

// §3.2: code executed in both a warm-up and a timed phase has one state
// per call-site in a context-free STG but two per call-path in a
// context-aware one.
func TestWarmupTimedPhases(t *testing.T) {
	body := func(r rt.Runtime) {
		step := func() {
			r.Compute(wl)
			r.Barrier()
		}
		warmup := func() { step() }
		timed := func() { step() }
		for i := 0; i < 3; i++ {
			warmup()
		}
		for i := 0; i < 6; i++ {
			timed()
		}
	}
	countSyncStates := func(s *memSink) int {
		m := map[uint64]bool{}
		for _, f := range s.byKind(trace.Sync) {
			m[f.State] = true
		}
		return len(m)
	}
	cf, _ := runTraced(t, 1, DefaultOptions(), body)
	opt := DefaultOptions()
	opt.Mode = ContextAware
	ca, _ := runTraced(t, 1, opt, body)
	if n := countSyncStates(cf); n != 1 {
		t.Fatalf("context-free states: %d, want 1 (one call-site)", n)
	}
	if n := countSyncStates(ca); n != 2 {
		t.Fatalf("context-aware states: %d, want 2 (warm-up and timed call paths)", n)
	}
}
