// Package interpose is Vapro's data-collection layer: the simulated
// equivalent of the LD_PRELOAD/dlsym shim described in §5 of the paper.
// It implements the same rt.Runtime interface the plain runtime does,
// but on every external invocation it
//
//  1. closes the pending computation fragment (everything since the
//     previous interception) and attaches it to the STG edge between the
//     previous and current states,
//  2. executes the real operation through the substrate,
//  3. records a communication/IO fragment with the invocation arguments
//     on the current state's STG vertex, and
//  4. charges the interception's own cost into the rank's virtual clock,
//     which is how the tool's runtime overhead (Table 1) arises.
//
// Call-sites are captured with runtime.Caller — the in-process analogue
// of the return address a real PMPI wrapper sees — and call-paths with
// runtime.Callers, whose extra backtracing cost is exactly why the
// paper's context-aware mode is more expensive than context-free.
package interpose

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"vapro/internal/mpi"
	"vapro/internal/obs"
	"vapro/internal/rt"
	"vapro/internal/sim"
	"vapro/internal/trace"
	"vapro/internal/vfs"
)

// errNoFS is returned by IO operations when no file system was
// configured for the traced rank.
var errNoFS = errors.New("interpose: no file system configured")

// Mode selects how running states are derived (§3.2).
type Mode int

const (
	// ContextFree keys states by call-site only.
	ContextFree Mode = iota
	// ContextAware keys states by the full call path.
	ContextAware
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ContextAware {
		return "context-aware"
	}
	return "context-free"
}

// Sink consumes fragment batches from traced ranks. Implementations
// must be safe for concurrent use by all ranks.
type Sink interface {
	Consume(rank int, frags []trace.Fragment)
}

// Options configures the interposition layer.
type Options struct {
	Mode Mode
	// FlushEvery is the client buffer size before a batch is pushed to
	// the sink.
	FlushEvery int
	// BackoffThreshold: probes arriving more often than this are
	// sampled with binary exponential backoff (§5).
	BackoffThreshold sim.Duration
	// SampleShortOps, when > 0, records only one in `stride` external
	// invocations shorter than this (the §3.5 sampling knob); stride
	// adapts with the same backoff policy.
	SampleShortOps sim.Duration

	// Interception cost model, charged into virtual time.
	CostPerEvent    sim.Duration // bookkeeping per interception (context-free)
	CostBacktrace   sim.Duration // extra per interception in context-aware mode
	CostCounterRead sim.Duration // per PMU counter-group read
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{
		Mode:             ContextFree,
		FlushEvery:       256,
		BackoffThreshold: 200 * sim.Microsecond,
		CostPerEvent:     5000 * sim.Nanosecond,
		CostBacktrace:    8000 * sim.Nanosecond,
		CostCounterRead:  600 * sim.Nanosecond,
	}
}

// Armed is a shared, atomically updated counter-group selection. The
// server flips groups during progressive diagnosis; every traced rank
// reads it at each fragment boundary.
type Armed struct{ v atomic.Uint32 }

// NewArmed starts with the given groups armed.
func NewArmed(g sim.Group) *Armed {
	a := &Armed{}
	a.Set(g)
	return a
}

// Set replaces the armed groups.
func (a *Armed) Set(g sim.Group) { a.v.Store(uint32(g)) }

// Get returns the armed groups.
func (a *Armed) Get() sim.Group {
	g := sim.Group(a.v.Load())
	if g == 0 {
		g = sim.GroupBase | sim.GroupTopdownL1
	}
	return g
}

// Traced is the instrumented runtime for one rank.
type Traced struct {
	r    *mpi.Rank
	fs   *vfs.FS
	buf  *vfs.Buffer
	opt  Options
	sink Sink
	arm  *Armed

	files  map[int]*vfs.File
	nextFD int

	// Fragment assembly state.
	prevState     uint64       // STG state at the previous interception's exit
	segStart      sim.Time     // virtual time of the previous interception's exit
	pending       sim.Counters // accumulated compute counters since then
	pendingStatic bool         // all compute calls so far had StaticFixed workloads
	pendingAny    bool         // any compute call happened in the segment
	pendingTruth  uint64       // ground-truth workload hash of the segment
	batch         []trace.Fragment
	backoff       map[string]*backoffState
	opStride      map[trace.Site]*backoffState
	siteOfState   map[uint64]string

	// skipping marks the current invocation as sampled out: the op
	// still runs, but no fragments are cut around it.
	skipping bool

	// Statistics for overhead/coverage accounting.
	Events   int
	Dropped  int
	BytesOut int64

	// met, when set, receives deltas of the stats above at each Flush;
	// pushed are the previously unreported amounts, so shared counters
	// are touched once per batch instead of once per interception.
	met          *Metrics
	pushedEvents int
	pushedDrops  int
	pushedBytes  int64
}

// Metrics is the client layer's shared observability surface — one set
// of counters aggregated across every traced rank feeding a collector.
type Metrics struct {
	// Interceptions counts recorded external invocations (Events).
	Interceptions *obs.Counter
	// Fragments counts fragments shipped to the sink.
	Fragments *obs.Counter
	// Dropped counts invocations sampled out by short-op backoff.
	Dropped *obs.Counter
	// BytesOut counts wire-encoded bytes pushed toward the collector.
	BytesOut *obs.Counter
	// Flushes counts client batch flushes.
	Flushes *obs.Counter
}

// NewMetrics registers the client-layer metrics into reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Interceptions: reg.Counter("vapro_client_interceptions_total", "client",
			"recorded external invocations across all traced ranks"),
		Fragments: reg.Counter("vapro_client_fragments_total", "client",
			"fragments shipped by traced ranks"),
		Dropped: reg.Counter("vapro_client_dropped_total", "client",
			"invocations sampled out by short-op backoff"),
		BytesOut: reg.Counter("vapro_client_bytes_out_total", "client",
			"wire-encoded bytes pushed toward the collector"),
		Flushes: reg.Counter("vapro_client_flushes_total", "client",
			"client batch flushes"),
	}
}

// SetMetrics attaches the shared client metrics to this rank; nil
// detaches. Deltas accumulated before attachment are reported at the
// next Flush.
func (t *Traced) SetMetrics(m *Metrics) { t.met = m }

type backoffState struct {
	stride int
	count  int
}

// NewTraced instruments rank r. cfg supplies the FS; sink receives the
// fragment stream (it may be nil to record nothing, which is how pure
// overhead is measured); arm selects counter groups and may be shared
// across ranks.
func NewTraced(r *mpi.Rank, cfg rt.Config, opt Options, sink Sink, arm *Armed) *Traced {
	if opt.FlushEvery <= 0 {
		opt.FlushEvery = 256
	}
	t := &Traced{
		r:           r,
		fs:          cfg.FS,
		opt:         opt,
		sink:        sink,
		arm:         arm,
		files:       make(map[int]*vfs.File),
		backoff:     make(map[string]*backoffState),
		opStride:    make(map[trace.Site]*backoffState),
		siteOfState: make(map[uint64]string),
		prevState:   trace.EntryState.Key,
	}
	t.pendingStatic = true
	if cfg.BufferedIO && cfg.FS != nil {
		t.buf = vfs.NewBuffer(cfg.FS)
	}
	if t.arm == nil {
		t.arm = NewArmed(sim.GroupBase | sim.GroupTopdownL1 | sim.GroupOS)
	}
	return t
}

// callSite captures the application call-site `skip` frames up.
func callSite(skip int) trace.Site {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "<unknown>"
	}
	return trace.Site(fmt.Sprintf("%s:%d", filepath.Base(file), line))
}

// state derives the current running state per the configured mode.
// The context-aware path walks the goroutine stack (runtime.Callers),
// which is the costly backtrace the paper measures.
func (t *Traced) state(skip int) trace.State {
	site := callSite(skip + 1)
	if t.opt.Mode == ContextFree {
		return trace.SiteState(site)
	}
	var pcs [24]uintptr
	n := runtime.Callers(skip+2, pcs[:])
	path := make([]trace.Site, 0, n)
	frames := runtime.CallersFrames(pcs[:n])
	for {
		fr, more := frames.Next()
		path = append(path, trace.Site(fmt.Sprintf("%s:%d", filepath.Base(fr.File), fr.Line)))
		if !more {
			break
		}
	}
	return trace.PathState(site, path)
}

// interceptCost charges the per-event virtual cost of the shim.
func (t *Traced) interceptCost() {
	c := t.opt.CostPerEvent
	if t.opt.Mode == ContextAware {
		c += t.opt.CostBacktrace
	}
	c += sim.Duration(t.arm.Get().Count()) * t.opt.CostCounterRead
	t.r.Advance(c)
}

// shouldRecord consults the per-site sampling state (§3.5): when
// short-op sampling is on and the site's recent invocations were
// shorter than the threshold, only one in `stride` invocations is
// recorded; the rest run without fragment boundaries (their time merges
// into the surrounding computation segment) at negligible cost, which
// is where the overhead saving comes from.
func (t *Traced) shouldRecord(st trace.State) bool {
	if t.opt.SampleShortOps <= 0 {
		return true
	}
	bs := t.opStride[trace.Site(st.Name)]
	if bs == nil {
		bs = &backoffState{stride: 1}
		t.opStride[trace.Site(st.Name)] = bs
	}
	bs.count++
	if bs.count%bs.stride != 0 {
		t.Dropped++
		return false
	}
	return true
}

// adaptStride updates a site's sampling stride from the elapsed time of
// a recorded invocation (binary exponential backoff for short ops).
func (t *Traced) adaptStride(st trace.State, elapsed sim.Duration) {
	if t.opt.SampleShortOps <= 0 {
		return
	}
	bs := t.opStride[trace.Site(st.Name)]
	if bs == nil {
		return
	}
	if elapsed < t.opt.SampleShortOps {
		// Cap the stride so even heavily sampled sites keep enough
		// fragments per window for clustering (the coverage side of
		// the §3.5 trade-off).
		if bs.stride < 1<<5 {
			bs.stride *= 2
		}
	} else if bs.stride > 1 {
		bs.stride /= 2
	}
}

// beginExternal closes the pending computation fragment at the entry of
// an external invocation into state st, and returns the entry time.
// When the site's sampling state says to skip, the invocation runs
// without fragment boundaries at negligible cost (its time merges into
// the open computation segment).
func (t *Traced) beginExternal(st trace.State) sim.Time {
	if !t.shouldRecord(st) {
		t.skipping = true
		t.r.Advance(50 * sim.Nanosecond)
		return t.r.Clock()
	}
	t.Events++
	t.interceptCost()
	now := t.r.Clock()
	elapsed := now.Sub(t.segStart)
	if elapsed > 0 || t.pending.TotIns > 0 {
		// Fragments carry the full counter snapshot; masking to the
		// armed groups happens at the analysis boundary
		// (diagnose.SliceSource), which lets the progressive
		// controller replay later stages from recorded data. The
		// armed handle still drives the per-event cost model: a
		// client pays for each group it keeps enabled.
		t.emit(trace.Fragment{
			Rank:     t.r.ID(),
			Kind:     trace.Comp,
			From:     t.prevState,
			State:    st.Key,
			Start:    int64(t.segStart),
			Elapsed:  int64(elapsed),
			Counters: view(t.pending),
			Static:   t.pendingAny && t.pendingStatic,
			Truth:    t.pendingTruth,
		})
	}
	t.pending = sim.Counters{}
	t.pendingStatic = true
	t.pendingAny = false
	t.pendingTruth = 0
	t.siteOfState[st.Key] = st.Name
	return now
}

// endExternal records the invocation's own fragment and re-opens the
// computation segment from here.
func (t *Traced) endExternal(st trace.State, kind trace.Kind, entry sim.Time, args trace.Args) {
	now := t.r.Clock()
	elapsed := now.Sub(entry)
	if t.skipping {
		// Sampled out: no fragment, no state transition; the stride
		// still adapts so a site that turns slow is re-sampled soon.
		t.skipping = false
		t.adaptStride(st, elapsed)
		return
	}
	t.adaptStride(st, elapsed)
	t.emit(trace.Fragment{
		Rank:    t.r.ID(),
		Kind:    kind,
		From:    t.prevState,
		State:   st.Key,
		Start:   int64(entry),
		Elapsed: int64(elapsed),
		Args:    args,
	})
	t.prevState = st.Key
	t.segStart = now
}

func view(c sim.Counters) trace.CountersView {
	return trace.CountersView{
		TotIns:        c.TotIns,
		Cycles:        c.Cycles,
		SlotsFrontend: c.SlotsFrontend,
		SlotsBadSpec:  c.SlotsBadSpec,
		SlotsRetiring: c.SlotsRetiring,
		SlotsBackend:  c.SlotsBackend,
		SlotsCore:     c.SlotsCore,
		SlotsMemory:   c.SlotsMemory,
		SlotsL1:       c.SlotsL1,
		SlotsL2:       c.SlotsL2,
		SlotsL3:       c.SlotsL3,
		SlotsDRAM:     c.SlotsDRAM,
		SuspensionNS:  int64(c.Suspension),
		SoftPF:        c.SoftPF,
		HardPF:        c.HardPF,
		VolCS:         c.VolCS,
		InvolCS:       c.InvolCS,
		Signals:       c.Signals,
		LoadStores:    c.LoadStores,
		CacheMisses:   c.CacheMisses,
		L2MissStall:   c.L2MissStall,
	}
}

func (t *Traced) emit(f trace.Fragment) {
	if t.sink == nil {
		return
	}
	t.batch = append(t.batch, f)
	if len(t.batch) >= t.opt.FlushEvery {
		t.Flush()
	}
}

// Flush pushes buffered fragments to the sink. Called automatically
// when the buffer fills and must be called once at rank exit. BytesOut
// grows by the batch's measured wire encoding — the bytes this rank
// would put on the management network, not a per-record estimate.
func (t *Traced) Flush() {
	if t.sink == nil || len(t.batch) == 0 {
		return
	}
	n := len(t.batch)
	t.BytesOut += int64(trace.BatchWireSize(t.r.ID(), t.batch))
	t.sink.Consume(t.r.ID(), t.batch)
	t.batch = nil
	if t.met != nil {
		t.met.Flushes.Inc()
		t.met.Fragments.Add(uint64(n))
		if d := t.Events - t.pushedEvents; d > 0 {
			t.met.Interceptions.Add(uint64(d))
			t.pushedEvents = t.Events
		}
		if d := t.Dropped - t.pushedDrops; d > 0 {
			t.met.Dropped.Add(uint64(d))
			t.pushedDrops = t.Dropped
		}
		if d := t.BytesOut - t.pushedBytes; d > 0 {
			t.met.BytesOut.Add(uint64(d))
			t.pushedBytes = t.BytesOut
		}
	}
}

// SiteNames returns the state-key → human-readable-site mapping this
// rank observed (merged across ranks for reports).
func (t *Traced) SiteNames() map[uint64]string { return t.siteOfState }
