package interpose

import (
	"vapro/internal/mpi"
	"vapro/internal/rt"
	"vapro/internal/sim"
	"vapro/internal/trace"
	"vapro/internal/vfs"
)

// Traced implements rt.Runtime. Each wrapper follows the same shape:
// derive the state from the application call-site, close the pending
// computation fragment, run the real operation, record the invocation
// fragment with its arguments.

// Rank implements rt.Runtime.
func (t *Traced) Rank() int { return t.r.ID() }

// Size implements rt.Runtime.
func (t *Traced) Size() int { return t.r.Size() }

// Now implements rt.Runtime.
func (t *Traced) Now() sim.Time { return t.r.Clock() }

// Rand implements rt.Runtime.
func (t *Traced) Rand() *sim.RNG { return t.r.RNG() }

// Compute implements rt.Runtime: computation is not intercepted (it is
// application code); its counters accumulate into the open fragment.
func (t *Traced) Compute(w sim.Workload) {
	_, c := t.r.Compute(w)
	t.pending.Add(c)
	t.pendingAny = true
	if !w.StaticFixed {
		t.pendingStatic = false
	}
	// Fold the exact workload parameters into the segment's
	// ground-truth label (FNV-1a over the field values).
	h := t.pendingTruth
	if h == 0 {
		h = 1469598103934665603
	}
	for _, v := range [...]uint64{w.Instructions, uint64(w.MemRatio * 1e6), w.WorkingSet} {
		h ^= v
		h *= 1099511628211
	}
	t.pendingTruth = h
}

// Send implements rt.Runtime.
func (t *Traced) Send(dst, tag, bytes int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Send(dst, tag, bytes)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpSend, Bytes: bytes, Peer: dst, Tag: tag})
}

// Recv implements rt.Runtime.
func (t *Traced) Recv(src, tag int) int {
	st := t.state(1)
	entry := t.beginExternal(st)
	n, _ := t.r.Recv(src, tag)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpRecv, Bytes: n, Peer: src, Tag: tag})
	return n
}

// Sendrecv implements rt.Runtime.
func (t *Traced) Sendrecv(dst, sendTag, bytes, src, recvTag int) int {
	st := t.state(1)
	entry := t.beginExternal(st)
	n, _ := t.r.Sendrecv(dst, sendTag, bytes, src, recvTag)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpSendrecv, Bytes: bytes, Peer: dst, Tag: sendTag})
	return n
}

// Isend implements rt.Runtime.
func (t *Traced) Isend(dst, tag, bytes int) rt.Req {
	st := t.state(1)
	entry := t.beginExternal(st)
	q := t.r.Isend(dst, tag, bytes)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpIsend, Bytes: bytes, Peer: dst, Tag: tag})
	return q
}

// Irecv implements rt.Runtime.
func (t *Traced) Irecv(src, tag int) rt.Req {
	st := t.state(1)
	entry := t.beginExternal(st)
	q := t.r.Irecv(src, tag)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpIrecv, Bytes: 0, Peer: src, Tag: tag})
	return q
}

// Wait implements rt.Runtime.
func (t *Traced) Wait(q rt.Req) {
	st := t.state(1)
	entry := t.beginExternal(st)
	req := q.(*mpi.Request)
	t.r.Wait(req)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpWait, Bytes: req.Bytes()})
}

// Waitall implements rt.Runtime.
func (t *Traced) Waitall(qs []rt.Req) {
	st := t.state(1)
	entry := t.beginExternal(st)
	total := 0
	for _, q := range qs {
		req := q.(*mpi.Request)
		t.r.Wait(req)
		total += req.Bytes()
	}
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpWaitall, Bytes: total, Mode: len(qs)})
}

// Barrier implements rt.Runtime.
func (t *Traced) Barrier() {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Barrier()
	t.endExternal(st, trace.Sync, entry, trace.Args{Op: trace.OpBarrier, Peer: -1})
}

// Bcast implements rt.Runtime.
func (t *Traced) Bcast(root, bytes int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Bcast(root, bytes)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpBcast, Bytes: bytes, Peer: root, Mode: t.r.Size()})
}

// Reduce implements rt.Runtime.
func (t *Traced) Reduce(root, bytes int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Reduce(root, bytes)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpReduce, Bytes: bytes, Peer: root, Mode: t.r.Size()})
}

// Allreduce implements rt.Runtime.
func (t *Traced) Allreduce(bytes int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Allreduce(bytes)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpAllreduce, Bytes: bytes, Peer: -1, Mode: t.r.Size()})
}

// Alltoall implements rt.Runtime.
func (t *Traced) Alltoall(bytesPerRank int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Alltoall(bytesPerRank)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpAlltoall, Bytes: bytesPerRank, Peer: -1, Mode: t.r.Size()})
}

// Allgather implements rt.Runtime.
func (t *Traced) Allgather(bytesPerRank int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Allgather(bytesPerRank)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpAllgather, Bytes: bytesPerRank, Peer: -1, Mode: t.r.Size()})
}

// Gather implements rt.Runtime.
func (t *Traced) Gather(root, bytesPerRank int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	t.r.Gather(root, bytesPerRank)
	t.endExternal(st, trace.Comm, entry, trace.Args{Op: trace.OpGather, Bytes: bytesPerRank, Peer: root, Mode: t.r.Size()})
}

// Open implements rt.Runtime.
func (t *Traced) Open(path string, mode vfs.OpenMode) (int, error) {
	if t.fs == nil {
		return -1, errNoFS
	}
	st := t.state(1)
	entry := t.beginExternal(st)
	var f *vfs.File
	var err error
	if t.buf != nil && mode == vfs.ReadOnly {
		if d, ok := t.buf.OpenLocal(path); ok {
			t.r.Advance(d)
			f, _, err = t.fs.Open(path, mode, t.r.Node(), t.r.Clock(), t.r.RNG())
		} else {
			var d sim.Duration
			f, d, err = t.fs.Open(path, mode, t.r.Node(), t.r.Clock(), t.r.RNG())
			t.r.Advance(d)
		}
	} else {
		var d sim.Duration
		f, d, err = t.fs.Open(path, mode, t.r.Node(), t.r.Clock(), t.r.RNG())
		t.r.Advance(d)
	}
	fd := -1
	if err == nil {
		t.nextFD++
		fd = t.nextFD
		t.files[fd] = f
	}
	t.endExternal(st, trace.IO, entry, trace.Args{Op: trace.OpOpen, FD: fd, Mode: int(mode)})
	return fd, err
}

// ReadF implements rt.Runtime.
func (t *Traced) ReadF(fd, n int) int {
	st := t.state(1)
	entry := t.beginExternal(st)
	f := t.files[fd]
	got := 0
	if f != nil {
		if t.buf != nil {
			g, d, err := t.buf.ReadFile(f.Path(), f.Offset(), n, t.r.Node(), t.r.Clock(), t.r.RNG())
			t.r.Advance(d)
			if err == nil {
				f.SeekTo(f.Offset() + int64(g))
				got = g
			}
		} else {
			g, d := f.Read(n, t.r.Node(), t.r.Clock(), t.r.RNG())
			t.r.Advance(d)
			got = g
		}
	}
	t.endExternal(st, trace.IO, entry, trace.Args{Op: trace.OpRead, Bytes: n, FD: fd})
	return got
}

// WriteF implements rt.Runtime.
func (t *Traced) WriteF(fd, n int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	if f := t.files[fd]; f != nil {
		d := f.Write(n, t.r.Node(), t.r.Clock(), t.r.RNG())
		t.r.Advance(d)
	}
	t.endExternal(st, trace.IO, entry, trace.Args{Op: trace.OpWrite, Bytes: n, FD: fd})
}

// SeekF implements rt.Runtime: client-side, not intercepted.
func (t *Traced) SeekF(fd int, offset int64) {
	if f := t.files[fd]; f != nil {
		f.SeekTo(offset)
	}
}

// CloseF implements rt.Runtime.
func (t *Traced) CloseF(fd int) {
	st := t.state(1)
	entry := t.beginExternal(st)
	if f := t.files[fd]; f != nil {
		if t.buf != nil && t.buf.Cached(f.Path()) {
			t.r.Advance(2 * sim.Microsecond)
		} else {
			d := f.Close(t.r.Node(), t.r.Clock(), t.r.RNG())
			t.r.Advance(d)
		}
		delete(t.files, fd)
	}
	t.endExternal(st, trace.IO, entry, trace.Args{Op: trace.OpClose, FD: fd})
}

// Probe implements rt.Runtime: a user-defined explicit invocation. It
// cuts a fragment boundary like an external call, but because probes can
// sit in hot loops the binary exponential backoff policy (§5) adapts the
// recording stride so overhead stays bounded.
func (t *Traced) Probe(name string) {
	bs := t.backoff[name]
	if bs == nil {
		bs = &backoffState{stride: 1}
		t.backoff[name] = bs
	}
	bs.count++
	if bs.count%bs.stride != 0 {
		// Skipped: the probe costs almost nothing and no fragment
		// boundary is cut (the compute keeps accumulating).
		t.r.Advance(50 * sim.Nanosecond)
		t.Dropped++
		return
	}
	st := trace.SiteState(trace.Site("probe:" + name))
	if t.opt.Mode == ContextAware {
		st = t.state(1)
	}
	segLen := t.r.Clock().Sub(t.segStart)
	entry := t.beginExternal(st)
	t.endExternal(st, trace.Probe, entry, trace.Args{Op: trace.OpProbe})
	// Binary exponential backoff: if fragments are too short, double
	// the stride; if comfortably long, decay it.
	if t.opt.BackoffThreshold > 0 {
		if segLen < t.opt.BackoffThreshold {
			if bs.stride < 1<<16 {
				bs.stride *= 2
			}
		} else if bs.stride > 1 {
			bs.stride /= 2
		}
	}
}
