package trace

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record envelope for durable storage. The wire transport can lean on
// TCP for integrity, but bytes that sit on disk between a crash and a
// recovery cannot: a torn tail (the process died mid-write) must be
// distinguishable from a record that was written whole, and silent
// media corruption must not replay garbage into the analysis plane. A
// record is
//
//	uvarint payload length | payload | CRC32-C(payload), 4 bytes LE
//
// so the decoder can classify every failure: not enough bytes for the
// claimed length is a torn tail (ErrShortRecord — truncate here and
// keep everything before), while a checksum mismatch or an absurd
// length claim is corruption (ErrCorruptRecord).

// Decode classification errors for durable records.
var (
	// ErrShortRecord reports a record cut off mid-write: the remaining
	// bytes are shorter than the record claims. Recovery truncates the
	// segment at the last whole record.
	ErrShortRecord = errors.New("trace: record truncated")
	// ErrCorruptRecord reports a record that is whole but wrong: the
	// checksum does not match, or the length claim is absurd.
	ErrCorruptRecord = errors.New("trace: record corrupt")
)

// maxRecordPayload rejects absurd record length claims before they are
// trusted (a flipped high bit must not look like a multi-gigabyte
// record). Comfortably above maxFramePayload, the largest payload any
// caller journals.
const maxRecordPayload = 256 << 20

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the collector runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the durable record envelope around payload.
func AppendRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// DecodeRecord decodes one record from the front of data, returning the
// payload (aliasing data) and the record's total encoded size. An
// incomplete record returns ErrShortRecord; a checksum mismatch or a
// hostile length returns ErrCorruptRecord. Empty input is a zero-length
// short record.
func DecodeRecord(data []byte) (payload []byte, n int, err error) {
	size, hn := binary.Uvarint(data)
	if hn == 0 {
		return nil, 0, ErrShortRecord
	}
	if hn < 0 || size > maxRecordPayload {
		return nil, 0, ErrCorruptRecord
	}
	// A minimal uvarint never ends in a zero byte (except the single
	// byte 0x00): AppendRecord cannot produce a padded length, so one
	// here is corruption — accepting it would let a record decode to
	// bytes that do not re-encode to themselves.
	if hn > 1 && data[hn-1] == 0 {
		return nil, 0, ErrCorruptRecord
	}
	total := hn + int(size) + crc32.Size
	if len(data) < total {
		return nil, 0, ErrShortRecord
	}
	payload = data[hn : hn+int(size)]
	want := binary.LittleEndian.Uint32(data[hn+int(size):])
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, ErrCorruptRecord
	}
	return payload, total, nil
}
