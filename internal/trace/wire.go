// Fragment wire format: the compact binary encoding the client library
// uses to ship fragment batches to the analysis servers (§5). The §6.2
// storage rates (12.8–47.4 KB/s per rank) are measured over this
// encoding, so it is deliberately byte-frugal:
//
//   - state keys are dictionary-coded per batch (a batch revisits the
//     same few call-sites over and over, so each fragment stores a 1-2
//     byte index instead of an 8-byte hash),
//   - timestamps are zigzag-varint deltas against the previous fragment
//     (client buffers are near time-ordered, so deltas are small, but
//     out-of-order and negative values still round-trip),
//   - counters and invocation arguments are change-coded: a bitmap
//     marks the fields that differ from the previous fragment, and only
//     those are stored, as wrapping zigzag deltas (repeated identical
//     snapshots cost one bitmap byte; zero fields cost nothing).
//
// The format is self-contained per batch: a decoder needs no state
// beyond the batch bytes.
package trace

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// wireVersion is bumped on incompatible format changes.
const wireVersion = 1

// wireVersionSeq is the sequenced variant: identical to version 1 plus
// a per-rank batch sequence number after the rank, stamped by the
// resilient client so the server can account for lost and duplicated
// batches exactly (gaps in the sequence are batches that died with a
// connection or were evicted from a client's spill queue).
const wireVersionSeq = 2

// wireVersionHello is the server→client hello payload: not a batch at
// all, but the shard map (version + per-shard server addresses) a
// sharded server tier announces on every accepted connection, so a
// client can dial the server that owns its rank directly. It shares the
// magic/version framing with batches so the one frame a client ever
// reads is distinguishable from anything a batch decoder would accept.
const wireVersionHello = 3

// wireVersionTraced is the traced variant: the sequenced layout plus a
// compact trace context — the flushing client's id and the flush wall
// time in ns — stamped after the sequence number. The context makes one
// batch's journey identifiable across processes (client id + per-rank
// seq) and lets the server reconstruct flush→deliver latency without
// clock coordination beyond the hosts' own wall clocks. Older decoders
// reject the unknown version cleanly; nothing else changes.
const wireVersionTraced = 4

// wireMagic is the first byte of every encoded batch.
const wireMagic = 'V'

// maxHelloAddrs bounds the shard count a hello may claim, rejecting
// absurd values before allocating (a corrupt hello must not OOM the
// client library inside the traced application).
const maxHelloAddrs = 1 << 16

// maxHelloAddrLen bounds one announced address.
const maxHelloAddrLen = 1 << 10

// numCounterLanes is the number of fields in CountersView.
const numCounterLanes = 21

// minFragmentWire is the smallest possible encoded fragment: one flags
// byte plus one-byte varints for the From index, State index, Start
// delta, and Elapsed delta.
const minFragmentWire = 5

// Fragment flags byte layout.
const (
	flagKindMask   = 0x07 // bits 0-2: Kind (7 = escape, raw byte follows)
	flagKindEscape = 0x07
	flagStatic     = 1 << 3
	flagTruth      = 1 << 4
	flagArgs       = 1 << 5 // Args differ from previous fragment's
	flagCounters   = 1 << 6 // Counters differ from previous fragment's
	flagRank       = 1 << 7 // Rank differs from the batch rank
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// counterLanes flattens a CountersView into uint64 lanes in field order
// (SuspensionNS is reinterpreted; wrapping deltas preserve it exactly).
func counterLanes(c *CountersView) [numCounterLanes]uint64 {
	return [numCounterLanes]uint64{
		c.TotIns, c.Cycles,
		c.SlotsFrontend, c.SlotsBadSpec, c.SlotsRetiring, c.SlotsBackend,
		c.SlotsCore, c.SlotsMemory,
		c.SlotsL1, c.SlotsL2, c.SlotsL3, c.SlotsDRAM,
		uint64(c.SuspensionNS),
		c.SoftPF, c.HardPF, c.VolCS, c.InvolCS, c.Signals,
		c.LoadStores, c.CacheMisses, c.L2MissStall,
	}
}

// setCounterLanes is the inverse of counterLanes.
func setCounterLanes(c *CountersView, l [numCounterLanes]uint64) {
	c.TotIns, c.Cycles = l[0], l[1]
	c.SlotsFrontend, c.SlotsBadSpec, c.SlotsRetiring, c.SlotsBackend = l[2], l[3], l[4], l[5]
	c.SlotsCore, c.SlotsMemory = l[6], l[7]
	c.SlotsL1, c.SlotsL2, c.SlotsL3, c.SlotsDRAM = l[8], l[9], l[10], l[11]
	c.SuspensionNS = int64(l[12])
	c.SoftPF, c.HardPF, c.VolCS, c.InvolCS, c.Signals = l[13], l[14], l[15], l[16], l[17]
	c.LoadStores, c.CacheMisses, c.L2MissStall = l[18], l[19], l[20]
}

// AppendBatch encodes one client batch onto dst and returns the
// extended slice. The encoding is decoded by DecodeBatch.
func AppendBatch(dst []byte, rank int, frags []Fragment) []byte {
	dst = append(dst, wireMagic, wireVersion)
	dst = binary.AppendUvarint(dst, uint64(rank))
	return appendFrags(dst, rank, frags)
}

// AppendBatchSeq encodes a sequenced (version 2) batch: the same layout
// as AppendBatch plus seq, the client's per-rank batch sequence number.
func AppendBatchSeq(dst []byte, rank int, seq uint64, frags []Fragment) []byte {
	dst = append(dst, wireMagic, wireVersionSeq)
	dst = binary.AppendUvarint(dst, uint64(rank))
	dst = binary.AppendUvarint(dst, seq)
	return appendFrags(dst, rank, frags)
}

// AppendBatchTraced encodes a traced (version 4) batch: the sequenced
// layout plus the trace context (client id, flush wall ns).
func AppendBatchTraced(dst []byte, rank int, seq, clientID uint64, flushNS int64, frags []Fragment) []byte {
	dst = append(dst, wireMagic, wireVersionTraced)
	dst = binary.AppendUvarint(dst, uint64(rank))
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, clientID)
	dst = binary.AppendUvarint(dst, zigzag(flushNS))
	return appendFrags(dst, rank, frags)
}

// AppendHello encodes a shard-map hello onto dst: the map version
// followed by the per-shard server addresses (index = shard id). The
// payload is decoded by DecodeHello; IsHello distinguishes it from
// batch payloads without decoding either.
func AppendHello(dst []byte, version uint64, addrs []string) []byte {
	dst = append(dst, wireMagic, wireVersionHello)
	dst = binary.AppendUvarint(dst, version)
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// IsHello reports whether a frame payload is a shard-map hello rather
// than a fragment batch.
func IsHello(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == wireMagic && payload[1] == wireVersionHello
}

// DecodeHello decodes a hello payload produced by AppendHello. The
// whole input must be consumed (hellos ride the same length-prefixed
// framing as batches).
func DecodeHello(data []byte) (version uint64, addrs []string, err error) {
	r := &wireReader{data: data}
	if m := r.byte(); r.err == nil && m != wireMagic {
		return 0, nil, fmt.Errorf("trace: bad hello magic %#x", m)
	}
	if v := r.byte(); r.err == nil && v != wireVersionHello {
		return 0, nil, fmt.Errorf("trace: hello version %d, want %d", v, wireVersionHello)
	}
	version = r.uvarint()
	n := r.uvarint()
	if n > maxHelloAddrs || n > uint64(len(data)) {
		return 0, nil, fmt.Errorf("trace: hello claims %d shards in %d bytes", n, len(data))
	}
	addrs = make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		l := r.uvarint()
		if l > maxHelloAddrLen {
			return 0, nil, fmt.Errorf("trace: hello address of %d bytes", l)
		}
		addrs = append(addrs, string(r.bytes(int(l))))
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if r.pos != len(data) {
		return 0, nil, fmt.Errorf("trace: %d trailing bytes after hello", len(data)-r.pos)
	}
	return version, addrs, nil
}

// appendFrags encodes the version-independent tail of a batch: the
// fragment count, the state-key dictionary, and the fragment stream.
func appendFrags(dst []byte, rank int, frags []Fragment) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(frags)))

	// State-key dictionary, first-seen order (From then State per
	// fragment). Entry fragments share key 0 with real states rarely, so
	// the dictionary stays tiny relative to 8-byte raw hashes.
	keyIdx := make(map[uint64]int, 16)
	var keys []uint64
	intern := func(k uint64) int {
		if i, ok := keyIdx[k]; ok {
			return i
		}
		i := len(keys)
		keyIdx[k] = i
		keys = append(keys, k)
		return i
	}
	for i := range frags {
		intern(frags[i].From)
		intern(frags[i].State)
	}
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}

	var prevStart, prevElapsed int64
	var prevCounters [numCounterLanes]uint64
	var prevArgs Args
	for i := range frags {
		f := &frags[i]
		lanes := counterLanes(&f.Counters)

		flags := byte(0)
		if f.Kind < flagKindEscape {
			flags = byte(f.Kind)
		} else {
			flags = flagKindEscape
		}
		if f.Static {
			flags |= flagStatic
		}
		if f.Truth != 0 {
			flags |= flagTruth
		}
		if f.Args != prevArgs {
			flags |= flagArgs
		}
		if lanes != prevCounters {
			flags |= flagCounters
		}
		if f.Rank != rank {
			flags |= flagRank
		}
		dst = append(dst, flags)
		if flags&flagKindMask == flagKindEscape {
			dst = append(dst, byte(f.Kind))
		}
		if flags&flagRank != 0 {
			dst = binary.AppendUvarint(dst, zigzag(int64(f.Rank)-int64(rank)))
		}
		dst = binary.AppendUvarint(dst, uint64(keyIdx[f.From]))
		dst = binary.AppendUvarint(dst, uint64(keyIdx[f.State]))
		dst = binary.AppendUvarint(dst, zigzag(f.Start-prevStart))
		dst = binary.AppendUvarint(dst, zigzag(f.Elapsed-prevElapsed))
		prevStart, prevElapsed = f.Start, f.Elapsed

		if flags&flagCounters != 0 {
			var bitmap uint64
			for l := 0; l < numCounterLanes; l++ {
				if lanes[l] != prevCounters[l] {
					bitmap |= 1 << l
				}
			}
			dst = binary.AppendUvarint(dst, bitmap)
			for l := 0; l < numCounterLanes; l++ {
				if bitmap&(1<<l) != 0 {
					// Wrapping delta: exact for every uint64 value.
					dst = binary.AppendUvarint(dst, zigzag(int64(lanes[l]-prevCounters[l])))
				}
			}
			prevCounters = lanes
		}
		if flags&flagArgs != 0 {
			var bitmap uint64
			if f.Args.Op != prevArgs.Op {
				bitmap |= 1 << 0
			}
			if f.Args.Bytes != prevArgs.Bytes {
				bitmap |= 1 << 1
			}
			if f.Args.Peer != prevArgs.Peer {
				bitmap |= 1 << 2
			}
			if f.Args.Tag != prevArgs.Tag {
				bitmap |= 1 << 3
			}
			if f.Args.FD != prevArgs.FD {
				bitmap |= 1 << 4
			}
			if f.Args.Mode != prevArgs.Mode {
				bitmap |= 1 << 5
			}
			dst = binary.AppendUvarint(dst, bitmap)
			if bitmap&(1<<0) != 0 {
				op := f.Args.Op.String()
				dst = binary.AppendUvarint(dst, uint64(len(op)))
				dst = append(dst, op...)
			}
			if bitmap&(1<<1) != 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(f.Args.Bytes)))
			}
			if bitmap&(1<<2) != 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(f.Args.Peer)))
			}
			if bitmap&(1<<3) != 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(f.Args.Tag)))
			}
			if bitmap&(1<<4) != 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(f.Args.FD)))
			}
			if bitmap&(1<<5) != 0 {
				dst = binary.AppendUvarint(dst, zigzag(int64(f.Args.Mode)))
			}
			prevArgs = f.Args
		}
		if flags&flagTruth != 0 {
			dst = binary.AppendUvarint(dst, f.Truth)
		}
	}
	return dst
}

// wireReader walks an encoded batch with bounds checking.
type wireReader struct {
	data []byte
	pos  int
	err  error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("trace: corrupt batch: "+format, args...)
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("truncated at %d", r.pos)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.pos {
		r.fail("truncated run of %d at %d", n, r.pos)
		// The placeholder only has to satisfy fixed-size reads (the
		// 8-byte key lanes); n itself may be a hostile length claim
		// and must never size an allocation.
		return make([]byte, min(max(n, 0), 64))
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// BatchMeta is the per-batch header DecodeBatchMeta returns: the
// client rank plus, for sequenced (version 2+) batches, the per-rank
// sequence number, and for traced (version 4) batches, the trace
// context (flushing client id + flush wall ns).
type BatchMeta struct {
	Rank     int
	Seq      uint64
	HasSeq   bool
	ClientID uint64
	FlushNS  int64
	HasTrace bool
}

// DecodeBatch decodes a batch produced by AppendBatch or
// AppendBatchSeq, discarding any sequence metadata. The whole input
// must be consumed (the transport frames batches with explicit lengths).
func DecodeBatch(data []byte) (rank int, frags []Fragment, err error) {
	meta, frags, err := DecodeBatchMeta(data)
	return meta.Rank, frags, err
}

// DecodeBatchMeta decodes a batch along with its header metadata.
func DecodeBatchMeta(data []byte) (meta BatchMeta, frags []Fragment, err error) {
	r := &wireReader{data: data}
	if m := r.byte(); r.err == nil && m != wireMagic {
		return meta, nil, fmt.Errorf("trace: bad batch magic %#x", m)
	}
	v := r.byte()
	if r.err == nil && v != wireVersion && v != wireVersionSeq && v != wireVersionTraced {
		return meta, nil, fmt.Errorf("trace: batch version %d, want %d, %d or %d", v, wireVersion, wireVersionSeq, wireVersionTraced)
	}
	rank := int(r.uvarint())
	meta.Rank = rank
	if v == wireVersionSeq || v == wireVersionTraced {
		meta.Seq = r.uvarint()
		meta.HasSeq = true
	}
	if v == wireVersionTraced {
		meta.ClientID = r.uvarint()
		meta.FlushNS = unzigzag(r.uvarint())
		meta.HasTrace = true
	}
	count := r.uvarint()
	// A fragment takes ≥ minFragmentWire bytes; this bound rejects absurd
	// counts before allocating. Division (not count*minFragmentWire) so a
	// hostile count near 2^64 cannot wrap the comparison.
	if count > uint64(len(data))/minFragmentWire {
		return meta, nil, fmt.Errorf("trace: batch claims %d fragments in %d bytes", count, len(data))
	}
	nkeys := r.uvarint()
	if nkeys > uint64(len(data))/8 {
		return meta, nil, fmt.Errorf("trace: batch claims %d keys in %d bytes", nkeys, len(data))
	}
	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(r.bytes(8))
		if r.err != nil {
			return meta, nil, r.err
		}
	}
	key := func(idx uint64) uint64 {
		if idx >= uint64(len(keys)) {
			r.fail("key index %d of %d", idx, len(keys))
			return 0
		}
		return keys[idx]
	}

	// Pre-size for the claimed count, but cap the up-front allocation: a
	// hostile count within the byte bound could still demand ~50× the
	// payload in Fragment memory before the parse loop hits an error.
	// Honest large batches just regrow geometrically.
	preAlloc := count
	if preAlloc > 4096 {
		preAlloc = 4096
	}
	frags = make([]Fragment, 0, preAlloc)
	var prevStart, prevElapsed int64
	var prevCounters [numCounterLanes]uint64
	var prevArgs Args
	for i := uint64(0); i < count && r.err == nil; i++ {
		var f Fragment
		flags := r.byte()
		if flags&flagKindMask == flagKindEscape {
			f.Kind = Kind(r.byte())
		} else {
			f.Kind = Kind(flags & flagKindMask)
		}
		f.Static = flags&flagStatic != 0
		f.Rank = rank
		if flags&flagRank != 0 {
			f.Rank = rank + int(unzigzag(r.uvarint()))
		}
		f.From = key(r.uvarint())
		f.State = key(r.uvarint())
		f.Start = prevStart + unzigzag(r.uvarint())
		f.Elapsed = prevElapsed + unzigzag(r.uvarint())
		prevStart, prevElapsed = f.Start, f.Elapsed

		if flags&flagCounters != 0 {
			bitmap := r.uvarint()
			if bitmap >= 1<<numCounterLanes {
				r.fail("counter bitmap %#x", bitmap)
				break
			}
			for l := 0; l < numCounterLanes; l++ {
				if bitmap&(1<<l) != 0 {
					prevCounters[l] += uint64(unzigzag(r.uvarint()))
				}
			}
		}
		setCounterLanes(&f.Counters, prevCounters)
		if flags&flagArgs != 0 {
			bitmap := r.uvarint()
			if bitmap >= 1<<6 {
				r.fail("args bitmap %#x", bitmap)
				break
			}
			if bitmap&(1<<0) != 0 {
				prevArgs.Op = Op(string(r.bytes(int(r.uvarint()))))
			}
			if bitmap&(1<<1) != 0 {
				prevArgs.Bytes = int(unzigzag(r.uvarint()))
			}
			if bitmap&(1<<2) != 0 {
				prevArgs.Peer = int(unzigzag(r.uvarint()))
			}
			if bitmap&(1<<3) != 0 {
				prevArgs.Tag = int(unzigzag(r.uvarint()))
			}
			if bitmap&(1<<4) != 0 {
				prevArgs.FD = int(unzigzag(r.uvarint()))
			}
			if bitmap&(1<<5) != 0 {
				prevArgs.Mode = int(unzigzag(r.uvarint()))
			}
		}
		f.Args = prevArgs
		if flags&flagTruth != 0 {
			f.Truth = r.uvarint()
		}
		frags = append(frags, f)
	}
	if r.err != nil {
		return meta, nil, r.err
	}
	if r.pos != len(data) {
		return meta, nil, fmt.Errorf("trace: %d trailing bytes after batch", len(data)-r.pos)
	}
	return meta, frags, nil
}

// sizeBufs recycles the scratch buffer BatchWireSize encodes into, so
// the per-batch byte accounting on the ingestion hot path allocates
// nothing in steady state.
var sizeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// BatchWireSize returns the encoded size of a batch in bytes — the
// measured transport volume the §6.2 storage accounting reports.
func BatchWireSize(rank int, frags []Fragment) int {
	bp := sizeBufs.Get().(*[]byte)
	b := AppendBatch((*bp)[:0], rank, frags)
	n := len(b)
	*bp = b[:0]
	sizeBufs.Put(bp)
	return n
}
