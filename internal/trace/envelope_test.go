package trace

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)} {
		rec := AppendRecord(nil, payload)
		got, n, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("DecodeRecord(%d bytes): %v", len(payload), err)
		}
		if n != len(rec) {
			t.Fatalf("consumed %d of %d bytes", n, len(rec))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch for %d bytes", len(payload))
		}
	}
}

func TestRecordDecodesFromStream(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, []byte("first"))
	buf = AppendRecord(buf, []byte("second"))
	p1, n1, err := DecodeRecord(buf)
	if err != nil || string(p1) != "first" {
		t.Fatalf("first record: %q, %v", p1, err)
	}
	p2, _, err := DecodeRecord(buf[n1:])
	if err != nil || string(p2) != "second" {
		t.Fatalf("second record: %q, %v", p2, err)
	}
}

func TestRecordTornTailIsShort(t *testing.T) {
	rec := AppendRecord(nil, []byte("payload-bytes"))
	// Every strict prefix is a torn tail, never corruption: a crash
	// mid-write must be distinguishable from bit rot so recovery can
	// truncate with confidence.
	for cut := 0; cut < len(rec); cut++ {
		_, _, err := DecodeRecord(rec[:cut])
		if !errors.Is(err, ErrShortRecord) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrShortRecord", cut, len(rec), err)
		}
	}
}

func TestRecordCorruption(t *testing.T) {
	rec := AppendRecord(nil, []byte("payload-bytes"))
	// A flipped bit anywhere in payload or checksum is corruption.
	for i := 1; i < len(rec); i++ {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x40
		_, _, err := DecodeRecord(mut)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	// A hostile length claim is corruption, not a request for 2^60 bytes.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeRecord(huge); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("huge length: err = %v, want ErrCorruptRecord", err)
	}
}
