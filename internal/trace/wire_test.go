package trace

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randCounters fills every lane with draws that include the extremes.
func randCounters(rng *rand.Rand) CountersView {
	lane := func() uint64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return math.MaxUint64
		case 2:
			return uint64(rng.Int63())
		default:
			return uint64(rng.Intn(1000))
		}
	}
	var lanes [numCounterLanes]uint64
	for i := range lanes {
		lanes[i] = lane()
	}
	// SuspensionNS is signed; exercise negative values too.
	if rng.Intn(2) == 0 {
		lanes[12] = uint64(-rng.Int63())
	}
	var c CountersView
	setCounterLanes(&c, lanes)
	return c
}

func randFragment(rng *rand.Rand, rank int) Fragment {
	ops := []OpSym{Op(""), Op("Send"), Op("Recv"), Op("Allreduce"), Op("write")}
	f := Fragment{
		Rank:    rank,
		Kind:    Kind(rng.Intn(6)), // includes one out-of-range kind
		From:    uint64(rng.Intn(8)) * 0x9e3779b97f4a7c15,
		State:   uint64(rng.Intn(8)) * 0xc2b2ae3d27d4eb4f,
		Start:   rng.Int63n(1 << 40),
		Elapsed: rng.Int63n(1 << 30),
		Static:  rng.Intn(2) == 0,
	}
	if rng.Intn(3) == 0 {
		f.Truth = uint64(rng.Int63())
	}
	if rng.Intn(3) == 0 {
		f.Args = Args{
			Op:    ops[rng.Intn(len(ops))],
			Bytes: rng.Intn(1 << 20),
			Peer:  rng.Intn(256) - 1,
			Tag:   rng.Intn(100),
			FD:    rng.Intn(16) - 1,
			Mode:  rng.Intn(4),
		}
	}
	if rng.Intn(2) == 0 {
		f.Counters = randCounters(rng)
	}
	if rng.Intn(8) == 0 {
		f.Rank = rank + rng.Intn(7) - 3 // stray rank in a batch
	}
	return f
}

// TestWireRoundTripProperty fuzzes randomized batches — including
// zero/max counter values, negative SuspensionNS, out-of-order starts,
// stray ranks, and out-of-range kinds — through encode/decode and
// requires exact structural equality.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rank := rng.Intn(4096)
		frags := make([]Fragment, rng.Intn(64))
		for i := range frags {
			frags[i] = randFragment(rng, rank)
		}
		if trial%3 == 0 {
			// Out-of-order batch: shuffle so Start deltas go negative.
			rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		}
		enc := AppendBatch(nil, rank, frags)
		gotRank, got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotRank != rank {
			t.Fatalf("trial %d: rank %d, want %d", trial, gotRank, rank)
		}
		if len(got) != len(frags) {
			t.Fatalf("trial %d: %d fragments, want %d", trial, len(got), len(frags))
		}
		for i := range frags {
			if !reflect.DeepEqual(got[i], frags[i]) {
				t.Fatalf("trial %d frag %d:\n got %+v\nwant %+v", trial, i, got[i], frags[i])
			}
		}
		if sz := BatchWireSize(rank, frags); sz != len(enc) {
			t.Fatalf("trial %d: BatchWireSize %d, encoded %d", trial, sz, len(enc))
		}
	}
}

func TestWireEmptyBatch(t *testing.T) {
	enc := AppendBatch(nil, 17, nil)
	rank, frags, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rank != 17 || len(frags) != 0 {
		t.Fatalf("got rank %d, %d fragments", rank, len(frags))
	}
}

func TestWireExtremeCounterDeltas(t *testing.T) {
	// Adjacent fragments at opposite counter extremes force maximal
	// wrapping deltas.
	var lo, hi CountersView
	var maxLanes [numCounterLanes]uint64
	for i := range maxLanes {
		maxLanes[i] = math.MaxUint64
	}
	setCounterLanes(&hi, maxLanes)
	frags := []Fragment{
		{Kind: Comp, State: 1, Counters: lo},
		{Kind: Comp, State: 1, Counters: hi},
		{Kind: Comp, State: 1, Counters: lo},
		{Kind: Comp, State: 1, Counters: CountersView{SuspensionNS: math.MinInt64}},
		{Kind: Comp, State: 1, Counters: CountersView{SuspensionNS: math.MaxInt64}},
	}
	enc := AppendBatch(nil, 0, frags)
	_, got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, frags) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, frags)
	}
}

func TestWireExtremeTimestamps(t *testing.T) {
	frags := []Fragment{
		{Kind: Comm, State: 1, Start: math.MaxInt64, Elapsed: math.MaxInt64},
		{Kind: Comm, State: 1, Start: math.MinInt64, Elapsed: 0},
		{Kind: Comm, State: 1, Start: 0, Elapsed: math.MaxInt64},
	}
	enc := AppendBatch(nil, 3, frags)
	_, got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, frags) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, frags)
	}
}

// TestWireKindEscape covers kinds that do not fit the 3-bit flags
// field (≥ 7) and so take the raw-byte escape path.
func TestWireKindEscape(t *testing.T) {
	frags := []Fragment{
		{Kind: Kind(7), State: 1, Start: 1, Elapsed: 1},
		{Kind: Kind(255), State: 1, Start: 2, Elapsed: 1},
		{Kind: Probe, State: 1, Start: 3, Elapsed: 1},
	}
	enc := AppendBatch(nil, 0, frags)
	_, got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, frags) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, frags)
	}
}

// TestWireCompactness pins the motivation for the format: a realistic
// monitoring batch must encode far below the old fabricated 96 B/frag.
func TestWireCompactness(t *testing.T) {
	frags := make([]Fragment, 512)
	for i := range frags {
		frags[i] = Fragment{
			Rank:    9,
			Kind:    Comp,
			From:    uint64(1 + i%4),
			State:   uint64(2 + i%4),
			Start:   int64(i) * 1_000_000,
			Elapsed: 900_000,
			Counters: CountersView{
				TotIns: uint64(5_000_000 + i*13),
				Cycles: uint64(7_000_000 + i*17),
			},
		}
	}
	n := BatchWireSize(9, frags)
	if per := float64(n) / float64(len(frags)); per >= 32 {
		t.Fatalf("%.1f bytes/fragment; want < 32 (old accounting fabricated 96)", per)
	}
}

// TestWireHostileCounts pins the overflow hardening: a tiny frame
// claiming astronomically many keys or fragments must be rejected by
// the bounds checks, not die in (or bloat) the allocations they guard.
// nkeys = 2^61+1 is the regression case: multiplied by 8 it wraps a
// naive `nkeys*8 > len(data)` comparison and previously panicked in
// make([]uint64, nkeys).
func TestWireHostileCounts(t *testing.T) {
	header := func(count, nkeys uint64) []byte {
		b := []byte{wireMagic, wireVersion}
		b = binary.AppendUvarint(b, 0) // rank
		b = binary.AppendUvarint(b, count)
		b = binary.AppendUvarint(b, nkeys)
		return b
	}
	hostile := map[string][]byte{
		"overflowing key count":  header(0, (1<<61)+1),
		"max key count":          header(0, math.MaxUint64),
		"max fragment count":     header(math.MaxUint64, 0),
		"overflowing frag count": header((1<<63)+1, 0),
		"count over byte bound":  header(1<<20, 0),
		"keys over byte bound":   header(0, 1<<20),
	}
	for name, frame := range hostile {
		if _, _, err := DecodeBatch(frame); err == nil {
			t.Errorf("%s decoded cleanly", name)
		}
	}
}

func TestWireCorruptInputs(t *testing.T) {
	good := AppendBatch(nil, 5, []Fragment{
		{Kind: IO, State: 7, Start: 10, Elapsed: 2, Args: Args{Op: Op("write"), FD: 3}},
		{Kind: Comp, From: 7, State: 9, Start: 12, Elapsed: 5, Counters: CountersView{TotIns: 1}},
	})
	if _, _, err := DecodeBatch(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	if _, _, err := DecodeBatch([]byte{'X', wireVersion}); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, _, err := DecodeBatch([]byte{wireMagic, 99}); err == nil {
		t.Fatal("bad version decoded")
	}
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeBatch(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, _, err := DecodeBatch(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"127.0.0.1:9000"},
		{"10.0.0.1:9000", "10.0.0.2:9000", "", "host-3.cluster.local:443"},
	}
	for _, addrs := range cases {
		enc := AppendHello(nil, 42, addrs)
		if !IsHello(enc) {
			t.Fatalf("hello %v not recognized as hello", addrs)
		}
		ver, got, err := DecodeHello(enc)
		if err != nil {
			t.Fatalf("decode hello %v: %v", addrs, err)
		}
		if ver != 42 || len(got) != len(addrs) {
			t.Fatalf("hello %v round-tripped to version %d addrs %v", addrs, ver, got)
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("addr %d: got %q want %q", i, got[i], addrs[i])
			}
		}
	}
}

func TestHelloBatchDisjoint(t *testing.T) {
	// A hello must never decode as a batch, and vice versa: the one frame
	// a client reads is unambiguous against everything a server sends.
	hello := AppendHello(nil, 1, []string{"a:1", "b:2"})
	if _, _, err := DecodeBatchMeta(hello); err == nil {
		t.Fatal("hello decoded as a batch")
	}
	batch := AppendBatchSeq(nil, 3, 7, []Fragment{{Kind: Comp, From: 1, State: 2, Start: 10, Elapsed: 5}})
	if IsHello(batch) {
		t.Fatal("batch recognized as hello")
	}
	if _, _, err := DecodeHello(batch); err == nil {
		t.Fatal("batch decoded as a hello")
	}
}

func TestHelloCorruptInputs(t *testing.T) {
	good := AppendHello(nil, 9, []string{"127.0.0.1:8000", "127.0.0.1:8001"})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeHello(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, _, err := DecodeHello(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
	// Hostile counts: huge shard counts and address lengths must be
	// rejected before allocation.
	hostile := AppendHello(nil, 1, nil)
	hostile = hostile[:3] // keep magic+version+version varint, drop count
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	if _, _, err := DecodeHello(hostile); err == nil {
		t.Fatal("absurd shard count decoded cleanly")
	}
}
