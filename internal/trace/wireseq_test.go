package trace

import (
	"testing"
)

// TestWireSeqRoundTrip pins the sequenced (version 2) batch layout:
// the sequence number survives the trip, the fragments decode
// identically to the unsequenced encoding, and the plain DecodeBatch
// entry point keeps working on sequenced batches.
func TestWireSeqRoundTrip(t *testing.T) {
	frags := []Fragment{
		{Rank: 3, Kind: Comm, From: 7, State: 9, Start: 123, Elapsed: 456,
			Counters: CountersView{TotIns: 11, Cycles: 22},
			Args:     Args{Op: Op("Send"), Bytes: 1024, Peer: 1, Tag: 5}},
		{Rank: 3, Kind: Comp, From: 9, State: 7, Start: 579, Elapsed: 21,
			Counters: CountersView{TotIns: 13, Cycles: 29}, Static: true, Truth: 4},
	}
	for _, seq := range []uint64{0, 1, 1 << 40} {
		enc := AppendBatchSeq(nil, 3, seq, frags)
		meta, got, err := DecodeBatchMeta(enc)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if meta.Rank != 3 || !meta.HasSeq || meta.Seq != seq {
			t.Fatalf("meta = %+v, want rank 3 seq %d", meta, seq)
		}
		if len(got) != len(frags) {
			t.Fatalf("decoded %d fragments, want %d", len(got), len(frags))
		}
		for i := range frags {
			if got[i] != frags[i] {
				t.Fatalf("fragment %d mutated:\n got %+v\nwant %+v", i, got[i], frags[i])
			}
		}
		// The legacy entry point must keep decoding sequenced batches.
		rank, legacy, err := DecodeBatch(enc)
		if err != nil || rank != 3 || len(legacy) != len(frags) {
			t.Fatalf("DecodeBatch on v2: rank=%d n=%d err=%v", rank, len(legacy), err)
		}
	}
}

// TestWireUnsequencedMeta pins that version-1 batches report HasSeq
// false, so the server never invents gap accounting for legacy clients.
func TestWireUnsequencedMeta(t *testing.T) {
	enc := AppendBatch(nil, 7, []Fragment{{Rank: 7, Kind: Comp, From: 1, State: 2, Start: 1, Elapsed: 2}})
	meta, frags, err := DecodeBatchMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if meta.HasSeq || meta.Seq != 0 || meta.Rank != 7 {
		t.Fatalf("meta = %+v, want rank 7 without seq", meta)
	}
	if len(frags) != 1 {
		t.Fatalf("decoded %d fragments, want 1", len(frags))
	}
}

// TestWireSeqTruncation: every proper prefix of a sequenced batch must
// be rejected, exactly like the v1 hardening.
func TestWireSeqTruncation(t *testing.T) {
	good := AppendBatchSeq(nil, 5, 42, []Fragment{
		{Kind: IO, State: 7, Start: 10, Elapsed: 2, Args: Args{Op: Op("write"), FD: 3}},
	})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeBatch(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}
