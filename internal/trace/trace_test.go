package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Comp: "comp", Comm: "comm", IO: "io", Sync: "sync", Probe: "probe",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSiteStateStable(t *testing.T) {
	a := SiteState("cg.go:42")
	b := SiteState("cg.go:42")
	if a.Key != b.Key || a.Name != "cg.go:42" {
		t.Fatal("site state must be a pure function of the site")
	}
	c := SiteState("cg.go:43")
	if c.Key == a.Key {
		t.Fatal("distinct sites collided")
	}
}

func TestPathStateDistinguishesContexts(t *testing.T) {
	s := Site("smooth.go:10")
	a := PathState(s, []Site{"main.go:1", "driver.go:5"})
	b := PathState(s, []Site{"main.go:1", "driver.go:9"})
	if a.Key == b.Key {
		t.Fatal("different call paths must give different states")
	}
	free := SiteState(s)
	if a.Key == free.Key {
		t.Fatal("context-aware and context-free states should differ")
	}
}

func TestEntryState(t *testing.T) {
	if EntryState.Key != 0 || EntryState.Name == "" {
		t.Fatalf("entry state: %+v", EntryState)
	}
}

func TestFragmentEdgeAndEnd(t *testing.T) {
	f := Fragment{Kind: Comp, From: 1, State: 2, Start: 100, Elapsed: 50}
	if f.Edge() != (EdgeKey{From: 1, To: 2}) {
		t.Fatalf("edge: %+v", f.Edge())
	}
	if f.End() != 150 {
		t.Fatalf("end: %d", f.End())
	}
}

// Property: PathState never collides with a different path length of
// the same prefix (separator injection safety).
func TestPathStateSeparator(t *testing.T) {
	a := PathState("x", []Site{"ab"})
	b := PathState("x", []Site{"a", "b"})
	if a.Key == b.Key {
		t.Fatal("path hashing must separate frames")
	}
	f := func(s1, s2 string) bool {
		if s1 == s2 {
			return true
		}
		return SiteState(Site(s1)).Key != SiteState(Site(s2)).Key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
