package trace

import (
	"testing"
)

// TestWireTracedRoundTrip pins the traced (version 4) batch layout: the
// v2 fields plus client id and signed flush time all survive the trip,
// and both legacy decode entry points keep working on traced batches —
// an old server sees a traced frame as a plain sequenced batch.
func TestWireTracedRoundTrip(t *testing.T) {
	frags := []Fragment{
		{Rank: 3, Kind: Comm, From: 7, State: 9, Start: 123, Elapsed: 456,
			Counters: CountersView{TotIns: 11, Cycles: 22},
			Args:     Args{Op: Op("Send"), Bytes: 1024, Peer: 1, Tag: 5}},
		{Rank: 3, Kind: Comp, From: 9, State: 7, Start: 579, Elapsed: 21,
			Counters: CountersView{TotIns: 13, Cycles: 29}, Static: true, Truth: 4},
	}
	cases := []struct {
		seq, client uint64
		flushNS     int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{1 << 40, 1 << 50, 1700000000_000000000}, // realistic wall ns
		{7, 42, -12345},                          // negative flush time survives zigzag
	}
	for _, c := range cases {
		enc := AppendBatchTraced(nil, 3, c.seq, c.client, c.flushNS, frags)
		meta, got, err := DecodeBatchMeta(enc)
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		if meta.Rank != 3 || !meta.HasSeq || meta.Seq != c.seq {
			t.Fatalf("meta = %+v, want rank 3 seq %d", meta, c.seq)
		}
		if !meta.HasTrace || meta.ClientID != c.client || meta.FlushNS != c.flushNS {
			t.Fatalf("trace meta = %+v, want client %d flush %d", meta, c.client, c.flushNS)
		}
		if len(got) != len(frags) {
			t.Fatalf("decoded %d fragments, want %d", len(got), len(frags))
		}
		for i := range frags {
			if got[i] != frags[i] {
				t.Fatalf("fragment %d mutated:\n got %+v\nwant %+v", i, got[i], frags[i])
			}
		}
		// The legacy entry point must keep decoding traced batches.
		rank, legacy, err := DecodeBatch(enc)
		if err != nil || rank != 3 || len(legacy) != len(frags) {
			t.Fatalf("DecodeBatch on v4: rank=%d n=%d err=%v", rank, len(legacy), err)
		}
	}
}

// TestWireTracedMetaAbsent pins that v1 and v2 batches report HasTrace
// false with zero trace fields — the server must never invent a trace
// context for untraced clients.
func TestWireTracedMetaAbsent(t *testing.T) {
	frag := []Fragment{{Rank: 7, Kind: Comp, From: 1, State: 2, Start: 1, Elapsed: 2}}
	for name, enc := range map[string][]byte{
		"v1": AppendBatch(nil, 7, frag),
		"v2": AppendBatchSeq(nil, 7, 9, frag),
	} {
		meta, _, err := DecodeBatchMeta(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if meta.HasTrace || meta.ClientID != 0 || meta.FlushNS != 0 {
			t.Fatalf("%s invented trace meta: %+v", name, meta)
		}
	}
}

// TestWireTracedTruncation: every proper prefix of a traced batch must
// be rejected — including cuts inside the two new varint fields.
func TestWireTracedTruncation(t *testing.T) {
	good := AppendBatchTraced(nil, 5, 42, 1<<40, 1700000000_000000000, []Fragment{
		{Kind: IO, State: 7, Start: 10, Elapsed: 2, Args: Args{Op: Op("write"), FD: 3}},
	})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeBatch(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
		if _, _, err := DecodeBatchMeta(good[:cut]); err == nil {
			t.Fatalf("meta truncation at %d decoded cleanly", cut)
		}
	}
}

// TestWireTracedCompactness: the trace context costs a handful of bytes
// over v2, not a fixed-width header.
func TestWireTracedCompactness(t *testing.T) {
	frag := []Fragment{{Rank: 1, Kind: Comp, From: 1, State: 2, Start: 100, Elapsed: 50}}
	v2 := AppendBatchSeq(nil, 1, 3, frag)
	v4small := AppendBatchTraced(nil, 1, 3, 5, 0, frag)
	if overhead := len(v4small) - len(v2); overhead > 3 {
		t.Fatalf("small trace context costs %d bytes over v2", overhead)
	}
}
