package trace

import (
	"errors"
	"testing"
)

// Fuzz targets for the decoders that face bytes from outside the
// process: wire payloads (hostile clients) and durable records (disks
// that crashed mid-write or rotted). The recovery paths lean on these
// never panicking — a torn journal must truncate, not take the
// collector down. check.sh runs each with a short -fuzztime smoke; the
// committed corpus under testdata/fuzz pins past findings.

func fuzzFrags() []Fragment {
	return []Fragment{
		{Rank: 1, Kind: Comp, From: 7, State: 9, Start: 100, Elapsed: 50},
		{Rank: 1, Kind: Comm, State: 3, Start: 150, Elapsed: 25,
			Args: Args{Bytes: 4096, Peer: 3, Tag: 7}},
	}
}

func FuzzDecodeBatchMeta(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatch(nil, 3, fuzzFrags()))
	f.Add(AppendBatchSeq(nil, 3, 42, fuzzFrags()))
	f.Add(AppendBatchTraced(nil, 3, 42, 0xdead, 12345, fuzzFrags()))
	f.Add(AppendBatchSeq(nil, 0, 0, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, frags, err := DecodeBatchMeta(data)
		if err != nil {
			return
		}
		// A decoded batch must be internally consistent: the fragment
		// count was bounds-checked against the input size.
		if len(frags) > len(data) {
			t.Fatalf("%d fragments decoded from %d bytes", len(frags), len(data))
		}
		if meta.HasTrace && !meta.HasSeq {
			t.Fatal("traced batch without sequence")
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendHello(nil, 1, []string{"127.0.0.1:9000", "127.0.0.1:9001"}))
	f.Add(AppendHello(nil, 7, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, addrs, err := DecodeHello(data)
		if err != nil {
			return
		}
		if len(addrs) > len(data) {
			t.Fatalf("%d addrs decoded from %d bytes", len(addrs), len(data))
		}
	})
}

func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("payload")))
	f.Add(AppendRecord(nil, nil))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a")), []byte("b")))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("record size %d from %d input bytes", n, len(data))
		}
		if len(payload) >= n {
			t.Fatalf("payload %d bytes inside a %d-byte record", len(payload), n)
		}
		// A valid record re-encodes to the same bytes.
		if re := AppendRecord(nil, payload); string(re) != string(data[:n]) {
			t.Fatal("record does not round-trip")
		}
	})
}
