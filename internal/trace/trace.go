// Package trace defines the fragment records Vapro's interposition
// layer produces: one record per execution of a code snippet, carrying
// its running-state identity (call-site or call-path), elapsed virtual
// time, performance counters, and invocation arguments. Fragments are
// the unit everything downstream (STG, clustering, detection, diagnosis)
// operates on.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// Kind classifies a fragment by what produced it.
type Kind uint8

// Fragment kinds. Computation fragments attach to STG edges; the others
// attach to STG vertices.
const (
	Comp  Kind = iota // computation between two interceptions
	Comm              // a communication invocation
	IO                // a file-system invocation
	Sync              // a synchronization invocation (barrier, lock)
	Probe             // a user-defined probe (Dyninst-style)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Comp:
		return "comp"
	case Comm:
		return "comm"
	case IO:
		return "io"
	case Sync:
		return "sync"
	case Probe:
		return "probe"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Site identifies a call-site: in the real tool this is the return
// address of the intercepted invocation; here it is the file:line of the
// application call, which plays the same role (identical across ranks
// running the same program, distinct per source location).
type Site string

// State identifies an STG vertex: a program running state. In
// context-free mode the state is just the call-site; in context-aware
// mode it is the hash of the whole call path. The textual form is kept
// for reports.
type State struct {
	Key  uint64 // hash identity used for STG lookup
	Name string // human-readable: call-site, optionally with path depth
}

// SiteState builds the context-free state for a call-site.
func SiteState(s Site) State {
	h := fnv.New64a()
	h.Write([]byte(s))
	return State{Key: h.Sum64(), Name: string(s)}
}

// PathState builds the context-aware state for a call-site reached via
// the given call path (outermost first).
func PathState(s Site, path []Site) State {
	h := fnv.New64a()
	for _, p := range path {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	h.Write([]byte(s))
	return State{Key: h.Sum64(), Name: fmt.Sprintf("%s@depth%d", s, len(path))}
}

// EntryState is the synthetic state a rank is in before its first
// interception (the STG source vertex).
var EntryState = State{Key: 0, Name: "<entry>"}

// OpSym is an interned operation name ("Send", "Allreduce", "read",
// ...). Operations come from a tiny fixed vocabulary but ride along on
// every fragment, so storing the string itself would make Fragment a
// pointer-carrying type — and fragment logs are the dominant resident
// arrays of a long run. Keeping Fragment pointer-free means the garbage
// collector never scans (and slice growth never pre-zeroes) the
// million-fragment logs: on a busy collector that is the difference
// between O(batch) and O(resident) background cost per tick. The zero
// OpSym is the empty name.
type OpSym uint32

// opInterner is the process-wide Op vocabulary. Reads vastly outnumber
// writes (the vocabulary stops growing almost immediately), so lookups
// take an RLock.
var opInterner = struct {
	sync.RWMutex
	ids   map[string]OpSym
	names []string
}{ids: map[string]OpSym{"": 0}, names: []string{""}}

// Op interns an operation name. Symbols are process-global and never
// released; the vocabulary is the set of intercepted call names, which
// is small and fixed.
func Op(name string) OpSym {
	opInterner.RLock()
	s, ok := opInterner.ids[name]
	opInterner.RUnlock()
	if ok {
		return s
	}
	opInterner.Lock()
	defer opInterner.Unlock()
	if s, ok := opInterner.ids[name]; ok {
		return s
	}
	s = OpSym(len(opInterner.names))
	opInterner.names = append(opInterner.names, name)
	opInterner.ids[name] = s
	return s
}

// String returns the interned operation name.
func (s OpSym) String() string {
	opInterner.RLock()
	defer opInterner.RUnlock()
	if int(s) < len(opInterner.names) {
		return opInterner.names[s]
	}
	return fmt.Sprintf("op(%d)", uint32(s))
}

// Pre-interned symbols for the interposition layer's fixed vocabulary,
// so the per-interception hot path never touches the interner lock.
var (
	OpSend      = Op("Send")
	OpRecv      = Op("Recv")
	OpSendrecv  = Op("Sendrecv")
	OpIsend     = Op("Isend")
	OpIrecv     = Op("Irecv")
	OpWait      = Op("Wait")
	OpWaitall   = Op("Waitall")
	OpBarrier   = Op("Barrier")
	OpBcast     = Op("Bcast")
	OpReduce    = Op("Reduce")
	OpAllreduce = Op("Allreduce")
	OpAlltoall  = Op("Alltoall")
	OpAllgather = Op("Allgather")
	OpGather    = Op("Gather")
	OpOpen      = Op("open")
	OpRead      = Op("read")
	OpWrite     = Op("write")
	OpClose     = Op("close")
	OpProbe     = Op("probe")
)

// Args carries the invocation arguments that approximate communication
// and IO workload (message size, peers, file descriptor, IO size, op).
// Unused fields are zero. Arguments become clustering dimensions.
type Args struct {
	Op    OpSym // interned operation name: Op("Send"), Op("read"), ...
	Bytes int   // message or IO size
	Peer  int   // src/dst rank or root; -1 when not applicable
	Tag   int   // message tag
	FD    int   // file descriptor for IO
	Mode  int   // IO open mode / collective scope
}

// Fragment is one execution of a code snippet with its performance data.
type Fragment struct {
	Rank    int    // producing process/thread
	Kind    Kind   // what kind of snippet
	From    uint64 // previous state key (for Comp fragments: the STG edge tail)
	State   uint64 // current state key (vertex, or edge head for Comp)
	Start   int64  // virtual start time, ns
	Elapsed int64  // virtual elapsed time, ns
	// Counters is the (masked) counter snapshot. For Comp fragments it
	// accumulates all Compute calls inside the snippet; for Comm/IO it
	// is mostly zero (PMU values of a wait loop are meaningless, as the
	// paper observes) and Args carries the workload instead.
	Counters CountersView
	Args     Args
	// Static marks a computation fragment all of whose constituent
	// compute calls carried compile-time-fixed workloads — the subset
	// a static-analysis tool like vSensor could have identified.
	Static bool
	// Truth is the exact workload identity of a computation fragment
	// (a hash of the un-jittered workload parameters). It models the
	// ground-truth execution-path instrumentation of §6.3 and is used
	// only by the clustering-verification experiment, never by the
	// detection algorithms themselves.
	Truth uint64
}

// CountersView is the subset of sim.Counters shipped to the analysis
// side. It is a plain value struct so fragments serialize trivially.
// Field meanings match sim.Counters.
type CountersView struct {
	TotIns        uint64
	Cycles        uint64
	SlotsFrontend uint64
	SlotsBadSpec  uint64
	SlotsRetiring uint64
	SlotsBackend  uint64
	SlotsCore     uint64
	SlotsMemory   uint64
	SlotsL1       uint64
	SlotsL2       uint64
	SlotsL3       uint64
	SlotsDRAM     uint64
	SuspensionNS  int64
	SoftPF        uint64
	HardPF        uint64
	VolCS         uint64
	InvolCS       uint64
	Signals       uint64
	LoadStores    uint64
	CacheMisses   uint64
	L2MissStall   uint64
}

// EdgeKey identifies an STG edge (a computation snippet between two
// states).
type EdgeKey struct {
	From, To uint64
}

// Edge returns the STG edge key of a computation fragment.
func (f *Fragment) Edge() EdgeKey { return EdgeKey{From: f.From, To: f.State} }

// End returns the virtual end time of the fragment.
func (f *Fragment) End() int64 { return f.Start + f.Elapsed }
