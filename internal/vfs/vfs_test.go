package vfs

import (
	"testing"

	"vapro/internal/sim"
)

func testFS() (*FS, *sim.RNG) {
	return New(sim.IdealEnv{}, 1), sim.NewRNG(2)
}

func TestOpenMissingFile(t *testing.T) {
	fs, rng := testFS()
	_, d, err := fs.Open("/nope", ReadOnly, 0, 0, rng)
	if err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if d <= 0 {
		t.Fatal("failed open must still cost a metadata round trip")
	}
}

func TestCreateAndRead(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/a", 1000)
	if !fs.Exists("/a") || fs.Size("/a") != 1000 {
		t.Fatal("Create not visible")
	}
	f, _, err := fs.Open("/a", ReadOnly, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	n, d := f.Read(600, 0, 0, rng)
	if n != 600 || d <= 0 {
		t.Fatalf("read %d in %v", n, d)
	}
	// Read past EOF is truncated.
	n, _ = f.Read(600, 0, 0, rng)
	if n != 400 {
		t.Fatalf("EOF truncation: got %d, want 400", n)
	}
	n, _ = f.Read(10, 0, 0, rng)
	if n != 0 {
		t.Fatalf("read at EOF returned %d", n)
	}
}

func TestWriteModes(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/w", 500)

	// Truncate.
	f, _, err := fs.Open("/w", WriteTrunc, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size("/w") != 0 {
		t.Fatal("WriteTrunc did not truncate")
	}
	f.Write(100, 0, 0, rng)
	if fs.Size("/w") != 100 {
		t.Fatalf("size after write: %d", fs.Size("/w"))
	}

	// Append continues from the end.
	g, _, err := fs.Open("/w", WriteAppend, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.Write(50, 0, 0, rng)
	if fs.Size("/w") != 150 {
		t.Fatalf("size after append: %d", fs.Size("/w"))
	}
}

func TestSeek(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/s", 100)
	f, _, _ := fs.Open("/s", ReadOnly, 0, 0, rng)
	f.SeekTo(90)
	if n, _ := f.Read(100, 0, 0, rng); n != 10 {
		t.Fatalf("read after seek: %d", n)
	}
	f.SeekTo(-5)
	if f.Offset() != 0 {
		t.Fatal("negative seek not clamped")
	}
}

func TestReadCostScalesWithSize(t *testing.T) {
	fs, rng := testFS()
	fs.SetCostModel(CostModel{MetaLatency: 100, OpLatency: 100, ReadGap: 1, WriteGap: 1})
	fs.Create("/big", 10<<20)
	f, _, _ := fs.Open("/big", ReadOnly, 0, 0, rng)
	_, dSmall := f.Read(1<<10, 0, 0, rng)
	_, dBig := f.Read(1<<20, 0, 0, rng)
	if dBig < 100*dSmall {
		t.Fatalf("1MB read (%v) should dwarf 1KB read (%v)", dBig, dSmall)
	}
}

func TestIONoiseSlowsOps(t *testing.T) {
	slow := New(ioEnv{10}, 1)
	quiet := New(sim.IdealEnv{}, 1)
	rng1, rng2 := sim.NewRNG(3), sim.NewRNG(3)
	slow.Create("/f", 1<<20)
	quiet.Create("/f", 1<<20)
	fq, dq, _ := quiet.Open("/f", ReadOnly, 0, 0, rng1)
	fl, dl, _ := slow.Open("/f", ReadOnly, 0, 0, rng2)
	if dl <= dq {
		t.Fatalf("noisy open (%v) not slower than quiet (%v)", dl, dq)
	}
	_, rq := fq.Read(1<<20, 0, 0, rng1)
	_, rl := fl.Read(1<<20, 0, 0, rng2)
	if rl <= rq {
		t.Fatalf("noisy read (%v) not slower than quiet (%v)", rl, rq)
	}
}

type ioEnv struct{ slow float64 }

func (e ioEnv) At(node, core int, t sim.Time) sim.Conditions {
	c := sim.Ideal()
	c.IOSlowdown = e.slow
	return c
}

func TestFDsUnique(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/x", 10)
	a, _, _ := fs.Open("/x", ReadOnly, 0, 0, rng)
	b, _, _ := fs.Open("/x", ReadOnly, 0, 0, rng)
	if a.FD() == b.FD() {
		t.Fatal("file descriptors must be unique")
	}
	if a.Path() != "/x" {
		t.Fatalf("path: %q", a.Path())
	}
}

func TestBufferAbsorbsRereads(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/small", 48<<10)
	b := NewBuffer(fs)

	if b.Cached("/small") {
		t.Fatal("cached before first read")
	}
	_, first, err := b.ReadFile("/small", 0, 48<<10, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached("/small") {
		t.Fatal("not cached after first read")
	}
	_, second, err := b.ReadFile("/small", 0, 48<<10, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if second*10 > first {
		t.Fatalf("buffered reread (%v) should be at least 10x cheaper than cold (%v)", second, first)
	}
}

func TestBufferOpenLocal(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/f", 100)
	b := NewBuffer(fs)
	if _, ok := b.OpenLocal("/f"); ok {
		t.Fatal("OpenLocal succeeded before caching")
	}
	b.ReadFile("/f", 0, 100, 0, 0, rng)
	d, ok := b.OpenLocal("/f")
	if !ok || d <= 0 {
		t.Fatalf("OpenLocal after caching: %v %v", d, ok)
	}
}

func TestBufferMissingFile(t *testing.T) {
	fs, rng := testFS()
	b := NewBuffer(fs)
	if _, _, err := b.ReadFile("/ghost", 0, 10, 0, 0, rng); err == nil {
		t.Fatal("buffered read of missing file succeeded")
	}
}

func TestBufferOffsetBounds(t *testing.T) {
	fs, rng := testFS()
	fs.Create("/f", 100)
	b := NewBuffer(fs)
	n, _, _ := b.ReadFile("/f", 90, 50, 0, 0, rng)
	if n != 10 {
		t.Fatalf("tail read got %d, want 10", n)
	}
	n, _, _ = b.ReadFile("/f", 200, 50, 0, 0, rng)
	if n != 0 {
		t.Fatalf("past-EOF read got %d", n)
	}
}
