package vfs

import (
	"sync"

	"vapro/internal/sim"
)

// Buffer is the client-side file buffer the paper implements to fix the
// RAxML IO variance: small files are fetched once from the distributed
// store and then served from node-local memory, turning hundreds of
// small shared-FS reads into one bulk transfer. It wraps an FS and
// exposes buffered reads with the same timing interface.
type Buffer struct {
	fs *FS

	mu     sync.Mutex
	cached map[string]int64 // path -> cached size

	// LocalLatency and LocalGap are the costs of serving from the
	// buffer (memory copy through the page cache).
	LocalLatency sim.Duration
	LocalGap     float64
}

// NewBuffer wraps fs with an empty buffer.
func NewBuffer(fs *FS) *Buffer {
	return &Buffer{
		fs:           fs,
		cached:       make(map[string]int64),
		LocalLatency: 2 * sim.Microsecond,
		LocalGap:     0.05,
	}
}

// ReadFile reads up to n bytes of path. On the first access to a path
// the whole file is fetched from the shared FS (charged at bulk-transfer
// cost); subsequent reads are served locally and are immune to shared-FS
// noise. It returns the bytes read and the elapsed time.
func (b *Buffer) ReadFile(path string, offset int64, n int, node int, t sim.Time, rng *sim.RNG) (int, sim.Duration, error) {
	b.mu.Lock()
	size, ok := b.cached[path]
	b.mu.Unlock()

	var elapsed sim.Duration
	if !ok {
		f, d, err := b.fs.Open(path, ReadOnly, node, t, rng)
		if err != nil {
			return 0, d, err
		}
		elapsed += d
		total := b.fs.Size(path)
		// One sequential bulk read of the whole file.
		_, d = f.Read(int(total), node, t.Add(elapsed), rng)
		elapsed += d
		elapsed += f.Close(node, t.Add(elapsed), rng)
		b.mu.Lock()
		b.cached[path] = total
		b.mu.Unlock()
		size = total
	}

	avail := size - offset
	if avail < 0 {
		avail = 0
	}
	if int64(n) > avail {
		n = int(avail)
	}
	local := b.LocalLatency + sim.Duration(float64(n)*b.LocalGap)
	if b.fs.cost.JitterStddev > 0 {
		local = sim.Duration(float64(local) * rng.Jitter(b.fs.cost.JitterStddev/4))
	}
	return n, elapsed + local, nil
}

// OpenLocal returns the elapsed time of opening a cached file from the
// buffer (no shared-FS metadata round trip). It returns ok=false when
// the path is not cached yet.
func (b *Buffer) OpenLocal(path string) (sim.Duration, bool) {
	b.mu.Lock()
	_, ok := b.cached[path]
	b.mu.Unlock()
	if !ok {
		return 0, false
	}
	return b.LocalLatency, true
}

// Cached reports whether path is already buffered.
func (b *Buffer) Cached(path string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.cached[path]
	return ok
}
