// Package vfs simulates a shared distributed file system (the paper's
// IO substrate, a Lustre-like store on Tianhe-2A). It models the costs
// that drive the RAxML case study: per-operation metadata latency that
// is expensive for small files, bandwidth-limited data transfer, shared
// contention, and injected IO noise. It also provides the client-side
// file buffer the paper implements as the fix, so Figure 19's
// before/after comparison can be reproduced end to end.
package vfs

import (
	"fmt"
	"sync"

	"vapro/internal/sim"
)

// CostModel parameterizes the file system.
type CostModel struct {
	MetaLatency  sim.Duration // per open/close/stat round trip
	OpLatency    sim.Duration // per read/write request round trip
	ReadGap      float64      // ns per byte read
	WriteGap     float64      // ns per byte written
	JitterStddev float64      // relative lognormal-ish service jitter
}

// DefaultCostModel resembles a busy shared parallel file system.
func DefaultCostModel() CostModel {
	return CostModel{
		MetaLatency:  250 * sim.Microsecond,
		OpLatency:    80 * sim.Microsecond,
		ReadGap:      1.0, // ~1 GB/s per client stream
		WriteGap:     1.4,
		JitterStddev: 0.08,
	}
}

// FS is a simulated distributed file system shared by all ranks.
// It tracks file sizes (contents are irrelevant to timing) and serves
// operations with the cost model above.
type FS struct {
	mu    sync.Mutex
	cost  CostModel
	env   sim.Environment
	files map[string]int64 // path -> size
	rng   *sim.RNG
}

// New creates a file system under environment env (for IO noise) with
// randomness derived from seed.
func New(env sim.Environment, seed uint64) *FS {
	if env == nil {
		env = sim.IdealEnv{}
	}
	return &FS{
		cost:  DefaultCostModel(),
		env:   env,
		files: make(map[string]int64),
		rng:   sim.NewRNG(seed).Split(0xF5),
	}
}

// SetCostModel overrides the cost parameters. Call before use.
func (fs *FS) SetCostModel(c CostModel) { fs.cost = c }

// Create pre-populates a file of the given size (test fixtures, input
// data sets) without charging any virtual time.
func (fs *FS) Create(path string, size int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = size
}

// Exists reports whether path exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the current size of path (0 if absent).
func (fs *FS) Size(path string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.files[path]
}

// jittered scales d by the IO slowdown at (node, t) and a service-time
// jitter draw. The FS mutex must not be held (env may be slow).
func (fs *FS) jittered(d sim.Duration, node int, t sim.Time, rng *sim.RNG) sim.Duration {
	slow := fs.env.At(node, 0, t).IOSlowdown
	if slow < 1 {
		slow = 1
	}
	f := slow
	if fs.cost.JitterStddev > 0 {
		f *= rng.Jitter(fs.cost.JitterStddev)
	}
	out := sim.Duration(float64(d) * f)
	if out < 1 {
		out = 1
	}
	return out
}

// File is an open handle. Handles are not safe for concurrent use; each
// rank opens its own.
type File struct {
	fs     *FS
	path   string
	fd     int
	offset int64
	append bool
}

var fdCounter struct {
	mu sync.Mutex
	n  int
}

func nextFD() int {
	fdCounter.mu.Lock()
	defer fdCounter.mu.Unlock()
	fdCounter.n++
	return fdCounter.n
}

// OpenMode selects open semantics.
type OpenMode int

// Open modes.
const (
	ReadOnly OpenMode = iota
	WriteTrunc
	WriteAppend
)

// Open opens path at virtual time t from a client on node, creating the
// file for write modes. It returns the handle and the elapsed time of
// the call (one metadata round trip).
func (fs *FS) Open(path string, mode OpenMode, node int, t sim.Time, rng *sim.RNG) (*File, sim.Duration, error) {
	fs.mu.Lock()
	_, ok := fs.files[path]
	switch mode {
	case ReadOnly:
		if !ok {
			fs.mu.Unlock()
			return nil, fs.jittered(fs.cost.MetaLatency, node, t, rng), fmt.Errorf("vfs: open %s: no such file", path)
		}
	case WriteTrunc:
		fs.files[path] = 0
	case WriteAppend:
		if !ok {
			fs.files[path] = 0
		}
	}
	size := fs.files[path]
	fs.mu.Unlock()

	f := &File{fs: fs, path: path, fd: nextFD(), append: mode == WriteAppend}
	if mode == WriteAppend {
		f.offset = size
	}
	return f, fs.jittered(fs.cost.MetaLatency, node, t, rng), nil
}

// FD returns the simulated file descriptor (an IO clustering argument).
func (f *File) FD() int { return f.fd }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// Offset returns the current file offset.
func (f *File) Offset() int64 { return f.offset }

// SeekTo sets the absolute offset. It costs nothing (client-side).
func (f *File) SeekTo(offset int64) {
	if offset < 0 {
		offset = 0
	}
	f.offset = offset
}

// Read transfers up to n bytes from the current offset. It returns the
// bytes actually read and the elapsed time of the call.
func (f *File) Read(n int, node int, t sim.Time, rng *sim.RNG) (int, sim.Duration) {
	f.fs.mu.Lock()
	size := f.fs.files[f.path]
	f.fs.mu.Unlock()
	avail := size - f.offset
	if avail < 0 {
		avail = 0
	}
	if int64(n) > avail {
		n = int(avail)
	}
	f.offset += int64(n)
	d := f.fs.cost.OpLatency + sim.Duration(float64(n)*f.fs.cost.ReadGap)
	return n, f.fs.jittered(d, node, t, rng)
}

// Write appends or overwrites n bytes at the current offset and returns
// the elapsed time of the call.
func (f *File) Write(n int, node int, t sim.Time, rng *sim.RNG) sim.Duration {
	f.fs.mu.Lock()
	f.offset += int64(n)
	if f.offset > f.fs.files[f.path] {
		f.fs.files[f.path] = f.offset
	}
	f.fs.mu.Unlock()
	d := f.fs.cost.OpLatency + sim.Duration(float64(n)*f.fs.cost.WriteGap)
	return f.fs.jittered(d, node, t, rng)
}

// Close releases the handle (one metadata round trip).
func (f *File) Close(node int, t sim.Time, rng *sim.RNG) sim.Duration {
	return f.fs.jittered(f.fs.cost.MetaLatency/2, node, t, rng)
}
