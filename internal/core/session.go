// Package core wires the substrates and analysis layers into end-to-end
// Vapro sessions: place an application on a simulated machine under a
// noise schedule, run it plain (baseline timing) or traced (Vapro
// attached), collect fragments through the server pool, and expose
// detection and progressive diagnosis over the results. The public
// vapro package at the repository root re-exports this API.
package core

import (
	"fmt"
	"io"
	"sync"

	"vapro/internal/apps"
	"vapro/internal/cluster"
	"vapro/internal/collector"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/interpose"
	"vapro/internal/mpi"
	"vapro/internal/noise"
	"vapro/internal/rt"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
	"vapro/internal/vfs"
)

// Options configures a session.
type Options struct {
	// Ranks overrides the app's default process/thread count.
	Ranks int
	// CoresPerNode sizes nodes (default 24; threaded apps get one node
	// with exactly Ranks cores).
	CoresPerNode int
	// Seed drives all randomness.
	Seed uint64
	// Noise is the injected-noise schedule (nil = quiet machine).
	Noise *noise.Schedule
	// Interpose configures the data-collection layer.
	Interpose interpose.Options
	// Collector configures the server pool.
	Collector collector.Options
	// BufferedIO enables the client-side file buffer (the RAxML fix).
	BufferedIO bool
	// Record keeps the raw fragment stream on the Result so it can be
	// persisted with SaveRecording and re-analyzed offline later.
	Record bool
	// PMUJitter overrides the counter-read jitter (default 0.002).
	PMUJitter float64
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	return Options{
		Seed:      1,
		Interpose: interpose.DefaultOptions(),
		Collector: collector.DefaultOptions(),
		PMUJitter: 0.002,
	}
}

// setup builds the machine, environment, world and FS for a run.
func setup(app apps.App, opt *Options) (*mpi.World, *vfs.FS, int) {
	info := app.Info()
	ranks := opt.Ranks
	if ranks <= 0 {
		ranks = info.DefaultRanks
	}
	if ranks <= 0 {
		ranks = 16
	}
	cores := opt.CoresPerNode
	if cores <= 0 {
		cores = 24
	}
	var mcfg sim.Config
	if info.Threaded {
		mcfg = sim.Config{Nodes: 1, CoresPerNode: ranks, FreqGHz: 2.3, PMUJitter: opt.PMUJitter, Seed: opt.Seed}
	} else {
		nodes := (ranks + cores - 1) / cores
		mcfg = sim.Config{Nodes: nodes, CoresPerNode: cores, FreqGHz: 2.2, PMUJitter: opt.PMUJitter, Seed: opt.Seed}
	}
	var env sim.Environment = sim.IdealEnv{}
	if opt.Noise != nil {
		env = opt.Noise
	}
	machine := sim.NewMachine(mcfg)
	world := mpi.NewWorld(ranks, machine, env)
	var fs *vfs.FS
	if info.UsesIO {
		fs = vfs.New(env, opt.Seed)
		app.Prepare(fs, ranks)
	} else {
		app.Prepare(nil, ranks)
	}
	return world, fs, ranks
}

// PlainResult is the outcome of an untraced baseline run.
type PlainResult struct {
	Ranks     int
	Makespan  sim.Duration
	RankTimes []sim.Time
}

// RunPlain executes the application without Vapro attached and returns
// the baseline timing (the denominator of Table 1's overhead).
func RunPlain(app apps.App, opt Options) *PlainResult {
	world, fs, ranks := setup(app, &opt)
	cfg := rt.Config{FS: fs, BufferedIO: opt.BufferedIO}
	times := world.Run(func(r *mpi.Rank) {
		app.Run(rt.NewPlain(r, cfg))
	})
	return &PlainResult{Ranks: ranks, Makespan: makespan(times), RankTimes: times}
}

// Result is the outcome of a traced (Vapro-attached) run.
type Result struct {
	App       apps.Info
	Ranks     int
	Makespan  sim.Duration
	RankTimes []sim.Time
	// Pool is the server pool holding the collected fragments.
	Pool *collector.Pool
	// Graph is the merged whole-run STG.
	Graph *stg.Graph
	// Detection is the whole-run detection result.
	Detection *detect.Result
	// Events / Dropped / BytesOut aggregate the interposition layer's
	// work across ranks.
	Events, Dropped int
	BytesOut        int64
	// SiteNames maps state keys to human-readable call-sites.
	SiteNames map[uint64]string
	// Recording holds the raw fragment stream when Options.Record was
	// set (nil otherwise).
	Recording *collector.Recording

	clusterOpt cluster.Options
	// analyzer memoizes per-element clusterings: the whole-run
	// detection pass populates it, and the diagnosis drill-down paths
	// (regionClusters, FixedClusters) reuse those clusterings instead
	// of re-running Algorithm 1 per call.
	analyzer *detect.Analyzer
}

// clusterElement returns the (memoized) clustering of one STG element.
func (r *Result) clusterElement(key cluster.Key, gen stg.Gen, frags []trace.Fragment) cluster.Result {
	if r.analyzer == nil {
		r.analyzer = detect.NewAnalyzer()
	}
	return r.analyzer.Cache().Run(key, gen, frags, r.clusterOpt)
}

// RunTraced executes the application with Vapro attached: interposition,
// collection through the server pool, then a whole-run detection pass.
func RunTraced(app apps.App, opt Options) *Result {
	world, fs, ranks := setup(app, &opt)
	pool := collector.NewPool(ranks, opt.Collector)
	var sink interpose.Sink = pool
	var recorder *collector.RecordingSink
	if opt.Record {
		recorder = collector.NewRecordingSink(pool)
		sink = recorder
	}
	cfg := rt.Config{FS: fs, BufferedIO: opt.BufferedIO}

	type rankStats struct {
		events, dropped int
		bytes           int64
		sites           map[uint64]string
	}
	stats := make([]rankStats, ranks)

	times := world.Run(func(r *mpi.Rank) {
		tr := interpose.NewTraced(r, cfg, opt.Interpose, sink, pool.Armed)
		tr.SetMetrics(pool.Metrics().Client)
		app.Run(tr)
		tr.Flush()
		stats[r.ID()] = rankStats{
			events:  tr.Events,
			dropped: tr.Dropped,
			bytes:   tr.BytesOut,
			sites:   tr.SiteNames(),
		}
	})

	res := &Result{
		App:        app.Info(),
		Ranks:      ranks,
		Makespan:   makespan(times),
		RankTimes:  times,
		Pool:       pool,
		SiteNames:  make(map[uint64]string),
		clusterOpt: opt.Collector.Detect.Cluster,
	}
	for i := range stats {
		res.Events += stats[i].events
		res.Dropped += stats[i].dropped
		res.BytesOut += stats[i].bytes
		for k, v := range stats[i].sites {
			res.SiteNames[k] = v
		}
	}
	res.Graph = pool.Graph()
	for k, v := range res.SiteNames {
		res.Graph.SetName(k, v)
	}
	res.analyzer = detect.NewAnalyzer()
	res.Detection = res.analyzer.Run(res.Graph, ranks, opt.Collector.Detect)
	if recorder != nil {
		res.Recording = recorder.Recording(ranks, int64(res.Makespan), res.SiteNames)
	}
	return res
}

// SaveRecording persists the run's raw fragment stream (requires
// Options.Record). Load it back with AnalyzeRecording.
func (r *Result) SaveRecording(w io.Writer) error {
	if r.Recording == nil {
		return fmt.Errorf("core: run was not recorded (set Options.Record)")
	}
	return collector.WriteRecording(w, r.Recording)
}

// AnalyzeRecording rebuilds an analysis Result from a persisted
// fragment stream: the offline half of the record/analyze workflow.
// The resulting Result supports detection rendering and diagnosis but
// has no Pool (there was no live collection).
func AnalyzeRecording(rd io.Reader, dopt detect.Options) (*Result, error) {
	rec, err := collector.ReadRecording(rd)
	if err != nil {
		return nil, err
	}
	g := rec.Graph()
	res := &Result{
		Ranks:      rec.Ranks,
		Makespan:   sim.Duration(rec.MakespanNS),
		Graph:      g,
		SiteNames:  rec.SiteNames,
		Recording:  rec,
		clusterOpt: dopt.Cluster,
	}
	res.App.Name = "recording"
	res.analyzer = detect.NewAnalyzer()
	res.Detection = res.analyzer.Run(g, rec.Ranks, dopt)
	return res, nil
}

// OnlineResult is the outcome of a monitored (online) run: the offline
// Result plus the events the live analysis loop produced while the
// application was still running.
type OnlineResult struct {
	*Result
	Monitor *collector.Monitor
	Events  []collector.Event
}

// RunOnline executes the application with Vapro attached in its
// deployment mode: the collector's monitor analyzes overlapped windows
// while fragments stream in, reports variance regions as events, and
// progressively arms counter groups in response (§4.3) — all before the
// run ends. The returned result also carries the usual whole-run
// analysis for convenience.
func RunOnline(app apps.App, opt Options) *OnlineResult {
	world, fs, ranks := setup(app, &opt)
	pool := collector.NewPool(ranks, opt.Collector)
	mopt := collector.DefaultMonitorOptions(ranks)
	mopt.Period = opt.Collector.Period
	mopt.Overlap = opt.Collector.Overlap
	mopt.Detect = opt.Collector.Detect
	mon := collector.NewMonitor(pool, mopt)
	cfg := rt.Config{FS: fs, BufferedIO: opt.BufferedIO}

	res := &Result{
		App:        app.Info(),
		Ranks:      ranks,
		SiteNames:  make(map[uint64]string),
		clusterOpt: opt.Collector.Detect.Cluster,
	}
	var mu sync.Mutex
	times := world.Run(func(r *mpi.Rank) {
		tr := interpose.NewTraced(r, cfg, opt.Interpose, mon, pool.Armed)
		tr.SetMetrics(pool.Metrics().Client)
		app.Run(tr)
		tr.Flush()
		mu.Lock()
		res.Events += tr.Events
		res.Dropped += tr.Dropped
		res.BytesOut += tr.BytesOut
		for k, v := range tr.SiteNames() {
			res.SiteNames[k] = v
		}
		mu.Unlock()
	})
	mon.Flush()

	res.Makespan = makespan(times)
	res.RankTimes = times
	res.Pool = pool
	res.Graph = pool.Graph()
	for k, v := range res.SiteNames {
		res.Graph.SetName(k, v)
	}
	res.analyzer = detect.NewAnalyzer()
	res.Detection = res.analyzer.Run(res.Graph, ranks, opt.Collector.Detect)
	return &OnlineResult{Result: res, Monitor: mon, Events: mon.Drain()}
}

// Overhead returns the relative slowdown of the traced run against a
// plain baseline of the same configuration.
func (r *Result) Overhead(plain *PlainResult) float64 {
	if plain == nil || plain.Makespan <= 0 {
		return 0
	}
	return float64(r.Makespan-plain.Makespan) / float64(plain.Makespan)
}

// regionClusters re-derives the fixed-workload clusters referenced by a
// region's samples and returns their full fragment populations. The
// per-element clusterings come from the shared cache, so the drill-down
// reuses what the detection pass already computed.
func (r *Result) regionClusters(region *detect.Region) [][]trace.Fragment {
	// Deduplicate cluster references.
	type key struct {
		isEdge  bool
		edge    trace.EdgeKey
		vertex  uint64
		cluster int
	}
	seen := make(map[key]bool)
	var out [][]trace.Fragment
	for _, s := range region.Samples {
		k := key{s.ClusterRef.IsEdge, s.ClusterRef.Edge, s.ClusterRef.Vertex, s.ClusterRef.Cluster}
		if seen[k] {
			continue
		}
		seen[k] = true
		var frags []trace.Fragment
		var ckey cluster.Key
		var gen stg.Gen
		if k.isEdge {
			if e := r.Graph.Edge(k.edge); e != nil {
				frags, ckey, gen = e.Fragments, cluster.EdgeKey(k.edge), e.Gen
			}
		} else if v := r.Graph.Vertex(k.vertex); v != nil {
			frags, ckey, gen = v.Fragments, cluster.VertexKey(k.vertex), v.Gen
		}
		if frags == nil {
			continue
		}
		cl := r.clusterElement(ckey, gen, frags)
		if k.cluster < 0 || k.cluster >= len(cl.Clusters) {
			continue
		}
		members := cl.Clusters[k.cluster].Members
		sub := make([]trace.Fragment, 0, len(members))
		for _, m := range members {
			sub = append(sub, frags[m])
		}
		if len(sub) > 0 {
			out = append(out, sub)
		}
	}
	return out
}

// Diagnose runs the progressive variance diagnosis on a detected region.
func (r *Result) Diagnose(region *detect.Region, opt diagnose.Options) *diagnose.Report {
	clusters := r.regionClusters(region)
	return diagnose.New(opt).Run(diagnose.SliceSource(clusters))
}

// DiagnoseTop diagnoses the most impactful detected region of the given
// class, or returns nil when nothing was detected.
func (r *Result) DiagnoseTop(class detect.Class, opt diagnose.Options) *diagnose.Report {
	for i := range r.Detection.Regions {
		if r.Detection.Regions[i].Class == class {
			return r.Diagnose(&r.Detection.Regions[i], opt)
		}
	}
	return nil
}

// FixedClusters returns the full fragment populations of every fixed
// (repeated) workload cluster of the given class — the comparable
// populations diagnosis operates on.
func (r *Result) FixedClusters(class detect.Class) [][]trace.Fragment {
	var clusters [][]trace.Fragment
	collect := func(key cluster.Key, gen stg.Gen, frags []trace.Fragment) {
		cl := r.clusterElement(key, gen, frags)
		for ci := range cl.Clusters {
			if !cl.Clusters[ci].Fixed {
				continue
			}
			sub := make([]trace.Fragment, 0, len(cl.Clusters[ci].Members))
			for _, m := range cl.Clusters[ci].Members {
				sub = append(sub, frags[m])
			}
			clusters = append(clusters, sub)
		}
	}
	if class == detect.Computation {
		for _, e := range r.Graph.Edges() {
			collect(cluster.EdgeKey(e.Key), e.Gen, e.Fragments)
		}
	} else {
		for _, v := range r.Graph.Vertices() {
			if len(v.Fragments) > 0 && detect.ClassOf(v.Fragments[0].Kind) == class {
				collect(cluster.VertexKey(v.Key), v.Gen, v.Fragments)
			}
		}
	}
	return clusters
}

// DiagnoseAll pools every fixed cluster of a class (not just a detected
// region) — used when variance is spread across the whole run, like the
// HPL hardware-bug case.
func (r *Result) DiagnoseAll(class detect.Class, opt diagnose.Options) *diagnose.Report {
	return diagnose.New(opt).Run(diagnose.SliceSource(r.FixedClusters(class)))
}

// Summary renders a one-paragraph report of the run.
func (r *Result) Summary() string {
	st := r.Graph.Stats()
	return fmt.Sprintf(
		"%s: %d ranks, makespan %s; STG %d vertices / %d edges; %d fragments (%d comp, %d comm, %d io); coverage %.1f%%; %d regions detected",
		r.App.Name, r.Ranks, r.Makespan, st.Vertices, st.Edges,
		r.Graph.NumFragments(), st.CompFragments, st.CommFragments, st.IOFragments,
		100*r.Detection.OverallCoverage, len(r.Detection.Regions))
}

func makespan(times []sim.Time) sim.Duration {
	var max sim.Time
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	return sim.Duration(max)
}
