package core

import (
	"strings"
	"testing"

	"vapro/internal/apps"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/interpose"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

func smallOpt() Options {
	opt := DefaultOptions()
	opt.Ranks = 16
	opt.Collector.Detect.Window = 50 * sim.Millisecond
	return opt
}

func TestPlainVsTraced(t *testing.T) {
	plain := RunPlain(apps.NewCG(5), smallOpt())
	traced := RunTraced(apps.NewCG(5), smallOpt())
	if plain.Ranks != 16 || traced.Ranks != 16 {
		t.Fatal("rank counts")
	}
	ov := traced.Overhead(plain)
	if ov <= 0 || ov > 0.10 {
		t.Fatalf("overhead %.4f outside (0, 10%%]", ov)
	}
	if traced.Graph.NumFragments() == 0 || traced.Events == 0 {
		t.Fatal("no fragments collected")
	}
	if traced.Detection == nil || traced.Detection.OverallCoverage <= 0 {
		t.Fatal("no detection result")
	}
	if !strings.Contains(traced.Summary(), "CG") {
		t.Fatalf("summary: %q", traced.Summary())
	}
}

func TestRunDeterminism(t *testing.T) {
	a := RunTraced(apps.NewCG(3), smallOpt())
	b := RunTraced(apps.NewCG(3), smallOpt())
	if a.Makespan != b.Makespan {
		t.Fatalf("traced runs not deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.Graph.NumFragments() != b.Graph.NumFragments() {
		t.Fatal("fragment counts differ")
	}
	if a.Detection.OverallCoverage != b.Detection.OverallCoverage {
		t.Fatal("coverage differs")
	}
}

func TestNoiseDetectionAndDiagnosis(t *testing.T) {
	opt := smallOpt()
	// Place the noise over the iteration phase (after ~0.6s init).
	sch := noise.NewSchedule()
	sch.Add(noise.CPUContention(0, 2, sim.Time(800*sim.Millisecond), sim.Time(1600*sim.Millisecond), 0.5))
	opt.Noise = sch
	res := RunTraced(apps.NewCG(30), opt)

	var compRegion *detect.Region
	for i := range res.Detection.Regions {
		if res.Detection.Regions[i].Class == detect.Computation {
			compRegion = &res.Detection.Regions[i]
			break
		}
	}
	if compRegion == nil {
		t.Fatal("CPU noise not detected")
	}
	if compRegion.RankMin > 2 || compRegion.RankMax < 2 {
		t.Fatalf("region misses rank 2: %+v", compRegion)
	}

	rep := res.Diagnose(compRegion, diagnose.DefaultOptions())
	if rep.AbnormalFrags == 0 {
		t.Fatal("diagnosis found nothing")
	}
	if rep.TopFactor() != diagnose.Suspension {
		t.Fatalf("top factor %v, want suspension for CPU contention", rep.TopFactor())
	}

	// DiagnoseTop must find the same region.
	if top := res.DiagnoseTop(detect.Computation, diagnose.DefaultOptions()); top == nil {
		t.Fatal("DiagnoseTop found nothing")
	}
	// DiagnoseAll covers the whole run.
	if all := res.DiagnoseAll(detect.Computation, diagnose.DefaultOptions()); all.AbnormalFrags == 0 {
		t.Fatal("DiagnoseAll found nothing")
	}
}

func TestDiagnoseTopNilWhenQuiet(t *testing.T) {
	res := RunTraced(apps.NewCG(3), smallOpt())
	if rep := res.DiagnoseTop(detect.IOClass, diagnose.DefaultOptions()); rep != nil {
		t.Fatal("diagnosed IO variance in an app without IO")
	}
}

func TestFixedClusters(t *testing.T) {
	res := RunTraced(apps.NewCG(3), smallOpt())
	comp := res.FixedClusters(detect.Computation)
	if len(comp) == 0 {
		t.Fatal("no computation clusters")
	}
	for _, c := range comp {
		if len(c) < 5 {
			t.Fatalf("fixed cluster with %d members", len(c))
		}
	}
	comm := res.FixedClusters(detect.Communication)
	if len(comm) == 0 {
		t.Fatal("no communication clusters")
	}
}

func TestThreadedAppPlacement(t *testing.T) {
	opt := DefaultOptions()
	opt.Ranks = 8
	res := RunTraced(apps.NewPageRank(10), opt)
	if res.Ranks != 8 {
		t.Fatalf("ranks: %d", res.Ranks)
	}
	if res.Graph.NumFragments() == 0 {
		t.Fatal("no fragments from threaded app")
	}
}

func TestContextModeOption(t *testing.T) {
	opt := smallOpt()
	optCA := opt
	optCA.Interpose.Mode = interpose.ContextAware
	cf := RunTraced(apps.NewMG(6), opt)
	ca := RunTraced(apps.NewMG(6), optCA)
	// Context-aware shatters MG states.
	if ca.Graph.NumVertices() <= cf.Graph.NumVertices() {
		t.Fatalf("CA vertices (%d) not more than CF (%d)", ca.Graph.NumVertices(), cf.Graph.NumVertices())
	}
	if ca.Makespan <= cf.Makespan {
		t.Fatal("CA backtracing cost missing")
	}
}

func TestCollectorPoolWiring(t *testing.T) {
	opt := smallOpt()
	opt.Collector.Servers = 2
	res := RunTraced(apps.NewCG(3), opt)
	if res.Pool.Servers() != 2 {
		t.Fatalf("servers: %d", res.Pool.Servers())
	}
	st := res.Pool.Stats(res.Makespan)
	if st.Fragments != res.Graph.NumFragments() {
		t.Fatal("pool stats disagree with graph")
	}
	if st.BytesPerRankSecond <= 0 {
		t.Fatal("no storage rate")
	}
	wins := res.Pool.WindowResults()
	if len(wins) == 0 {
		t.Fatal("no window results")
	}
}

func TestSiteNamesResolved(t *testing.T) {
	res := RunTraced(apps.NewCG(3), smallOpt())
	found := false
	for _, name := range res.SiteNames {
		if strings.Contains(name, "npb.go:") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("call-sites not resolved to source locations: %v", res.SiteNames)
	}
}
