package core

import (
	"bytes"
	"io"
	"testing"

	"vapro/internal/apps"
	"vapro/internal/diagnose"
	"vapro/internal/noise"
	"vapro/internal/sim"
)

func TestRunOnline(t *testing.T) {
	opt := DefaultOptions()
	opt.Ranks = 16
	opt.Collector.Period = 200 * sim.Millisecond
	opt.Collector.Overlap = 100 * sim.Millisecond
	opt.Collector.Detect.Window = 50 * sim.Millisecond

	// Quiet run first: no events, stage stays at 1.
	quiet := RunOnline(apps.NewCG(10), opt)
	if len(quiet.Events) != 0 {
		t.Fatalf("quiet online run produced %d events", len(quiet.Events))
	}
	if quiet.Monitor.Stage() != 1 {
		t.Fatal("quiet run escalated")
	}

	// Noisy run: events appear and the armed groups widen mid-run.
	sch := noise.NewSchedule()
	sch.Add(noise.NodeCPUContention(0, sim.Time(800*sim.Millisecond), sim.Time(1500*sim.Millisecond), 0.5))
	opt.Noise = sch
	res := RunOnline(apps.NewCG(30), opt)
	if len(res.Events) == 0 {
		t.Fatal("online monitor missed injected noise")
	}
	ev := res.Events[0]
	if len(ev.Regions) == 0 {
		t.Fatal("event without regions")
	}
	if !ev.ArmedAfter.Has(sim.GroupBackend) {
		t.Fatal("no progressive arming after detection")
	}
	if res.Monitor.Stage() <= 1 {
		t.Fatal("stage did not escalate")
	}
	// The offline view is still available.
	if res.Detection == nil || res.Graph.NumFragments() == 0 {
		t.Fatal("offline analysis missing from online result")
	}
}

func TestRecordAnalyzeRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	opt.Ranks = 8
	opt.Record = true
	sch := noise.NewSchedule()
	sch.Add(noise.CPUContention(0, 1, sim.Time(700*sim.Millisecond), sim.Time(1200*sim.Millisecond), 0.5))
	opt.Noise = sch
	res := RunTraced(apps.NewCG(10), opt)
	if res.Recording == nil {
		t.Fatal("Record option produced no recording")
	}

	var buf bytes.Buffer
	if err := res.SaveRecording(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := AnalyzeRecording(&buf, opt.Collector.Detect)
	if err != nil {
		t.Fatal(err)
	}
	if re.Graph.NumFragments() != res.Graph.NumFragments() {
		t.Fatalf("fragments: %d vs %d", re.Graph.NumFragments(), res.Graph.NumFragments())
	}
	if re.Detection.OverallCoverage != res.Detection.OverallCoverage {
		t.Fatalf("coverage differs after round trip: %v vs %v",
			re.Detection.OverallCoverage, res.Detection.OverallCoverage)
	}
	if len(re.Detection.Regions) != len(res.Detection.Regions) {
		t.Fatalf("regions: %d vs %d", len(re.Detection.Regions), len(res.Detection.Regions))
	}
	// Diagnosis works on the reloaded data.
	if len(re.Detection.Regions) > 0 {
		rep := re.Diagnose(&re.Detection.Regions[0], diagnose.DefaultOptions())
		if rep == nil {
			t.Fatal("no diagnosis from reloaded recording")
		}
	}
}

func TestSaveRecordingWithoutRecord(t *testing.T) {
	opt := DefaultOptions()
	opt.Ranks = 4
	res := RunTraced(apps.NewCG(2), opt)
	if err := res.SaveRecording(io.Discard); err == nil {
		t.Fatal("unrecorded run saved")
	}
}
