package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vapro/internal/obs"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%04d", i))
	}
	return out
}

// drain consumes every pending record through the cursor.
func drain(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		p, err := l.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if p == nil {
			return out
		}
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
		l.Ack()
	}
}

func TestAppendNextAckRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := payloads(10)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	// Next without Ack peeks the same record.
	a, _ := l.Next()
	b, _ := l.Next()
	if !bytes.Equal(a, b) || !bytes.Equal(a, want[0]) {
		t.Fatalf("peek mismatch: %q vs %q", a, b)
	}
	got := drain(t, l)
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", l.Pending())
	}
}

func TestRotationAndAckReclaimsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range payloads(20) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if got := drain(t, l); len(got) != 20 {
		t.Fatalf("drained %d, want 20", len(got))
	}
	// Every sealed segment should have been deleted at Ack time; only
	// the active one remains.
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after full drain = %d, want 1", st.Segments)
	}
	// Only the active segment remains on disk (plus the cursor record).
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segment files on disk = %d, want 1", len(segs))
	}
}

func TestReopenReplaysPending(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(9)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Consume 3, then "crash" (close without acking the rest).
	for i := 0; i < 3; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
		l.Ack()
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := drain(t, l2)
	// Acks are not persisted: everything in surviving segments comes
	// back. Re-delivery of the acked prefix is allowed (the consumer
	// dedups); loss is not.
	if len(got) < 6 {
		t.Fatalf("reopen replayed %d records, want >= 6", len(got))
	}
	tail := got[len(got)-6:]
	for i, p := range want[3:] {
		if !bytes.Equal(tail[i], p) {
			t.Fatalf("replayed record %d = %q, want %q", i, tail[i], p)
		}
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(5)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Tear the tail: append half a record's worth of garbage.
	seg := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x0c, 'p', 'a', 'r'})
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", st.Truncated)
	}
	got := drain(t, l2)
	if len(got) != 5 {
		t.Fatalf("recovered %d records, want 5", len(got))
	}
	// The log must keep working after truncation.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	p, _ := l2.Next()
	if string(p) != "after" {
		t.Fatalf("post-recovery append read back %q", p)
	}
}

func TestRecoveryTruncatesCorruptRecordKeepsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(8) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Stats().Segments
	if segs < 3 {
		t.Fatalf("want >= 3 segments, got %d", segs)
	}
	l.Close()
	// Flip a payload bit in the middle segment: CRC fails there, the
	// segment is cut at the previous record, later segments survive.
	seg2 := filepath.Join(dir, "wal-00000002.seg")
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+3] ^= 0xff
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatalf("recovery failed on corrupt record: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", st.Truncated)
	}
	got := drain(t, l2)
	if len(got) == 0 || len(got) >= 8 {
		t.Fatalf("recovered %d records, want some but not all of 8", len(got))
	}
	// Records from segments after the corrupt one must be present.
	found := false
	for _, p := range got {
		if string(p) == "payload-0007" {
			found = true
		}
	}
	if !found {
		t.Fatal("records after the corrupt segment were lost")
	}
}

func TestRetentionByBytesBooksDrops(t *testing.T) {
	dir := t.TempDir()
	var dropped [][]byte
	l, err := Open(dir, Options{
		SegmentBytes: 64,
		MaxBytes:     200,
		OnDrop: func(ps [][]byte) {
			for _, p := range ps {
				cp := make([]byte, len(p))
				copy(cp, p)
				dropped = append(dropped, cp)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := payloads(30)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Bytes > 200+64+32 {
		t.Fatalf("log grew past budget: %d bytes", st.Bytes)
	}
	if st.Reclaimed == 0 || st.Dropped == 0 || len(dropped) == 0 {
		t.Fatalf("retention never reclaimed: %+v", st)
	}
	got := drain(t, l)
	// Exact accounting: every appended record was either drained or
	// surfaced through OnDrop, oldest-first, with no overlap.
	if len(got)+len(dropped) != len(want) {
		t.Fatalf("drained %d + dropped %d != appended %d", len(got), len(dropped), len(want))
	}
	all := append(append([][]byte{}, dropped...), got...)
	for i, p := range want {
		if !bytes.Equal(all[i], p) {
			t.Fatalf("record %d: got %q want %q (drop/drain order broken)", i, all[i], p)
		}
	}
}

// TestRetentionDetachesInFlightPeek pins the mid-flight reclaim
// semantics: when retention removes the segment holding a peeked
// record, the record detaches — it is not booked dropped (the consumer
// may be sending it right now), repeated Next calls keep returning it,
// and Ack settles its pending count — while the unread records behind
// it in the same segment are booked through OnDrop as usual.
func TestRetentionDetachesInFlightPeek(t *testing.T) {
	dir := t.TempDir()
	var dropped [][]byte
	l, err := Open(dir, Options{
		SegmentBytes: 48, // ~2 records per segment
		MaxBytes:     100,
		OnDrop: func(ps [][]byte) {
			for _, p := range ps {
				cp := make([]byte, len(p))
				copy(cp, p)
				dropped = append(dropped, cp)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := payloads(12)
	if err := l.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	// Peek the oldest record — the consumer now "holds" it in flight.
	peeked, err := l.Next()
	if err != nil || !bytes.Equal(peeked, want[0]) {
		t.Fatalf("Next = %q, %v; want %q", peeked, err, want[0])
	}
	// Pile on appends until retention must reclaim the peeked segment.
	for _, p := range want[1:] {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Reclaimed == 0 {
		t.Fatalf("retention never reclaimed with a peek held: %+v", l.Stats())
	}
	for _, d := range dropped {
		if bytes.Equal(d, want[0]) {
			t.Fatal("in-flight peeked record was booked dropped")
		}
	}
	// The detached record survives re-peek and settles on Ack.
	again, err := l.Next()
	if err != nil || !bytes.Equal(again, want[0]) {
		t.Fatalf("re-peek after detach = %q, %v; want %q", again, err, want[0])
	}
	before := l.Pending()
	l.Ack()
	if got := l.Pending(); got != before-1 {
		t.Fatalf("Ack of detached record: pending %d -> %d", before, got)
	}
	got := drain(t, l)
	// Exact accounting across the whole run: the peeked record was
	// consumed exactly once, everything else drained or dropped once.
	all := append([][]byte{want[0]}, dropped...)
	all = append(all, got...)
	if len(all) != len(want) {
		t.Fatalf("consumed %d + dropped %d != appended %d", 1+len(got), len(dropped), len(want))
	}
	seen := map[string]int{}
	for _, p := range all {
		seen[string(p)]++
	}
	for _, p := range want {
		if seen[string(p)] != 1 {
			t.Fatalf("record %q consumed %d times", p, seen[string(p)])
		}
	}
}

func TestRetentionByAge(t *testing.T) {
	now := time.Unix(1000, 0)
	l, err := Open(t.TempDir(), Options{
		SegmentBytes: 64,
		MaxAge:       time.Minute,
		Now:          func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, p := range payloads(10) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Segments < 2 {
		t.Fatalf("want rotation, got %d segments", before.Segments)
	}
	now = now.Add(2 * time.Minute)
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Reclaimed == 0 {
		t.Fatal("age retention never reclaimed a segment")
	}
	if after.Segments >= before.Segments {
		t.Fatalf("segments did not shrink: %d -> %d", before.Segments, after.Segments)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy SyncPolicy
		min    int
	}{{SyncEach, 10}, {SyncRotate, 1}, {SyncNever, 0}} {
		syncs := 0
		l, err := Open(t.TempDir(), Options{
			SegmentBytes: 64,
			Sync:         tc.policy,
			SyncFn:       func(*os.File) error { syncs++; return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads(10) {
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if tc.policy == SyncNever {
			l.mu.Lock()
			closedSyncs := syncs
			l.mu.Unlock()
			if closedSyncs != 0 {
				t.Errorf("policy %v: %d fsyncs before close, want 0", tc.policy, syncs)
			}
		}
		if syncs < tc.min {
			t.Errorf("policy %v: %d fsyncs, want >= %d", tc.policy, syncs, tc.min)
		}
		l.Close()
	}
}

func TestAppendErrorLeavesPayloadWithCaller(t *testing.T) {
	boom := errors.New("disk full")
	failing := false
	l, err := Open(t.TempDir(), Options{
		WriteErr: func() error {
			if failing {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	failing = true
	if err := l.Append([]byte("rejected")); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want %v", err, boom)
	}
	failing = false
	if l.Pending() != 1 {
		t.Fatalf("failed append changed pending: %d", l.Pending())
	}
	got := drain(t, l)
	if len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("log content after failed append: %q", got)
	}
}

func TestReplayIndependentOfCursor(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := payloads(12)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("replay record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Replay left the cursor untouched.
	if l.Pending() != len(want) {
		t.Fatalf("Replay consumed records: pending %d", l.Pending())
	}
}

func TestHostileSegmentsNeverPanicRecovery(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short-header": {'V', 'W', 'A'},
		"bad-magic":    append([]byte("XXXX\x01"), make([]byte, 16)...),
		"bad-version":  append([]byte("VWAL\x7f"), make([]byte, 16)...),
		"header-only":  append([]byte("VWAL\x01"), make([]byte, 8)...),
		"huge-length":  append(append([]byte("VWAL\x01"), make([]byte, 8)...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"garbage":      append(append([]byte("VWAL\x01"), make([]byte, 8)...), bytes.Repeat([]byte{0xa5}, 100)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery errored on hostile segment: %v", err)
			}
			defer l.Close()
			// The log must be appendable and drainable afterwards.
			if err := l.Append([]byte("alive")); err != nil {
				t.Fatal(err)
			}
			got := drain(t, l)
			if len(got) == 0 || string(got[len(got)-1]) != "alive" {
				t.Fatalf("log unusable after hostile recovery: %q", got)
			}
		})
	}
}

func TestMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "spill")
	l, err := Open(t.TempDir(), Options{SegmentBytes: 64, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	RegisterOldestAge(reg, "spill", l)
	for _, p := range payloads(10) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Appended.Load() != 10 {
		t.Fatalf("appended counter = %d", m.Appended.Load())
	}
	if m.Segments.Load() < 2 || m.Pending.Load() != 10 {
		t.Fatalf("gauges: segments=%d pending=%d", m.Segments.Load(), m.Pending.Load())
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"vapro_wal_spill_segments", "vapro_wal_spill_bytes",
		"vapro_wal_spill_pending", "vapro_wal_spill_appended_total",
		"vapro_wal_spill_oldest_age_seconds", "vapro_wal_spill_replay_in_progress",
	} {
		if snap.Get(name) == nil {
			t.Errorf("registry missing %s", name)
		}
	}
}

// TestCursorPersistsAcrossReopen pins the exact-resume contract: acked
// records do not come back on reopen. Without this, a restarted client
// would retransmit its earliest frames — including sequence zero, which
// a rebuilt server must read as a client restart, double-delivering the
// whole acked prefix into the analysis.
func TestCursorPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(9)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
		l.Ack()
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Pending(); got != 5 {
		t.Fatalf("reopen pending = %d, want 5 (acked prefix must not resurface)", got)
	}
	got := drain(t, l2)
	if len(got) != 5 {
		t.Fatalf("reopen replayed %d records, want 5", len(got))
	}
	for i, p := range want[4:] {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("replayed record %d = %q, want %q", i, got[i], p)
		}
	}
}

// TestCursorTornFallsBackToFullReplay pins the failure mode: a cursor
// that fails its CRC (torn write at power loss) degrades to replaying
// every surviving record — at-least-once, never loss.
func TestCursorTornFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	// One big active segment: nothing is deleted at ack time, so the
	// acked prefix is still on disk for the fallback to resurface.
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(6)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
		l.Ack()
	}
	l.Close()
	// Tear the cursor record.
	cpath := filepath.Join(dir, "cursor")
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := drain(t, l2)
	if len(got) != len(want) {
		t.Fatalf("torn cursor replayed %d records, want all %d", len(got), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("record %d = %q, want %q", i, got[i], p)
		}
	}
}

// TestCursorAcrossDeletedSegments pins resume when the cursor's own
// segment vanished: acking through a sealed segment deletes it on the
// spot, and a reopen must resume at the first surviving record, not
// double-deliver or lose.
func TestCursorAcrossDeletedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(10)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("need several sealed segments, got %d", st.Segments)
	}
	// Ack through the first two segments' worth.
	for i := 0; i < 6; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
		l.Ack()
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Pending(); got != 4 {
		t.Fatalf("reopen pending = %d, want 4", got)
	}
	got := drain(t, l2)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	for i, p := range want[6:] {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("record %d = %q, want %q", i, got[i], p)
		}
	}
}
