// Package wal implements the segmented write-ahead log behind Vapro's
// durability plane. Both ends of the collection path use the same log:
// ResilientClient spills overflowing wire frames to disk and replays
// them through its writer on restart, and the collector journals every
// delivered frame so a restarted server rebuilds fragment logs,
// sequence-tracker state, and generation watermarks by replay — and so
// `vapro analyze -journal` can re-run window analysis over any recorded
// interval long after the run.
//
// Layout: a directory of segment files `wal-%08d.seg`, each a 13-byte
// header (magic, version, creation time) followed by CRC32-C framed
// records (trace.AppendRecord). The active (highest-numbered) segment
// takes appends; rotation seals it at SegmentBytes. Recovery scans
// every segment in order and truncates each at its last whole, checksum-
// valid record — a torn tail from a crash mid-write costs at most the
// record being written, never the segment. Retention reclaims whole
// sealed segments oldest-first when the log exceeds MaxBytes or MaxAge;
// records reclaimed before they were consumed are surfaced through
// OnDrop so the owner can book the loss exactly instead of discovering
// it later as an unexplained gap.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vapro/internal/trace"
)

// SyncPolicy says when the log calls fsync. Durability is a spectrum
// the deployment picks: every record (each append survives power loss),
// every rotation (at most one segment of appends at risk), or never
// (the OS page cache decides; process death is still safe because the
// kernel holds the bytes).
type SyncPolicy int

// Sync policies.
const (
	// SyncRotate fsyncs a segment as it is sealed and on explicit Sync —
	// the default: process crashes lose nothing, power loss at most the
	// active segment.
	SyncRotate SyncPolicy = iota
	// SyncEach fsyncs after every append.
	SyncEach
	// SyncNever leaves flushing to the OS entirely.
	SyncNever
)

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment is sealed once
	// it reaches it. Default 4 MiB. A single record larger than the
	// threshold still gets written (alone in its segment).
	SegmentBytes int64
	// MaxBytes bounds the whole log; when exceeded, sealed segments are
	// reclaimed oldest-first (the active segment is never reclaimed).
	// 0 means unbounded.
	MaxBytes int64
	// MaxAge reclaims sealed segments created longer than this ago.
	// 0 means unbounded.
	MaxAge time.Duration
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncFn replaces the fsync call; tests inject failures or count
	// calls. Nil means (*os.File).Sync.
	SyncFn func(*os.File) error
	// Now supplies segment creation timestamps (age-based retention);
	// nil means time.Now. Injectable for deterministic retention tests.
	Now func() time.Time
	// WriteErr, when non-nil, is consulted before every disk write; a
	// non-nil return fails the append as if the disk had (fault
	// injection for disk-full paths).
	WriteErr func() error
	// OnDrop receives the payloads of records reclaimed by retention
	// before the consumer acknowledged them, in log order, so the owner
	// can book each loss exactly. Called synchronously under the log
	// lock from Append. Nil skips decoding the reclaimed records.
	OnDrop func(payloads [][]byte)
	// Metrics, when non-nil, mirrors the log's state into an
	// observability surface.
	Metrics *Metrics
}

// Segment file format.
const (
	segSuffix     = ".seg"
	segPrefix     = "wal-"
	segVersion    = 1
	segHeaderSize = 4 + 1 + 8 // magic, version, created unix nanos

	// cursorFile persists the consume position (segment index + byte
	// offset) as one CRC-framed record, rewritten in place on every Ack
	// without fsync: process death cannot lose it (the kernel holds the
	// bytes), and a torn write from power loss fails the CRC, falling
	// back to replaying everything — at-least-once, never lossy.
	cursorFile = "cursor"
)

var segMagic = [4]byte{'V', 'W', 'A', 'L'}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// segment is one on-disk segment's bookkeeping.
type segment struct {
	path    string
	index   uint64
	size    int64 // file bytes including header
	records int
	created int64 // unix nanos from the header
}

// Stats is a point-in-time snapshot of a log.
type Stats struct {
	Segments  int
	Bytes     int64 // on-disk bytes across all segments
	Pending   int   // appended records not yet acknowledged
	Appended  uint64
	Truncated uint64 // recovery truncations (torn/corrupt tails cut)
	Dropped   uint64 // unconsumed records reclaimed by retention
	Reclaimed uint64 // sealed segments removed by retention
	OldestAge time.Duration
}

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use; the append path and the cursor path may run from
// different goroutines.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	segs    []*segment
	active  *os.File
	pending int
	closed  bool

	// Cursor state: the consumer reads records through Next (peek) and
	// Ack (consume). curSeg indexes segs; curOff is the byte offset of
	// the next unacked record inside that segment's record area; curBuf
	// caches the segment's record bytes, extended as the active segment
	// grows under the cursor.
	curSeg  int
	curOff  int64
	curBuf  []byte
	cursor  *os.File // cursorFile handle, rewritten in place on Ack
	peek    []byte
	peekEnd int64
	// peekDetached marks a peeked record whose segment retention
	// reclaimed mid-flight: the consumer still holds the payload (the
	// peek reference keeps the bytes alive), but the log no longer
	// tracks the record on disk. It stays pending until Ack so a failed
	// send still retries it from the cached peek.
	peekDetached bool

	appended  uint64
	truncated uint64
	dropped   uint64
	reclaimed uint64
}

// Open opens (creating if needed) the log in dir and recovers it:
// every segment is scanned and truncated at its last whole record, so
// a crash mid-append never poisons recovery. Records after the
// persisted consume cursor are pending; the cursor itself is
// best-effort (rewritten on every Ack, no fsync), so a machine crash
// can resurface a just-acked suffix — at-least-once, and the
// collector's sequence dedup makes the re-delivery harmless. It can
// never resurface records from before the last durable cursor write,
// which is what keeps a restarted client from replaying its very first
// frames and masquerading as a fresh sequence generation.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	if opt.SyncFn == nil {
		opt.SyncFn = func(f *os.File) error { return f.Sync() }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	if err := l.recover(); err != nil {
		return nil, err
	}
	l.noteMetricsLocked()
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// recover scans the directory, truncates torn tails, counts records,
// and opens the newest segment for appending (creating the first
// segment when the directory is empty).
func (l *Log) recover() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []*segment
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, &segment{path: filepath.Join(l.dir, name), index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for _, s := range segs {
		keep, err := l.recoverSegment(s)
		if err != nil {
			return err
		}
		if !keep {
			// Header never made it to disk — the segment held no records;
			// removing it is recovery, not loss.
			if err := os.Remove(s.path); err != nil {
				return err
			}
			continue
		}
		l.segs = append(l.segs, s)
		l.pending += s.records
	}
	cf, err := os.OpenFile(filepath.Join(l.dir, cursorFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	l.cursor = cf
	l.restoreCursor()
	if len(l.segs) == 0 {
		return l.openSegmentLocked(1)
	}
	last := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	return nil
}

// restoreCursor positions the consume cursor from the persisted record
// and discounts the acked prefix from pending. A missing, torn, or
// stale cursor degrades to replay-from-start — extra re-delivery, never
// loss. Runs during recovery, before concurrent use.
func (l *Log) restoreCursor() {
	data, err := os.ReadFile(filepath.Join(l.dir, cursorFile))
	if err != nil || len(data) == 0 {
		return
	}
	payload, _, err := trace.DecodeRecord(data)
	if err != nil || len(payload) != 16 {
		return // torn or corrupt: fall back to full replay
	}
	segIdx := leUint64(payload[:8])
	off := int64(leUint64(payload[8:16]))
	for i, s := range l.segs {
		if s.index < segIdx {
			// Everything before the cursor's segment was consumed (the
			// segment itself may have been deleted on full ack).
			l.pending -= s.records
			l.curSeg = i + 1
			continue
		}
		if s.index > segIdx {
			// The cursor's segment is gone (fully acked and deleted, or
			// reclaimed with its drops already booked live): resume at
			// the first surviving segment after it.
			l.curOff = 0
			return
		}
		// Snap the offset to a record boundary no later than off — a
		// recovery truncation can only have cut unsynced tail bytes, so
		// the acked region survives intact.
		l.curSeg = i
		consumed := l.recordsBeforeLocked(s, off)
		l.curOff = l.recordOffsetLocked(s, consumed)
		l.pending -= consumed
		return
	}
	// Cursor beyond every surviving segment (directory rewound under
	// us): park at the end of the last one so new appends — which land
	// in it or after it — stay visible to Next.
	if len(l.segs) > 0 {
		l.curSeg = len(l.segs) - 1
		l.curOff = l.segs[l.curSeg].size - segHeaderSize
	} else {
		l.curSeg, l.curOff = 0, 0
	}
}

// recordOffsetLocked returns the byte offset of record n in seg's
// record area (0 ≤ n ≤ seg.records).
func (l *Log) recordOffsetLocked(seg *segment, n int) int64 {
	if n == 0 {
		return 0
	}
	buf, err := l.loadSegLocked(seg)
	if err != nil {
		return 0
	}
	off := int64(0)
	for i := 0; i < n && off < int64(len(buf)); i++ {
		_, rn, err := trace.DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		off += int64(rn)
	}
	return off
}

// recoverSegment validates s's header, counts whole records, and
// truncates the file at the first torn or corrupt one. keep=false means
// the file has no valid header and should be removed.
func (l *Log) recoverSegment(s *segment) (keep bool, err error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return false, err
	}
	if len(data) < segHeaderSize || [4]byte(data[:4]) != segMagic || data[4] != segVersion {
		return false, nil
	}
	s.created = int64(leUint64(data[5:13]))
	valid := int64(segHeaderSize)
	rest := data[segHeaderSize:]
	for len(rest) > 0 {
		_, n, err := trace.DecodeRecord(rest)
		if err != nil {
			break
		}
		valid += int64(n)
		rest = rest[n:]
		s.records++
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(s.path, valid); err != nil {
			return false, err
		}
		l.truncated++
		if l.opt.Metrics != nil {
			l.opt.Metrics.Truncated.Inc()
		}
	}
	s.size = valid
	return true, nil
}

// openSegmentLocked creates and activates segment idx. Caller holds mu
// (or is the constructor).
func (l *Log) openSegmentLocked(idx uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	created := l.opt.Now().UnixNano()
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic[:]...)
	hdr = append(hdr, segVersion)
	hdr = appendLEUint64(hdr, uint64(created))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.active = f
	l.segs = append(l.segs, &segment{path: path, index: idx, size: segHeaderSize, created: created})
	return nil
}

// SetOnDrop replaces the retention-drop hook. The spill-WAL owner
// (ResilientClient) installs its loss-booking callback here because the
// log is opened before the client that owns it exists.
func (l *Log) SetOnDrop(fn func(payloads [][]byte)) {
	l.mu.Lock()
	l.opt.OnDrop = fn
	l.mu.Unlock()
}

// Append durably appends one payload. On error the payload is NOT in
// the log (a partially written record is cut by the next recovery), so
// the caller still owns it and can fall back to memory-only handling.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.opt.WriteErr != nil {
		if err := l.opt.WriteErr(); err != nil {
			l.countErrLocked()
			return err
		}
	}
	rec := trace.AppendRecord(make([]byte, 0, len(payload)+16), payload)
	cur := l.segs[len(l.segs)-1]
	if cur.records > 0 && cur.size+int64(len(rec)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.countErrLocked()
			return err
		}
		cur = l.segs[len(l.segs)-1]
	}
	if _, err := l.active.Write(rec); err != nil {
		l.countErrLocked()
		return err
	}
	cur.size += int64(len(rec))
	cur.records++
	l.pending++
	l.appended++
	if m := l.opt.Metrics; m != nil {
		m.Appended.Inc()
		m.AppendedBytes.Add(uint64(len(rec)))
	}
	if l.opt.Sync == SyncEach {
		l.fsyncLocked()
	}
	l.enforceRetentionLocked()
	l.noteMetricsLocked()
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if l.opt.Sync != SyncNever {
		l.fsyncLocked()
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	next := l.segs[len(l.segs)-1].index + 1
	return l.openSegmentLocked(next)
}

// fsyncLocked syncs the active segment, timing the call.
func (l *Log) fsyncLocked() {
	start := time.Now()
	err := l.opt.SyncFn(l.active)
	if m := l.opt.Metrics; m != nil {
		m.Fsyncs.Inc()
		m.FsyncNS.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			m.Errors.Inc()
		}
	}
}

// countErrLocked bumps the error counter.
func (l *Log) countErrLocked() {
	if m := l.opt.Metrics; m != nil {
		m.Errors.Inc()
	}
}

// enforceRetentionLocked reclaims sealed segments oldest-first while
// the log exceeds its byte or age budget. Unconsumed records inside a
// reclaimed segment are handed to OnDrop — loss by retention is booked,
// never silent.
func (l *Log) enforceRetentionLocked() {
	for len(l.segs) > 1 {
		oldest := l.segs[0]
		over := false
		if l.opt.MaxBytes > 0 && l.totalBytesLocked() > l.opt.MaxBytes {
			over = true
		}
		if !over && l.opt.MaxAge > 0 && l.opt.Now().UnixNano()-oldest.created > l.opt.MaxAge.Nanoseconds() {
			over = true
		}
		if !over {
			return
		}
		l.reclaimOldestLocked()
	}
}

// reclaimOldestLocked removes segs[0], booking any unacked records in
// it as dropped.
func (l *Log) reclaimOldestLocked() {
	oldest := l.segs[0]
	if l.curSeg == 0 {
		// The cursor sits inside the reclaimed segment: its unread
		// records are lost to retention — except a record the consumer
		// peeked and may be writing out right now. That one detaches
		// instead (the peek reference keeps its bytes alive) and settles
		// on Ack or retry; booking it dropped here would let one frame
		// count both sent and lost. A record that detached in an earlier
		// reclaim stays the consumer's; the current segs[0] then holds
		// only records the cursor never reached.
		off := l.curOff
		if l.peek != nil && !l.peekDetached {
			off = l.peekEnd
			l.peekDetached = true
		}
		unread := oldest.records - l.recordsBeforeLocked(oldest, off)
		if unread > 0 {
			if l.opt.OnDrop != nil {
				if payloads := l.unreadPayloadsLocked(oldest, off); len(payloads) > 0 {
					l.opt.OnDrop(payloads)
				}
			}
			l.pending -= unread
			l.dropped += uint64(unread)
			if m := l.opt.Metrics; m != nil {
				m.Dropped.Add(uint64(unread))
			}
		}
		l.curOff = 0
		l.curBuf = nil
	} else {
		l.curSeg--
	}
	os.Remove(oldest.path)
	l.segs = l.segs[1:]
	l.reclaimed++
	if m := l.opt.Metrics; m != nil {
		m.Reclaimed.Inc()
	}
}

// recordsBeforeLocked counts whole records before byte offset upto in
// seg's record area — i.e. records the consumer already passed.
func (l *Log) recordsBeforeLocked(seg *segment, upto int64) int {
	if upto == 0 {
		return 0
	}
	buf, err := l.loadSegLocked(seg)
	if err != nil {
		return 0
	}
	n, off := 0, int64(0)
	for off < upto && off < int64(len(buf)) {
		_, rn, err := trace.DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		off += int64(rn)
		n++
	}
	return n
}

// unreadPayloadsLocked decodes the records at and after byte offset
// from in seg, copying each payload (the backing buffer is about to go
// away).
func (l *Log) unreadPayloadsLocked(seg *segment, from int64) [][]byte {
	buf, err := l.loadSegLocked(seg)
	if err != nil {
		return nil
	}
	var out [][]byte
	off := from
	for off < int64(len(buf)) {
		payload, n, err := trace.DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, cp)
		off += int64(n)
	}
	return out
}

// loadSegLocked reads seg's record area from disk.
func (l *Log) loadSegLocked(seg *segment) ([]byte, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderSize {
		return nil, nil
	}
	return data[segHeaderSize:], nil
}

// totalBytesLocked sums on-disk segment sizes.
func (l *Log) totalBytesLocked() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// Next peeks the oldest unacknowledged record's payload, or (nil, nil)
// when none is pending. Repeated calls without Ack return the same
// record. The returned slice is owned by the log until Ack.
func (l *Log) Next() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.peek != nil {
		return l.peek, nil
	}
	for {
		if l.curSeg >= len(l.segs) {
			return nil, nil
		}
		seg := l.segs[l.curSeg]
		recArea := seg.size - segHeaderSize
		if l.curOff >= recArea {
			if l.curSeg == len(l.segs)-1 {
				return nil, nil // caught up with the active segment
			}
			l.curSeg++
			l.curOff = 0
			l.curBuf = nil
			continue
		}
		// Extend the cached buffer if the segment grew under the cursor
		// (only the active segment does).
		if int64(len(l.curBuf)) < recArea {
			buf, err := l.loadSegLocked(seg)
			if err != nil {
				l.countErrLocked()
				return nil, err
			}
			l.curBuf = buf
		}
		payload, n, err := trace.DecodeRecord(l.curBuf[l.curOff:])
		if err != nil {
			// A record that recovered clean but reads torn now means the
			// disk changed underneath us; treat the rest of this segment
			// as consumed rather than spinning.
			l.countErrLocked()
			return nil, err
		}
		l.peek = payload
		l.peekEnd = l.curOff + int64(n)
		return payload, nil
	}
}

// Ack consumes the record last returned by Next. Sealed segments whose
// records are all acknowledged are deleted on the spot — successful
// delivery reclaims disk without waiting for retention.
func (l *Log) Ack() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.peek == nil {
		return
	}
	if l.peekDetached {
		// The record's segment was reclaimed mid-flight; the cursor
		// already points at the next surviving segment, so only the
		// pending count settles here.
		l.peek = nil
		l.peekDetached = false
		l.pending--
		l.persistCursorLocked()
		l.noteMetricsLocked()
		return
	}
	l.curOff = l.peekEnd
	l.peek = nil
	l.pending--
	seg := l.segs[l.curSeg]
	if l.curOff >= seg.size-segHeaderSize && l.curSeg < len(l.segs)-1 {
		os.Remove(seg.path)
		l.segs = append(l.segs[:l.curSeg], l.segs[l.curSeg+1:]...)
		l.curOff = 0
		l.curBuf = nil
	}
	l.persistCursorLocked()
	l.noteMetricsLocked()
}

// persistCursorLocked rewrites the cursor record in place: best-effort
// (a failed write only costs re-delivery on the next open) and never
// fsynced — see the cursorFile comment for the durability contract.
func (l *Log) persistCursorLocked() {
	if l.cursor == nil || l.curSeg >= len(l.segs) {
		return
	}
	payload := make([]byte, 0, 16)
	payload = appendLEUint64(payload, l.segs[l.curSeg].index)
	payload = appendLEUint64(payload, uint64(l.curOff))
	rec := trace.AppendRecord(make([]byte, 0, 32), payload)
	if _, err := l.cursor.WriteAt(rec, 0); err != nil {
		l.countErrLocked()
	}
}

// Pending returns how many appended records await acknowledgement.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Replay streams every record currently in the log, oldest first,
// independent of the cursor. The journal recovery path runs it against
// a fresh pool; fn's payload aliases a per-segment buffer valid only
// during the call.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	segs := make([]*segment, len(l.segs))
	copy(segs, l.segs)
	m := l.opt.Metrics
	l.mu.Unlock()
	if m != nil {
		m.ReplayActive.Set(1)
		defer m.ReplayActive.Set(0)
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if len(data) < segHeaderSize {
			continue
		}
		rest := data[segHeaderSize:]
		for len(rest) > 0 {
			payload, n, err := trace.DecodeRecord(rest)
			if err != nil {
				// Tail appended after recovery can only be torn by a
				// concurrent crash; stop cleanly at the last whole record.
				break
			}
			if err := fn(payload); err != nil {
				return err
			}
			if m != nil {
				m.Replayed.Inc()
			}
			rest = rest[n:]
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	start := time.Now()
	err := l.opt.SyncFn(l.active)
	if m := l.opt.Metrics; m != nil {
		m.Fsyncs.Inc()
		m.FsyncNS.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			m.Errors.Inc()
		}
	}
	return err
}

// OldestAge returns how long ago the oldest segment still holding
// unacknowledged records was created (segment granularity), or zero
// when nothing is pending.
func (l *Log) OldestAge() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending == 0 || l.curSeg >= len(l.segs) {
		return 0
	}
	return time.Duration(l.opt.Now().UnixNano() - l.segs[l.curSeg].created)
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:  len(l.segs),
		Bytes:     l.totalBytesLocked(),
		Pending:   l.pending,
		Appended:  l.appended,
		Truncated: l.truncated,
		Dropped:   l.dropped,
		Reclaimed: l.reclaimed,
	}
	if l.pending > 0 && l.curSeg < len(l.segs) {
		st.OldestAge = time.Duration(l.opt.Now().UnixNano() - l.segs[l.curSeg].created)
	}
	return st
}

// Close flushes (per policy) and closes the log. Pending records stay
// on disk for the next Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.opt.Sync != SyncNever {
		l.fsyncLocked()
	}
	if l.cursor != nil {
		l.cursor.Close()
		l.cursor = nil
	}
	err := l.active.Close()
	l.active = nil
	return err
}

// noteMetricsLocked refreshes the gauges.
func (l *Log) noteMetricsLocked() {
	if m := l.opt.Metrics; m != nil {
		m.Segments.Set(int64(len(l.segs)))
		m.Bytes.Set(l.totalBytesLocked())
		m.Pending.Set(int64(l.pending))
	}
}

// leUint64 / appendLEUint64 avoid importing encoding/binary for two
// fixed-width header fields.
func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendLEUint64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
