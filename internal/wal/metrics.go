package wal

import (
	"time"

	"vapro/internal/obs"
)

// Metrics mirrors one log's state into the observability plane. Two
// logs live in a deployment — the client's spill WAL and the server's
// journal — so every metric is namespaced by a log name
// (vapro_wal_<name>_*).
type Metrics struct {
	Segments      *obs.Gauge
	Bytes         *obs.Gauge
	Pending       *obs.Gauge
	ReplayActive  *obs.Gauge
	Appended      *obs.Counter
	AppendedBytes *obs.Counter
	Fsyncs        *obs.Counter
	FsyncNS       *obs.Histogram
	Truncated     *obs.Counter
	Dropped       *obs.Counter
	Reclaimed     *obs.Counter
	Replayed      *obs.Counter
	Errors        *obs.Counter
}

// NewMetrics registers a log's metric surface under
// vapro_wal_<name>_* in reg.
func NewMetrics(reg *obs.Registry, name string) *Metrics {
	p := "vapro_wal_" + name + "_"
	return &Metrics{
		Segments:      reg.Gauge(p+"segments", "wal", "segment files in the "+name+" log"),
		Bytes:         reg.Gauge(p+"bytes", "wal", "on-disk bytes across the "+name+" log's segments"),
		Pending:       reg.Gauge(p+"pending", "wal", "appended records not yet acknowledged"),
		ReplayActive:  reg.Gauge(p+"replay_in_progress", "wal", "1 while a startup replay is running"),
		Appended:      reg.Counter(p+"appended_total", "wal", "records appended"),
		AppendedBytes: reg.Counter(p+"appended_bytes_total", "wal", "record bytes appended (with envelope)"),
		Fsyncs:        reg.Counter(p+"fsyncs_total", "wal", "fsync calls issued by the sync policy"),
		FsyncNS:       reg.Histogram(p+"fsync_ns", "wal", "fsync latency", nil),
		Truncated:     reg.Counter(p+"truncated_total", "wal", "torn or corrupt segment tails cut during recovery"),
		Dropped:       reg.Counter(p+"dropped_records_total", "wal", "unconsumed records reclaimed by retention"),
		Reclaimed:     reg.Counter(p+"reclaimed_segments_total", "wal", "sealed segments removed by retention"),
		Replayed:      reg.Counter(p+"replayed_total", "wal", "records streamed by Replay"),
		Errors:        reg.Counter(p+"errors_total", "wal", "append, fsync, and read failures"),
	}
}

// RegisterOldestAge registers the derived oldest-frame-age gauge for l
// (a Func, because age moves with the clock between scrapes).
func RegisterOldestAge(reg *obs.Registry, name string, l *Log) {
	reg.Func("vapro_wal_"+name+"_oldest_age_seconds", "wal",
		"age of the oldest segment still holding unacknowledged records",
		func() float64 { return float64(l.OldestAge()) / float64(time.Second) })
}
