package wal

import (
	"fmt"
	"testing"
)

// benchPayload is sized like a realistic encoded wire frame (a few
// fragments with counters) rather than the tiny strings the unit
// tests use, so bytes/op on the append path means something.
func benchPayload() []byte {
	p := make([]byte, 512)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func BenchmarkAppend(b *testing.B) {
	for _, pol := range []struct {
		name string
		sync SyncPolicy
	}{{"rotate", SyncRotate}, {"each", SyncEach}} {
		b.Run(pol.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: pol.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			p := benchPayload()
			b.SetBytes(int64(len(p)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	const records = 10000
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := benchPayload()
	for i := 0; i < records; i++ {
		if err := l.Append(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(records) * int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		err = r.Replay(func(payload []byte) error {
			if len(payload) != len(p) {
				return fmt.Errorf("payload length %d, want %d", len(payload), len(p))
			}
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
