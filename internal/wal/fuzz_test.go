package wal

import (
	"os"
	"path/filepath"
	"testing"

	"vapro/internal/trace"
)

// FuzzLogRecover feeds arbitrary bytes to the segment recovery path:
// whatever a crash, a torn write, or a hostile actor left in the
// directory, Open must come back with a usable log and never panic —
// it is the first thing a restarted collector runs.
func FuzzLogRecover(f *testing.F) {
	valid := append([]byte("VWAL\x01"), make([]byte, 8)...)
	valid = trace.AppendRecord(valid, []byte("frame-one"))
	valid = trace.AppendRecord(valid, []byte("frame-two"))
	f.Add([]byte{})
	f.Add([]byte("VWAL\x01"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(append(append([]byte{}, valid...), 0x99, 0x00, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			// Only environmental errors may surface; segment content must
			// never fail Open.
			t.Fatalf("Open rejected segment content: %v", err)
		}
		defer l.Close()
		recovered := l.Pending()
		if err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		n := 0
		for {
			p, err := l.Next()
			if err != nil {
				t.Fatalf("Next after recovery: %v", err)
			}
			if p == nil {
				break
			}
			n++
			l.Ack()
		}
		if n != recovered+1 {
			t.Fatalf("drained %d records, pending said %d", n, recovered+1)
		}
	})
}
