package collector

import (
	"net/http"

	"vapro/internal/cluster"
	"vapro/internal/detect"
	"vapro/internal/interpose"
	"vapro/internal/obs"
)

// Metrics is the collector's self-observability surface: one registry
// per pool, threaded through every layer a fragment crosses — the
// client shim, the wire transport, the staged intake, the per-window
// analysis and its clustering cache. Handles are plain atomics; the hot
// paths never touch the registry. §6.2's self-overhead accounting
// (storage rate, analysis latency, interception cost) is exactly what
// this surface makes continuously visible.
type Metrics struct {
	Registry *obs.Registry

	// Intake (staged shards → graph merge).
	IntakeBatches    *obs.Counter
	IntakeFragments  *obs.Counter
	IntakeBytes      *obs.Counter
	IntakeStalls     *obs.Counter // consumers that hit the MaxStaged bound
	IntakeSyncDrains *obs.Counter // background mode's synchronous-drain fallbacks
	IntakeDrains     *obs.Counter // drain sweeps that merged at least one batch
	IntakeStagedPeak *obs.Gauge   // high-water mark of the staged backlog
	DrainBatches     *obs.Histogram

	// Wire transport (framed TCP ingestion).
	WireConns          *obs.Counter
	WireFrames         *obs.Counter
	WireBytes          *obs.Counter
	WireFramesRejected *obs.Counter // any frame that killed its connection
	WireDecodeErrors   *obs.Counter // subset: payloads DecodeBatch refused
	WirePanics         *obs.Counter // subset: decoder panics caught by recover
	WireSeqGaps        *obs.Counter // batches inferred lost from sequence gaps
	WireDups           *obs.Counter // duplicate batches suppressed (retransmits)
	WireClientDrops    *obs.Counter // batches a legacy WireClient discarded after its sticky error

	// Net is the resilient client's surface: connection churn and the
	// fate of every batch that could not be shipped immediately.
	NetDials         *obs.Counter // dial attempts (including failures)
	NetConnects      *obs.Counter // dials that produced a connection
	NetReconnects    *obs.Counter // connections established after the first
	NetBatchesSent   *obs.Counter // frames written to a live connection
	NetBatchesLost   *obs.Counter // batches evicted from the spill queue
	NetWriteTimeouts *obs.Counter // writes that exceeded the deadline
	NetSpillDepth    *obs.Gauge   // batches currently spilled awaiting a connection
	NetSpillPeak     *obs.Gauge   // high-water mark of the spill queue
	NetSpillBytes    *obs.Gauge   // encoded bytes currently spilled in memory

	// View is the delta-append merged view's surface: cursor advances
	// are refreshes that appended a server's new suffix in place (epoch
	// kept warm), epoch rebases are full re-concatenations (first
	// multi-server sighting, server-side rebase, or the hatch).
	ViewCursorAdvances *obs.Counter
	ViewEpochRebases   *obs.Counter

	// Shard is the spatial scale-out surface: strip merges and region
	// stitches per tier tick, shard-map version churn, and the routing
	// corrections (redirects are clients re-dialed to their owner after
	// a hello; misroutes are batches that arrived at a non-owning shard
	// and were delivered anyway).
	ShardStripsMerged    *obs.Counter
	ShardRegionsStitched *obs.Counter
	ShardmapRebalances   *obs.Counter
	ShardRedirects       *obs.Counter
	ShardMisroutes       *obs.Counter

	// OLS is the monitor's streaming-regression surface: rank-1 updates
	// are fragments folded into warm per-cluster regression moments;
	// refactors are cluster moment sets rebuilt from scratch (first
	// sighting, epoch bump, non-append clustering change, or the hatch).
	OLSRank1Updates *obs.Counter
	OLSRefactors    *obs.Counter

	// Detect is the per-window analysis surface (latency, stage spans).
	Detect *detect.Metrics
	// Client is the interposition-layer surface shared by traced ranks.
	Client *interpose.Metrics

	// Trace is the batch provenance sampler: exemplar journeys of wire
	// batches from client flush to first analyzed tick.
	Trace *obs.Trace
}

// NewMetrics builds a registry with every collector metric registered.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		Registry: reg,
		IntakeBatches: reg.Counter("vapro_intake_batches_total", "intake",
			"client batches staged by servers"),
		IntakeFragments: reg.Counter("vapro_intake_fragments_total", "intake",
			"fragments staged by servers"),
		IntakeBytes: reg.Counter("vapro_intake_bytes_total", "intake",
			"wire-encoded bytes received (the §6.2 storage volume)"),
		IntakeStalls: reg.Counter("vapro_intake_stalls_total", "intake",
			"consumers that found the staged backlog at its MaxStaged bound"),
		IntakeSyncDrains: reg.Counter("vapro_intake_sync_drains_total", "intake",
			"synchronous drains forced on producers while a background merger lagged"),
		IntakeDrains: reg.Counter("vapro_intake_drains_total", "intake",
			"drain sweeps that merged at least one staged batch"),
		IntakeStagedPeak: reg.Gauge("vapro_intake_staged_peak", "intake",
			"high-water mark of batches staged at once across servers"),
		DrainBatches: reg.Histogram("vapro_intake_drain_batches", "intake",
			"batches merged per drain sweep", obs.CountBounds()),
		WireConns: reg.Counter("vapro_wire_conns_total", "wire",
			"client connections accepted"),
		WireFrames: reg.Counter("vapro_wire_frames_total", "wire",
			"frames decoded and consumed"),
		WireBytes: reg.Counter("vapro_wire_bytes_total", "wire",
			"payload bytes of accepted frames"),
		WireFramesRejected: reg.Counter("vapro_wire_frames_rejected_total", "wire",
			"frames that terminated their connection (oversized, torn, undecodable)"),
		WireDecodeErrors: reg.Counter("vapro_wire_decode_errors_total", "wire",
			"payloads DecodeBatch refused"),
		WirePanics: reg.Counter("vapro_wire_panics_total", "wire",
			"per-connection panics contained by recover"),
		WireSeqGaps: reg.Counter("vapro_wire_seq_gaps_total", "wire",
			"batches inferred lost from per-rank sequence gaps"),
		WireDups: reg.Counter("vapro_wire_dups_total", "wire",
			"duplicate batches suppressed by sequence tracking"),
		WireClientDrops: reg.Counter("vapro_wire_client_drops_total", "wire",
			"batches a legacy WireClient discarded after its sticky error"),
		NetDials: reg.Counter("vapro_net_dials_total", "net",
			"dial attempts by the resilient client (including failures)"),
		NetConnects: reg.Counter("vapro_net_connects_total", "net",
			"dials that produced a live connection"),
		NetReconnects: reg.Counter("vapro_net_reconnects_total", "net",
			"connections re-established after the first"),
		NetBatchesSent: reg.Counter("vapro_net_batches_sent_total", "net",
			"frames written to a live connection"),
		NetBatchesLost: reg.Counter("vapro_net_batches_lost_total", "net",
			"batches evicted from the bounded spill queue"),
		NetWriteTimeouts: reg.Counter("vapro_net_write_timeouts_total", "net",
			"writes abandoned after exceeding the write deadline"),
		NetSpillDepth: reg.Gauge("vapro_net_spill_depth", "net",
			"batches currently spilled awaiting a connection"),
		NetSpillPeak: reg.Gauge("vapro_net_spill_peak", "net",
			"high-water mark of the spill queue"),
		NetSpillBytes: reg.Gauge("vapro_net_spill_bytes", "net",
			"encoded frame bytes held in the in-memory spill queue"),
		ViewCursorAdvances: reg.Counter("vapro_view_cursor_advances_total", "view",
			"merged-view refreshes that delta-appended a server's new suffix in place"),
		ViewEpochRebases: reg.Counter("vapro_view_epoch_rebases_total", "view",
			"merged-view elements rebuilt by full concatenation (epoch bumped)"),
		ShardStripsMerged: reg.Counter("vapro_shard_strips_merged_total", "shard",
			"per-class heat-map strips combined by the spatial merger"),
		ShardRegionsStitched: reg.Counter("vapro_shard_regions_stitched_total", "shard",
			"merged variance regions spanning more than one shard's ranks"),
		ShardmapRebalances: reg.Counter("vapro_shardmap_rebalances_total", "shard",
			"shard-map versions published (server set changes)"),
		ShardRedirects: reg.Counter("vapro_shard_redirects_total", "shard",
			"clients re-dialed to their owning shard after a hello"),
		ShardMisroutes: reg.Counter("vapro_shard_misroutes_total", "shard",
			"batches accepted by a shard that does not own their rank"),
		OLSRank1Updates: reg.Counter("vapro_ols_rank1_updates_total", "ols",
			"fragments folded into warm regression moments by rank-1 updates"),
		OLSRefactors: reg.Counter("vapro_ols_refactors_total", "ols",
			"per-cluster regression moment sets rebuilt from scratch"),
		Detect: detect.NewMetrics(reg),
		Client: interpose.NewMetrics(reg),
		Trace:  obs.NewTrace(reg, "trace", 0, 0),
	}
	return m
}

// Handler serves the metrics surface over HTTP: the registry at every
// path except /trace, which serves the exemplar journey ring as JSON.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", m.Registry.Handler())
	mux.Handle("/trace", obs.TraceHandler(m.Trace.Snapshot))
	return mux
}

// Metrics returns the pool's observability surface.
func (p *Pool) Metrics() *Metrics { return p.met }

// Handler serves the pool's registry over HTTP (Prometheus text or
// JSON; see obs.Registry.Handler) plus /trace (exemplar journeys).
func (p *Pool) Handler() http.Handler { return p.met.Handler() }

// stagedNow sums the servers' current staged backlogs.
func (p *Pool) stagedNow() int64 {
	var n int64
	for _, s := range p.servers {
		n += s.staged.Load()
	}
	return n
}

// registerDerived adds the pool-shaped Func metrics: values owned by
// other layers as live atomics (staged depth, cache counters) or
// derived from counters already registered (the §6.2 storage rate),
// computed at snapshot time so nothing is double-accounted.
func (p *Pool) registerDerived() {
	reg := p.met.Registry
	reg.Func("vapro_intake_staged", "intake",
		"batches currently staged across servers", func() float64 {
			return float64(p.stagedNow())
		})
	reg.Func("vapro_servers", "intake",
		"server processes in the pool", func() float64 {
			return float64(len(p.servers))
		})
	reg.Func("vapro_ranks", "intake",
		"client ranks the pool was provisioned for", func() float64 {
			return float64(p.ranks)
		})
	reg.Func("vapro_storage_bytes_per_rank_second", "intake",
		"received bytes per rank per wall second (§6.2 storage rate)", func() float64 {
			sec := p.met.Registry.Uptime().Seconds()
			if sec <= 0 || p.ranks == 0 {
				return 0
			}
			return float64(p.met.IntakeBytes.Load()) / sec / float64(p.ranks)
		})
	registerCacheDerived(reg, p.an.Cache())
}

// registerMonitorDerived points the cluster-cache Func metrics at the
// monitor's analyzer instead of the pool's: with a Monitor in front,
// window analyses run on the monitor's cache and the pool's stays cold.
// Re-registration replaces the pool's entries (last writer wins).
func (m *Monitor) registerMonitorDerived() {
	registerCacheDerived(m.pool.met.Registry, m.analyzer.Cache())
}

// registerCacheDerived publishes one clustering cache's counters as
// Func metrics. Both the pool and the monitor call it (last writer
// wins), so the published values always describe the cache window
// analyses actually run on.
func registerCacheDerived(reg *obs.Registry, cache *cluster.Cache) {
	reg.Func("vapro_cluster_cache_hits", "cluster",
		"analysis passes that reused a memoized clustering", func() float64 {
			h, _ := cache.Stats()
			return float64(h)
		})
	reg.Func("vapro_cluster_cache_misses", "cluster",
		"analysis passes that fully re-clustered an element", func() float64 {
			_, mi := cache.Stats()
			return float64(mi)
		})
	reg.Func("vapro_cluster_cache_evictions", "cluster",
		"memoized clusterings discarded (stale overwrites and invalidations)", func() float64 {
			return float64(cache.Evictions())
		})
	reg.Func("vapro_cluster_cache_entries", "cluster",
		"elements currently memoized", func() float64 {
			return float64(cache.Len())
		})
	reg.Func("vapro_cluster_cache_inc_hits", "cluster",
		"element growths absorbed by the incremental delta-clustering path", func() float64 {
			h, _ := cache.IncStats()
			return float64(h)
		})
	reg.Func("vapro_cluster_cache_inc_fallbacks", "cluster",
		"incremental updates abandoned for a full re-cluster (all reasons; see the per-reason split)", func() float64 {
			_, f := cache.IncStats()
			return float64(f)
		})
	reg.Func("vapro_cluster_cache_inc_fallback_multid", "cluster",
		"incremental fallbacks from structural multi-D events (vector-shape change, partition restructured by a new seed)", func() float64 {
			m, _, _ := cache.IncFallbackReasons()
			return float64(m)
		})
	reg.Func("vapro_cluster_cache_inc_fallback_dirty", "cluster",
		"incremental fallbacks whose dirty span exceeded MaxDirtyRatio", func() float64 {
			_, d, _ := cache.IncFallbackReasons()
			return float64(d)
		})
	reg.Func("vapro_cluster_cache_inc_fallback_stale", "cluster",
		"lookups at an older generation than the cached entry, answered by a one-off batch run (same events as stale_rejects)", func() float64 {
			_, _, s := cache.IncFallbackReasons()
			return float64(s)
		})
	reg.Func("vapro_cluster_cache_stale_rejects", "cluster",
		"reads at an older generation than the cached entry (answered one-off, entry kept)", func() float64 {
			return float64(cache.StaleRejects())
		})
}
