package collector

import (
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/trace"
)

func frag(rank int, start, elapsed int64) trace.Fragment {
	return trace.Fragment{
		Rank: rank, Kind: trace.Comp, From: 1, State: 2,
		Start: start, Elapsed: elapsed,
		Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
	}
}

func TestPoolSizing(t *testing.T) {
	cases := []struct{ ranks, servers int }{
		{1, 1}, {256, 1}, {257, 2}, {1024, 4}, {2048, 8},
	}
	for _, c := range cases {
		p := NewPool(c.ranks, DefaultOptions())
		if p.Servers() != c.servers {
			t.Fatalf("%d ranks → %d servers, want %d (1:256)", c.ranks, p.Servers(), c.servers)
		}
	}
	// Explicit server count wins.
	opt := DefaultOptions()
	opt.Servers = 3
	if p := NewPool(1000, opt); p.Servers() != 3 {
		t.Fatal("explicit server count ignored")
	}
}

func TestSharding(t *testing.T) {
	opt := DefaultOptions()
	opt.Servers = 4
	p := NewPool(16, opt)
	for rank := 0; rank < 16; rank++ {
		p.Consume(rank, []trace.Fragment{frag(rank, 0, 100)})
	}
	if p.FragmentCount() != 16 {
		t.Fatalf("fragments: %d", p.FragmentCount())
	}
	// Each server holds exactly its shard (16/4).
	for i, s := range p.servers {
		s.mu.Lock()
		n := s.graph.NumFragments()
		s.mu.Unlock()
		if n != 4 {
			t.Fatalf("server %d holds %d fragments, want 4", i, n)
		}
	}
}

func TestGraphMerge(t *testing.T) {
	opt := DefaultOptions()
	opt.Servers = 2
	p := NewPool(4, opt)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 6; i++ {
			p.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1000, 500)})
		}
	}
	g := p.Graph()
	if g.NumFragments() != 24 {
		t.Fatalf("merged fragments: %d", g.NumFragments())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("merged edges: %d", g.NumEdges())
	}
}

func TestWindowResultsOverlap(t *testing.T) {
	opt := DefaultOptions()
	opt.Period = 10 * sim.Millisecond
	opt.Overlap = 5 * sim.Millisecond
	opt.Detect.Window = sim.Millisecond
	p := NewPool(2, opt)
	// 30ms of fragments per rank.
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 30; i++ {
			p.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1_000_000, 900_000)})
		}
	}
	wins := p.WindowResults()
	if len(wins) < 5 {
		t.Fatalf("expected ≥5 overlapped windows over 30ms, got %d", len(wins))
	}
	// Consecutive windows overlap by half a period.
	for i := 1; i < len(wins); i++ {
		if wins[i].Start-wins[i-1].Start != sim.Time(opt.Period-opt.Overlap) {
			t.Fatalf("window stride wrong: %v → %v", wins[i-1].Start, wins[i].Start)
		}
		if wins[i].Start >= wins[i-1].End {
			t.Fatal("windows do not overlap")
		}
	}
	for _, w := range wins {
		if w.Result == nil || len(w.Result.Samples[detect.Computation]) == 0 {
			t.Fatal("window analysis empty")
		}
	}
}

func TestWindowResultsEmpty(t *testing.T) {
	p := NewPool(2, DefaultOptions())
	if wins := p.WindowResults(); wins != nil {
		t.Fatalf("empty pool produced windows: %d", len(wins))
	}
}

func TestStats(t *testing.T) {
	p := NewPool(4, DefaultOptions())
	for rank := 0; rank < 4; rank++ {
		p.Consume(rank, []trace.Fragment{frag(rank, 0, 100), frag(rank, 100, 100)})
	}
	st := p.Stats(2 * sim.Second)
	if st.Fragments != 8 || st.Batches != 4 {
		t.Fatalf("stats: %+v", st)
	}
	// BytesIn is the measured wire encoding, not an estimate. Each batch
	// (2 fragments, 2 dictionary keys, identical counters so the second
	// fragment delta-encodes to a few bytes) is 38 bytes with the v1
	// format — this pin catches accidental format or accounting drift.
	wantBatch := trace.BatchWireSize(0, []trace.Fragment{frag(0, 0, 100), frag(0, 100, 100)})
	if wantBatch != 38 {
		t.Fatalf("wire format drifted: batch is %d bytes, want 38", wantBatch)
	}
	if st.BytesIn != 4*int64(wantBatch) {
		t.Fatalf("bytes: %d, want %d", st.BytesIn, 4*wantBatch)
	}
	// 152 bytes / 2s / 4 ranks = 19 B/s/rank.
	if st.BytesPerRankSecond != 19 {
		t.Fatalf("rate: %v", st.BytesPerRankSecond)
	}
	// Sequential consumes stage one batch and immediately drain it via
	// the uncontended TryLock, so the backlog never exceeds one and no
	// backpressure fires; nothing arrived over the wire to be rejected.
	if st.IntakeStalls != 0 {
		t.Fatalf("stalls: %d, want 0", st.IntakeStalls)
	}
	if st.MaxStagedDepth != 1 {
		t.Fatalf("max staged depth: %d, want 1", st.MaxStagedDepth)
	}
	if st.FramesRejected != 0 {
		t.Fatalf("frames rejected: %d, want 0", st.FramesRejected)
	}
}

func TestArmedHandleShared(t *testing.T) {
	p := NewPool(4, DefaultOptions())
	if p.Armed == nil {
		t.Fatal("pool must expose the armed-groups handle")
	}
	p.Armed.Set(sim.GroupAll)
	if p.Armed.Get() != sim.GroupAll {
		t.Fatal("armed handle not settable")
	}
}
