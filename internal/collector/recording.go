package collector

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"vapro/internal/stg"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Recording is a persisted fragment stream: everything the analysis
// side needs to re-run detection and diagnosis later, offline. The
// production workflow this enables — record cheaply during the run,
// analyze after the fact or on another machine — is how the paper's
// tool is used when no server capacity is spared at run time.
type Recording struct {
	// Version guards the wire format.
	Version int
	// Ranks is the client count the stream came from.
	Ranks int
	// MakespanNS is the run's virtual duration.
	MakespanNS int64
	// SiteNames maps state keys to human-readable call-sites.
	SiteNames map[uint64]string
	// Batches is the raw fragment stream.
	Batches []Batch
}

// recordingVersion is bumped on incompatible format changes.
const recordingVersion = 1

// WriteRecording serializes rec with gob.
func WriteRecording(w io.Writer, rec *Recording) error {
	cp := *rec
	cp.Version = recordingVersion
	return gob.NewEncoder(w).Encode(&cp)
}

// ReadRecording deserializes a recording and validates its version.
func ReadRecording(r io.Reader) (*Recording, error) {
	var rec Recording
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("collector: corrupt recording: %w", err)
	}
	if rec.Version != recordingVersion {
		return nil, fmt.Errorf("collector: recording version %d, want %d", rec.Version, recordingVersion)
	}
	if rec.Ranks <= 0 {
		return nil, fmt.Errorf("collector: recording without ranks")
	}
	return &rec, nil
}

// Graph rebuilds the STG from the recorded stream.
func (rec *Recording) Graph() *stg.Graph {
	g := stg.New()
	for _, b := range rec.Batches {
		g.AddBatch(b.Fragments)
	}
	for k, n := range rec.SiteNames {
		g.SetName(k, n)
	}
	return g
}

// FragmentCount returns the total recorded fragments.
func (rec *Recording) FragmentCount() int {
	n := 0
	for _, b := range rec.Batches {
		n += len(b.Fragments)
	}
	return n
}

// RecordingSink accumulates batches for later persistence. The zero
// value is ready to use. It implements interpose.Sink and can wrap
// another sink (e.g. a Pool) so recording and live analysis can run
// together.
type RecordingSink struct {
	mu   sync.Mutex
	next interface {
		Consume(rank int, frags []trace.Fragment)
	}
	batches []Batch
}

// NewRecordingSink creates a sink; next may be nil (record only).
func NewRecordingSink(next interface {
	Consume(rank int, frags []trace.Fragment)
}) *RecordingSink {
	return &RecordingSink{next: next}
}

// Consume implements interpose.Sink.
func (s *RecordingSink) Consume(rank int, frags []trace.Fragment) {
	s.record(rank, frags)
	if s.next != nil {
		s.next.Consume(rank, frags)
	}
}

// ConsumeSized mirrors Consume for the wire path, forwarding the
// measured encoded size when the wrapped sink can book it directly.
func (s *RecordingSink) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	s.record(rank, frags)
	if ss, ok := s.next.(sizedSink); ok {
		ss.ConsumeSized(rank, frags, bytes)
	} else if s.next != nil {
		s.next.Consume(rank, frags)
	}
}

// Metrics forwards the wrapped sink's observability surface, if any, so
// a wire server serving a recording sink still counts into the live
// pool's registry. Returns nil when nothing downstream provides one.
func (s *RecordingSink) Metrics() *Metrics {
	if mp, ok := s.next.(metricsProvider); ok {
		return mp.Metrics()
	}
	return nil
}

// SeqState forwards the wrapped sink's sequence tracker, if any, so a
// wire server serving a recording sink keeps exact gap accounting.
func (s *RecordingSink) SeqState() *SeqTracker {
	if ss, ok := s.next.(seqStater); ok {
		return ss.SeqState()
	}
	return nil
}

// Journal forwards the wrapped sink's delivery journal, if any, so
// recording in front of a journaled pool keeps durability intact.
func (s *RecordingSink) Journal() *wal.Log {
	if jp, ok := s.next.(journalProvider); ok {
		return jp.Journal()
	}
	return nil
}

func (s *RecordingSink) record(rank int, frags []trace.Fragment) {
	cp := make([]trace.Fragment, len(frags))
	copy(cp, frags)
	s.mu.Lock()
	s.batches = append(s.batches, Batch{Rank: rank, Fragments: cp})
	s.mu.Unlock()
}

// Recording assembles the persisted form.
func (s *RecordingSink) Recording(ranks int, makespanNS int64, siteNames map[uint64]string) *Recording {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Recording{
		Ranks:      ranks,
		MakespanNS: makespanNS,
		SiteNames:  siteNames,
		Batches:    s.batches,
	}
}

// encodeRaw writes a recording without version stamping (tests only).
func encodeRaw(w io.Writer, rec *Recording) error {
	return gob.NewEncoder(w).Encode(rec)
}
