package collector

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vapro/internal/faults"
	"vapro/internal/trace"
)

// waitUntil polls cond every millisecond until it holds or the deadline
// passes; tests assert on the returned bool instead of sleeping fixed
// wall-clock amounts.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResilientBackoffSchedule pins the reconnect schedule against the
// fake clock: base 50ms doubling to the 150ms cap, with Rand pinned to
// 0.5 so the ±20% jitter term is exactly zero. No real sleeps.
func TestResilientBackoffSchedule(t *testing.T) {
	fc := faults.NewFakeClock()
	dialErr := errors.New("collector down")
	dial := faults.FlakyDialer(4, dialErr, func() (net.Conn, error) {
		cli, srv := net.Pipe()
		go func() { // drain so the frame write completes
			buf := make([]byte, 1024)
			for {
				if _, err := srv.Read(buf); err != nil {
					return
				}
			}
		}()
		return cli, nil
	})
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  150 * time.Millisecond,
		Jitter:      0.2,
		Clock:       fc,
		Rand:        func() float64 { return 0.5 },
	})
	defer c.Close()

	c.Consume(0, []trace.Fragment{frag(0, 0, 500)})
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond,
		150 * time.Millisecond, 150 * time.Millisecond}
	for i, d := range want {
		if !fc.BlockUntilWaiters(1, 2*time.Second) {
			t.Fatalf("attempt %d: writer never backed off", i+1)
		}
		got := fc.Requested()
		if got[len(got)-1] != d {
			t.Fatalf("backoff %d = %v, want %v (full schedule %v)", i+1, got[len(got)-1], d, got)
		}
		fc.Advance(d)
	}
	if !waitUntil(2*time.Second, func() bool { return c.Stats().Sent == 1 }) {
		t.Fatalf("frame never sent after dial recovered: %+v", c.Stats())
	}
	st := c.Stats()
	if st.Dials != 5 || st.Connects != 1 || st.Reconnects != 0 {
		t.Fatalf("dials=%d connects=%d reconnects=%d, want 5/1/0", st.Dials, st.Connects, st.Reconnects)
	}
}

// TestResilientSpillEviction pins the bounded-queue policy: the oldest
// batch not currently being written is evicted first, losses are booked
// per rank, and once the link recovers the survivors are delivered
// while the evictions surface server-side as exactly-counted sequence
// gaps.
func TestResilientSpillEviction(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()

	fc := faults.NewFakeClock()
	var up atomic.Bool
	dialErr := errors.New("collector down")
	dial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, dialErr
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MaxSpill:    3,
		Clock:       fc,
		Rand:        func() float64 { return 0.5 },
	})
	defer c.Close()

	// Batch 0 goes in flight (dial fails, writer parks on the clock);
	// its start time marks it.
	c.Consume(0, []trace.Fragment{frag(0, 0, 500)})
	if !fc.BlockUntilWaiters(1, 2*time.Second) {
		t.Fatal("writer never backed off")
	}
	// Fill the queue, then overflow it twice: batches 1 and 2 (the
	// oldest entries behind the in-flight head) must be the victims.
	for i := 1; i <= 4; i++ {
		c.Consume(0, []trace.Fragment{frag(0, int64(i)*1000, 500)})
	}
	st := c.Stats()
	if st.Lost != 2 || st.LostByRank[0] != 2 {
		t.Fatalf("lost=%d byRank=%v, want 2", st.Lost, st.LostByRank)
	}
	if st.SpillDepth != 3 || st.SpillPeak != 3 {
		t.Fatalf("spill depth=%d peak=%d, want 3/3", st.SpillDepth, st.SpillPeak)
	}

	// Link recovers: survivors 0, 3, 4 deliver; the server's tracker
	// books the two evictions as sequence gaps.
	up.Store(true)
	fc.Advance(time.Minute)
	if !waitUntil(5*time.Second, func() bool { return pool.FragmentCount() == 3 }) {
		t.Fatalf("survivors not delivered: %d fragments", pool.FragmentCount())
	}
	if got := pool.SeqState().GapFrames(); got != 2 {
		t.Fatalf("server gap frames = %d, want 2", got)
	}
	g := pool.Graph()
	starts := map[int64]bool{}
	for _, v := range g.Vertices() {
		for _, f := range v.Fragments {
			starts[f.Start] = true
		}
	}
	for _, e := range g.Edges() {
		for _, f := range e.Fragments {
			starts[f.Start] = true
		}
	}
	for _, want := range []int64{0, 3000, 4000} {
		if !starts[want] {
			t.Fatalf("surviving batch with start %d not delivered (got %v)", want, starts)
		}
	}
}

// TestResilientReconnectAcrossRestart: batches consumed across a full
// server restart either arrive or are accounted as sequence gaps —
// never silently vanish. (A batch written into the dying server's
// socket can "succeed" locally and still be lost; the sequence gap is
// how that loss stays exact.)
func TestResilientReconnectAcrossRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)
	srv.SetDrainTimeout(100 * time.Millisecond)

	c := NewResilientClient(func() (net.Conn, error) { return net.Dial("tcp", addr) },
		ResilientOptions{BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	defer c.Close()

	c.Consume(0, []trace.Fragment{frag(0, 0, 500)})
	if !waitUntil(5*time.Second, func() bool { return pool.FragmentCount() == 1 }) {
		t.Fatal("first batch not delivered")
	}

	// Kill the server; the client spills (or loses into the dying
	// socket) while reconnect dials fail.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c.Consume(0, []trace.Fragment{frag(0, 1000, 500)})
	c.Consume(0, []trace.Fragment{frag(0, 2000, 500)})

	// Restart on the same address; everything still queued must drain
	// and the books must balance: delivered + gaps == consumed.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ServeWire(ln2, pool)
	srv2.SetDrainTimeout(100 * time.Millisecond)
	defer srv2.Close()
	// A sentinel batch after the restart guarantees the server sees a
	// frame past any lost sequence numbers, so every loss materializes
	// as a gap and the books can balance.
	c.Consume(0, []trace.Fragment{frag(0, 3000, 500)})
	balanced := func() bool {
		return uint64(pool.FragmentCount())+pool.SeqState().GapFrames() == 4
	}
	if !waitUntil(5*time.Second, balanced) {
		t.Fatalf("books never balanced: %d fragments + %d gaps != 4 consumed",
			pool.FragmentCount(), pool.SeqState().GapFrames())
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("client queue never drained")
	}
	st := c.Stats()
	if st.Lost != 0 || st.Abandoned != 0 {
		t.Fatalf("lost=%d abandoned=%d, want 0/0 (spill never overflowed)", st.Lost, st.Abandoned)
	}
	if st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", st.Reconnects)
	}
	if got := pool.FragmentCount(); got < 2 {
		t.Fatalf("only %d fragments delivered, want >= 2", got)
	}
}

// TestSeqTrackerAccounting pins the tracker's state machine: in-order
// delivery, gap booking with outage intervals, duplicate suppression,
// and the seq-0 client-restart reset.
func TestSeqTrackerAccounting(t *testing.T) {
	tr := NewSeqTracker()
	if deliver, gap := tr.Observe(3, 0, 0, 1000); !deliver || gap != 0 {
		t.Fatalf("first batch: deliver=%v gap=%d", deliver, gap)
	}
	if deliver, gap := tr.Observe(3, 1, 1000, 2000); !deliver || gap != 0 {
		t.Fatalf("in-order batch: deliver=%v gap=%d", deliver, gap)
	}
	// Batches 2,3,4 lost: seq 5 arrives with a gap of 3 covering
	// virtual time [2000 (rank high-water), 7000 (next batch start)).
	if deliver, gap := tr.Observe(3, 5, 7000, 8000); !deliver || gap != 3 {
		t.Fatalf("gap batch: deliver=%v gap=%d", deliver, gap)
	}
	out := tr.Outages()
	if len(out) != 1 || out[0].Rank != 3 || out[0].Start != 2000 || out[0].End != 7000 {
		t.Fatalf("outages = %+v", out)
	}
	// A retransmit of an already-delivered seq is suppressed.
	if deliver, _ := tr.Observe(3, 5, 7000, 8000); deliver {
		t.Fatal("duplicate delivered")
	}
	if tr.Dups() != 1 || tr.GapFrames() != 3 {
		t.Fatalf("dups=%d gaps=%d, want 1/3", tr.Dups(), tr.GapFrames())
	}
	// Seq 0 again: the client restarted; numbering resets with no gap
	// charged and no duplicate suppression.
	if deliver, gap := tr.Observe(3, 0, 9000, 9500); !deliver || gap != 0 {
		t.Fatalf("restart batch: deliver=%v gap=%d", deliver, gap)
	}
	if tr.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", tr.Restarts())
	}
	if tr.LastSeen(3).IsZero() || !tr.LastSeen(99).IsZero() {
		t.Fatal("last-seen bookkeeping wrong")
	}
}

// TestPoolWindowResultsMarkStale: sequence gaps recorded by the pool's
// tracker must surface as stale cells in the per-window heat maps — a
// rank that went silent because its batches were lost is neither fast
// nor slow.
func TestPoolWindowResultsMarkStale(t *testing.T) {
	pool := NewPool(2, DefaultOptions())
	// Rank 1 delivered its first batch, then lost two batches covering
	// virtual time [1s, 20s).
	tr := pool.SeqState()
	tr.Observe(1, 0, 0, 1_000_000_000)
	tr.Observe(1, 3, 20_000_000_000, 21_000_000_000)
	for i := 0; i < 20; i++ {
		pool.Consume(0, []trace.Fragment{frag(0, int64(i)*1_000_000_000, 100_000_000)})
		pool.Consume(1, []trace.Fragment{frag(1, int64(i)*1_000_000_000, 100_000_000)})
	}
	stale := false
	for _, wr := range pool.WindowResults() {
		for _, h := range wr.Result.Maps {
			for w := 0; w < h.Windows; w++ {
				if h.StaleAt(1, w) {
					stale = true
				}
				if h.StaleAt(0, w) {
					t.Fatal("rank 0 marked stale without any gap")
				}
			}
		}
	}
	if !stale {
		t.Fatal("no window marked rank 1 stale despite a recorded outage")
	}
	st := pool.Stats(0)
	if st.SeqGaps != 2 || st.Outages != 1 {
		t.Fatalf("stats gaps=%d outages=%d, want 2/1", st.SeqGaps, st.Outages)
	}
}

// TestWireClientDropAccounting: the legacy client's post-error behavior
// is still to swallow, but every swallowed batch is now counted.
func TestWireClientDropAccounting(t *testing.T) {
	conn, _ := net.Pipe()
	conn.Close()
	c := NewWireClient(conn)
	met := NewMetrics()
	c.SetMetrics(met)
	c.Consume(0, []trace.Fragment{frag(0, 0, 1)})
	if c.Err() == nil {
		t.Fatal("write to closed pipe must error")
	}
	for i := 0; i < 3; i++ {
		c.Consume(0, []trace.Fragment{frag(0, int64(i)*1000, 1)})
	}
	if got := c.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := met.WireClientDrops.Load(); got != 3 {
		t.Fatalf("metric drops = %d, want 3", got)
	}
}

// TestWireServerShutdownHungConn: a connection that sends half a frame
// and stalls used to leak its serveConn goroutine past Close forever;
// now the drain timeout force-closes it and Close returns.
func TestWireServerShutdownHungConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)
	srv.SetDrainTimeout(50 * time.Millisecond)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header claiming 100 payload bytes, then silence.
	if _, err := conn.Write([]byte{100, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Give the server a chance to enter the payload read.
	if !waitUntil(2*time.Second, func() bool { return srv.Metrics().WireConns.Load() == 1 }) {
		t.Fatal("connection never accepted")
	}

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on the hung connection")
	}
}
