package collector

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vapro/internal/obs"
)

// Fleet observability: a FleetScraper polls every shard's existing
// metrics endpoint (the addresses come from the same ShardMap the wire
// hello publishes), folds the per-shard snapshots into one merged
// registry view, keeps a short time-series ring per metric for rate and
// reference-window computation, and evaluates the declarative health
// rules into per-shard and fleet states. A failed scrape is a first-
// class outcome — the shard shows up as unreachable with the error, it
// is never silently omitted.

// FleetOptions tunes the scraper.
type FleetOptions struct {
	// Interval between scrape sweeps in Run. 0 means 2s.
	Interval time.Duration
	// Timeout bounds one shard scrape. 0 means 2s.
	Timeout time.Duration
	// Rules is the health rule table. Nil means DefaultHealthRules.
	Rules []obs.HealthRule
	// SeriesLen is the per-metric ring capacity. 0 means 64.
	SeriesLen int
	// Fetch overrides the HTTP scrape (deterministic tests plug in
	// registries directly). Nil means an HTTP GET of
	// http://<target>/metrics?format=json.
	Fetch func(target string) (obs.Snapshot, error)
	// Now overrides the series timestamp source (tests). Nil means wall.
	Now func() int64
}

// ShardStatus is one shard's row in the fleet view — the single stable
// schema `vapro status -json` emits for both fleet and per-shard views.
type ShardStatus struct {
	Shard         int             `json:"shard"`
	Target        string          `json:"target,omitempty"`
	State         obs.HealthState `json:"state"`
	Reasons       []string        `json:"reasons,omitempty"`
	Error         string          `json:"error,omitempty"` // last scrape failure
	ResidentRanks float64         `json:"resident_ranks"`
	IntakeStaged  float64         `json:"intake_staged"`
	SeqGaps       float64         `json:"seq_gaps"`
}

// FleetStatus is the machine-readable fleet (or single-endpoint) view.
type FleetStatus struct {
	Source         string          `json:"source"` // "fleet" or "endpoint"
	State          obs.HealthState `json:"state"`
	Reasons        []string        `json:"reasons,omitempty"`
	Ranks          float64         `json:"ranks"`
	Servers        float64         `json:"servers"`
	WireFrames     float64         `json:"wire_frames"`
	SeqGaps        float64         `json:"seq_gaps"`
	Scrapes        uint64          `json:"scrapes"`
	ScrapeFailures uint64          `json:"scrape_failures"`
	Shards         []ShardStatus   `json:"shards"`
}

// fleetShard is the scraper's per-target state.
type fleetShard struct {
	target  string
	snap    *obs.Snapshot // last successful scrape (kept across failures)
	series  *obs.SeriesSet
	health  obs.HealthReport
	lastErr string
}

// FleetScraper polls shard metrics endpoints into one merged view.
type FleetScraper struct {
	opt   FleetOptions
	now   func() int64
	fetch func(target string) (obs.Snapshot, error)

	// reg holds the scraper's own metrics (scrape counters, health
	// gauge). They exist on no shard, so merging them in cannot disturb
	// the fleet-sum == Σ-shard-counters invariant.
	reg      *obs.Registry
	scrapes  *obs.Counter
	failures *obs.Counter
	health   *obs.Gauge

	mu     sync.Mutex
	shards []*fleetShard
	state  obs.HealthState
	why    []string
}

// NewFleetScraper builds a scraper over the shard metrics addresses
// (index = shard id, matching ShardMap order).
func NewFleetScraper(targets []string, opt FleetOptions) *FleetScraper {
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Second
	}
	if opt.Rules == nil {
		opt.Rules = obs.DefaultHealthRules()
	}
	if opt.SeriesLen <= 0 {
		opt.SeriesLen = 64
	}
	f := &FleetScraper{opt: opt, now: opt.Now, fetch: opt.Fetch, reg: obs.NewRegistry()}
	if f.now == nil {
		f.now = func() int64 { return time.Now().UnixNano() }
	}
	if f.fetch == nil {
		f.fetch = f.httpFetch
	}
	f.scrapes = f.reg.Counter("vapro_fleet_scrapes_total", "fleet",
		"shard scrape attempts by the fleet scraper")
	f.failures = f.reg.Counter("vapro_fleet_scrape_failures_total", "fleet",
		"shard scrapes that failed (shard reported unreachable)")
	f.health = f.reg.Gauge("vapro_fleet_health", "fleet",
		"fleet health state (0 ok, 1 degraded, 2 critical, 3 unreachable)")
	f.reg.Func("vapro_fleet_shards", "fleet",
		"shard endpoints the fleet scraper polls", func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(len(f.shards))
		})
	f.SetTargets(targets)
	return f
}

// SetTargets replaces the polled address set (a rebalanced ShardMap's
// addresses; index = shard id). Per-shard history is kept for targets
// whose address is unchanged.
func (f *FleetScraper) SetTargets(targets []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	next := make([]*fleetShard, len(targets))
	for i, tgt := range targets {
		if i < len(f.shards) && f.shards[i].target == tgt {
			next[i] = f.shards[i]
			continue
		}
		next[i] = &fleetShard{target: tgt, series: obs.NewSeriesSet(f.opt.SeriesLen)}
	}
	f.shards = next
}

// httpFetch is the default scrape: GET the shard's JSON snapshot.
func (f *FleetScraper) httpFetch(target string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	cl := &http.Client{Timeout: f.opt.Timeout}
	resp, err := cl.Get(fmt.Sprintf("http://%s/metrics?format=json", target))
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// ScrapeOnce polls every target once, re-evaluates per-shard and fleet
// health, and returns the resulting status. Run calls it on a ticker;
// tests call it directly for deterministic sequencing.
func (f *FleetScraper) ScrapeOnce() FleetStatus {
	f.mu.Lock()
	shards := append([]*fleetShard(nil), f.shards...)
	f.mu.Unlock()

	type outcome struct {
		snap obs.Snapshot
		err  error
	}
	results := make([]outcome, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			snap, err := f.fetch(target)
			results[i] = outcome{snap: snap, err: err}
		}(i, sh.target)
	}
	wg.Wait()

	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, sh := range shards {
		f.scrapes.Inc()
		if err := results[i].err; err != nil {
			f.failures.Inc()
			sh.lastErr = err.Error()
			sh.health = obs.HealthReport{
				State:   obs.HealthUnreachable,
				Reasons: []string{fmt.Sprintf("scrape failed: %v", err)},
			}
			continue
		}
		snap := results[i].snap
		sh.lastErr = ""
		sh.snap = &snap
		sh.series.Observe(&snap, now)
		sh.health = obs.EvalHealth(f.opt.Rules, &snap, sh.series)
	}
	f.state, f.why = foldFleetHealth(shards)
	f.health.Set(int64(f.state))
	return f.statusLocked()
}

// foldFleetHealth derives the fleet state from the shard states: ok
// only when every shard is ok; critical when more than half the shards
// are critical or unreachable; degraded otherwise. Reasons carry the
// shard attribution so "which shard, why" survives aggregation.
func foldFleetHealth(shards []*fleetShard) (obs.HealthState, []string) {
	if len(shards) == 0 {
		return obs.HealthOK, nil
	}
	bad := 0
	state := obs.HealthOK
	var why []string
	for i, sh := range shards {
		if sh.health.State == obs.HealthOK {
			continue
		}
		if state < obs.HealthDegraded {
			state = obs.HealthDegraded
		}
		if sh.health.State >= obs.HealthCritical {
			bad++
		}
		for _, r := range sh.health.Reasons {
			why = append(why, fmt.Sprintf("shard %d: %s", i, r))
		}
	}
	if bad*2 > len(shards) {
		state = obs.HealthCritical
	}
	return state, why
}

// Merged returns the merged fleet snapshot: every shard's last known
// snapshot folded with the merge rules, plus the scraper's own
// fleet-layer metrics.
func (f *FleetScraper) Merged() obs.Snapshot {
	f.mu.Lock()
	snaps := make([]obs.Snapshot, 0, len(f.shards)+1)
	for _, sh := range f.shards {
		if sh.snap != nil {
			snaps = append(snaps, *sh.snap)
		}
	}
	f.mu.Unlock()
	snaps = append(snaps, f.reg.Snapshot())
	return obs.MergeSnapshots(snaps)
}

// Status returns the current fleet view without scraping.
func (f *FleetScraper) Status() FleetStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.statusLocked()
}

// statusLocked builds the fleet status from the held state. Caller
// holds f.mu.
func (f *FleetScraper) statusLocked() FleetStatus {
	st := FleetStatus{
		Source:         "fleet",
		State:          f.state,
		Reasons:        append([]string(nil), f.why...),
		Scrapes:        f.scrapes.Load(),
		ScrapeFailures: f.failures.Load(),
	}
	snaps := make([]obs.Snapshot, 0, len(f.shards))
	for i, sh := range f.shards {
		row := ShardStatus{
			Shard:   i,
			Target:  sh.target,
			State:   sh.health.State,
			Reasons: append([]string(nil), sh.health.Reasons...),
			Error:   sh.lastErr,
		}
		if sh.snap != nil {
			row.ResidentRanks = snapVal(sh.snap, "vapro_ranks")
			row.IntakeStaged = snapVal(sh.snap, "vapro_intake_staged")
			row.SeqGaps = snapVal(sh.snap, "vapro_wire_seq_gaps_total")
			snaps = append(snaps, *sh.snap)
		}
		st.Shards = append(st.Shards, row)
	}
	merged := obs.MergeSnapshots(snaps)
	st.Ranks = snapVal(&merged, "vapro_ranks")
	st.Servers = snapVal(&merged, "vapro_servers")
	st.WireFrames = snapVal(&merged, "vapro_wire_frames_total")
	st.SeqGaps = snapVal(&merged, "vapro_wire_seq_gaps_total")
	return st
}

func snapVal(snap *obs.Snapshot, name string) float64 {
	if m := snap.Get(name); m != nil {
		return m.Value
	}
	return 0
}

// FleetStatusFromSnapshot builds the same stable status schema from a
// single endpoint's snapshot (what `vapro status -json` emits when it
// talks to a per-shard or tier endpoint rather than a fleet scraper).
// Per-shard rows come from the vapro_shard%d_* Func metrics when the
// endpoint is a sharded tier; a plain pool yields one synthetic row.
func FleetStatusFromSnapshot(snap *obs.Snapshot, rules []obs.HealthRule) FleetStatus {
	if rules == nil {
		rules = obs.DefaultHealthRules()
	}
	rep := obs.EvalHealth(rules, snap, nil)
	st := FleetStatus{
		Source:     "endpoint",
		State:      rep.State,
		Reasons:    rep.Reasons,
		Ranks:      snapVal(snap, "vapro_ranks"),
		Servers:    snapVal(snap, "vapro_servers"),
		WireFrames: snapVal(snap, "vapro_wire_frames_total"),
		SeqGaps:    snapVal(snap, "vapro_wire_seq_gaps_total"),
	}
	shards := int(snapVal(snap, "vapro_shards"))
	if shards <= 0 {
		st.Shards = []ShardStatus{{
			Shard:         0,
			State:         rep.State,
			ResidentRanks: st.Ranks,
			IntakeStaged:  snapVal(snap, "vapro_intake_staged"),
			SeqGaps:       st.SeqGaps,
		}}
		return st
	}
	for i := 0; i < shards; i++ {
		row := ShardStatus{Shard: i, State: obs.HealthOK}
		if m := snap.Get(fmt.Sprintf("vapro_shard%d_resident_ranks", i)); m != nil {
			row.ResidentRanks = m.Value
			row.IntakeStaged = snapVal(snap, fmt.Sprintf("vapro_shard%d_intake_staged", i))
			row.SeqGaps = snapVal(snap, fmt.Sprintf("vapro_shard%d_seq_gaps", i))
		} else {
			// The row the tier promised is missing from the scrape: say so
			// instead of dropping the shard.
			row.State = obs.HealthUnreachable
			row.Error = "no data"
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}

// Handler serves the merged fleet view: the merged registry at every
// path except /fleet, which serves the FleetStatus JSON.
func (f *FleetScraper) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.SnapshotHandler(f.Merged))
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		st := f.Status()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&st)
	})
	return mux
}

// Run scrapes on the configured interval until stop closes.
func (f *FleetScraper) Run(stop <-chan struct{}) {
	tick := time.NewTicker(f.opt.Interval)
	defer tick.Stop()
	f.ScrapeOnce()
	for {
		select {
		case <-tick.C:
			f.ScrapeOnce()
		case <-stop:
			return
		}
	}
}
