package collector

import (
	"fmt"
	"math"

	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Delivery journal: the server-side half of the durability plane. The
// wire server appends every *delivered* frame's payload — post
// sequence dedup, in delivery order — to an append-only wal.Log before
// handing the batch to the sink. Because the journal holds exactly the
// delivered stream in delivery order, replaying it through a fresh
// pool reproduces the fragment logs, the sequence tracker (gaps,
// outages, restarts) and the monitor watermarks bit-identically to the
// uninterrupted run: duplicates were never journaled, so re-observing
// each journaled sequence number makes the same deliver/suppress
// decision the live server made.

// journalProvider is implemented by sinks (Pool via AttachJournal, and
// the Monitor / RecordingSink / ShardSink forwards) that carry a
// delivery journal. The wire server probes it at ServeWire time, so
// attach the journal before starting the server.
type journalProvider interface {
	Journal() *wal.Log
}

// ReplayJournal feeds every journaled payload back through the sink,
// in journal (= original delivery) order: decode, re-observe the
// sequence number, deliver. Wire frame/byte counters advance so the
// rebuilt metrics surface reads like the uninterrupted run; nothing is
// re-journaled (the records are already durable). It returns the
// number of frames delivered.
//
// Call it on a freshly built sink before attaching the journal and
// accepting connections; a retransmit arriving after replay dedups
// against the rebuilt tracker exactly as it would have against the
// live one.
func ReplayJournal(jour *wal.Log, sink interface {
	Consume(rank int, frags []trace.Fragment)
}) (frames int, err error) {
	sized, _ := sink.(sizedSink)
	var seq *SeqTracker
	if ss, ok := sink.(seqStater); ok {
		seq = ss.SeqState()
	}
	var met *Metrics
	if mp, ok := sink.(metricsProvider); ok {
		met = mp.Metrics()
	}
	err = jour.Replay(func(payload []byte) error {
		meta, frags, derr := trace.DecodeBatchMeta(payload)
		if derr != nil {
			// Every journaled payload decoded once when it was live and
			// is CRC-guarded on disk, so this is real corruption, not a
			// torn tail (recovery already truncated those).
			return fmt.Errorf("collector: journaled frame undecodable: %w", derr)
		}
		if meta.HasSeq && seq != nil {
			minStart, maxEnd := fragSpan(frags)
			deliver, gap := seq.Observe(meta.Rank, meta.Seq, minStart, maxEnd)
			if gap > 0 && met != nil {
				met.WireSeqGaps.Add(gap)
			}
			if !deliver {
				// Unreachable on a fresh tracker (dups were never
				// journaled) but kept for defense: replaying into a
				// non-empty sink must not double-deliver.
				if met != nil {
					met.WireDups.Inc()
				}
				return nil
			}
		}
		if sized != nil {
			sized.ConsumeSized(meta.Rank, frags, len(payload))
		} else {
			sink.Consume(meta.Rank, frags)
		}
		if met != nil {
			met.WireFrames.Inc()
			met.WireBytes.Add(uint64(len(payload)))
		}
		frames++
		return nil
	})
	return frames, err
}

// fragSpan returns the batch's virtual-time extent for outage
// bookkeeping, mirroring the wire server's per-frame scan.
func fragSpan(frags []trace.Fragment) (minStart, maxEnd int64) {
	minStart, maxEnd = int64(math.MaxInt64), int64(math.MinInt64)
	for i := range frags {
		if frags[i].Start < minStart {
			minStart = frags[i].Start
		}
		if e := frags[i].Start + frags[i].Elapsed; e > maxEnd {
			maxEnd = e
		}
	}
	return minStart, maxEnd
}

// AttachJournal hands the pool a delivery journal. The wire server
// probes Journal() from its sink, so attach before ServeWire; the pool
// takes no ownership (the serving process opened it and closes it).
func (p *Pool) AttachJournal(l *wal.Log) { p.jour = l }

// Journal returns the attached delivery journal, nil when none.
func (p *Pool) Journal() *wal.Log { return p.jour }
