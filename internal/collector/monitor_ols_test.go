package collector

import (
	"math"
	"math/rand"
	"testing"

	"vapro/internal/diagnose"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

func olsClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// feedOLSMonitor streams a deterministic 4-rank run with OS-noise
// counters planted on every fragment (so the §4.2 quantification has
// signal) and a 2x slowdown on rank 2 during [40ms, 70ms) (so windows
// produce events).
func feedOLSMonitor(m *Monitor, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for rank := 0; rank < 4; rank++ {
		t := int64(0)
		var batch []trace.Fragment
		for t < 100_000_000 {
			susp := rng.Int63n(50_000)
			soft := uint64(rng.Intn(30))
			hard := uint64(rng.Intn(5))
			vol := uint64(rng.Intn(20))
			invol := uint64(rng.Intn(8))
			sig := uint64(rng.Intn(3))
			el := int64(1_000_000) + susp + int64(soft)*1_000 + int64(hard)*20_000 +
				int64(vol)*800 + int64(invol)*4_000 + rng.Int63n(10_000)
			if rank == 2 && t >= 40_000_000 && t < 70_000_000 {
				el *= 2
			}
			batch = append(batch, trace.Fragment{
				Rank: rank, Kind: trace.Comp, From: 1, State: 2,
				Start: t, Elapsed: el,
				Counters: trace.CountersView{
					TotIns: 1_000_000, Cycles: 500_000,
					SuspensionNS: susp, SoftPF: soft, HardPF: hard,
					VolCS: vol, InvolCS: invol, Signals: sig,
				},
			})
			t += el
			if len(batch) == 8 {
				m.Consume(rank, batch)
				batch = nil
			}
		}
		m.Consume(rank, batch)
	}
	m.Flush()
}

// eventEdges replicates DiagnoseEvent's edge collection so the test can
// verify the streaming quantifier actually serves the event (rather
// than silently falling back to the batch path).
func eventEdges(m *Monitor, ev *Event) []*stg.Edge {
	m.mu.Lock()
	defer m.mu.Unlock()
	var edges []*stg.Edge
	seen := map[trace.EdgeKey]bool{}
	for _, s := range ev.Regions[0].Samples {
		if !s.ClusterRef.IsEdge || seen[s.ClusterRef.Edge] {
			continue
		}
		seen[s.ClusterRef.Edge] = true
		if e := m.graph.Edge(s.ClusterRef.Edge); e != nil {
			edges = append(edges, e)
		}
	}
	return edges
}

// TestMonitorStreamingOLSEquivalence pins the streaming §4.2 plane to
// the batch one: two monitors fed the identical run — one quantifying
// from warm moments, one with the hatch set — must detect the same
// events, produce the same formula-based diagnosis, and agree on the
// statistical quantification within floating-point reassociation.
// MaxStage 2 keeps the factor set full-rank (the stage-3 leaves are
// exact summands of their parents, where drop order is rounding-
// dependent by nature — see the diagnose equivalence fuzz).
func TestMonitorStreamingOLSEquivalence(t *testing.T) {
	run := func(hatch bool) (*Monitor, []Event, *diagnose.Report) {
		pool := NewPool(4, DefaultOptions())
		opt := monOpts(4)
		opt.MaxStage = 2
		opt.DisableStreamingOLS = hatch
		m := NewMonitor(pool, opt)
		feedOLSMonitor(m, 777)
		events := m.Drain()
		if len(events) == 0 {
			t.Fatal("monitor produced no events")
		}
		dopt := diagnose.DefaultOptions()
		dopt.MaxStage = 2
		rep := m.DiagnoseEvent(&events[0], dopt)
		if rep == nil {
			t.Fatal("no diagnosis")
		}
		return m, events, rep
	}
	ms, evS, repS := run(false)
	mh, evH, repH := run(true)

	// Detection is independent of the quantification plane.
	if len(evS) != len(evH) {
		t.Fatalf("event counts differ: %d streaming vs %d hatch", len(evS), len(evH))
	}
	for i := range evS {
		if evS[i].WindowStart != evH[i].WindowStart || evS[i].WindowEnd != evH[i].WindowEnd ||
			len(evS[i].Regions) != len(evH[i].Regions) {
			t.Fatalf("event %d differs: %+v vs %+v", i, evS[i], evH[i])
		}
	}

	// The streaming monitor must actually have served the event from
	// warm moments, and its counters must show the plane at work.
	if q := ms.streamQuantifier(eventEdges(ms, &evS[0])); q == nil {
		t.Fatal("streaming quantifier unavailable for the diagnosed event")
	}
	if ms.pool.met.OLSRank1Updates.Load() == 0 {
		t.Fatal("streaming monitor performed no rank-1 moment updates")
	}
	if ms.pool.met.OLSRefactors.Load() == 0 {
		t.Fatal("streaming monitor recorded no initial moment builds")
	}
	if mh.pool.met.OLSRank1Updates.Load() != 0 || mh.pool.met.OLSRefactors.Load() != 0 {
		t.Fatal("hatch monitor touched the streaming plane")
	}

	// Formula-based diagnosis is identical; the OLS quantification
	// agrees within reassociation tolerance.
	if repS.AbnormalFrags != repH.AbnormalFrags || repS.NormalFrags != repH.NormalFrags ||
		repS.AnalyzedNS != repH.AnalyzedNS || repS.TotalSlowdownNS != repH.TotalSlowdownNS {
		t.Fatalf("formula diagnosis differs: %+v vs %+v", repS, repH)
	}
	qs, qh := repS.OLS, repH.OLS
	if (qs == nil) != (qh == nil) {
		t.Fatalf("OLS presence differs: %v vs %v", qs, qh)
	}
	if qs == nil {
		t.Fatal("diagnosis produced no OLS quantification")
	}
	if len(qs.Dropped) != len(qh.Dropped) {
		t.Fatalf("dropped sets differ: %v vs %v", qs.Dropped, qh.Dropped)
	}
	for i := range qs.Dropped {
		if qs.Dropped[i] != qh.Dropped[i] {
			t.Fatalf("dropped[%d]: %v vs %v", i, qs.Dropped[i], qh.Dropped[i])
		}
	}
	if !olsClose(qs.FGStat, qh.FGStat, 1e-6) || !olsClose(qs.FGPValue, qh.FGPValue, 1e-6) ||
		!olsClose(qs.R2, qh.R2, 1e-6) {
		t.Fatalf("fit differs: FG (%v,%v) R2 %v vs FG (%v,%v) R2 %v",
			qs.FGStat, qs.FGPValue, qs.R2, qh.FGStat, qh.FGPValue, qh.R2)
	}
	if len(qs.PValue) != len(qh.PValue) || len(qs.TimePerUnit) != len(qh.TimePerUnit) {
		t.Fatalf("factor sets differ: %v vs %v", qs, qh)
	}
	for f, wp := range qh.PValue {
		gp, ok := qs.PValue[f]
		if !ok || !olsClose(gp, wp, 1e-6) {
			t.Fatalf("PValue[%v]: %v (ok=%v) vs %v", f, gp, ok, wp)
		}
	}
	for f, wv := range qh.TimePerUnit {
		gv, ok := qs.TimePerUnit[f]
		if !ok || !olsClose(gv, wv, 1e-6) {
			t.Fatalf("TimePerUnit[%v]: %v (ok=%v) vs %v", f, gv, ok, wv)
		}
	}

	// At least one factor must have been quantified — otherwise the
	// equivalence above is vacuous.
	if len(qs.TimePerUnit) == 0 {
		t.Fatal("no factor quantified; the workload should expose OS-noise signal")
	}
}

// TestMonitorStreamingOLSStaleFallback: an edge that grew after the
// last window analysis has moments at an older generation — the
// streaming plane must refuse to serve it rather than quantify stale
// data.
func TestMonitorStreamingOLSStaleFallback(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	opt := monOpts(4)
	opt.MaxStage = 2
	m := NewMonitor(pool, opt)
	feedOLSMonitor(m, 778)
	events := m.Drain()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	edges := eventEdges(m, &events[0])
	if q := m.streamQuantifier(edges); q == nil {
		t.Fatal("quantifier should be warm after Flush")
	}
	// Grow the edge past the analyzed generation without closing a new
	// window: only rank 0 reports, so no window completes and no
	// analysis refreshes the moments.
	m.Consume(0, []trace.Fragment{{
		Rank: 0, Kind: trace.Comp, From: 1, State: 2,
		Start: 200_000_000, Elapsed: 1_000_000,
		Counters: trace.CountersView{TotIns: 1_000_000},
	}})
	edges = eventEdges(m, &events[0])
	if q := m.streamQuantifier(edges); q != nil {
		t.Fatal("stale moments served: generation check failed")
	}
	// DiagnoseEvent still works via the batch fallback.
	dopt := diagnose.DefaultOptions()
	dopt.MaxStage = 2
	if rep := m.DiagnoseEvent(&events[0], dopt); rep == nil || rep.OLS == nil {
		t.Fatal("batch fallback did not produce a diagnosis")
	}
}
