package collector

import (
	"fmt"
	"net/http"
	"sync"

	"vapro/internal/detect"
	"vapro/internal/interpose"
	"vapro/internal/obs"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Spatial scale-out (DESIGN §12): the plain Pool shards *clients*
// across servers but one analysis plane still holds every rank, so
// spatial scale stops where one plane's memory and tick budget stop.
// The sharded tier splits the rank space itself: a stable hash assigns
// each rank to an owning shard, every shard runs the full incremental
// pipeline (staged intake → delta-append merged view → persistent
// analyzer) over only its resident ranks, and each tier tick merges the
// per-shard window results spatially — an O(ranks × windows) strip
// concatenation plus warm region growing over the merged grid — into
// one global result. Per-shard tick cost tracks resident ranks, not
// population; merge cost tracks the grid, not the fragment volume.

// splitmix64 is the stable rank hash: the finalizer of the SplitMix64
// generator, fixed forever so a rank's owner never depends on build,
// platform, or map iteration order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardOwner maps a rank to its owning shard among shards servers. The
// assignment is a pure function of (rank, shards): every client and
// every server computes the same answer from the shard count alone.
func ShardOwner(rank, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(splitmix64(uint64(rank)) % uint64(shards))
}

// ShardMap is the published rank→server assignment: a version and the
// shard servers' dial addresses, in shard order. It travels in the wire
// hello frame (trace.AppendHello) so clients dial their owning server
// directly; ownership itself is ShardOwner(rank, len(Addrs)).
type ShardMap struct {
	Version uint64
	Addrs   []string
}

// Shards returns the shard count the map describes.
func (m ShardMap) Shards() int { return len(m.Addrs) }

// Owner returns the rank's owning shard under this map.
func (m ShardMap) Owner(rank int) int { return ShardOwner(rank, len(m.Addrs)) }

// ShardedPool is the rank-sharded server tier: one analysis plane
// (a full Pool) per shard — each with its own metrics registry, so a
// shard's endpoint describes that shard truthfully — plus a tier
// registry for the shard-layer counters (misroutes, rebalances, merge
// accounting) and the per-shard status rows. The tier's Handler serves
// the *merge* of every registry (counters sum, gauges max, histograms
// bucket-wise), so one scrape still sees the whole tier. It implements
// interpose.Sink — in-process producers route by owner; wire producers
// get a per-shard sink from WireSink.
type ShardedPool struct {
	opt    Options
	ranks  int
	met    *Metrics
	Armed  *interpose.Armed
	planes []*Pool
	owner  []int // precomputed ShardOwner per rank

	// mmu guards the published shard map (address set + version).
	mmu sync.Mutex
	mp  ShardMap

	// amu serializes tier merges: the Merger's region carry is warm
	// state threaded from tick to tick.
	amu    sync.Mutex
	merger *detect.Merger
}

// NewShardedPool builds shards analysis planes over a global rank space
// of size ranks. Each plane is provisioned for its resident ranks only
// (Servers derives from ClientsPerServer against the resident count),
// shares the tier's metrics registry and arming handle, and analyzes
// the global rank axis so its heat-map strips line up for the merge.
func NewShardedPool(ranks, shards int, opt Options) *ShardedPool {
	if shards < 1 {
		shards = 1
	}
	if opt.Period <= 0 {
		opt.Period = 15 * sim.Second
	}
	if opt.Overlap <= 0 || opt.Overlap >= opt.Period {
		opt.Overlap = opt.Period / 2
	}
	t := &ShardedPool{
		opt:    opt,
		ranks:  ranks,
		met:    NewMetrics(),
		Armed:  interpose.NewArmed(sim.GroupBase | sim.GroupTopdownL1 | sim.GroupOS),
		owner:  make([]int, ranks),
		mp:     ShardMap{Addrs: make([]string, shards)},
		merger: detect.NewMerger(),
	}
	resident := make([]int, shards)
	for r := 0; r < ranks; r++ {
		t.owner[r] = ShardOwner(r, shards)
		resident[t.owner[r]]++
	}
	per := opt.ClientsPerServer
	if per <= 0 {
		per = 256
	}
	for i := 0; i < shards; i++ {
		popt := opt
		popt.Servers = (resident[i] + per - 1) / per
		if popt.Servers < 1 {
			popt.Servers = 1
		}
		// Each plane owns a full registry (derived Funcs included): the
		// per-shard endpoints serve it directly, and the tier view is the
		// merge. vapro_ranks merges by max and the per-plane storage rate
		// divides by the global rank count, so the merged values read
		// exactly like the single-plane ones.
		plane := newPoolWith(ranks, popt, nil, true)
		plane.Armed = t.Armed
		t.planes = append(t.planes, plane)
	}
	t.registerTierDerived(resident)
	return t
}

// Shards returns the shard count.
func (t *ShardedPool) Shards() int { return len(t.planes) }

// Ranks returns the global rank-space size.
func (t *ShardedPool) Ranks() int { return t.ranks }

// Owner returns the rank's owning shard (ranks outside the provisioned
// space still hash consistently).
func (t *ShardedPool) Owner(rank int) int {
	if rank >= 0 && rank < len(t.owner) {
		return t.owner[rank]
	}
	return ShardOwner(rank, len(t.planes))
}

// Plane exposes one shard's analysis plane (tests and the status
// surface read per-shard state through it).
func (t *ShardedPool) Plane(shard int) *Pool { return t.planes[shard] }

// ShardMap returns a copy of the published map.
func (t *ShardedPool) ShardMap() ShardMap {
	t.mmu.Lock()
	defer t.mmu.Unlock()
	return ShardMap{Version: t.mp.Version, Addrs: append([]string(nil), t.mp.Addrs...)}
}

// Rebalance publishes a new address set (same shard count — ownership
// is positional) and bumps the map version; subsequent hellos carry it,
// so reconnecting clients re-attach to the restarted server. A
// different address count is rejected: changing the shard count moves
// resident data between planes, which this tier does not do live.
func (t *ShardedPool) Rebalance(addrs []string) error {
	if len(addrs) != len(t.planes) {
		return fmt.Errorf("rebalance: %d addrs for %d shards", len(addrs), len(t.planes))
	}
	t.mmu.Lock()
	defer t.mmu.Unlock()
	t.mp.Addrs = append([]string(nil), addrs...)
	t.mp.Version++
	t.met.ShardmapRebalances.Inc()
	return nil
}

// Consume implements interpose.Sink: route to the rank's owning plane.
func (t *ShardedPool) Consume(rank int, frags []trace.Fragment) {
	t.planes[t.Owner(rank)].Consume(rank, frags)
}

// ConsumeSized mirrors Consume for pre-measured wire batches.
func (t *ShardedPool) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	t.planes[t.Owner(rank)].ConsumeSized(rank, frags, bytes)
}

// ConsumeTraced mirrors ConsumeSized for sampled traced batches.
func (t *ShardedPool) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	t.planes[t.Owner(rank)].ConsumeTraced(rank, frags, bytes, tc)
}

// Close stops every plane's background mergers.
func (t *ShardedPool) Close() {
	for _, p := range t.planes {
		p.Close()
	}
}

// Metrics returns the tier-layer observability surface: the shard
// counters (misroutes, rebalances, merge accounting) and the client-
// side Net* mirrors. Per-plane ingestion counters live on each plane's
// own registry; MergedSnapshot folds everything together.
func (t *ShardedPool) Metrics() *Metrics { return t.met }

// MergedSnapshot folds the tier registry and every plane's registry
// into one snapshot: counters and summing Funcs add, gauges take the
// max, histograms merge bucket-wise with exact quantile semantics.
func (t *ShardedPool) MergedSnapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, 0, len(t.planes)+1)
	snaps = append(snaps, t.met.Registry.Snapshot())
	for _, p := range t.planes {
		snaps = append(snaps, p.met.Registry.Snapshot())
	}
	return obs.MergeSnapshots(snaps)
}

// MergedTrace folds every plane's exemplar journeys into one snapshot,
// slowest first.
func (t *ShardedPool) MergedTrace() obs.TraceSnapshot {
	snaps := make([]obs.TraceSnapshot, 0, len(t.planes))
	for _, p := range t.planes {
		snaps = append(snaps, p.met.Trace.Snapshot())
	}
	return obs.MergeTraceSnapshots(snaps)
}

// Handler serves the tier's merged registry view plus /trace (merged
// exemplar journeys).
func (t *ShardedPool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.SnapshotHandler(t.MergedSnapshot))
	mux.Handle("/trace", obs.TraceHandler(t.MergedTrace))
	return mux
}

// SeqStateFor returns one shard's sequence tracker (per-shard loss
// accounting; the tier has no global tracker because sequence spaces
// are per client connection, which is per shard).
func (t *ShardedPool) SeqStateFor(shard int) *SeqTracker { return t.planes[shard].seq }

// outageUnion collects every shard's loss intervals. Passing the union
// to every plane keeps a rank's staleness in its owner's strip even if
// the batch that exposed the loss was misrouted to another shard.
func (t *ShardedPool) outageUnion() []detect.Outage {
	var out []detect.Outage
	for _, p := range t.planes {
		out = append(out, p.seq.Outages()...)
	}
	return out
}

// RunWindow is the tier's steady-state tick: fan the window out to
// every plane's incremental pipeline concurrently, then spatially merge
// the per-shard results into one global result.
func (t *ShardedPool) RunWindow(start, end int64) *detect.Result {
	res, _ := t.RunWindowStats(start, end)
	return res
}

// RunWindowStats is RunWindow plus the merge accounting.
func (t *ShardedPool) RunWindowStats(start, end int64) (*detect.Result, detect.MergeStats) {
	outages := t.outageUnion()
	parts := make([]*detect.Result, len(t.planes))
	var wg sync.WaitGroup
	for i, p := range t.planes {
		wg.Add(1)
		go func(i int, p *Pool) {
			defer wg.Done()
			parts[i] = p.runWindowWith(start, end, outages)
		}(i, p)
	}
	wg.Wait()
	t.amu.Lock()
	defer t.amu.Unlock()
	res, stats := t.merger.Merge(parts, t.ranks, t.Owner, t.opt.Detect)
	t.met.ShardStripsMerged.Add(uint64(stats.Strips))
	t.met.ShardRegionsStitched.Add(uint64(stats.Stitched))
	return res, stats
}

// WindowResults mirrors Pool.WindowResults over the tier: the global
// window grid spans every plane's data, each window is analyzed
// per shard and spatially merged.
func (t *ShardedPool) WindowResults() []*WindowResult {
	maxEnd := int64(0)
	any := false
	for _, p := range t.planes {
		if _, e, ok := p.viewBounds(); ok && e > maxEnd {
			maxEnd = e
			any = true
		}
	}
	if !any || maxEnd <= 0 {
		return nil
	}
	stride := int64(t.opt.Period - t.opt.Overlap)
	if stride <= 0 {
		stride = int64(t.opt.Period)
	}
	var out []*WindowResult
	for start := int64(0); start < maxEnd; start += stride {
		end := start + int64(t.opt.Period)
		covered := false
		for _, p := range t.planes {
			if p.viewOverlaps(start, end) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		res, _ := t.RunWindowStats(start, end)
		out = append(out, &WindowResult{Start: sim.Time(start), End: sim.Time(end), Result: res})
	}
	return out
}

// Graph merges every plane's servers into one fresh global STG (final
// whole-run analysis and reports; the caller owns the result).
func (t *ShardedPool) Graph() *stg.Graph {
	g := stg.New()
	for _, p := range t.planes {
		g.Merge(p.Graph())
	}
	return g
}

// FragmentCount sums resident fragments across planes.
func (t *ShardedPool) FragmentCount() int {
	n := 0
	for _, p := range t.planes {
		n += p.FragmentCount()
	}
	return n
}

// Stats aggregates transport statistics across planes.
func (t *ShardedPool) Stats(makespan sim.Duration) Stats {
	var st Stats
	for _, p := range t.planes {
		ps := p.Stats(makespan)
		st.Servers += ps.Servers
		st.Fragments += ps.Fragments
		st.BytesIn += ps.BytesIn
		st.Batches += ps.Batches
		st.SeqGaps += ps.SeqGaps
		st.DupFrames += ps.DupFrames
		st.Outages += ps.Outages
		st.IntakeStalls += ps.IntakeStalls
		st.FramesRejected += ps.FramesRejected
		if ps.MaxStagedDepth > st.MaxStagedDepth {
			st.MaxStagedDepth = ps.MaxStagedDepth
		}
	}
	if sec := makespan.Seconds(); sec > 0 && t.ranks > 0 {
		st.BytesPerRankSecond = float64(st.BytesIn) / sec / float64(t.ranks)
	}
	return st
}

// registerTierDerived publishes the tier-layer Func metrics on the tier
// registry: the shard count, the global rank space, and one row per
// shard for the status surface. The pool-shaped sums (servers, staged
// depth, storage rate, cluster-cache counters) are no longer duplicated
// here — every plane registers its own and MergedSnapshot folds them.
func (t *ShardedPool) registerTierDerived(resident []int) {
	reg := t.met.Registry
	reg.Func("vapro_shards", "shard",
		"analysis planes in the sharded tier", func() float64 {
			return float64(len(t.planes))
		})
	reg.Func("vapro_ranks", "intake",
		"client ranks the tier was provisioned for", func() float64 {
			return float64(t.ranks)
		})
	for i := range t.planes {
		i := i
		reg.Func(fmt.Sprintf("vapro_shard%d_resident_ranks", i), "shard",
			fmt.Sprintf("ranks owned by shard %d", i), func() float64 {
				return float64(resident[i])
			})
		reg.Func(fmt.Sprintf("vapro_shard%d_intake_staged", i), "shard",
			fmt.Sprintf("batches currently staged on shard %d", i), func() float64 {
				return float64(t.planes[i].stagedNow())
			})
		reg.Func(fmt.Sprintf("vapro_shard%d_seq_gaps", i), "shard",
			fmt.Sprintf("batches inferred lost on shard %d", i), func() float64 {
				return float64(t.planes[i].seq.GapFrames())
			})
	}
}

// WireSink returns the sink one shard's wire server feeds: batches land
// in that shard's plane, sequence gaps book against that shard's
// tracker, and the hello carries the current shard map so clients can
// verify (or discover) their owner.
func (t *ShardedPool) WireSink(shard int) *ShardSink {
	return &ShardSink{tier: t, shard: shard}
}

// ShardSink adapts one shard of a ShardedPool to the wire server's sink
// interfaces (sized consumption, sequence state, metrics, hello).
type ShardSink struct {
	tier  *ShardedPool
	shard int
}

// Consume implements interpose.Sink. A batch whose rank the shard does
// not own is still delivered — its rows won't enter the merged view
// (the merger copies owner rows only) but its loss accounting and
// bytes must not vanish — and counted as a misroute.
func (k *ShardSink) Consume(rank int, frags []trace.Fragment) {
	k.note(rank)
	k.tier.planes[k.shard].Consume(rank, frags)
}

// ConsumeSized mirrors Consume for pre-measured wire batches.
func (k *ShardSink) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	k.note(rank)
	k.tier.planes[k.shard].ConsumeSized(rank, frags, bytes)
}

// ConsumeTraced mirrors ConsumeSized for sampled traced batches:
// delivery lands in this shard's plane, so its exemplar ring holds the
// journey end to end.
func (k *ShardSink) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	k.note(rank)
	k.tier.planes[k.shard].ConsumeTraced(rank, frags, bytes, tc)
}

func (k *ShardSink) note(rank int) {
	if k.tier.Owner(rank) != k.shard {
		k.tier.met.ShardMisroutes.Inc()
	}
}

// Metrics exposes this shard's plane surface to the wire server, so a
// shard's own endpoint (and its wire/trace counters) describe exactly
// the traffic that shard served. Tier-layer counters (misroutes,
// rebalances) stay on the tier registry.
func (k *ShardSink) Metrics() *Metrics { return k.tier.planes[k.shard].met }

// SeqState returns this shard's tracker: gap accounting is per shard,
// and survives the shard's wire-server restarts because the tracker
// lives on the plane.
func (k *ShardSink) SeqState() *SeqTracker { return k.tier.planes[k.shard].seq }

// Journal returns this shard's delivery journal (attached per plane —
// each shard journals its own delivered stream into its own directory,
// so shard restarts replay independently).
func (k *ShardSink) Journal() *wal.Log { return k.tier.planes[k.shard].Journal() }

// Hello returns the current shard map for the wire handshake.
func (k *ShardSink) Hello() (version uint64, addrs []string, ok bool) {
	m := k.tier.ShardMap()
	return m.Version, m.Addrs, true
}
