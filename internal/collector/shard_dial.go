package collector

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"vapro/internal/trace"
)

// helloReadTimeout bounds how long a dialing client waits for the
// server's hello frame before treating the connection as legacy/dead.
const helloReadTimeout = 2 * time.Second

// maxShardRedirects bounds how many owner hops one dial may follow; a
// flapping map must surface as a dial error (and back off), not spin.
const maxShardRedirects = 4

// maxHelloFrame bounds the hello payload a client will buffer.
const maxHelloFrame = 1 << 20

// ShardDialer returns a Dialer for rank against a sharded server tier:
// dial any bootstrap address, read the hello's shard map, and — when
// the dialed server does not own the rank — redial the owner directly.
// The verified owner address is cached, so steady-state reconnects go
// straight to the owner; the map from every hello refreshes the cache,
// which is how a restarted shard's new address propagates (the client
// reconnects anywhere, learns the rebalanced map, and re-attaches).
func ShardDialer(rank int, bootstrap []string, met *Metrics) Dialer {
	return ShardDialerWith(rank, bootstrap, met, func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	})
}

// ShardDialerWith is ShardDialer with the raw per-address dial
// injectable (tests gate or fail it deterministically).
func ShardDialerWith(rank int, bootstrap []string, met *Metrics, dial func(addr string) (net.Conn, error)) Dialer {
	d := &shardDialer{
		rank:      rank,
		bootstrap: append([]string(nil), bootstrap...),
		met:       met,
		dialAddr:  dial,
	}
	return d.dial
}

type shardDialer struct {
	rank      int
	bootstrap []string
	met       *Metrics
	dialAddr  func(addr string) (net.Conn, error)

	mu    sync.Mutex
	owner string   // last verified owning address
	addrs []string // last shard map seen in a hello
}

// candidates returns the dial order: verified owner first, then the
// last map's addresses, then the bootstrap list, deduplicated.
func (d *shardDialer) candidates() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, 1+len(d.addrs)+len(d.bootstrap))
	seen := make(map[string]bool)
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	add(d.owner)
	for _, a := range d.addrs {
		add(a)
	}
	for _, a := range d.bootstrap {
		add(a)
	}
	return out
}

func (d *shardDialer) dial() (net.Conn, error) {
	var lastErr error
	for _, addr := range d.candidates() {
		conn, err := d.dialAddr(addr)
		if err != nil {
			lastErr = err
			continue
		}
		conn, err = d.verify(conn, addr)
		if err != nil {
			lastErr = err
			continue
		}
		return conn, nil
	}
	if lastErr == nil {
		lastErr = errors.New("collector: shard dialer has no reachable addresses")
	}
	return nil, lastErr
}

// verify reads the hello on a fresh connection and follows owner
// redirects until the connection lands on the rank's owning shard.
func (d *shardDialer) verify(conn net.Conn, addr string) (net.Conn, error) {
	for hop := 0; ; hop++ {
		_, addrs, err := readHello(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		d.mu.Lock()
		d.addrs = append(d.addrs[:0], addrs...)
		d.mu.Unlock()
		if len(addrs) == 0 {
			conn.Close()
			return nil, errors.New("collector: hello carried an empty shard map")
		}
		ownerAddr := addrs[ShardOwner(d.rank, len(addrs))]
		if ownerAddr == "" || ownerAddr == addr {
			// Empty owner slot = the tier has not published that
			// shard's address yet; stay on this connection (the shard
			// sink delivers misrouted batches rather than losing them)
			// and re-verify on the next reconnect.
			d.mu.Lock()
			if ownerAddr == addr {
				d.owner = addr
			}
			d.mu.Unlock()
			return conn, nil
		}
		conn.Close()
		if hop >= maxShardRedirects {
			return nil, fmt.Errorf("collector: shard ownership did not settle after %d redirects", hop)
		}
		if d.met != nil {
			d.met.ShardRedirects.Inc()
		}
		next, err := d.dialAddr(ownerAddr)
		if err != nil {
			return nil, err
		}
		conn, addr = next, ownerAddr
	}
}

// readHello reads the single length-prefixed hello frame a shard
// server writes at the top of every connection. It reads exactly the
// frame (byte-by-byte uvarint, then the payload) — the client never
// reads again, so no byte beyond the hello may be consumed.
func readHello(conn net.Conn) (version uint64, addrs []string, err error) {
	_ = conn.SetReadDeadline(time.Now().Add(helloReadTimeout))
	defer conn.SetReadDeadline(time.Time{})
	size, err := readUvarintConn(conn)
	if err != nil {
		return 0, nil, err
	}
	if size > maxHelloFrame {
		return 0, nil, fmt.Errorf("collector: hello frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return 0, nil, err
	}
	return trace.DecodeHello(buf)
}

// readUvarintConn decodes a uvarint one byte at a time straight off the
// connection (no buffering that could swallow later frames).
func readUvarintConn(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < 10; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		if b[0] < 0x80 {
			if i == 9 && b[0] > 1 {
				return 0, errors.New("collector: uvarint overflows 64 bits")
			}
			return x | uint64(b[0])<<s, nil
		}
		x |= uint64(b[0]&0x7f) << s
		s += 7
	}
	return 0, errors.New("collector: uvarint too long")
}
