package collector

import (
	"math"
	"sync"
	"time"

	"vapro/internal/detect"
)

// SeqTracker is the server-side half of the loss accounting: it follows
// each rank's batch sequence numbers (stamped by ResilientClient,
// wire format v2) and turns anomalies into exact bookkeeping —
//
//   - a jump past the expected sequence is a gap: that many batches died
//     with a connection or were evicted from the client's spill queue;
//     the uncovered virtual-time interval is recorded as an Outage so
//     the analysis can mark the rank stale instead of misreading its
//     silence as speed,
//   - a sequence below the expected one is a duplicate (a retransmit
//     whose original did arrive, e.g. after a write deadline fired on a
//     slow but live collector) and must not be delivered twice,
//   - sequence zero from a rank already tracked is a client restart: the
//     rank's numbering begins again and no gap is charged.
//
// The tracker lives on the sink (Pool), not the WireServer, so its
// state survives server restarts — exactly the window where gaps occur.
type SeqTracker struct {
	mu    sync.Mutex
	ranks map[int]*rankSeq

	gapFrames uint64
	dups      uint64
	restarts  uint64
	outages   []detect.Outage
}

// rankSeq is one rank's tracking state.
type rankSeq struct {
	next     uint64 // next expected sequence number
	high     int64  // virtual-time high-water mark of delivered fragments
	lastSeen time.Time
}

// NewSeqTracker returns an empty tracker.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{ranks: make(map[int]*rankSeq)}
}

// Observe records one sequenced batch from rank. minStart/maxEnd bound
// the batch's fragments in virtual time (pass math.MaxInt64/MinInt64
// for an empty batch). It reports whether the batch should be delivered
// (false for duplicates) and how many batches were lost immediately
// before it.
func (t *SeqTracker) Observe(rank int, seq uint64, minStart, maxEnd int64) (deliver bool, gap uint64) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.ranks[rank]
	if rs == nil {
		rs = &rankSeq{}
		t.ranks[rank] = rs
	}
	rs.lastSeen = now
	switch {
	case seq < rs.next && seq == 0:
		// Client restart: numbering begins again; prior frames were
		// already accounted, so no gap.
		t.restarts++
		rs.next = 1
	case seq < rs.next:
		t.dups++
		return false, 0
	default:
		if gap = seq - rs.next; gap > 0 {
			t.gapFrames += gap
			end := minStart
			if minStart == math.MaxInt64 {
				end = rs.high // empty batch: zero-length interval at the high-water mark
			}
			t.outages = append(t.outages, detect.Outage{Rank: rank, Start: rs.high, End: end})
		}
		rs.next = seq + 1
	}
	if maxEnd != math.MinInt64 && maxEnd > rs.high {
		rs.high = maxEnd
	}
	return true, gap
}

// GapFrames returns the total batches inferred lost from sequence gaps.
func (t *SeqTracker) GapFrames() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gapFrames
}

// Dups returns how many duplicate batches were suppressed.
func (t *SeqTracker) Dups() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dups
}

// Restarts returns how many client-generation restarts were observed.
func (t *SeqTracker) Restarts() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.restarts
}

// Outages returns a copy of the recorded per-rank loss intervals in
// virtual time, the staleness input for gap-aware analysis.
func (t *SeqTracker) Outages() []detect.Outage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]detect.Outage, len(t.outages))
	copy(out, t.outages)
	return out
}

// LastSeen returns when rank's latest sequenced batch arrived (zero
// time if the rank was never seen).
func (t *SeqTracker) LastSeen(rank int) time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rs := t.ranks[rank]; rs != nil {
		return rs.lastSeen
	}
	return time.Time{}
}

// seqStater is implemented by sinks (Pool, Monitor, RecordingSink
// wrapping either) that own a sequence tracker; the wire server feeds
// it so gap state survives server restarts.
type seqStater interface {
	SeqState() *SeqTracker
}
