package collector

import (
	"vapro/internal/cluster"
	"vapro/internal/diagnose"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Streaming §4.2 quantification: the monitor keeps each edge cluster's
// regression moments (diagnose.ClusterMoments) warm as the cluster
// population grows, driven by the detect analyzer's cluster-delta hook.
// When DiagnoseEvent later needs the OLS quantification, the moments
// are already pooled — no walk over the resident fragment populations —
// so the diagnosis cost of a steady-state tick stops scaling with how
// much data is resident. The moment-form quantification is pinned
// against the batch QuantifyOLS by the equivalence fuzz in
// internal/diagnose.

// elemMoments is one edge's warm regression state: a moment accumulator
// per cluster of the edge's last-seen clustering, parallel to
// Result.Clusters.
type elemMoments struct {
	gen     stg.Gen
	streams []*diagnose.ClusterMoments
	fixed   []bool
}

// olsFactorsFor returns the factor set the monitor accumulates moments
// for: the OS factors reachable within maxStage, matching what the
// progressive controller will feed the quantifier.
func olsFactorsFor(maxStage int) []diagnose.Factor {
	var out []diagnose.Factor
	for _, f := range diagnose.OSFactors() {
		if f.Stage() <= maxStage {
			out = append(out, f)
		}
	}
	return out
}

func sameFactors(a, b []diagnose.Factor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildClusterMoments(factors []diagnose.Factor, frags []trace.Fragment, members []int) *diagnose.ClusterMoments {
	cm := diagnose.NewClusterMoments(factors)
	for _, idx := range members {
		cm.Add(&frags[idx])
	}
	return cm
}

// observeClustering is the analyzer hook: fired for every element
// clustering a window analysis consults, concurrently from the pass's
// workers. It advances the edge's warm moments by the clustering Delta
// — rank-1 Adds for appended members of grown clusters, carried
// pointers for untouched clusters — and rebuilds from scratch when the
// delta does not connect to the recorded generation.
func (m *Monitor) observeClustering(key cluster.Key, gen stg.Gen, frags []trace.Fragment, res cluster.Result, d cluster.Delta) {
	if !key.IsEdge || m.opt.DisableStreamingOLS {
		return
	}
	m.olsMu.Lock()
	defer m.olsMu.Unlock()
	em := m.olsStreams[key]
	if em != nil && em.gen == gen {
		return // unchanged element (or a repeat consult of this generation)
	}
	if em == nil {
		em = &elemMoments{}
		m.olsStreams[key] = em
	}
	if !d.Full && em.gen == d.From && len(em.streams) > 0 {
		if m.advanceMoments(em, frags, res, d) {
			em.gen = gen
			return
		}
	}
	// No usable relationship to the recorded state: rebuild every
	// cluster's moments from its membership.
	em.streams = make([]*diagnose.ClusterMoments, len(res.Clusters))
	em.fixed = make([]bool, len(res.Clusters))
	for i := range res.Clusters {
		em.streams[i] = buildClusterMoments(m.olsFactors, frags, res.Clusters[i].Members)
		em.fixed[i] = res.Clusters[i].Fixed
	}
	em.gen = gen
	m.pool.met.OLSRefactors.Add(uint64(len(res.Clusters)))
}

// advanceMoments patches em's streams by the delta. Returns false if an
// index falls outside the recorded state (the caller then rebuilds).
func (m *Monitor) advanceMoments(em *elemMoments, frags []trace.Fragment, res cluster.Result, d cluster.Delta) bool {
	old := em.streams
	if d.Prefix > len(old) || d.TailOld > len(old) {
		return false
	}
	streams := make([]*diagnose.ClusterMoments, len(res.Clusters))
	fixed := make([]bool, len(res.Clusters))
	var adds, rebuilt uint64
	for i := range res.Clusters {
		switch {
		case i < d.Prefix:
			streams[i] = old[i]
		case i >= d.TailNew:
			oi := i - d.TailNew + d.TailOld
			if oi < 0 || oi >= len(old) {
				return false
			}
			streams[i] = old[oi]
		default:
			if i-d.Prefix >= len(d.Dirty) {
				return false
			}
			dr := d.Dirty[i-d.Prefix]
			members := res.Clusters[i].Members
			if dr.OldIndex >= 0 && dr.OldIndex < len(old) {
				cm := old[dr.OldIndex]
				for _, pos := range dr.AddedPos {
					if int(pos) >= len(members) {
						return false
					}
					cm.Add(&frags[members[pos]])
				}
				adds += uint64(len(dr.AddedPos))
				streams[i] = cm
			} else {
				streams[i] = buildClusterMoments(m.olsFactors, frags, members)
				rebuilt++
			}
		}
		fixed[i] = res.Clusters[i].Fixed
	}
	em.streams, em.fixed = streams, fixed
	if adds > 0 {
		m.pool.met.OLSRank1Updates.Add(adds)
	}
	if rebuilt > 0 {
		m.pool.met.OLSRefactors.Add(rebuilt)
	}
	return true
}

// streamQuantifier returns a diagnose quantifier backed by the warm
// moments of the given edges, or nil when the streaming plane cannot
// serve this diagnosis (hatch on, a stream missing or at a stale
// generation) — the caller then leaves the default batch QuantifyOLS in
// place. Caller holds m.mu; edges must come from the monitor's graph so
// their Gen fields describe the populations the diagnosis will walk.
func (m *Monitor) streamQuantifier(edges []*stg.Edge) func([][]trace.Fragment, []diagnose.Factor) *diagnose.OLSQuant {
	if m.opt.DisableStreamingOLS {
		return nil
	}
	var streams []*diagnose.ClusterMoments
	m.olsMu.Lock()
	for _, e := range edges {
		em := m.olsStreams[cluster.EdgeKey(e.Key)]
		if em == nil || em.gen != e.Gen {
			m.olsMu.Unlock()
			return nil
		}
		for ci, cm := range em.streams {
			if em.fixed[ci] {
				streams = append(streams, cm)
			}
		}
	}
	m.olsMu.Unlock()
	want := m.olsFactors
	return func(clusters [][]trace.Fragment, kept []diagnose.Factor) *diagnose.OLSQuant {
		if !sameFactors(kept, want) {
			// The diagnosis runs at a different stage depth than the
			// moments were accumulated for: fall back to the batch fit.
			return diagnose.QuantifyOLS(clusters, kept)
		}
		return diagnose.QuantifyMoments(streams, kept)
	}
}
