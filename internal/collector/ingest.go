package collector

import (
	"sort"
	"sync"
	"sync/atomic"

	"vapro/internal/obs"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// IntakeOptions tunes the server intake path. The old path serialized
// every client of a server behind one mutex for the whole graph append;
// intake now stages batches in striped shards (a short critical section
// per stripe) and merges them into the graph in arrival order either
// opportunistically on the consume path or on a background merger.
type IntakeOptions struct {
	// Shards stripes each server's staging area so concurrent Consume
	// calls from different clients contend only within a stripe. 0
	// means 8; 1 is the sequential reference mode (a single stripe,
	// still staged, bit-identical results).
	Shards int
	// Background moves graph merging to a dedicated goroutine per
	// server, taking it off the client consume path entirely. Pools
	// with background intake should be Closed to stop the mergers
	// (every read path still drains on demand, so results never depend
	// on merger timing).
	Background bool
	// MaxStaged bounds the per-server staged-batch backlog; a consumer
	// that finds the backlog at the bound performs a synchronous drain
	// (backpressure instead of unbounded buffering). 0 means 256.
	MaxStaged int
}

func (o IntakeOptions) normalized() IntakeOptions {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.MaxStaged <= 0 {
		o.MaxStaged = 256
	}
	return o
}

// stagedBatch is one client batch waiting to be merged. seq is the
// arrival stamp: drains apply batches in seq order, so a sequential
// feeder produces exactly the graph the old directly-locked path built.
type stagedBatch struct {
	seq    uint64
	bytes  int
	frags  []trace.Fragment
	tc     TraceCtx // provenance of a sampled traced batch
	traced bool
}

type intakeShard struct {
	mu      sync.Mutex
	batches []stagedBatch
	// Pad to a full 64 bytes (8-byte mutex + 24-byte slice header + 32)
	// so neighbouring stripe locks never share a cache line.
	_ [32]byte
}

// Server is one analysis server process.
type Server struct {
	id  int
	opt Options
	met *Metrics

	seq    atomic.Uint64
	staged atomic.Int64
	shards []intakeShard

	notify    chan struct{}
	done      chan struct{}
	mergerWG  sync.WaitGroup
	closeOnce sync.Once

	mu    sync.Mutex
	graph *stg.Graph
	// bytesIn tracks the transport volume for the storage-overhead
	// accounting of §6.2, measured over the encoded wire format.
	bytesIn int64
	batches int
}

func newServer(id int, opt Options, met *Metrics) *Server {
	opt.Intake = opt.Intake.normalized()
	if met == nil {
		met = NewMetrics() // standalone servers still count into something
	}
	s := &Server{
		id:     id,
		opt:    opt,
		met:    met,
		shards: make([]intakeShard, opt.Intake.Shards),
		graph:  stg.New(),
	}
	if opt.Intake.Background {
		s.notify = make(chan struct{}, 1)
		s.done = make(chan struct{})
		s.mergerWG.Add(1)
		go s.mergerLoop()
	}
	return s
}

// consume stages one batch. The encoded size is measured here (outside
// every lock) so Stats reports real wire bytes.
func (s *Server) consume(rank int, frags []trace.Fragment) {
	s.consumeSized(rank, frags, trace.BatchWireSize(rank, frags))
}

// consumeSized stages a batch whose encoded size is already known (the
// wire server measured the payload it decoded).
func (s *Server) consumeSized(rank int, frags []trace.Fragment, bytes int) {
	s.stage(rank, frags, bytes, TraceCtx{}, false)
}

// stage is the shared staging path; traced batches carry their
// provenance context into the staged entry so the drain can stamp the
// remaining journey hops.
func (s *Server) stage(rank int, frags []trace.Fragment, bytes int, tc TraceCtx, traced bool) {
	cp := make([]trace.Fragment, len(frags))
	copy(cp, frags)
	sh := &s.shards[uint(rank)%uint(len(s.shards))]
	sh.mu.Lock()
	sh.batches = append(sh.batches, stagedBatch{seq: s.seq.Add(1), bytes: bytes, frags: cp, tc: tc, traced: traced})
	sh.mu.Unlock()
	if traced {
		s.met.Trace.Record(tc.Key(), tc.Rank, tc.FlushNS, obs.HopStage)
	}
	n := s.staged.Add(1)
	s.met.IntakeBatches.Inc()
	s.met.IntakeFragments.Add(uint64(len(cp)))
	s.met.IntakeBytes.Add(uint64(bytes))
	s.met.IntakeStagedPeak.SetMax(n)

	if s.notify != nil {
		select {
		case s.notify <- struct{}{}:
		default:
		}
		if int(n) >= s.opt.Intake.MaxStaged {
			s.met.IntakeStalls.Inc()
			s.met.IntakeSyncDrains.Inc()
			s.drain() // backpressure: the merger fell behind
		}
		return
	}
	if int(n) >= s.opt.Intake.MaxStaged {
		s.met.IntakeStalls.Inc()
		s.drain()
		return
	}
	// Opportunistic merge: whoever gets the graph lock without waiting
	// merges everyone's staged batches; contenders just stage and leave.
	if s.mu.TryLock() {
		s.drainLocked()
		s.mu.Unlock()
	}
}

func (s *Server) drain() {
	s.mu.Lock()
	s.drainLocked()
	s.mu.Unlock()
}

// drainLocked merges every staged batch into the graph in arrival
// order. Caller holds s.mu.
func (s *Server) drainLocked() {
	var all []stagedBatch
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.batches) > 0 {
			all = append(all, sh.batches...)
			sh.batches = sh.batches[:0]
		}
		sh.mu.Unlock()
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for i := range all {
		s.graph.AddBatch(all[i].frags)
		s.bytesIn += int64(all[i].bytes)
		s.batches++
		if all[i].traced {
			tc := all[i].tc
			s.met.Trace.MarkDrained(tc.Key(), tc.Rank, tc.FlushNS)
		}
	}
	s.staged.Add(int64(-len(all)))
	s.met.IntakeDrains.Inc()
	s.met.DrainBatches.Observe(int64(len(all)))
}

func (s *Server) mergerLoop() {
	defer s.mergerWG.Done()
	for {
		select {
		case <-s.notify:
			s.drain()
		case <-s.done:
			s.drain()
			return
		}
	}
}

// close stops the background merger (if any) and drains what it left.
func (s *Server) close() {
	s.closeOnce.Do(func() {
		if s.done != nil {
			close(s.done)
			s.mergerWG.Wait()
		}
		s.drain()
	})
}
