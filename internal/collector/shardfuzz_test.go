package collector

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/trace"
)

// Sharded-vs-unsharded equivalence fuzz (the tentpole's bit-identity
// property): for every scripted delivery schedule and shard count, the
// tier's merged analysis must be bit-identical to unsharded references
// over the same delivered fragments —
//
//  1. every merged heat-map row equals the row a plain Pool computes
//     when fed exactly the rank's owning shard's deliveries (the
//     restricted reference), including staleness from sequence gaps;
//  2. the stitched region set equals the exported batch grower run
//     over the merged grid and samples;
//  3. at shard count 1 the entire Result (maps, samples, regions,
//     coverage) deep-equals a plain Pool.RunWindow.
//
// 25 seeds × shard counts {1,2,4,8} = 100 scripted schedules, each
// with two overlapped windows so the warm merge carry is exercised.

type fuzzBatch struct {
	rank    int
	seq     uint64
	frags   []trace.Fragment
	deliver bool
}

// fuzzSchedule builds one scripted run: per-rank batch streams with
// skipped sequence numbers (transit loss → gaps), interleaved across
// ranks by the seeded RNG. Fragment starts are globally unique so
// every downstream sort order is total and the comparison is exact.
func fuzzSchedule(rng *rand.Rand, ranks int) []fuzzBatch {
	var perRank [][]fuzzBatch
	for r := 0; r < ranks; r++ {
		t := int64(r)
		var seq uint64
		var stream []fuzzBatch
		nBatches := 8 + rng.Intn(8)
		for b := 0; b < nBatches; b++ {
			n := 1 + rng.Intn(3)
			frags := make([]trace.Fragment, 0, n)
			for i := 0; i < n; i++ {
				el := int64(1+rng.Intn(4)) * 1000
				kind, from, state := trace.Comp, uint64(1), uint64(2)
				if rng.Intn(8) == 0 {
					kind, from, state = trace.IO, 2, 3
				}
				// Middle-third slowdown on a third of the ranks gives
				// the region grower something to find and stitch.
				if r%3 == 0 && t > 20_000 && t < 60_000 {
					el *= 2
				}
				frags = append(frags, trace.Fragment{
					Rank: r, Kind: kind, From: from, State: state,
					Start: t, Elapsed: el,
					Counters: trace.CountersView{TotIns: 1_000_000, Cycles: 500_000},
				})
				t += el
			}
			stream = append(stream, fuzzBatch{
				rank:    r,
				seq:     seq,
				frags:   frags,
				deliver: rng.Float64() >= 0.15,
			})
			seq++
		}
		perRank = append(perRank, stream)
	}
	// Interleave the per-rank streams in a random but seq-preserving
	// order (the wire delivers each rank's frames in order).
	var out []fuzzBatch
	heads := make([]int, ranks)
	remaining := 0
	for _, s := range perRank {
		remaining += len(s)
	}
	for remaining > 0 {
		r := rng.Intn(ranks)
		if heads[r] >= len(perRank[r]) {
			continue
		}
		out = append(out, perRank[r][heads[r]])
		heads[r]++
		remaining--
	}
	return out
}

// deliverTo mimics the wire server's sequence-then-consume path into
// any sink with a tracker.
func deliverTo(tr *SeqTracker, sink interface {
	ConsumeSized(rank int, frags []trace.Fragment, bytes int)
}, b fuzzBatch) {
	if !b.deliver {
		return
	}
	minStart, maxEnd := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range b.frags {
		if b.frags[i].Start < minStart {
			minStart = b.frags[i].Start
		}
		if e := b.frags[i].Start + b.frags[i].Elapsed; e > maxEnd {
			maxEnd = e
		}
	}
	deliver, _ := tr.Observe(b.rank, b.seq, minStart, maxEnd)
	if deliver {
		sink.ConsumeSized(b.rank, b.frags, len(b.frags)*64)
	}
}

// markGap books a skipped batch: the gap is realized when the next
// delivered frame for the rank is observed, exactly like the wire
// path. Nothing to do here — skipping Observe entirely IS the gap.

func fuzzOptions() Options {
	opt := DefaultOptions()
	opt.Period = 60 * sim.Microsecond
	opt.Overlap = 30 * sim.Microsecond
	opt.Detect.Window = 2 * sim.Microsecond
	opt.Detect.MinRegionCells = 1
	return opt
}

// regionOrder normalizes region order for comparison: LossNS sorting
// is unstable on ties, so both sides sort by a total key first.
func regionOrder(regs []detect.Region) []detect.Region {
	out := append([]detect.Region(nil), regs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.RankMin != b.RankMin {
			return a.RankMin < b.RankMin
		}
		if a.WinMin != b.WinMin {
			return a.WinMin < b.WinMin
		}
		return a.LossNS > b.LossNS
	})
	return out
}

func TestShardedEquivalenceFuzz(t *testing.T) {
	const ranks = 8
	shardCounts := []int{1, 2, 4, 8}
	windows := [][2]int64{{0, 60_000}, {30_000, 90_000}}
	for seed := 0; seed < 25; seed++ {
		for _, shards := range shardCounts {
			schedule := fuzzSchedule(rand.New(rand.NewSource(int64(seed))), ranks)
			opt := fuzzOptions()

			tier := NewShardedPool(ranks, shards, opt)
			sinks := make([]*ShardSink, shards)
			for s := 0; s < shards; s++ {
				sinks[s] = tier.WireSink(s)
			}
			// Restricted references: one plain pool per shard, fed only
			// that shard's deliveries; plus the full pool for shards=1.
			refs := make([]*Pool, shards)
			for s := 0; s < shards; s++ {
				ropt := opt
				ropt.Servers = 1
				refs[s] = NewPool(ranks, ropt)
			}
			for _, b := range schedule {
				owner := tier.Owner(b.rank)
				deliverTo(tier.SeqStateFor(owner), sinks[owner], b)
				deliverTo(refs[owner].SeqState(), refs[owner], b)
			}

			for wi, w := range windows {
				merged := tier.RunWindow(w[0], w[1])
				refRes := make([]*detect.Result, shards)
				for s := 0; s < shards; s++ {
					refRes[s] = refs[s].RunWindow(w[0], w[1])
				}
				compareRows(t, seed, shards, wi, tier, merged, refRes, ranks)
				compareRegions(t, seed, shards, wi, merged, opt.Detect)
				if shards == 1 {
					compareFull(t, seed, wi, merged, refRes[0])
				}
			}
			tier.Close()
			for _, p := range refs {
				p.Close()
			}
		}
	}
}

// compareRows: every merged heat-map row equals the restricted
// reference's row for the rank's owner, bit for bit, NaN beyond the
// reference's width.
func compareRows(t *testing.T, seed, shards, wi int, tier *ShardedPool, merged *detect.Result, refRes []*detect.Result, ranks int) {
	t.Helper()
	for c := detect.Computation; c <= detect.IOClass; c++ {
		mh := merged.Maps[c]
		for s := 0; s < shards; s++ {
			if rh := refRes[s].Maps[c]; rh != nil && mh == nil {
				t.Fatalf("seed=%d shards=%d win=%d class=%v: reference %d has a map but merge does not", seed, shards, wi, c, s)
			}
		}
		if mh == nil {
			continue
		}
		for r := 0; r < ranks; r++ {
			rh := refRes[tier.Owner(r)].Maps[c]
			for w := 0; w < mh.Windows; w++ {
				want := math.NaN()
				wantStale := false
				if rh != nil && w < rh.Windows {
					want = rh.At(r, w)
					wantStale = rh.StaleAt(r, w)
				}
				if math.Float64bits(mh.At(r, w)) != math.Float64bits(want) {
					t.Fatalf("seed=%d shards=%d win=%d class=%v cell(%d,%d): merged %v, restricted reference %v",
						seed, shards, wi, c, r, w, mh.At(r, w), want)
				}
				if mh.StaleAt(r, w) != wantStale {
					t.Fatalf("seed=%d shards=%d win=%d class=%v cell(%d,%d): stale %v, want %v",
						seed, shards, wi, c, r, w, mh.StaleAt(r, w), wantStale)
				}
			}
		}
	}
}

// compareRegions: the merged region set equals the exported batch
// grower over the merged grid — cross-shard stitching included.
func compareRegions(t *testing.T, seed, shards, wi int, merged *detect.Result, dopt detect.Options) {
	t.Helper()
	var want []detect.Region
	for c := detect.Computation; c <= detect.IOClass; c++ {
		if mh := merged.Maps[c]; mh != nil {
			want = append(want, detect.GrowRegions(mh, merged.Samples[c], dopt)...)
		}
	}
	got := regionOrder(merged.Regions)
	want = regionOrder(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seed=%d shards=%d win=%d: merged regions differ from batch grower\n got %+v\nwant %+v",
			seed, shards, wi, got, want)
	}
}

// compareFull: at shard count 1 the merge is an identity — the whole
// Result deep-equals the plain pool's.
func compareFull(t *testing.T, seed, wi int, merged, ref *detect.Result) {
	t.Helper()
	if len(merged.Maps) != len(ref.Maps) {
		t.Fatalf("seed=%d win=%d: map count %d vs %d", seed, wi, len(merged.Maps), len(ref.Maps))
	}
	for c, rh := range ref.Maps {
		mh := merged.Maps[c]
		if mh == nil || mh.Ranks != rh.Ranks || mh.Windows != rh.Windows || mh.Origin != rh.Origin || mh.Window != rh.Window {
			t.Fatalf("seed=%d win=%d class=%v: geometry differs", seed, wi, c)
		}
		for i := range rh.Cells {
			if math.Float64bits(mh.Cells[i]) != math.Float64bits(rh.Cells[i]) {
				t.Fatalf("seed=%d win=%d class=%v: cell %d differs", seed, wi, c, i)
			}
		}
		if !reflect.DeepEqual(mh.Stale, rh.Stale) {
			t.Fatalf("seed=%d win=%d class=%v: stale masks differ", seed, wi, c)
		}
		if !reflect.DeepEqual(merged.Samples[c], ref.Samples[c]) {
			t.Fatalf("seed=%d win=%d class=%v: samples differ", seed, wi, c)
		}
	}
	if !reflect.DeepEqual(regionOrder(merged.Regions), regionOrder(ref.Regions)) {
		t.Fatalf("seed=%d win=%d: regions differ", seed, wi)
	}
	if !reflect.DeepEqual(merged.Coverage, ref.Coverage) || merged.OverallCoverage != ref.OverallCoverage {
		t.Fatalf("seed=%d win=%d: coverage differs: %v/%v vs %v/%v",
			seed, wi, merged.Coverage, merged.OverallCoverage, ref.Coverage, ref.OverallCoverage)
	}
	if merged.FixedClusters != ref.FixedClusters || merged.SmallClusters != ref.SmallClusters {
		t.Fatalf("seed=%d win=%d: cluster counts differ", seed, wi)
	}
}
