package collector

import (
	"net"
	"testing"
	"time"

	"vapro/internal/trace"
)

func TestWireTransportRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4, DefaultOptions())
	srv := ServeWire(ln, pool)

	// Four clients, one per rank, like the real library.
	for rank := 0; rank < 4; rank++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewWireClient(conn)
		for i := 0; i < 5; i++ {
			c.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1000, 500)})
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		if c.BytesOut() == 0 {
			t.Fatal("nothing written")
		}
		c.Close()
	}

	// Wait for the server to drain.
	deadline := time.Now().Add(5 * time.Second)
	for pool.FragmentCount() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()

	if got := pool.FragmentCount(); got != 20 {
		t.Fatalf("server received %d fragments, want 20", got)
	}
	if srv.Batches() != 20 {
		t.Fatalf("batches: %d", srv.Batches())
	}
	if srv.Err() != nil {
		t.Fatalf("server error: %v", srv.Err())
	}
}

func TestWireClientStickyError(t *testing.T) {
	conn, _ := net.Pipe()
	conn.Close()
	c := NewWireClient(conn)
	c.Consume(0, []trace.Fragment{frag(0, 0, 1)})
	if c.Err() == nil {
		t.Fatal("write to closed pipe must error")
	}
	// Further writes are swallowed, not panics.
	c.Consume(0, []trace.Fragment{frag(0, 0, 1)})
}

func TestWireFragmentFidelity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)

	want := trace.Fragment{
		Rank: 0, Kind: trace.Comm, From: 7, State: 9,
		Start: 123, Elapsed: 456,
		Counters: trace.CountersView{TotIns: 11, Cycles: 22, SlotsDRAM: 33, InvolCS: 44},
		Args:     trace.Args{Op: "Send", Bytes: 1024, Peer: 3, Tag: 5},
		Static:   true, Truth: 99,
	}
	conn, _ := net.Dial("tcp", ln.Addr().String())
	c := NewWireClient(conn)
	c.Consume(0, []trace.Fragment{want})
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for pool.FragmentCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()

	g := pool.Graph()
	v := g.Vertex(9)
	if v == nil || len(v.Fragments) != 1 {
		t.Fatal("fragment not delivered")
	}
	got := v.Fragments[0]
	if got != want {
		t.Fatalf("fragment mutated in transit:\n got %+v\nwant %+v", got, want)
	}
}
