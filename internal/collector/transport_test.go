package collector

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"vapro/internal/sim"
	"vapro/internal/trace"
)

func TestWireTransportRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4, DefaultOptions())
	srv := ServeWire(ln, pool)

	// Four clients, one per rank, like the real library.
	wantBytes := int64(0)
	for rank := 0; rank < 4; rank++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := NewWireClient(conn)
		for i := 0; i < 5; i++ {
			batch := []trace.Fragment{frag(rank, int64(i)*1000, 500)}
			wantBytes += int64(trace.BatchWireSize(rank, batch))
			c.Consume(rank, batch)
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		if c.BytesOut() == 0 {
			t.Fatal("nothing written")
		}
		c.Close()
	}

	// Wait for the server to drain.
	waitUntil(5*time.Second, func() bool { return pool.FragmentCount() >= 20 })
	srv.Close()

	if got := pool.FragmentCount(); got != 20 {
		t.Fatalf("server received %d fragments, want 20", got)
	}
	if srv.Batches() != 20 {
		t.Fatalf("batches: %d", srv.Batches())
	}
	if srv.Err() != nil {
		t.Fatalf("server error: %v", srv.Err())
	}
	// The wire path books the measured payload bytes (via ConsumeSized),
	// which must match what the clients encoded.
	if got := pool.Stats(sim.Second).BytesIn; got != wantBytes {
		t.Fatalf("BytesIn = %d, want %d (measured payload bytes)", got, wantBytes)
	}
}

// TestWireServerHostileFrame feeds the regression frame from the
// DecodeBatch overflow (a ~13-byte payload claiming 2^61+1 keys) plus
// an oversized frame header to a live server: both must surface as
// connection errors, never crash the process, and the server must keep
// serving well-formed clients afterwards.
func TestWireServerHostileFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)

	// Hand-rolled hostile payload: magic 'V', version 1, rank 0,
	// count 0, nkeys 2^61+1.
	payload := []byte{'V', 1}
	payload = binary.AppendUvarint(payload, 0)
	payload = binary.AppendUvarint(payload, 0)
	payload = binary.AppendUvarint(payload, (1<<61)+1)
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if !waitUntil(5*time.Second, func() bool { return srv.Err() != nil }) {
		t.Fatal("hostile frame not rejected")
	}
	if got := pool.FragmentCount(); got != 0 {
		t.Fatalf("hostile frame delivered %d fragments", got)
	}

	// A frame header claiming more than maxFramePayload is cut off
	// before any allocation.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hdr := binary.AppendUvarint(nil, maxFramePayload+1)
	if _, err := conn2.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// The server process survives: a well-formed client still lands.
	conn3, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewWireClient(conn3)
	c.Consume(0, []trace.Fragment{frag(0, 0, 500)})
	c.Close()
	waitUntil(5*time.Second, func() bool { return pool.FragmentCount() >= 1 })
	srv.Close()
	if got := pool.FragmentCount(); got != 1 {
		t.Fatalf("server stopped serving after hostile frames: %d fragments", got)
	}

	// The rejections are swallowed as connection kills by design, but
	// they must be counted: one undecodable payload, one oversized
	// header, no contained panics.
	if got := srv.FramesRejected(); got != 2 {
		t.Fatalf("frames rejected: %d, want 2", got)
	}
	if got := srv.DecodeErrors(); got != 1 {
		t.Fatalf("decode errors: %d, want 1", got)
	}
	if got := srv.Panics(); got != 0 {
		t.Fatalf("panics: %d, want 0", got)
	}
	// The server counts into the sink's own surface, so the pool's
	// Stats see the wire rejections too.
	if srv.Metrics() != pool.Metrics() {
		t.Fatal("wire server must share the pool's metrics surface")
	}
	if got := pool.Stats(sim.Second).FramesRejected; got != 2 {
		t.Fatalf("pool stats FramesRejected: %d, want 2", got)
	}
	if got := srv.Metrics().WireFrames.Load(); got != 1 {
		t.Fatalf("accepted frames: %d, want 1", got)
	}
}

func TestWireClientStickyError(t *testing.T) {
	conn, _ := net.Pipe()
	conn.Close()
	c := NewWireClient(conn)
	c.Consume(0, []trace.Fragment{frag(0, 0, 1)})
	if c.Err() == nil {
		t.Fatal("write to closed pipe must error")
	}
	// Further writes are swallowed, not panics.
	c.Consume(0, []trace.Fragment{frag(0, 0, 1)})
}

func TestWireFragmentFidelity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)

	want := trace.Fragment{
		Rank: 0, Kind: trace.Comm, From: 7, State: 9,
		Start: 123, Elapsed: 456,
		Counters: trace.CountersView{TotIns: 11, Cycles: 22, SlotsDRAM: 33, InvolCS: 44},
		Args:     trace.Args{Op: trace.Op("Send"), Bytes: 1024, Peer: 3, Tag: 5},
		Static:   true, Truth: 99,
	}
	conn, _ := net.Dial("tcp", ln.Addr().String())
	c := NewWireClient(conn)
	c.Consume(0, []trace.Fragment{want})
	c.Close()

	waitUntil(5*time.Second, func() bool { return pool.FragmentCount() >= 1 })
	srv.Close()

	g := pool.Graph()
	v := g.Vertex(9)
	if v == nil || len(v.Fragments) != 1 {
		t.Fatal("fragment not delivered")
	}
	got := v.Fragments[0]
	if got != want {
		t.Fatalf("fragment mutated in transit:\n got %+v\nwant %+v", got, want)
	}
}

// TestWireServerStaticHello pins the single-server bootstrap path:
// SetHello publishes a one-entry shard map, so a ShardDialer client
// (vapro feed) connects and delivers against a plain serve exactly as
// it would against the sharded tier.
func TestWireServerStaticHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()
	srv.SetHello(1, []string{ln.Addr().String()})

	met := NewMetrics()
	c := NewResilientClient(ShardDialer(2, []string{ln.Addr().String()}, met),
		ResilientOptions{MaxSpill: 16})
	c.SetMetrics(met)
	c.Consume(2, []trace.Fragment{frag(2, 0, 500)})
	if !c.Drain(5 * time.Second) {
		t.Fatal("client did not drain against a static-hello server")
	}
	waitUntil(5*time.Second, func() bool { return pool.FragmentCount() >= 1 })
	if got := pool.FragmentCount(); got != 1 {
		t.Fatalf("server received %d fragments, want 1", got)
	}
	c.Close()
}
