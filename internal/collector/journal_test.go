package collector

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vapro/internal/sim"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// seqPayload hand-encodes one sequenced wire frame, bypassing the
// client so tests control the exact sequence numbers the server sees.
func seqPayload(rank int, seq uint64, frags []trace.Fragment) []byte {
	return trace.AppendBatchSeq(nil, rank, seq, frags)
}

// writeRaw frames payload onto conn exactly as the wire clients do.
func writeRaw(t *testing.T, conn net.Conn, payload []byte) {
	t.Helper()
	out := binary.AppendUvarint(nil, uint64(len(payload)))
	out = append(out, payload...)
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
}

// openJournalSink builds a pool over the journal in dir: recover the
// log, replay it through the pool, then attach for live appends —
// the exact startup order `vapro serve -journal` uses.
func openJournalSink(t *testing.T, dir string, ranks int) (*Pool, *wal.Log, int) {
	t.Helper()
	jlog := openTestWAL(t, dir, wal.Options{})
	pool := NewPool(ranks, DefaultOptions())
	n, err := ReplayJournal(jlog, pool)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	pool.AttachJournal(jlog)
	return pool, jlog, n
}

// assertResultsIdentical requires the two window sets to be
// bit-identical: same grid, same cells (NaN-safe via Float64bits),
// same staleness, same regions, same coverage.
func assertResultsIdentical(t *testing.T, got, want []*WindowResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("window count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.End != w.End {
			t.Fatalf("window %d bounds: got [%v,%v], want [%v,%v]", i, g.Start, g.End, w.Start, w.End)
		}
		if len(g.Result.Maps) != len(w.Result.Maps) {
			t.Fatalf("window %d: %d heat maps, want %d", i, len(g.Result.Maps), len(w.Result.Maps))
		}
		for class, wm := range w.Result.Maps {
			gm := g.Result.Maps[class]
			if gm == nil {
				t.Fatalf("window %d: class %v missing", i, class)
			}
			if gm.Ranks != wm.Ranks || gm.Windows != wm.Windows || gm.Origin != wm.Origin || gm.Window != wm.Window {
				t.Fatalf("window %d class %v: grid mismatch", i, class)
			}
			for c := range wm.Cells {
				if math.Float64bits(gm.Cells[c]) != math.Float64bits(wm.Cells[c]) {
					t.Fatalf("window %d class %v cell %d: got %v, want %v (not bit-identical)",
						i, class, c, gm.Cells[c], wm.Cells[c])
				}
			}
			if !reflect.DeepEqual(gm.Stale, wm.Stale) {
				t.Fatalf("window %d class %v: stale masks differ", i, class)
			}
		}
		if len(g.Result.Regions) != len(w.Result.Regions) {
			t.Fatalf("window %d: %d regions, want %d", i, len(g.Result.Regions), len(w.Result.Regions))
		}
		for r := range w.Result.Regions {
			gr, wr := &g.Result.Regions[r], &w.Result.Regions[r]
			if gr.Class != wr.Class || gr.RankMin != wr.RankMin || gr.RankMax != wr.RankMax ||
				gr.WinMin != wr.WinMin || gr.WinMax != wr.WinMax || gr.Cells != wr.Cells ||
				math.Float64bits(gr.MeanPerf) != math.Float64bits(wr.MeanPerf) || gr.LossNS != wr.LossNS {
				t.Fatalf("window %d region %d: got %+v, want %+v", i, r, gr, wr)
			}
		}
		if math.Float64bits(g.Result.OverallCoverage) != math.Float64bits(w.Result.OverallCoverage) {
			t.Fatalf("window %d: coverage %v, want %v", i, g.Result.OverallCoverage, w.Result.OverallCoverage)
		}
	}
}

// poolFragments flattens a pool's graph into canonical order.
func poolFragments(p *Pool) []trace.Fragment {
	fs := allFragments(p.Graph())
	sortFragments(fs)
	return fs
}

// TestJournalReplayBitIdentical pins the tentpole equivalence: a live
// wire server journaling a stream with gaps, a duplicate retransmit
// and a client restart, then a fresh pool rebuilt purely from the
// journal, must agree on everything — fragment multiset, sequence
// bookkeeping (gaps, outage intervals, restarts), wire counters, and
// every analysis window bit for bit.
func TestJournalReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	jlog := openTestWAL(t, dir, wal.Options{})
	pool1 := NewPool(2, DefaultOptions())
	pool1.AttachJournal(jlog)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWire(ln, pool1)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rank, i int) []trace.Fragment {
		return []trace.Fragment{frag(rank, int64(i)*3*int64(sim.Second), int64(sim.Second))}
	}
	// rank 0: 0,1,2 clean, jump to 5 (two batches lost), a duplicate
	// retransmit of 3 (suppressed, never journaled), then 6.
	for i, seq := range []uint64{0, 1, 2, 5, 3, 6} {
		writeRaw(t, conn, seqPayload(0, seq, mk(0, i)))
	}
	// rank 1: 0,1,2, then the client restarts (seq back to 0) and
	// sends 0,1,2 of its next generation.
	for i, seq := range []uint64{0, 1, 2, 0, 1, 2} {
		writeRaw(t, conn, seqPayload(1, seq, mk(1, 10+i)))
	}
	const delivered = 11 // 12 frames minus the suppressed duplicate
	if !waitUntil(10*time.Second, func() bool { return srv.Batches() == delivered }) {
		t.Fatalf("delivered %d batches, want %d", srv.Batches(), delivered)
	}
	conn.Close()
	srv.Close()
	if err := jlog.Close(); err != nil {
		t.Fatal(err)
	}
	seq1 := pool1.SeqState()
	if seq1.GapFrames() != 2 || seq1.Dups() != 1 || seq1.Restarts() != 1 {
		t.Fatalf("live seq state: gaps=%d dups=%d restarts=%d, want 2/1/1",
			seq1.GapFrames(), seq1.Dups(), seq1.Restarts())
	}

	pool2, jlog2, n := openJournalSink(t, dir, 2)
	defer jlog2.Close()
	if n != delivered {
		t.Fatalf("replayed %d frames, want %d", n, delivered)
	}
	seq2 := pool2.SeqState()
	// Duplicates were never journaled, so replay re-derives the exact
	// delivered stream: same gaps and restarts, zero dups of its own.
	if seq2.GapFrames() != 2 || seq2.Dups() != 0 || seq2.Restarts() != 1 {
		t.Fatalf("replayed seq state: gaps=%d dups=%d restarts=%d, want 2/0/1",
			seq2.GapFrames(), seq2.Dups(), seq2.Restarts())
	}
	if !reflect.DeepEqual(seq2.Outages(), seq1.Outages()) {
		t.Fatalf("outage intervals differ:\n  live   %+v\n  replay %+v", seq1.Outages(), seq2.Outages())
	}
	m1, m2 := pool1.Metrics(), pool2.Metrics()
	if m2.WireFrames.Load() != m1.WireFrames.Load() || m2.WireBytes.Load() != m1.WireBytes.Load() {
		t.Fatalf("wire counters: replay frames=%d bytes=%d, live frames=%d bytes=%d",
			m2.WireFrames.Load(), m2.WireBytes.Load(), m1.WireFrames.Load(), m1.WireBytes.Load())
	}
	if !reflect.DeepEqual(poolFragments(pool2), poolFragments(pool1)) {
		t.Fatal("fragment multisets differ between live pool and journal replay")
	}
	w1, w2 := pool1.WindowResults(), pool2.WindowResults()
	if len(w1) == 0 {
		t.Fatal("no analysis windows produced")
	}
	assertResultsIdentical(t, w2, w1)
	pool1.Close()
	pool2.Close()
}

// TestWindowResultsRange pins the historical-query contract: the range
// variant walks the same zero-anchored grid as the full query, so its
// rows are exactly the full rows whose window intersects [from, to) —
// never a re-bucketed approximation.
func TestWindowResultsRange(t *testing.T) {
	pool := NewPool(2, DefaultOptions())
	defer pool.Close()
	for b := 0; b < 60; b++ {
		r := b % 2
		pool.Consume(r, []trace.Fragment{frag(r, int64(b)*int64(sim.Second), int64(sim.Second)/2)})
	}
	full := pool.WindowResults()
	if len(full) < 4 {
		t.Fatalf("need several windows to filter, got %d", len(full))
	}
	from, to := int64(10*sim.Second), int64(40*sim.Second)
	var want []*WindowResult
	for _, w := range full {
		if int64(w.End) <= from || int64(w.Start) >= to {
			continue
		}
		want = append(want, w)
	}
	if len(want) == 0 || len(want) == len(full) {
		t.Fatalf("filter must bite: %d of %d windows in range", len(want), len(full))
	}
	got := pool.WindowResultsRange(from, to)
	assertResultsIdentical(t, got, want)

	// to <= 0 means end-of-data; (0, 0) is the full query.
	assertResultsIdentical(t, pool.WindowResultsRange(0, 0), full)
	tail := pool.WindowResultsRange(from, 0)
	var wantTail []*WindowResult
	for _, w := range full {
		if int64(w.End) > from {
			wantTail = append(wantTail, w)
		}
	}
	assertResultsIdentical(t, tail, wantTail)
}

// TestSeqRetransmitAfterJournalReplaySuppressed pins the restart edge
// the journal exists for: a server dies and is rebuilt from its
// journal, then a client retransmits frames the dead server had
// already delivered. The rebuilt tracker must suppress them as
// duplicates — not deliver them twice, not charge a gap.
func TestSeqRetransmitAfterJournalReplaySuppressed(t *testing.T) {
	dir := t.TempDir()
	jlog := openTestWAL(t, dir, wal.Options{})
	pool1 := NewPool(1, DefaultOptions())
	pool1.AttachJournal(jlog)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := ServeWire(ln, pool1)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 4; seq++ {
		writeRaw(t, conn, seqPayload(0, seq, []trace.Fragment{frag(0, int64(seq)*1000, 500)}))
	}
	if !waitUntil(10*time.Second, func() bool { return srv1.Batches() == 4 }) {
		t.Fatalf("delivered %d, want 4", srv1.Batches())
	}
	conn.Close()
	srv1.Close()
	jlog.Close()
	pool1.Close()

	pool2, jlog2, n := openJournalSink(t, dir, 1)
	defer pool2.Close()
	defer jlog2.Close()
	if n != 4 {
		t.Fatalf("replayed %d, want 4", n)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ServeWire(ln2, pool2)
	defer srv2.Close()
	conn2, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	// The client never heard the acks, so it retransmits 2 and 3, then
	// continues with fresh work at 4.
	for _, seq := range []uint64{2, 3, 4} {
		writeRaw(t, conn2, seqPayload(0, seq, []trace.Fragment{frag(0, int64(seq)*1000, 500)}))
	}
	if !waitUntil(10*time.Second, func() bool { return pool2.SeqState().Dups() == 2 && srv2.Batches() == 1 }) {
		t.Fatalf("dups=%d live-delivered=%d, want 2 and 1", pool2.SeqState().Dups(), srv2.Batches())
	}
	if got := pool2.Metrics().WireFrames.Load(); got != 5 {
		t.Fatalf("total delivered frames %d, want 5 (4 replayed + 1 live)", got)
	}
	if gaps := pool2.SeqState().GapFrames(); gaps != 0 {
		t.Fatalf("retransmit charged %d gap frames, want 0", gaps)
	}
}

// TestSeqClientRestartInJournalReplay pins the other restart edge: a
// journal that *contains* a client restart (seq back to zero
// mid-stream) replays without double-booking — every frame delivered,
// one restart, zero gaps.
func TestSeqClientRestartInJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jlog := openTestWAL(t, dir, wal.Options{})
	pool1 := NewPool(1, DefaultOptions())
	pool1.AttachJournal(jlog)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWire(ln, pool1)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range []uint64{0, 1, 2, 0, 1, 2, 3} {
		writeRaw(t, conn, seqPayload(0, seq, []trace.Fragment{frag(0, int64(i)*1000, 500)}))
	}
	if !waitUntil(10*time.Second, func() bool { return srv.Batches() == 7 }) {
		t.Fatalf("delivered %d, want 7", srv.Batches())
	}
	conn.Close()
	srv.Close()
	jlog.Close()
	pool1.Close()

	pool2, jlog2, n := openJournalSink(t, dir, 1)
	defer pool2.Close()
	defer jlog2.Close()
	if n != 7 {
		t.Fatalf("replayed %d, want 7", n)
	}
	s := pool2.SeqState()
	if s.GapFrames() != 0 || s.Restarts() != 1 || s.Dups() != 0 {
		t.Fatalf("replayed seq state: gaps=%d restarts=%d dups=%d, want 0/1/0",
			s.GapFrames(), s.Restarts(), s.Dups())
	}
	if got := pool2.FragmentCount(); got != 7 {
		t.Fatalf("fragments %d, want 7", got)
	}
}

// TestJournalKillPointsEquivalence is the crash-point sweep: truncate
// the journal's tail segment at arbitrary byte offsets (simulating a
// server killed mid-append), and require that recovery never errors
// and the replayed pool is bit-identical to a live, uninterrupted wire
// run fed the surviving frame prefix.
func TestJournalKillPointsEquivalence(t *testing.T) {
	dir := t.TempDir()
	jlog := openTestWAL(t, dir, wal.Options{})
	pool1 := NewPool(2, DefaultOptions())
	pool1.AttachJournal(jlog)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWire(ln, pool1)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const frames = 30
	payloads := make([][]byte, frames)
	for i := 0; i < frames; i++ {
		rank := i % 2
		p := seqPayload(rank, uint64(i/2), []trace.Fragment{frag(rank, int64(i)*int64(sim.Second), int64(sim.Second)/2)})
		payloads[i] = p
		writeRaw(t, conn, p)
	}
	if !waitUntil(10*time.Second, func() bool { return srv.Batches() == frames }) {
		t.Fatalf("delivered %d, want %d", srv.Batches(), frames)
	}
	conn.Close()
	srv.Close()
	jlog.Close()
	pool1.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	sz := fi.Size()
	cuts := []int64{1, 2, 5, sz / 2, sz - 1}
	for _, cut := range cuts {
		if cut <= 0 || cut >= sz {
			continue
		}
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			// Copy the journal and tear its tail mid-record.
			torn := t.TempDir()
			for _, s := range segs {
				data, err := os.ReadFile(s)
				if err != nil {
					t.Fatal(err)
				}
				if s == last {
					data = data[:sz-cut]
				}
				if err := os.WriteFile(filepath.Join(torn, filepath.Base(s)), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			rep := NewPool(2, DefaultOptions())
			defer rep.Close()
			tlog := openTestWAL(t, torn, wal.Options{})
			defer tlog.Close()
			n, err := ReplayJournal(tlog, rep)
			if err != nil {
				t.Fatalf("replay after torn tail: %v", err)
			}
			if n >= frames {
				t.Fatalf("replayed %d frames from a torn journal of %d", n, frames)
			}
			// Reference: an uninterrupted live wire run over the same
			// surviving prefix, through a completely separate path.
			ref := NewPool(2, DefaultOptions())
			defer ref.Close()
			lnr, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			rsrv := ServeWire(lnr, ref)
			rconn, err := net.Dial("tcp", lnr.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads[:n] {
				writeRaw(t, rconn, p)
			}
			if !waitUntil(10*time.Second, func() bool { return rsrv.Batches() == n }) {
				t.Fatalf("reference delivered %d, want %d", rsrv.Batches(), n)
			}
			rconn.Close()
			rsrv.Close()
			if !reflect.DeepEqual(poolFragments(rep), poolFragments(ref)) {
				t.Fatal("fragment multisets differ from uninterrupted reference run")
			}
			assertResultsIdentical(t, rep.WindowResults(), ref.WindowResults())
		})
	}
}

// TestChaosSoakJournalCrashReplay is the durability soak: a journaling
// server is killed mid-run, clients ride out the outage by spilling to
// their WALs and then die themselves (persisting the backlog), and a
// second generation of both tiers — server rebuilt from the journal,
// clients replaying their WALs — must account for every consumed batch
// with zero losses: consumed == delivered + gaps, gaps == abandoned.
// Finally the journal alone must reproduce the live server's window
// analysis bit for bit (the `vapro analyze -journal` contract).
func TestChaosSoakJournalCrashReplay(t *testing.T) {
	const (
		ranks  = 3
		phaseA = 10 // batches per rank with the server up
		phaseB = 12 // batches per rank during the outage (deeper than MaxSpill)
		phaseC = 5  // batches per rank after both tiers restart
	)
	jdir := t.TempDir()
	wdir := t.TempDir()
	ropt := func(r int, l *wal.Log) ResilientOptions {
		return ResilientOptions{
			MaxSpill:    4,
			WAL:         l,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			Rand:        func() float64 { return 0.5 },
		}
	}
	batchIdx := 0
	mkBatch := func(r int) []trace.Fragment {
		batchIdx++
		return []trace.Fragment{frag(r, int64(batchIdx)*int64(sim.Second)/4, int64(sim.Second)/8)}
	}

	// Generation 1: journaling server, WAL-backed clients.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	pool1, jlog1, _ := openJournalSink(t, jdir, ranks)
	srv1 := ServeWire(ln1, pool1)
	gen1 := make([]*ResilientClient, ranks)
	for r := 0; r < ranks; r++ {
		wl := openTestWAL(t, filepath.Join(wdir, fmt.Sprintf("rank%d", r)), wal.Options{})
		gen1[r] = NewResilientClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, ropt(r, wl))
	}
	for b := 0; b < phaseA; b++ {
		for r := 0; r < ranks; r++ {
			gen1[r].Consume(r, mkBatch(r))
		}
	}
	if !waitUntil(10*time.Second, func() bool {
		return pool1.Metrics().WireFrames.Load() == uint64(ranks*phaseA)
	}) {
		t.Fatalf("phase A delivered %d, want %d", pool1.Metrics().WireFrames.Load(), ranks*phaseA)
	}

	// Kill the server tier abruptly; clients keep producing into the
	// outage, overflow their memory queues, and migrate to disk.
	srv1.Close()
	jlog1.Close()
	for b := 0; b < phaseB; b++ {
		for r := 0; r < ranks; r++ {
			gen1[r].Consume(r, mkBatch(r))
		}
	}
	// Now the client tier dies too: Close persists the backlog.
	var consumed, lost, abandoned uint64
	for r := 0; r < ranks; r++ {
		gen1[r].Close()
		st := gen1[r].Stats()
		consumed += st.Consumed
		lost += st.Lost
		abandoned += st.Abandoned
	}
	if consumed != uint64(ranks*(phaseA+phaseB)) {
		t.Fatalf("gen1 consumed %d, want %d", consumed, ranks*(phaseA+phaseB))
	}
	if lost != 0 {
		t.Fatalf("gen1 lost %d batches despite WALs", lost)
	}

	// Generation 2: server rebuilt from its journal on the same
	// address, clients replaying their WALs, plus fresh work (whose
	// restarted numbering must not confuse the rebuilt tracker).
	// A write racing the server kill may have landed (delivered and
	// journaled) or died on the socket — at most one in-flight frame
	// per rank either way.
	pool2, jlog2, nrep := openJournalSink(t, jdir, ranks)
	if nrep < ranks*phaseA || nrep > ranks*(phaseA+1) {
		t.Fatalf("journal replayed %d frames, want %d..%d", nrep, ranks*phaseA, ranks*(phaseA+1))
	}
	srv2 := ServeWire(listenRetry(t, addr), pool2)
	gen2 := make([]*ResilientClient, ranks)
	for r := 0; r < ranks; r++ {
		wl := openTestWAL(t, filepath.Join(wdir, fmt.Sprintf("rank%d", r)), wal.Options{})
		if wl.Pending() == 0 {
			t.Fatalf("rank %d WAL empty after gen1 death", r)
		}
		gen2[r] = NewResilientClient(func() (net.Conn, error) { return net.Dial("tcp", addr) }, ropt(r, wl))
	}
	for b := 0; b < phaseC; b++ {
		for r := 0; r < ranks; r++ {
			gen2[r].Consume(r, mkBatch(r))
			consumed++
		}
	}

	// Zero loss: every batch either landed or is accounted as a gap,
	// and the only gaps are the frames gen1 had to abandon at Close.
	met2, seq2 := pool2.Metrics(), pool2.SeqState()
	if !waitUntil(20*time.Second, func() bool {
		return met2.WireFrames.Load()+seq2.GapFrames() == consumed
	}) {
		t.Fatalf("balance never closed: delivered=%d gaps=%d consumed=%d",
			met2.WireFrames.Load(), seq2.GapFrames(), consumed)
	}
	for r := 0; r < ranks; r++ {
		gen2[r].Close()
		st := gen2[r].Stats()
		lost += st.Lost
		abandoned += st.Abandoned
		if st.WALPending != 0 || st.SpillDepth != 0 {
			t.Fatalf("rank %d gen2 left %d WAL-pending / %d queued after drain", r, st.WALPending, st.SpillDepth)
		}
	}
	if lost != 0 {
		t.Fatalf("lost %d batches across both generations", lost)
	}
	// Gaps are exactly the accounted casualties: frames abandoned at
	// close plus at most one per rank that died on the closing socket
	// after being acknowledged into the OS buffer.
	if gaps := seq2.GapFrames(); gaps < abandoned || gaps > abandoned+ranks {
		t.Fatalf("gaps=%d, want %d..%d (abandoned + at most one socket race per rank)",
			gaps, abandoned, abandoned+ranks)
	}
	if restarts := seq2.Restarts(); restarts != ranks {
		t.Fatalf("restarts=%d, want %d (one per rank's gen2 numbering)", restarts, ranks)
	}
	srv2.Close()
	jlog2.Close()

	// The analyze contract: a third pool built from the journal alone
	// reproduces the live gen2 server's state bit for bit.
	pool3, jlog3, n3 := openJournalSink(t, jdir, ranks)
	defer pool3.Close()
	defer jlog3.Close()
	if n3 != int(met2.WireFrames.Load()) {
		t.Fatalf("final journal holds %d frames, live server delivered %d", n3, met2.WireFrames.Load())
	}
	seq3 := pool3.SeqState()
	if seq3.GapFrames() != seq2.GapFrames() || seq3.Restarts() != seq2.Restarts() {
		t.Fatalf("replayed seq state gaps=%d restarts=%d, live gaps=%d restarts=%d",
			seq3.GapFrames(), seq3.Restarts(), seq2.GapFrames(), seq2.Restarts())
	}
	if !reflect.DeepEqual(seq3.Outages(), seq2.Outages()) {
		t.Fatal("outage intervals differ between live run and journal replay")
	}
	if !reflect.DeepEqual(poolFragments(pool3), poolFragments(pool2)) {
		t.Fatal("fragment multisets differ between live run and journal replay")
	}
	assertResultsIdentical(t, pool3.WindowResults(), pool2.WindowResults())
	pool1.Close()
	pool2.Close()
}
