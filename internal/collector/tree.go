package collector

import (
	"sync"

	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Tree is an MRNet-style aggregation network (§5: "Further optimizations
// are feasible with data collection frameworks such as MRNet, which
// organizes servers into a tree-like structure"): clients feed leaf
// aggregators, each internal level merges its children's STGs, and the
// root holds the global graph. Aggregation work per node stays bounded
// by the fan-out instead of the total client count.
type Tree struct {
	fanout int
	leaves []*treeNode
	root   *treeNode
	levels int
}

type treeNode struct {
	mu       sync.Mutex
	graph    *stg.Graph
	children []*treeNode
	batches  int
}

// NewTree builds an aggregation tree for `ranks` clients with the given
// fan-out (children per internal node). Leaf count is ceil(ranks/fanout).
func NewTree(ranks, fanout int) *Tree {
	if fanout < 2 {
		fanout = 2
	}
	if ranks < 1 {
		ranks = 1
	}
	nLeaves := (ranks + fanout - 1) / fanout
	if nLeaves < 1 {
		nLeaves = 1
	}
	t := &Tree{fanout: fanout}
	level := make([]*treeNode, nLeaves)
	for i := range level {
		level[i] = &treeNode{graph: stg.New()}
	}
	t.leaves = level
	t.levels = 1
	for len(level) > 1 {
		var next []*treeNode
		for i := 0; i < len(level); i += fanout {
			end := i + fanout
			if end > len(level) {
				end = len(level)
			}
			parent := &treeNode{graph: stg.New(), children: level[i:end]}
			next = append(next, parent)
		}
		level = next
		t.levels++
	}
	t.root = level[0]
	return t
}

// Levels returns the tree depth (1 = a single node).
func (t *Tree) Levels() int { return t.levels }

// Leaves returns the number of leaf aggregators.
func (t *Tree) Leaves() int { return len(t.leaves) }

// Consume implements interpose.Sink: route the batch to the client's
// leaf aggregator.
func (t *Tree) Consume(rank int, frags []trace.Fragment) {
	leaf := t.leaves[(rank/t.fanout)%len(t.leaves)]
	leaf.mu.Lock()
	leaf.graph.AddBatch(frags)
	leaf.batches++
	leaf.mu.Unlock()
}

// Reduce propagates every leaf's data up the tree, level by level, and
// returns the root's merged STG. Each internal node merges only its own
// children (the bounded-work property); the per-node merge sizes are
// returned for instrumentation.
func (t *Tree) Reduce() *stg.Graph {
	var up func(n *treeNode) *stg.Graph
	up = func(n *treeNode) *stg.Graph {
		n.mu.Lock()
		defer n.mu.Unlock()
		for _, c := range n.children {
			n.graph.Merge(up(c))
		}
		return n.graph
	}
	return up(t.root)
}

// Batches returns the total batches received across leaves.
func (t *Tree) Batches() int {
	n := 0
	for _, l := range t.leaves {
		l.mu.Lock()
		n += l.batches
		l.mu.Unlock()
	}
	return n
}
