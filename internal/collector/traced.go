package collector

import (
	"vapro/internal/obs"
	"vapro/internal/trace"
)

// TraceCtx is the provenance context of one sampled wire batch: who
// flushed it (client id + per-rank seq, together the journey key), for
// which rank, and when (flush wall ns). The wire server decodes it off
// a traced (v4) frame and threads it through staging and drain so the
// exemplar journey picks up every hop. The zero value means untraced.
type TraceCtx struct {
	ClientID uint64
	Seq      uint64
	Rank     int
	FlushNS  int64
}

// key returns the journey key for the exemplar ring.
// Key returns the journey key the context addresses in the exemplar ring.
func (tc TraceCtx) Key() obs.TraceKey {
	return obs.TraceKey{ClientID: tc.ClientID, Seq: tc.Seq}
}

// tracedSink is the optional sink extension the wire server probes for:
// a sink that can carry a sampled batch's trace context through the
// intake path. Pool, Monitor, and the sharded tier's sinks implement it.
type tracedSink interface {
	ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx)
}

// ConsumeTraced routes a sampled traced batch to the rank's shard,
// carrying its provenance context through staging and drain.
func (p *Pool) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	s := p.servers[rank%len(p.servers)]
	s.stage(rank, frags, bytes, tc, true)
}
