package collector

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"time"

	"vapro/internal/obs"
	"vapro/internal/trace"
)

// Dialer produces a fresh connection to the collector. ResilientClient
// owns the full connection lifecycle through it: the first dial, every
// redial after a failure, and the backoff between attempts.
type Dialer func() (net.Conn, error)

// ResilientOptions tunes the fault-tolerant client.
type ResilientOptions struct {
	// BackoffBase is the delay before the second dial attempt; each
	// failure doubles it up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// Jitter spreads each delay by ±Jitter (0.2 → ±20%) so a fleet of
	// ranks does not redial a restarted collector in lockstep.
	Jitter float64
	// MaxSpill bounds the disconnected-side queue in batches. When
	// full, the oldest batch not currently being written is evicted and
	// counted lost; the eviction surfaces server-side as a sequence gap.
	MaxSpill int
	// WriteTimeout bounds each frame write so a stalled (accept-then-
	// hang) collector never blocks the application's flush path. Zero
	// disables the deadline. Deadlines are kernel-socket real time and
	// are not routed through Clock.
	WriteTimeout time.Duration
	// Clock drives backoff waits; tests inject a fake to replay exact
	// retry schedules with no real sleeps. Nil means wall clock.
	Clock Clock
	// Rand supplies jitter in [0,1); nil means math/rand. A constant
	// 0.5 makes the schedule deterministic.
	Rand func() float64
}

// DefaultResilientOptions returns the production tuning.
func DefaultResilientOptions() ResilientOptions {
	return ResilientOptions{
		BackoffBase:  50 * time.Millisecond,
		BackoffMax:   5 * time.Second,
		Jitter:       0.2,
		MaxSpill:     1024,
		WriteTimeout: 5 * time.Second,
	}
}

// spillEntry is one encoded frame awaiting delivery.
type spillEntry struct {
	rank    int
	buf     []byte
	key     obs.TraceKey // journey key of a sampled traced batch
	sampled bool
}

// ResilientStats is a point-in-time snapshot of the client's loss
// accounting. The core invariant, checked by the chaos soak: every
// consumed batch is either written to a connection (Sent), evicted or
// rejected by the bounded spill queue (Lost), or still queued/discarded
// at Close (Abandoned) — Consumed == Sent + Lost + Abandoned + queued.
type ResilientStats struct {
	Consumed      uint64
	Sent          uint64
	Lost          uint64
	Abandoned     uint64
	Dials         uint64
	Connects      uint64
	Reconnects    uint64
	WriteTimeouts uint64
	SpillDepth    int
	SpillPeak     int
	LostByRank    map[int]uint64
}

// ResilientClient is the fault-tolerant wire client: it implements
// interpose.Sink like WireClient, but owns dialing through a Dialer,
// reconnects with jittered exponential backoff, and absorbs outages in
// a bounded spill queue so Consume never blocks and never errors. Every
// frame carries a per-rank sequence number (wire format v2), which is
// what turns silent loss — spill evictions, frames torn by a dying
// connection — into exact server-side gap accounting.
//
// Unlike WireClient it is safe for any number of ranks: one client per
// traced process, shared by its ranks.
type ResilientClient struct {
	dial    Dialer
	opt     ResilientOptions
	clock   Clock
	rand    func() float64
	closeCh chan struct{}
	done    chan struct{}

	mu            sync.Mutex
	cond          *sync.Cond
	queue         []spillEntry
	inFlight      bool // queue[0] is being written; eviction must skip it
	conn          net.Conn
	closed        bool
	everConnected bool
	met           *Metrics

	// Batch provenance tracing: when enabled, every frame is encoded in
	// the traced wire variant (client id + flush ns), and sampled batches
	// get their flush/enqueue/write hops stamped into tracer.
	traceID uint64
	tracer  *obs.Trace

	seqs       map[int]uint64
	consumed   uint64
	sent       uint64
	lost       uint64
	abandoned  uint64
	dials      uint64
	connects   uint64
	reconnects uint64
	timeouts   uint64
	spillPeak  int
	lostByRank map[int]uint64
}

// NewResilientClient starts a client that ships batches through
// connections obtained from dial. The single writer goroutine runs
// until Close.
func NewResilientClient(dial Dialer, opt ResilientOptions) *ResilientClient {
	def := DefaultResilientOptions()
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = def.BackoffBase
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = def.BackoffMax
	}
	if opt.MaxSpill <= 0 {
		opt.MaxSpill = def.MaxSpill
	}
	c := &ResilientClient{
		dial:       dial,
		opt:        opt,
		clock:      opt.Clock,
		rand:       opt.Rand,
		closeCh:    make(chan struct{}),
		done:       make(chan struct{}),
		seqs:       make(map[int]uint64),
		lostByRank: make(map[int]uint64),
	}
	if c.clock == nil {
		c.clock = realClock{}
	}
	if c.rand == nil {
		c.rand = rand.Float64
	}
	c.cond = sync.NewCond(&c.mu)
	go c.writeLoop()
	return c
}

// SetMetrics mirrors the client's counters into a collector metrics
// surface (layer "net"). Call before traffic for exact mirrors.
func (c *ResilientClient) SetMetrics(m *Metrics) {
	c.mu.Lock()
	c.met = m
	c.mu.Unlock()
}

// EnableTrace switches the client to the traced wire variant: every
// frame carries clientID and the flush wall time, and batches sampled
// by tr get flush/enqueue/write hops stamped into its exemplar ring.
// In-process deployments pass the server pool's tracer so one ring
// holds the whole journey; across processes the client uses its own
// ring and the server reconstructs flush→deliver from the wire context.
// Call before traffic.
func (c *ResilientClient) EnableTrace(clientID uint64, tr *obs.Trace) {
	c.mu.Lock()
	c.traceID = clientID
	c.tracer = tr
	c.mu.Unlock()
}

// Consume implements interpose.Sink: it stamps the batch with the
// rank's next sequence number, encodes it, and enqueues it for the
// writer. It never blocks on the network. If the spill queue is full
// the oldest batch not in flight is evicted (or, when that is the only
// entry, the new batch is rejected) and counted lost.
func (c *ResilientClient) Consume(rank int, frags []trace.Fragment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seqs[rank]
	c.seqs[rank] = seq + 1
	c.consumed++
	if c.closed {
		c.abandoned++
		return
	}
	if len(c.queue) >= c.opt.MaxSpill {
		if c.inFlight && len(c.queue) == 1 {
			// The only queued batch is mid-write; reject the newcomer.
			// Its sequence number is already burned, so the server will
			// see this loss as a gap like any eviction.
			c.loseLocked(rank)
			return
		}
		victim := 0
		if c.inFlight {
			victim = 1
		}
		c.loseLocked(c.queue[victim].rank)
		c.queue = append(c.queue[:victim], c.queue[victim+1:]...)
	}
	ent := spillEntry{rank: rank}
	if c.tracer != nil {
		flushNS := c.clock.Now().UnixNano()
		ent.buf = encodeFrameTraced(rank, seq, c.traceID, flushNS, frags)
		if c.tracer.Sample(seq) {
			ent.key = obs.TraceKey{ClientID: c.traceID, Seq: seq}
			ent.sampled = true
			c.tracer.Record(ent.key, rank, flushNS, obs.HopFlush)
			c.tracer.Record(ent.key, rank, flushNS, obs.HopEnqueue)
		}
	} else {
		ent.buf = encodeFrame(rank, seq, frags)
	}
	c.queue = append(c.queue, ent)
	c.noteDepthLocked()
	c.cond.Signal()
}

// loseLocked books one lost batch for rank. Caller holds mu.
func (c *ResilientClient) loseLocked(rank int) {
	c.lost++
	c.lostByRank[rank]++
	if c.met != nil {
		c.met.NetBatchesLost.Inc()
	}
}

// noteDepthLocked refreshes the spill gauges. Caller holds mu.
func (c *ResilientClient) noteDepthLocked() {
	d := len(c.queue)
	if d > c.spillPeak {
		c.spillPeak = d
	}
	if c.met != nil {
		c.met.NetSpillDepth.Set(int64(d))
		c.met.NetSpillPeak.Set(int64(c.spillPeak))
	}
}

// encodeFrame builds a length-prefixed wire frame around a sequenced
// batch encoding.
func encodeFrame(rank int, seq uint64, frags []trace.Fragment) []byte {
	buf := make([]byte, binary.MaxVarintLen64, binary.MaxVarintLen64+64+len(frags)*32)
	buf = trace.AppendBatchSeq(buf, rank, seq, frags)
	return prefixFrame(buf)
}

// encodeFrameTraced is encodeFrame for the traced (v4) wire variant.
func encodeFrameTraced(rank int, seq, clientID uint64, flushNS int64, frags []trace.Fragment) []byte {
	buf := make([]byte, binary.MaxVarintLen64, binary.MaxVarintLen64+64+len(frags)*32)
	buf = trace.AppendBatchTraced(buf, rank, seq, clientID, flushNS, frags)
	return prefixFrame(buf)
}

// prefixFrame turns a batch encoded after MaxVarintLen64 reserved bytes
// into a length-prefixed frame, reusing the reserved prefix.
func prefixFrame(buf []byte) []byte {
	payload := len(buf) - binary.MaxVarintLen64
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(payload))
	frame := buf[binary.MaxVarintLen64-hn:]
	copy(frame, hdr[:hn])
	return frame
}

// writeLoop is the single writer: it drains the spill queue in order,
// (re)connecting as needed. A frame is popped only after its write
// fully succeeds, so a connection that dies mid-frame retransmits the
// same frame on the next connection — safe, because the server rejects
// the torn copy, and duplicate-safe for timeout retries because the
// server dedups by sequence number.
func (c *ResilientClient) writeLoop() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.abandoned += uint64(len(c.queue))
			c.queue = nil
			c.noteDepthLocked()
			c.mu.Unlock()
			return
		}
		c.inFlight = true
		head := c.queue[0]
		frame := head.buf
		conn := c.conn
		c.mu.Unlock()

		if conn == nil {
			if conn = c.connect(); conn == nil {
				continue // closed during backoff; loop top abandons
			}
		}
		if c.opt.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
		}
		_, err := conn.Write(frame)

		c.mu.Lock()
		c.inFlight = false
		if err == nil {
			c.queue = c.queue[1:]
			c.sent++
			if c.met != nil {
				c.met.NetBatchesSent.Inc()
			}
			if head.sampled && c.tracer != nil {
				// enqueue→write is the spill/redial dwell.
				c.tracer.Record(head.key, head.rank, 0, obs.HopWrite)
			}
			c.noteDepthLocked()
			c.mu.Unlock()
			continue
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			c.timeouts++
			if c.met != nil {
				c.met.NetWriteTimeouts.Inc()
			}
		}
		c.conn = nil
		c.mu.Unlock()
		conn.Close()
		// The head frame stays queued and is retried on a new connection.
	}
}

// connect dials with jittered exponential backoff until it succeeds or
// the client closes. It returns the new connection, or nil when closed.
func (c *ResilientClient) connect() net.Conn {
	delay := c.opt.BackoffBase
	for {
		select {
		case <-c.closeCh:
			return nil
		default:
		}
		c.mu.Lock()
		c.dials++
		met := c.met
		c.mu.Unlock()
		if met != nil {
			met.NetDials.Inc()
		}
		conn, err := c.dial()
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return nil
			}
			c.conn = conn
			c.connects++
			again := c.everConnected
			c.everConnected = true
			if again {
				c.reconnects++
			}
			c.mu.Unlock()
			if met != nil {
				met.NetConnects.Inc()
				if again {
					met.NetReconnects.Inc()
				}
			}
			return conn
		}
		d := delay
		if j := c.opt.Jitter; j > 0 {
			d = time.Duration(float64(d) * (1 + j*(2*c.rand()-1)))
		}
		select {
		case <-c.clock.After(d):
		case <-c.closeCh:
			return nil
		}
		delay *= 2
		if delay > c.opt.BackoffMax {
			delay = c.opt.BackoffMax
		}
	}
}

// Drain blocks until the spill queue is empty (every consumed batch
// sent or already counted lost) or timeout elapses, reporting success.
// Call before Close for a graceful shutdown with zero abandonment.
func (c *ResilientClient) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		empty := len(c.queue) == 0 && !c.inFlight
		c.mu.Unlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the writer and closes any live connection. Batches still
// queued are counted abandoned, not silently dropped; use Drain first
// to deliver them.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	conn := c.conn
	c.conn = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		conn.Close() // unblock an in-flight write
	}
	<-c.done
	return nil
}

// Stats snapshots the loss accounting.
func (c *ResilientClient) Stats() ResilientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	by := make(map[int]uint64, len(c.lostByRank))
	for r, n := range c.lostByRank {
		by[r] = n
	}
	return ResilientStats{
		Consumed:      c.consumed,
		Sent:          c.sent,
		Lost:          c.lost,
		Abandoned:     c.abandoned,
		Dials:         c.dials,
		Connects:      c.connects,
		Reconnects:    c.reconnects,
		WriteTimeouts: c.timeouts,
		SpillDepth:    len(c.queue),
		SpillPeak:     c.spillPeak,
		LostByRank:    by,
	}
}
