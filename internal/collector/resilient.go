package collector

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"time"

	"vapro/internal/obs"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Dialer produces a fresh connection to the collector. ResilientClient
// owns the full connection lifecycle through it: the first dial, every
// redial after a failure, and the backoff between attempts.
type Dialer func() (net.Conn, error)

// ResilientOptions tunes the fault-tolerant client.
type ResilientOptions struct {
	// BackoffBase is the delay before the second dial attempt; each
	// failure doubles it up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// Jitter spreads each delay by ±Jitter (0.2 → ±20%) so a fleet of
	// ranks does not redial a restarted collector in lockstep.
	Jitter float64
	// MaxSpill bounds the disconnected-side queue in batches. When
	// full, the queue either migrates to the WAL (when one is attached)
	// or evicts its oldest batch not currently being written, counted
	// lost; the eviction surfaces server-side as a sequence gap.
	MaxSpill int
	// MaxSpillBytes additionally bounds the queue by encoded frame
	// bytes — a few huge frames can dwarf many small ones under the
	// entry cap alone. Zero means entries-only. Overflow behaves
	// exactly like MaxSpill overflow.
	MaxSpillBytes int64
	// WAL, when non-nil, is the client's spill-to-disk log: on queue
	// overflow the in-memory backlog migrates to it (and new frames
	// follow, preserving per-rank order) instead of being dropped, and
	// at Close still-queued frames are persisted for the next process
	// generation to replay. The client takes ownership — it installs
	// the log's drop hook and closes the log in Close. Records already
	// in the log at construction (a previous generation's leftovers)
	// are replayed through the writer before any new frame.
	WAL *wal.Log
	// WriteTimeout bounds each frame write so a stalled (accept-then-
	// hang) collector never blocks the application's flush path. Zero
	// disables the deadline. Deadlines are kernel-socket real time and
	// are not routed through Clock.
	WriteTimeout time.Duration
	// Clock drives backoff waits; tests inject a fake to replay exact
	// retry schedules with no real sleeps. Nil means wall clock.
	Clock Clock
	// Rand supplies jitter in [0,1); nil means math/rand. A constant
	// 0.5 makes the schedule deterministic.
	Rand func() float64
}

// DefaultResilientOptions returns the production tuning.
func DefaultResilientOptions() ResilientOptions {
	return ResilientOptions{
		BackoffBase:  50 * time.Millisecond,
		BackoffMax:   5 * time.Second,
		Jitter:       0.2,
		MaxSpill:     1024,
		WriteTimeout: 5 * time.Second,
	}
}

// spillEntry is one encoded frame awaiting delivery.
type spillEntry struct {
	rank    int
	buf     []byte
	key     obs.TraceKey // journey key of a sampled traced batch
	sampled bool
}

// ResilientStats is a point-in-time snapshot of the client's loss
// accounting. The core invariant, checked by the chaos soak: every
// consumed batch is either written to a connection (Sent), evicted or
// rejected by the bounded spill queue or reclaimed by WAL retention
// (Lost), discarded at Close (Abandoned), durable on disk awaiting the
// next generation (WALPending), or still queued —
// Consumed == Sent + Lost + Abandoned + WALPending + SpillDepth.
// Persisted counts the subset of WALPending written by Close.
type ResilientStats struct {
	Consumed      uint64
	Sent          uint64
	Lost          uint64
	Abandoned     uint64
	Persisted     uint64
	Dials         uint64
	Connects      uint64
	Reconnects    uint64
	WriteTimeouts uint64
	SpillDepth    int
	SpillPeak     int
	SpillBytes    int64
	WALPending    int
	WALBroken     bool
	LostByRank    map[int]uint64
}

// ResilientClient is the fault-tolerant wire client: it implements
// interpose.Sink like WireClient, but owns dialing through a Dialer,
// reconnects with jittered exponential backoff, and absorbs outages in
// a bounded spill queue so Consume never blocks and never errors. Every
// frame carries a per-rank sequence number (wire format v2), which is
// what turns silent loss — spill evictions, frames torn by a dying
// connection — into exact server-side gap accounting.
//
// With a WAL attached the spill queue overflows to disk instead of
// dropping: the backlog migrates oldest-first, new frames follow it
// into the log while it drains (per-rank sequence order must stay
// non-decreasing at delivery, or the server's dedup would suppress
// frames that were never delivered), and a restarted process replays
// the log through the same writer — retransmits ride their original
// sequence numbers, so the server's tracker keeps
// consumed == delivered + gaps exact across client death. A failing
// disk degrades the client back to memory-only eviction; it never
// fails a flush.
//
// Unlike WireClient it is safe for any number of ranks: one client per
// traced process, shared by its ranks.
type ResilientClient struct {
	dial    Dialer
	opt     ResilientOptions
	clock   Clock
	rand    func() float64
	closeCh chan struct{}
	done    chan struct{}

	mu            sync.Mutex
	cond          *sync.Cond
	queue         []spillEntry
	inFlight      bool // the writer is mid-send of some frame
	inFlightMem   bool // ...and that frame is queue[0]; eviction must skip it
	conn          net.Conn
	closed        bool
	everConnected bool
	met           *Metrics

	// Spill-to-disk state. walMode: the log holds frames older than any
	// new consume, so new frames append there too until it drains.
	// preWalHead: queue[0] predates the log's content (it was mid-write
	// when the queue migrated) and must be sent before any log record.
	// walBroken: an append failed (disk full); the client degraded to
	// memory-only spill. walDead: a read failed; the log is abandoned
	// and its pending records were booked lost.
	walMode    bool
	preWalHead bool
	walBroken  bool
	walDead    bool

	// Batch provenance tracing: when enabled, every frame is encoded in
	// the traced wire variant (client id + flush ns), and sampled batches
	// get their flush/enqueue/write hops stamped into tracer.
	traceID uint64
	tracer  *obs.Trace

	seqs       map[int]uint64
	consumed   uint64
	sent       uint64
	lost       uint64
	abandoned  uint64
	persisted  uint64
	dials      uint64
	connects   uint64
	reconnects uint64
	timeouts   uint64
	spillPeak  int
	spillBytes int64
	lostByRank map[int]uint64
}

// NewResilientClient starts a client that ships batches through
// connections obtained from dial. The single writer goroutine runs
// until Close.
func NewResilientClient(dial Dialer, opt ResilientOptions) *ResilientClient {
	def := DefaultResilientOptions()
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = def.BackoffBase
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = def.BackoffMax
	}
	if opt.MaxSpill <= 0 {
		opt.MaxSpill = def.MaxSpill
	}
	c := &ResilientClient{
		dial:       dial,
		opt:        opt,
		clock:      opt.Clock,
		rand:       opt.Rand,
		closeCh:    make(chan struct{}),
		done:       make(chan struct{}),
		seqs:       make(map[int]uint64),
		lostByRank: make(map[int]uint64),
	}
	if c.clock == nil {
		c.clock = realClock{}
	}
	if c.rand == nil {
		c.rand = rand.Float64
	}
	if opt.WAL != nil {
		opt.WAL.SetOnDrop(c.walDrop)
		if opt.WAL.Pending() > 0 {
			// A previous generation left frames behind: replay them
			// (oldest first, original sequence numbers) before anything
			// this generation consumes.
			c.walMode = true
		}
	}
	c.cond = sync.NewCond(&c.mu)
	go c.writeLoop()
	return c
}

// SetMetrics mirrors the client's counters into a collector metrics
// surface (layer "net"). Call before traffic for exact mirrors.
func (c *ResilientClient) SetMetrics(m *Metrics) {
	c.mu.Lock()
	c.met = m
	c.mu.Unlock()
}

// EnableTrace switches the client to the traced wire variant: every
// frame carries clientID and the flush wall time, and batches sampled
// by tr get flush/enqueue/write hops stamped into its exemplar ring.
// In-process deployments pass the server pool's tracer so one ring
// holds the whole journey; across processes the client uses its own
// ring and the server reconstructs flush→deliver from the wire context.
// Call before traffic.
func (c *ResilientClient) EnableTrace(clientID uint64, tr *obs.Trace) {
	c.mu.Lock()
	c.traceID = clientID
	c.tracer = tr
	c.mu.Unlock()
}

// walUsableLocked reports whether appends can still go to the log.
func (c *ResilientClient) walUsableLocked() bool {
	return c.opt.WAL != nil && !c.walBroken && !c.walDead
}

// walPendingLocked returns the log's unacknowledged record count (0
// when no usable log is attached).
func (c *ResilientClient) walPendingLocked() int {
	if c.opt.WAL == nil || c.walDead {
		return 0
	}
	return c.opt.WAL.Pending()
}

// walAppendLocked appends one frame to the log, degrading the client to
// memory-only spill on failure (disk full must not fail a flush).
func (c *ResilientClient) walAppendLocked(frame []byte) bool {
	if err := c.opt.WAL.Append(frame); err != nil {
		c.walBroken = true
		return false
	}
	return true
}

// walDrop books frames reclaimed by the log's retention as exact
// per-rank losses. It runs synchronously inside a WAL append, and every
// WAL append happens with c.mu held, so the client state is ours.
func (c *ResilientClient) walDrop(payloads [][]byte) {
	for _, frame := range payloads {
		rank := -1 // undecodable frames book against the unknown rank
		if _, n := binary.Uvarint(frame); n > 0 {
			if meta, _, err := trace.DecodeBatchMeta(frame[n:]); err == nil {
				rank = meta.Rank
			}
		}
		c.loseLocked(rank)
	}
}

// overLimitLocked reports whether admitting sz more bytes would push
// the in-memory queue past either spill bound.
func (c *ResilientClient) overLimitLocked(sz int64) bool {
	if len(c.queue) >= c.opt.MaxSpill {
		return true
	}
	return c.opt.MaxSpillBytes > 0 && c.spillBytes+sz > c.opt.MaxSpillBytes
}

// Consume implements interpose.Sink: it stamps the batch with the
// rank's next sequence number, encodes it, and enqueues it for the
// writer. It never blocks on the network. On overflow the queue
// migrates to the WAL when one is attached; otherwise the oldest batch
// not in flight is evicted (or, when nothing is evictable, the new
// batch is rejected) and counted lost.
func (c *ResilientClient) Consume(rank int, frags []trace.Fragment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.seqs[rank]
	c.seqs[rank] = seq + 1
	c.consumed++
	if c.closed {
		c.abandoned++
		return
	}
	ent := spillEntry{rank: rank}
	if c.tracer != nil {
		flushNS := c.clock.Now().UnixNano()
		ent.buf = encodeFrameTraced(rank, seq, c.traceID, flushNS, frags)
		if c.tracer.Sample(seq) {
			ent.key = obs.TraceKey{ClientID: c.traceID, Seq: seq}
			ent.sampled = true
			c.tracer.Record(ent.key, rank, flushNS, obs.HopFlush)
			c.tracer.Record(ent.key, rank, flushNS, obs.HopEnqueue)
		}
	} else {
		ent.buf = encodeFrame(rank, seq, frags)
	}
	sz := int64(len(ent.buf))

	if c.walMode && c.walUsableLocked() {
		// Disk mode: the log holds older frames, so this one must land
		// behind them. A failed append flips walBroken and falls through
		// to the memory path — still behind the log's content, because
		// the writer drains the log before the queue.
		if c.walAppendLocked(ent.buf) {
			c.noteDepthLocked()
			c.cond.Signal()
			return
		}
	}

	if c.overLimitLocked(sz) && c.walUsableLocked() {
		// Overflow with a WAL: migrate the backlog (minus any frame the
		// writer holds mid-send) to disk oldest-first, then follow it.
		start := 0
		if c.inFlightMem {
			start = 1
		}
		moved := 0
		for _, e := range c.queue[start:] {
			if !c.walAppendLocked(e.buf) {
				break
			}
			c.spillBytes -= int64(len(e.buf))
			moved++
		}
		if moved > 0 || len(c.queue) == start {
			c.walMode = true
			c.preWalHead = c.inFlightMem
		}
		c.queue = append(c.queue[:start], c.queue[start+moved:]...)
		if c.walUsableLocked() && c.walAppendLocked(ent.buf) {
			c.noteDepthLocked()
			c.cond.Signal()
			return
		}
		// Disk filled mid-migration; whatever moved is safe. The new
		// frame competes for memory below.
	}

	for c.overLimitLocked(sz) {
		start := 0
		if c.inFlightMem {
			start = 1
		}
		if len(c.queue) <= start {
			// Nothing evictable (the only queued batch is mid-write, or
			// the frame alone exceeds the byte bound): reject the
			// newcomer. Its sequence number is already burned, so the
			// server sees this loss as a gap like any eviction.
			c.loseLocked(rank)
			return
		}
		victim := c.queue[start]
		c.loseLocked(victim.rank)
		c.spillBytes -= int64(len(victim.buf))
		c.queue = append(c.queue[:start], c.queue[start+1:]...)
	}
	c.queue = append(c.queue, ent)
	c.spillBytes += sz
	c.noteDepthLocked()
	c.cond.Signal()
}

// loseLocked books one lost batch for rank. Caller holds mu.
func (c *ResilientClient) loseLocked(rank int) {
	c.lost++
	c.lostByRank[rank]++
	if c.met != nil {
		c.met.NetBatchesLost.Inc()
	}
}

// noteDepthLocked refreshes the spill gauges. Caller holds mu.
func (c *ResilientClient) noteDepthLocked() {
	d := len(c.queue)
	if d > c.spillPeak {
		c.spillPeak = d
	}
	if c.met != nil {
		c.met.NetSpillDepth.Set(int64(d))
		c.met.NetSpillPeak.Set(int64(c.spillPeak))
		c.met.NetSpillBytes.Set(c.spillBytes)
	}
}

// encodeFrame builds a length-prefixed wire frame around a sequenced
// batch encoding.
func encodeFrame(rank int, seq uint64, frags []trace.Fragment) []byte {
	buf := make([]byte, binary.MaxVarintLen64, binary.MaxVarintLen64+64+len(frags)*32)
	buf = trace.AppendBatchSeq(buf, rank, seq, frags)
	return prefixFrame(buf)
}

// encodeFrameTraced is encodeFrame for the traced (v4) wire variant.
func encodeFrameTraced(rank int, seq, clientID uint64, flushNS int64, frags []trace.Fragment) []byte {
	buf := make([]byte, binary.MaxVarintLen64, binary.MaxVarintLen64+64+len(frags)*32)
	buf = trace.AppendBatchTraced(buf, rank, seq, clientID, flushNS, frags)
	return prefixFrame(buf)
}

// prefixFrame turns a batch encoded after MaxVarintLen64 reserved bytes
// into a length-prefixed frame, reusing the reserved prefix.
func prefixFrame(buf []byte) []byte {
	payload := len(buf) - binary.MaxVarintLen64
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(payload))
	frame := buf[binary.MaxVarintLen64-hn:]
	copy(frame, hdr[:hn])
	return frame
}

// nextFrameLocked picks the next frame to send, honoring age order:
// the pre-WAL head first, then the log, then the memory queue. fromWAL
// reports the frame came from the log (acknowledge after send). ok is
// false when a race drained everything between the wait and here.
func (c *ResilientClient) nextFrameLocked() (head spillEntry, fromWAL, ok bool) {
	if len(c.queue) > 0 && (c.preWalHead || c.walPendingLocked() == 0) {
		c.inFlightMem = true
		return c.queue[0], false, true
	}
	if c.walPendingLocked() > 0 {
		payload, err := c.opt.WAL.Next()
		if err != nil {
			c.walFailLocked()
			return spillEntry{}, false, false
		}
		if payload == nil {
			return spillEntry{}, false, false
		}
		return spillEntry{rank: -1, buf: payload}, true, true
	}
	return spillEntry{}, false, false
}

// walFailLocked abandons an unreadable log: its pending records can
// never be delivered, so they are booked lost in bulk (their ranks are
// unrecoverable without the bytes that just failed to read).
func (c *ResilientClient) walFailLocked() {
	n := uint64(c.opt.WAL.Pending())
	c.lost += n
	if c.met != nil && n > 0 {
		c.met.NetBatchesLost.Add(n)
	}
	c.walDead = true
	c.walMode = false
	c.preWalHead = false
}

// writeLoop is the single writer: it drains the spill queue (and the
// WAL, oldest first) in order, (re)connecting as needed. A frame is
// popped — or its log record acknowledged — only after its write fully
// succeeds, so a connection that dies mid-frame retransmits the same
// frame on the next connection — safe, because the server rejects the
// torn copy, and duplicate-safe for timeout retries because the server
// dedups by sequence number.
func (c *ResilientClient) writeLoop() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && c.walPendingLocked() == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.shutdownLocked()
			c.mu.Unlock()
			return
		}
		head, fromWAL, ok := c.nextFrameLocked()
		if !ok {
			c.mu.Unlock()
			continue
		}
		c.inFlight = true
		frame := head.buf
		conn := c.conn
		c.mu.Unlock()

		if conn == nil {
			if conn = c.connect(); conn == nil {
				continue // closed during backoff; loop top persists/abandons
			}
		}
		if c.opt.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
		}
		_, err := conn.Write(frame)

		c.mu.Lock()
		c.inFlight = false
		if err == nil {
			if fromWAL {
				c.opt.WAL.Ack()
				if c.walPendingLocked() == 0 {
					// The log drained: exit disk mode; new frames queue in
					// memory again.
					c.walMode = false
				}
			} else {
				c.queue = c.queue[1:]
				c.spillBytes -= int64(len(frame))
				c.inFlightMem = false
				c.preWalHead = false
			}
			c.sent++
			if c.met != nil {
				c.met.NetBatchesSent.Inc()
			}
			if head.sampled && c.tracer != nil {
				// enqueue→write is the spill/redial dwell.
				c.tracer.Record(head.key, head.rank, 0, obs.HopWrite)
			}
			c.noteDepthLocked()
			c.mu.Unlock()
			continue
		}
		c.inFlightMem = false
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			c.timeouts++
			if c.met != nil {
				c.met.NetWriteTimeouts.Inc()
			}
		}
		c.conn = nil
		c.mu.Unlock()
		conn.Close()
		// The head frame stays queued (or unacknowledged in the log) and
		// is retried on a new connection.
	}
}

// shutdownLocked disposes of the backlog at close: with a usable WAL
// the queue is persisted for the next generation to replay; without
// one (or when the disk is failing) it is counted abandoned, not
// silently dropped. The pre-WAL head is never persisted — it is older
// than the log's content, and an out-of-order replay would be
// dedup-suppressed server-side instead of delivered.
func (c *ResilientClient) shutdownLocked() {
	walOK := c.walUsableLocked()
	for i, e := range c.queue {
		if i == 0 && c.preWalHead {
			c.abandoned++
			continue
		}
		if walOK {
			if c.walAppendLocked(e.buf) {
				c.persisted++
				continue
			}
			walOK = false
		}
		c.abandoned++
	}
	c.queue = nil
	c.spillBytes = 0
	c.noteDepthLocked()
}

// connect dials with jittered exponential backoff until it succeeds or
// the client closes. It returns the new connection, or nil when closed.
func (c *ResilientClient) connect() net.Conn {
	delay := c.opt.BackoffBase
	for {
		select {
		case <-c.closeCh:
			return nil
		default:
		}
		c.mu.Lock()
		c.dials++
		met := c.met
		c.mu.Unlock()
		if met != nil {
			met.NetDials.Inc()
		}
		conn, err := c.dial()
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return nil
			}
			c.conn = conn
			c.connects++
			again := c.everConnected
			c.everConnected = true
			if again {
				c.reconnects++
			}
			c.mu.Unlock()
			if met != nil {
				met.NetConnects.Inc()
				if again {
					met.NetReconnects.Inc()
				}
			}
			return conn
		}
		d := delay
		if j := c.opt.Jitter; j > 0 {
			d = time.Duration(float64(d) * (1 + j*(2*c.rand()-1)))
		}
		select {
		case <-c.clock.After(d):
		case <-c.closeCh:
			return nil
		}
		delay *= 2
		if delay > c.opt.BackoffMax {
			delay = c.opt.BackoffMax
		}
	}
}

// Drain blocks until the spill queue and the WAL are empty (every
// consumed batch sent or already counted lost) or timeout elapses,
// reporting success. Call before Close for a graceful shutdown with
// zero abandonment.
func (c *ResilientClient) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		empty := len(c.queue) == 0 && !c.inFlight && c.walPendingLocked() == 0
		c.mu.Unlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the writer and closes any live connection. With a WAL
// attached, still-queued batches are persisted to it (and the log
// synced and closed) so the next generation replays them; without one
// they are counted abandoned, not silently dropped. Use Drain first to
// deliver them instead.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	conn := c.conn
	c.conn = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		conn.Close() // unblock an in-flight write
	}
	<-c.done
	if c.opt.WAL != nil {
		_ = c.opt.WAL.Close()
	}
	return nil
}

// Stats snapshots the loss accounting.
func (c *ResilientClient) Stats() ResilientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	by := make(map[int]uint64, len(c.lostByRank))
	for r, n := range c.lostByRank {
		by[r] = n
	}
	return ResilientStats{
		Consumed:      c.consumed,
		Sent:          c.sent,
		Lost:          c.lost,
		Abandoned:     c.abandoned,
		Persisted:     c.persisted,
		Dials:         c.dials,
		Connects:      c.connects,
		Reconnects:    c.reconnects,
		WriteTimeouts: c.timeouts,
		SpillDepth:    len(c.queue),
		SpillPeak:     c.spillPeak,
		SpillBytes:    c.spillBytes,
		WALPending:    c.walPendingLocked(),
		WALBroken:     c.walBroken || c.walDead,
		LostByRank:    by,
	}
}
