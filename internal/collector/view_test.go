package collector

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// TestMergedViewDeltaEquivalenceFuzz pins the delta-append merged view
// under multi-server pools: random bursts land on 2-4 servers, and after
// every burst the pool's incremental RunWindow must match a cold batch
// analyzer run over the same view graph bit for bit, the view's content
// must stay the exact multiset union of the server graphs, and — the
// point of the whole exercise — warm cross-server elements must keep
// their generation epoch across refreshes, so the incremental analysis
// planes never go cold. Half the schedules flip the DisableDeltaView
// hatch mid-run, which must force a clean rebase on re-enable.
func TestMergedViewDeltaEquivalenceFuzz(t *testing.T) {
	schedules := 50
	if testing.Short() {
		schedules = 12
	}
	var advances, rebases atomic.Uint64
	t.Cleanup(func() {
		if advances.Load() == 0 {
			t.Errorf("no view cursor advances across %d schedules: delta-append path never ran", schedules)
		}
		if rebases.Load() == 0 {
			t.Errorf("no view epoch rebases across %d schedules: rebase path never ran", schedules)
		}
	})
	for sched := 0; sched < schedules; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			runViewSchedule(t, int64(13400+sched), &advances, &rebases)
		})
	}
}

func runViewSchedule(t *testing.T, seed int64, advances, rebases *atomic.Uint64) {
	rng := rand.New(rand.NewSource(seed))
	ranks := 4 + rng.Intn(5)

	opt := DefaultOptions()
	opt.Servers = 2 + rng.Intn(3)
	opt.Period = 10 * sim.Millisecond
	opt.Overlap = 5 * sim.Millisecond
	opt.Detect.Window = sim.Duration(1+rng.Intn(3)) * sim.Millisecond
	opt.Detect.Cluster.MinFragments = 2 + rng.Intn(3)
	p := NewPool(ranks, opt)
	defer p.Close()
	defer func() {
		advances.Add(p.met.ViewCursorAdvances.Load())
		rebases.Add(p.met.ViewEpochRebases.Load())
	}()
	useHatch := seed%2 == 0

	clock := make([]int64, ranks)
	edges := []trace.EdgeKey{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1}}

	// Epochs of view elements observed after they went multi-server
	// (owned): in a hatch-free schedule they must never move again,
	// because servers only ever append.
	warmEdge := map[trace.EdgeKey]uint64{}
	warmVert := map[uint64]uint64{}

	bursts := 5 + rng.Intn(5)
	for b := 0; b < bursts; b++ {
		for rank := 0; rank < ranks; rank++ {
			n := 3 + rng.Intn(15)
			batch := make([]trace.Fragment, 0, n)
			for i := 0; i < n; i++ {
				el := int64(300_000 + rng.Intn(900_000))
				ek := edges[rng.Intn(len(edges))]
				f := trace.Fragment{
					Rank: rank, Kind: trace.Comp, From: ek.From, State: ek.To,
					Start: clock[rank], Elapsed: el,
					Counters: trace.CountersView{TotIns: uint64(1+rng.Intn(4)) * 200_000},
				}
				if rng.Intn(6) == 0 {
					f.Kind = trace.Comm
					f.From = 0
					f.State = uint64(10 + rng.Intn(2))
					f.Args = trace.Args{Op: trace.Op("Allreduce"), Bytes: 1 << uint(rng.Intn(8))}
				}
				clock[rank] += el
				batch = append(batch, f)
			}
			p.Consume(rank, batch)
		}

		hatched := useHatch && b == bursts/2
		if hatched {
			p.opt.DisableDeltaView = true
		}

		ws := int64(rng.Intn(10)) * 1_000_000
		we := ws + int64(5+rng.Intn(20))*1_000_000
		got := p.RunWindow(ws, we)

		// The batch reference runs over the very same view graph the pool
		// just analyzed, so the comparison isolates the analyzer planes
		// from the merge order (which is pinned by the multiset check).
		bopt := p.opt.Detect
		bopt.DisableIncremental = true
		bopt.Outages = p.seq.Outages()
		want := detect.NewAnalyzer().RunWindow(p.view.graph, p.ranks, bopt, ws, we)
		sameDetectResult(t, b, got, want)
		assertViewMatchesMerge(t, p, p.view.graph)

		if hatched {
			// Hatch drops the merge state: every element must rebase on
			// re-enable, so prior epoch observations are void.
			warmEdge = map[trace.EdgeKey]uint64{}
			warmVert = map[uint64]uint64{}
			p.opt.DisableDeltaView = false
			continue
		}
		for k, elem := range p.view.edgeElems {
			if !elem.owned {
				continue
			}
			ep := p.view.graph.Edge(k).Gen.Epoch
			if prev, ok := warmEdge[k]; ok && prev != ep {
				t.Fatalf("burst %d: warm edge %v epoch moved %d -> %d", b, k, prev, ep)
			}
			warmEdge[k] = ep
		}
		for k, elem := range p.view.vertElems {
			if !elem.owned {
				continue
			}
			ep := p.view.graph.Vertex(k).Gen.Epoch
			if prev, ok := warmVert[k]; ok && prev != ep {
				t.Fatalf("burst %d: warm vertex %d epoch moved %d -> %d", b, k, prev, ep)
			}
			warmVert[k] = ep
		}
	}
}

// TestMergedViewSingleServerEpochs pins the 1-server fast path: the view
// aliases the server's append log through PutEdgeLog/PutVertexLog, so
// element epochs survive even when the server's slice reallocates at a
// growth boundary — the regression that used to send every element back
// through the batch plane whenever append crossed a power of two.
func TestMergedViewSingleServerEpochs(t *testing.T) {
	opt := DefaultOptions()
	opt.Servers = 1
	opt.Detect.Window = sim.Millisecond
	p := NewPool(2, opt)
	defer p.Close()

	var clock int64
	feed := func(n int) {
		batch := make([]trace.Fragment, 0, n)
		for i := 0; i < n; i++ {
			el := int64(400_000)
			batch = append(batch, trace.Fragment{
				Rank: 0, Kind: trace.Comp, From: 1, State: 2,
				Start: clock, Elapsed: el,
				Counters: trace.CountersView{TotIns: 500_000},
			})
			clock += el
		}
		p.Consume(0, batch)
	}

	key := trace.EdgeKey{From: 1, To: 2}
	feed(3)
	p.RunWindow(0, 50_000_000)
	ep := p.view.graph.Edge(key).Gen.Epoch
	var gen stg.Gen
	// Push the server's slice through several reallocation boundaries.
	for i := 0; i < 6; i++ {
		feed(100)
		p.RunWindow(0, 50_000_000)
		e := p.view.graph.Edge(key)
		if e.Gen.Epoch != ep {
			t.Fatalf("grow %d: single-server edge epoch moved %d -> %d", i, ep, e.Gen.Epoch)
		}
		if !gen.Before(e.Gen) {
			t.Fatalf("grow %d: view generation went backwards", i)
		}
		gen = e.Gen
	}
	if p.met.ViewEpochRebases.Load() != 0 {
		t.Fatalf("single-server pool rebased %d times; want 0", p.met.ViewEpochRebases.Load())
	}
}
