package collector

import (
	"sync"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// ShardedMonitor is the online loop over a rank-sharded tier: it tracks
// the global virtual-time watermark across every rank (whichever shard
// the rank reports through), and when a window completes everywhere it
// fans the analysis out to the per-shard planes and spatially merges
// the results — the merged regions, not any single shard's, drive
// event reporting and progressive counter arming, because the regions
// worth escalating for are exactly the ones that may straddle shards.
// Unlike Monitor it keeps no graph of its own: the planes hold the
// resident data, and their persistent analyzers stay warm across
// windows.
type ShardedMonitor struct {
	tier *ShardedPool
	opt  MonitorOptions

	mu        sync.Mutex
	rankHigh  map[int]sim.Time
	nextStart sim.Time
	events    []Event
	stage     int
}

// NewShardedMonitor wraps a sharded tier with the online analysis
// loop. The per-window detection options are the tier's (its planes
// run them); MonitorOptions contributes the windowing, event filters
// and arming policy.
func NewShardedMonitor(tier *ShardedPool, opt MonitorOptions) *ShardedMonitor {
	if opt.Ranks <= 0 {
		opt.Ranks = tier.ranks
	}
	if opt.Period <= 0 {
		opt.Period = 15 * sim.Second
	}
	if opt.Overlap <= 0 || opt.Overlap >= opt.Period {
		opt.Overlap = opt.Period / 2
	}
	if opt.MaxStage <= 0 {
		opt.MaxStage = 3
	}
	return &ShardedMonitor{
		tier:     tier,
		opt:      opt,
		rankHigh: make(map[int]sim.Time),
		stage:    1,
	}
}

// Metrics returns the tier-wide observability surface.
func (m *ShardedMonitor) Metrics() *Metrics { return m.tier.met }

// Tier returns the wrapped sharded pool.
func (m *ShardedMonitor) Tier() *ShardedPool { return m.tier }

// Consume implements interpose.Sink: route to the owning plane, then
// advance the watermark and analyze completed windows.
func (m *ShardedMonitor) Consume(rank int, frags []trace.Fragment) {
	m.tier.Consume(rank, frags)
	m.observe(rank, frags)
}

// ConsumeSized mirrors Consume for pre-measured wire batches.
func (m *ShardedMonitor) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	m.tier.ConsumeSized(rank, frags, bytes)
	m.observe(rank, frags)
}

// ConsumeTraced mirrors ConsumeSized for sampled traced batches.
func (m *ShardedMonitor) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	m.tier.ConsumeTraced(rank, frags, bytes, tc)
	m.observe(rank, frags)
}

func (m *ShardedMonitor) observe(rank int, frags []trace.Fragment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	high := m.rankHigh[rank]
	for i := range frags {
		if e := sim.Time(frags[i].Start + frags[i].Elapsed); e > high {
			high = e
		}
	}
	m.rankHigh[rank] = high
	m.analyzeReady()
}

func (m *ShardedMonitor) watermarkLocked() sim.Time {
	if len(m.rankHigh) < m.opt.Ranks {
		return 0
	}
	var min sim.Time = 1 << 62
	for _, t := range m.rankHigh {
		if t < min {
			min = t
		}
	}
	return min
}

func (m *ShardedMonitor) analyzeReady() {
	stride := m.opt.Period - m.opt.Overlap
	for {
		end := m.nextStart.Add(m.opt.Period)
		if m.watermarkLocked() < end {
			return
		}
		m.analyzeWindowLocked(m.nextStart, end)
		m.nextStart = m.nextStart.Add(stride)
	}
}

func (m *ShardedMonitor) analyzeWindowLocked(start, end sim.Time) {
	res := m.tier.RunWindow(int64(start), int64(end))
	classOK := func(c detect.Class) bool {
		if len(m.opt.Classes) == 0 {
			return true
		}
		for _, want := range m.opt.Classes {
			if c == want {
				return true
			}
		}
		return false
	}
	var regions []detect.Region
	for _, reg := range res.Regions {
		if classOK(reg.Class) && sim.Duration(reg.LossNS) >= m.opt.MinRegionLoss {
			regions = append(regions, reg)
		}
	}
	if len(regions) == 0 {
		return
	}
	if m.stage < m.opt.MaxStage {
		m.stage++
		armed := m.tier.Armed.Get()
		switch m.stage {
		case 2:
			armed |= sim.GroupBackend
		default:
			armed |= sim.GroupMemory | sim.GroupExtra
		}
		m.tier.Armed.Set(armed)
	}
	m.events = append(m.events, Event{
		WindowStart: start,
		WindowEnd:   end,
		Regions:     regions,
		ArmedAfter:  m.tier.Armed.Get(),
		Stage:       m.stage,
	})
}

// Flush analyzes any remaining partial window at the end of the run.
func (m *ShardedMonitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max sim.Time
	for _, t := range m.rankHigh {
		if t > max {
			max = t
		}
	}
	for m.nextStart < max {
		m.analyzeWindowLocked(m.nextStart, m.nextStart.Add(m.opt.Period))
		m.nextStart = m.nextStart.Add(m.opt.Period - m.opt.Overlap)
	}
}

// Drain returns the events recorded so far and clears the queue.
func (m *ShardedMonitor) Drain() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.events
	m.events = nil
	return out
}

// Stage returns the current progressive stage.
func (m *ShardedMonitor) Stage() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stage
}

// WireSink returns the sink one shard's wire server feeds when a
// monitor fronts the tier: delivery goes to the shard's plane, the
// watermark advances globally, and the hello carries the shard map.
func (m *ShardedMonitor) WireSink(shard int) *MonitorShardSink {
	return &MonitorShardSink{sink: m.tier.WireSink(shard), mon: m}
}

// MonitorShardSink is a ShardSink that also drives the monitor's
// watermark, so wire-delivered batches tick windows exactly like
// in-process ones.
type MonitorShardSink struct {
	sink *ShardSink
	mon  *ShardedMonitor
}

// Consume implements interpose.Sink.
func (k *MonitorShardSink) Consume(rank int, frags []trace.Fragment) {
	k.sink.Consume(rank, frags)
	k.mon.observe(rank, frags)
}

// ConsumeSized mirrors Consume for pre-measured wire batches.
func (k *MonitorShardSink) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	k.sink.ConsumeSized(rank, frags, bytes)
	k.mon.observe(rank, frags)
}

// ConsumeTraced mirrors ConsumeSized for sampled traced batches.
func (k *MonitorShardSink) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	k.sink.ConsumeTraced(rank, frags, bytes, tc)
	k.mon.observe(rank, frags)
}

// Metrics exposes the shared tier surface.
func (k *MonitorShardSink) Metrics() *Metrics { return k.sink.Metrics() }

// SeqState returns the shard's tracker.
func (k *MonitorShardSink) SeqState() *SeqTracker { return k.sink.SeqState() }

// Journal returns the shard's delivery journal.
func (k *MonitorShardSink) Journal() *wal.Log { return k.sink.Journal() }

// Hello returns the current shard map for the wire handshake.
func (k *MonitorShardSink) Hello() (uint64, []string, bool) { return k.sink.Hello() }
