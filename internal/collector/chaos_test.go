package collector

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"vapro/internal/detect"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// listenRetry rebinds addr, retrying briefly: the kernel can lag a few
// milliseconds releasing a just-closed listening port.
func listenRetry(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 200; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("could not rebind %s: %v", addr, lastErr)
	return nil
}

// allFragments flattens a graph into one slice.
func allFragments(g *stg.Graph) []trace.Fragment {
	var out []trace.Fragment
	for _, e := range g.Edges() {
		out = append(out, e.Fragments...)
	}
	for _, v := range g.Vertices() {
		out = append(out, v.Fragments...)
	}
	return out
}

// sortFragments orders fragments canonically so two multisets compare
// (and feed the analysis) independent of arrival interleaving.
func sortFragments(fs []trace.Fragment) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return fmt.Sprintf("%+v", a) < fmt.Sprintf("%+v", b)
	})
}

// TestChaosSoakServerRestarts is the fault-tolerance soak: four ranks
// push batches through resilient clients while the wire server is
// killed and restarted five times under load. It asserts the plane's
// core guarantees:
//
//   - no deadlock (the test completes),
//   - bounded memory (spill never exceeds its configured cap),
//   - exact loss accounting (every consumed batch is either delivered
//     or counted in a sequence gap: consumed == delivered + gaps),
//   - the analysis over the delivered subset is bit-identical however
//     that subset is viewed (live pool graph vs recorded stream).
func TestChaosSoakServerRestarts(t *testing.T) {
	const ranks = 4
	const maxSpill = 8
	pool := NewPool(ranks, DefaultOptions())
	rec := NewRecordingSink(pool)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := ServeWire(ln, rec)
	srv.SetDrainTimeout(20 * time.Millisecond)
	met := pool.Metrics()

	clients := make([]*ResilientClient, ranks)
	for r := range clients {
		clients[r] = NewResilientClient(
			func() (net.Conn, error) { return net.Dial("tcp", addr) },
			ResilientOptions{
				BackoffBase: 500 * time.Microsecond,
				BackoffMax:  5 * time.Millisecond,
				MaxSpill:    maxSpill,
			})
		clients[r].SetMetrics(met)
		defer clients[r].Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				clients[rank].Consume(rank, []trace.Fragment{frag(rank, int64(n)*1000, 500)})
				time.Sleep(200 * time.Microsecond)
			}
		}(r)
	}

	// Five kill/restart cycles under sustained load, with a real outage
	// window between kill and rebind so spill queues overflow.
	for i := 0; i < 5; i++ {
		time.Sleep(25 * time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Fatalf("restart %d: close: %v", i+1, err)
		}
		time.Sleep(30 * time.Millisecond)
		ln = listenRetry(t, addr)
		srv = ServeWire(ln, rec)
		srv.SetDrainTimeout(20 * time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Graceful tail: drain every client, then send one sentinel batch
	// per rank so the server sees a frame past any lost sequence
	// numbers — that is what realizes trailing losses as gaps.
	for r, c := range clients {
		if !c.Drain(10 * time.Second) {
			t.Fatalf("rank %d never drained: %+v", r, c.Stats())
		}
		c.Consume(r, []trace.Fragment{frag(r, 1<<40, 500)})
		if !c.Drain(10 * time.Second) {
			t.Fatalf("rank %d sentinel never drained", r)
		}
	}

	var consumed, lost, reconnects uint64
	for r, c := range clients {
		st := c.Stats()
		consumed += st.Consumed
		lost += st.Lost
		reconnects += st.Reconnects
		if st.Abandoned != 0 {
			t.Fatalf("rank %d abandoned %d batches after a clean drain", r, st.Abandoned)
		}
		if st.SpillPeak > maxSpill {
			t.Fatalf("rank %d spill peak %d exceeds cap %d", r, st.SpillPeak, maxSpill)
		}
	}
	if reconnects < 5 {
		t.Fatalf("reconnects = %d across 5 server restarts, want >= 5", reconnects)
	}
	if lost == 0 {
		t.Fatal("soak produced no spill evictions; outage windows too short to exercise loss")
	}

	// Exact loss accounting: consumed == delivered + gaps, where
	// delivered and gaps live in the pool's surface and therefore
	// survived all five server instances. Delivery of the sentinels can
	// trail the drain by a beat, so poll for balance.
	balanced := func() bool {
		return consumed == met.WireFrames.Load()+pool.SeqState().GapFrames()
	}
	if !waitUntil(10*time.Second, balanced) {
		t.Fatalf("books never balanced: consumed %d != delivered %d + gaps %d (dups %d)",
			consumed, met.WireFrames.Load(), pool.SeqState().GapFrames(), pool.SeqState().Dups())
	}
	if gaps := pool.SeqState().GapFrames(); gaps < lost {
		t.Fatalf("server saw %d gap frames, client evicted %d — gaps must cover every eviction", gaps, lost)
	}
	srv.Close()

	// The delivered subset is one well-defined data set: the live
	// pool's merged graph and the recorded stream hold the same
	// fragment multiset...
	poolFrags := allFragments(pool.Graph())
	recording := rec.Recording(ranks, 1<<41, nil)
	recFrags := allFragments(recording.Graph())
	sortFragments(poolFrags)
	sortFragments(recFrags)
	if len(poolFrags) != len(recFrags) {
		t.Fatalf("pool holds %d fragments, recording %d", len(poolFrags), len(recFrags))
	}
	for i := range poolFrags {
		if poolFrags[i] != recFrags[i] {
			t.Fatalf("fragment %d differs between pool and recording:\n %+v\n %+v",
				i, poolFrags[i], recFrags[i])
		}
	}

	// ...and analyzing it is deterministic: two independent passes over
	// canonically ordered copies produce bit-identical heat maps.
	opt := detect.DefaultOptions()
	run := func(fs []trace.Fragment) *detect.Result {
		g := stg.New()
		g.AddBatch(fs)
		return detect.Run(g, ranks, opt)
	}
	res1, res2 := run(poolFrags), run(recFrags)
	if len(res1.Maps) != len(res2.Maps) {
		t.Fatalf("map count differs: %d vs %d", len(res1.Maps), len(res2.Maps))
	}
	for class, h1 := range res1.Maps {
		h2 := res2.Maps[class]
		if h2 == nil || len(h1.Cells) != len(h2.Cells) {
			t.Fatalf("class %v maps differ in shape", class)
		}
		for i := range h1.Cells {
			v1, v2 := h1.Cells[i], h2.Cells[i]
			if v1 != v2 && !(v1 != v1 && v2 != v2) { // NaN == NaN for our purposes
				t.Fatalf("class %v cell %d: %v vs %v", class, i, v1, v2)
			}
		}
	}
}
