package collector

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vapro/internal/faults"
	"vapro/internal/obs"
	"vapro/internal/trace"
)

// TestTracedJourneyDeterministic reconstructs one sampled batch's full
// journey under the fake clock: the client flushes while the collector
// is unreachable, spills through two backoff rounds, redials, and the
// batch then flows deliver→stage→drain→analyze. Every hop timestamp is
// pinned to the fault clock, so the spill/redial dwell (enqueue→write)
// is EXACTLY the backoff the schedule imposed — the trace surface
// measures the fault, not just notices it.
func TestTracedJourneyDeterministic(t *testing.T) {
	fc := faults.NewFakeClock()
	epoch := fc.Now().UnixNano()

	pool := NewPool(1, DefaultOptions())
	defer pool.Close()
	tr := pool.Metrics().Trace
	tr.SetNow(func() int64 { return fc.Now().UnixNano() })
	tr.SetInterval(1) // sample every batch: this test wants the exemplar

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWire(ln, pool)
	defer srv.Close()

	// The collector is down for the first two dials.
	var fails atomic.Int32
	fails.Store(2)
	dial := func() (net.Conn, error) {
		if fails.Add(-1) >= 0 {
			return nil, errors.New("collector down")
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		Jitter:      0.2,
		Clock:       fc,
		Rand:        func() float64 { return 0.5 }, // jitter term exactly zero
	})
	defer c.Close()
	c.SetMetrics(pool.Metrics())
	// In-process deployment shape: client and server share one tracer,
	// so a journey's client-side and server-side hops land in one ring.
	c.EnableTrace(7, tr)

	c.Consume(0, []trace.Fragment{frag(0, 0, 500)})

	// Flush and enqueue stamp at the epoch, before any dial resolves.
	key := obs.TraceKey{ClientID: 7, Seq: 0}
	if !waitUntil(2*time.Second, func() bool {
		for _, j := range tr.Snapshot().Journeys {
			if j.Key == key && j.Hops[obs.HopEnqueue] != 0 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("flush/enqueue hops never stamped: %+v", tr.Snapshot().Journeys)
	}

	// Walk the writer through the two failed dials: 50ms, then 100ms.
	for i, d := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond} {
		if !fc.BlockUntilWaiters(1, 2*time.Second) {
			t.Fatalf("backoff %d: writer never slept", i+1)
		}
		fc.Advance(d)
	}
	// Third dial succeeds; the frame is written and delivered.
	if !waitUntil(2*time.Second, func() bool { return pool.FragmentCount() == 1 }) {
		t.Fatalf("batch never delivered: %+v", c.Stats())
	}
	// First analyzed tick closes the journey.
	if res := pool.WindowResults(); res == nil {
		t.Fatal("window analysis returned nothing")
	}

	snap := tr.Snapshot()
	if len(snap.Journeys) != 1 {
		t.Fatalf("journeys: %+v", snap.Journeys)
	}
	j := snap.Journeys[0]
	if j.Key != key || j.Rank != 0 {
		t.Fatalf("journey identity: %+v", j)
	}
	if j.FlushNS != epoch {
		t.Fatalf("flush ns %d, want epoch %d", j.FlushNS, epoch)
	}
	// Every hop reached, in pipeline order.
	for hop := 0; hop < obs.NumHops; hop++ {
		if j.Hops[hop] == 0 {
			t.Fatalf("hop %s unreached: %+v", obs.HopNames[hop], j.Hops)
		}
		if hop > 0 && j.Hops[hop] < j.Hops[hop-1] {
			t.Fatalf("hop %s precedes %s: %+v", obs.HopNames[hop], obs.HopNames[hop-1], j.Hops)
		}
	}
	// The spill/redial dwell is exactly the imposed backoff: 150ms.
	dwell := j.Hops[obs.HopWrite] - j.Hops[obs.HopEnqueue]
	if want := int64(150 * time.Millisecond); dwell != want {
		t.Fatalf("spill dwell %v, want %v", time.Duration(dwell), time.Duration(want))
	}
	// Client-side hops all carry the flush timestamp (epoch); server
	// hops stamp after the redial, i.e. 150ms later on the fault clock.
	if j.Hops[obs.HopFlush] != epoch || j.Hops[obs.HopEnqueue] != epoch {
		t.Fatalf("client hops drifted: %+v", j.Hops)
	}
	if j.Hops[obs.HopDeliver] != epoch+int64(150*time.Millisecond) {
		t.Fatalf("deliver hop %d, want %d", j.Hops[obs.HopDeliver], epoch+int64(150*time.Millisecond))
	}
	if got := j.SpanNS(); got != j.Hops[obs.HopAnalyze]-epoch {
		t.Fatalf("span %d", got)
	}
	// The trace metrics surface agrees: with one shared tracer the batch
	// passes the sampler twice (client flush, server deliver) but still
	// lands in a single journey.
	ms := pool.Metrics().Registry.Snapshot()
	if m := ms.Get("vapro_trace_sampled_total"); m == nil || m.Value != 2 {
		t.Fatalf("sampled counter: %+v", m)
	}
	if m := ms.Get("vapro_trace_journeys"); m == nil || m.Value != 1 {
		t.Fatalf("journeys gauge: %+v", m)
	}
}

// TestTracedWireDispatch pins the server-side gating: traced frames
// from a sampled sequence take the exemplar path, unsampled and
// untraced frames do not touch the journey ring, and a v2 client mixed
// into a traced deployment keeps working.
func TestTracedWireDispatch(t *testing.T) {
	pool := NewPool(2, DefaultOptions())
	defer pool.Close()
	tr := pool.Metrics().Trace
	tr.SetInterval(2) // sample even sequence numbers only

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWire(ln, pool)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(buf []byte) {
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	// seq 2: traced + sampled → journey. seq 3: traced, unsampled.
	send(encodeFrameTraced(0, 2, 9, 111, []trace.Fragment{frag(0, 0, 100)}))
	send(encodeFrame(1, 2, []trace.Fragment{frag(1, 0, 100)})) // v2, even seq
	send(encodeFrameTraced(0, 3, 9, 222, []trace.Fragment{frag(0, 200, 100)}))

	if !waitUntil(2*time.Second, func() bool { return pool.FragmentCount() == 3 }) {
		t.Fatalf("frames not delivered: %d", pool.FragmentCount())
	}
	snap := tr.Snapshot()
	if len(snap.Journeys) != 1 {
		t.Fatalf("journeys: %+v", snap.Journeys)
	}
	j := snap.Journeys[0]
	if j.Key != (obs.TraceKey{ClientID: 9, Seq: 2}) || j.FlushNS != 111 {
		t.Fatalf("wrong exemplar: %+v", j)
	}
	if j.Hops[obs.HopDeliver] == 0 || j.Hops[obs.HopStage] == 0 {
		t.Fatalf("server hops missing: %+v", j.Hops)
	}
	// Only traced frames count into the sampler's totals: the v2 frame
	// with an even seq must not have been counted or sampled.
	if snap.Total != 2 || snap.Sampled != 1 {
		t.Fatalf("total=%d sampled=%d, want 2/1", snap.Total, snap.Sampled)
	}
}
