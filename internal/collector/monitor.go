package collector

import (
	"sync"

	"vapro/internal/cluster"
	"vapro/internal/detect"
	"vapro/internal/diagnose"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Monitor is the online analysis loop of Figure 8: as fragment batches
// stream in, it watches the virtual-time watermark, analyzes each
// completed (overlapped) window, reports detected variance immediately,
// and — when a window shows variance — progressively widens the armed
// counter groups so subsequent windows carry the counters the next
// diagnosis stage needs. This is the deployment mode of the real tool;
// the whole-run analysis in core.RunTraced is the offline equivalent.
//
// Wrap it around a Pool as the interpose.Sink:
//
//	pool := collector.NewPool(ranks, copt)
//	mon := collector.NewMonitor(pool, mopt)
//	... use mon as the sink for traced ranks ...
//	events := mon.Drain()
type Monitor struct {
	pool *Pool
	opt  MonitorOptions

	mu sync.Mutex
	// graph is the monitor's own incrementally merged STG: batches are
	// appended as they arrive, so a window analysis starts from the
	// current graph in O(1) instead of re-merging every server's graph
	// (the old per-window O(total fragments) rebuild).
	graph *stg.Graph
	// analyzer memoizes per-element clusterings across windows; only
	// elements that grew since the previous window are re-clustered.
	analyzer *detect.Analyzer
	// watermark is the minimum completed virtual time across ranks —
	// a window is analyzable once every rank has advanced past its
	// end.
	rankHigh  map[int]sim.Time
	nextStart sim.Time
	events    []Event
	stage     int

	// olsStreams holds each edge's warm per-cluster regression moments
	// (see monitor_ols.go), maintained by the analyzer's cluster-delta
	// hook. Guarded by olsMu, NOT m.mu: the hook fires from the window
	// analysis's worker pool while analyzeWindowLocked holds m.mu.
	olsMu      sync.Mutex
	olsStreams map[cluster.Key]*elemMoments
	olsFactors []diagnose.Factor
}

// MonitorOptions configures the online loop.
type MonitorOptions struct {
	// Ranks the monitor waits for before closing a window.
	Ranks int
	// Period and Overlap mirror the pool's analysis windows.
	Period, Overlap sim.Duration
	// Detect configures the per-window analysis.
	Detect detect.Options
	// MinRegionLoss filters reported regions: a region must have lost
	// at least this much time to trigger an event.
	MinRegionLoss sim.Duration
	// Classes selects which fragment classes may trigger events.
	// Defaults to computation and IO: communication "performance" is
	// elapsed-based and therefore wait-dominated (§3.3), which makes
	// it too jittery for unattended alerting; opt in explicitly when
	// network variance is the target.
	Classes []detect.Class
	// MaxStage caps how far the progressive arming may descend.
	MaxStage int
	// DisableStreamingOLS is the escape hatch for the streaming §4.2
	// quantification: when set, the monitor keeps no warm regression
	// moments and DiagnoseEvent quantifies with the batch QuantifyOLS
	// over the collected cluster populations (the legacy path). The two
	// paths are pinned equivalent by TestMonitorStreamingOLSEquivalence.
	DisableStreamingOLS bool
}

// DefaultMonitorOptions mirrors the offline defaults.
func DefaultMonitorOptions(ranks int) MonitorOptions {
	o := DefaultOptions()
	return MonitorOptions{
		Ranks:         ranks,
		Period:        o.Period,
		Overlap:       o.Overlap,
		Detect:        o.Detect,
		MinRegionLoss: 10 * sim.Millisecond,
		MaxStage:      3,
		Classes:       []detect.Class{detect.Computation, detect.IOClass},
	}
}

// Event is one online finding: a window analysis that detected variance,
// plus the counter-group action the monitor took in response.
type Event struct {
	WindowStart, WindowEnd sim.Time
	Regions                []detect.Region
	// ArmedAfter is the counter-group set active after this event
	// (widened when the monitor escalated a diagnosis stage).
	ArmedAfter sim.Group
	// Stage is the progressive stage the monitor is at after the event.
	Stage int
}

// NewMonitor wraps pool with an online analysis loop.
func NewMonitor(pool *Pool, opt MonitorOptions) *Monitor {
	if opt.Ranks <= 0 {
		opt.Ranks = pool.ranks
	}
	if opt.Period <= 0 {
		opt.Period = 15 * sim.Second
	}
	if opt.Overlap <= 0 || opt.Overlap >= opt.Period {
		opt.Overlap = opt.Period / 2
	}
	if opt.MaxStage <= 0 {
		opt.MaxStage = 3
	}
	m := &Monitor{
		pool:       pool,
		opt:        opt,
		graph:      stg.New(),
		analyzer:   detect.NewAnalyzer(),
		rankHigh:   make(map[int]sim.Time),
		stage:      1,
		olsStreams: make(map[cluster.Key]*elemMoments),
		olsFactors: olsFactorsFor(opt.MaxStage),
	}
	// The monitor's analyzer is where windows actually run with a
	// monitor in front: point the detect instrumentation and the
	// cache-derived metrics at it (replacing the pool's registrations).
	m.analyzer.SetMetrics(pool.met.Detect)
	m.analyzer.SetClusterDeltaHook(m.observeClustering)
	m.registerMonitorDerived()
	return m
}

// Metrics returns the observability surface shared with the wrapped
// pool; the wire server counts into it when a Monitor is the sink.
func (m *Monitor) Metrics() *Metrics { return m.pool.met }

// SeqState forwards the pool's sequence tracker so a wire server with a
// Monitor sink still accumulates gap accounting across restarts.
func (m *Monitor) SeqState() *SeqTracker { return m.pool.seq }

// Journal forwards the pool's delivery journal so a wire server with a
// Monitor sink journals exactly what it delivers.
func (m *Monitor) Journal() *wal.Log { return m.pool.Journal() }

// Consume implements interpose.Sink: forward to the pool, append to the
// monitor's merged graph, advance the rank watermark, and analyze any
// window every rank has passed.
func (m *Monitor) Consume(rank int, frags []trace.Fragment) {
	m.pool.Consume(rank, frags)
	m.observe(rank, frags)
}

// ConsumeSized mirrors Consume for the wire path: the pool books the
// payload size the wire server measured instead of re-encoding the
// batch.
func (m *Monitor) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	m.pool.ConsumeSized(rank, frags, bytes)
	m.observe(rank, frags)
}

// ConsumeTraced mirrors ConsumeSized for sampled traced batches: the
// provenance context rides through the pool's staging path while the
// monitor's own half proceeds unchanged.
func (m *Monitor) ConsumeTraced(rank int, frags []trace.Fragment, bytes int, tc TraceCtx) {
	m.pool.ConsumeTraced(rank, frags, bytes, tc)
	m.observe(rank, frags)
}

// observe is the monitor's own half of consumption: merge, advance the
// watermark, analyze completed windows.
func (m *Monitor) observe(rank int, frags []trace.Fragment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.graph.AddBatch(frags)
	high := m.rankHigh[rank]
	for i := range frags {
		if e := sim.Time(frags[i].Start + frags[i].Elapsed); e > high {
			high = e
		}
	}
	m.rankHigh[rank] = high
	m.analyzeReady()
}

// watermarkLocked returns the minimum high-water mark across all ranks
// seen so far (0 until every rank has reported at least once).
func (m *Monitor) watermarkLocked() sim.Time {
	if len(m.rankHigh) < m.opt.Ranks {
		return 0
	}
	var min sim.Time = 1 << 62
	for _, t := range m.rankHigh {
		if t < min {
			min = t
		}
	}
	return min
}

// analyzeReady runs the analysis for every window whose end the
// watermark has passed. Caller holds m.mu.
func (m *Monitor) analyzeReady() {
	stride := m.opt.Period - m.opt.Overlap
	for {
		end := m.nextStart.Add(m.opt.Period)
		if m.watermarkLocked() < end {
			return
		}
		m.analyzeWindowLocked(m.nextStart, end)
		m.nextStart = m.nextStart.Add(stride)
	}
}

func (m *Monitor) analyzeWindowLocked(start, end sim.Time) {
	// Clustering is memoized per element across the overlapped windows
	// (and normalization uses each element's full population, so the
	// per-window reference performance is the best fragment seen so
	// far, not just the window's best); the window only filters which
	// samples feed the heat map.
	dopt := m.opt.Detect
	dopt.Outages = m.pool.seq.Outages()
	res := m.analyzer.RunWindow(m.graph, m.opt.Ranks, dopt, int64(start), int64(end))
	// Journeys drained before this tick are now visible to analysis.
	m.pool.met.Trace.CompleteAnalyze()
	classOK := func(c detect.Class) bool {
		if len(m.opt.Classes) == 0 {
			return true
		}
		for _, want := range m.opt.Classes {
			if c == want {
				return true
			}
		}
		return false
	}
	var regions []detect.Region
	for _, reg := range res.Regions {
		if classOK(reg.Class) && sim.Duration(reg.LossNS) >= m.opt.MinRegionLoss {
			regions = append(regions, reg)
		}
	}
	if len(regions) == 0 {
		return
	}
	// Variance in this window: escalate one diagnosis stage by arming
	// the next counter groups, so the following windows carry the data
	// the finer factors need (§4.3's one-period-per-stage trade-off).
	if m.stage < m.opt.MaxStage {
		m.stage++
		armed := m.pool.Armed.Get()
		switch m.stage {
		case 2:
			armed |= sim.GroupBackend
		default:
			armed |= sim.GroupMemory | sim.GroupExtra
		}
		m.pool.Armed.Set(armed)
	}
	m.events = append(m.events, Event{
		WindowStart: start,
		WindowEnd:   end,
		Regions:     regions,
		ArmedAfter:  m.pool.Armed.Get(),
		Stage:       m.stage,
	})
}

// Flush analyzes any remaining partial window at the end of the run.
func (m *Monitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max sim.Time
	for _, t := range m.rankHigh {
		if t > max {
			max = t
		}
	}
	for m.nextStart < max {
		m.analyzeWindowLocked(m.nextStart, m.nextStart.Add(m.opt.Period))
		m.nextStart = m.nextStart.Add(m.opt.Period - m.opt.Overlap)
	}
}

// Drain returns the events recorded so far and clears the queue.
func (m *Monitor) Drain() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.events
	m.events = nil
	return out
}

// Stage returns the current progressive stage (1 until variance is
// first detected).
func (m *Monitor) Stage() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stage
}

// CacheStats reports the hit/miss counters of the monitor's memoized
// clustering layer: hits are window analyses that reused a previous
// window's clustering of an element that did not grow in between.
func (m *Monitor) CacheStats() (hits, misses uint64) {
	return m.analyzer.Cache().Stats()
}

// DiagnoseEvent runs the progressive diagnosis for an online event's
// top region against the monitor's accumulated data. Fragments are
// clustered per edge (reusing the clusterings the window analyses
// already memoized) so only comparable fixed-workload populations
// are differenced — mixing workload classes would misattribute their
// intrinsic differences as variance.
func (m *Monitor) DiagnoseEvent(ev *Event, opt diagnose.Options) *diagnose.Report {
	if len(ev.Regions) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var clusters [][]trace.Fragment
	var edges []*stg.Edge
	seen := map[trace.EdgeKey]bool{}
	for _, s := range ev.Regions[0].Samples {
		if !s.ClusterRef.IsEdge || seen[s.ClusterRef.Edge] {
			continue
		}
		seen[s.ClusterRef.Edge] = true
		e := m.graph.Edge(s.ClusterRef.Edge)
		if e == nil {
			continue
		}
		edges = append(edges, e)
		cl := m.analyzer.Cache().Run(cluster.EdgeKey(e.Key), e.Gen, e.Fragments, m.opt.Detect.Cluster)
		for ci := range cl.Clusters {
			if !cl.Clusters[ci].Fixed {
				continue
			}
			sub := make([]trace.Fragment, 0, len(cl.Clusters[ci].Members))
			for _, idx := range cl.Clusters[ci].Members {
				sub = append(sub, e.Fragments[idx])
			}
			clusters = append(clusters, sub)
		}
	}
	// When every involved edge has warm regression moments at the
	// current generation, the §4.2 quantification answers from them
	// instead of refitting over the resident populations; otherwise the
	// default batch QuantifyOLS runs unchanged.
	if q := m.streamQuantifier(edges); q != nil {
		opt.Quantifier = q
	}
	return diagnose.New(opt).Run(diagnose.SliceSource(clusters))
}
