package collector

import (
	"net"
	"sync"
	"testing"
	"time"

	"vapro/internal/trace"
)

// TestChaosShardServerKillRestart is the sharded tier's fault soak:
// 16 ranks stream through shard-aware resilient clients into 8 shard
// servers while one shard's wire server is killed and restarted (on a
// NEW port) twice under load. It asserts the scale-out plane's
// guarantees:
//
//   - surviving shards keep ticking: tier merges complete during the
//     outage and the survivors' planes keep growing,
//   - the restarted shard's ranks re-attach through the rebalanced
//     ShardMap (hello redirect), with no misrouted deliveries,
//   - exact loss accounting holds PER SHARD: every batch a shard's
//     clients consumed is either in that shard's plane or in that
//     shard's sequence-gap count.
func TestChaosShardServerKillRestart(t *testing.T) {
	const ranks, shards = 16, 8
	const maxSpill = 4
	tier := NewShardedPool(ranks, shards, shardTestOptions())
	defer tier.Close()
	met := tier.Metrics()

	srvs := make([]*WireServer, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srvs[i] = ServeWire(ln, tier.WireSink(i))
		srvs[i].SetDrainTimeout(20 * time.Millisecond)
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	if err := tier.Rebalance(addrs); err != nil {
		t.Fatal(err)
	}

	clients := make([]*ResilientClient, ranks)
	for r := range clients {
		clients[r] = NewResilientClient(
			ShardDialer(r, append([]string(nil), addrs...), met),
			ResilientOptions{
				BackoffBase: 500 * time.Microsecond,
				BackoffMax:  5 * time.Millisecond,
				MaxSpill:    maxSpill,
			})
		clients[r].SetMetrics(met)
		defer clients[r].Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				clients[rank].Consume(rank, []trace.Fragment{frag(rank, int64(n)*1000, 500)})
				time.Sleep(200 * time.Microsecond)
			}
		}(r)
	}

	victim := tier.Owner(0) // a shard that certainly owns ranks
	survivorCounts := func() map[int]int {
		out := make(map[int]int)
		for s := 0; s < shards; s++ {
			if s != victim {
				out[s] = tier.Plane(s).FragmentCount()
			}
		}
		return out
	}

	// Two kill/restart cycles, each restart on a fresh port published
	// by a shard-map rebalance (the production shape: a respawned
	// server rarely gets its old address back).
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(50 * time.Millisecond)
		before := survivorCounts()
		if err := srvs[victim].Close(); err != nil {
			t.Fatalf("cycle %d: close victim: %v", cycle, err)
		}
		// Outage window: victims spill and evict; survivors keep
		// ticking — the tier merge must complete with shard `victim`
		// contributing only what it already holds.
		time.Sleep(50 * time.Millisecond)
		if res := tier.RunWindow(0, 1<<40); res == nil {
			t.Fatalf("cycle %d: tier merge during outage returned nil", cycle)
		}
		grew := 0
		for s, n := range survivorCounts() {
			if n > before[s] {
				grew++
			}
		}
		if grew == 0 {
			t.Fatalf("cycle %d: no surviving shard grew during the outage", cycle)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[victim] = ln.Addr().String()
		srvs[victim] = ServeWire(ln, tier.WireSink(victim))
		srvs[victim].SetDrainTimeout(20 * time.Millisecond)
		if err := tier.Rebalance(addrs); err != nil {
			t.Fatal(err)
		}
	}

	// Re-attach: the victim shard's ranks must resume landing in its
	// plane through the rebalanced map.
	attachMark := tier.Plane(victim).FragmentCount()
	if !waitUntil(10*time.Second, func() bool {
		return tier.Plane(victim).FragmentCount() > attachMark
	}) {
		t.Fatal("victim shard's ranks never re-attached after restart")
	}

	time.Sleep(25 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Graceful tail: drain every client, then one sentinel batch per
	// rank so trailing losses realize as sequence gaps.
	for r, c := range clients {
		if !c.Drain(10 * time.Second) {
			t.Fatalf("rank %d never drained: %+v", r, c.Stats())
		}
		c.Consume(r, []trace.Fragment{frag(r, 1<<40, 500)})
		if !c.Drain(10 * time.Second) {
			t.Fatalf("rank %d sentinel never drained", r)
		}
	}

	// Per-shard exact loss accounting: what a shard's clients consumed
	// equals what its plane holds plus its tracker's gap count. Both
	// sides live on the plane, so they survived the wire-server
	// restarts. Delivery can trail the drain by a beat; poll.
	consumedBy := make([]uint64, shards)
	var lost uint64
	for r, c := range clients {
		st := c.Stats()
		consumedBy[tier.Owner(r)] += st.Consumed
		lost += st.Lost
		if st.SpillPeak > maxSpill {
			t.Fatalf("rank %d spill peak %d exceeds cap %d", r, st.SpillPeak, maxSpill)
		}
	}
	if lost == 0 {
		t.Fatal("soak produced no spill evictions; outage too short to exercise loss")
	}
	for s := 0; s < shards; s++ {
		s := s
		if !waitUntil(10*time.Second, func() bool {
			delivered := uint64(tier.Plane(s).Stats(0).Batches)
			return consumedBy[s] == delivered+tier.SeqStateFor(s).GapFrames()
		}) {
			t.Fatalf("shard %d books never balanced: consumed %d != delivered %d + gaps %d (dups %d)",
				s, consumedBy[s], tier.Plane(s).Stats(0).Batches,
				tier.SeqStateFor(s).GapFrames(), tier.SeqStateFor(s).Dups())
		}
	}
	if met.ShardMisroutes.Load() != 0 {
		t.Fatalf("misroutes = %d: a batch was delivered to a non-owning shard", met.ShardMisroutes.Load())
	}
	if met.ShardmapRebalances.Load() != 3 {
		t.Fatalf("rebalances = %d, want 3 (initial + two restarts)", met.ShardmapRebalances.Load())
	}
}
