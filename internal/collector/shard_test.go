package collector

import (
	"net"
	"strings"
	"testing"
	"time"

	"vapro/internal/sim"
	"vapro/internal/trace"
)

// TestShardOwnerStable pins the assignment as a pure function of
// (rank, shards): every client and server must compute the same owner
// from the shard count alone, forever.
func TestShardOwnerStable(t *testing.T) {
	for r := 0; r < 100; r++ {
		if ShardOwner(r, 1) != 0 {
			t.Fatalf("ShardOwner(%d, 1) != 0", r)
		}
	}
	// splitmix64 is fixed; pin a few values so an accidental hash swap
	// cannot slip by.
	pins := map[[2]int]int{
		{0, 8}: int(splitmix64(0) % 8),
		{1, 8}: int(splitmix64(1) % 8),
		{7, 4}: int(splitmix64(7) % 4),
	}
	for k, want := range pins {
		if got := ShardOwner(k[0], k[1]); got != want {
			t.Fatalf("ShardOwner(%d,%d) = %d, want %d", k[0], k[1], got, want)
		}
	}
	// The map's Owner agrees with the free function.
	m := ShardMap{Addrs: make([]string, 8)}
	for r := 0; r < 256; r++ {
		if m.Owner(r) != ShardOwner(r, 8) {
			t.Fatalf("ShardMap.Owner disagrees at rank %d", r)
		}
	}
	// 2048 ranks over 8 shards: the stable hash must not starve any
	// shard (balance within a loose bound is all we need).
	counts := make([]int, 8)
	for r := 0; r < 2048; r++ {
		counts[ShardOwner(r, 8)]++
	}
	for i, c := range counts {
		if c < 128 || c > 384 {
			t.Fatalf("shard %d owns %d of 2048 ranks (want 128..384)", i, c)
		}
	}
}

func shardTestOptions() Options {
	opt := DefaultOptions()
	opt.Period = 20 * sim.Millisecond
	opt.Overlap = 10 * sim.Millisecond
	opt.Detect.Window = 5 * sim.Millisecond
	return opt
}

// TestShardedPoolRouting: in-process consumption lands every rank's
// batches in its owning plane, and the tier-level aggregates see all
// of it.
func TestShardedPoolRouting(t *testing.T) {
	const ranks, shards = 16, 4
	tier := NewShardedPool(ranks, shards, shardTestOptions())
	defer tier.Close()
	perRank := 10
	for r := 0; r < ranks; r++ {
		for i := 0; i < perRank; i++ {
			tier.Consume(r, []trace.Fragment{frag(r, int64(i)*1_000_000, 500_000)})
		}
	}
	if got := tier.FragmentCount(); got != ranks*perRank {
		t.Fatalf("tier fragments = %d, want %d", got, ranks*perRank)
	}
	for s := 0; s < shards; s++ {
		want := 0
		for r := 0; r < ranks; r++ {
			if tier.Owner(r) == s {
				want += perRank
			}
		}
		if got := tier.Plane(s).FragmentCount(); got != want {
			t.Fatalf("shard %d fragments = %d, want %d", s, got, want)
		}
	}
	if tier.Metrics().ShardMisroutes.Load() != 0 {
		t.Fatal("in-process routing counted misroutes")
	}
}

// TestShardHelloRedirect: a client bootstrapped at the wrong shard's
// address reads the hello, redials its owner, and its batches land in
// the owning plane — no misroutes, one redirect.
func TestShardHelloRedirect(t *testing.T) {
	const ranks, shards = 8, 2
	tier := NewShardedPool(ranks, shards, shardTestOptions())
	defer tier.Close()

	var lns [shards]net.Listener
	var srvs [shards]*WireServer
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		srvs[i] = ServeWire(ln, tier.WireSink(i))
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	if err := tier.Rebalance(addrs); err != nil {
		t.Fatal(err)
	}

	rank := 0
	wrong := addrs[1-tier.Owner(rank)]
	c := NewResilientClient(ShardDialer(rank, []string{wrong}, tier.Metrics()), DefaultResilientOptions())
	c.SetMetrics(tier.Metrics())
	const batches = 20
	for i := 0; i < batches; i++ {
		c.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1_000_000, 500_000)})
	}
	if !c.Drain(5 * time.Second) {
		t.Fatal("client did not drain")
	}
	c.Close()
	if !waitUntil(5*time.Second, func() bool {
		return tier.Plane(tier.Owner(rank)).FragmentCount() == batches
	}) {
		t.Fatalf("owner plane has %d fragments, want %d",
			tier.Plane(tier.Owner(rank)).FragmentCount(), batches)
	}
	if tier.Metrics().ShardRedirects.Load() == 0 {
		t.Fatal("no redirect was counted despite a wrong bootstrap")
	}
	if tier.Metrics().ShardMisroutes.Load() != 0 {
		t.Fatalf("misroutes = %d, want 0", tier.Metrics().ShardMisroutes.Load())
	}
	// The shard map travelled by hello: the client's next dial should
	// go owner-first. Rebalance bumps the version.
	if v := tier.ShardMap().Version; v != 1 {
		t.Fatalf("map version = %d, want 1", v)
	}
}

// TestShardTierMetrics: the tier registers the shard surface — global
// counters plus one row of Funcs per shard.
func TestShardTierMetrics(t *testing.T) {
	const ranks, shards = 32, 4
	tier := NewShardedPool(ranks, shards, shardTestOptions())
	defer tier.Close()
	for r := 0; r < ranks; r++ {
		for i := 0; i < 30; i++ {
			tier.Consume(r, []trace.Fragment{frag(r, int64(i)*1_000_000, 900_000)})
		}
	}
	if res := tier.RunWindow(0, 30_000_000); res == nil {
		t.Fatal("tier window returned nil")
	}
	snap := tier.Metrics().Registry.Snapshot()
	if m := snap.Get("vapro_shards"); m == nil || m.Value != float64(shards) {
		t.Fatalf("vapro_shards = %+v", m)
	}
	if m := snap.Get("vapro_ranks"); m == nil || m.Value != float64(ranks) {
		t.Fatalf("vapro_ranks = %+v", m)
	}
	if m := snap.Get("vapro_shard_strips_merged_total"); m == nil || m.Value == 0 {
		t.Fatalf("vapro_shard_strips_merged_total = %+v", m)
	}
	residentSum := 0.0
	for i := 0; i < shards; i++ {
		name := "vapro_shard" + string(rune('0'+i)) + "_resident_ranks"
		m := snap.Get(name)
		if m == nil {
			t.Fatalf("missing %s", name)
		}
		residentSum += m.Value
		for _, suffix := range []string{"_intake_staged", "_seq_gaps"} {
			if snap.Get("vapro_shard"+string(rune('0'+i))+suffix) == nil {
				t.Fatalf("missing per-shard metric vapro_shard%d%s", i, suffix)
			}
		}
	}
	if residentSum != float64(ranks) {
		t.Fatalf("resident ranks sum to %v, want %d", residentSum, ranks)
	}
	// Prometheus text exposition carries the rows too (the status
	// panel scrapes this form).
	var sb strings.Builder
	for _, ms := range snap.Metrics {
		sb.WriteString(ms.Name)
		sb.WriteByte('\n')
	}
	for _, name := range []string{"vapro_shard_regions_stitched_total", "vapro_shardmap_rebalances_total"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("snapshot missing %s", name)
		}
	}
}

// TestShardedMonitorDetectsOnline mirrors TestMonitorDetectsOnline over
// a 2-shard tier: the merged analysis must produce the same kind of
// events (rank 2's slowdown) regardless of which shard owns rank 2.
func TestShardedMonitorDetectsOnline(t *testing.T) {
	opt := shardTestOptions()
	tier := NewShardedPool(4, 2, opt)
	defer tier.Close()
	mopt := DefaultMonitorOptions(4)
	mopt.Period = 20 * sim.Millisecond
	mopt.Overlap = 10 * sim.Millisecond
	mopt.MinRegionLoss = sim.Millisecond
	m := NewShardedMonitor(tier, mopt)
	for rank := 0; rank < 4; rank++ {
		tm := int64(0)
		var batch []trace.Fragment
		for tm < 100_000_000 {
			el := int64(1_000_000)
			if rank == 2 && tm >= 40_000_000 && tm < 70_000_000 {
				el = 2_000_000
			}
			batch = append(batch, monFrag(rank, tm, el, el > 1_000_000))
			tm += el
			if len(batch) == 8 {
				m.Consume(rank, batch)
				batch = nil
			}
		}
		m.Consume(rank, batch)
	}
	m.Flush()
	events := m.Drain()
	if len(events) == 0 {
		t.Fatal("sharded monitor produced no events")
	}
	ev := events[0]
	if ev.WindowEnd <= sim.Time(40*sim.Millisecond) || ev.WindowStart >= sim.Time(70*sim.Millisecond) {
		t.Fatalf("first event window [%v, %v] misses the slowdown", ev.WindowStart, ev.WindowEnd)
	}
	found := false
	for _, reg := range ev.Regions {
		if reg.RankMin <= 2 && reg.RankMax >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("event regions miss rank 2: %+v", ev.Regions)
	}
	if m.Stage() < 2 {
		t.Fatalf("stage = %d, want escalation past 1", m.Stage())
	}
}
