package collector

import (
	"encoding/gob"
	"io"
	"net"
	"sync"

	"vapro/internal/trace"
)

// Wire transport: in the real deployment the client library ships
// fragment batches to the server processes over the management network.
// This file implements that path with gob over net.Conn so the
// client/server split can run across real processes; the in-process Pool
// remains the default because the simulation runs everything in one
// address space.

// Batch is the wire unit: one client's buffered fragments.
type Batch struct {
	Rank      int
	Fragments []trace.Fragment
}

// WireClient ships fragment batches over a connection. It implements
// interpose.Sink, so a traced rank can write straight to a remote
// server. Safe for use by one rank; open one client per rank (as the
// real library does) or guard externally.
type WireClient struct {
	mu   sync.Mutex
	conn io.WriteCloser
	enc  *gob.Encoder
	err  error
	// n counts encoded payload bytes (via a counting writer).
	n countingWriter
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewWireClient wraps conn.
func NewWireClient(conn io.WriteCloser) *WireClient {
	c := &WireClient{conn: conn}
	c.n.w = conn
	c.enc = gob.NewEncoder(&c.n)
	return c
}

// Consume implements interpose.Sink by encoding the batch onto the wire.
// Transport errors are deliberately swallowed after the first (the
// client library must never take the application down); Err reports the
// sticky error.
func (c *WireClient) Consume(rank int, frags []trace.Fragment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = c.enc.Encode(Batch{Rank: rank, Fragments: frags})
}

// Err returns the first transport error, if any.
func (c *WireClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// BytesOut returns the total encoded bytes written.
func (c *WireClient) BytesOut() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n.n
}

// Close flushes and closes the connection.
func (c *WireClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// WireServer accepts connections and feeds decoded batches into a sink
// (normally a Pool or Monitor).
type WireServer struct {
	ln   net.Listener
	sink interface {
		Consume(rank int, frags []trace.Fragment)
	}
	wg sync.WaitGroup

	mu      sync.Mutex
	batches int
	err     error
}

// ServeWire starts accepting on ln and decoding into sink until ln is
// closed. Call Wait to block until every connection drains.
func ServeWire(ln net.Listener, sink interface {
	Consume(rank int, frags []trace.Fragment)
}) *WireServer {
	s := &WireServer{ln: ln, sink: sink}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

func (s *WireServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *WireServer) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var b Batch
		if err := dec.Decode(&b); err != nil {
			if err != io.EOF {
				s.mu.Lock()
				if s.err == nil {
					s.err = err
				}
				s.mu.Unlock()
			}
			return
		}
		s.sink.Consume(b.Rank, b.Fragments)
		s.mu.Lock()
		s.batches++
		s.mu.Unlock()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *WireServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Batches returns how many batches were decoded.
func (s *WireServer) Batches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// Err returns the first decode error (io.EOF excluded).
func (s *WireServer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
