package collector

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"vapro/internal/obs"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Wire transport: in the real deployment the client library ships
// fragment batches to the server processes over the management network.
// This file implements that path over net.Conn so the client/server
// split can run across real processes; the in-process Pool remains the
// default because the simulation runs everything in one address space.
//
// The stream is a sequence of frames: a uvarint payload length followed
// by one trace.AppendBatch-encoded batch. The compact encoding is what
// the §6.2 storage accounting measures, so the transport ships exactly
// those bytes.

// maxFramePayload rejects absurd frame lengths (a corrupt or hostile
// stream must not OOM the server). 64 MiB is orders of magnitude above
// any real client batch at the measured ~10-30 bytes/fragment.
const maxFramePayload = 64 << 20

// frameReadChunk bounds how much serveConn grows its payload buffer per
// read, so allocation tracks bytes actually received rather than the
// claimed frame length.
const frameReadChunk = 1 << 20

// Batch is the transport unit: one client's buffered fragments.
type Batch struct {
	Rank      int
	Fragments []trace.Fragment
}

// WireClient ships fragment batches over a connection. It implements
// interpose.Sink, so a traced rank can write straight to a remote
// server. Safe for use by one rank; open one client per rank (as the
// real library does) or guard externally.
type WireClient struct {
	mu      sync.Mutex
	conn    io.WriteCloser
	err     error
	scratch []byte
	n       int64
	dropped uint64
	warned  bool
	met     *Metrics
}

// NewWireClient wraps conn. For connection ownership, reconnection and
// bounded spill buffering, use ResilientClient instead.
func NewWireClient(conn io.WriteCloser) *WireClient {
	return &WireClient{conn: conn}
}

// SetMetrics mirrors the client's post-error drop count into a
// collector metrics surface.
func (c *WireClient) SetMetrics(m *Metrics) {
	c.mu.Lock()
	c.met = m
	c.mu.Unlock()
}

// Consume implements interpose.Sink by encoding the batch onto the wire.
// Transport errors are deliberately swallowed after the first (the
// client library must never take the application down); Err reports the
// sticky error, and every batch discarded after it is counted in
// Dropped — silent loss was a bug, accounted loss is the contract.
func (c *WireClient) Consume(rank int, frags []trace.Fragment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		c.dropped++
		if c.met != nil {
			c.met.WireClientDrops.Inc()
		}
		if !c.warned {
			c.warned = true
			log.Printf("vapro: wire client disabled after error (%v); dropping batches", c.err)
		}
		return
	}
	// Build the whole frame in one buffer so short writes can't
	// interleave with another frame.
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, make([]byte, binary.MaxVarintLen64)...)
	c.scratch = trace.AppendBatch(c.scratch, rank, frags)
	payload := len(c.scratch) - binary.MaxVarintLen64
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(payload))
	frame := c.scratch[binary.MaxVarintLen64-hn:]
	copy(frame, hdr[:hn])
	n, err := c.conn.Write(frame)
	c.n += int64(n)
	c.err = err
}

// Err returns the first transport error, if any.
func (c *WireClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Dropped returns how many batches were discarded after the sticky
// error disabled the client.
func (c *WireClient) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// BytesOut returns the total bytes written (payload plus frame headers).
func (c *WireClient) BytesOut() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Close flushes and closes the connection.
func (c *WireClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// sizedSink is implemented by sinks (Pool, Monitor) that can book an
// already-measured encoded size, so the wire server's decoded payload
// length feeds the §6.2 byte accounting directly instead of the sink
// re-encoding the batch just to measure it.
type sizedSink interface {
	ConsumeSized(rank int, frags []trace.Fragment, bytes int)
}

// metricsProvider is implemented by sinks (Pool, Monitor,
// RecordingSink wrapping either) that expose a collector metrics
// surface; the wire server counts frames into it so transport failures
// that are swallowed as connection kills still leave a visible trace.
type metricsProvider interface {
	Metrics() *Metrics
}

// helloProvider is implemented by sinks (ShardSink) that publish a
// shard map: the server writes one hello frame at the top of every
// accepted connection so the client learns the rank→server assignment
// and can redirect to its owner. Legacy sinks don't implement it and
// legacy clients never read from the connection, so the handshake is
// invisible to both.
type helloProvider interface {
	Hello() (version uint64, addrs []string, ok bool)
}

// WireServer accepts connections and feeds decoded batches into a sink
// (normally a Pool or Monitor).
type WireServer struct {
	ln   net.Listener
	sink interface {
		Consume(rank int, frags []trace.Fragment)
	}
	sized  sizedSink     // non-nil when sink implements sizedSink
	traced tracedSink    // non-nil when sink implements tracedSink
	seq    *SeqTracker   // non-nil when sink implements seqStater
	hello  helloProvider // non-nil when sink implements helloProvider
	jour   *wal.Log      // non-nil when sink implements journalProvider
	met    *Metrics
	mln    net.Listener // metrics HTTP listener, if serving
	wg     sync.WaitGroup

	// jmu serializes observe→journal→deliver across connections when a
	// journal is attached: the journal's record order must equal the
	// sequence tracker's decision order and the sink's delivery order,
	// or replay would rebuild a different state than the live run held.
	// Without a journal the path stays lock-free as before.
	jmu sync.Mutex

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	drain   time.Duration
	batches int
	err     error
}

// defaultDrainTimeout bounds Close's wait for in-flight connections.
const defaultDrainTimeout = 5 * time.Second

// ServeWire starts accepting on ln and decoding into sink until ln is
// closed. Call Close (or Shutdown) to stop and drain.
func ServeWire(ln net.Listener, sink interface {
	Consume(rank int, frags []trace.Fragment)
}) *WireServer {
	s := &WireServer{ln: ln, sink: sink, conns: make(map[net.Conn]struct{}), drain: defaultDrainTimeout}
	s.sized, _ = sink.(sizedSink)
	s.traced, _ = sink.(tracedSink)
	if ss, ok := sink.(seqStater); ok {
		s.seq = ss.SeqState()
	}
	if mp, ok := sink.(metricsProvider); ok {
		s.met = mp.Metrics()
	}
	s.hello, _ = sink.(helloProvider)
	if jp, ok := sink.(journalProvider); ok {
		s.jour = jp.Journal()
	}
	if s.met == nil {
		s.met = NewMetrics() // standalone counting surface
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// SetDrainTimeout bounds how long Close waits for in-flight
// connections before force-closing them.
func (s *WireServer) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	s.drain = d
	s.mu.Unlock()
}

// Metrics returns the surface the server counts into — the sink's own
// when the sink provides one, otherwise a private registry.
func (s *WireServer) Metrics() *Metrics { return s.met }

// SetHello publishes a static shard map on every subsequently accepted
// connection — how a single-server deployment speaks the same
// bootstrap handshake as the sharded tier (a one-entry map naming
// itself), so ShardDialer clients dial either uniformly. A sink that
// publishes its own live map (ShardSink) keeps precedence.
func (s *WireServer) SetHello(version uint64, addrs []string) {
	s.mu.Lock()
	if s.hello == nil {
		s.hello = staticHello{ver: version, addrs: append([]string(nil), addrs...)}
	}
	s.mu.Unlock()
}

type staticHello struct {
	ver   uint64
	addrs []string
}

func (h staticHello) Hello() (uint64, []string, bool) { return h.ver, h.addrs, true }

// ServeMetrics serves the metrics registry (Prometheus text / JSON)
// over HTTP on mln until the wire server is closed.
func (s *WireServer) ServeMetrics(mln net.Listener) {
	s.mu.Lock()
	s.mln = mln
	s.mu.Unlock()
	srv := &http.Server{Handler: s.met.Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(mln) // returns when mln closes
	}()
}

func (s *WireServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *WireServer) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *WireServer) serveConn(conn net.Conn) {
	defer conn.Close()
	s.met.WireConns.Inc()
	// Defense in depth: a decoder bug on a hostile frame must take down
	// this connection, not the whole server process. The kill is counted
	// — a swallowed failure must still be visible from outside.
	defer func() {
		if p := recover(); p != nil {
			s.met.WirePanics.Inc()
			s.met.WireFramesRejected.Inc()
			s.setErr(fmt.Errorf("collector: panic serving connection: %v", p))
		}
	}()
	s.mu.Lock()
	hello := s.hello
	s.mu.Unlock()
	if hello != nil {
		// Shard handshake: one length-prefixed hello frame, written
		// before any reads so a shard-aware client can verify ownership
		// immediately after dialing. A failed write means the client is
		// gone; the connection dies before consuming anything.
		if ver, addrs, ok := hello.Hello(); ok {
			payload := trace.AppendHello(nil, ver, addrs)
			out := binary.AppendUvarint(nil, uint64(len(payload)))
			out = append(out, payload...)
			if _, err := conn.Write(out); err != nil {
				s.setErr(err)
				return
			}
		}
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var payload []byte // reused across frames, grown only as bytes arrive
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			if err != io.EOF {
				s.setErr(err)
			}
			return
		}
		if size > maxFramePayload {
			s.met.WireFramesRejected.Inc()
			s.setErr(fmt.Errorf("collector: frame of %d bytes exceeds limit", size))
			return
		}
		payload, err = readPayload(br, payload[:0], int(size))
		if err != nil {
			s.met.WireFramesRejected.Inc() // torn frame
			s.setErr(err)
			return
		}
		meta, frags, err := trace.DecodeBatchMeta(payload)
		if err != nil {
			s.met.WireDecodeErrors.Inc()
			s.met.WireFramesRejected.Inc()
			s.setErr(err)
			return
		}
		s.deliverFrame(meta, frags, payload)
	}
}

// deliverFrame runs one decoded frame's observe→journal→deliver
// sequence. With a journal attached the whole sequence is a single
// critical section across connections (jmu): the journal's record
// order must equal the tracker's decision order and the sink's
// delivery order, or replay would rebuild a different state than the
// live run held. Without a journal only the tracker's own lock is
// involved, as before.
func (s *WireServer) deliverFrame(meta trace.BatchMeta, frags []trace.Fragment, payload []byte) {
	if s.jour != nil {
		s.jmu.Lock()
		defer s.jmu.Unlock()
	}
	rank := meta.Rank
	if meta.HasSeq && s.seq != nil {
		// Sequence accounting: gaps are batches that died with a
		// connection or were evicted client-side; duplicates are
		// retransmits whose original arrived (e.g. a write deadline
		// fired on a live link) and must not be delivered twice.
		minStart, maxEnd := fragSpan(frags)
		deliver, gap := s.seq.Observe(rank, meta.Seq, minStart, maxEnd)
		if gap > 0 {
			s.met.WireSeqGaps.Add(gap)
		}
		if !deliver {
			s.met.WireDups.Inc()
			return
		}
	}
	if s.jour != nil {
		// Journal the delivered payload before the sink sees it.
		// Duplicates never reach this point, so the journal holds
		// exactly the delivered stream. An append failure (disk full,
		// dead device) is counted by the log's own metrics and must not
		// kill the connection: durability degrades, ingestion keeps
		// serving.
		_ = s.jour.Append(payload)
	}
	if meta.HasTrace && s.traced != nil && s.met.Trace.Sample(meta.Seq) {
		// Sampled exemplar: stamp delivery and carry the provenance
		// context through staging and drain. The sampling decision is
		// derived from the sequence number alone, so the client that
		// stamped flush/enqueue/write picked the same batches.
		tc := TraceCtx{ClientID: meta.ClientID, Seq: meta.Seq, Rank: rank, FlushNS: meta.FlushNS}
		s.met.Trace.Record(tc.Key(), rank, meta.FlushNS, obs.HopDeliver)
		s.traced.ConsumeTraced(rank, frags, len(payload), tc)
	} else if s.sized != nil {
		s.sized.ConsumeSized(rank, frags, len(payload))
	} else {
		s.sink.Consume(rank, frags)
	}
	s.met.WireFrames.Inc()
	s.met.WireBytes.Add(uint64(len(payload)))
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
}

// readPayload appends exactly size bytes from br onto buf in bounded
// chunks: a 5-byte header claiming a huge frame cannot make the server
// allocate that much before any payload actually arrives.
func readPayload(br *bufio.Reader, buf []byte, size int) ([]byte, error) {
	for len(buf) < size {
		n := size - len(buf)
		if n > frameReadChunk {
			n = frameReadChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// Shutdown stops accepting (wire and metrics listeners) and waits for
// in-flight connections to drain. When ctx expires first, remaining
// connections are force-closed and the wait completes — a hung client
// can no longer leak serveConn goroutines past Close.
func (s *WireServer) Shutdown(ctx context.Context) error {
	err := s.ln.Close()
	s.mu.Lock()
	mln := s.mln
	s.mu.Unlock()
	if mln != nil {
		_ = mln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// Close is Shutdown bounded by the drain timeout (SetDrainTimeout).
func (s *WireServer) Close() error {
	s.mu.Lock()
	d := s.drain
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Shutdown(ctx)
}

// SeqGaps returns the batches inferred lost from sequence gaps, and
// Dups the duplicates suppressed. Both count into the sink's tracker
// when it has one, so the totals survive server restarts.
func (s *WireServer) SeqGaps() uint64 { return s.met.WireSeqGaps.Load() }

// Dups returns the duplicate batches suppressed by sequence tracking.
func (s *WireServer) Dups() uint64 { return s.met.WireDups.Load() }

// Batches returns how many batches were decoded.
func (s *WireServer) Batches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// FramesRejected counts frames that terminated their connection:
// oversized headers, torn payloads, undecodable batches, and decoder
// panics contained by recover. These failures are swallowed on the
// serving path by design (a hostile client must not take the server
// down) — the counter is how they stay visible.
func (s *WireServer) FramesRejected() uint64 { return s.met.WireFramesRejected.Load() }

// DecodeErrors counts payloads trace.DecodeBatch refused.
func (s *WireServer) DecodeErrors() uint64 { return s.met.WireDecodeErrors.Load() }

// Panics counts per-connection panics contained by recover.
func (s *WireServer) Panics() uint64 { return s.met.WirePanics.Load() }

// Err returns the first decode error (io.EOF excluded).
func (s *WireServer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
