package collector

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vapro/internal/faults"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// openTestWAL opens a small-segment spill log in dir.
func openTestWAL(t *testing.T, dir string, opt wal.Options) *wal.Log {
	t.Helper()
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = 256
	}
	l, err := wal.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestResilientSpillToWALZeroLoss pins the tentpole property: with a
// WAL attached, queue overflow migrates to disk instead of evicting, so
// an outage deeper than the memory bound loses nothing — every consumed
// batch is eventually delivered, in per-rank order, with zero gaps.
func TestResilientSpillToWALZeroLoss(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()

	var up atomic.Bool
	dial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("collector down")
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	log := openTestWAL(t, t.TempDir(), wal.Options{})
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		MaxSpill:    3,
		WAL:         log,
	})
	defer c.Close()

	const batches = 40
	for i := 0; i < batches; i++ {
		rank := i % 2
		c.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1000, 500)})
	}
	st := c.Stats()
	if st.Lost != 0 {
		t.Fatalf("overflow with WAL lost %d batches", st.Lost)
	}
	if st.WALPending == 0 {
		t.Fatal("overflow never reached the WAL")
	}
	if st.SpillDepth > 3 {
		t.Fatalf("memory queue exceeded its bound: %d", st.SpillDepth)
	}

	up.Store(true)
	if !c.Drain(10 * time.Second) {
		t.Fatalf("drain never finished: %+v", c.Stats())
	}
	st = c.Stats()
	if st.Sent != batches || st.Lost != 0 || st.WALPending != 0 {
		t.Fatalf("sent=%d lost=%d walPending=%d, want %d/0/0", st.Sent, st.Lost, st.WALPending, batches)
	}
	met := srv.Metrics()
	if !waitUntil(5*time.Second, func() bool { return met.WireFrames.Load() == batches }) {
		t.Fatalf("server consumed %d frames, want %d", met.WireFrames.Load(), batches)
	}
	if gaps := pool.SeqState().GapFrames(); gaps != 0 {
		t.Fatalf("zero-loss drain still booked %d gaps", gaps)
	}
	if dups := pool.SeqState().Dups(); dups != 0 {
		t.Fatalf("in-order WAL drain produced %d dups (ordering broken)", dups)
	}
}

// TestResilientMaxSpillBytes pins the byte bound: a queue within the
// entry cap still evicts (oldest first) once the encoded bytes exceed
// MaxSpillBytes, and the spill_bytes gauge tracks the queue exactly.
func TestResilientMaxSpillBytes(t *testing.T) {
	fc := faults.NewFakeClock()
	dial := func() (net.Conn, error) { return nil, errors.New("down") }
	met := NewMetrics()
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase:   time.Minute, // park the writer on the fake clock
		MaxSpill:      1024,
		MaxSpillBytes: 256,
		Clock:         fc,
	})
	defer c.Close()
	c.SetMetrics(met)

	// ~37-byte frames: the byte bound admits a handful, nowhere near the
	// 1024-entry cap.
	big := []trace.Fragment{frag(0, 0, 500), frag(0, 600, 400)}
	for i := 0; i < 20; i++ {
		c.Consume(0, big)
	}
	st := c.Stats()
	if st.SpillBytes > 256 {
		t.Fatalf("spill bytes %d exceed the 256-byte bound", st.SpillBytes)
	}
	if st.Lost == 0 {
		t.Fatal("byte-bound overflow evicted nothing")
	}
	if st.Lost+uint64(st.SpillDepth) != 20 {
		t.Fatalf("lost %d + queued %d != consumed 20", st.Lost, st.SpillDepth)
	}
	if g := met.NetSpillBytes.Load(); g != st.SpillBytes {
		t.Fatalf("spill_bytes gauge %d != actual %d", g, st.SpillBytes)
	}
}

// TestResilientWALRestartReplay pins crash-safe client replay: a client
// dies with frames persisted in its WAL; the next generation (same WAL
// dir) replays them with their original sequence numbers before its own
// seq-0 restart, so the server delivers everything exactly once and
// books zero gaps.
func TestResilientWALRestartReplay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()

	dir := t.TempDir()
	var up atomic.Bool
	dial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("collector down")
		}
		return net.Dial("tcp", ln.Addr().String())
	}

	// Generation 1: collector unreachable the whole time; Close persists
	// the backlog (memory queue + WAL) to disk.
	log1 := openTestWAL(t, dir, wal.Options{})
	c1 := NewResilientClient(dial, ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		MaxSpill:    2,
		WAL:         log1,
	})
	const gen1 = 10
	for i := 0; i < gen1; i++ {
		c1.Consume(i%2, []trace.Fragment{frag(i%2, int64(i)*1000, 500)})
	}
	c1.Close()
	st1 := c1.Stats()
	if st1.Sent != 0 || st1.Lost != 0 {
		t.Fatalf("gen1 sent=%d lost=%d, want 0/0", st1.Sent, st1.Lost)
	}
	// Everything consumed is either durable or the abandoned pre-WAL
	// head (the frame that was mid-write when the queue migrated).
	if st1.WALPending+int(st1.Abandoned) != gen1 {
		t.Fatalf("gen1 walPending=%d abandoned=%d, want sum %d", st1.WALPending, st1.Abandoned, gen1)
	}

	// Generation 2: reopen the same dir; the leftovers replay first,
	// then this generation's own frames (fresh numbering from seq 0 —
	// the server's restart branch).
	up.Store(true)
	log2 := openTestWAL(t, dir, wal.Options{})
	if log2.Pending() != st1.WALPending {
		t.Fatalf("reopen found %d pending, want %d", log2.Pending(), st1.WALPending)
	}
	c2 := NewResilientClient(dial, ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		MaxSpill:    2,
		WAL:         log2,
	})
	defer c2.Close()
	const gen2 = 6
	for i := 0; i < gen2; i++ {
		c2.Consume(i%2, []trace.Fragment{frag(i%2, int64(100+i)*1000, 500)})
	}
	if !c2.Drain(10 * time.Second) {
		t.Fatalf("gen2 drain never finished: %+v", c2.Stats())
	}

	wantDelivered := uint64(st1.WALPending + gen2)
	met := srv.Metrics()
	if !waitUntil(5*time.Second, func() bool {
		return met.WireFrames.Load()+pool.SeqState().GapFrames() >= wantDelivered
	}) {
		t.Fatalf("server frames=%d gaps=%d, want total %d",
			met.WireFrames.Load(), pool.SeqState().GapFrames(), wantDelivered)
	}
	// The abandoned pre-WAL heads surface as gaps once later frames for
	// their ranks arrive; nothing else may be lost or duplicated.
	if gaps := pool.SeqState().GapFrames(); gaps != st1.Abandoned {
		t.Fatalf("gaps=%d, want exactly the %d abandoned heads", gaps, st1.Abandoned)
	}
	if met.WireFrames.Load() != wantDelivered {
		t.Fatalf("delivered %d frames, want %d", met.WireFrames.Load(), wantDelivered)
	}
	if pool.SeqState().Restarts() == 0 {
		t.Fatal("gen2's fresh numbering never hit the restart branch")
	}
}

// TestResilientWALDiskFullDegrades pins the degradation contract: when
// the disk refuses appends, the client falls back to the memory-only
// bounded spill — flushes keep succeeding, losses are booked exactly,
// and frames already on disk still drain in order.
func TestResilientWALDiskFullDegrades(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(1, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()

	var up atomic.Bool
	dial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("collector down")
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	var full atomic.Bool
	log := openTestWAL(t, t.TempDir(), wal.Options{
		WriteErr: func() error {
			if full.Load() {
				return faults.ErrInjected
			}
			return nil
		},
	})
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		MaxSpill:    3,
		WAL:         log,
	})
	defer c.Close()

	// Phase 1: disk healthy; overflow reaches the WAL.
	for i := 0; i < 10; i++ {
		c.Consume(0, []trace.Fragment{frag(0, int64(i)*1000, 500)})
	}
	onDisk := c.Stats().WALPending
	if onDisk == 0 {
		t.Fatal("phase 1 never spilled to disk")
	}
	// Phase 2: disk full; the client must degrade to bounded memory
	// spill without erroring a single flush.
	full.Store(true)
	for i := 10; i < 30; i++ {
		c.Consume(0, []trace.Fragment{frag(0, int64(i)*1000, 500)})
	}
	st := c.Stats()
	if !st.WALBroken {
		t.Fatal("client never marked the WAL broken")
	}
	if st.Lost == 0 {
		t.Fatal("degraded overflow booked no losses")
	}
	if st.SpillDepth > 3 {
		t.Fatalf("degraded queue exceeded its bound: %d", st.SpillDepth)
	}
	if st.WALPending != onDisk {
		t.Fatalf("broken disk changed WAL pending: %d -> %d", onDisk, st.WALPending)
	}

	// Recovery: what reached the disk before it filled still drains.
	up.Store(true)
	if !c.Drain(10 * time.Second) {
		t.Fatalf("drain never finished: %+v", c.Stats())
	}
	st = c.Stats()
	if st.Sent+st.Lost != 30 {
		t.Fatalf("sent %d + lost %d != consumed 30", st.Sent, st.Lost)
	}
	met := srv.Metrics()
	if !waitUntil(5*time.Second, func() bool { return met.WireFrames.Load() == uint64(st.Sent) }) {
		t.Fatalf("server frames=%d, want %d", met.WireFrames.Load(), st.Sent)
	}
	if dups := pool.SeqState().Dups(); dups != 0 {
		t.Fatalf("degraded drain reordered frames: %d dups", dups)
	}
}

// TestResilientWALRetentionBooksLoss pins exact accounting under the
// WAL's own size cap: frames reclaimed from the log before delivery are
// booked per-rank lost by the client, and surface server-side as gaps.
func TestResilientWALRetentionBooksLoss(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2, DefaultOptions())
	srv := ServeWire(ln, pool)
	defer srv.Close()

	var up atomic.Bool
	dial := func() (net.Conn, error) {
		if !up.Load() {
			return nil, errors.New("collector down")
		}
		return net.Dial("tcp", ln.Addr().String())
	}
	log := openTestWAL(t, t.TempDir(), wal.Options{
		SegmentBytes: 128,
		MaxBytes:     512,
	})
	c := NewResilientClient(dial, ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		MaxSpill:    2,
		WAL:         log,
	})
	defer c.Close()

	const batches = 60
	for i := 0; i < batches; i++ {
		c.Consume(i%2, []trace.Fragment{frag(i%2, int64(i)*1000, 500)})
	}
	st := c.Stats()
	if st.Lost == 0 {
		t.Fatal("retention under the byte cap reclaimed nothing")
	}
	if st.LostByRank[0]+st.LostByRank[1] != st.Lost {
		t.Fatalf("retention losses not booked per rank: %+v", st.LostByRank)
	}

	up.Store(true)
	if !c.Drain(10 * time.Second) {
		t.Fatalf("drain never finished: %+v", c.Stats())
	}
	st = c.Stats()
	if st.Sent+st.Lost != batches {
		t.Fatalf("sent %d + lost %d != consumed %d", st.Sent, st.Lost, batches)
	}
	// Server-side: delivered + gaps covers every consumed batch.
	met := srv.Metrics()
	if !waitUntil(5*time.Second, func() bool {
		return met.WireFrames.Load()+pool.SeqState().GapFrames() == batches
	}) {
		t.Fatalf("frames=%d gaps=%d, want sum %d",
			met.WireFrames.Load(), pool.SeqState().GapFrames(), batches)
	}
}
