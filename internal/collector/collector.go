// Package collector implements Vapro's online client/server analysis
// plane (§3.5, §5): application ranks ship fragment batches to dedicated
// server processes; each server periodically analyzes the last time
// window, with windows overlapped so consecutive results concatenate;
// multiple servers shard clients for scale (one server per 256 clients
// in the paper's configuration). During progressive diagnosis the
// server instructs its clients to switch counter groups.
package collector

import (
	"sync"

	"vapro/internal/detect"
	"vapro/internal/interpose"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// Options configures the collection plane.
type Options struct {
	// Servers is the number of server processes; clients are sharded
	// rank-modulo-servers for load balance.
	Servers int
	// ClientsPerServer, when > 0, derives Servers from the rank count
	// (the paper's 1:256 provisioning).
	ClientsPerServer int
	// Period is the reporting/analysis period (paper: 15 s of
	// execution time).
	Period sim.Duration
	// Overlap is how much consecutive analysis windows overlap so the
	// per-period results concatenate seamlessly (paper: overlapped
	// sliding windows; we default to half a period).
	Overlap sim.Duration
	// Detect configures the per-window analysis.
	Detect detect.Options
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		ClientsPerServer: 256,
		Period:           15 * sim.Second,
		Overlap:          7500 * sim.Millisecond,
		Detect:           detect.DefaultOptions(),
	}
}

// Pool is a set of server processes plus the shared counter-arming
// handle. It implements interpose.Sink; traced ranks push straight into
// their shard.
type Pool struct {
	opt     Options
	ranks   int
	servers []*Server
	Armed   *interpose.Armed
}

// NewPool builds the server pool for the given number of client ranks.
func NewPool(ranks int, opt Options) *Pool {
	if opt.Period <= 0 {
		opt.Period = 15 * sim.Second
	}
	if opt.Overlap <= 0 || opt.Overlap >= opt.Period {
		opt.Overlap = opt.Period / 2
	}
	n := opt.Servers
	if n <= 0 {
		per := opt.ClientsPerServer
		if per <= 0 {
			per = 256
		}
		n = (ranks + per - 1) / per
		if n < 1 {
			n = 1
		}
	}
	p := &Pool{
		opt:   opt,
		ranks: ranks,
		Armed: interpose.NewArmed(sim.GroupBase | sim.GroupTopdownL1 | sim.GroupOS),
	}
	for i := 0; i < n; i++ {
		p.servers = append(p.servers, newServer(i, opt))
	}
	return p
}

// Servers returns the number of server processes.
func (p *Pool) Servers() int { return len(p.servers) }

// Consume implements interpose.Sink: route the batch to the client's
// shard.
func (p *Pool) Consume(rank int, frags []trace.Fragment) {
	s := p.servers[rank%len(p.servers)]
	s.consume(frags)
}

// Graph merges every server's STG into one global graph (used for the
// final whole-run analysis and reports).
func (p *Pool) Graph() *stg.Graph {
	g := stg.New()
	for _, s := range p.servers {
		s.mu.Lock()
		g.Merge(s.graph)
		s.mu.Unlock()
	}
	return g
}

// FragmentCount returns the total fragments received by all servers.
func (p *Pool) FragmentCount() int {
	n := 0
	for _, s := range p.servers {
		s.mu.Lock()
		n += s.graph.NumFragments()
		s.mu.Unlock()
	}
	return n
}

// WindowResults runs the periodic per-window analysis on every server
// and concatenates the results in time order: the online view of the
// run. Each window [k·(period−overlap), k·(period−overlap)+period) is
// analyzed independently, exactly like a server waking up each period.
func (p *Pool) WindowResults() []*WindowResult {
	// Merge first: the per-window analysis must see all ranks of a
	// window even when they are sharded across servers. Each server
	// analyzes only its own clients in the real deployment; merging
	// here models the concatenation step of Figure 8.
	g := p.Graph()
	var maxEnd int64
	collect := func(frags []trace.Fragment) {
		for i := range frags {
			if e := frags[i].Start + frags[i].Elapsed; e > maxEnd {
				maxEnd = e
			}
		}
	}
	for _, e := range g.Edges() {
		collect(e.Fragments)
	}
	for _, v := range g.Vertices() {
		collect(v.Fragments)
	}
	if maxEnd == 0 {
		return nil
	}
	stride := int64(p.opt.Period - p.opt.Overlap)
	if stride <= 0 {
		stride = int64(p.opt.Period)
	}
	// One analyzer across all windows: each element is clustered once
	// and every overlapped window reuses it, instead of re-clustering a
	// per-window subgraph from scratch.
	an := detect.NewAnalyzer()
	var out []*WindowResult
	for start := int64(0); start < maxEnd; start += stride {
		end := start + int64(p.opt.Period)
		if !overlapsAny(g, start, end) {
			continue
		}
		res := an.RunWindow(g, p.ranks, p.opt.Detect, start, end)
		out = append(out, &WindowResult{
			Start:  sim.Time(start),
			End:    sim.Time(end),
			Result: res,
		})
	}
	return out
}

// WindowResult is one analysis period's outcome.
type WindowResult struct {
	Start, End sim.Time
	Result     *detect.Result
}

// overlapsAny reports whether any fragment of g overlaps [start, end)
// — the "is this window non-empty" guard of the periodic analysis.
func overlapsAny(g *stg.Graph, start, end int64) bool {
	keep := func(f *trace.Fragment) bool {
		return f.Start < end && f.Start+f.Elapsed > start
	}
	for _, e := range g.Edges() {
		for i := range e.Fragments {
			if keep(&e.Fragments[i]) {
				return true
			}
		}
	}
	for _, v := range g.Vertices() {
		for i := range v.Fragments {
			if keep(&v.Fragments[i]) {
				return true
			}
		}
	}
	return false
}

// Server is one analysis server process.
type Server struct {
	id  int
	opt Options

	mu    sync.Mutex
	graph *stg.Graph
	// bytesIn tracks the transport volume for the storage-overhead
	// accounting of §6.2.
	bytesIn int64
	batches int
}

func newServer(id int, opt Options) *Server {
	return &Server{id: id, opt: opt, graph: stg.New()}
}

func (s *Server) consume(frags []trace.Fragment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.AddBatch(frags)
	s.bytesIn += int64(len(frags)) * 96
	s.batches++
}

// Stats summarizes a pool's transport volume.
type Stats struct {
	Servers   int
	Fragments int
	BytesIn   int64
	Batches   int
	// BytesPerRankSecond is the storage rate per client (§6.2 reports
	// 12.8-47.4 KB/s).
	BytesPerRankSecond float64
}

// Stats returns transport statistics given the run's virtual makespan.
func (p *Pool) Stats(makespan sim.Duration) Stats {
	st := Stats{Servers: len(p.servers)}
	for _, s := range p.servers {
		s.mu.Lock()
		st.Fragments += s.graph.NumFragments()
		st.BytesIn += s.bytesIn
		st.Batches += s.batches
		s.mu.Unlock()
	}
	if sec := makespan.Seconds(); sec > 0 && p.ranks > 0 {
		st.BytesPerRankSecond = float64(st.BytesIn) / sec / float64(p.ranks)
	}
	return st
}
