// Package collector implements Vapro's online client/server analysis
// plane (§3.5, §5): application ranks ship fragment batches to dedicated
// server processes; each server periodically analyzes the last time
// window, with windows overlapped so consecutive results concatenate;
// multiple servers shard clients for scale (one server per 256 clients
// in the paper's configuration). During progressive diagnosis the
// server instructs its clients to switch counter groups.
package collector

import (
	"math"
	"sync"

	"vapro/internal/detect"
	"vapro/internal/interpose"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
	"vapro/internal/wal"
)

// Options configures the collection plane.
type Options struct {
	// Servers is the number of server processes; clients are sharded
	// rank-modulo-servers for load balance.
	Servers int
	// ClientsPerServer, when > 0, derives Servers from the rank count
	// (the paper's 1:256 provisioning).
	ClientsPerServer int
	// Period is the reporting/analysis period (paper: 15 s of
	// execution time).
	Period sim.Duration
	// Overlap is how much consecutive analysis windows overlap so the
	// per-period results concatenate seamlessly (paper: overlapped
	// sliding windows; we default to half a period).
	Overlap sim.Duration
	// Detect configures the per-window analysis.
	Detect detect.Options
	// Intake tunes the server intake path (staging shards, background
	// merging, backpressure).
	Intake IntakeOptions
	// DisableDeltaView is the escape hatch for the delta-append merged
	// view: when set, every changed multi-server element is rebuilt by
	// full concatenation (the legacy path), which bumps its epoch and
	// sends its analysis back through the batch plane. Results are
	// unchanged either way.
	DisableDeltaView bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		ClientsPerServer: 256,
		Period:           15 * sim.Second,
		Overlap:          7500 * sim.Millisecond,
		Detect:           detect.DefaultOptions(),
	}
}

// Pool is a set of server processes plus the shared counter-arming
// handle. It implements interpose.Sink; traced ranks push straight into
// their shard.
type Pool struct {
	opt     Options
	ranks   int
	servers []*Server
	Armed   *interpose.Armed

	// amu serializes the analysis side (merged view + analyzer);
	// ingestion never takes it.
	amu  sync.Mutex
	view *mergedView
	an   *detect.Analyzer

	// met is the pool's always-on observability surface; servers share
	// its handles, so ingestion never branches on "metrics enabled".
	met *Metrics

	// seq is the per-rank sequence tracker. It lives on the pool rather
	// than the wire server so gap accounting survives server restarts —
	// exactly the window where batches get lost.
	seq *SeqTracker

	// jour is the delivery journal the serving process attached
	// (AttachJournal), if any; the wire server appends every delivered
	// frame to it. The pool only holds the handle — open/close belong
	// to whoever runs the process.
	jour *wal.Log
}

// NewPool builds the server pool for the given number of client ranks.
func NewPool(ranks int, opt Options) *Pool {
	return newPoolWith(ranks, opt, nil, true)
}

// newPoolWith is the shared constructor: the sharded tier builds one
// plane per shard with a shared Metrics surface (counters aggregate
// across planes) and derived=false, because the per-pool Func metrics
// (staged depth, cache counters) would otherwise clobber each other in
// the shared registry — the tier registers summed equivalents instead.
func newPoolWith(ranks int, opt Options, met *Metrics, derived bool) *Pool {
	if opt.Period <= 0 {
		opt.Period = 15 * sim.Second
	}
	if opt.Overlap <= 0 || opt.Overlap >= opt.Period {
		opt.Overlap = opt.Period / 2
	}
	n := opt.Servers
	if n <= 0 {
		per := opt.ClientsPerServer
		if per <= 0 {
			per = 256
		}
		n = (ranks + per - 1) / per
		if n < 1 {
			n = 1
		}
	}
	if met == nil {
		met = NewMetrics()
	}
	p := &Pool{
		opt:   opt,
		ranks: ranks,
		Armed: interpose.NewArmed(sim.GroupBase | sim.GroupTopdownL1 | sim.GroupOS),
		view:  newMergedView(),
		an:    detect.NewAnalyzer(),
		met:   met,
		seq:   NewSeqTracker(),
	}
	p.an.SetMetrics(p.met.Detect)
	for i := 0; i < n; i++ {
		p.servers = append(p.servers, newServer(i, opt, p.met))
	}
	if derived {
		p.registerDerived()
	}
	return p
}

// Servers returns the number of server processes.
func (p *Pool) Servers() int { return len(p.servers) }

// SeqState returns the pool's sequence tracker; wire servers feed it so
// per-rank gap accounting accumulates across server restarts.
func (p *Pool) SeqState() *SeqTracker { return p.seq }

// Consume implements interpose.Sink: route the batch to the client's
// shard.
func (p *Pool) Consume(rank int, frags []trace.Fragment) {
	s := p.servers[rank%len(p.servers)]
	s.consume(rank, frags)
}

// ConsumeSized routes a batch whose encoded wire size was already
// measured (the wire server passes the payload length it just decoded),
// so the batch is not re-encoded merely for the byte accounting.
func (p *Pool) ConsumeSized(rank int, frags []trace.Fragment, bytes int) {
	s := p.servers[rank%len(p.servers)]
	s.consumeSized(rank, frags, bytes)
}

// Close stops background mergers and drains any staged batches. Pools
// without background intake need no Close; calling it is always safe.
func (p *Pool) Close() {
	for _, s := range p.servers {
		s.close()
	}
}

// drainAll merges every server's staged batches into its graph.
func (p *Pool) drainAll() {
	for _, s := range p.servers {
		s.drain()
	}
}

// Graph merges every server's STG into one fresh global graph (used for
// the final whole-run analysis and reports; the caller owns the result).
func (p *Pool) Graph() *stg.Graph {
	p.drainAll()
	g := stg.New()
	for _, s := range p.servers {
		s.mu.Lock()
		g.Merge(s.graph)
		s.mu.Unlock()
	}
	return g
}

// FragmentCount returns the total fragments received by all servers.
func (p *Pool) FragmentCount() int {
	p.drainAll()
	n := 0
	for _, s := range p.servers {
		s.mu.Lock()
		n += s.graph.NumFragments()
		s.mu.Unlock()
	}
	return n
}

// mergedView is the incrementally maintained union of every server's
// STG. Each element's version in the view is the sum of the servers'
// element generation counts (= the element's total append count), so a
// refresh touches only the elements that actually grew, and an
// unchanged pool refreshes in O(elements) version checks instead of
// O(total fragments).
//
// Elements held by a single server hand the server's own (append-only)
// slice to the view; PutEdgeLog/PutVertexLog keep the element's
// generation epoch across the server's reallocations, which is what
// lets the incremental clustering + prep planes stay warm. Elements
// held by several servers keep a view-owned append log with a cursor
// per server: a refresh appends each server's new suffix in fixed
// server order (ExtendEdge/ExtendVertex), so the element's epoch stays
// warm too — the old full re-concatenation bumped the epoch every
// period and pushed every cross-server element back through the batch
// plane. A rebase (full concat, epoch bump) happens only on the first
// multi-server sighting, a server epoch change, a shrink, or the
// DisableDeltaView hatch.
type mergedView struct {
	graph     *stg.Graph
	edgeVer   map[trace.EdgeKey]uint64
	vertVer   map[uint64]uint64
	edgeElems map[trace.EdgeKey]*viewElem
	vertElems map[uint64]*viewElem
}

func newMergedView() *mergedView {
	return &mergedView{
		graph:     stg.New(),
		edgeVer:   make(map[trace.EdgeKey]uint64),
		vertVer:   make(map[uint64]uint64),
		edgeElems: make(map[trace.EdgeKey]*viewElem),
		vertElems: make(map[uint64]*viewElem),
	}
}

// viewElem is the per-element merge state: how much of each server's
// append log is already in the view, and whether the view element's
// backing array is view-owned. Extending in place is only legal on an
// owned array — an element aliasing a server slice could otherwise
// append into the server's spare capacity and clobber its log.
type viewElem struct {
	cursors []int    // per server: fragments already folded into the view
	epochs  []uint64 // per server: epoch those cursors were taken against
	owned   bool     // view owns the backing array (multi-server log)
}

// viewAccum is one element's per-refresh snapshot across servers,
// indexed by server so the delta cursors line up refresh to refresh.
type viewAccum struct {
	ver    uint64
	kind   trace.Kind
	parts  [][]trace.Fragment
	epochs []uint64
}

// refreshView folds the servers' current graphs into the merged view.
// Per-server fragment slices are snapshotted (length-bounded) under the
// server lock; stg appends never mutate the snapshotted prefix, so the
// merge can run without holding any server lock. Caller holds p.amu.
func (p *Pool) refreshView() *stg.Graph {
	v := p.view
	ns := len(p.servers)
	eacc := make(map[trace.EdgeKey]*viewAccum)
	vacc := make(map[uint64]*viewAccum)
	for si, s := range p.servers {
		s.mu.Lock()
		for _, e := range s.graph.Edges() {
			a := eacc[e.Key]
			if a == nil {
				a = &viewAccum{parts: make([][]trace.Fragment, ns), epochs: make([]uint64, ns)}
				eacc[e.Key] = a
			}
			a.ver += e.Gen.Count
			a.parts[si] = e.Fragments[:len(e.Fragments):len(e.Fragments)]
			a.epochs[si] = e.Gen.Epoch
		}
		for _, vx := range s.graph.Vertices() {
			a := vacc[vx.Key]
			if a == nil {
				// The first server holding the vertex decides its kind,
				// matching a from-scratch merge (vertex kind comes from
				// the first fragment added).
				a = &viewAccum{kind: vx.Kind, parts: make([][]trace.Fragment, ns), epochs: make([]uint64, ns)}
				vacc[vx.Key] = a
			}
			a.ver += vx.Gen.Count
			a.parts[si] = vx.Fragments[:len(vx.Fragments):len(vx.Fragments)]
			a.epochs[si] = vx.Gen.Epoch
		}
		s.graph.EachName(v.graph.SetName)
		s.mu.Unlock()
	}
	for k, a := range eacc {
		if v.edgeVer[k] == a.ver {
			continue
		}
		applyView(p.opt.DisableDeltaView, p.met, a, v.edgeElems, k,
			func(frags []trace.Fragment) { v.graph.PutEdge(k, frags) },
			func(frags []trace.Fragment) { v.graph.PutEdgeLog(k, frags) },
			func(frags []trace.Fragment) { v.graph.ExtendEdge(k, frags) },
			func() { delete(v.edgeElems, k) })
		v.edgeVer[k] = a.ver
	}
	for k, a := range vacc {
		if v.vertVer[k] == a.ver {
			continue
		}
		applyView(p.opt.DisableDeltaView, p.met, a, v.vertElems, k,
			func(frags []trace.Fragment) { v.graph.PutVertex(k, a.kind, frags) },
			func(frags []trace.Fragment) { v.graph.PutVertexLog(k, a.kind, frags) },
			func(frags []trace.Fragment) { v.graph.ExtendVertex(k, a.kind, frags) },
			func() { delete(v.vertElems, k) })
		v.vertVer[k] = a.ver
	}
	return v.graph
}

// applyView folds one changed element's snapshot into the view, choosing
// between the aliased single-server log, the delta-append owned log,
// and the full-concat rebase. put/putLog/extend close over the element
// key; drop removes the element's merge state (hatch path).
func applyView[K comparable](hatch bool, met *Metrics, a *viewAccum, elems map[K]*viewElem, k K,
	put, putLog, extend func([]trace.Fragment), drop func()) {
	if hatch {
		// Legacy path: full concatenation for every changed element. The
		// merge state is dropped so a later re-enable rebases from
		// scratch instead of delta-appending onto unknown content.
		put(viewConcat(a.parts))
		drop()
		return
	}
	holder := -1
	holders := 0
	for si, part := range a.parts {
		if len(part) > 0 {
			holder = si
			holders++
		}
	}
	if holders == 0 {
		return
	}
	elem := elems[k]
	if elem == nil {
		elem = &viewElem{cursors: make([]int, len(a.parts)), epochs: make([]uint64, len(a.parts))}
		elems[k] = elem
	}
	if holders == 1 {
		// Single server: alias its append log. PutEdgeLog/PutVertexLog
		// keep the view element's epoch across the server's slice
		// reallocations (the caller-asserted logical prefix), so the
		// analysis planes stay warm even at power-of-2 growth boundaries.
		putLog(a.parts[holder])
		elem.owned = false
		for si := range elem.cursors {
			elem.cursors[si] = len(a.parts[si])
			elem.epochs[si] = a.epochs[si]
		}
		return
	}
	ok := elem.owned
	if ok {
		for si, part := range a.parts {
			if elem.cursors[si] > len(part) || (elem.cursors[si] > 0 && elem.epochs[si] != a.epochs[si]) {
				ok = false // a server rebased or shrank under the cursor
				break
			}
		}
	}
	if !ok {
		// First multi-server sighting (or a server-side rebase): rebuild
		// the view element as a fresh owned concat. PutEdge sees a
		// non-prefix replacement and bumps the epoch — the one analysis
		// pass after a rebase runs batch, then the log is warm again.
		put(viewConcat(a.parts))
		elem.owned = true
		for si := range elem.cursors {
			elem.cursors[si] = len(a.parts[si])
			elem.epochs[si] = a.epochs[si]
		}
		met.ViewEpochRebases.Inc()
		return
	}
	for si, part := range a.parts {
		if d := part[elem.cursors[si]:]; len(d) > 0 {
			extend(d)
			elem.cursors[si] = len(part)
			elem.epochs[si] = a.epochs[si]
			met.ViewCursorAdvances.Inc()
		}
	}
}

// viewConcat concatenates the snapshotted parts into a fresh slice the
// view owns.
func viewConcat(parts [][]trace.Fragment) []trace.Fragment {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]trace.Fragment, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// WindowResults runs the periodic per-window analysis and concatenates
// the results in time order: the online view of the run. Each window
// [k·(period−overlap), k·(period−overlap)+period) is analyzed
// independently, exactly like a server waking up each period. The
// analysis runs over the incrementally merged view with a persistent
// analyzer, so repeated calls re-do work only for the elements (and
// windows) that received new fragments.
func (p *Pool) WindowResults() []*WindowResult {
	return p.WindowResultsRange(0, math.MaxInt64)
}

// WindowResultsRange is WindowResults restricted to the windows that
// intersect [from, to) in virtual time. The window grid is unchanged —
// windows still start at multiples of the stride from zero, so a range
// query returns exactly the rows the full query would, filtered — and
// that is what makes historical queries over a replayed journal line
// up with the live run's results. to <= 0 means "end of data".
func (p *Pool) WindowResultsRange(from, to int64) []*WindowResult {
	if to <= 0 {
		to = math.MaxInt64
	}
	p.drainAll()
	p.amu.Lock()
	defer p.amu.Unlock()
	g := p.refreshView()
	_, maxEnd, ok := g.Bounds()
	if !ok || maxEnd <= 0 {
		return nil
	}
	stride := int64(p.opt.Period - p.opt.Overlap)
	if stride <= 0 {
		stride = int64(p.opt.Period)
	}
	var out []*WindowResult
	for start := int64(0); start < maxEnd; start += stride {
		end := start + int64(p.opt.Period)
		if end <= from || start >= to {
			continue
		}
		// Element span bounds reject empty windows without touching
		// fragments (the old path re-scanned every fragment per window).
		if !g.Overlaps(start, end) {
			continue
		}
		// Windows covering a loss interval mark the rank stale there
		// instead of mistaking its silence for speed.
		dopt := p.opt.Detect
		dopt.Outages = p.seq.Outages()
		res := p.an.RunWindow(g, p.ranks, dopt, start, end)
		out = append(out, &WindowResult{
			Start:  sim.Time(start),
			End:    sim.Time(end),
			Result: res,
		})
	}
	p.met.Trace.CompleteAnalyze()
	return out
}

// RunWindow analyzes one explicit window over the incrementally merged
// view: drain the servers, fold their growth into the view (delta
// appends for warm elements), and run the persistent analyzer. This is
// the steady-state tick a driver loop pays per period — with warm
// elements it costs O(new data), not O(resident fragments).
func (p *Pool) RunWindow(start, end int64) *detect.Result {
	return p.runWindowWith(start, end, p.seq.Outages())
}

// runWindowWith is RunWindow with the outage set supplied by the
// caller: the sharded tier passes the union of every shard's loss
// intervals, so a rank's staleness lands in its owner's strip even
// when the batch that exposed the loss arrived misrouted elsewhere.
func (p *Pool) runWindowWith(start, end int64, outages []detect.Outage) *detect.Result {
	p.drainAll()
	p.amu.Lock()
	defer p.amu.Unlock()
	g := p.refreshView()
	dopt := p.opt.Detect
	dopt.Outages = outages
	res := p.an.RunWindow(g, p.ranks, dopt, start, end)
	// Journeys drained before this tick are now visible to analysis.
	p.met.Trace.CompleteAnalyze()
	return res
}

// viewBounds drains the servers, folds their growth into the merged
// view, and returns the view's fragment span. The sharded tier uses it
// to lay out a global window grid across planes.
func (p *Pool) viewBounds() (minStart, maxEnd int64, ok bool) {
	p.drainAll()
	p.amu.Lock()
	defer p.amu.Unlock()
	g := p.refreshView()
	return g.Bounds()
}

// viewOverlaps reports whether any element's fragment span intersects
// [start, end). Callers refresh the view first (viewBounds).
func (p *Pool) viewOverlaps(start, end int64) bool {
	p.amu.Lock()
	defer p.amu.Unlock()
	return p.view.graph.Overlaps(start, end)
}

// WindowResult is one analysis period's outcome.
type WindowResult struct {
	Start, End sim.Time
	Result     *detect.Result
}

// Stats summarizes a pool's transport volume.
type Stats struct {
	Servers   int
	Fragments int
	BytesIn   int64
	Batches   int
	// BytesPerRankSecond is the storage rate per client (§6.2 reports
	// 12.8-47.4 KB/s), measured over the encoded wire format.
	BytesPerRankSecond float64
	// IntakeStalls counts consumers that found the staged backlog at
	// its MaxStaged bound and had to drain synchronously (backpressure).
	IntakeStalls uint64
	// MaxStagedDepth is the high-water mark of batches staged at once.
	MaxStagedDepth int64
	// FramesRejected counts wire frames that terminated their
	// connection (oversized, torn, or undecodable payloads).
	FramesRejected uint64
	// SeqGaps counts batches inferred lost from per-rank sequence gaps
	// (client-side spill evictions and frames that died with a
	// connection), DupFrames the suppressed retransmit duplicates, and
	// Outages the recorded per-rank loss intervals in virtual time.
	SeqGaps   uint64
	DupFrames uint64
	Outages   int
}

// Stats returns transport statistics given the run's virtual makespan.
func (p *Pool) Stats(makespan sim.Duration) Stats {
	p.drainAll()
	st := Stats{Servers: len(p.servers)}
	for _, s := range p.servers {
		s.mu.Lock()
		st.Fragments += s.graph.NumFragments()
		st.BytesIn += s.bytesIn
		st.Batches += s.batches
		s.mu.Unlock()
	}
	if sec := makespan.Seconds(); sec > 0 && p.ranks > 0 {
		st.BytesPerRankSecond = float64(st.BytesIn) / sec / float64(p.ranks)
	}
	st.IntakeStalls = p.met.IntakeStalls.Load()
	st.MaxStagedDepth = p.met.IntakeStagedPeak.Load()
	st.FramesRejected = p.met.WireFramesRejected.Load()
	st.SeqGaps = p.seq.GapFrames()
	st.DupFrames = p.seq.Dups()
	st.Outages = len(p.seq.Outages())
	return st
}
