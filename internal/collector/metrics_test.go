package collector

import (
	"sync"
	"testing"

	"vapro/internal/sim"
	"vapro/internal/trace"
)

// A MaxStaged bound of 1 forces every consume onto the backpressure
// path; the stall counter and the staged high-water mark must show it.
func TestIntakeBackpressureStall(t *testing.T) {
	opt := DefaultOptions()
	opt.Servers = 1
	opt.Intake.MaxStaged = 1
	p := NewPool(1, opt)
	const n = 8
	for i := 0; i < n; i++ {
		p.Consume(0, []trace.Fragment{frag(0, int64(i)*1000, 500)})
	}
	st := p.Stats(sim.Second)
	if st.IntakeStalls != n {
		t.Fatalf("stalls: %d, want %d (MaxStaged=1 stalls every consume)", st.IntakeStalls, n)
	}
	if st.MaxStagedDepth != 1 {
		t.Fatalf("max staged depth: %d, want 1", st.MaxStagedDepth)
	}
	if p.FragmentCount() != n {
		t.Fatalf("fragments: %d", p.FragmentCount())
	}
}

// The pool's registry must expose the full cross-layer surface with
// live values after an ingest + analysis round trip.
func TestPoolMetricsEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	opt.Period = 10 * sim.Millisecond
	opt.Overlap = 5 * sim.Millisecond
	opt.Detect.Window = sim.Millisecond
	p := NewPool(2, opt)
	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 30; i++ {
			p.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1_000_000, 900_000)})
		}
	}
	if len(p.WindowResults()) == 0 {
		t.Fatal("no windows analyzed")
	}
	snap := p.Metrics().Registry.Snapshot()
	if m := snap.Get("vapro_intake_batches_total"); m == nil || m.Value != 60 {
		t.Fatalf("intake batches: %+v", m)
	}
	if m := snap.Get("vapro_intake_fragments_total"); m == nil || m.Value != 60 {
		t.Fatalf("intake fragments: %+v", m)
	}
	if m := snap.Get("vapro_intake_bytes_total"); m == nil || m.Value <= 0 {
		t.Fatalf("intake bytes: %+v", m)
	}
	if m := snap.Get("vapro_detect_windows_total"); m == nil || m.Value <= 0 {
		t.Fatalf("detect windows: %+v", m)
	}
	if m := snap.Get("vapro_detect_window_ns"); m == nil || m.Hist == nil || m.Hist.Total == 0 {
		t.Fatalf("window latency histogram: %+v", m)
	}
	for _, st := range []string{"prep", "cluster", "normalize", "merge", "map"} {
		if m := snap.Get("vapro_detect_stage_" + st + "_ns"); m == nil || m.Hist == nil || m.Hist.Total == 0 {
			t.Fatalf("stage %s span histogram: %+v", st, m)
		}
	}
	// The analysis reclustered elements, so the cache Func metrics are
	// live numbers, and the staged backlog drained back to zero.
	hits := snap.Get("vapro_cluster_cache_hits")
	misses := snap.Get("vapro_cluster_cache_misses")
	if hits == nil || misses == nil || misses.Value == 0 {
		t.Fatalf("cache metrics: hits=%+v misses=%+v", hits, misses)
	}
	// The per-reason fallback split is published alongside the total,
	// and the reasons sum to it.
	var reasons float64
	for _, name := range []string{"multid", "dirty"} {
		m := snap.Get("vapro_cluster_cache_inc_fallback_" + name)
		if m == nil {
			t.Fatalf("inc fallback split %q missing", name)
		}
		reasons += m.Value
	}
	if m := snap.Get("vapro_cluster_cache_inc_fallbacks"); m == nil || m.Value != reasons {
		t.Fatalf("inc fallback total %+v does not match reason split sum %v", m, reasons)
	}
	if m := snap.Get("vapro_cluster_cache_inc_fallback_stale"); m == nil ||
		m.Value != snap.Get("vapro_cluster_cache_stale_rejects").Value {
		t.Fatalf("stale fallback metric: %+v", m)
	}
	if m := snap.Get("vapro_intake_staged"); m == nil || m.Value != 0 {
		t.Fatalf("staged after drain: %+v", m)
	}
	if m := snap.Get("vapro_storage_bytes_per_rank_second"); m == nil || m.Value <= 0 {
		t.Fatalf("storage rate: %+v", m)
	}
}

// Monitor.CacheStats (and the registry snapshot) must be safe while
// windows are being analyzed concurrently — run under -race in CI.
func TestMonitorCacheStatsConcurrent(t *testing.T) {
	opt := DefaultOptions()
	opt.Period = 5 * sim.Millisecond
	opt.Overlap = 2 * sim.Millisecond
	opt.Detect.Window = sim.Millisecond
	pool := NewPool(4, opt)
	mopt := DefaultMonitorOptions(4)
	mopt.Period = opt.Period
	mopt.Overlap = opt.Overlap
	mopt.Detect = opt.Detect
	mon := NewMonitor(pool, mopt)

	done := make(chan struct{})
	var probes sync.WaitGroup
	probes.Add(2)
	go func() {
		defer probes.Done()
		for {
			select {
			case <-done:
				return
			default:
				mon.CacheStats()
			}
		}
	}()
	go func() {
		defer probes.Done()
		for {
			select {
			case <-done:
				return
			default:
				mon.Metrics().Registry.Snapshot()
			}
		}
	}()

	var feeders sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		feeders.Add(1)
		go func(rank int) {
			defer feeders.Done()
			for i := 0; i < 40; i++ {
				mon.Consume(rank, []trace.Fragment{frag(rank, int64(i)*1_000_000, 900_000)})
			}
		}(rank)
	}
	feeders.Wait()
	mon.Flush()
	close(done)
	probes.Wait()

	hits, misses := mon.CacheStats()
	if hits+misses == 0 {
		t.Fatal("windows ran but the cache counters are zero")
	}
	// With a monitor in front, the cache Func metrics follow the
	// monitor's analyzer, not the pool's cold one.
	snap := mon.Metrics().Registry.Snapshot()
	if got := snap.Get("vapro_cluster_cache_misses").Value; got != float64(misses) {
		t.Fatalf("registry cache misses %v, want %d (monitor's analyzer)", got, misses)
	}
}

// A recording sink wrapping a pool forwards the pool's metrics surface
// to the wire server; a bare one provides none.
func TestRecordingSinkForwardsMetrics(t *testing.T) {
	p := NewPool(1, DefaultOptions())
	rs := NewRecordingSink(p)
	if rs.Metrics() != p.Metrics() {
		t.Fatal("recording sink must forward the wrapped pool's metrics")
	}
	if NewRecordingSink(nil).Metrics() != nil {
		t.Fatal("bare recording sink must report no metrics surface")
	}
}
