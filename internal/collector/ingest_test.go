package collector

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"vapro/internal/detect"
	"vapro/internal/sim"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

// referenceWindowResults is the naive implementation the optimized path
// must reproduce bit for bit: scan every fragment for the span, guard
// each window with a full-graph overlap scan, analyze with a fresh
// (cold, batch) analyzer per call. It runs over the pool's merged view
// — the view's fragment order (arrival order: servers in fixed order
// per refresh) is the canonical order of the online plane, and a
// from-scratch server merge can't reproduce it once cross-server
// elements grow by delta appends — but the view's *content* is pinned
// separately: every element must hold exactly the multiset union of the
// server elements (assertViewMatchesMerge).
func referenceWindowResults(t *testing.T, p *Pool) []*WindowResult {
	t.Helper()
	p.drainAll()
	p.amu.Lock()
	g := p.refreshView()
	p.amu.Unlock()
	assertViewMatchesMerge(t, p, g)
	var maxEnd int64
	collect := func(frags []trace.Fragment) {
		for i := range frags {
			if e := frags[i].Start + frags[i].Elapsed; e > maxEnd {
				maxEnd = e
			}
		}
	}
	for _, e := range g.Edges() {
		collect(e.Fragments)
	}
	for _, v := range g.Vertices() {
		collect(v.Fragments)
	}
	if maxEnd == 0 {
		return nil
	}
	stride := int64(p.opt.Period - p.opt.Overlap)
	if stride <= 0 {
		stride = int64(p.opt.Period)
	}
	overlapsAny := func(start, end int64) bool {
		keep := func(f *trace.Fragment) bool {
			return f.Start < end && f.Start+f.Elapsed > start
		}
		for _, e := range g.Edges() {
			for i := range e.Fragments {
				if keep(&e.Fragments[i]) {
					return true
				}
			}
		}
		for _, v := range g.Vertices() {
			for i := range v.Fragments {
				if keep(&v.Fragments[i]) {
					return true
				}
			}
		}
		return false
	}
	an := detect.NewAnalyzer()
	var out []*WindowResult
	for start := int64(0); start < maxEnd; start += stride {
		end := start + int64(p.opt.Period)
		if !overlapsAny(start, end) {
			continue
		}
		res := an.RunWindow(g, p.ranks, p.opt.Detect, start, end)
		out = append(out, &WindowResult{Start: sim.Time(start), End: sim.Time(end), Result: res})
	}
	return out
}

// assertViewMatchesMerge pins the merged view's content: every element
// must hold exactly the multiset union of the servers' elements (the
// delta-append path may reorder across servers, never drop, duplicate,
// or invent fragments), and no element may exist on one side only.
func assertViewMatchesMerge(t *testing.T, p *Pool, g *stg.Graph) {
	t.Helper()
	m := stg.New()
	for _, s := range p.servers {
		s.mu.Lock()
		m.Merge(s.graph)
		s.mu.Unlock()
	}
	sameMultiset := func(a, b []trace.Fragment) bool {
		if len(a) != len(b) {
			return false
		}
		count := make(map[trace.Fragment]int, len(a))
		for _, f := range a {
			count[f]++
		}
		for _, f := range b {
			count[f]--
			if count[f] < 0 {
				return false
			}
		}
		return true
	}
	if g.NumEdges() != m.NumEdges() || g.NumVertices() != m.NumVertices() {
		t.Fatalf("view has %d edges/%d vertices, merge has %d/%d",
			g.NumEdges(), g.NumVertices(), m.NumEdges(), m.NumVertices())
	}
	for _, e := range m.Edges() {
		ve := g.Edge(e.Key)
		if ve == nil || !sameMultiset(e.Fragments, ve.Fragments) {
			t.Fatalf("edge %v: view content diverged from server union", e.Key)
		}
	}
	for _, vx := range m.Vertices() {
		vv := g.Vertex(vx.Key)
		if vv == nil || vv.Kind != vx.Kind || !sameMultiset(vx.Fragments, vv.Fragments) {
			t.Fatalf("vertex %d: view content diverged from server union", vx.Key)
		}
	}
}

func sameDetectResult(t *testing.T, i int, a, b *detect.Result) {
	t.Helper()
	if a.FixedClusters != b.FixedClusters || a.SmallClusters != b.SmallClusters {
		t.Fatalf("window %d: cluster counts (%d,%d) vs (%d,%d)", i,
			a.FixedClusters, a.SmallClusters, b.FixedClusters, b.SmallClusters)
	}
	if math.Float64bits(a.OverallCoverage) != math.Float64bits(b.OverallCoverage) ||
		!reflect.DeepEqual(a.Coverage, b.Coverage) {
		t.Fatalf("window %d: coverage differs", i)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatalf("window %d: samples differ", i)
	}
	if !reflect.DeepEqual(a.Regions, b.Regions) {
		t.Fatalf("window %d: regions differ (%d vs %d)", i, len(a.Regions), len(b.Regions))
	}
	if len(a.Maps) != len(b.Maps) {
		t.Fatalf("window %d: map count %d vs %d", i, len(a.Maps), len(b.Maps))
	}
	for class, ha := range a.Maps {
		hb := b.Maps[class]
		if hb == nil || ha.Ranks != hb.Ranks || ha.Windows != hb.Windows || ha.Origin != hb.Origin {
			t.Fatalf("window %d class %v: heat map shape differs", i, class)
		}
		for c := range ha.Cells {
			if math.Float64bits(ha.Cells[c]) != math.Float64bits(hb.Cells[c]) {
				t.Fatalf("window %d class %v cell %d: %v vs %v", i, class, c, ha.Cells[c], hb.Cells[c])
			}
		}
	}
}

func sameWindowResults(t *testing.T, mode string, got, want []*WindowResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", mode, len(got), len(want))
	}
	for i := range got {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Fatalf("%s window %d: [%v,%v) vs [%v,%v)", mode, i,
				got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
		sameDetectResult(t, i, got[i].Result, want[i].Result)
	}
}

func equivOptions() Options {
	opt := DefaultOptions()
	opt.Servers = 3
	opt.Period = 10 * sim.Millisecond
	opt.Overlap = 5 * sim.Millisecond
	opt.Detect.Window = sim.Millisecond
	opt.Detect.Cluster.MinFragments = 4
	return opt
}

// feedEquivWorkload pushes a deterministic mixed workload: dense comp
// edges with a variance region, mixed-kind vertices, a long quiet gap
// (windows with no fragments), and a trailing burst.
func feedEquivWorkload(p *Pool, ranks int) {
	rng := sim.NewRNG(11)
	for rank := 0; rank < ranks; rank++ {
		var batch []trace.Fragment
		for i := 0; i < 120; i++ {
			el := int64(400_000 + rng.Intn(2000))
			if rank == 1 && i >= 40 && i < 60 {
				el *= 3
			}
			start := int64(i) * 500_000
			if i >= 80 {
				start += 40_000_000 // quiet gap, then a late burst
			}
			batch = append(batch, trace.Fragment{
				Rank: rank, Kind: trace.Comp,
				From: uint64(1 + i%3), State: uint64(2 + i%3),
				Start: start, Elapsed: el,
				Counters: trace.CountersView{TotIns: uint64(1_000_000 + rng.Intn(500))},
			})
			if i%5 == 0 {
				k := trace.Comm
				if i%10 == 0 {
					k = trace.IO
				}
				batch = append(batch, trace.Fragment{
					Rank: rank, Kind: k, State: uint64(2 + i%3),
					Start: start + el, Elapsed: int64(100_000 + rng.Intn(1000)),
					Args: trace.Args{Op: trace.Op("Allreduce"), Bytes: 4096},
				})
			}
			if len(batch) >= 16 {
				p.Consume(rank, batch)
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			p.Consume(rank, batch)
		}
	}
}

// TestWindowResultsEquivalence pins the optimized analysis plane to the
// naive one: for every intake mode, sequential feeding must produce
// WindowResults bit-identical to a cold batch rescan of the merged
// view, on cold, warm, and grown pools.
func TestWindowResultsEquivalence(t *testing.T) {
	const ranks = 6
	ref := NewPool(ranks, equivOptions())
	feedEquivWorkload(ref, ranks)
	want := referenceWindowResults(t, ref)
	if len(want) < 3 {
		t.Fatalf("fixture too small: %d windows", len(want))
	}

	modes := []struct {
		name   string
		intake IntakeOptions
	}{
		{"sequential", IntakeOptions{Shards: 1}},
		{"sharded", IntakeOptions{Shards: 8}},
		{"tiny-backlog", IntakeOptions{Shards: 2, MaxStaged: 1}},
		{"background", IntakeOptions{Shards: 8, Background: true}},
	}
	for _, m := range modes {
		opt := equivOptions()
		opt.Intake = m.intake
		p := NewPool(ranks, opt)
		feedEquivWorkload(p, ranks)
		got := p.WindowResults()
		sameWindowResults(t, m.name, got, want)
		// A second call over an unchanged pool (the all-warm path) must
		// return the same thing again.
		sameWindowResults(t, m.name+"/warm", p.WindowResults(), want)
		// And after more data arrives, the incremental refresh must
		// match a reference pool fed the same total stream.
		feedEquivWorkload(p, ranks)
		feedEquivWorkload(ref, ranks)
		sameWindowResults(t, m.name+"/grown", p.WindowResults(), referenceWindowResults(t, ref))
		p.Close()

		ref = NewPool(ranks, equivOptions())
		feedEquivWorkload(ref, ranks)
		// Refresh now so the fresh reference's view shares the tested
		// pools' cadence (one refresh after each feed): under arrival
		// order, a view refreshed once after two feeds orders cross-server
		// growth differently than one refreshed per feed.
		referenceWindowResults(t, ref)
	}
}

// TestConcurrentConsume hammers one pool from 8 goroutines while the
// analysis side reads, then checks nothing was lost. Run under -race
// via `make race`.
func TestConcurrentConsume(t *testing.T) {
	for _, intake := range []IntakeOptions{
		{Shards: 8},
		{Shards: 8, Background: true},
		{Shards: 2, MaxStaged: 4},
	} {
		opt := equivOptions()
		opt.Intake = intake
		const ranks, perRank = 8, 500
		p := NewPool(ranks, opt)
		var wg sync.WaitGroup
		for rank := 0; rank < ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for i := 0; i < perRank; i++ {
					p.Consume(rank, []trace.Fragment{frag(rank, int64(i)*100_000, 50_000)})
				}
			}(rank)
		}
		// Concurrent readers exercise drain-vs-stage races.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.FragmentCount()
				p.WindowResults()
			}
		}()
		wg.Wait()
		p.Close()
		if n := p.FragmentCount(); n != ranks*perRank {
			t.Fatalf("intake %+v: %d fragments, want %d", intake, n, ranks*perRank)
		}
		if st := p.Stats(sim.Second); st.Batches != ranks*perRank {
			t.Fatalf("intake %+v: %d batches", intake, st.Batches)
		}
		if len(p.WindowResults()) == 0 {
			t.Fatalf("intake %+v: no windows", intake)
		}
	}
}

// TestIntakeBackpressure: a tiny backlog bound forces synchronous
// drains; nothing may be lost or double-counted.
func TestIntakeBackpressure(t *testing.T) {
	opt := equivOptions()
	opt.Servers = 1
	opt.Intake = IntakeOptions{Shards: 4, MaxStaged: 2}
	p := NewPool(4, opt)
	for i := 0; i < 100; i++ {
		p.Consume(i%4, []trace.Fragment{frag(i%4, int64(i)*1000, 500)})
	}
	if staged := p.servers[0].staged.Load(); staged > 2 {
		t.Fatalf("backlog exceeded bound: %d staged", staged)
	}
	if n := p.FragmentCount(); n != 100 {
		t.Fatalf("fragments: %d", n)
	}
}
