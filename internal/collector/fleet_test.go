package collector

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vapro/internal/obs"
	"vapro/internal/trace"
)

// wrapDown serves the wrapped handler, or 503 while the flag is set —
// a shard "kill" that can be reverted on the same address.
func wrapDown(down *atomic.Bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "shard down", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// TestFleetMergedCountersEqualShardSum is the live consistency check:
// real wire traffic into a 4-shard tier, each shard's metrics served
// over real HTTP, a FleetScraper polling them — and the fleet's merged
// counters must EXACTLY equal the sum of the per-shard counters.
func TestFleetMergedCountersEqualShardSum(t *testing.T) {
	const ranks, shards = 8, 4
	tier := NewShardedPool(ranks, shards, shardTestOptions())
	defer tier.Close()

	srvs := make([]*WireServer, shards)
	addrs := make([]string, shards)
	metSrvs := make([]*httptest.Server, shards)
	targets := make([]string, shards)
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srvs[i] = ServeWire(ln, tier.WireSink(i))
		defer srvs[i].Close()
		metSrvs[i] = httptest.NewServer(tier.WireSink(i).Metrics().Handler())
		defer metSrvs[i].Close()
		targets[i] = strings.TrimPrefix(metSrvs[i].URL, "http://")
	}
	if err := tier.Rebalance(addrs); err != nil {
		t.Fatal(err)
	}

	clients := make([]*ResilientClient, ranks)
	for r := 0; r < ranks; r++ {
		clients[r] = NewResilientClient(
			ShardDialer(r, append([]string(nil), addrs...), tier.Metrics()),
			ResilientOptions{MaxSpill: 16})
		defer clients[r].Close()
		for n := 0; n < 5; n++ {
			clients[r].Consume(r, []trace.Fragment{frag(r, int64(n)*1000, 500)})
		}
	}
	// Delivery is asynchronous: wait until every batch landed in a
	// plane before scraping.
	deadline := time.Now().Add(5 * time.Second)
	for tier.FragmentCount() < ranks*5 {
		if time.Now().After(deadline) {
			t.Fatalf("delivery stalled: %d/%d fragments", tier.FragmentCount(), ranks*5)
		}
		time.Sleep(time.Millisecond)
	}

	fs := NewFleetScraper(targets, FleetOptions{})
	st := fs.ScrapeOnce()
	if st.State != obs.HealthOK {
		t.Fatalf("fleet state %v, reasons %v", st.State, st.Reasons)
	}
	if st.Scrapes != shards || st.ScrapeFailures != 0 {
		t.Fatalf("scrapes=%d failures=%d", st.Scrapes, st.ScrapeFailures)
	}

	// Sum each summed counter over the per-shard endpoints directly and
	// compare against the fleet's merged registry.
	merged := fs.Merged()
	for _, name := range []string{
		"vapro_wire_frames_total",
		"vapro_wire_bytes_total",
		"vapro_intake_batches_total",
		"vapro_intake_fragments_total",
	} {
		var sum float64
		for i := range metSrvs {
			snap, err := fs.httpFetch(targets[i])
			if err != nil {
				t.Fatalf("shard %d refetch: %v", i, err)
			}
			m := snap.Get(name)
			if m == nil {
				t.Fatalf("shard %d missing %s", i, name)
			}
			sum += m.Value
		}
		got := merged.Get(name)
		if got == nil || got.Value != sum {
			t.Fatalf("%s: fleet merged %v, shard sum %v", name, got, sum)
		}
		if name == "vapro_wire_frames_total" && sum != ranks*5 {
			t.Fatalf("wire frames %v, want %d", sum, ranks*5)
		}
	}

	// The stable JSON schema round-trips through the /fleet endpoint.
	rr := httptest.NewRecorder()
	fs.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/fleet", nil))
	var round FleetStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &round); err != nil {
		t.Fatalf("fleet JSON: %v", err)
	}
	if round.Source != "fleet" || len(round.Shards) != shards {
		t.Fatalf("fleet status round-trip: %+v", round)
	}
	if round.WireFrames != ranks*5 {
		t.Fatalf("fleet wire frames %v, want %d", round.WireFrames, ranks*5)
	}
	// The merged registry endpoint still speaks Prometheus.
	rr = httptest.NewRecorder()
	fs.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if !strings.Contains(rr.Body.String(), "vapro_wire_frames_total") {
		t.Fatal("fleet prometheus view missing wire counter")
	}
}

// TestFleetKillDegradeRecover drives the health surface: a killed shard
// endpoint must surface as unreachable with the scrape error, degrade
// the fleet with shard attribution, and clear on recovery. A majority
// outage goes critical.
func TestFleetKillDegradeRecover(t *testing.T) {
	const shards = 2
	var down [shards]atomic.Bool
	targets := make([]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		reg := obs.NewRegistry()
		reg.Counter("vapro_wire_frames_total", "wire", "frames").Add(uint64(10 * (i + 1)))
		srv := httptest.NewServer(wrapDown(&down[i], reg.Handler()))
		defer srv.Close()
		targets[i] = strings.TrimPrefix(srv.URL, "http://")
	}

	fs := NewFleetScraper(targets, FleetOptions{Timeout: time.Second})
	if st := fs.ScrapeOnce(); st.State != obs.HealthOK {
		t.Fatalf("healthy fleet reports %v: %v", st.State, st.Reasons)
	}

	// Kill shard 1: it must show up unreachable — not vanish — and the
	// fleet must degrade with the shard named in the reason.
	down[1].Store(true)
	st := fs.ScrapeOnce()
	if st.State != obs.HealthDegraded {
		t.Fatalf("one dead shard of two: fleet %v, want degraded", st.State)
	}
	if len(st.Shards) != shards {
		t.Fatalf("dead shard dropped from status: %+v", st.Shards)
	}
	row := st.Shards[1]
	if row.State != obs.HealthUnreachable || row.Error == "" {
		t.Fatalf("dead shard row: %+v", row)
	}
	found := false
	for _, r := range st.Reasons {
		if strings.HasPrefix(r, "shard 1: scrape failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet reasons missing shard attribution: %v", st.Reasons)
	}
	// Last-known data survives the outage: the merged view still counts
	// shard 1's frames, and its status row keeps the stale snapshot.
	merged := fs.Merged()
	if m := merged.Get("vapro_wire_frames_total"); m == nil || m.Value != 30 {
		t.Fatalf("merged frames during outage: %+v", m)
	}
	if st.ScrapeFailures != 1 {
		t.Fatalf("scrape failures %d, want 1", st.ScrapeFailures)
	}

	// Majority outage is critical.
	down[0].Store(true)
	if st := fs.ScrapeOnce(); st.State != obs.HealthCritical {
		t.Fatalf("all shards dead: fleet %v, want critical", st.State)
	}

	// Recovery clears everything.
	down[0].Store(false)
	down[1].Store(false)
	st = fs.ScrapeOnce()
	if st.State != obs.HealthOK {
		t.Fatalf("recovered fleet reports %v: %v", st.State, st.Reasons)
	}
	if st.Shards[1].Error != "" || st.Shards[1].State != obs.HealthOK {
		t.Fatalf("recovered shard row: %+v", st.Shards[1])
	}
}

// TestFleetHealthRuleFires checks a rule evaluated over scraped series:
// a shard whose spill depth crosses the critical threshold drives both
// the shard row and the fleet state, with the rule named in the reason.
func TestFleetHealthRuleFires(t *testing.T) {
	depth := int64(0)
	fetch := func(string) (obs.Snapshot, error) {
		reg := obs.NewRegistry()
		reg.Gauge("vapro_net_spill_depth", "net", "spilled batches").Set(depth)
		return reg.Snapshot(), nil
	}
	var tick int64
	fs := NewFleetScraper([]string{"a"}, FleetOptions{
		Fetch: fetch,
		Now:   func() int64 { tick += int64(time.Second); return tick },
	})
	if st := fs.ScrapeOnce(); st.State != obs.HealthOK {
		t.Fatalf("empty spill: %v", st.State)
	}
	depth = 600 // critical threshold is 512
	st := fs.ScrapeOnce()
	if st.State != obs.HealthCritical {
		t.Fatalf("deep spill: fleet %v, want critical (reasons %v)", st.State, st.Reasons)
	}
	if len(st.Reasons) == 0 || !strings.Contains(st.Reasons[0], "spill-depth") {
		t.Fatalf("reasons: %v", st.Reasons)
	}
	if fs.health.Load() != int64(obs.HealthCritical) {
		t.Fatal("vapro_fleet_health gauge not updated")
	}
	depth = 0
	if st := fs.ScrapeOnce(); st.State != obs.HealthOK {
		t.Fatalf("drained spill: %v (%v)", st.State, st.Reasons)
	}
}

// TestFleetStatusFromSnapshot pins the single-endpoint fallback of the
// stable schema: a tier snapshot yields one row per shard, and a row
// the tier promised but the scrape lacks reads "no data" instead of
// being silently dropped.
func TestFleetStatusFromSnapshot(t *testing.T) {
	tier := NewShardedPool(8, 4, shardTestOptions())
	defer tier.Close()
	for r := 0; r < 8; r++ {
		tier.Consume(r, []trace.Fragment{frag(r, 0, 100)})
	}
	snap := tier.MergedSnapshot()
	st := FleetStatusFromSnapshot(&snap, nil)
	if st.Source != "endpoint" {
		t.Fatalf("source %q", st.Source)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("shard rows: %d", len(st.Shards))
	}
	var resident float64
	for _, row := range st.Shards {
		resident += row.ResidentRanks
	}
	if resident != 8 {
		t.Fatalf("resident ranks across rows: %v", resident)
	}

	// A snapshot claiming more shards than it has rows for: the missing
	// row must be explicit.
	reg := obs.NewRegistry()
	reg.Gauge("vapro_shards", "shard", "shards").Set(2)
	reg.Func("vapro_shard0_resident_ranks", "shard", "ranks", func() float64 { return 3 })
	partial := reg.Snapshot()
	st = FleetStatusFromSnapshot(&partial, nil)
	if len(st.Shards) != 2 {
		t.Fatalf("partial rows: %d", len(st.Shards))
	}
	if st.Shards[1].State != obs.HealthUnreachable || st.Shards[1].Error != "no data" {
		t.Fatalf("missing row not surfaced: %+v", st.Shards[1])
	}

	// A plain pool snapshot yields one synthetic row.
	p := NewPool(4, DefaultOptions())
	defer p.Close()
	ps := p.met.Registry.Snapshot()
	st = FleetStatusFromSnapshot(&ps, nil)
	if len(st.Shards) != 1 || st.Shards[0].Shard != 0 {
		t.Fatalf("pool rows: %+v", st.Shards)
	}
}

// TestFleetSetTargets checks rebalance behavior: history is kept for
// unchanged addresses and reset for moved shards.
func TestFleetSetTargets(t *testing.T) {
	fetch := func(target string) (obs.Snapshot, error) {
		reg := obs.NewRegistry()
		reg.Counter("vapro_wire_frames_total", "wire", "frames").Add(1)
		return reg.Snapshot(), nil
	}
	fs := NewFleetScraper([]string{"a", "b"}, FleetOptions{Fetch: fetch})
	fs.ScrapeOnce()
	keep := fs.shards[0]
	fs.SetTargets([]string{"a", "c"})
	if fs.shards[0] != keep {
		t.Fatal("unchanged target lost its history")
	}
	if fs.shards[1].snap != nil || fs.shards[1].target != "c" {
		t.Fatalf("moved target kept stale state: %+v", fs.shards[1])
	}
	if got := fmt.Sprint(len(fs.shards)); got != "2" {
		t.Fatalf("targets: %s", got)
	}
}
