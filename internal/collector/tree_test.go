package collector

import (
	"testing"

	"vapro/internal/trace"
)

func trace_frag(rank int, start int64) []trace.Fragment {
	return []trace.Fragment{{
		Rank: rank, Kind: trace.Comp, From: 1, State: 2,
		Start: start, Elapsed: 500,
		Counters: trace.CountersView{TotIns: 1000, Cycles: 500},
	}}
}

func TestTreeShape(t *testing.T) {
	cases := []struct {
		ranks, fanout, leaves, levels int
	}{
		{1, 4, 1, 1},
		{16, 4, 4, 2},
		{256, 4, 64, 4},   // 64 -> 16 -> 4 -> 1
		{1024, 8, 128, 4}, // 128 -> 16 -> 2 -> 1
	}
	for _, c := range cases {
		tr := NewTree(c.ranks, c.fanout)
		if tr.Leaves() != c.leaves {
			t.Fatalf("ranks=%d fanout=%d leaves=%d, want %d", c.ranks, c.fanout, tr.Leaves(), c.leaves)
		}
		if tr.Levels() != c.levels {
			t.Fatalf("ranks=%d fanout=%d levels=%d, want %d", c.ranks, c.fanout, tr.Levels(), c.levels)
		}
	}
}

func TestTreeReducePreservesFragments(t *testing.T) {
	tr := NewTree(64, 4)
	total := 0
	for rank := 0; rank < 64; rank++ {
		for i := 0; i < 3; i++ {
			tr.Consume(rank, trace_frag(rank, int64(i)*1000))
			total++
		}
	}
	g := tr.Reduce()
	if g.NumFragments() != total {
		t.Fatalf("root graph has %d fragments, want %d", g.NumFragments(), total)
	}
	if tr.Batches() != total {
		t.Fatalf("batches: %d", tr.Batches())
	}
}

func TestTreeReduceIdempotentTopology(t *testing.T) {
	// Reducing twice must not duplicate fragments (Merge into the same
	// root would; the API contract is one Reduce per collection epoch,
	// but a second call on an unchanged tree must at least not lose
	// data).
	tr := NewTree(8, 2)
	tr.Consume(0, trace_frag(0, 0))
	g1 := tr.Reduce()
	if g1.NumFragments() != 1 {
		t.Fatalf("first reduce: %d", g1.NumFragments())
	}
}
