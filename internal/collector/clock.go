package collector

import "time"

// Clock abstracts wall time for the resilient transport so every
// backoff, write deadline and drain timeout is driven by an injectable
// source: tests replace it with faults.FakeClock (which satisfies this
// interface structurally) and replay exact retry schedules with no real
// sleeps.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
