package collector

import (
	"testing"

	"vapro/internal/diagnose"
	"vapro/internal/sim"
	"vapro/internal/trace"
)

func diagnoseDefaults() diagnose.Options { return diagnose.DefaultOptions() }

func monFrag(rank int, start, elapsed int64, slow bool) trace.Fragment {
	f := trace.Fragment{
		Rank: rank, Kind: trace.Comp, From: 1, State: 2,
		Start: start, Elapsed: elapsed,
		Counters: trace.CountersView{TotIns: 1_000_000, Cycles: 500_000},
	}
	return f
}

// feedMonitor streams a synthetic run: 4 ranks, 1ms fragments over
// 100ms, with rank 2 running 2x slower during [40ms, 70ms).
func feedMonitor(m *Monitor) {
	for rank := 0; rank < 4; rank++ {
		t := int64(0)
		var batch []trace.Fragment
		for t < 100_000_000 {
			el := int64(1_000_000)
			if rank == 2 && t >= 40_000_000 && t < 70_000_000 {
				el = 2_000_000
			}
			batch = append(batch, monFrag(rank, t, el, el > 1_000_000))
			t += el
			if len(batch) == 8 {
				m.Consume(rank, batch)
				batch = nil
			}
		}
		m.Consume(rank, batch)
	}
	m.Flush()
}

func monOpts(ranks int) MonitorOptions {
	opt := DefaultMonitorOptions(ranks)
	opt.Period = 20 * sim.Millisecond
	opt.Overlap = 10 * sim.Millisecond
	opt.Detect.Window = 5 * sim.Millisecond
	opt.MinRegionLoss = sim.Millisecond
	return opt
}

func TestMonitorDetectsOnline(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	feedMonitor(m)
	events := m.Drain()
	if len(events) == 0 {
		t.Fatal("online monitor produced no events")
	}
	// The first event's window must overlap the injected slowdown.
	ev := events[0]
	if ev.WindowEnd <= sim.Time(40*sim.Millisecond) || ev.WindowStart >= sim.Time(70*sim.Millisecond) {
		t.Fatalf("first event window [%v, %v] misses the slowdown", ev.WindowStart, ev.WindowEnd)
	}
	found := false
	for _, reg := range ev.Regions {
		if reg.RankMin <= 2 && reg.RankMax >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("event regions miss rank 2: %+v", ev.Regions)
	}
	// Drain clears.
	if len(m.Drain()) != 0 {
		t.Fatal("Drain did not clear")
	}
}

func TestMonitorProgressiveArming(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	if m.Stage() != 1 {
		t.Fatal("initial stage")
	}
	before := pool.Armed.Get()
	feedMonitor(m)
	if m.Stage() <= 1 {
		t.Fatal("variance did not escalate the stage")
	}
	after := pool.Armed.Get()
	if after == before {
		t.Fatal("counter groups not widened")
	}
	if !after.Has(sim.GroupBackend) {
		t.Fatal("stage 2 must arm the backend group")
	}
}

func TestMonitorQuietRunNoEvents(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	for rank := 0; rank < 4; rank++ {
		var batch []trace.Fragment
		for t := int64(0); t < 100_000_000; t += 1_000_000 {
			batch = append(batch, monFrag(rank, t, 1_000_000, false))
		}
		m.Consume(rank, batch)
	}
	m.Flush()
	if events := m.Drain(); len(events) != 0 {
		t.Fatalf("quiet run produced %d events", len(events))
	}
	if m.Stage() != 1 {
		t.Fatal("quiet run escalated stages")
	}
}

func TestMonitorWaitsForAllRanks(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	// Only 3 of 4 ranks report: no window may close.
	for rank := 0; rank < 3; rank++ {
		var batch []trace.Fragment
		for t := int64(0); t < 100_000_000; t += 1_000_000 {
			el := int64(1_000_000)
			if rank == 2 {
				el = 2_000_000
			}
			batch = append(batch, monFrag(rank, t, el, false))
		}
		m.Consume(rank, batch)
	}
	if events := m.Drain(); len(events) != 0 {
		t.Fatalf("window closed before all ranks reported: %d events", len(events))
	}
}

// Overlapped windows must share clusterings: elements that did not grow
// between two window analyses are served from the monitor's cache.
func TestMonitorReusesClusteringsAcrossWindows(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	feedMonitor(m)
	hits, misses := m.CacheStats()
	if misses == 0 {
		t.Fatal("monitor never clustered anything")
	}
	if hits == 0 {
		t.Fatal("overlapped windows re-clustered every element (no cache hits)")
	}
}

func TestMonitorDiagnoseEvent(t *testing.T) {
	pool := NewPool(4, DefaultOptions())
	m := NewMonitor(pool, monOpts(4))
	feedMonitor(m)
	events := m.Drain()
	if len(events) == 0 {
		t.Skip("no events")
	}
	rep := m.DiagnoseEvent(&events[0], diagnoseDefaults())
	if rep == nil {
		t.Fatal("no diagnosis")
	}
	if rep.AbnormalFrags == 0 {
		t.Fatal("diagnosis saw no abnormal fragments")
	}
}
