package stats

import (
	"math"
	"testing"

	"vapro/internal/sim"
)

func TestKSSameDistribution(t *testing.T) {
	rng := sim.NewRNG(1)
	var a, b []float64
	for i := 0; i < 300; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
	}
	d, p := KolmogorovSmirnov(a, b)
	if p < 0.05 {
		t.Fatalf("same distribution rejected: D=%v p=%v", d, p)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	rng := sim.NewRNG(2)
	var a, b []float64
	for i := 0; i < 300; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64()+1)
	}
	d, p := KolmogorovSmirnov(a, b)
	if p > 1e-6 {
		t.Fatalf("unit shift not detected: D=%v p=%v", d, p)
	}
	if d < 0.3 {
		t.Fatalf("D too small for unit shift: %v", d)
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, p := KolmogorovSmirnov(xs, xs)
	if d != 0 || p < 0.99 {
		t.Fatalf("identical samples: D=%v p=%v", d, p)
	}
}

func TestKSDegenerate(t *testing.T) {
	if _, p := KolmogorovSmirnov(nil, []float64{1}); p != 1 {
		t.Fatal("empty sample")
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, _ := KolmogorovSmirnov(a, b)
	if d != 1 {
		t.Fatalf("disjoint supports must give D=1, got %v", d)
	}
}

func TestWelchT(t *testing.T) {
	rng := sim.NewRNG(3)
	var a, b, c []float64
	for i := 0; i < 200; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
		c = append(c, rng.NormFloat64()*3+2)
	}
	if _, p := WelchT(a, b); p < 0.05 {
		t.Fatalf("equal means rejected: p=%v", p)
	}
	tv, p := WelchT(a, c)
	if p > 1e-6 {
		t.Fatalf("mean shift not detected: p=%v", p)
	}
	if tv > 0 {
		t.Fatalf("sign of t: %v", tv)
	}
	if _, p := WelchT([]float64{1}, a); p != 1 {
		t.Fatal("degenerate input")
	}
	// Zero variance, equal means.
	if _, p := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); p != 1 {
		t.Fatal("identical constants")
	}
	if tv, _ := WelchT([]float64{2, 2, 2}, []float64{3, 3, 3}); !math.IsInf(tv, 1) && !math.IsInf(tv, -1) {
		t.Fatalf("distinct constants t=%v", tv)
	}
}
