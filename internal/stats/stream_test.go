package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// TestStreamOLSMatchesBatchFuzz pins the streaming solver to the batch
// OLS within 1e-9 relative tolerance across random designs: same
// coefficients, errors, t stats, p-values and fit quality, and the same
// degeneracy verdicts.
func TestStreamOLSMatchesBatchFuzz(t *testing.T) {
	const tol = 1e-9
	for sched := 0; sched < 200; sched++ {
		sched := sched
		t.Run(fmt.Sprintf("sched%03d", sched), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(4100 + sched)))
			k := 1 + rng.Intn(5)
			n := k + 2 + rng.Intn(60)
			if sched%7 == 0 {
				n = k + rng.Intn(2) // degenerate: too few observations
			}
			xs := make([][]float64, k)
			for j := range xs {
				xs[j] = make([]float64, n)
				for i := 0; i < n; i++ {
					xs[j][i] = rng.NormFloat64() * float64(1+rng.Intn(5))
				}
			}
			if sched%11 == 0 && k >= 2 {
				copy(xs[1], xs[0]) // singular design
			}
			y := make([]float64, n)
			for i := 0; i < n; i++ {
				y[i] = 2.5
				for j := range xs {
					y[i] += float64(j+1) * xs[j][i]
				}
				y[i] += rng.NormFloat64() * 0.3
			}

			want, werr := OLS(y, xs)
			s := NewStreamOLS(k)
			row := make([]float64, k)
			for i := 0; i < n; i++ {
				for j := range xs {
					row[j] = xs[j][i]
				}
				s.Add(row, y[i])
			}
			got, gerr := s.Solve()
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("degeneracy verdicts differ: batch %v, stream %v", werr, gerr)
			}
			if werr != nil {
				return
			}
			if got.N != want.N || got.DF != want.DF {
				t.Fatalf("N/DF differ: (%d,%d) vs (%d,%d)", got.N, got.DF, want.N, want.DF)
			}
			for j := range want.Coef {
				if !relClose(got.Coef[j], want.Coef[j], tol) {
					t.Fatalf("coef[%d]: %v vs %v", j, got.Coef[j], want.Coef[j])
				}
				if !relClose(got.StdErr[j], want.StdErr[j], tol) {
					t.Fatalf("stderr[%d]: %v vs %v", j, got.StdErr[j], want.StdErr[j])
				}
				if !relClose(got.TStat[j], want.TStat[j], tol) {
					t.Fatalf("tstat[%d]: %v vs %v", j, got.TStat[j], want.TStat[j])
				}
				if !relClose(got.PValue[j], want.PValue[j], 1e-8) {
					t.Fatalf("pvalue[%d]: %v vs %v", j, got.PValue[j], want.PValue[j])
				}
			}
			if !relClose(got.R2, want.R2, 1e-8) || !relClose(got.AdjR2, want.AdjR2, 1e-8) {
				t.Fatalf("fit quality differs: R2 %v vs %v", got.R2, want.R2)
			}
		})
	}
}

// TestStreamOLSAddAllocs pins the rank-1 update as allocation-free.
func TestStreamOLSAddAllocs(t *testing.T) {
	s := NewStreamOLS(8)
	x := make([]float64, 8)
	avg := testing.AllocsPerRun(100, func() {
		for j := range x {
			x[j] = float64(j) * 1.5
		}
		s.Add(x, 42.0)
	})
	if avg != 0 {
		t.Fatalf("StreamOLS.Add allocated %.1f times per call; want 0", avg)
	}
}
