package stats

import "math"

// StreamOLS maintains the sufficient statistics of an ordinary-least-
// squares fit — X'X, X'y, y'y with an intercept in position 0 — under
// rank-1 observation updates, so a growing population costs O(k²) per
// added observation and the model is solved only on demand. It exists
// for the steady-state diagnosis plane: cluster populations grow by a
// few fragments per window, and refitting from the flat design matrix
// was the last per-tick cost proportional to resident data.
//
// Solve answers from the moment equations rather than residual sums, so
// its output matches the batch OLS to floating-point reassociation (the
// equivalence tests pin a 1e-9 relative tolerance, not bit identity).
type StreamOLS struct {
	k   int
	n   int
	xtx []float64 // (k+1)×(k+1) row-major, symmetric
	xty []float64 // k+1
	yty float64
}

// NewStreamOLS returns an accumulator for k explanatory variables.
func NewStreamOLS(k int) *StreamOLS {
	return &StreamOLS{
		k:   k,
		xtx: make([]float64, (k+1)*(k+1)),
		xty: make([]float64, k+1),
	}
}

// N returns the number of observations added.
func (s *StreamOLS) N() int { return s.n }

// K returns the number of explanatory variables.
func (s *StreamOLS) K() int { return s.k }

// Add folds one observation (x, y) into the moments. len(x) must be k.
// It never allocates — this is the per-fragment hot path.
func (s *StreamOLS) Add(x []float64, y float64) {
	d := s.k + 1
	// Row 0: intercept column (value 1).
	s.xtx[0]++
	for j := 1; j < d; j++ {
		s.xtx[j] += x[j-1]
	}
	for i := 1; i < d; i++ {
		xi := x[i-1]
		row := s.xtx[i*d:]
		row[0] += xi
		for j := 1; j < d; j++ {
			row[j] += xi * x[j-1]
		}
	}
	s.xty[0] += y
	for j := 1; j < d; j++ {
		s.xty[j] += x[j-1] * y
	}
	s.yty += y * y
	s.n++
}

// Solve fits the model from the accumulated moments.
func (s *StreamOLS) Solve() (*OLSResult, error) {
	return SolveMomentOLS(s.n, s.k, s.xtx, s.xty, s.yty)
}

// SolveMomentOLS fits y = Xb + e from the moment form: n observations,
// k explanatory variables, xtx the (k+1)×(k+1) row-major X'X with the
// intercept in position 0, xty = X'y, yty = y'y. The degeneracy rules,
// standard errors, t statistics and p-values mirror OLS exactly; the
// fit-quality sums are computed from the moments (rss = y'y − b·X'y,
// tss = y'y − n·ȳ²), which is the algebraic identity of the batch
// residual loops.
func SolveMomentOLS(n, k int, xtx, xty []float64, yty float64) (*OLSResult, error) {
	d := k + 1
	if n < k+2 || len(xtx) != d*d || len(xty) != d {
		return nil, ErrDegenerate
	}
	m := NewMatrix(d, d)
	copy(m.Data, xtx)
	inv, err := m.Inverse()
	if err != nil {
		return nil, ErrDegenerate
	}
	coef := inv.MulVec(xty)

	rss := yty
	for j := 0; j < d; j++ {
		rss -= coef[j] * xty[j]
	}
	if rss < 0 {
		rss = 0 // reassociation noise on a perfect fit
	}
	ym := xty[0] / float64(n)
	tss := yty - float64(n)*ym*ym
	if tss < 0 {
		tss = 0
	}
	df := n - d
	sigma2 := rss / float64(df)
	res := &OLSResult{
		Coef:   coef,
		StdErr: make([]float64, d),
		TStat:  make([]float64, d),
		PValue: make([]float64, d),
		DF:     df,
		N:      n,
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(df)
	}
	for j := 0; j < d; j++ {
		se := math.Sqrt(sigma2 * inv.At(j, j))
		res.StdErr[j] = se
		if se > 0 {
			res.TStat[j] = coef[j] / se
			res.PValue[j] = StudentTSF2(res.TStat[j], float64(df))
		} else {
			res.TStat[j] = math.Inf(1)
			res.PValue[j] = 0
		}
	}
	return res, nil
}
