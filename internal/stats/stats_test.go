package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vapro/internal/sim"
)

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(c.Data[i]-v) > 1e-12 {
			t.Fatalf("mul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatrixInverse(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{4, 7, 2, 3, 6, 1, 2, 5, 3})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	id := Identity(3)
	for i := range prod.Data {
		if math.Abs(prod.Data[i]-id.Data[i]) > 1e-9 {
			t.Fatalf("A·A⁻¹ ≠ I at %d: %v", i, prod.Data[i])
		}
	}
}

func TestSingularInverse(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := a.Inverse(); err != ErrSingular {
		t.Fatalf("singular inverse err = %v", err)
	}
	if d := a.Det(); d != 0 {
		t.Fatalf("singular det = %v", d)
	}
}

func TestDetKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{3, 8, 4, 6})
	if d := a.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Fatalf("det = %v, want -14", d)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Corr(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Corr(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := Corr(xs, []float64{1, 1, 1, 1, 1}); c != 0 {
		t.Fatalf("constant series correlation = %v", c)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 %v", p)
	}
}

// Distribution CDFs against reference values (R/scipy).
func TestChiSquareCDF(t *testing.T) {
	cases := []struct{ x, df, want float64 }{
		{3.841, 1, 0.950},
		{5.991, 2, 0.950},
		{18.307, 10, 0.950},
		{2.706, 1, 0.900},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.df); math.Abs(got-c.want) > 0.001 {
			t.Fatalf("chi2(%v, %v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
	if ChiSquareCDF(-1, 1) != 0 {
		t.Fatal("negative x")
	}
}

func TestStudentT(t *testing.T) {
	cases := []struct{ tv, df, want float64 }{
		{2.228, 10, 0.975},
		{1.812, 10, 0.950},
		{12.706, 1, 0.975},
		{0, 5, 0.5},
	}
	for _, c := range cases {
		if got := StudentTCDF(c.tv, c.df); math.Abs(got-c.want) > 0.001 {
			t.Fatalf("t-cdf(%v, %v) = %v, want %v", c.tv, c.df, got, c.want)
		}
	}
	// Two-sided p-value.
	if p := StudentTSF2(2.228, 10); math.Abs(p-0.05) > 0.001 {
		t.Fatalf("two-sided p = %v, want 0.05", p)
	}
	// Symmetry.
	if a, b := StudentTCDF(-1.5, 7), 1-StudentTCDF(1.5, 7); math.Abs(a-b) > 1e-9 {
		t.Fatalf("t symmetry: %v vs %v", a, b)
	}
}

func TestFDist(t *testing.T) {
	// F(0.95; 5, 10) critical value is 3.326.
	if got := FCDF(3.326, 5, 10); math.Abs(got-0.95) > 0.001 {
		t.Fatalf("F cdf = %v", got)
	}
	if FSF(3.326, 5, 10) > 0.051 {
		t.Fatal("F sf")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(1.96); math.Abs(got-0.975) > 0.0001 {
		t.Fatalf("Phi(1.96) = %v", got)
	}
	if got := NormalCDF(0); got != 0.5 {
		t.Fatalf("Phi(0) = %v", got)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("beta bounds")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestRegIncGammaBounds(t *testing.T) {
	if RegIncGammaP(2, 0) != 0 {
		t.Fatal("gamma at 0")
	}
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.5, 1, 3} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaP(1, x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
}

// OLS recovers known coefficients from noisy data.
func TestOLSRecovery(t *testing.T) {
	rng := sim.NewRNG(4)
	n := 500
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.Float64() * 10
		x2[i] = rng.Float64() * 5
		y[i] = 3 + 2*x1[i] - 1.5*x2[i] + 0.1*rng.NormFloat64()
	}
	res, err := OLS(y, [][]float64{x1, x2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1.5}
	for i, c := range want {
		if math.Abs(res.Coef[i]-c) > 0.05 {
			t.Fatalf("coef[%d] = %v, want %v", i, res.Coef[i], c)
		}
		if res.PValue[i] > 1e-6 {
			t.Fatalf("true coefficient not significant: p=%v", res.PValue[i])
		}
	}
	if res.R2 < 0.99 {
		t.Fatalf("R² = %v", res.R2)
	}
}

func TestOLSInsignificantNoise(t *testing.T) {
	rng := sim.NewRNG(5)
	n := 300
	x := make([]float64, n)
	junk := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64()
		junk[i] = rng.Float64() // unrelated to y
		y[i] = 5*x[i] + 0.5*rng.NormFloat64()
	}
	res, err := OLS(y, [][]float64{x, junk})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue[2] < 0.01 {
		t.Fatalf("junk variable significant: p=%v", res.PValue[2])
	}
}

func TestOLSDegenerate(t *testing.T) {
	if _, err := OLS([]float64{1, 2}, [][]float64{{1, 2}}); err != ErrDegenerate {
		t.Fatalf("short input err = %v", err)
	}
	if _, err := OLS([]float64{1, 2, 3}, [][]float64{{1, 2}}); err != ErrDegenerate {
		t.Fatalf("ragged input err = %v", err)
	}
}

// Farrar–Glauber flags collinear designs and passes orthogonal ones.
func TestFarrarGlauber(t *testing.T) {
	rng := sim.NewRNG(6)
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
		c[i] = a[i]*2 + 0.01*rng.NormFloat64() // collinear with a
	}
	_, _, multi := FarrarGlauber([][]float64{a, b, c}, 0.05)
	if !multi {
		t.Fatal("collinear design not flagged")
	}
	_, p, multi := FarrarGlauber([][]float64{a, b}, 0.05)
	if multi {
		t.Fatalf("orthogonal design flagged (p=%v)", p)
	}
}

func TestVIF(t *testing.T) {
	rng := sim.NewRNG(7)
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
		c[i] = a[i] + 0.02*rng.NormFloat64()
	}
	v := VIF([][]float64{a, b, c})
	if v[0] < 5 || v[2] < 5 {
		t.Fatalf("collinear pair VIFs too low: %v", v)
	}
	if v[1] > 2 {
		t.Fatalf("independent variable inflated: %v", v[1])
	}
}

// V-measure sanity on hand-built clusterings.
func TestVMeasure(t *testing.T) {
	// Perfect clustering.
	h, c, v := VMeasure([]int{0, 0, 1, 1}, []int{5, 5, 9, 9})
	if h != 1 || c != 1 || v != 1 {
		t.Fatalf("perfect clustering: h=%v c=%v v=%v", h, c, v)
	}
	// Two classes merged into one cluster: complete but not homogeneous.
	h, c, _ = VMeasure([]int{0, 0, 1, 1}, []int{3, 3, 3, 3})
	if c != 1 {
		t.Fatalf("merged clustering completeness = %v", c)
	}
	if h != 0 {
		t.Fatalf("merged clustering homogeneity = %v", h)
	}
	// One class split into two clusters: homogeneous but incomplete.
	h, c, _ = VMeasure([]int{0, 0, 0, 0}, []int{1, 1, 2, 2})
	if h != 1 {
		t.Fatalf("split clustering homogeneity = %v", h)
	}
	if c != 0 {
		t.Fatalf("split clustering completeness = %v", c)
	}
	// Degenerate inputs.
	if h, c, v := VMeasure(nil, nil); h != 0 || c != 0 || v != 0 {
		t.Fatal("nil inputs")
	}
}

// Property: CDFs are monotone non-decreasing in x.
func TestCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x1 := math.Abs(math.Mod(a, 20))
		x2 := math.Abs(math.Mod(b, 20))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return ChiSquareCDF(x1, 4) <= ChiSquareCDF(x2, 4)+1e-12 &&
			StudentTCDF(x1, 7) <= StudentTCDF(x2, 7)+1e-12 &&
			FCDF(x1, 3, 9) <= FCDF(x2, 3, 9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
