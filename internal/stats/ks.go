package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov runs the two-sample Kolmogorov–Smirnov test: D is
// the maximum distance between the empirical CDFs of xs and ys, and P
// approximates the probability of a D at least this large under the
// null hypothesis that both samples come from one distribution
// (asymptotic Kolmogorov distribution with the standard small-sample
// correction). Used to attest distribution shifts such as the
// huge-page mitigation in Figure 16.
func KolmogorovSmirnov(xs, ys []float64) (d, p float64) {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return 0, 1
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	var i, j int
	for i < n && j < m {
		v := math.Min(a[i], b[j])
		for i < n && a[i] <= v {
			i++
		}
		for j < m && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}

	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	p = ksQ(lambda)
	return d, p
}

// ksQ is the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ (-1)^(k-1) exp(-2 k² λ²).
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// WelchT runs Welch's unequal-variance t-test and returns the t
// statistic and the two-sided p-value for the hypothesis that the two
// samples share a mean.
func WelchT(xs, ys []float64) (t, p float64) {
	n, m := float64(len(xs)), float64(len(ys))
	if n < 2 || m < 2 {
		return 0, 1
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	se := math.Sqrt(vx/n + vy/m)
	if se == 0 {
		if mx == my {
			return 0, 1
		}
		return math.Inf(1), 0
	}
	t = (mx - my) / se
	// Welch–Satterthwaite degrees of freedom.
	num := math.Pow(vx/n+vy/m, 2)
	den := math.Pow(vx/n, 2)/(n-1) + math.Pow(vy/m, 2)/(m-1)
	df := num / den
	p = StudentTSF2(t, df)
	return t, p
}
