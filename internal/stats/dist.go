package stats

import "math"

// Special functions and distribution CDFs, implemented with the
// standard continued-fraction / series expansions (Numerical Recipes
// style). Only the stdlib math package is used.

// logGamma is math.Lgamma without the sign.
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), for a > 0, x >= 0.
func RegIncGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContFrac(a, x)
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-logGamma(a))
}

// gammaContFrac evaluates Q(a,x) = 1-P(a,x) by continued fraction.
func gammaContFrac(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-logGamma(a)) * h
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b), for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	bt := math.Exp(logGamma(a+b) - logGamma(a) - logGamma(b) +
		a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaContFrac(a, b, x) / a
	}
	return 1 - bt*betaContFrac(b, a, 1-x)/b
}

// betaContFrac is the Lentz continued fraction for the incomplete beta.
func betaContFrac(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m < 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// ChiSquareCDF returns P(X <= x) for a chi-squared distribution with df
// degrees of freedom.
func ChiSquareCDF(x float64, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaP(df/2, x/2)
}

// ChiSquareSF returns the survival function P(X > x).
func ChiSquareSF(x float64, df float64) float64 { return 1 - ChiSquareCDF(x, df) }

// StudentTCDF returns P(T <= t) for Student's t with df degrees of
// freedom.
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTSF2 returns the two-sided p-value P(|T| > |t|).
func StudentTSF2(t float64, df float64) float64 {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return 0
	}
	return RegIncBeta(df/2, 0.5, df/(df+t*t))
}

// FCDF returns P(X <= f) for an F distribution with (d1, d2) degrees of
// freedom.
func FCDF(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(d1/2, d2/2, x)
}

// FSF returns the survival function P(X > f).
func FSF(f, d1, d2 float64) float64 { return 1 - FCDF(f, d1, d2) }

// NormalCDF returns the standard normal CDF.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
