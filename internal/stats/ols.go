package stats

import (
	"errors"
	"math"
)

// OLSResult is a fitted ordinary-least-squares model y = Xb + e with an
// intercept in position 0.
type OLSResult struct {
	Coef   []float64 // [intercept, b1..bk]
	StdErr []float64 // standard errors of Coef
	TStat  []float64 // t statistics
	PValue []float64 // two-sided p-values
	R2     float64   // coefficient of determination
	AdjR2  float64
	DF     int // residual degrees of freedom
	N      int // observations
}

// ErrDegenerate reports too few observations or a singular design.
var ErrDegenerate = errors.New("stats: degenerate OLS design")

// OLS fits y = b0 + b1*x1 + ... + bk*xk by ordinary least squares.
// xs holds one slice per explanatory variable, each len(y) long.
func OLS(y []float64, xs [][]float64) (*OLSResult, error) {
	n := len(y)
	k := len(xs)
	if n < k+2 {
		return nil, ErrDegenerate
	}
	for _, x := range xs {
		if len(x) != n {
			return nil, ErrDegenerate
		}
	}
	// Design matrix with intercept.
	X := NewMatrix(n, k+1)
	for i := 0; i < n; i++ {
		X.Set(i, 0, 1)
		for j := 0; j < k; j++ {
			X.Set(i, j+1, xs[j][i])
		}
	}
	xt := X.T()
	xtx := xt.Mul(X)
	inv, err := xtx.Inverse()
	if err != nil {
		return nil, ErrDegenerate
	}
	xty := xt.MulVec(y)
	coef := inv.MulVec(xty)

	// Residuals and fit quality.
	fitted := X.MulVec(coef)
	var rss, tss float64
	ym := Mean(y)
	for i := 0; i < n; i++ {
		r := y[i] - fitted[i]
		rss += r * r
		d := y[i] - ym
		tss += d * d
	}
	df := n - (k + 1)
	sigma2 := rss / float64(df)
	res := &OLSResult{
		Coef:   coef,
		StdErr: make([]float64, k+1),
		TStat:  make([]float64, k+1),
		PValue: make([]float64, k+1),
		DF:     df,
		N:      n,
	}
	if tss > 0 {
		res.R2 = 1 - rss/tss
		res.AdjR2 = 1 - (1-res.R2)*float64(n-1)/float64(df)
	}
	for j := 0; j <= k; j++ {
		se := math.Sqrt(sigma2 * inv.At(j, j))
		res.StdErr[j] = se
		if se > 0 {
			res.TStat[j] = coef[j] / se
			res.PValue[j] = StudentTSF2(res.TStat[j], float64(df))
		} else {
			res.TStat[j] = math.Inf(1)
			res.PValue[j] = 0
		}
	}
	return res, nil
}

// FarrarGlauber runs the Farrar–Glauber chi-squared test for
// multicollinearity on the explanatory variables: the statistic
//
//	χ² = -(n - 1 - (2k+5)/6) · ln det(R)
//
// with k(k-1)/2 degrees of freedom, where R is the correlation matrix.
// It returns the statistic, the p-value, and whether multicollinearity
// is detected at significance alpha (reject H0 of orthogonality).
func FarrarGlauber(xs [][]float64, alpha float64) (stat, p float64, multicollinear bool) {
	k := len(xs)
	if k < 2 {
		return 0, 1, false
	}
	n := len(xs[0])
	X := NewMatrix(n, k)
	for j, col := range xs {
		for i := 0; i < n; i++ {
			X.Set(i, j, col[i])
		}
	}
	R := CorrMatrix(X)
	det := R.Det()
	if det <= 0 {
		// Perfect collinearity: determinant underflows to <= 0.
		return math.Inf(1), 0, true
	}
	stat = -(float64(n-1) - (2*float64(k)+5)/6) * math.Log(det)
	if stat < 0 {
		stat = 0
	}
	df := float64(k*(k-1)) / 2
	p = ChiSquareSF(stat, df)
	return stat, p, p < alpha
}

// VIF returns the variance inflation factor of each explanatory
// variable: 1/(1-R²_j) from regressing x_j on the others. Infinite VIF
// means perfect collinearity.
func VIF(xs [][]float64) []float64 {
	k := len(xs)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		others := make([][]float64, 0, k-1)
		for i, x := range xs {
			if i != j {
				others = append(others, x)
			}
		}
		if len(others) == 0 {
			out[j] = 1
			continue
		}
		res, err := OLS(xs[j], others)
		if err != nil {
			out[j] = math.Inf(1)
			continue
		}
		if res.R2 >= 1 {
			out[j] = math.Inf(1)
		} else {
			out[j] = 1 / (1 - res.R2)
		}
	}
	return out
}
