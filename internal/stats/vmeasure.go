package stats

import "math"

// V-measure (Rosenberg & Hirschberg, 2007) scores a clustering against
// ground-truth class labels with two conditional-entropy criteria:
// homogeneity (each cluster contains only members of a single class)
// and completeness (all members of a class are assigned to the same
// cluster). Table 2 of the paper reports these for the fixed-workload
// identification.

// VMeasure returns homogeneity, completeness and their harmonic mean
// for the given ground-truth class labels and predicted cluster labels.
// Labels are arbitrary ints; the slices must have equal length.
func VMeasure(classes, clusters []int) (homogeneity, completeness, v float64) {
	n := len(classes)
	if n == 0 || n != len(clusters) {
		return 0, 0, 0
	}
	// Contingency table.
	type pair struct{ c, k int }
	joint := make(map[pair]int)
	classN := make(map[int]int)
	clustN := make(map[int]int)
	for i := 0; i < n; i++ {
		joint[pair{classes[i], clusters[i]}]++
		classN[classes[i]]++
		clustN[clusters[i]]++
	}
	fn := float64(n)

	entropy := func(counts map[int]int) float64 {
		h := 0.0
		for _, c := range counts {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	hClass := entropy(classN)
	hClust := entropy(clustN)

	// Conditional entropies H(class|cluster) and H(cluster|class).
	var hCK, hKC float64
	for p, cnt := range joint {
		pj := float64(cnt) / fn
		hCK -= pj * math.Log(float64(cnt)/float64(clustN[p.k]))
		hKC -= pj * math.Log(float64(cnt)/float64(classN[p.c]))
	}

	if hClass == 0 {
		homogeneity = 1
	} else {
		homogeneity = 1 - hCK/hClass
	}
	if hClust == 0 {
		completeness = 1
	} else {
		completeness = 1 - hKC/hClust
	}
	if homogeneity+completeness == 0 {
		return homogeneity, completeness, 0
	}
	v = 2 * homogeneity * completeness / (homogeneity + completeness)
	return homogeneity, completeness, v
}
