// Package stats provides the statistical machinery Vapro's diagnosis
// uses: dense matrix operations, Student-t / chi-squared / F
// distributions (via regularized incomplete beta and gamma functions),
// ordinary least squares with standard errors and p-values, the
// Farrar–Glauber multicollinearity test, variance inflation factors,
// and the V-measure cluster-quality scores used in Table 2.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("stats: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				r.Data[i*r.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return r
}

// MulVec returns m × v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("stats: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// ErrSingular reports a (numerically) singular matrix.
var ErrSingular = errors.New("stats: singular matrix")

// Inverse returns the inverse via Gauss-Jordan elimination with partial
// pivoting, or ErrSingular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("stats: inverse of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// Det returns the determinant via LU decomposition with partial
// pivoting. Exact zeros come back as 0.
func (m *Matrix) Det() float64 {
	if m.Rows != m.Cols {
		panic("stats: det of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			a.swapRows(col, pivot)
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	return det
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Stddev returns the unbiased sample standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Corr returns the Pearson correlation of xs and ys.
func Corr(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrMatrix returns the correlation matrix of the columns of X.
func CorrMatrix(x *Matrix) *Matrix {
	k := x.Cols
	cols := make([][]float64, k)
	for j := 0; j < k; j++ {
		c := make([]float64, x.Rows)
		for i := 0; i < x.Rows; i++ {
			c[i] = x.At(i, j)
		}
		cols[j] = c
	}
	r := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		r.Set(i, i, 1)
		for j := i + 1; j < k; j++ {
			c := Corr(cols[i], cols[j])
			r.Set(i, j, c)
			r.Set(j, i, c)
		}
	}
	return r
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation. xs must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
