// Package mpi is an in-process, virtual-time message-passing runtime:
// the substitution for real MPI documented in DESIGN.md. Ranks are
// goroutines, each with its own virtual clock; point-to-point messages
// carry virtual timestamps and a LogGP-style cost model decides when a
// transfer completes; collectives are bulk-synchronous (everyone leaves
// at the max arrival time plus the collective's cost).
//
// Vapro only ever observes invocations — call-site, arguments, and
// elapsed virtual time — so this runtime produces exactly the signal a
// PMPI interposition layer would see on a real cluster, deterministically
// and at 2048 ranks on a laptop.
package mpi

import (
	"fmt"
	"math"
	"sync"

	"vapro/internal/sim"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// CostModel holds the LogGP-style parameters of the interconnect.
type CostModel struct {
	LatencyIntra sim.Duration // one-way latency, same node
	LatencyInter sim.Duration // one-way latency, cross node
	GapIntra     float64      // ns per byte, same node (shared memory)
	GapInter     float64      // ns per byte, cross node
	Overhead     sim.Duration // CPU overhead per p2p call
	CollPerStage sim.Duration // per-stage overhead of a collective
}

// DefaultCostModel resembles the paper's testbed: a 50 Gb/s fabric with
// microsecond-scale latency and fast shared-memory transport.
func DefaultCostModel() CostModel {
	return CostModel{
		LatencyIntra: 600 * sim.Nanosecond,
		LatencyInter: 1500 * sim.Nanosecond,
		GapIntra:     0.05,
		GapInter:     0.16,
		Overhead:     300 * sim.Nanosecond,
		CollPerStage: 500 * sim.Nanosecond,
	}
}

// World is a communicator spanning `size` ranks placed on a simulated
// machine. Construct with NewWorld and drive with Run.
type World struct {
	size    int
	machine *sim.Machine
	env     sim.Environment
	cost    CostModel

	inboxes []*inbox

	collMu     sync.Mutex
	collSlots  map[uint64]*collSlot
	subSlots   map[uint64]*collSlot
	splitSlots map[uint64]*splitSlot
}

// NewWorld creates a communicator of the given size on machine m under
// environment env. Ranks are placed densely (machine.Place).
func NewWorld(size int, m *sim.Machine, env sim.Environment) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	if env == nil {
		env = sim.IdealEnv{}
	}
	w := &World{
		size:       size,
		machine:    m,
		env:        env,
		cost:       DefaultCostModel(),
		inboxes:    make([]*inbox, size),
		collSlots:  make(map[uint64]*collSlot),
		subSlots:   make(map[uint64]*collSlot),
		splitSlots: make(map[uint64]*splitSlot),
	}
	for i := range w.inboxes {
		w.inboxes[i] = newInbox()
	}
	return w
}

// SetCostModel overrides the interconnect parameters. Call before Run.
func (w *World) SetCostModel(c CostModel) { w.cost = c }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Machine returns the underlying simulated machine.
func (w *World) Machine() *sim.Machine { return w.machine }

// Env returns the environment the world runs under.
func (w *World) Env() sim.Environment { return w.env }

// Run starts one goroutine per rank executing body and blocks until all
// ranks return. It returns the final virtual clocks of all ranks (the
// per-rank execution times).
func (w *World) Run(body func(r *Rank)) []sim.Time {
	clocks := make([]sim.Time, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for i := 0; i < w.size; i++ {
		r := w.newRank(i)
		go func() {
			defer wg.Done()
			body(r)
			clocks[r.id] = r.clock
		}()
	}
	wg.Wait()
	return clocks
}

func (w *World) newRank(id int) *Rank {
	node, core := w.machine.Place(id)
	return &Rank{
		id:    id,
		world: w,
		node:  node,
		core:  core,
		rng:   w.machine.CoreRNG(node, core).Split(uint64(id)),
	}
}

// message is an in-flight point-to-point transfer. ctx is the
// communicator context: traffic from different communicators never
// matches (MPI's context guarantee); the world uses ctx 0.
type message struct {
	src, tag int
	ctx      uint64
	bytes    int
	avail    sim.Time // when the payload is fully available at the receiver
}

// inbox is an unbounded, condition-variable-guarded mailbox. Unbounded
// buffering models MPI's eager protocol and keeps senders non-blocking,
// so no artificial wall-clock deadlocks appear.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(m message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// take blocks until a message matching (src, tag, ctx) is present and
// removes it. Arrival order is preserved per sender, which is all MPI
// promises.
func (b *inbox) take(src, tag int, ctx uint64) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i := range b.queue {
			m := b.queue[i]
			if m.ctx == ctx && (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

// collSlot coordinates one collective operation across all ranks.
type collSlot struct {
	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	maxEnter sim.Time
	done     bool
	leaveAt  sim.Time
}

// collective synchronizes all ranks at their seq-th collective call and
// returns the common completion time: max arrival + cost.
func (w *World) collective(seq uint64, enter sim.Time, cost func(maxEnter sim.Time) sim.Time) sim.Time {
	w.collMu.Lock()
	s, ok := w.collSlots[seq]
	if !ok {
		s = &collSlot{}
		s.cond = sync.NewCond(&s.mu)
		w.collSlots[seq] = s
	}
	w.collMu.Unlock()

	s.mu.Lock()
	if enter > s.maxEnter {
		s.maxEnter = enter
	}
	s.arrived++
	if s.arrived == w.size {
		s.leaveAt = cost(s.maxEnter)
		s.done = true
		s.cond.Broadcast()
		// Last participant retires the slot.
		w.collMu.Lock()
		delete(w.collSlots, seq)
		w.collMu.Unlock()
	} else {
		for !s.done {
			s.cond.Wait()
		}
	}
	leave := s.leaveAt
	s.mu.Unlock()
	return leave
}

// subCollective synchronizes `size` participants at the slot keyed by
// seq (used by sub-communicator collectives; the key space is disjoint
// from world collectives by construction).
func (w *World) subCollective(seq uint64, size int, enter sim.Time, cost func(maxEnter sim.Time) sim.Time) sim.Time {
	w.collMu.Lock()
	s, ok := w.subSlots[seq]
	if !ok {
		s = &collSlot{}
		s.cond = sync.NewCond(&s.mu)
		w.subSlots[seq] = s
	}
	w.collMu.Unlock()

	s.mu.Lock()
	if enter > s.maxEnter {
		s.maxEnter = enter
	}
	s.arrived++
	if s.arrived == size {
		s.leaveAt = cost(s.maxEnter)
		s.done = true
		s.cond.Broadcast()
		w.collMu.Lock()
		delete(w.subSlots, seq)
		w.collMu.Unlock()
	} else {
		for !s.done {
			s.cond.Wait()
		}
	}
	leave := s.leaveAt
	s.mu.Unlock()
	return leave
}

// logStages returns ceil(log2(n)), the stage count of tree collectives.
func logStages(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func (w *World) sameNode(a, b int) bool {
	na, _ := w.machine.Place(a)
	nb, _ := w.machine.Place(b)
	return na == nb
}

// transferCost returns latency and per-byte gap between two ranks,
// scaled by the network slowdown active at time t.
func (w *World) transferCost(src, dst int, t sim.Time) (sim.Duration, float64) {
	node, core := w.machine.Place(src)
	slow := w.env.At(node, core, t).NetSlowdown
	if slow < 1 {
		slow = 1
	}
	if w.sameNode(src, dst) {
		return sim.Duration(float64(w.cost.LatencyIntra) * slow), w.cost.GapIntra * slow
	}
	return sim.Duration(float64(w.cost.LatencyInter) * slow), w.cost.GapInter * slow
}

func (w *World) checkRank(r int, op string) {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("mpi: %s: rank %d out of range [0,%d)", op, r, w.size))
	}
}
