package mpi

import (
	"testing"

	"vapro/internal/sim"
)

func smallWorld(size int) *World {
	m := sim.NewMachine(sim.Config{Nodes: 2, CoresPerNode: (size + 1) / 2, FreqGHz: 2, Seed: 1})
	return NewWorld(size, m, sim.IdealEnv{})
}

func TestSendRecvBasics(t *testing.T) {
	w := smallWorld(2)
	var got int
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 1024)
		} else {
			n, _ := r.Recv(0, 7)
			got = n
		}
	})
	if got != 1024 {
		t.Fatalf("payload size %d", got)
	}
}

// Causality: a receive can never complete before the matching send
// started plus the wire latency.
func TestRecvCausality(t *testing.T) {
	w := smallWorld(2)
	var sendStart, recvEnd sim.Time
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(sim.Workload{Instructions: 1e6, MemRatio: 0.5, WorkingSet: 1 << 20})
			sendStart = r.Clock()
			r.Send(1, 1, 4096)
		} else {
			r.Recv(0, 1)
			recvEnd = r.Clock()
		}
	})
	if recvEnd <= sendStart {
		t.Fatalf("receive completed at %v before send started at %v", recvEnd, sendStart)
	}
}

// FIFO per (src, tag): message order from one sender is preserved.
func TestP2PFIFO(t *testing.T) {
	w := smallWorld(2)
	var sizes []int
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 1; i <= 10; i++ {
				r.Send(1, 3, i*100)
			}
		} else {
			for i := 1; i <= 10; i++ {
				n, _ := r.Recv(0, 3)
				sizes = append(sizes, n)
			}
		}
	})
	for i, n := range sizes {
		if n != (i+1)*100 {
			t.Fatalf("out-of-order delivery: %v", sizes)
		}
	}
}

func TestTagMatching(t *testing.T) {
	w := smallWorld(2)
	var first, second int
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, 555)
			r.Send(1, 4, 444)
		} else {
			// Receive in reverse tag order; matching must be by tag,
			// not arrival.
			first, _ = r.Recv(0, 4)
			second, _ = r.Recv(0, 5)
		}
	})
	if first != 444 || second != 555 {
		t.Fatalf("tag matching failed: %d %d", first, second)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := smallWorld(3)
	var got int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 1:
			r.Send(0, 9, 123)
		case 0:
			n, _ := r.Recv(AnySource, AnyTag)
			got = n
		}
	})
	if got != 123 {
		t.Fatalf("wildcard receive got %d", got)
	}
}

func TestNonblocking(t *testing.T) {
	w := smallWorld(2)
	var got int
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			q := r.Isend(1, 2, 2048)
			r.Wait(q)
		} else {
			q := r.Irecv(0, 2)
			r.Compute(sim.Workload{Instructions: 1e5, MemRatio: 0.5, WorkingSet: 1 << 20})
			r.Wait(q)
			got = q.Bytes()
		}
	})
	if got != 2048 {
		t.Fatalf("Irecv bytes %d", got)
	}
}

func TestWaitall(t *testing.T) {
	w := smallWorld(2)
	total := 0
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Wait(r.Isend(1, i, 100))
			}
		} else {
			var qs []*Request
			for i := 0; i < 5; i++ {
				qs = append(qs, r.Irecv(0, i))
			}
			r.Waitall(qs)
			for _, q := range qs {
				total += q.Bytes()
			}
		}
	})
	if total != 500 {
		t.Fatalf("Waitall total %d", total)
	}
}

// Barrier semantics: everyone leaves at or after the last arrival.
func TestBarrierSynchronizes(t *testing.T) {
	w := smallWorld(4)
	arrive := make([]sim.Time, 4)
	leave := make([]sim.Time, 4)
	w.Run(func(r *Rank) {
		// Rank i computes i+1 units before the barrier.
		for i := 0; i <= r.ID(); i++ {
			r.Compute(sim.Workload{Instructions: 1e6, MemRatio: 0.3, WorkingSet: 1 << 20})
		}
		arrive[r.ID()] = r.Clock()
		r.Barrier()
		leave[r.ID()] = r.Clock()
	})
	var maxArrive sim.Time
	for _, a := range arrive {
		if a > maxArrive {
			maxArrive = a
		}
	}
	for i, l := range leave {
		if l < maxArrive {
			t.Fatalf("rank %d left barrier at %v before last arrival %v", i, l, maxArrive)
		}
	}
	// All leave together.
	for i := 1; i < 4; i++ {
		if leave[i] != leave[0] {
			t.Fatalf("ranks left barrier at different times: %v", leave)
		}
	}
}

func TestCollectivesComplete(t *testing.T) {
	w := smallWorld(8)
	clocks := w.Run(func(r *Rank) {
		r.Bcast(0, 1024)
		r.Reduce(0, 512)
		r.Allreduce(64)
		r.Alltoall(256)
		r.Allgather(128)
		r.Gather(0, 128)
		r.Barrier()
	})
	for i, c := range clocks {
		if c <= 0 {
			t.Fatalf("rank %d clock did not advance: %v", i, c)
		}
		if c != clocks[0] {
			t.Fatalf("collective-only program must end synchronized: %v", clocks)
		}
	}
}

func TestAllreduceCostGrowsWithSize(t *testing.T) {
	small := smallWorld(2).Run(func(r *Rank) { r.Allreduce(64) })
	big := smallWorld(2).Run(func(r *Rank) { r.Allreduce(1 << 20) })
	if big[0] <= small[0] {
		t.Fatalf("1MB allreduce (%v) not slower than 64B (%v)", big[0], small[0])
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []sim.Time {
		w := smallWorld(6)
		return w.Run(func(r *Rank) {
			left := (r.ID() + 5) % 6
			right := (r.ID() + 1) % 6
			for i := 0; i < 20; i++ {
				q := r.Irecv(left, 1)
				r.Send(right, 1, 4096)
				r.Compute(sim.Workload{Instructions: 1e5, MemRatio: 0.5, WorkingSet: 1 << 20})
				r.Wait(q)
			}
			r.Allreduce(8)
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual time not deterministic: rank %d %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManyRanksNoDeadlock(t *testing.T) {
	m := sim.NewMachine(sim.Config{Nodes: 8, CoresPerNode: 32, FreqGHz: 2, Seed: 1})
	w := NewWorld(256, m, sim.IdealEnv{})
	clocks := w.Run(func(r *Rank) {
		left := (r.ID() + 255) % 256
		right := (r.ID() + 1) % 256
		for i := 0; i < 5; i++ {
			q := r.Irecv(left, 0)
			r.Send(right, 0, 1024)
			r.Wait(q)
			r.Allreduce(8)
		}
	})
	if len(clocks) != 256 {
		t.Fatalf("clocks: %d", len(clocks))
	}
}

func TestNetworkNoiseSlowsTransfers(t *testing.T) {
	m := sim.NewMachine(sim.Config{Nodes: 2, CoresPerNode: 1, FreqGHz: 2, Seed: 1})
	run := func(env sim.Environment) sim.Duration {
		w := NewWorld(2, m, env)
		var elapsed sim.Duration
		w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 0, 1<<20)
			} else {
				_, elapsed = r.Recv(0, 0)
			}
		})
		return elapsed
	}
	quiet := run(sim.IdealEnv{})
	loud := run(netEnv{4})
	if loud <= quiet {
		t.Fatalf("network noise had no effect: %v vs %v", loud, quiet)
	}
}

type netEnv struct{ slow float64 }

func (e netEnv) At(node, core int, t sim.Time) sim.Conditions {
	c := sim.Ideal()
	c.NetSlowdown = e.slow
	return c
}

func TestRankPanicsOnBadPeer(t *testing.T) {
	w := smallWorld(2)
	panicked := false
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Send(99, 0, 1)
	})
	if !panicked {
		t.Fatal("Send to out-of-range rank did not panic")
	}
}
