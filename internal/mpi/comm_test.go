package mpi

import (
	"testing"

	"vapro/internal/sim"
)

func TestSplitSemantics(t *testing.T) {
	w := smallWorld(8)
	type info struct {
		size, rank, worldRank int
	}
	got := make([]info, 8)
	w.Run(func(r *Rank) {
		// Two colors: even and odd world ranks; key reverses order.
		c := r.Split(r.ID()%2, -r.ID())
		got[r.ID()] = info{size: c.Size(), rank: c.Rank(), worldRank: c.WorldRank(c.Rank())}
	})
	for wr, in := range got {
		if in.size != 4 {
			t.Fatalf("rank %d comm size %d", wr, in.size)
		}
		if in.worldRank != wr {
			t.Fatalf("rank %d maps to world rank %d", wr, in.worldRank)
		}
	}
	// Key -ID reverses: world rank 6 (largest even) gets comm rank 0.
	if got[6].rank != 0 || got[0].rank != 3 {
		t.Fatalf("key ordering: rank6->%d rank0->%d", got[6].rank, got[0].rank)
	}
}

func TestSplitUndefined(t *testing.T) {
	w := smallWorld(4)
	w.Run(func(r *Rank) {
		color := 0
		if r.ID() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		c := r.Split(color, 0)
		if r.ID() == 3 {
			if c != nil {
				t.Error("undefined color got a communicator")
			}
			return
		}
		if c.Size() != 3 {
			t.Errorf("comm size %d", c.Size())
		}
		c.Barrier()
	})
}

func TestCommP2PIsolation(t *testing.T) {
	w := smallWorld(4)
	w.Run(func(r *Rank) {
		c := r.Split(r.ID()%2, r.ID())
		// Within each 2-member comm, exchange with the peer using the
		// SAME tag both colors use: contexts must keep them separate.
		peer := 1 - c.Rank()
		if c.Rank() == 0 {
			c.Send(peer, 5, 100+r.ID())
			n, _ := c.Recv(peer, 5)
			if n != 200+r.ID()+2 {
				t.Errorf("rank %d got %d", r.ID(), n)
			}
		} else {
			n, _ := c.Recv(peer, 5)
			if n != 100+r.ID()-2 {
				t.Errorf("rank %d got %d", r.ID(), n)
			}
			c.Send(peer, 5, 200+r.ID())
		}
	})
}

func TestCommCollectives(t *testing.T) {
	w := smallWorld(8)
	leave := make([]sim.Time, 8)
	w.Run(func(r *Rank) {
		c := r.Split(r.ID()/4, r.ID()) // two comms of 4
		// Skew arrivals within the comm.
		for i := 0; i <= c.Rank(); i++ {
			r.Compute(sim.Workload{Instructions: 1e5, MemRatio: 0.3, WorkingSet: 1 << 20})
		}
		c.Barrier()
		c.Allreduce(64)
		c.Bcast(0, 128)
		leave[r.ID()] = r.Clock()
	})
	// Members of the same comm leave together; different comms may not.
	for g := 0; g < 2; g++ {
		base := leave[g*4]
		for i := 1; i < 4; i++ {
			if leave[g*4+i] != base {
				t.Fatalf("comm %d members desynchronized: %v", g, leave)
			}
		}
	}
}

func TestSendrecv(t *testing.T) {
	w := smallWorld(4)
	w.Run(func(r *Rank) {
		right := (r.ID() + 1) % 4
		left := (r.ID() + 3) % 4
		n, d := r.Sendrecv(right, 9, 1000+r.ID(), left, 9)
		if n != 1000+left {
			t.Errorf("rank %d sendrecv got %d", r.ID(), n)
		}
		if d <= 0 {
			t.Error("no elapsed time")
		}
	})
}

func TestScanAndReduceScatter(t *testing.T) {
	w := smallWorld(4)
	clocks := w.Run(func(r *Rank) {
		r.Scan(64)
		r.ReduceScatter(256)
	})
	for i, c := range clocks {
		if c <= 0 {
			t.Fatalf("rank %d idle", i)
		}
		if c != clocks[0] {
			t.Fatalf("collectives must synchronize: %v", clocks)
		}
	}
}

func TestCommSendrecvRing(t *testing.T) {
	w := smallWorld(6)
	w.Run(func(r *Rank) {
		c := r.Split(0, r.ID())
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() + c.Size() - 1) % c.Size()
		n, _ := c.Sendrecv(right, 2, 50+c.Rank(), left, 2)
		if n != 50+left {
			t.Errorf("ring exchange: rank %d got %d", c.Rank(), n)
		}
	})
}

func TestInterNodeCostsMore(t *testing.T) {
	m := sim.NewMachine(sim.Config{Nodes: 2, CoresPerNode: 2, FreqGHz: 2, Seed: 1})
	w := NewWorld(4, m, sim.IdealEnv{}) // ranks 0,1 node 0; ranks 2,3 node 1
	var intra, inter sim.Duration
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 1<<20) // same node
			r.Send(2, 1, 1<<20) // cross node
		case 1:
			_, intra = r.Recv(0, 0)
		case 2:
			_, inter = r.Recv(0, 1)
		}
	})
	if inter <= intra {
		t.Fatalf("inter-node transfer (%v) not slower than intra-node (%v)", inter, intra)
	}
}

func TestCollectiveSlotReuse(t *testing.T) {
	// Many collectives in sequence must not leak slots.
	w := smallWorld(4)
	w.Run(func(r *Rank) {
		for i := 0; i < 200; i++ {
			r.Barrier()
		}
	})
	w.collMu.Lock()
	n := len(w.collSlots) + len(w.subSlots) + len(w.splitSlots)
	w.collMu.Unlock()
	if n != 0 {
		t.Fatalf("%d collective slots leaked", n)
	}
}
