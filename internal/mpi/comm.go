package mpi

import (
	"sort"
	"sync"

	"vapro/internal/sim"
)

// Sub-communicators: MPI_Comm_split and collectives over subsets of
// ranks. Real applications (NPB CG's row/column exchanges, CESM's
// per-component communicators) are structured around these; the
// interposition layer observes their invocations exactly like
// world-wide ones.

// Comm is a communicator: an ordered subset of world ranks. The world
// itself is the zero context; derived communicators carry their own
// context so point-to-point traffic and collective sequences never mix
// across communicators (MPI's communication-context guarantee).
type Comm struct {
	world *World
	ctx   uint64
	// members maps comm rank -> world rank.
	members []int
	// myRank is this handle's comm rank (handles are per world-rank).
	myRank int
	owner  *Rank

	collSeq uint64
}

// splitSlot coordinates one Split call across all world ranks.
type splitSlot struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	entries []splitEntry
	done    bool
	groups  map[int][]splitEntry
	maxT    sim.Time
}

type splitEntry struct {
	worldRank int
	color     int
	key       int
}

var splitCtxCounter struct {
	mu sync.Mutex
	n  uint64
}

// Split partitions the world by color, ordering members by (key, world
// rank), and returns this rank's new communicator — the MPI_Comm_split
// semantics. Every rank of the world must call Split collectively.
// Ranks passing a negative color receive nil (MPI_UNDEFINED).
func (r *Rank) Split(color, key int) *Comm {
	w := r.world
	seq := r.nextSplit()
	w.collMu.Lock()
	s, ok := w.splitSlots[seq]
	if !ok {
		s = &splitSlot{}
		s.cond = sync.NewCond(&s.mu)
		w.splitSlots[seq] = s
	}
	w.collMu.Unlock()

	s.mu.Lock()
	s.entries = append(s.entries, splitEntry{worldRank: r.id, color: color, key: key})
	if r.clock > s.maxT {
		s.maxT = r.clock
	}
	s.arrived++
	if s.arrived == w.size {
		s.groups = make(map[int][]splitEntry)
		for _, e := range s.entries {
			if e.color >= 0 {
				s.groups[e.color] = append(s.groups[e.color], e)
			}
		}
		for _, g := range s.groups {
			g := g
			sort.Slice(g, func(i, j int) bool {
				if g[i].key != g[j].key {
					return g[i].key < g[j].key
				}
				return g[i].worldRank < g[j].worldRank
			})
		}
		s.done = true
		s.cond.Broadcast()
		w.collMu.Lock()
		delete(w.splitSlots, seq)
		w.collMu.Unlock()
	} else {
		for !s.done {
			s.cond.Wait()
		}
	}
	group := s.groups[color]
	maxT := s.maxT
	s.mu.Unlock()

	// Split is itself a (cheap) collective: synchronize like a barrier.
	r.AdvanceTo(maxT.Add(w.collCost(maxT, logStages(w.size), 0).Sub(maxT)))

	if color < 0 {
		return nil
	}
	members := make([]int, len(group))
	myRank := -1
	for i, e := range group {
		members[i] = e.worldRank
		if e.worldRank == r.id {
			myRank = i
		}
	}
	// Context id must be identical for all members of the same new
	// communicator and distinct across communicators: derive it from
	// the split sequence and color (deterministic across ranks).
	ctx := uint64(seq)<<20 | uint64(color+1)
	return &Comm{world: w, ctx: ctx, members: members, myRank: myRank, owner: r}
}

func (r *Rank) nextSplit() uint64 {
	r.splitSeq++
	return r.splitSeq | 1<<40 // disjoint from collective sequences
}

// Size returns the communicator's rank count.
func (c *Comm) Size() int { return len(c.members) }

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// WorldRank translates a comm rank to the world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// Send transmits within the communicator (comm-rank addressing).
func (c *Comm) Send(dst, tag, bytes int) sim.Duration {
	return c.owner.sendCtx(c.members[dst], tag, bytes, c.ctx)
}

// Recv receives within the communicator.
func (c *Comm) Recv(src, tag int) (int, sim.Duration) {
	from := AnySource
	if src != AnySource {
		from = c.members[src]
	}
	return c.owner.recvCtx(from, tag, c.ctx)
}

// Sendrecv performs the paired exchange: send to dst while receiving
// from src, completing when both transfers do (MPI_Sendrecv).
func (c *Comm) Sendrecv(dst, sendTag, bytes, src, recvTag int) (int, sim.Duration) {
	start := c.owner.clock
	c.Send(dst, sendTag, bytes)
	n, _ := c.Recv(src, recvTag)
	return n, c.owner.clock.Sub(start)
}

// commCollective synchronizes the communicator's members at their
// seq-th collective and returns the common leave time.
func (c *Comm) commCollective(bytes, stages int) sim.Duration {
	c.collSeq++
	start := c.owner.clock
	seq := c.ctx<<16 | c.collSeq
	leave := c.world.subCollective(seq, len(c.members), c.owner.clock, func(maxEnter sim.Time) sim.Time {
		return c.world.collCost(maxEnter, stages, bytes)
	})
	c.owner.AdvanceTo(leave)
	return c.owner.clock.Sub(start)
}

// Barrier blocks until every member has entered.
func (c *Comm) Barrier() sim.Duration { return c.commCollective(0, logStages(len(c.members))) }

// Allreduce combines bytes across the communicator.
func (c *Comm) Allreduce(bytes int) sim.Duration {
	return c.commCollective(bytes, 2*logStages(len(c.members)))
}

// Bcast broadcasts bytes from the comm-rank root.
func (c *Comm) Bcast(root, bytes int) sim.Duration {
	return c.commCollective(bytes, logStages(len(c.members)))
}
