package mpi

import "vapro/internal/sim"

// Rank is one process of a World. All methods must be called from the
// single goroutine Run started for it; the rank's virtual clock is
// advanced only by that goroutine.
type Rank struct {
	id    int
	world *World
	node  int
	core  int
	clock sim.Time
	rng   *sim.RNG

	collSeq  uint64
	splitSeq uint64
	reqSeq   uint64
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// World returns the communicator this rank belongs to.
func (r *Rank) World() *World { return r.world }

// Node returns the node index the rank is placed on.
func (r *Rank) Node() int { return r.node }

// Core returns the core index within the node.
func (r *Rank) Core() int { return r.core }

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() sim.Time { return r.clock }

// RNG returns the rank-private random stream.
func (r *Rank) RNG() *sim.RNG { return r.rng }

// Advance moves the rank's clock forward by d (used by the compute
// engine and the interposition layer to charge virtual time).
func (r *Rank) Advance(d sim.Duration) {
	if d > 0 {
		r.clock = r.clock.Add(d)
	}
}

// AdvanceTo moves the clock to t if t is later.
func (r *Rank) AdvanceTo(t sim.Time) {
	if t > r.clock {
		r.clock = t
	}
}

// Compute executes workload w on this rank's core, advances the clock,
// and returns the elapsed time and counters.
func (r *Rank) Compute(w sim.Workload) (sim.Duration, sim.Counters) {
	d, c := r.world.machine.Execute(r.node, r.core, w, r.clock, r.world.env, r.rng)
	r.Advance(d)
	return d, c
}

// Send transmits bytes to dst with tag and returns the elapsed time of
// the call (the eager-protocol local cost; the payload arrives at the
// receiver after the network latency and serialization delay).
func (r *Rank) Send(dst, tag, bytes int) sim.Duration {
	return r.sendCtx(dst, tag, bytes, 0)
}

func (r *Rank) sendCtx(dst, tag, bytes int, ctx uint64) sim.Duration {
	r.world.checkRank(dst, "Send")
	start := r.clock
	lat, gap := r.world.transferCost(r.id, dst, start)
	local := r.world.cost.Overhead + sim.Duration(float64(bytes)*gap*0.25)
	r.Advance(local)
	r.world.inboxes[dst].put(message{
		src:   r.id,
		tag:   tag,
		ctx:   ctx,
		bytes: bytes,
		avail: r.clock.Add(lat + sim.Duration(float64(bytes)*gap)),
	})
	return r.clock.Sub(start)
}

// Recv blocks until a message matching (src, tag) arrives, advances the
// clock to the transfer completion, and returns the payload size and the
// elapsed time of the call (including any waiting, as the paper's
// interception measures it).
func (r *Rank) Recv(src, tag int) (bytes int, elapsed sim.Duration) {
	return r.recvCtx(src, tag, 0)
}

func (r *Rank) recvCtx(src, tag int, ctx uint64) (bytes int, elapsed sim.Duration) {
	if src != AnySource {
		r.world.checkRank(src, "Recv")
	}
	start := r.clock
	m := r.world.inboxes[r.id].take(src, tag, ctx)
	end := start.Add(r.world.cost.Overhead)
	if m.avail > end {
		end = m.avail
	}
	r.AdvanceTo(end)
	return m.bytes, r.clock.Sub(start)
}

// Sendrecv performs the paired exchange on the world communicator.
func (r *Rank) Sendrecv(dst, sendTag, bytes, src, recvTag int) (int, sim.Duration) {
	start := r.clock
	r.Send(dst, sendTag, bytes)
	n, _ := r.Recv(src, recvTag)
	return n, r.clock.Sub(start)
}

// Request is a handle for a nonblocking operation, resolved by Wait.
type Request struct {
	rank     *Rank
	isRecv   bool
	src, tag int
	// completeAt is known at creation for sends; for receives it is
	// resolved at Wait time by matching the inbox.
	completeAt sim.Time
	done       bool
	bytes      int
}

// Isend starts a nonblocking send. The local call cost is charged
// immediately (eager protocol); the returned request completes as soon
// as the send buffer is reusable.
func (r *Rank) Isend(dst, tag, bytes int) *Request {
	r.world.checkRank(dst, "Isend")
	lat, gap := r.world.transferCost(r.id, dst, r.clock)
	r.Advance(r.world.cost.Overhead)
	r.world.inboxes[dst].put(message{
		src:   r.id,
		tag:   tag,
		ctx:   0,
		bytes: bytes,
		avail: r.clock.Add(lat + sim.Duration(float64(bytes)*gap)),
	})
	return &Request{rank: r, completeAt: r.clock, bytes: bytes}
}

// Irecv posts a nonblocking receive. Matching happens at Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	if src != AnySource {
		r.world.checkRank(src, "Irecv")
	}
	r.Advance(r.world.cost.Overhead)
	return &Request{rank: r, isRecv: true, src: src, tag: tag, completeAt: r.clock}
}

// Wait blocks until the request completes and advances the rank's clock
// to the completion time. It returns the elapsed time of the Wait call.
func (r *Rank) Wait(q *Request) sim.Duration {
	if q == nil || q.rank != r {
		panic("mpi: Wait on foreign or nil request")
	}
	start := r.clock
	if !q.done {
		if q.isRecv {
			m := r.world.inboxes[r.id].take(q.src, q.tag, 0)
			q.bytes = m.bytes
			if m.avail > q.completeAt {
				q.completeAt = m.avail
			}
		}
		q.done = true
	}
	r.Advance(r.world.cost.Overhead / 4)
	r.AdvanceTo(q.completeAt)
	return r.clock.Sub(start)
}

// Waitall waits for every request in order and returns the total elapsed
// time of the call.
func (r *Rank) Waitall(qs []*Request) sim.Duration {
	start := r.clock
	for _, q := range qs {
		r.Wait(q)
	}
	return r.clock.Sub(start)
}

// Bytes returns the payload size of a completed receive request.
func (q *Request) Bytes() int { return q.bytes }
