package mpi

import "vapro/internal/sim"

// Collectives are bulk-synchronous: every rank leaves at the maximum
// arrival time plus the operation's cost. This matches the observable
// behavior of tree-based implementations closely enough for Vapro, whose
// interception only records per-rank elapsed times (which do differ
// across ranks here: early arrivers wait longer).

// collCost computes the completion time of a tree collective moving
// `bytes` per stage across `stages` stages.
func (w *World) collCost(maxEnter sim.Time, stages int, bytes int) sim.Time {
	lat, gap := w.cost.LatencyInter, w.cost.GapInter
	if w.machine.Nodes() == 1 {
		lat, gap = w.cost.LatencyIntra, w.cost.GapIntra
	}
	node, core := 0, 0
	slow := w.env.At(node, core, maxEnter).NetSlowdown
	if slow < 1 {
		slow = 1
	}
	per := sim.Duration(float64(lat+w.cost.CollPerStage)*slow) +
		sim.Duration(float64(bytes)*gap*slow)
	return maxEnter.Add(sim.Duration(stages) * per)
}

func (r *Rank) nextColl() uint64 {
	r.collSeq++
	return r.collSeq
}

// Barrier blocks until every rank has entered and returns the elapsed
// time of the call.
func (r *Rank) Barrier() sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), 0)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Bcast broadcasts bytes from root to every rank.
func (r *Rank) Bcast(root, bytes int) sim.Duration {
	r.world.checkRank(root, "Bcast")
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytes)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Reduce combines bytes from every rank at root.
func (r *Rank) Reduce(root, bytes int) sim.Duration {
	r.world.checkRank(root, "Reduce")
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytes)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Allreduce combines bytes across all ranks and distributes the result.
func (r *Rank) Allreduce(bytes int) sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, 2*logStages(r.world.size), bytes)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Alltoall exchanges bytes between every pair of ranks.
func (r *Rank) Alltoall(bytesPerRank int) sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		// Pairwise exchange: P-1 rounds, but pipelined; model as
		// log stages with the full per-rank volume per stage.
		return r.world.collCost(maxEnter, logStages(r.world.size), bytesPerRank*logStages(r.world.size))
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Allgather gathers bytesPerRank from every rank to every rank.
func (r *Rank) Allgather(bytesPerRank int) sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytesPerRank*r.world.size/2)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Scan computes an inclusive prefix reduction across ranks (MPI_Scan):
// rank i's result depends on ranks 0..i, modeled as a log-stage sweep.
func (r *Rank) Scan(bytes int) sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytes)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// ReduceScatter combines bytesPerRank contributions and scatters one
// share to each rank (MPI_Reduce_scatter_block).
func (r *Rank) ReduceScatter(bytesPerRank int) sim.Duration {
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytesPerRank*logStages(r.world.size))
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}

// Gather collects bytesPerRank from every rank at root.
func (r *Rank) Gather(root, bytesPerRank int) sim.Duration {
	r.world.checkRank(root, "Gather")
	start := r.clock
	leave := r.world.collective(r.nextColl(), r.clock, func(maxEnter sim.Time) sim.Time {
		return r.world.collCost(maxEnter, logStages(r.world.size), bytesPerRank*r.world.size/4)
	})
	r.AdvanceTo(leave)
	return r.clock.Sub(start)
}
