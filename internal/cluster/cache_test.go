package cluster_test

import (
	"reflect"
	"testing"

	"vapro/internal/cluster"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

func cacheFrag(ins uint64) trace.Fragment {
	return trace.Fragment{
		Kind:     trace.Comp,
		Elapsed:  100,
		Counters: trace.CountersView{TotIns: ins},
	}
}

func TestCacheHitOnUnchangedVersion(t *testing.T) {
	c := cluster.NewCache()
	frags := make([]trace.Fragment, 0, 10)
	for i := 0; i < 10; i++ {
		frags = append(frags, cacheFrag(1_000_000))
	}
	key := cluster.EdgeKey(trace.EdgeKey{From: 1, To: 2})
	opt := cluster.DefaultOptions()

	first := c.Run(key, 10, frags, opt)
	second := c.Run(key, 10, frags, opt)
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats after warm lookup: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs from computed result")
	}
}

func TestCacheNormalizesOptions(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100), cacheFrag(100)}
	key := cluster.VertexKey(7)
	// Zero options and the explicit defaults are the same clustering;
	// they must share one cache entry.
	c.Run(key, 2, frags, cluster.Options{})
	c.Run(key, 2, frags, cluster.DefaultOptions())
	if hits, _ := c.Stats(); hits != 1 {
		t.Fatalf("zero options missed the default-options entry: hits=%d", hits)
	}
}

func TestCacheDistinctOptionsRecompute(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100), cacheFrag(104)}
	key := cluster.VertexKey(1)
	a := cluster.DefaultOptions()
	b := cluster.DefaultOptions()
	b.Threshold = 0.01
	c.Run(key, 2, frags, a)
	res := c.Run(key, 2, frags, b)
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("different options must not hit: misses=%d", misses)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("1%% threshold should split 4%%-apart fragments: %d clusters", len(res.Clusters))
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100)}
	key := cluster.VertexKey(1)
	c.Run(key, 1, frags, cluster.DefaultOptions())
	if c.Len() != 1 {
		t.Fatalf("cache len %d, want 1", c.Len())
	}
	c.Invalidate(key)
	if c.Len() != 0 {
		t.Fatalf("cache len %d after invalidate, want 0", c.Len())
	}
	c.Run(key, 1, frags, cluster.DefaultOptions())
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("invalidated entry must recompute: hits=%d misses=%d", hits, misses)
	}
}

// Evictions count discarded clusterings: stale entries overwritten on
// recompute and explicit invalidations of present entries — never cold
// misses or invalidations of absent keys.
func TestCacheEvictions(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100)}
	key := cluster.VertexKey(1)
	opt := cluster.DefaultOptions()

	c.Run(key, 1, frags, opt) // cold miss: nothing evicted
	if got := c.Evictions(); got != 0 {
		t.Fatalf("evictions after cold miss: %d", got)
	}
	grown := append(frags, cacheFrag(101))
	c.Run(key, 2, grown, opt) // stale overwrite
	if got := c.Evictions(); got != 1 {
		t.Fatalf("evictions after stale overwrite: %d, want 1", got)
	}
	c.Invalidate(key)
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evictions after invalidate: %d, want 2", got)
	}
	c.Invalidate(key) // absent: no entry was discarded
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evicting an absent key counted: %d", got)
	}
}

// Appending fragments to one STG edge bumps its version and invalidates
// only that element's cached clustering: the untouched vertex keeps
// hitting.
func TestCacheVersionBumpInvalidatesOnlyGrownElement(t *testing.T) {
	g := stg.New()
	for i := 0; i < 6; i++ {
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 1, State: 2,
			Counters: trace.CountersView{TotIns: 1_000_000}, Elapsed: 100})
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comm, State: 2,
			Args: trace.Args{Op: "Send", Bytes: 1024}, Elapsed: 10})
	}
	e := g.Edge(trace.EdgeKey{From: 1, To: 2})
	v := g.Vertex(2)
	if e.Version != 6 || v.Version != 6 {
		t.Fatalf("versions after 6 appends: edge=%d vertex=%d, want 6/6", e.Version, v.Version)
	}

	c := cluster.NewCache()
	opt := cluster.DefaultOptions()
	runBoth := func() {
		c.Run(cluster.EdgeKey(e.Key), e.Version, e.Fragments, opt)
		c.Run(cluster.VertexKey(v.Key), v.Version, v.Fragments, opt)
	}
	runBoth() // cold: 2 misses
	runBoth() // warm: 2 hits

	// Grow only the edge.
	g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 1, State: 2,
		Counters: trace.CountersView{TotIns: 1_000_000}, Elapsed: 100})
	if e.Version != 7 {
		t.Fatalf("edge version %d after append, want 7", e.Version)
	}
	if v.Version != 6 {
		t.Fatalf("vertex version %d must be untouched", v.Version)
	}
	runBoth() // edge misses (grew), vertex hits
	hits, misses := c.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/3 (only the grown edge re-clustered)", hits, misses)
	}

	// The recomputed edge clustering must see the appended fragment.
	res := c.Run(cluster.EdgeKey(e.Key), e.Version, e.Fragments, opt)
	if got := len(res.Assign); got != 7 {
		t.Fatalf("cached edge clustering covers %d fragments, want 7", got)
	}
}
