package cluster_test

import (
	"reflect"
	"testing"

	"vapro/internal/cluster"
	"vapro/internal/stg"
	"vapro/internal/trace"
)

func cacheFrag(ins uint64) trace.Fragment {
	return trace.Fragment{
		Kind:     trace.Comp,
		Elapsed:  100,
		Counters: trace.CountersView{TotIns: ins},
	}
}

// gen shortens watermark literals in tests: epoch 0, the given count.
func gen(count int) stg.Gen { return stg.Gen{Count: uint64(count)} }

func TestCacheHitOnUnchangedGeneration(t *testing.T) {
	c := cluster.NewCache()
	frags := make([]trace.Fragment, 0, 10)
	for i := 0; i < 10; i++ {
		frags = append(frags, cacheFrag(1_000_000))
	}
	key := cluster.EdgeKey(trace.EdgeKey{From: 1, To: 2})
	opt := cluster.DefaultOptions()

	first := c.Run(key, gen(10), frags, opt)
	second := c.Run(key, gen(10), frags, opt)
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats after warm lookup: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs from computed result")
	}
}

func TestCacheNormalizesOptions(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100), cacheFrag(100)}
	key := cluster.VertexKey(7)
	// Zero options and the explicit defaults are the same clustering;
	// they must share one cache entry.
	c.Run(key, gen(2), frags, cluster.Options{})
	c.Run(key, gen(2), frags, cluster.DefaultOptions())
	if hits, _ := c.Stats(); hits != 1 {
		t.Fatalf("zero options missed the default-options entry: hits=%d", hits)
	}
}

func TestCacheDistinctOptionsRecompute(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100), cacheFrag(104)}
	key := cluster.VertexKey(1)
	a := cluster.DefaultOptions()
	b := cluster.DefaultOptions()
	b.Threshold = 0.01
	c.Run(key, gen(2), frags, a)
	res := c.Run(key, gen(2), frags, b)
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("different options must not hit: misses=%d", misses)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("1%% threshold should split 4%%-apart fragments: %d clusters", len(res.Clusters))
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100)}
	key := cluster.VertexKey(1)
	c.Run(key, gen(1), frags, cluster.DefaultOptions())
	if c.Len() != 1 {
		t.Fatalf("cache len %d, want 1", c.Len())
	}
	c.Invalidate(key)
	if c.Len() != 0 {
		t.Fatalf("cache len %d after invalidate, want 0", c.Len())
	}
	c.Run(key, gen(1), frags, cluster.DefaultOptions())
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("invalidated entry must recompute: hits=%d misses=%d", hits, misses)
	}
}

// Evictions count discarded clusterings: entries overwritten by a full
// recompute and explicit invalidations of present entries — never cold
// misses, invalidations of absent keys, or incremental advances (which
// evolve the entry rather than discard it).
func TestCacheEvictions(t *testing.T) {
	c := cluster.NewCache()
	frags := []trace.Fragment{cacheFrag(100)}
	key := cluster.VertexKey(1)
	opt := cluster.DefaultOptions()

	c.Run(key, gen(1), frags, opt) // cold miss: nothing evicted
	if got := c.Evictions(); got != 0 {
		t.Fatalf("evictions after cold miss: %d", got)
	}
	grown := append(append(make([]trace.Fragment, 0, 2), frags...), cacheFrag(101))
	c.Run(key, gen(2), grown, opt) // append-only: incremental advance, no discard
	if got := c.Evictions(); got != 0 {
		t.Fatalf("evictions after incremental advance: %d, want 0", got)
	}
	if incHits, _ := c.IncStats(); incHits != 1 {
		t.Fatalf("incremental hits: %d, want 1", incHits)
	}
	// An epoch bump is a wholesale replacement: the entry is rebuilt.
	c.Run(key, stg.Gen{Epoch: 1, Count: 2}, grown, opt)
	if got := c.Evictions(); got != 1 {
		t.Fatalf("evictions after epoch bump: %d, want 1", got)
	}
	c.Invalidate(key)
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evictions after invalidate: %d, want 2", got)
	}
	c.Invalidate(key) // absent: no entry was discarded
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evicting an absent key counted: %d", got)
	}
}

// Appending fragments to one STG edge advances its generation and
// re-clusters only that element (incrementally): the untouched vertex
// keeps hitting.
func TestCacheGenerationBumpTouchesOnlyGrownElement(t *testing.T) {
	g := stg.New()
	for i := 0; i < 6; i++ {
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 1, State: 2,
			Counters: trace.CountersView{TotIns: 1_000_000}, Elapsed: 100})
		g.Add(trace.Fragment{Rank: 0, Kind: trace.Comm, State: 2,
			Args: trace.Args{Op: trace.Op("Send"), Bytes: 1024}, Elapsed: 10})
	}
	e := g.Edge(trace.EdgeKey{From: 1, To: 2})
	v := g.Vertex(2)
	if e.Gen.Count != 6 || v.Gen.Count != 6 {
		t.Fatalf("gens after 6 appends: edge=%d vertex=%d, want 6/6", e.Gen.Count, v.Gen.Count)
	}

	c := cluster.NewCache()
	opt := cluster.DefaultOptions()
	runBoth := func() {
		c.Run(cluster.EdgeKey(e.Key), e.Gen, e.Fragments, opt)
		c.Run(cluster.VertexKey(v.Key), v.Gen, v.Fragments, opt)
	}
	runBoth() // cold: 2 misses
	runBoth() // warm: 2 hits

	// Grow only the edge.
	g.Add(trace.Fragment{Rank: 0, Kind: trace.Comp, From: 1, State: 2,
		Counters: trace.CountersView{TotIns: 1_000_000}, Elapsed: 100})
	if e.Gen.Count != 7 {
		t.Fatalf("edge gen %d after append, want 7", e.Gen.Count)
	}
	if v.Gen.Count != 6 {
		t.Fatalf("vertex gen %d must be untouched", v.Gen.Count)
	}
	runBoth() // edge advances incrementally, vertex hits
	hits, misses := c.Stats()
	incHits, incFallbacks := c.IncStats()
	if hits != 3 || misses != 2 || incHits != 1 || incFallbacks != 0 {
		t.Fatalf("hits=%d misses=%d inc=%d/%d, want 3/2/1/0 (only the grown edge re-clustered, incrementally)",
			hits, misses, incHits, incFallbacks)
	}

	// The advanced edge clustering must see the appended fragment.
	res := c.Run(cluster.EdgeKey(e.Key), e.Gen, e.Fragments, opt)
	if got := len(res.Assign); got != 7 {
		t.Fatalf("cached edge clustering covers %d fragments, want 7", got)
	}
}
